(* The hsis command-line tool: read a design (Verilog or BLIF-MV), check
   PIF properties, print bug reports with error traces, simulate, and
   report statistics — the environment of the paper's Fig. 1. *)

open Hsis_obs
open Hsis_limits
open Hsis_core

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let heuristic_of_name = function
  | "min-width" -> Hsis_fsm.Trans.Min_width
  | "pairs" -> Hsis_fsm.Trans.Pair_clustering
  | "naive" -> Hsis_fsm.Trans.Naive
  | h -> failwith ("unknown heuristic " ^ h)

let tr_of_name name =
  match Hsis_fsm.Trans.strategy_of_name name with
  | Some s -> s
  | None -> failwith ("unknown TR strategy " ^ name ^ " (mono, part, iso)")

(* Every batch command runs through the Session API the serve daemon uses:
   open a session pinning the design's artifacts, run against it, close.
   Builtins additionally carry their bundled PIF property set. *)
let open_session ?(tr = "part") verilog blifmv builtin heuristic =
  let heuristic = heuristic_of_name heuristic in
  let tr = tr_of_name tr in
  match (verilog, blifmv, builtin) with
  | Some path, None, None ->
      ( Hsis.Session.open_ ~heuristic ~tr
          (Hsis.Session.Verilog (read_file path)),
        None )
  | None, Some path, None ->
      ( Hsis.Session.open_ ~heuristic ~tr
          (Hsis.Session.Blifmv (read_file path)),
        None )
  | None, None, Some name -> (
      match Hsis_models.Models.by_name name with
      | Some m ->
          ( Hsis.Session.open_ ~heuristic ~tr
              (Hsis.Session.Verilog m.Hsis_models.Model.verilog),
            Some (Hsis_models.Model.parse_pif m) )
      | None -> failwith ("unknown builtin design " ^ name))
  | _ -> failwith "give exactly one of --verilog, --blifmv, --builtin"

let wrap f =
  try f () with Failure m | Invalid_argument m | Sys_error m ->
    Printf.eprintf "hsis: %s\n" m;
    1

(* The shared --timeout/--max-nodes/--max-steps resource-budget flags,
   parsed once for every subcommand (check/reach/refine/fuzz/serve).
   [arm] fixes the absolute deadline at that call, covering every engine
   run of the command; serve instead keeps the raw spec and arms it per
   job ([to_proto]). *)
type budget_flags = {
  b_timeout : float option;
  b_max_nodes : int option;
  b_max_steps : int option;
}

let budget_is_none b =
  b.b_timeout = None && b.b_max_nodes = None && b.b_max_steps = None

let arm_budget b =
  if budget_is_none b then Limits.none
  else
    Limits.make ?timeout:b.b_timeout ?max_nodes:b.b_max_nodes
      ?max_steps:b.b_max_steps ()

let proto_budget b =
  {
    Hsis_serve.Proto.timeout_s = b.b_timeout;
    max_nodes = b.b_max_nodes;
    max_steps = b.b_max_steps;
  }

(* The shared --stats/--stats-json flags (check/reach/stats/fuzz/serve). *)
type stats_flags = { show_stats : bool; stats_json : string option }

let want_stats sf = sf.show_stats || sf.stats_json <> None

let write_json_file path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

(* Render an observability snapshot per the --stats/--stats-json flags.
   Takes the snapshot rather than the design so parallel runs can pass the
   pool-merged document. *)
let emit_stats snap sf =
  if want_stats sf then begin
    if sf.show_stats then Format.printf "@.%a" Obs.pp snap;
    match sf.stats_json with
    | Some path -> write_json_file path (Obs.json_string snap)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)

let check_cmd verilog blifmv builtin pif_path heuristic tr no_early witness
    jobs kernel_jobs fail_fast simplify budget sf () =
  wrap (fun () ->
      let session, builtin_pif =
        open_session ~tr verilog blifmv builtin heuristic
      in
      let design = Hsis.Session.design session in
      Hsis.set_reach_profile design (want_stats sf);
      Hsis.set_reach_simplify design simplify;
      let pif =
        match (pif_path, builtin_pif) with
        | Some p, _ -> Hsis_auto.Pif.parse_file p
        | None, Some p -> p
        | None, None -> failwith "no properties: give --pif"
      in
      (* fail-fast rides on the pool's cancellation protocol, so a
         sequential --fail-fast run is just a one-worker pool *)
      let report, merged_snap =
        Hsis.Session.run ~early_failure:(not no_early) ~witnesses:witness
          ~fail_fast ~jobs ~kernel_jobs ~limits:(arm_budget budget) session
          pif
      in
      Format.printf "%a" Hsis.pp_report report;
      if witness then begin
        List.iter
          (fun (l : Hsis.lc_evidence Hsis.property_result) ->
            match l.Hsis.pr_verdict with
            | Verdict.Fail { Hsis.le_trace = Some t; le_trans } ->
                Format.printf "@.error trace for %s:@.%a" l.Hsis.pr_name
                  (Hsis_debug.Trace.pp le_trans) t
            | _ -> ())
          report.Hsis.lc;
        List.iter
          (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
            match c.Hsis.pr_verdict with
            | Verdict.Fail { Hsis.ce_explanation = Some e } ->
                Format.printf "@.debug tree for %s:@.%a" c.Hsis.pr_name
                  (Hsis_debug.Mcdbg.pp design.Hsis.trans)
                  e
            | _ -> ())
          report.Hsis.ctl
      end;
      (let snap =
         match merged_snap with
         | Some s -> s
         | None -> Hsis.snapshot design
       in
       emit_stats snap sf);
      Hsis.Session.close session;
      Hsis.report_exit_code report)

let reach_cmd verilog blifmv builtin heuristic tr kernel_jobs simplify budget
    sf () =
  wrap (fun () ->
      let session, _ = open_session ~tr verilog blifmv builtin heuristic in
      let design = Hsis.Session.design session in
      Hsis.set_kernel_jobs design kernel_jobs;
      Hsis.set_reach_profile design (want_stats sf);
      Hsis.set_reach_simplify design simplify;
      let r = Hsis.reachable ~limits:(arm_budget budget) design in
      Format.printf "design        : %s@." design.Hsis.flat.Hsis_blifmv.Ast.m_name;
      Format.printf "read time     : %.3fs@." design.Hsis.read_time;
      Format.printf "blif-mv lines : %d@." design.Hsis.blifmv_lines;
      (match r.Hsis_check.Reach.verdict with
      | Verdict.Inconclusive { Verdict.reason; _ } ->
          Format.printf "exploration   : interrupted (%s) after %d steps@."
            (Limits.reason_name reason) r.Hsis_check.Reach.steps
      | _ -> ());
      Format.printf "reached states: %.0f@."
        (Hsis_check.Reach.count_states design.Hsis.trans
           r.Hsis_check.Reach.reachable);
      Format.printf "bfs depth     : %d@." r.Hsis_check.Reach.steps;
      let st = Hsis.stats design in
      Format.printf "bdd nodes     : %d (%d vars)@." st.Obs.arena.Obs.Arena.live
        st.Obs.arena.Obs.Arena.vars;
      emit_stats (Hsis.snapshot design) sf;
      Hsis.Session.close session;
      Verdict.exit_code r.Hsis_check.Reach.verdict)

let sim_cmd verilog blifmv builtin heuristic steps seed () =
  wrap (fun () ->
      let session, _ = open_session verilog blifmv builtin heuristic in
      let design = Hsis.Session.design session in
      let sim = Hsis.simulator design in
      let net = Hsis_sim.Simulator.net sim in
      let state = ref seed in
      let rand n =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state / 7 mod n
      in
      Format.printf "   0: %a@." (Hsis_sim.Simulator.pp_state net)
        (Hsis_sim.Simulator.state sim);
      (try
         for i = 1 to steps do
           let opts = Hsis_sim.Simulator.options sim in
           if opts = [] then begin
             Format.printf "deadlock after %d steps@." (i - 1);
             raise Exit
           end;
           Hsis_sim.Simulator.step sim (rand (List.length opts));
           Format.printf "%4d: %a@." i (Hsis_sim.Simulator.pp_state net)
             (Hsis_sim.Simulator.state sim)
         done
       with Exit -> ());
      0)

let refine_cmd impl_path spec_path obs budget () =
  wrap (fun () ->
      let net_of path =
        let src = read_file path in
        let ast =
          if Filename.check_suffix path ".v" then Hsis_verilog.Elab.compile src
          else Hsis_blifmv.Parser.parse src
        in
        Hsis_blifmv.Net.of_ast ast
      in
      let impl = net_of impl_path in
      let spec = net_of spec_path in
      let obs = match obs with [] -> None | o -> Some o in
      let limits = arm_budget budget in
      let r = Hsis_bisim.Simrel.refines ?obs ~limits ~impl ~spec () in
      (match r.Hsis_bisim.Simrel.verdict with
      | Verdict.Pass ->
          Format.printf "refinement holds (%d iterations)@."
            r.Hsis_bisim.Simrel.iterations
      | Verdict.Fail _ ->
          Format.printf "refinement FAILS (%d iterations)@."
            r.Hsis_bisim.Simrel.iterations
      | Verdict.Inconclusive { Verdict.reason; _ } ->
          Format.printf "refinement inconclusive (%s) after %d iterations@."
            (Limits.reason_name reason) r.Hsis_bisim.Simrel.iterations);
      Verdict.exit_code r.Hsis_bisim.Simrel.verdict)

let fuzz_cmd iters seed limit ctl_per_iter no_lc no_shrink budget_mode out
    json jobs quiet bflags stats_json () =
  wrap (fun () ->
      let open Hsis_gen in
      let cfg =
        {
          Diff.default_config with
          Diff.iters;
          seed;
          state_limit = limit;
          ctl_per_iter;
          lc = not no_lc;
          shrink = not no_shrink;
          jobs;
          budget =
            (* The shared budget flags define the per-problem budget of
               the budgeted differential rerun; --budget alone uses a tiny
               deterministic default.  Prefer --max-steps/--max-nodes: a
               wall-clock deadline makes fuzz runs irreproducible. *)
            (if not (budget_is_none bflags) then Some (arm_budget bflags)
             else if budget_mode then
               Some (Limits.make ~max_steps:2 ~max_nodes:2000 ())
             else None);
          out_dir = out;
          log =
            (if quiet then None
             else Some (fun s -> Printf.eprintf "hsis fuzz: %s\n%!" s));
        }
      in
      let report = Diff.run cfg in
      Format.printf "%a" Diff.pp_report report;
      let report_json =
        lazy (Obs.Json.to_string (Diff.report_to_json report))
      in
      List.iter
        (function
          | Some path -> write_json_file path (Lazy.force report_json)
          | None -> ())
        [ json; stats_json ];
      if report.Diff.discrepancies = [] then 0 else 3)

let stats_cmd verilog blifmv builtin heuristic stats_json () =
  wrap (fun () ->
      let session, _ = open_session verilog blifmv builtin heuristic in
      let design = Hsis.Session.design session in
      ignore (Hsis.reachable design);
      Format.printf "%a" Obs.pp (Hsis.snapshot design);
      emit_stats (Hsis.snapshot design)
        { show_stats = false; stats_json };
      let report = Hsis.minimize design in
      Format.printf "don't-care minimization: %d -> %d part nodes@."
        report.Hsis_bisim.Dontcare.before report.Hsis_bisim.Dontcare.after;
      Hsis.Session.close session;
      0)

(* ------------------------------------------------------------------ *)

let serve_cmd socket cache_entries cache_nodes heuristic tr jobs budget sf () =
  wrap (fun () ->
      let open Hsis_serve in
      let config =
        {
          Server.cache_entries;
          cache_nodes;
          default_budget = proto_budget budget;
          default_jobs = jobs;
          heuristic = heuristic_of_name heuristic;
          tr = tr_of_name tr;
        }
      in
      let server = Server.create ~config () in
      (match socket with
      | Some path -> Server.listen server ~socket_path:path
      | None -> Server.run_channels server stdin stdout);
      (let stats = Obs.Json.to_string (Server.stats_json server) in
       if sf.show_stats then print_endline stats;
       match sf.stats_json with
       | Some path -> write_json_file path stats
       | None -> ());
      0)

(* ------------------------------------------------------------------ *)

open Cmdliner

let verilog_arg =
  Arg.(value & opt (some file) None & info [ "v"; "verilog" ] ~docv:"FILE.v")

let blifmv_arg =
  Arg.(value & opt (some file) None & info [ "b"; "blifmv" ] ~docv:"FILE.mv")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "builtin" ] ~docv:"NAME"
        ~doc:
          "Use a built-in Table-1 design: philos, pingpong, gigamax, \
           scheduler, dcnew, mdlc (also scheduler5/8/12).")

let pif_arg =
  Arg.(value & opt (some file) None & info [ "p"; "pif" ] ~docv:"FILE.pif")

let heuristic_arg =
  Arg.(
    value & opt string "min-width"
    & info [ "heuristic" ] ~docv:"H"
        ~doc:"Early-quantification heuristic: min-width, pairs, naive.")

let tr_arg =
  Arg.(
    value & opt string "part"
    & info [ "tr" ] ~docv:"STRAT"
        ~doc:
          "Transition-relation strategy: $(b,mono) (one product BDD), \
           $(b,part) (conjunctive partition with early quantification, the \
           default), $(b,iso) (partitioned, with component BDDs built once \
           per isomorphic subckt/module instance group and materialized by \
           variable permutation).  Verdicts are identical across \
           strategies; peak node counts and times differ.")

let no_early_arg =
  Arg.(value & flag & info [ "no-early" ] ~doc:"Disable early failure detection.")

let witness_arg =
  Arg.(value & flag & info [ "witness" ] ~doc:"Print error traces / debug trees.")

let steps_arg = Arg.(value & opt int 20 & info [ "n"; "steps" ])
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ])

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the observability snapshot: per-operation cache hit rates, \
           GC/reorder pauses, arena occupancy, phase timings, and the \
           reachability fixpoint profile.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the observability snapshot as JSON to $(docv).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for all engine work.  An interrupted run \
           reports inconclusive verdicts and exits 4.")

let max_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:"Live BDD node budget (inconclusive + exit 4 when exceeded).")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Fixpoint iteration budget (inconclusive + exit 4 when \
           exceeded).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains.  With $(docv) > 1 the work (one property per \
           task for $(b,check), one iteration per task for $(b,fuzz)) is \
           spread over a domain pool.  $(b,check) builds the design once \
           and ships its BDDs to the workers as a snapshot (fuzz tasks \
           stay share-nothing — every seed is a different design); \
           results are collected in task order, so verdicts and findings \
           match a sequential run.")

let kernel_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "kernel-jobs" ] ~docv:"N"
        ~doc:
          "Intra-operation parallelism.  With $(docv) > 1 the BDD \
           manager's and/ite/exists/and_exists kernels fork their \
           cofactor recursions onto a persistent domain pool, speeding \
           up a single large operation.  Orthogonal to $(b,--jobs) \
           (which parallelizes across properties); the two multiply, so \
           keep jobs * kernel-jobs within the host's cores.  Results \
           are bit-identical across values.")

let fail_fast_arg =
  Arg.(
    value & flag
    & info [ "fail-fast" ]
        ~doc:
          "Stop at the first definitive property failure: remaining \
           properties are cancelled and reported inconclusive.  The exit \
           code is still 3.")

let simplify_arg =
  Arg.(
    value & flag
    & info [ "simplify" ]
        ~doc:
          "Restrict-simplify each reachability frontier against the \
           already-reached interior before the image call.  Results are \
           unchanged; the image inputs may shrink (saved nodes appear in \
           the $(b,--stats) reach profile).")

(* The one budget parser and the one stats parser, shared by every
   subcommand that takes them (check/reach/refine/fuzz/serve), so flag
   names, docs and semantics cannot drift apart per command. *)
let budget_term =
  let make t n s = { b_timeout = t; b_max_nodes = n; b_max_steps = s } in
  Term.(const make $ timeout_arg $ max_nodes_arg $ max_steps_arg)

let stats_term =
  let make s j = { show_stats = s; stats_json = j } in
  Term.(const make $ stats_arg $ stats_json_arg)

let check =
  Cmd.v
    (Cmd.info "check" ~doc:"check CTL and language-containment properties"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "0 if every property passes, 3 on a definitive failure, 4 \
               when a resource budget left some verdict inconclusive.";
         ])
    Term.(
      const (fun a b c d e f g h i j k l m n ->
          check_cmd a b c d e f g h i j k l m n ())
      $ verilog_arg $ blifmv_arg $ builtin_arg $ pif_arg $ heuristic_arg
      $ tr_arg $ no_early_arg $ witness_arg $ jobs_arg $ kernel_jobs_arg
      $ fail_fast_arg $ simplify_arg $ budget_term $ stats_term)

let reach =
  Cmd.v
    (Cmd.info "reach" ~doc:"compute the reachable state set")
    Term.(
      const (fun a b c d e f g h i -> reach_cmd a b c d e f g h i ())
      $ verilog_arg $ blifmv_arg $ builtin_arg $ heuristic_arg $ tr_arg
      $ kernel_jobs_arg $ simplify_arg $ budget_term $ stats_term)

let sim =
  Cmd.v
    (Cmd.info "sim" ~doc:"random-walk the state-based simulator")
    Term.(
      const (fun a b c d e f -> sim_cmd a b c d e f ())
      $ verilog_arg $ blifmv_arg $ builtin_arg $ heuristic_arg $ steps_arg
      $ seed_arg)

let stats =
  Cmd.v
    (Cmd.info "stats" ~doc:"BDD statistics and minimization report")
    Term.(
      const (fun a b c d e -> stats_cmd a b c d e ())
      $ verilog_arg $ blifmv_arg $ builtin_arg $ heuristic_arg
      $ stats_json_arg)

let refine =
  let impl_arg =
    Arg.(required & opt (some file) None & info [ "impl" ] ~docv:"IMPL")
  in
  let spec_arg =
    Arg.(required & opt (some file) None & info [ "spec" ] ~docv:"SPEC")
  in
  let obs_arg =
    Arg.(value & opt_all string [] & info [ "obs" ] ~docv:"SIGNAL")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"check that IMPL refines SPEC over the observed signals")
    Term.(
      const (fun a b c d -> refine_cmd a b c d ())
      $ impl_arg $ spec_arg $ obs_arg $ budget_term)

let fuzz =
  let iters_arg =
    Arg.(
      value & opt int 100
      & info [ "n"; "iters" ] ~docv:"N" ~doc:"Differential iterations to run.")
  in
  let fseed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master seed; every run is reproducible from it.")
  in
  let limit_arg =
    Arg.(
      value & opt int 20_000
      & info [ "limit" ] ~docv:"STATES"
          ~doc:
            "Explicit-engine state budget; larger systems are skipped, not \
             failed.")
  in
  let ctl_arg =
    Arg.(
      value & opt int 3
      & info [ "ctl-per-iter" ] ~docv:"K"
          ~doc:"CTL formulas cross-checked per generated network.")
  in
  let no_lc_arg =
    Arg.(
      value & flag
      & info [ "no-lc" ] ~doc:"Skip the language-containment cross-check.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failing inputs without minimizing.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Write shrunk $(b,.mv) repro files (plus detail sidecars) here.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the hsis-fuzz/1 report as JSON to $(docv).")
  in
  let budget_arg =
    Arg.(
      value & flag
      & info [ "budget" ]
          ~doc:
            "Also rerun every check under a tiny deterministic resource \
             budget and fail if a budgeted conclusive verdict contradicts \
             the unbounded one.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress on stderr.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "differential fuzzing: random BLIF-MV designs checked by the \
          symbolic engines against the explicit-state oracle")
    Term.(
      const (fun a b c d e f g h i j k l m ->
          fuzz_cmd a b c d e f g h i j k l m ())
      $ iters_arg $ fseed_arg $ limit_arg $ ctl_arg $ no_lc_arg
      $ no_shrink_arg $ budget_arg $ out_arg $ json_arg $ jobs_arg
      $ quiet_arg $ budget_term $ stats_json_arg)

let serve =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of serving \
             stdin/stdout.")
  in
  let cache_entries_arg =
    Arg.(
      value & opt int 8
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Session-cache entry budget (LRU eviction beyond it).")
  in
  let cache_nodes_arg =
    Arg.(
      value & opt int 2_000_000
      & info [ "cache-nodes" ] ~docv:"NODES"
          ~doc:"Session-cache total live-BDD-node budget.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "long-running verification daemon: line-delimited JSON jobs over \
          stdin/stdout or a Unix socket, with a warm session cache")
    Term.(
      const (fun a b c d e f g h -> serve_cmd a b c d e f g h ())
      $ socket_arg $ cache_entries_arg $ cache_nodes_arg $ heuristic_arg
      $ tr_arg $ jobs_arg $ budget_term $ stats_term)

let () =
  let doc = "HSIS: a BDD-based environment for formal verification" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "hsis" ~doc)
          [ check; reach; sim; stats; refine; fuzz; serve ]))
