(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (see the experiment index in DESIGN.md):

     table1       Table 1 (six designs: read / reach / LC / MC)
     table1-small same with the scheduler scaled down
     fig2         Figure 2 invariance automaton on the two-writer bus
     quant        Sec. 4's 1600-relation early-quantification example
     ablate-quant scheduling heuristics (A4)
     ablate-tr    partitioned vs monolithic transition relations (A3)
     ablate-dc    don't-care minimization (A1)
     ablate-efd   early failure detection (A2)
     bech         Bechamel micro-benchmarks
     bdd          BDD kernel ops/s (and/ite/exists/and_exists) -> BENCH_bdd.json
     par [jobs]   parallel scaling (fuzz + scaled designs, seq vs
                  share-nothing vs shared-work)  -> BENCH_par.json
     scale [small] [--check]
                  TR-strategy curves (mono vs part vs iso) over the
                  hierarchical scaled families -> BENCH_scale.json;
                  --check asserts verdict agreement and the iso <= part
                  <= mono peak-live ordering (CI's scale-smoke job)
     serve [N]    daemon cold-vs-warm latency + N-client throughput
                  -> BENCH_serve.json
     json         observability smoke check: emit + re-parse a stats JSON

   With no argument everything runs (Table 1 at paper scale last, since
   the 17-station scheduler dominates the runtime).

   Timing uses the monotonic wall clock of Obs.Clock (Sys.time measures
   CPU time and under-reports anything that blocks).  Table 1 runs also
   write their rows and per-design observability snapshots to
   BENCH_table1.json so the performance trajectory is trackable across
   changes. *)

open Hsis_obs
open Hsis_core
open Hsis_models

let wall f = Obs.Clock.wall f

let pr fmt = Format.printf fmt

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1_row (m : Model.t) =
  let d, read_time = wall (fun () -> Hsis.read_verilog m.Model.verilog) in
  Hsis.set_reach_profile d false;
  let states, _reach_time = wall (fun () -> Hsis.reached_states d) in
  let pif = Model.parse_pif m in
  let report = Hsis.run_pif ~witnesses:false d pif in
  pr "%-10s %9d %10d %8.2f %12.0f %4d %8.2f %5d %8.2f@."
    m.Model.name
    (Option.value ~default:0 d.Hsis.verilog_lines)
    d.Hsis.blifmv_lines read_time states
    (List.length report.Hsis.lc)
    report.Hsis.lc_time
    (List.length report.Hsis.ctl)
    report.Hsis.mc_time;
  Obs.Json.Obj
    [
      ("design", Obs.Json.Str m.Model.name);
      ( "lines_verilog",
        Obs.Json.Int (Option.value ~default:0 d.Hsis.verilog_lines) );
      ("lines_blifmv", Obs.Json.Int d.Hsis.blifmv_lines);
      ("read_s", Obs.Json.Float read_time);
      ("reached_states", Obs.Json.Float states);
      ("lc_props", Obs.Json.Int (List.length report.Hsis.lc));
      ("lc_s", Obs.Json.Float report.Hsis.lc_time);
      ("ctl_props", Obs.Json.Int (List.length report.Hsis.ctl));
      ("mc_s", Obs.Json.Float report.Hsis.mc_time);
      ("obs", Obs.to_json (Hsis.snapshot d));
    ]

let table1 ?(scale = `Paper) () =
  pr "@.== Table 1: examples ==@.";
  pr "%-10s %9s %10s %8s %12s %4s %8s %5s %8s@." "example" "#lines-v"
    "#lines-mv" "read(s)" "#reached" "#lc" "lc(s)" "#ctl" "mc(s)";
  let models =
    match scale with
    | `Paper -> Models.table1 ()
    | `Small -> Models.table1_small ()
  in
  let rows = List.map table1_row models in
  let j =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "table1");
        ( "scale",
          Obs.Json.Str (match scale with `Paper -> "paper" | `Small -> "small")
        );
        ("schema", Obs.Json.Str Obs.schema_version);
        ("rows", Obs.Json.List rows);
      ]
  in
  write_file "BENCH_table1.json" (Obs.Json.to_string j);
  pr "wrote BENCH_table1.json@."

(* ------------------------------------------------------------------ *)
(* Figure 2 *)

let bus_model buggy =
  Printf.sprintf
    {|
module bus(clk);
  input clk;
  reg out1; reg out2;
  wire req1; wire req2;
  assign req1 = $ND(0, 1);
  assign req2 = $ND(0, 1);
  initial out1 = 0;
  initial out2 = 0;
  always @(posedge clk) begin
    if (req1 & !req2) begin out1 <= 1; out2 <= 0; end
    else if (req2 & !req1) begin out1 <= 0; out2 <= 1; end
    else if (req1 & req2) begin out1 <= %s; out2 <= 1; end
    else begin out1 <= 0; out2 <= 0; end
  end
endmodule
|}
    (if buggy then "1" else "0")

let fig2_automaton () =
  Hsis_auto.Autom.invariance ~name:"fig2"
    ~ok:(Hsis_auto.Expr.parse "!(out1=1 & out2=1)")

let fig2 () =
  pr "@.== Figure 2: invariance automaton (out1/out2 never together) ==@.";
  let aut = fig2_automaton () in
  List.iter
    (fun buggy ->
      let d = Hsis.read_verilog (bus_model buggy) in
      let lc = Hsis.check_lc d aut in
      let mc =
        Hsis.check_ctl d ~name:"AG"
          (Hsis_auto.Ctl.parse "AG !(out1=1 & out2=1)")
      in
      pr "  %-7s  lc %-6s %.4fs   mc %-6s %.4fs   trace %s@."
        (if buggy then "buggy" else "correct")
        (if Hsis_limits.Verdict.holds lc.Hsis.pr_verdict then "passed"
         else "FAILED")
        lc.Hsis.pr_time
        (if Hsis_limits.Verdict.holds mc.Hsis.pr_verdict then "passed"
         else "FAILED")
        mc.Hsis.pr_time
        (match lc.Hsis.pr_verdict with
        | Hsis_limits.Verdict.Fail { Hsis.le_trace = Some t; _ } ->
            Printf.sprintf "%d states (verified %b)"
              (Hsis_debug.Trace.total_length t)
              t.Hsis_debug.Trace.verified
        | _ -> "-"))
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Sec. 4: 1600 relations, 1500 quantified variables *)

(* A synthetic compiled netlist, matching vl2mv's output profile: each
   relation is a functional table defining one fresh gate variable from a
   few earlier ones, and the intermediate gate variables are quantified
   out.  [ninputs] circuit inputs stay free; the last [nkeep] gates are
   the "latch inputs" that must survive. *)
let circuit_soup ~nrels ~ninputs ~nkeep ~seed =
  let h = ref (seed * 7919) in
  let rand n =
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
    (!h lsr 11) mod n
  in
  let nvars = ninputs + nrels in
  let supports =
    Array.init nrels (fun i ->
        let out = ninputs + i in
        let fanin = 1 + rand 3 in
        let pick_src () =
          (* mostly local fanin, occasionally long-range *)
          if i = 0 || rand 8 = 0 then rand ninputs
          else ninputs + max 0 (i - 1 - rand (min i 12))
        in
        List.sort_uniq compare
          (out :: List.init fanin (fun _ -> pick_src ())))
  in
  let quantify =
    (* every gate output except the last nkeep *)
    List.init (max 0 (nrels - nkeep)) (fun i -> ninputs + i)
  in
  (supports, quantify, nvars, rand)

(* A functional relation: out <-> f(fanin) for a random f. *)
let gate_relation man vars rand support ~out =
  let open Hsis_bdd in
  let fanin = List.filter (fun v -> v <> out) support in
  let fanin = Array.of_list fanin in
  let n = Array.length fanin in
  let f = ref (Bdd.dfalse man) in
  for m' = 0 to (1 lsl n) - 1 do
    if rand 2 = 0 then begin
      let cube = ref (Bdd.dtrue man) in
      for i = 0 to n - 1 do
        let lit =
          if (m' lsr i) land 1 = 1 then vars.(fanin.(i))
          else Bdd.dnot vars.(fanin.(i))
        in
        cube := Bdd.dand !cube lit
      done;
      f := Bdd.dor !f !cube
    end
  done;
  Bdd.eqv vars.(out) !f

let quant_bench () =
  pr "@.== Sec. 4: early quantification at vl2mv scale ==@.";
  let nrels = 1600 and ninputs = 60 and nkeep = 100 in
  let supports, quantify, nvars, rand =
    circuit_soup ~nrels ~ninputs ~nkeep ~seed:42
  in
  let problem = { Hsis_quant.Schedule.supports; quantify } in
  let sched, t_sched = wall (fun () -> Hsis_quant.Schedule.min_width problem) in
  (match Hsis_quant.Schedule.validate problem sched with
  | Ok () -> ()
  | Error m -> pr "  INVALID SCHEDULE: %s@." m);
  let man = Hsis_bdd.Bdd.new_man () in
  let vars = Array.init nvars (fun _ -> Hsis_bdd.Bdd.new_var man) in
  let rels =
    Array.mapi
      (fun i support ->
        gate_relation man vars rand support ~out:(ninputs + i))
      supports
  in
  let cube_of ids = Hsis_bdd.Bdd.cube man (List.map (fun v -> vars.(v)) ids) in
  let result, t_exec =
    wall (fun () -> Hsis_quant.Apply.execute ~rels ~cube_of sched)
  in
  pr
    "  %d relations, %d quantified variables: schedule %.2fs, \
     multiply+quantify %.2fs@."
    nrels (List.length quantify) t_sched t_exec;
  pr "  peak intermediate BDD %d nodes, result %d nodes@."
    result.Hsis_quant.Apply.peak_nodes
    (Hsis_bdd.Bdd.dag_size result.Hsis_quant.Apply.value);
  pr "  (the paper reports \"only several seconds\" for this profile)@."

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablate_quant () =
  pr "@.== A4: scheduling heuristics on relation soups ==@.";
  pr "  %-8s %-16s %10s %12s@." "size" "heuristic" "width" "schedule(s)";
  List.iter
    (fun nrels ->
      let supports, quantify, _, _ =
        circuit_soup ~nrels ~ninputs:20 ~nkeep:10 ~seed:7
      in
      let problem = { Hsis_quant.Schedule.supports; quantify } in
      List.iter
        (fun (name, h) ->
          let sched, t = wall (fun () -> h problem) in
          pr "  %-8d %-16s %10d %12.3f@." nrels name
            (Hsis_quant.Schedule.max_cluster_support problem sched)
            t)
        [
          ("min-width", Hsis_quant.Schedule.min_width);
          ("pair-cluster", Hsis_quant.Schedule.pair_clustering);
          ("naive", Hsis_quant.Schedule.naive);
        ])
    [ 50; 200 ]

let ablate_tr () =
  pr "@.== A3: partitioned vs monolithic transition relation ==@.";
  List.iter
    (fun (name, n) ->
      let m = Scheduler.make ~n () in
      let d = Hsis.read_verilog m.Model.verilog in
      let init = Hsis_fsm.Trans.initial d.Hsis.trans in
      let r_part, t_part =
        wall (fun () -> Hsis_check.Reach.compute ~profile:false d.Hsis.trans init)
      in
      let _, t_mono_build =
        wall (fun () -> Hsis_fsm.Trans.monolithic d.Hsis.trans)
      in
      let r_mono, t_mono =
        wall (fun () ->
            Hsis_fsm.Trans.set_strategy d.Hsis.trans Hsis_fsm.Trans.Monolithic;
            Fun.protect
              ~finally:(fun () ->
                Hsis_fsm.Trans.set_strategy d.Hsis.trans
                  Hsis_fsm.Trans.Partitioned)
              (fun () ->
                Hsis_check.Reach.compute ~profile:false d.Hsis.trans init))
      in
      let agree =
        Hsis_bdd.Bdd.equal r_part.Hsis_check.Reach.reachable
          r_mono.Hsis_check.Reach.reachable
      in
      pr
        "  %-12s partitioned %.2fs | monolithic build %.2fs + reach %.2fs \
         (peak %d nodes) | agree %b@."
        name t_part t_mono_build t_mono
        (Hsis_fsm.Trans.monolithic_peak d.Hsis.trans)
        agree)
    [ ("scheduler8", 8); ("scheduler12", 12) ]

let ablate_dc () =
  pr "@.== A1: don't-care (restrict) minimization of relation parts ==@.";
  List.iter
    (fun (m : Model.t) ->
      let d = Hsis.read_verilog m.Model.verilog in
      ignore (Hsis.reached_states d);
      let report, t = wall (fun () -> Hsis.minimize d) in
      let reach = Hsis.reachable d in
      let ok =
        Hsis_bisim.Dontcare.image_equal d.Hsis.trans
          report.Hsis_bisim.Dontcare.minimized
          ~from_:reach.Hsis_check.Reach.reachable
      in
      pr
        "  %-10s parts %6d -> %6d nodes (%.1f%%) in %.2fs, image preserved \
         %b@."
        m.Model.name report.Hsis_bisim.Dontcare.before
        report.Hsis_bisim.Dontcare.after
        (100.0
        *. Float.of_int report.Hsis_bisim.Dontcare.after
        /. Float.of_int (max 1 report.Hsis_bisim.Dontcare.before))
        t ok)
    [ Gigamax.make (); Dcnew.make (); Mdlc.make () ]

let ablate_efd () =
  pr "@.== A2: early failure detection on a buggy design ==@.";
  let m = Dcnew.make () in
  let d = Hsis.read_verilog m.Model.verilog in
  ignore (Hsis.reached_states d);
  let bad = Hsis_auto.Ctl.parse "AG !(st=SETUP)" in
  let with_efd = Hsis.check_ctl ~early_failure:true d ~name:"bad" bad in
  let without_efd = Hsis.check_ctl ~early_failure:false d ~name:"bad" bad in
  pr "  failing invariant: with EFD %.3fs (caught at step %s), without %.3fs@."
    with_efd.Hsis.pr_time
    (match with_efd.Hsis.pr_early_step with
    | Some k -> string_of_int k
    | None -> "-")
    without_efd.Hsis.pr_time;
  let lc_bad =
    Hsis_auto.Autom.invariance ~name:"no-setup"
      ~ok:(Hsis_auto.Expr.parse "st!=SETUP")
  in
  let lc_with = Hsis.check_lc ~early_failure:true ~trace:false d lc_bad in
  let lc_without = Hsis.check_lc ~early_failure:false ~trace:false d lc_bad in
  pr "  failing containment: with EFD %.3fs (step %s), without %.3fs@."
    lc_with.Hsis.pr_time
    (match lc_with.Hsis.pr_early_step with
    | Some k -> string_of_int k
    | None -> "-")
    lc_without.Hsis.pr_time

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per experiment family *)

let bechamel_tests () =
  let open Bechamel in
  let gigamax_design =
    lazy (Hsis.read_verilog (Gigamax.make ()).Model.verilog)
  in
  let t1_image =
    Test.make ~name:"table1/gigamax-image"
      (Staged.stage (fun () ->
           let d = Lazy.force gigamax_design in
           ignore
             (Hsis_fsm.Trans.image d.Hsis.trans
                (Hsis_fsm.Trans.initial d.Hsis.trans))))
  in
  let fig2_design = lazy (Hsis.read_verilog (bus_model false)) in
  let fig2_aut = fig2_automaton () in
  let fig2_lc =
    Test.make ~name:"fig2/lc-check"
      (Staged.stage (fun () ->
           let d = Lazy.force fig2_design in
           ignore (Hsis_check.Lc.check d.Hsis.flat fig2_aut)))
  in
  let quant_sched =
    let supports, quantify, _, _ =
      circuit_soup ~nrels:400 ~ninputs:30 ~nkeep:20 ~seed:3
    in
    let problem = { Hsis_quant.Schedule.supports; quantify } in
    Test.make ~name:"quant/min-width-400"
      (Staged.stage (fun () -> ignore (Hsis_quant.Schedule.min_width problem)))
  in
  [ t1_image; fig2_lc; quant_sched ]

let run_bechamel () =
  pr "@.== Bechamel micro-benchmarks ==@.";
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols (List.hd instances) raw in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ t ] -> pr "  %-28s %12.0f ns/run@." name t
          | Some _ | None -> pr "  %-28s (no estimate)@." name)
        results)
    (List.map
       (fun t -> Test.make_grouped ~name:"bench" [ t ])
       (bechamel_tests ()))

(* ------------------------------------------------------------------ *)
(* BDD manager micro-benchmarks: raw ops-per-second of the four hot
   kernels (and / ite / exists / and_exists) on scalable synthetic
   circuits, written to BENCH_bdd.json so the unique-table / computed-
   cache hot path can be compared across changes.  Caches are flushed
   (via a forced collection) between rounds so each round re-does real
   work instead of replaying the computed cache. *)

(* Host parallelism context, recorded in the par/scale bench JSON so a
   scaling curve can be judged against the machine that produced it:
   [recommended_domains] is the runtime's [Domain.recommended_domain_count]
   and [host_cores] the raw processor count from /proc/cpuinfo (falling
   back to the former where that file is absent, e.g. non-Linux hosts). *)
let host_cores () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> Hsis_par.Par.default_jobs ()
  | ic ->
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor"
           then incr n
         done
       with End_of_file -> ());
      close_in ic;
      if !n > 0 then !n else Hsis_par.Par.default_jobs ()

let bdd_bench ?(kernel_jobs = 2) () =
  pr "@.== BDD kernel micro-benchmarks ==@.";
  let open Hsis_bdd in
  let seed = ref 0x2545F49 in
  let rand n =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    (!seed lsr 7) mod n
  in
  let rounds = 3 in
  (* Pool of mid-size random functions over [n] variables for the
     combinational kernels. *)
  let man = Bdd.new_man () in
  let nvars = 24 in
  let vars = Array.init nvars (fun _ -> Bdd.new_var man) in
  let rec rand_fun depth =
    if depth = 0 then begin
      let v = vars.(rand nvars) in
      if rand 2 = 0 then v else Bdd.dnot v
    end
    else begin
      let a = rand_fun (depth - 1) in
      let b = rand_fun (depth - 1) in
      match rand 3 with
      | 0 -> Bdd.dand a b
      | 1 -> Bdd.dor a b
      | _ -> Bdd.xor a b
    end
  in
  let pool = Array.init 32 (fun _ -> rand_fun 4) in
  let np = Array.length pool in
  let kernel name f =
    ignore (Bdd.gc man);
    let ops = ref 0 in
    let t0 = Obs.Clock.now () in
    for _ = 1 to rounds do
      ops := !ops + f ();
      (* flush the computed cache so the next round is not a pure replay *)
      ignore (Bdd.gc man)
    done;
    let dt = Obs.Clock.now () -. t0 in
    let rate = if dt > 0.0 then Float.of_int !ops /. dt else 0.0 in
    pr "  %-12s %8d ops in %7.3fs  = %12.0f ops/s@." name !ops dt rate;
    Obs.Json.Obj
      [
        ("kernel", Obs.Json.Str name);
        ("ops", Obs.Json.Int !ops);
        ("time_s", Obs.Json.Float dt);
        ("ops_per_s", Obs.Json.Float rate);
      ]
  in
  let and_kernel () =
    let ops = ref 0 in
    for i = 0 to np - 1 do
      for j = i + 1 to np - 1 do
        ignore (Bdd.dand pool.(i) pool.(j));
        incr ops
      done
    done;
    !ops
  in
  let ite_kernel () =
    let ops = ref 0 in
    for i = 0 to np - 1 do
      for j = 0 to (np / 4) - 1 do
        ignore (Bdd.ite pool.(i) pool.(j) pool.(np - 1 - j));
        incr ops
      done
    done;
    !ops
  in
  let even_cube =
    Bdd.cube man (List.init (nvars / 2) (fun i -> vars.(2 * i)))
  in
  let exists_kernel () =
    let ops = ref 0 in
    for i = 0 to np - 1 do
      for j = i + 1 to np - 1 do
        ignore (Bdd.exists ~cube:even_cube (Bdd.dand pool.(i) pool.(j)));
        incr ops
      done
    done;
    !ops
  in
  (* Image kernel: BFS over an elementary-cellular-automaton transition
     relation with interleaved present/next variables — the and_exists +
     permute inner loop of symbolic reachability, at parametric width.
     Two next-state bits are left unconstrained (nondeterministic), so
     frontiers branch and the reached set covers a large state space. *)
  let bits = 16 in
  let eca_setup man2 =
    let x = Array.make bits (Bdd.dtrue man2) in
    let y = Array.make bits (Bdd.dtrue man2) in
    for i = 0 to bits - 1 do
      x.(i) <- Bdd.new_var ~name:(Printf.sprintf "x%d" i) man2;
      y.(i) <- Bdd.new_var ~name:(Printf.sprintf "y%d" i) man2
    done;
    let next_fn i =
      (* rule-30-flavoured neighbourhood update: chaotic dynamics, so the
         reachable set is rich *)
      let l = x.((i + bits - 1) mod bits)
      and c = x.(i)
      and r = x.((i + 1) mod bits) in
      Bdd.xor l (Bdd.dor c r)
    in
    let rel =
      Bdd.conj man2
        (List.concat
           (List.init bits (fun i ->
                if i mod 8 = 3 then [] (* nondeterministic bit *)
                else [ Bdd.eqv y.(i) (next_fn i) ])))
    in
    let xcube = Bdd.cube man2 (Array.to_list x) in
    let unprime =
      Bdd.make_varmap man2
        (List.init bits (fun i ->
             (Bdd.var_index y.(i), Bdd.var_index x.(i))))
    in
    let init =
      Bdd.conj man2
        (List.init bits (fun i -> if i = 0 then x.(i) else Bdd.dnot x.(i)))
    in
    (rel, xcube, unprime, init)
  in
  let image_bfs (rel, xcube, unprime, init) =
    let ops = ref 0 in
    let reached = ref init in
    let frontier = ref init in
    let steps = ref 0 in
    while (not (Bdd.is_false !frontier)) && !steps < 100 do
      let nxt = Bdd.permute unprime (Bdd.and_exists ~cube:xcube rel !frontier) in
      incr ops;
      incr steps;
      let fresh = Bdd.dand nxt (Bdd.dnot !reached) in
      reached := Bdd.dor !reached fresh;
      frontier := fresh
    done;
    (!ops, !reached)
  in
  let man2 = Bdd.new_man () in
  let eca = eca_setup man2 in
  let image_kernel () = fst (image_bfs eca) in
  let image_rounds name f =
    ignore (Bdd.gc man2);
    let ops = ref 0 in
    let t0 = Obs.Clock.now () in
    for _ = 1 to rounds * 4 do
      ops := !ops + f ();
      ignore (Bdd.gc man2)
    done;
    let dt = Obs.Clock.now () -. t0 in
    let rate = if dt > 0.0 then Float.of_int !ops /. dt else 0.0 in
    pr "  %-12s %8d ops in %7.3fs  = %12.0f ops/s@." name !ops dt rate;
    Obs.Json.Obj
      [
        ("kernel", Obs.Json.Str name);
        ("ops", Obs.Json.Int !ops);
        ("time_s", Obs.Json.Float dt);
        ("ops_per_s", Obs.Json.Float rate);
      ]
  in
  let k_and = kernel "and" and_kernel in
  let k_ite = kernel "ite" ite_kernel in
  let k_exists = kernel "exists" exists_kernel in
  let k_image = image_rounds "and_exists" image_kernel in
  let kernels = [ k_and; k_ite; k_exists; k_image ] in
  (* Intra-operation parallel rows: the same deterministic workload per
     kernel, once with kernel_jobs = 1 (the allocation-free sequential
     path) and once with kernel_jobs = [kernel_jobs]; the two results are
     compared for canonical equality through a snapshot round-trip, so a
     speedup can never come from computing a different function.  On a
     single-core host the kj>1 row measures overhead, not speedup — the
     JSON records both times so the reader can judge against host_cores. *)
  let intra_ite man3 =
    seed := 0xC0FFEE;
    let v = Array.init nvars (fun _ -> Bdd.new_var man3) in
    let rec rf depth =
      if depth = 0 then begin
        let b = v.(rand nvars) in
        if rand 2 = 0 then b else Bdd.dnot b
      end
      else begin
        let a = rf (depth - 1) in
        let b = rf (depth - 1) in
        match rand 3 with
        | 0 -> Bdd.dand a b
        | 1 -> Bdd.dor a b
        | _ -> Bdd.xor a b
      end
    in
    let p = Array.init 16 (fun _ -> rf 6) in
    fun () ->
      (* keep every result as its own root instead of folding them into
         one accumulator: an xor chain over random functions blows up
         exponentially, and the comparison below wants the individual
         answers anyway *)
      let out = ref [] in
      let ops = ref 0 in
      for i = 0 to 15 do
        for j = 0 to 15 do
          out := Bdd.ite p.(i) p.(j) p.((i + j) mod 16) :: !out;
          incr ops
        done
      done;
      (!ops, List.rev !out)
  in
  let intra_image man3 =
    let inputs = eca_setup man3 in
    fun () ->
      (* several full BFS fixpoints so the row measures more than one
         cache-cold traversal; each round re-does real work because gc
         flushes the computed cache *)
      let ops = ref 0 in
      let reached = ref [] in
      for _ = 1 to 6 do
        let o, r = image_bfs inputs in
        ops := !ops + o;
        reached := r :: !reached;
        ignore (Bdd.gc man3)
      done;
      (!ops, !reached)
  in
  let intra_case name mk =
    let run jobs =
      let m = Bdd.new_man ~kernel_jobs:jobs () in
      let work = mk m in
      ignore (Bdd.gc m);
      let (ops, result), dt = wall work in
      (m, ops, result, dt)
    in
    let m1, ops1, r1, t1 = run 1 in
    let mn, _opsn, rn, tn = run kernel_jobs in
    let agree =
      let back = Bdd.import m1 (Bdd.export mn rn) in
      List.length back = List.length r1 && List.for_all2 Bdd.equal back r1
    in
    Bdd.set_kernel_jobs mn 1 (* park the worker domains *);
    if not agree then begin
      Printf.eprintf
        "bench bdd: intra %s results diverge across kernel_jobs\n" name;
      exit 1
    end;
    let speedup = if tn > 0.0 then t1 /. tn else 0.0 in
    pr "  intra %-8s kj=1 %7.3fs  kj=%d %7.3fs  speedup %5.2fx  agree %b@."
      name t1 kernel_jobs tn speedup agree;
    Obs.Json.Obj
      [
        ("kernel", Obs.Json.Str name);
        ("ops", Obs.Json.Int ops1);
        ("kj1_time_s", Obs.Json.Float t1);
        ("kjn", Obs.Json.Int kernel_jobs);
        ("kjn_time_s", Obs.Json.Float tn);
        ("speedup", Obs.Json.Float speedup);
        ("results_agree", Obs.Json.Bool agree);
      ]
  in
  let intra_rows =
    [ intra_case "ite" intra_ite; intra_case "and_exists" intra_image ]
  in
  let j =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "bdd");
        ("schema", Obs.Json.Str Obs.schema_version);
        ("pool_vars", Obs.Json.Int nvars);
        ("image_bits", Obs.Json.Int bits);
        ("rounds", Obs.Json.Int rounds);
        ("kernel_jobs", Obs.Json.Int kernel_jobs);
        ("host_cores", Obs.Json.Int (host_cores ()));
        ("kernels", Obs.Json.List kernels);
        ("intra", Obs.Json.List intra_rows);
        ("obs", Obs.to_json (Obs.snapshot (Bdd.stats man)));
        ("obs_image", Obs.to_json (Obs.snapshot (Bdd.stats man2)));
      ]
  in
  write_file "BENCH_bdd.json" (Obs.Json.to_string j);
  pr "wrote BENCH_bdd.json@."

(* ------------------------------------------------------------------ *)
(* Parallel scaling -> BENCH_par.json (schema hsis-par/3; /3 added the
   additive [recommended_domains] and [host_cores] members).

   - fuzz: differential iterations spread over worker domains.  Also
     cross-checks the determinism contract: the parallel report (minus
     elapsed/pool members) must be byte-identical to the sequential one.
   - scaled: each parameterized design (ring / philos at benchmark sizes)
     measured four ways — sequential [run_pif], shared-work [-j 1]
     (no-regression check), shared-work [-j jobs] (snapshot-shipped TR and
     reach set), and share-nothing [-j jobs] (every task rebuilds from
     source).  Verdict strings and exit codes must agree across all four.

   Each (design, mode) cell runs in a fresh process (the bench re-execs
   itself with the hidden [_par-probe] subcommand): back-to-back in-process
   measurement lets the earlier runs' grown major heap inflate the later
   ones by 20-40%, which is enough to drown the effects being measured. *)

let verdict_chars rs =
  String.concat ""
    (List.map
       (fun (r : _ Hsis.property_result) ->
         match r.Hsis.pr_verdict with
         | Hsis_limits.Verdict.Pass -> "P"
         | Hsis_limits.Verdict.Fail _ -> "F"
         | Hsis_limits.Verdict.Inconclusive _ -> "I")
       rs)

let par_probe name mode jobs =
  let m =
    match Models.by_name name with
    | Some m -> m
    | None -> failwith ("par probe: unknown design " ^ name)
  in
  let pif = Model.parse_pif m in
  let d = Hsis.read_verilog m.Model.verilog in
  Hsis.set_reach_profile d false;
  let (report, obs), t =
    wall (fun () ->
        match mode with
        | "seq" -> (Hsis.run_pif ~witnesses:false d pif, Obs.merge [])
        | "sw" -> Hsis.run_pif_par ~witnesses:false ~share:true ~jobs d pif
        | "sn" -> Hsis.run_pif_par ~witnesses:false ~share:false ~jobs d pif
        | _ -> failwith ("par probe: unknown mode " ^ mode))
  in
  let snap = obs.Obs.man.Obs.snap in
  Printf.printf "PROBE time %.6f\n" t;
  Printf.printf "PROBE exit %d\n" (Hsis.report_exit_code report);
  Printf.printf "PROBE verdicts %s%s\n"
    (verdict_chars report.Hsis.ctl)
    (verdict_chars report.Hsis.lc);
  Printf.printf "PROBE snap %d %d %d %d\n" snap.Obs.Snap.exports
    snap.Obs.Snap.imports snap.Obs.Snap.nodes snap.Obs.Snap.bytes

type probe = {
  pb_time : float;
  pb_exit : int;
  pb_verdicts : string;
  pb_snap : int * int * int * int;  (* exports, imports, nodes, bytes *)
}

let run_probe name mode jobs =
  let out = Filename.temp_file "hsis_probe" ".txt" in
  let cmd =
    Printf.sprintf "%s _par-probe %s %s %d > %s"
      (Filename.quote Sys.executable_name)
      (Filename.quote name) mode jobs (Filename.quote out)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then
    failwith (Printf.sprintf "par probe %s %s exited %d" name mode rc);
  let ic = open_in out in
  let p =
    ref { pb_time = 0.0; pb_exit = 0; pb_verdicts = ""; pb_snap = (0, 0, 0, 0) }
  in
  (try
     while true do
       let line = input_line ic in
       (try Scanf.sscanf line "PROBE time %f" (fun t -> p := { !p with pb_time = t })
        with Scanf.Scan_failure _ | Failure _ -> ());
       (try Scanf.sscanf line "PROBE exit %d" (fun e -> p := { !p with pb_exit = e })
        with Scanf.Scan_failure _ | Failure _ -> ());
       (try
          Scanf.sscanf line "PROBE verdicts %s"
            (fun v -> p := { !p with pb_verdicts = v })
        with Scanf.Scan_failure _ | Failure _ -> ());
       (try
          Scanf.sscanf line "PROBE snap %d %d %d %d"
            (fun e i n b -> p := { !p with pb_snap = (e, i, n, b) })
        with Scanf.Scan_failure _ | Failure _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  !p

let scaled_row ~jobs name =
  let p_seq = run_probe name "seq" 1 in
  let p_sw1 = run_probe name "sw" 1 in
  let p_sw = run_probe name "sw" jobs in
  let p_sn = run_probe name "sn" jobs in
  let agree =
    List.for_all
      (fun p -> p.pb_verdicts = p_seq.pb_verdicts && p.pb_exit = p_seq.pb_exit)
      [ p_sw1; p_sw; p_sn ]
  in
  let speedup_vs_sn = p_sn.pb_time /. Float.max 1e-9 p_sw.pb_time in
  let speedup_vs_seq = p_seq.pb_time /. Float.max 1e-9 p_sw.pb_time in
  let j1_ratio = p_sw1.pb_time /. Float.max 1e-9 p_seq.pb_time in
  let e, i, n, b = p_sw.pb_snap in
  pr
    "  %-8s seq %6.2fs  sw-j1 %6.2fs (%.2fx)  sw-j%d %6.2fs  sn-j%d %6.2fs  \
     vs-sn %5.2fx  vs-seq %5.2fx  agree %b@."
    name p_seq.pb_time p_sw1.pb_time j1_ratio jobs p_sw.pb_time jobs
    p_sn.pb_time speedup_vs_sn speedup_vs_seq agree;
  let row =
    Obs.Json.Obj
      [
        ("design", Obs.Json.Str name);
        ("props", Obs.Json.Int (String.length p_seq.pb_verdicts));
        ("exit_code", Obs.Json.Int p_seq.pb_exit);
        ("seq_s", Obs.Json.Float p_seq.pb_time);
        ("sw_j1_s", Obs.Json.Float p_sw1.pb_time);
        ("sw_s", Obs.Json.Float p_sw.pb_time);
        ("sn_s", Obs.Json.Float p_sn.pb_time);
        ("speedup_vs_sn", Obs.Json.Float speedup_vs_sn);
        ("speedup_vs_seq", Obs.Json.Float speedup_vs_seq);
        ("j1_ratio", Obs.Json.Float j1_ratio);
        ("verdicts_agree", Obs.Json.Bool agree);
        ( "snapshot",
          Obs.Json.Obj
            [
              ("exports", Obs.Json.Int e);
              ("imports", Obs.Json.Int i);
              ("nodes", Obs.Json.Int n);
              ("bytes", Obs.Json.Int b);
            ] );
      ]
  in
  (row, agree)

let par_bench ?(jobs = 4) () =
  let open Hsis_par in
  pr "@.== Parallel scaling (%d jobs) ==@." jobs;
  (* fuzz workload *)
  let fuzz_cfg j =
    let open Hsis_gen in
    { Diff.default_config with Diff.iters = 150; seed = 42; jobs = j }
  in
  let seq_report, t_fseq = wall (fun () -> Hsis_gen.Diff.run (fuzz_cfg 1)) in
  let par_report, t_fpar = wall (fun () -> Hsis_gen.Diff.run (fuzz_cfg jobs)) in
  (* scheduling-independent members only: elapsed and pool stats differ
     between runs by construction *)
  let strip = function
    | Obs.Json.Obj ms ->
        Obs.Json.Obj
          (List.filter
             (fun (k, _) -> not (List.mem k [ "elapsed_s"; "jobs"; "pool" ]))
             ms)
    | j -> j
  in
  let canon r = Obs.Json.to_string (strip (Hsis_gen.Diff.report_to_json r)) in
  let fuzz_identical = canon seq_report = canon par_report in
  let fuzz_speedup = t_fseq /. Float.max 1e-9 t_fpar in
  pr "  fuzz  %d iters: seq %.2fs, par %.2fs (%.2fx), reports identical %b@."
    seq_report.Hsis_gen.Diff.iterations t_fseq t_fpar fuzz_speedup
    fuzz_identical;
  (* scaled workload: one row per parameterized design, each cell in a
     fresh process; property checking fanned out within each design *)
  let designs = [ "ring8"; "ring10"; "philos8" ] in
  pr "  scaled designs (per-mode fresh process, %d jobs):@." jobs;
  let rows = List.map (scaled_row ~jobs) designs in
  let rows_agree = List.for_all snd rows in
  let j =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "par");
        ("schema", Obs.Json.Str "hsis-par/3");
        ("obs_schema", Obs.Json.Str Obs.schema_version);
        ("jobs", Obs.Json.Int jobs);
        ("cores", Obs.Json.Int (Par.default_jobs ()));
        ("recommended_domains", Obs.Json.Int (Par.default_jobs ()));
        ("host_cores", Obs.Json.Int (host_cores ()));
        ( "fuzz",
          Obs.Json.Obj
            [
              ("iters", Obs.Json.Int seq_report.Hsis_gen.Diff.iterations);
              ("seed", Obs.Json.Int 42);
              ("seq_s", Obs.Json.Float t_fseq);
              ("par_s", Obs.Json.Float t_fpar);
              ("speedup", Obs.Json.Float fuzz_speedup);
              ("identical_reports", Obs.Json.Bool fuzz_identical);
            ] );
        ("scaled", Obs.Json.List (List.map fst rows));
      ]
  in
  write_file "BENCH_par.json" (Obs.Json.to_string j);
  pr "wrote BENCH_par.json@.";
  if not (fuzz_identical && rows_agree) then begin
    prerr_endline "par bench: parallel results diverged from sequential";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* TR-strategy scaling -> BENCH_scale.json (schema hsis-scale/1).

   Nodes/time-vs-N curves for the three TR strategies ([--tr mono], [part],
   [iso]) on the hierarchical scaled families.  Each (design, strategy)
   cell runs in a fresh process (the hidden [_scale-probe] subcommand) so
   the peak-live-node high-water mark measures that strategy's
   construction and fixpoints alone, not a shared heap's history.
   [--check] turns the expected shape into assertions (CI's scale-smoke
   job): verdicts and exit codes identical across strategies on every
   row, and on at least one family's largest size a monotone peak
   ordering iso <= part <= mono. *)

let scale_probe name strat =
  let m =
    match Models.by_name name with
    | Some m -> m
    | None -> failwith ("scale probe: unknown design " ^ name)
  in
  let strategy =
    match Hsis_fsm.Trans.strategy_of_name strat with
    | Some s -> s
    | None -> failwith ("scale probe: unknown strategy " ^ strat)
  in
  let pif = Model.parse_pif m in
  (* construction cost first: what the strategy directly controls.  The
     monolithic product is materialized lazily on the first image call,
     so force it here to charge its conjunction intermediates to the
     build phase rather than to whichever engine runs first. *)
  let d, t_build =
    wall (fun () ->
        let d = Hsis.read_verilog ~strategy m.Model.verilog in
        (match strategy with
        | Hsis_fsm.Trans.Monolithic ->
            ignore (Hsis_fsm.Trans.monolithic d.Hsis.trans)
        | Hsis_fsm.Trans.Partitioned | Hsis_fsm.Trans.Iso_shared -> ());
        d)
  in
  let build_peak = (Hsis.stats d).Obs.arena.Obs.Arena.peak_live in
  Hsis.set_reach_profile d false;
  let report, t_run =
    wall (fun () ->
        ignore (Hsis.reached_states d);
        Hsis.run_pif ~witnesses:false d pif)
  in
  let tr = Hsis_fsm.Trans.tr_profile d.Hsis.trans in
  Printf.printf "PROBE time %.6f\n" (t_build +. t_run);
  Printf.printf "PROBE read %.6f\n" t_build;
  Printf.printf "PROBE states %.0f\n" (Hsis.reached_states d);
  Printf.printf "PROBE buildpeak %d\n" build_peak;
  Printf.printf "PROBE peak %d\n"
    (Hsis.stats d).Obs.arena.Obs.Arena.peak_live;
  Printf.printf "PROBE exit %d\n" (Hsis.report_exit_code report);
  Printf.printf "PROBE verdicts %s%s\n"
    (verdict_chars report.Hsis.ctl)
    (verdict_chars report.Hsis.lc);
  Printf.printf "PROBE share %d %d %d\n" tr.Obs.tr_masters tr.Obs.tr_instances
    tr.Obs.tr_shared_nodes_saved

type scale_cell = {
  sc_time : float;
  sc_read : float;
  sc_states : float;
  sc_build_peak : int;  (* peak live nodes after relation construction *)
  sc_peak : int;  (* peak live nodes over the whole run *)
  sc_exit : int;
  sc_verdicts : string;
  sc_share : int * int * int;  (* masters, instances, nodes saved *)
}

let run_scale_probe name strat =
  let out = Filename.temp_file "hsis_scale" ".txt" in
  let cmd =
    Printf.sprintf "%s _scale-probe %s %s > %s"
      (Filename.quote Sys.executable_name)
      (Filename.quote name) strat (Filename.quote out)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then
    failwith (Printf.sprintf "scale probe %s %s exited %d" name strat rc);
  let ic = open_in out in
  let p =
    ref
      {
        sc_time = 0.0;
        sc_read = 0.0;
        sc_states = 0.0;
        sc_build_peak = 0;
        sc_peak = 0;
        sc_exit = 0;
        sc_verdicts = "";
        sc_share = (0, 0, 0);
      }
  in
  let scan line fmt f =
    try Scanf.sscanf line fmt f with Scanf.Scan_failure _ | Failure _ -> ()
  in
  (try
     while true do
       let line = input_line ic in
       scan line "PROBE time %f" (fun t -> p := { !p with sc_time = t });
       scan line "PROBE read %f" (fun t -> p := { !p with sc_read = t });
       scan line "PROBE states %f" (fun s -> p := { !p with sc_states = s });
       scan line "PROBE buildpeak %d" (fun n ->
           p := { !p with sc_build_peak = n });
       scan line "PROBE peak %d" (fun n -> p := { !p with sc_peak = n });
       scan line "PROBE exit %d" (fun e -> p := { !p with sc_exit = e });
       scan line "PROBE verdicts %s" (fun v -> p := { !p with sc_verdicts = v });
       scan line "PROBE share %d %d %d" (fun m i s ->
           p := { !p with sc_share = (m, i, s) })
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  !p

let scale_strategies = [ "mono"; "part"; "iso" ]

let scale_row family n =
  let design = Printf.sprintf "%s%d" family n in
  let cells = List.map (fun s -> (s, run_scale_probe design s)) scale_strategies in
  let base = snd (List.hd cells) in
  let agree =
    List.for_all
      (fun (_, c) ->
        c.sc_verdicts = base.sc_verdicts && c.sc_exit = base.sc_exit)
      cells
  in
  pr "  %-9s" design;
  List.iter
    (fun (s, c) ->
      pr "  %s %6.2fs build %7d peak %8d" s c.sc_time c.sc_build_peak c.sc_peak)
    cells;
  pr "  agree %b@." agree;
  let cell_json (s, c) =
    let masters, instances, saved = c.sc_share in
    ( s,
      Obs.Json.Obj
        [
          ("time_s", Obs.Json.Float c.sc_time);
          ("build_s", Obs.Json.Float c.sc_read);
          ("build_peak_live", Obs.Json.Int c.sc_build_peak);
          ("peak_live", Obs.Json.Int c.sc_peak);
          ("exit_code", Obs.Json.Int c.sc_exit);
          ("masters", Obs.Json.Int masters);
          ("instances", Obs.Json.Int instances);
          ("shared_nodes_saved", Obs.Json.Int saved);
        ] )
  in
  let row =
    Obs.Json.Obj
      [
        ("design", Obs.Json.Str design);
        ("n", Obs.Json.Int n);
        ("states", Obs.Json.Float base.sc_states);
        ("props", Obs.Json.Int (String.length base.sc_verdicts));
        ("verdicts_agree", Obs.Json.Bool agree);
        ("cells", Obs.Json.Obj (List.map cell_json cells));
      ]
  in
  (row, cells, agree)

let scale_bench ?(small = false) ?(check = false) () =
  let sizes = if small then [ 3; 4 ] else [ 4; 6; 8 ] in
  pr "@.== TR-strategy scaling (%s) ==@."
    (String.concat "," (List.map string_of_int sizes));
  let families = [ "ring"; "philos" ] in
  let results =
    List.map
      (fun family ->
        pr "  %s:@." family;
        (family, List.map (scale_row family) sizes))
      families
  in
  let all_agree =
    List.for_all
      (fun (_, rows) -> List.for_all (fun (_, _, a) -> a) rows)
      results
  in
  (* the headline curve: sharing must show up as a lower construction
     high-water mark at the largest size of some family.  Construction is
     what the strategy controls — monolithic pays the product and its
     conjunction intermediates, partitioned only the parts, iso-shared
     one master per group plus cheap permutes — and BDD construction is
     deterministic, so the ordering is assertable without tolerance. *)
  let peak_of cells s = (List.assoc s cells).sc_build_peak in
  let ordered_at_top (_, rows) =
    let _, cells, _ = List.nth rows (List.length rows - 1) in
    peak_of cells "iso" <= peak_of cells "part"
    && peak_of cells "part" <= peak_of cells "mono"
  in
  let any_ordered = List.exists ordered_at_top results in
  let j =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "scale");
        ("schema", Obs.Json.Str "hsis-scale/1");
        ("obs_schema", Obs.Json.Str Obs.schema_version);
        ("recommended_domains", Obs.Json.Int (Hsis_par.Par.default_jobs ()));
        ("host_cores", Obs.Json.Int (host_cores ()));
        ("sizes", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) sizes));
        ("verdicts_agree", Obs.Json.Bool all_agree);
        ("peak_ordered_at_top", Obs.Json.Bool any_ordered);
        ( "families",
          Obs.Json.List
            (List.map
               (fun (family, rows) ->
                 Obs.Json.Obj
                   [
                     ("family", Obs.Json.Str family);
                     ( "rows",
                       Obs.Json.List (List.map (fun (r, _, _) -> r) rows) );
                   ])
               results) );
      ]
  in
  write_file "BENCH_scale.json" (Obs.Json.to_string j);
  pr "wrote BENCH_scale.json@.";
  if check then begin
    if not all_agree then begin
      prerr_endline "scale bench: verdicts diverged across TR strategies";
      exit 1
    end;
    if not any_ordered then begin
      prerr_endline
        "scale bench: no family shows iso <= part <= mono peak-live ordering \
         at its largest size";
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Serve-mode benchmark -> BENCH_serve.json.

   Two measurements that justify the daemon's existence:

   - re-check latency, cold vs warm: a user edits one property and
     re-checks.  Cold pays parse/flatten/order/relation/reach before the
     property runs; warm hits the session cache and runs just the
     property.  Same single-property PIF both times, so the ratio
     isolates the cached-state win.
   - throughput under concurrent clients: N client threads hammer a
     Unix-socket daemon with check jobs over a warm cache; jobs/sec is
     wall-clock over total completed jobs. *)

let serve_bench ?(clients = 2) ?(jobs_per_client = 20) () =
  let open Hsis_serve in
  (* One edited property: take the model's first invariant-style (AG)
     ctl line — the canonical edit-and-re-check workload — and rename
     it, as if the user had just rewritten it. *)
  let edited_property (m : Model.t) =
    let lines = String.split_on_char '\n' m.Model.pif in
    let is_ctl l =
      let l = String.trim l in
      String.length l > 4 && String.sub l 0 4 = "ctl "
    in
    let is_invariant l = is_ctl l && String.length l > 0
      && Option.is_some (String.index_opt l '"')
      &&
      let q = String.index l '"' in
      String.length l > q + 3 && String.sub l (q + 1) 3 = "AG "
    in
    let line =
      match List.find_opt is_invariant lines with
      | Some l -> Some l
      | None -> List.find_opt is_ctl lines
    in
    match line with
    | None -> failwith (m.Model.name ^ ": no ctl property to edit")
    | Some line -> (
        match String.split_on_char ' ' (String.trim line) with
        | "ctl" :: name :: rest ->
            String.concat " " (("ctl" :: (name ^ "_v2") :: rest))
        | _ -> failwith (m.Model.name ^ ": unparseable ctl line"))
  in
  let check_request ?(id = Obs.Json.Null) ?pif source =
    {
      Proto.r_id = id;
      r_op = Proto.Check;
      r_design = Some source;
      r_pif = pif;
      r_budget = Proto.no_budget;
      r_jobs = None;
      r_kernel_jobs = None;
      r_tr = None;
      r_fail_fast = false;
      r_witnesses = false;
      r_stats = false;
    }
  in
  pr "serve bench: re-check latency (one edited property), cold vs warm@.";
  let server = Server.create () in
  let recheck_rows =
    List.map
      (fun (m : Model.t) ->
        let req =
          check_request ~pif:(edited_property m)
            (Proto.Verilog m.Model.verilog)
        in
        let cold = Server.handle_request server req in
        let warm = Server.handle_request server req in
        (match (cold.Proto.p_status, warm.Proto.p_status) with
        | `Ok, `Ok -> ()
        | _ ->
            prerr_endline ("serve bench: " ^ m.Model.name ^ " errored");
            exit 1);
        if cold.Proto.p_exit_code <> warm.Proto.p_exit_code then begin
          prerr_endline
            ("serve bench: warm verdict diverged on " ^ m.Model.name);
          exit 1
        end;
        let speedup =
          cold.Proto.p_elapsed /. Float.max 1e-9 warm.Proto.p_elapsed
        in
        pr "  %-12s cold %8.4fs  warm %8.4fs  (%6.1fx)@." m.Model.name
          cold.Proto.p_elapsed warm.Proto.p_elapsed speedup;
        (m, cold.Proto.p_elapsed, warm.Proto.p_elapsed, speedup))
      (Models.table1_small ())
  in
  let cold_total =
    List.fold_left (fun a (_, c, _, _) -> a +. c) 0.0 recheck_rows
  in
  let warm_total =
    List.fold_left (fun a (_, _, w, _) -> a +. w) 0.0 recheck_rows
  in
  let total_speedup = cold_total /. Float.max 1e-9 warm_total in
  pr "  %-12s cold %8.4fs  warm %8.4fs  (%6.1fx)@." "TOTAL" cold_total
    warm_total total_speedup;
  (* Throughput: a socket daemon under [clients] concurrent client
     threads, cache pre-warmed so the steady state is measured. *)
  pr "serve bench: throughput, %d clients x %d jobs@." clients
    jobs_per_client;
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hsis-bench-%d.sock" (Unix.getpid ()))
  in
  let daemon = Server.create () in
  let daemon_thread =
    Thread.create (fun () -> Server.listen daemon ~socket_path) ()
  in
  let wait_for_socket () =
    let rec go n =
      if n = 0 then failwith "serve bench: daemon socket never appeared";
      if not (Sys.file_exists socket_path) then begin
        Thread.delay 0.05;
        go (n - 1)
      end
    in
    go 100
  in
  wait_for_socket ();
  let designs = [ "pingpong"; "philos" ] in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let send_request oc req =
    output_string oc (Obs.Json.to_string (Proto.request_to_json req));
    output_char oc '\n';
    flush oc
  in
  let read_response ic = Proto.response_of_json (Obs.Json.parse (input_line ic)) in
  let roundtrip ic oc req =
    send_request oc req;
    read_response ic
  in
  (* warm the cache once per design *)
  let fd, ic, oc = connect () in
  List.iter
    (fun name -> ignore (roundtrip ic oc (check_request (Proto.Builtin name))))
    designs;
  Unix.close fd;
  let ok_jobs = Array.make clients 0 in
  let client_run c () =
    let fd, ic, oc = connect () in
    for i = 0 to jobs_per_client - 1 do
      let name = List.nth designs ((c + i) mod List.length designs) in
      let id = Obs.Json.Str (Printf.sprintf "c%d-%d" c i) in
      let resp = roundtrip ic oc (check_request ~id (Proto.Builtin name)) in
      match resp.Proto.p_status with
      | `Ok -> ok_jobs.(c) <- ok_jobs.(c) + 1
      | `Error _ -> ()
    done;
    Unix.close fd
  in
  let (), elapsed =
    wall (fun () ->
        let ts = List.init clients (fun c -> Thread.create (client_run c) ()) in
        List.iter Thread.join ts)
  in
  let completed = Array.fold_left ( + ) 0 ok_jobs in
  let total = clients * jobs_per_client in
  let jobs_per_s = float_of_int completed /. Float.max 1e-9 elapsed in
  let fd, ic, oc = connect () in
  let shutdown_resp =
    roundtrip ic oc
      {
        (check_request (Proto.Builtin "pingpong")) with
        Proto.r_op = Proto.Shutdown;
        r_design = None;
      }
  in
  ignore shutdown_resp;
  Unix.close fd;
  Thread.join daemon_thread;
  let cache_stats = Scache.stats (Server.cache daemon) in
  pr "  %d/%d jobs ok in %.2fs = %.1f jobs/s (cache: %d hits, %d misses)@."
    completed total elapsed jobs_per_s cache_stats.Scache.hits
    cache_stats.Scache.misses;
  let j =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "serve");
        ("schema", Obs.Json.Str Proto.schema_version);
        ( "recheck",
          Obs.Json.List
            (List.map
               (fun ((m : Model.t), cold, warm, speedup) ->
                 Obs.Json.Obj
                   [
                     ("design", Obs.Json.Str m.Model.name);
                     ("cold_s", Obs.Json.Float cold);
                     ("warm_s", Obs.Json.Float warm);
                     ("speedup", Obs.Json.Float speedup);
                   ])
               recheck_rows) );
        ( "recheck_total",
          Obs.Json.Obj
            [
              ("cold_s", Obs.Json.Float cold_total);
              ("warm_s", Obs.Json.Float warm_total);
              ("speedup", Obs.Json.Float total_speedup);
            ] );
        ( "throughput",
          Obs.Json.Obj
            [
              ("clients", Obs.Json.Int clients);
              ("jobs", Obs.Json.Int total);
              ("completed", Obs.Json.Int completed);
              ("elapsed_s", Obs.Json.Float elapsed);
              ("jobs_per_s", Obs.Json.Float jobs_per_s);
              ("cache_hits", Obs.Json.Int cache_stats.Scache.hits);
              ("cache_misses", Obs.Json.Int cache_stats.Scache.misses);
            ] );
      ]
  in
  write_file "BENCH_serve.json" (Obs.Json.to_string j);
  pr "wrote BENCH_serve.json@.";
  if completed <> total then begin
    prerr_endline "serve bench: some jobs failed";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Observability smoke check (run from the test alias): emit a snapshot
   for a small design, re-parse it, and fail loudly if any section that
   downstream tooling depends on is missing.  Guards against stats
   emission silently breaking. *)

let json_smoke () =
  let d = Hsis.read_verilog (bus_model false) in
  ignore (Hsis.reached_states d);
  let mc =
    Hsis.check_ctl d ~name:"AG" (Hsis_auto.Ctl.parse "AG !(out1=1 & out2=1)")
  in
  if not (Hsis_limits.Verdict.holds mc.Hsis.pr_verdict) then begin
    prerr_endline "json smoke: sanity property unexpectedly failed";
    exit 1
  end;
  let snap = Hsis.snapshot d in
  let s = Obs.json_string snap in
  let die msg =
    prerr_endline ("json smoke: " ^ msg);
    prerr_endline s;
    exit 1
  in
  let round =
    match Obs.Json.parse s with
    | j -> Obs.of_json j
    | exception Obs.Json.Parse_error m -> die ("emitted JSON fails to parse: " ^ m)
  in
  let lookups =
    Obs.Cache.hits round.Obs.man.Obs.cache + Obs.Cache.misses round.Obs.man.Obs.cache
  in
  if lookups = 0 then die "no cache lookups recorded";
  if round.Obs.man.Obs.arena.Obs.Arena.peak_live <= 0 then die "no peak live nodes";
  List.iter
    (fun phase ->
      if not (List.mem_assoc phase round.Obs.phases) then
        die ("missing phase: " ^ phase))
    [ "parse"; "flatten"; "order"; "relation"; "reach"; "mc" ];
  if round.Obs.reach = [] then die "empty reach profile";
  if round.Obs.relation = None then die "missing relation profile";
  print_endline s

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match arg with
  | "table1" -> table1 ()
  | "table1-small" -> table1 ~scale:`Small ()
  | "fig2" -> fig2 ()
  | "quant" -> quant_bench ()
  | "ablate-quant" -> ablate_quant ()
  | "ablate-tr" -> ablate_tr ()
  | "ablate-dc" -> ablate_dc ()
  | "ablate-efd" -> ablate_efd ()
  | "bech" -> run_bechamel ()
  | "bdd" ->
      let kj = ref 2 in
      Array.iteri
        (fun i a ->
          if a = "--kernel-jobs" && i + 1 < Array.length Sys.argv then
            kj := int_of_string Sys.argv.(i + 1))
        Sys.argv;
      bdd_bench ~kernel_jobs:!kj ()
  | "par" ->
      let jobs =
        if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4
      in
      par_bench ~jobs ()
  | "_par-probe" ->
      (* internal: one (design, mode, jobs) cell of the par bench, run in
         its own process so modes don't share a heap *)
      par_probe Sys.argv.(2) Sys.argv.(3) (int_of_string Sys.argv.(4))
  | "scale" ->
      let rest =
        Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
      in
      scale_bench ~small:(List.mem "small" rest)
        ~check:(List.mem "--check" rest) ()
  | "_scale-probe" ->
      (* internal: one (design, strategy) cell of the scale bench, run in
         its own process so the peak-live high-water mark is its own *)
      scale_probe Sys.argv.(2) Sys.argv.(3)
  | "serve" ->
      let clients =
        if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2
      in
      serve_bench ~clients ()
  | "json" -> json_smoke ()
  | "all" ->
      fig2 ();
      quant_bench ();
      ablate_quant ();
      ablate_tr ();
      ablate_dc ();
      ablate_efd ();
      run_bechamel ();
      bdd_bench ();
      table1 ()
  | other ->
      prerr_endline ("unknown bench: " ^ other);
      exit 1
