(* Milner's cycler at growing scales: reachable states grow as n * 2^n,
   while the symbolic representation stays small — the "10^20 states and
   beyond" effect that motivated BDD-based verification.  Also contrasts
   the three early-quantification heuristics on the same design.

   Run with: dune exec examples/scheduler_scaling.exe *)

open Hsis_obs
open Hsis_models

let run n =
  let m = Scheduler.make ~n () in
  let (design, states), dt =
    Obs.Clock.wall (fun () ->
        let design = Hsis_core.Hsis.read_verilog m.Model.verilog in
        (design, Hsis_core.Hsis.reached_states design))
  in
  let st = Hsis_core.Hsis.stats design in
  Format.printf "  n=%2d  %12.0f states   %7d bdd nodes   %6.2fs@." n states
    st.Obs.arena.Obs.Arena.live dt

let heuristic_run n h name =
  let m = Scheduler.make ~n () in
  let (), dt =
    Obs.Clock.wall (fun () ->
        let design = Hsis_core.Hsis.read_verilog ~heuristic:h m.Model.verilog in
        ignore (Hsis_core.Hsis.reached_states design))
  in
  Format.printf "  %-14s %6.2fs@." name dt

let () =
  Format.printf "=== scheduler scaling (states = n * 2^n) ===@.@.";
  List.iter run [ 4; 6; 8; 10; 12; 14; 17 ];
  Format.printf "@.early-quantification heuristics at n=12:@.";
  heuristic_run 12 Hsis_fsm.Trans.Min_width "min-width";
  heuristic_run 12 Hsis_fsm.Trans.Pair_clustering "pair-clustering";
  heuristic_run 12 Hsis_fsm.Trans.Naive "naive"
