(* Quickstart: the full HSIS flow of the paper's Figure 1 on a tiny
   design — Verilog in, BLIF-MV in the middle, CTL + language containment
   out, with a bug report for the failing property.

   Run with: dune exec examples/quickstart.exe *)

let verilog =
  {|
// A traffic-light pair at a crossing; the east-west light controller has
// a deliberate bug: it can jump from RED straight to GREEN while the
// north-south light is still GREEN.
module crossing(clk);
  input clk;
  enum {GREEN, YELLOW, RED} reg ns;
  enum {GREEN, YELLOW, RED} reg ew;
  wire go;
  assign go = $ND(0, 1);
  initial ns = GREEN;
  initial ew = RED;
  always @(posedge clk) begin
    case (ns)
      GREEN:  if (go) ns <= YELLOW;
      YELLOW: ns <= RED;
      RED:    if (go) ns <= GREEN;
    endcase
  end
  always @(posedge clk) begin
    case (ew)
      GREEN:  if (go) ew <= YELLOW;
      YELLOW: ew <= RED;
      RED:    if (go) ew <= GREEN;   // bug: ignores the other light
    endcase
  end
endmodule
|}

let pif =
  {|
ctl safety "AG !(ns=GREEN & ew=GREEN)";
ctl ns_moves "EF ns=RED";

automaton never_both_green {
  states ok; init ok;
  edge ok ok "!(ns=GREEN & ew=GREEN)";
  accept inf { ok } fin { };
}
lc never_both_green;
|}

let () =
  Format.printf "=== HSIS quickstart ===@.@.";
  (* 1. Verilog -> BLIF-MV (vl2mv) *)
  let blifmv = Hsis_verilog.Elab.to_blifmv verilog in
  Format.printf "compiled %d lines of Verilog into %d lines of BLIF-MV@."
    (Hsis_blifmv.Ast.line_count verilog)
    (Hsis_blifmv.Ast.line_count blifmv);
  (* 2. read the design: build the symbolic transition structure *)
  let design = Hsis_core.Hsis.read_verilog verilog in
  Format.printf "reachable states: %.0f@.@."
    (Hsis_core.Hsis.reached_states design);
  (* 3. verify the PIF properties *)
  let props = Hsis_auto.Pif.parse pif in
  let report = Hsis_core.Hsis.run_pif ~witnesses:true design props in
  Format.printf "%a@." Hsis_core.Hsis.pp_report report;
  (* 4. the bug report: error trace for the failing containment check *)
  List.iter
    (fun (l : Hsis_core.Hsis.lc_evidence Hsis_core.Hsis.property_result) ->
      match l.Hsis_core.Hsis.pr_verdict with
      | Hsis_limits.Verdict.Fail
          { Hsis_core.Hsis.le_trace = Some t; le_trans } ->
          Format.printf "error trace for %s:@.%a@." l.Hsis_core.Hsis.pr_name
            (Hsis_debug.Trace.pp le_trans)
            t
      | _ -> ())
    report.Hsis_core.Hsis.lc;
  (* ... and the interactive-style debug tree for the failing CTL check *)
  List.iter
    (fun (c : Hsis_core.Hsis.ctl_evidence Hsis_core.Hsis.property_result) ->
      match c.Hsis_core.Hsis.pr_verdict with
      | Hsis_limits.Verdict.Fail
          { Hsis_core.Hsis.ce_explanation = Some e } ->
          Format.printf "debug tree for %s:@.%a@." c.Hsis_core.Hsis.pr_name
            (Hsis_debug.Mcdbg.pp design.Hsis_core.Hsis.trans)
            e
      | _ -> ())
    report.Hsis_core.Hsis.ctl
