(* The paper's Figure 2, literally: the two-state invariance automaton
   checking that out1 and out2 are never asserted at the same time, run
   against a two-writer bus model — once correct, once with a seeded
   arbitration bug.

   Run with: dune exec examples/mutex_lc.exe *)

open Hsis_auto

let bus_model ~buggy =
  Printf.sprintf
    {|
// Two writers arbitrated onto one bus.  The correct arbiter grants at
// most one requester; the buggy one grants both when both request.
module bus(clk);
  input clk;
  reg out1;
  reg out2;
  wire req1;
  wire req2;
  assign req1 = $ND(0, 1);
  assign req2 = $ND(0, 1);
  initial out1 = 0;
  initial out2 = 0;
  always @(posedge clk) begin
    if (req1 & !req2) begin out1 <= 1; out2 <= 0; end
    else if (req2 & !req1) begin out1 <= 0; out2 <= 1; end
    else if (req1 & req2) begin out1 <= %s; out2 <= 1; end
    else begin out1 <= 0; out2 <= 0; end
  end
endmodule
|}
    (if buggy then "1" else "0")

(* The Figure 2 automaton: state A accepts as long as the outputs are not
   simultaneously asserted; the "dotted box" (Rabin acceptance) keeps only
   the runs that stay in A forever. *)
let figure2 =
  {
    Autom.a_name = "fig2";
    a_states = [ "A"; "B" ];
    a_init = [ "A" ];
    a_edges =
      [
        { Autom.e_src = "A"; e_dst = "A"; e_guard = Expr.parse "!(out1=1 & out2=1)" };
        { Autom.e_src = "A"; e_dst = "B"; e_guard = Expr.parse "out1=1 & out2=1" };
        { Autom.e_src = "B"; e_dst = "B"; e_guard = Expr.True };
      ];
    a_pairs =
      [
        { Autom.inf_states = [ "A" ]; inf_edges = []; fin_states = [ "B" ];
          fin_edges = [] };
      ];
  }

let run ~buggy =
  let design = Hsis_core.Hsis.read_verilog (bus_model ~buggy) in
  let result = Hsis_core.Hsis.check_lc design figure2 in
  Format.printf "%s arbiter: containment %s (%.3fs)%s@."
    (if buggy then "buggy  " else "correct")
    (if Hsis_limits.Verdict.holds result.Hsis_core.Hsis.pr_verdict then
       "holds"
     else "FAILS")
    result.Hsis_core.Hsis.pr_time
    (match result.Hsis_core.Hsis.pr_early_step with
    | Some k -> Printf.sprintf " — caught by early failure detection at step %d" k
    | None -> "");
  (match result.Hsis_core.Hsis.pr_verdict with
  | Hsis_limits.Verdict.Fail { Hsis_core.Hsis.le_trace = Some t; le_trans } ->
      Format.printf "counterexample (the \"intelligent simulator\" output):@.%a@."
        (Hsis_debug.Trace.pp le_trans)
        t
  | _ -> ());
  (* cross-check with the CTL formulation of the same property, as the
     paper compares both formalisms on one example *)
  let ctl = Ctl.parse "AG !(out1=1 & out2=1)" in
  let mc = Hsis_core.Hsis.check_ctl design ~name:"AG-form" ctl in
  Format.printf "CTL AG !(out1 & out2): %s (%.3fs)@.@."
    (if Hsis_limits.Verdict.holds mc.Hsis_core.Hsis.pr_verdict then "holds"
     else "FAILS")
    mc.Hsis_core.Hsis.pr_time

let () =
  Format.printf "=== Figure 2: invariance by language containment ===@.@.";
  run ~buggy:false;
  run ~buggy:true
