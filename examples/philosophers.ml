(* Dining philosophers: mutual exclusion holds, but the liveness property
   fails on the classic deadlock — demonstrating how HSIS acts as an
   "intelligent simulator" that finds the offending input sequence for you.

   Run with: dune exec examples/philosophers.exe *)

open Hsis_models

let () =
  Format.printf "=== dining philosophers ===@.@.";
  let m = Philos.make () in
  let design = Hsis_core.Hsis.read_verilog m.Model.verilog in
  Format.printf "%d lines of Verilog -> %d lines of BLIF-MV, %.0f states@.@."
    (Option.value ~default:0 design.Hsis_core.Hsis.verilog_lines)
    design.Hsis_core.Hsis.blifmv_lines
    (Hsis_core.Hsis.reached_states design);
  let pif = Model.parse_pif m in
  let report = Hsis_core.Hsis.run_pif ~witnesses:true design pif in
  Format.printf "%a@." Hsis_core.Hsis.pp_report report;
  List.iter
    (fun (l : Hsis_core.Hsis.lc_evidence Hsis_core.Hsis.property_result) ->
      match l.Hsis_core.Hsis.pr_verdict with
      | Hsis_limits.Verdict.Fail
          { Hsis_core.Hsis.le_trace = Some t; le_trans } ->
          Format.printf
            "how philosopher 0 starves (prefix to the deadlock, then the \
             stuttering cycle):@.%a@."
            (Hsis_debug.Trace.pp le_trans)
            t
      | _ -> ())
    report.Hsis_core.Hsis.lc;
  (* also drive the state-based simulator along the first few states *)
  Format.printf "simulator walk:@.";
  let sim = Hsis_core.Hsis.simulator design in
  let net = Hsis_sim.Simulator.net sim in
  for i = 0 to 5 do
    Format.printf "  %d: %a@." i
      (Hsis_sim.Simulator.pp_state net)
      (Hsis_sim.Simulator.state sim);
    let opts = Hsis_sim.Simulator.options sim in
    if opts <> [] then Hsis_sim.Simulator.step sim (i mod List.length opts)
  done
