(* The paper's "future work" features, working together: the extended c/s
   model (synchrony trees), the .delay timing extension, the property
   library, and hierarchical refinement checking.

   Run with: dune exec examples/extensions.exe *)

open Hsis_blifmv
open Hsis_auto

let producer_consumer =
  {|
.model prodcons
.outputs item
.mv buf,nbuf 3
# the producer may insert when there is room
.table -> push
0
1
.table -> pop
0
1
.table buf push pop -> nbuf
0 1 - 1
1 1 0 2
1 0 1 0
1 1 1 1
2 - 1 1
2 0 0 2
2 1 0 2
0 0 - 0
1 0 0 1
.table buf -> item
0 0
1 1
2 1
.latch nbuf buf
.reset buf 0
.end
|}

let () =
  Format.printf "=== HSIS extensions tour ===@.@.";

  (* 1. property library: templates instead of hand-written CTL/automata *)
  let templates =
    [
      Proplib.invariant ~name:"buffer_bounded" (Expr.parse "buf!=2 | item=1");
      Proplib.response ~name:"refill" ~trigger:(Expr.parse "buf=0")
        ~response:(Expr.parse "item=1");
      Proplib.precedence ~name:"fill_first" ~first:(Expr.parse "buf=1")
        ~before:(Expr.parse "buf=2");
    ]
  in
  let pif_text = Proplib.to_pif templates in
  Format.printf "generated PIF from templates:@.%s@." pif_text;
  let design = Hsis_core.Hsis.read_blifmv producer_consumer in
  let report = Hsis_core.Hsis.run_pif design (Pif.parse pif_text) in
  Format.printf "%a@." Hsis_core.Hsis.pp_report report;

  (* 2. synchrony trees: run two producer/consumer pairs interleaved *)
  let twin =
    {|
.model twin
.subckt cell a out=x
.subckt cell b out=y
.end

.model cell
.outputs out
.table out -> nxt
0 1
1 0
.latch nxt out
.reset out 0
.end
|}
  in
  let flat = Flatten.flatten (Parser.parse twin) in
  let sync_states =
    Hsis_check.Enum.count_reachable (Net.of_model flat)
  in
  let inter = Stree.apply flat (Stree.interleaved flat) in
  let inter_states = Hsis_check.Enum.count_reachable (Net.of_model inter) in
  Format.printf
    "two togglers: %d states in lock-step, %d when interleaved via a \
     synchrony tree@.@."
    sync_states inter_states;

  (* 3. the timing extension: a bounded-delay wire *)
  let delayed =
    {|
.model delayed
.outputs s
.table s -> n
0 1
1 0
.latch n s
.reset s 0
.delay s 1 3
.end
|}
  in
  let net = Net.of_ast (Parser.parse delayed) in
  Format.printf
    "toggler with .delay 1..3: %d states (%d latches after expansion)@.@."
    (Hsis_check.Enum.count_reachable net)
    (List.length net.Net.latches);

  (* 4. hierarchical verification: a pipelined (fixed-delay) toggler
     refines a free boolean spec, but not the exact 1-cycle toggler *)
  let piped =
    Net.of_ast
      (Parser.parse
         "\n.model piped\n.outputs s\n.table s -> n\n0 1\n1 0\n.latch n s\n.reset s 0\n.delay s 2\n.end\n")
  in
  let free_spec =
    {|
.model free
.outputs s
.table -> c
0
1
.table c -> n
0 0
1 1
.table st -> s
0 0
1 1
.latch n st
.reset st 0
.end
|}
  in
  let exact = Net.of_ast (Parser.parse "
.model exact
.outputs s
.table s -> n
0 1
1 0
.latch n s
.reset s 0
.end
") in
  let spec = Net.of_ast (Parser.parse free_spec) in
  let r1 = Hsis_bisim.Simrel.refines ~obs:[ "s" ] ~impl:piped ~spec () in
  let r2 = Hsis_bisim.Simrel.refines ~obs:[ "s" ] ~impl:piped ~spec:exact () in
  Format.printf "pipelined toggler refines the free spec: %b@."
    (Hsis_bisim.Simrel.holds r1);
  Format.printf "pipelined toggler refines the exact toggler: %b@."
    (Hsis_bisim.Simrel.holds r2)
