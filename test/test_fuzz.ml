(* The fuzz harness's own tests: a fixed-seed differential smoke run (the
   symbolic engines vs the explicit oracle must agree on every iteration)
   and unit tests for the greedy shrinkers driven by synthetic predicates,
   so minimization is pinned down without involving any engine. *)

open Hsis_blifmv
open Hsis_auto
module Rng = Hsis_gen.Rng
module Gen = Hsis_gen.Gen
module Diff = Hsis_gen.Diff
module Shrink = Hsis_gen.Shrink

let seed = Rng.seed_from_env ~default:42 ()

(* ------------------------------------------------------------------ *)
(* Differential smoke run *)

let test_smoke () =
  let report =
    Diff.run { Diff.default_config with iters = 30; seed; shrink = true }
  in
  Alcotest.(check int)
    (Printf.sprintf "all iterations ran (HSIS_TEST_SEED=%d)" seed)
    30 report.Diff.iterations;
  (match report.Diff.discrepancies with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf
        "%d discrepancies (HSIS_TEST_SEED=%d), first: [%s] %s"
        (List.length report.Diff.discrepancies)
        seed
        (Diff.kind_name d.Diff.d_kind)
        d.Diff.d_detail);
  Alcotest.(check bool) "explored some states" true
    (report.Diff.states_explored > 0);
  Alcotest.(check bool) "checked some formulas" true
    (report.Diff.ctl_checked > 0)

(* Budget mode: every problem is re-checked under a deliberately tiny
   deterministic budget.  A budgeted run may come back inconclusive but
   must never contradict the unbounded verdict — any Budget_verdict
   discrepancy is a soundness bug in the interrupt machinery. *)
let test_budget_smoke () =
  let budget = Hsis_limits.Limits.make ~max_steps:2 ~max_nodes:2000 () in
  let report =
    Diff.run
      { Diff.default_config with iters = 15; seed; budget = Some budget }
  in
  Alcotest.(check int)
    (Printf.sprintf "all iterations ran (HSIS_TEST_SEED=%d)" seed)
    15 report.Diff.iterations;
  Alcotest.(check bool) "budget reruns happened" true
    (report.Diff.budget_checked > 0);
  match
    List.filter
      (fun d -> d.Diff.d_kind = Diff.Budget_verdict)
      report.Diff.discrepancies
  with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf
        "budgeted run contradicted unbounded run (HSIS_TEST_SEED=%d): %s"
        seed d.Diff.d_detail

(* Determinism: the same seed must generate the same problems, so a rerun
   produces an identical report modulo wall-clock time. *)
let test_deterministic () =
  let cfg = { Diff.default_config with iters = 5; seed = 7; log = None } in
  let r1 = Diff.run cfg and r2 = Diff.run cfg in
  Alcotest.(check int) "same states explored" r1.Diff.states_explored
    r2.Diff.states_explored;
  Alcotest.(check int) "same ctl count" r1.Diff.ctl_checked r2.Diff.ctl_checked;
  Alcotest.(check int) "same lc count" r1.Diff.lc_checked r2.Diff.lc_checked

(* ------------------------------------------------------------------ *)
(* Shrinker units (no engine involved) *)

(* A model is regenerated from a fixed seed so the shrinkers face the real
   generator distribution, not a toy. *)
let some_model k =
  let rng = Rng.make (0x5eed + k) in
  Gen.flat rng

let builds m =
  match Net.of_model m with _ -> true | exception _ -> false

let test_shrink_model_to_empty () =
  (* A predicate satisfied by any well-formed model: the minimizer should
     strip everything optional and still produce a buildable model. *)
  let m = some_model 1 in
  let shrunk = Shrink.minimize_model ~still_fails:builds m in
  Alcotest.(check bool) "result still builds" true (builds shrunk);
  Alcotest.(check bool) "did not grow" true
    (List.length shrunk.Ast.m_latches <= List.length m.Ast.m_latches
    && List.length shrunk.Ast.m_tables <= List.length m.Ast.m_tables);
  Alcotest.(check bool) "at most one latch left" true
    (List.length shrunk.Ast.m_latches <= 1)

let test_shrink_model_preserves_predicate () =
  (* Keep a specific latch: the shrinker must never discard it. *)
  let m = some_model 2 in
  match m.Ast.m_latches with
  | [] -> ()
  | keep :: _ ->
      let name = keep.Ast.l_output in
      let has m =
        builds m
        && List.exists (fun (l : Ast.latch) -> l.Ast.l_output = name)
             m.Ast.m_latches
      in
      let shrunk = Shrink.minimize_model ~still_fails:has m in
      Alcotest.(check bool) "kept the pinned latch" true (has shrunk)

let rec ctl_mentions name = function
  | Ctl.Prop e -> List.mem name (Expr.signals e)
  | Ctl.Not f | Ctl.EX f | Ctl.EF f | Ctl.EG f | Ctl.AX f | Ctl.AF f
  | Ctl.AG f ->
      ctl_mentions name f
  | Ctl.And (a, b) | Ctl.Or (a, b) | Ctl.Imp (a, b) | Ctl.EU (a, b)
  | Ctl.AU (a, b) ->
      ctl_mentions name a || ctl_mentions name b

let test_shrink_ctl () =
  let f =
    Ctl.And
      ( Ctl.EX (Ctl.Prop (Expr.parse "x=1")),
        Ctl.AG (Ctl.Prop (Expr.parse "y=0")) )
  in
  (* Predicate: mentions signal x — minimal failing subformula is the
     bare atom. *)
  let mentions_x g = ctl_mentions "x" g in
  let shrunk = Shrink.minimize_ctl ~still_fails:mentions_x f in
  Alcotest.(check bool) "reduced to the atom" true
    (match shrunk with Ctl.Prop _ -> true | _ -> false);
  Alcotest.(check bool) "still mentions x" true (mentions_x shrunk)

let test_shrink_automaton () =
  let aut =
    {
      Autom.a_name = "a";
      a_states = [ "q0"; "q1"; "q2" ];
      a_init = [ "q0" ];
      a_edges =
        [
          { Autom.e_src = "q0"; e_dst = "q1"; e_guard = Expr.True };
          { Autom.e_src = "q1"; e_dst = "q2"; e_guard = Expr.True };
          { Autom.e_src = "q2"; e_dst = "q0"; e_guard = Expr.True };
        ];
      a_pairs =
        [
          {
            Autom.inf_states = [ "q1" ];
            inf_edges = [];
            fin_states = [];
            fin_edges = [];
          };
          {
            Autom.inf_states = [ "q2" ];
            inf_edges = [];
            fin_states = [];
            fin_edges = [];
          };
        ];
    }
  in
  (* Predicate: q1 is still a state. Everything hanging only off q2 can
     go. *)
  let has_q1 (a : Autom.t) = List.mem "q1" a.Autom.a_states in
  let shrunk = Shrink.minimize_automaton ~still_fails:has_q1 aut in
  Alcotest.(check bool) "kept q1" true (has_q1 shrunk);
  Alcotest.(check bool) "dropped a state" true
    (List.length shrunk.Autom.a_states < 3);
  Alcotest.(check bool) "at most one pair left" true
    (List.length shrunk.Autom.a_pairs <= 1)

let test_shrink_fairness () =
  let cs =
    [
      Fair.Inf (Fair.State (Expr.parse "x=1"));
      Fair.Inf (Fair.State (Expr.parse "y=1"));
      Fair.Inf (Fair.State (Expr.parse "z=1"));
    ]
  in
  let mentions_y l =
    List.exists
      (fun c ->
        match c with
        | Fair.Inf (Fair.State e) -> List.mem "y" (Expr.signals e)
        | _ -> false)
      l
  in
  let shrunk = Shrink.minimize_fairness ~still_fails:mentions_y cs in
  Alcotest.(check int) "only the y constraint survives" 1 (List.length shrunk);
  Alcotest.(check bool) "it mentions y" true (mentions_y shrunk)

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          Alcotest.test_case "fixed-seed smoke" `Quick test_smoke;
          Alcotest.test_case "budget smoke" `Quick test_budget_smoke;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "model to minimum" `Quick
            test_shrink_model_to_empty;
          Alcotest.test_case "model keeps pinned latch" `Quick
            test_shrink_model_preserves_predicate;
          Alcotest.test_case "ctl to atom" `Quick test_shrink_ctl;
          Alcotest.test_case "automaton" `Quick test_shrink_automaton;
          Alcotest.test_case "fairness" `Quick test_shrink_fairness;
        ] );
    ]
