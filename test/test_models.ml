(* End-to-end runs of the Table-1 designs through the Hsis facade: state
   counts, property verdicts, explicit cross-checks at small scale, and
   debugger traces on the known-failing property. *)

open Hsis_models
open Hsis_core
open Hsis_check
open Hsis_debug

let run_design model =
  let d = Hsis.read_verilog model.Model.verilog in
  let pif = Model.parse_pif model in
  (d, pif, Hsis.run_pif ~witnesses:true d pif)

let test_pingpong () =
  let m = Pingpong.make () in
  let d, _, report = run_design m in
  Alcotest.(check (float 0.1)) "3 states" 3.0 (Hsis.reached_states d);
  Alcotest.(check int) "6 ctl" 6 (List.length report.Hsis.ctl);
  Alcotest.(check int) "6 lc" 6 (List.length report.Hsis.lc);
  List.iter
    (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("ctl " ^ c.Hsis.pr_name) true (Hsis_limits.Verdict.holds c.Hsis.pr_verdict))
    report.Hsis.ctl;
  List.iter
    (fun (l : Hsis.lc_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("lc " ^ l.Hsis.pr_name) true (Hsis_limits.Verdict.holds l.Hsis.pr_verdict))
    report.Hsis.lc

let test_philos () =
  let m = Philos.make () in
  let d, _, report = run_design m in
  let states = Hsis.reached_states d in
  Alcotest.(check bool)
    (Printf.sprintf "state count plausible (%g)" states)
    true
    (states >= 10.0 && states <= 60.0);
  (* explicit engine agrees *)
  Alcotest.(check int) "explicit agrees" (int_of_float states)
    (Enum.count_reachable (Model.net m));
  let find_ctl name =
    List.find (fun c -> c.Hsis.pr_name = name) report.Hsis.ctl
  in
  Alcotest.(check bool) "mutual exclusion" true
    (Hsis_limits.Verdict.holds (find_ctl "mutual_exclusion").Hsis.pr_verdict);
  Alcotest.(check bool) "possible progress" true
    (Hsis_limits.Verdict.holds (find_ctl "possible_progress").Hsis.pr_verdict);
  let find_lc name =
    List.find (fun l -> l.Hsis.pr_name = name) report.Hsis.lc
  in
  Alcotest.(check bool) "never_both_eat holds" true
    (Hsis_limits.Verdict.holds (find_lc "never_both_eat").Hsis.pr_verdict);
  let starving = find_lc "p0_eats_forever_often" in
  Alcotest.(check bool) "liveness fails (deadlock)" false
    (Hsis_limits.Verdict.holds starving.Hsis.pr_verdict);
  (* the failing property must come with a verified error trace *)
  match starving.Hsis.pr_verdict with
  | Hsis_limits.Verdict.Fail { Hsis.le_trace = None; _ } ->
      Alcotest.fail "no error trace produced"
  | Hsis_limits.Verdict.Pass | Hsis_limits.Verdict.Inconclusive _ ->
      Alcotest.fail "expected a Fail verdict"
  | Hsis_limits.Verdict.Fail { Hsis.le_trace = Some t; _ } ->
      Alcotest.(check bool) "trace has a cycle" true (List.length t.Trace.cycle >= 1);
      Alcotest.(check bool) "trace verified" true t.Trace.verified

let test_philos_explicit_lc () =
  let m = Philos.make () in
  let flat = Model.flat m in
  let pif = Model.parse_pif m in
  let aut name = Option.get (Hsis_auto.Pif.find_automaton pif name) in
  Alcotest.(check bool) "explicit: mutex holds" true
    (Hsis_limits.Verdict.holds (Enum.check_lc flat (aut "never_both_eat")));
  Alcotest.(check bool) "explicit: liveness fails" false
    (Hsis_limits.Verdict.holds
       (Enum.check_lc flat (aut "p0_eats_forever_often")))

let test_gigamax () =
  let m = Gigamax.make () in
  let d, _, report = run_design m in
  let states = Hsis.reached_states d in
  Alcotest.(check bool)
    (Printf.sprintf "hundreds of states (%g)" states)
    true
    (states >= 200.0 && states <= 2000.0);
  Alcotest.(check int) "explicit agrees" (int_of_float states)
    (Enum.count_reachable (Model.net m));
  Alcotest.(check int) "9 ctl" 9 (List.length report.Hsis.ctl);
  List.iter
    (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("ctl " ^ c.Hsis.pr_name) true (Hsis_limits.Verdict.holds c.Hsis.pr_verdict))
    report.Hsis.ctl;
  List.iter
    (fun (l : Hsis.lc_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("lc " ^ l.Hsis.pr_name) true (Hsis_limits.Verdict.holds l.Hsis.pr_verdict))
    report.Hsis.lc

let test_scheduler_small () =
  let m = Scheduler.make ~n:4 () in
  let d, _, report = run_design m in
  (* n * 2^n = 64 for n=4 *)
  Alcotest.(check (float 0.1)) "n*2^n states" 64.0 (Hsis.reached_states d);
  Alcotest.(check int) "explicit agrees" 64
    (Enum.count_reachable (Model.net m));
  List.iter
    (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("ctl " ^ c.Hsis.pr_name) true (Hsis_limits.Verdict.holds c.Hsis.pr_verdict))
    report.Hsis.ctl;
  List.iter
    (fun (l : Hsis.lc_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("lc " ^ l.Hsis.pr_name) true (Hsis_limits.Verdict.holds l.Hsis.pr_verdict))
    report.Hsis.lc

let test_scheduler_medium () =
  let m = Scheduler.make ~n:8 () in
  let d = Hsis.read_verilog m.Model.verilog in
  Alcotest.(check (float 0.5)) "8 * 2^8 states" 2048.0 (Hsis.reached_states d)

let test_dcnew () =
  let m = Dcnew.make () in
  let d, _, report = run_design m in
  let states = Hsis.reached_states d in
  Alcotest.(check bool)
    (Printf.sprintf "10^4..10^6 states (%g)" states)
    true
    (states >= 1.0e4 && states <= 1.0e6);
  List.iter
    (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("ctl " ^ c.Hsis.pr_name) true (Hsis_limits.Verdict.holds c.Hsis.pr_verdict))
    report.Hsis.ctl;
  List.iter
    (fun (l : Hsis.lc_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("lc " ^ l.Hsis.pr_name) true (Hsis_limits.Verdict.holds l.Hsis.pr_verdict))
    report.Hsis.lc

let test_mdlc () =
  let m = Mdlc.make () in
  let d, _, report = run_design m in
  let states = Hsis.reached_states d in
  Alcotest.(check bool)
    (Printf.sprintf "10^3..10^6 states (%g)" states)
    true
    (states >= 1.0e3 && states <= 1.0e6);
  List.iter
    (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("ctl " ^ c.Hsis.pr_name) true (Hsis_limits.Verdict.holds c.Hsis.pr_verdict))
    report.Hsis.ctl;
  List.iter
    (fun (l : Hsis.lc_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("lc " ^ l.Hsis.pr_name) true (Hsis_limits.Verdict.holds l.Hsis.pr_verdict))
    report.Hsis.lc

let () =
  Alcotest.run "models"
    [
      ( "table1",
        [
          Alcotest.test_case "pingpong" `Quick test_pingpong;
          Alcotest.test_case "philos" `Quick test_philos;
          Alcotest.test_case "philos explicit lc" `Quick test_philos_explicit_lc;
          Alcotest.test_case "gigamax" `Quick test_gigamax;
          Alcotest.test_case "scheduler n=4" `Quick test_scheduler_small;
          Alcotest.test_case "scheduler n=8" `Quick test_scheduler_medium;
          Alcotest.test_case "dcnew" `Quick test_dcnew;
          Alcotest.test_case "mdlc" `Quick test_mdlc;
        ] );
    ]
