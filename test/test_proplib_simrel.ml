(* Property-library templates and the simulation-refinement checker. *)

open Hsis_blifmv
open Hsis_auto
open Hsis_check
open Hsis_bisim

let counter_src =
  {|
.model counter
.outputs tick
.mv s,ns 4
.table -> go
0
1
.table s go -> ns
0 1 1
1 1 2
2 1 3
3 1 0
- 0 =s
.table s -> tick
0 0
1 0
2 0
3 1
.latch ns s
.reset s 0
.end
|}

let flat () = Flatten.flatten (Parser.parse counter_src)

let check_aut aut expected =
  let out = Lc.check (flat ()) aut in
  Alcotest.(check bool) ("lc " ^ aut.Autom.a_name) expected (Lc.holds out);
  (* the explicit engine agrees *)
  Alcotest.(check bool)
    ("explicit lc " ^ aut.Autom.a_name)
    expected
    (Hsis_limits.Verdict.holds (Enum.check_lc (flat ()) aut))

let check_ctl f expected =
  let net = Net.of_ast (Parser.parse counter_src) in
  let man = Hsis_bdd.Bdd.new_man () in
  let sym = Hsis_fsm.Sym.make man net in
  let trans = Hsis_fsm.Trans.build sym in
  Alcotest.(check bool) ("ctl " ^ Ctl.to_string f) expected
    (Mc.holds (Mc.check trans f))

let get_aut t = Option.get t.Proplib.p_autom
let get_ctl t = Option.get t.Proplib.p_ctl

let test_invariant () =
  let good = Proplib.invariant ~name:"inv_ok" (Expr.parse "s!=9") in
  ignore good;
  let holds = Proplib.invariant ~name:"always_legal" (Expr.parse "go=0 | go=1") in
  check_aut (get_aut holds) true;
  check_ctl (get_ctl holds) true;
  let fails = Proplib.invariant ~name:"never3" (Expr.parse "s!=3") in
  check_aut (get_aut fails) false;
  check_ctl (get_ctl fails) false

let test_mutex () =
  let t = Proplib.mutual_exclusion ~name:"mx" (Expr.parse "s=0") (Expr.parse "tick=1") in
  (* tick only at s=3, so never together with s=0 *)
  check_aut (get_aut t) true;
  check_ctl (get_ctl t) true;
  let bad = Proplib.mutual_exclusion ~name:"mx2" (Expr.parse "s=3") (Expr.parse "tick=1") in
  check_aut (get_aut bad) false

let test_response () =
  (* without fairness the counter can stall: response fails *)
  let t = Proplib.response ~name:"resp" ~trigger:(Expr.parse "s=1")
      ~response:(Expr.parse "tick=1")
  in
  check_ctl (get_ctl t) false;
  check_aut (get_aut t) false;
  (* trivial response: trigger implies response in the same state *)
  let t2 =
    Proplib.response ~name:"resp2" ~trigger:(Expr.parse "s=3")
      ~response:(Expr.parse "tick=1")
  in
  check_ctl (get_ctl t2) true;
  check_aut (get_aut t2) true

let test_stability () =
  (* s=3 is left on the next fair step: stability fails *)
  let t = Proplib.stability ~name:"sticky3" (Expr.parse "s=3") in
  check_ctl (get_ctl t) false;
  (* "true" is trivially stable *)
  let t2 = Proplib.stability ~name:"stable_true" Expr.True in
  check_ctl (get_ctl t2) true;
  check_aut (get_aut t2) true

let test_precedence () =
  (* s=2 cannot occur before s=1 on any run: holds *)
  let t = Proplib.precedence ~name:"ordered" ~first:(Expr.parse "s=1")
      ~before:(Expr.parse "s=2")
  in
  check_aut (get_aut t) true;
  (* s=1 before s=2... reversed fails *)
  let t2 =
    Proplib.precedence ~name:"reversed" ~first:(Expr.parse "s=2")
      ~before:(Expr.parse "s=1")
  in
  check_aut (get_aut t2) false

let test_sequence () =
  let t =
    Proplib.sequence ~name:"upseq"
      [ Expr.parse "s=1"; Expr.parse "s=2"; Expr.parse "s=3" ]
  in
  check_aut (get_aut t) true;
  let t2 =
    Proplib.sequence ~name:"downseq" [ Expr.parse "s=2"; Expr.parse "s=1" ]
  in
  check_aut (get_aut t2) false

let test_to_pif_roundtrip () =
  let templates =
    [
      Proplib.invariant ~name:"inv" (Expr.parse "s!=3");
      Proplib.response ~name:"resp" ~trigger:(Expr.parse "s=1")
        ~response:(Expr.parse "tick=1");
      Proplib.precedence ~name:"prec" ~first:(Expr.parse "s=1")
        ~before:(Expr.parse "s=2");
    ]
  in
  let text = Proplib.to_pif templates in
  let pif = Pif.parse text in
  Alcotest.(check int) "automata survive" 3 (List.length pif.Pif.p_automata);
  Alcotest.(check int) "lc entries" 3 (List.length pif.Pif.p_lc);
  Alcotest.(check int) "ctl entries" 2 (List.length pif.Pif.p_ctl);
  (* the rendered automata still check the same way *)
  let aut = Option.get (Pif.find_automaton pif "inv") in
  check_aut aut false

(* ---------------- simulation refinement ---------------- *)

(* Specification: the output may tick or not, freely. *)
let spec_src =
  {|
.model spec
.outputs tick
.table -> choice
0
1
.table choice -> ntk
0 0
1 1
.table st -> tick
0 0
1 1
.latch ntk st
.reset st 0
.end
|}

let impl_src =
  (* implementation: tick exactly every 4th step (the counter) *)
  counter_src

let test_refines () =
  let impl = Net.of_ast (Parser.parse impl_src) in
  let spec = Net.of_ast (Parser.parse spec_src) in
  let r = Simrel.refines ~obs:[ "tick" ] ~impl ~spec () in
  Alcotest.(check bool) "counter refines free ticker" true (Simrel.holds r);
  (* the converse fails: the free ticker can tick twice in a row, the
     counter cannot *)
  let r2 = Simrel.refines ~obs:[ "tick" ] ~impl:spec ~spec:impl () in
  Alcotest.(check bool) "free ticker does not refine counter" false
    (Simrel.holds r2);
  Alcotest.(check bool) "uncovered initial states reported" false
    (Hsis_bdd.Bdd.is_false r2.Simrel.uncovered_init)

let test_refines_self () =
  let impl = Net.of_ast (Parser.parse impl_src) in
  let r = Simrel.refines ~obs:[ "tick" ] ~impl ~spec:impl () in
  Alcotest.(check bool) "reflexive" true (Simrel.holds r)

let test_refines_errors () =
  let impl = Net.of_ast (Parser.parse impl_src) in
  let spec = Net.of_ast (Parser.parse spec_src) in
  Alcotest.(check bool) "unknown obs rejected" true
    (try
       ignore (Simrel.refines ~obs:[ "nope" ] ~impl ~spec ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "proplib-simrel"
    [
      ( "proplib",
        [
          Alcotest.test_case "invariant" `Quick test_invariant;
          Alcotest.test_case "mutex" `Quick test_mutex;
          Alcotest.test_case "response" `Quick test_response;
          Alcotest.test_case "stability" `Quick test_stability;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "sequence" `Quick test_sequence;
          Alcotest.test_case "pif roundtrip" `Quick test_to_pif_roundtrip;
        ] );
      ( "simrel",
        [
          Alcotest.test_case "refinement" `Quick test_refines;
          Alcotest.test_case "reflexive" `Quick test_refines_self;
          Alcotest.test_case "errors" `Quick test_refines_errors;
        ] );
    ]
