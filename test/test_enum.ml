(* Unit tests for the explicit-state reference engine: valuation
   enumeration under nondeterministic tables and free inputs, successor
   fan-out, the state-limit truncation path, and the optional
   language-containment wrapper the fuzz harness relies on. *)

open Hsis_blifmv
open Hsis_auto
open Hsis_check

let net_of src = Net.of_ast (Parser.parse src)
let model_of src = Flatten.flatten (Parser.parse src)

let signal_id net name =
  match Net.find_signal net name with
  | Some i -> i
  | None -> Alcotest.failf "no signal named %s" name

(* One latch [s], a primary input [i], a nondeterministic observer [o]
   ({0,1} at s=0, forced to 2 at s=1) and a next-state table whose rows
   overlap (union semantics): at i=1 both the explicit row and the =s
   fallthrough match. *)
let vals_src =
  {|
.model vals
.inputs i
.mv i 2
.mv s,ns 2
.mv o 3
.table s -> o
0 {0,1}
1 2
.table i s -> ns
1 0 1
1 1 0
- - =s
.latch ns s
.reset s 0
.end
|}

let test_valuations () =
  let net = net_of vals_src in
  let s = signal_id net "s"
  and i = signal_id net "i"
  and o = signal_id net "o"
  and ns = signal_id net "ns" in
  (* s=0: i free (2) x o in {0,1} (2) x ns (1 option at i=0, 2 at i=1)
     = 2 + 4 = 6 consistent valuations. *)
  let vs0 = Enum.valuations_of_state net [| 0 |] in
  Alcotest.(check int) "valuation count at s=0" 6 (List.length vs0);
  List.iter
    (fun v ->
      Alcotest.(check int) "latch value pinned" 0 v.(s);
      Alcotest.(check bool) "o drawn from its rows" true (v.(o) = 0 || v.(o) = 1);
      let ns_ok =
        if v.(i) = 0 then v.(ns) = 0 (* only the =s row matches *)
        else v.(ns) = 0 || v.(ns) = 1 (* explicit row and =s row overlap *)
      in
      Alcotest.(check bool) "ns allowed by the table" true ns_ok)
    vs0;
  (* s=1: o forced to 2; ns has 1 option at i=0 and 2 at i=1 = 3 total. *)
  let vs1 = Enum.valuations_of_state net [| 1 |] in
  Alcotest.(check int) "valuation count at s=1" 3 (List.length vs1);
  List.iter
    (fun v -> Alcotest.(check int) "o forced at s=1" 2 v.(o))
    vs1;
  (* state_sat is existential over valuations, like the symbolic
     abstraction. *)
  Alcotest.(check bool) "o=2 unreachable at s=0" false
    (Enum.state_sat net [| 0 |] (Expr.parse "o=2"));
  Alcotest.(check bool) "o=2 forced at s=1" true
    (Enum.state_sat net [| 1 |] (Expr.parse "o=2"));
  Alcotest.(check bool) "o=1 possible at s=0" true
    (Enum.state_sat net [| 0 |] (Expr.parse "o=1"))

(* Closed system with a set-valued next state and two reset values. *)
let fan_src =
  {|
.model fan
.mv s,ns 3
.table s -> ns
0 {1,2}
1 0
2 2
.latch ns s
.reset s 0 1
.end
|}

let sorted_states sts = List.sort compare (List.map (fun a -> a.(0)) sts)

let test_fanout () =
  let net = net_of fan_src in
  Alcotest.(check (list int)) "two initial states" [ 0; 1 ]
    (sorted_states (Enum.initial_states net));
  Alcotest.(check (list int)) "nondet row fans out" [ 1; 2 ]
    (sorted_states (Enum.successors net [| 0 |]));
  Alcotest.(check (list int)) "deterministic row" [ 0 ]
    (sorted_states (Enum.successors net [| 1 |]));
  Alcotest.(check (list int)) "self loop" [ 2 ]
    (sorted_states (Enum.successors net [| 2 |]));
  let g = Enum.build net in
  Alcotest.(check bool) "graph complete" true (Enum.complete g);
  Alcotest.(check int) "all three states reached" 3 (Array.length g.Enum.states);
  Alcotest.(check int) "both inits interned" 2 (List.length g.Enum.init)

let counter_src =
  {|
.model counter
.mv s,ns 4
.table s -> ns
0 1
1 2
2 3
3 0
.latch ns s
.reset s 0
.end
|}

let test_limit () =
  let net = net_of counter_src in
  Alcotest.(check int) "full count" 4 (Enum.count_reachable net);
  let g = Enum.build net in
  Alcotest.(check bool) "unbounded build completes" true (Enum.complete g);
  Alcotest.(check int) "four states" 4 (Array.length g.Enum.states);
  let t = Enum.build ~limit:2 net in
  Alcotest.(check bool) "limit marks incomplete" false (Enum.complete t);
  Alcotest.(check bool) "truncated below the full graph" true
    (Array.length t.Enum.states < 4)

(* A one-state automaton accepting every word: language containment must
   hold, and a tiny product limit must surface as an inconclusive verdict,
   never a conclusive one. *)
let accept_all =
  {
    Autom.a_name = "all";
    a_states = [ "q0" ];
    a_init = [ "q0" ];
    a_edges = [ { Autom.e_src = "q0"; e_dst = "q0"; e_guard = Expr.True } ];
    a_pairs =
      [
        {
          Autom.inf_states = [ "q0" ];
          inf_edges = [];
          fin_states = [];
          fin_edges = [];
        };
      ];
  }

let test_lc_verdict () =
  let open Hsis_limits in
  let m = model_of counter_src in
  Alcotest.(check bool) "containment holds" true
    (Verdict.holds (Enum.check_lc m accept_all));
  (match Enum.check_lc ~limit:1 m accept_all with
  | Verdict.Inconclusive { Verdict.reason = Limits.Limit_nodes; _ } -> ()
  | v -> Alcotest.failf "tiny limit: expected Inconclusive(nodes), got %s"
           (Verdict.name v));
  (* an inconclusive verdict is compatible with both conclusive answers *)
  Alcotest.(check bool) "inconclusive agrees with pass" true
    (Verdict.agree (Enum.check_lc ~limit:1 m accept_all)
       (Verdict.Pass : unit Verdict.t))

let () =
  Alcotest.run "enum"
    [
      ( "explicit",
        [
          Alcotest.test_case "valuations of a state" `Quick test_valuations;
          Alcotest.test_case "successor fan-out" `Quick test_fanout;
          Alcotest.test_case "state limit" `Quick test_limit;
          Alcotest.test_case "check_lc verdicts" `Quick test_lc_verdict;
        ] );
    ]
