(* BDD snapshot export/import: round-trips across managers, constants,
   GC survival, variable-order mismatch (strict reject vs re-canonicalize),
   and Rng-fuzzed random formula sets.  The round-trip check is semantic:
   export from m1, import into m2, export from m2, import back into m1,
   and require [Bdd.iff original back] to be the true BDD. *)

open Hsis_bdd
module Rng = Hsis_gen.Rng

let alloc n m = Array.init n (fun _ -> Bdd.new_var m)

(* A fresh manager with [n] variables allocated in index order, i.e. the
   same order as any other manager built this way. *)
let twin_man n =
  let m = Bdd.new_man () in
  let _ = alloc n m in
  m

let check_round_trip ~msg m1 roots =
  let m2 = twin_man (Bdd.num_vars m1) in
  let snap = Bdd.export m1 roots in
  let imported = Bdd.import m2 snap in
  Alcotest.(check int)
    (msg ^ ": root count") (List.length roots) (List.length imported);
  let back = Bdd.import m1 (Bdd.export m2 imported) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: root %d survives the round trip" msg i)
        true
        (Bdd.is_true (Bdd.iff a b)))
    (List.combine roots back)

(* Random formula over [vars], driven by the fuzz harness's Rng. *)
let rec rand_bdd rng vars depth =
  let m = Bdd.man_of vars.(0) in
  if depth = 0 then
    match Rng.int rng 6 with
    | 0 -> Bdd.dtrue m
    | 1 -> Bdd.dfalse m
    | _ ->
        let v = Rng.pick_arr rng vars in
        if Rng.bool rng then v else Bdd.dnot v
  else
    let sub () = rand_bdd rng vars (depth - 1) in
    match Rng.int rng 5 with
    | 0 -> Bdd.dand (sub ()) (sub ())
    | 1 -> Bdd.dor (sub ()) (sub ())
    | 2 -> Bdd.xor (sub ()) (sub ())
    | 3 -> Bdd.dnot (sub ())
    | _ -> Bdd.ite (sub ()) (sub ()) (sub ())

let test_basic () =
  let m1 = Bdd.new_man () in
  let v = alloc 4 m1 in
  let f = Bdd.dor (Bdd.dand v.(0) v.(1)) (Bdd.xor v.(2) v.(3)) in
  let g = Bdd.imp v.(1) (Bdd.dand v.(2) (Bdd.dnot v.(0))) in
  check_round_trip ~msg:"basic" m1 [ f; g; Bdd.dnot f ];
  let snap = Bdd.export m1 [ f; g ] in
  Alcotest.(check bool) "nodes positive" true (Bdd.snapshot_nodes snap > 0);
  Alcotest.(check bool)
    "bytes cover the records" true
    (Bdd.snapshot_bytes snap >= 32 * Bdd.snapshot_nodes snap);
  Alcotest.(check (list int))
    "snapshot carries the exporting order" (Bdd.order m1)
    (Bdd.snapshot_order snap)

let test_empty_and_constants () =
  let m1 = Bdd.new_man () in
  let _ = alloc 2 m1 in
  Alcotest.(check int)
    "no roots, no handles" 0
    (List.length (Bdd.import (twin_man 2) (Bdd.export m1 [])));
  let m2 = twin_man 2 in
  let imported = Bdd.import m2 (Bdd.export m1 [ Bdd.dtrue m1; Bdd.dfalse m1 ]) in
  (match imported with
  | [ t; f ] ->
      Alcotest.(check bool) "true imports as true" true (Bdd.is_true t);
      Alcotest.(check bool) "false imports as false" true (Bdd.is_false f)
  | _ -> Alcotest.fail "constant import arity");
  let snap = Bdd.export m1 [ Bdd.dtrue m1 ] in
  Alcotest.(check int) "constants ship zero nodes" 0 (Bdd.snapshot_nodes snap)

let test_after_gc () =
  let m1 = Bdd.new_man () in
  let v = alloc 6 m1 in
  let roots =
    List.init 3 (fun i ->
        Bdd.dand (Bdd.dor v.(i) v.(i + 1)) (Bdd.dnot v.(i + 2)))
  in
  (* drop the intermediate handles built above, then collect *)
  let _freed = Bdd.gc m1 in
  check_round_trip ~msg:"after exporter GC" m1 roots;
  (* and the importer side: rehydrate, collect, keep using the handles *)
  let m2 = twin_man 6 in
  let imported = Bdd.import m2 (Bdd.export m1 roots) in
  let _freed = Bdd.gc m2 in
  let back = Bdd.import m1 (Bdd.export m2 imported) in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        "importer GC keeps snapshots valid" true
        (Bdd.is_true (Bdd.iff a b)))
    roots back

(* An importing manager whose order provably differs from creation order:
   the interleaved conjunction x0&x4 | x1&x5 | x2&x6 | x3&x7 is
   exponential under 0..7 and linear under the paired order, so sifting
   always permutes. *)
let sifted_man n =
  let m2 = Bdd.new_man () in
  let w = alloc n m2 in
  let h = ref (Bdd.dfalse m2) in
  for i = 0 to (n / 2) - 1 do
    h := Bdd.dor !h (Bdd.dand w.(i) w.(i + (n / 2)))
  done;
  Bdd.sift m2;
  Alcotest.(check bool)
    "sifting permuted the importer's order" true
    (Bdd.order m2 <> List.init n Fun.id);
  m2

let test_order_mismatch_strict () =
  let m1 = Bdd.new_man () in
  let v = alloc 8 m1 in
  let f = Bdd.ite v.(0) (Bdd.dand v.(3) v.(5)) (Bdd.xor v.(6) v.(7)) in
  let snap = Bdd.export m1 [ f ] in
  let m2 = sifted_man 8 in
  Alcotest.check_raises "strict import rejects a permuted order"
    (Invalid_argument "Bdd.import: variable order mismatch") (fun () ->
      ignore (Bdd.import ~strict:true m2 snap))

let test_order_mismatch_permissive () =
  let m1 = Bdd.new_man () in
  let v = alloc 8 m1 in
  let roots =
    [
      Bdd.ite v.(0) (Bdd.dand v.(3) v.(5)) (Bdd.xor v.(6) v.(7));
      Bdd.dor (Bdd.dand v.(1) v.(2)) (Bdd.dnot v.(4));
    ]
  in
  let m2 = sifted_man 8 in
  let imported = Bdd.import m2 (Bdd.export m1 roots) in
  (* semantic equality under the permuted order, checked point-wise *)
  let rng = Rng.make 7 in
  for _ = 1 to 200 do
    let bits = Array.init 8 (fun _ -> Rng.bool rng) in
    let env i = bits.(i) in
    List.iter2
      (fun a b ->
        Alcotest.(check bool)
          "re-canonicalized import agrees point-wise" (Bdd.eval a env)
          (Bdd.eval b env))
      roots imported
  done

let test_unknown_variable () =
  let m1 = Bdd.new_man () in
  let v = alloc 4 m1 in
  let snap = Bdd.export m1 [ Bdd.dand v.(1) v.(3) ] in
  let m2 = twin_man 2 in
  Alcotest.check_raises "importing into a smaller manager is rejected"
    (Invalid_argument "Bdd.import: snapshot variable not allocated here")
    (fun () -> ignore (Bdd.import m2 snap))

let test_fuzz () =
  let rng = Rng.make 1994 in
  for _round = 1 to 40 do
    let nvars = Rng.range rng 1 10 in
    let m1 = Bdd.new_man () in
    let vars = alloc nvars m1 in
    let roots =
      List.init (Rng.range rng 1 5) (fun _ ->
          rand_bdd rng vars (Rng.range rng 0 6))
    in
    check_round_trip ~msg:"fuzz" m1 roots
  done

let () =
  Alcotest.run "snapshot"
    [
      ( "round-trip",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "empty and constants" `Quick
            test_empty_and_constants;
          Alcotest.test_case "after GC" `Quick test_after_gc;
          Alcotest.test_case "fuzzed" `Quick test_fuzz;
        ] );
      ( "order",
        [
          Alcotest.test_case "strict reject" `Quick test_order_mismatch_strict;
          Alcotest.test_case "permissive re-canonicalize" `Quick
            test_order_mismatch_permissive;
          Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
        ] );
    ]
