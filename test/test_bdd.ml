(* BDD package tests: algebraic laws, quantification, substitution,
   don't-care minimization, counting, garbage collection, reordering. *)

open Hsis_bdd

(* ------------------------------------------------------------------ *)
(* Random boolean formulas for property tests *)

type form =
  | V of int
  | Tt
  | Ff
  | Neg of form
  | Conj of form * form
  | Disj of form * form
  | Xor of form * form
  | Ite of form * form * form

let rec gen_form nvars depth st =
  if depth = 0 || QCheck.Gen.int_bound 4 st = 0 then
    match QCheck.Gen.int_bound 6 st with
    | 0 -> Tt
    | 1 -> Ff
    | _ -> V (QCheck.Gen.int_bound (nvars - 1) st)
  else
    let sub st = gen_form nvars (depth - 1) st in
    match QCheck.Gen.int_bound 4 st with
    | 0 -> Neg (sub st)
    | 1 -> Conj (sub st, sub st)
    | 2 -> Disj (sub st, sub st)
    | 3 -> Xor (sub st, sub st)
    | _ -> Ite (sub st, sub st, sub st)

let rec eval_form env = function
  | V i -> env i
  | Tt -> true
  | Ff -> false
  | Neg f -> not (eval_form env f)
  | Conj (a, b) -> eval_form env a && eval_form env b
  | Disj (a, b) -> eval_form env a || eval_form env b
  | Xor (a, b) -> eval_form env a <> eval_form env b
  | Ite (c, t, e) -> if eval_form env c then eval_form env t else eval_form env e

let rec build man vars = function
  | V i -> vars.(i)
  | Tt -> Bdd.dtrue man
  | Ff -> Bdd.dfalse man
  | Neg f -> Bdd.dnot (build man vars f)
  | Conj (a, b) -> Bdd.dand (build man vars a) (build man vars b)
  | Disj (a, b) -> Bdd.dor (build man vars a) (build man vars b)
  | Xor (a, b) -> Bdd.xor (build man vars a) (build man vars b)
  | Ite (c, t, e) ->
      Bdd.ite (build man vars c) (build man vars t) (build man vars e)

let rec pp_form = function
  | V i -> Printf.sprintf "x%d" i
  | Tt -> "T"
  | Ff -> "F"
  | Neg f -> "!" ^ pp_form f
  | Conj (a, b) -> "(" ^ pp_form a ^ "&" ^ pp_form b ^ ")"
  | Disj (a, b) -> "(" ^ pp_form a ^ "|" ^ pp_form b ^ ")"
  | Xor (a, b) -> "(" ^ pp_form a ^ "^" ^ pp_form b ^ ")"
  | Ite (c, t, e) ->
      "ite(" ^ pp_form c ^ "," ^ pp_form t ^ "," ^ pp_form e ^ ")"

let nvars = 6

let form_arb =
  QCheck.make ~print:pp_form (gen_form nvars 4)

let with_man f =
  let man = Bdd.new_man () in
  let vars = Array.init nvars (fun i -> Bdd.new_var ~name:(Printf.sprintf "x%d" i) man) in
  f man vars

let all_envs n =
  List.init (1 lsl n) (fun bits -> fun i -> (bits lsr i) land 1 = 1)

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_constants () =
  with_man (fun man _ ->
      Alcotest.(check bool) "true is true" true (Bdd.is_true (Bdd.dtrue man));
      Alcotest.(check bool) "false is false" true (Bdd.is_false (Bdd.dfalse man));
      Alcotest.(check bool)
        "not true = false" true
        (Bdd.is_false (Bdd.dnot (Bdd.dtrue man))))

let test_var_laws () =
  with_man (fun man vars ->
      let x = vars.(0) and y = vars.(1) in
      Alcotest.(check bool) "x & !x = 0" true
        (Bdd.is_false (Bdd.dand x (Bdd.dnot x)));
      Alcotest.(check bool) "x | !x = 1" true
        (Bdd.is_true (Bdd.dor x (Bdd.dnot x)));
      Alcotest.(check bool) "x ^ x = 0" true (Bdd.is_false (Bdd.xor x x));
      Alcotest.(check bool) "and commutes" true
        (Bdd.equal (Bdd.dand x y) (Bdd.dand y x));
      Alcotest.(check bool) "de morgan" true
        (Bdd.equal
           (Bdd.dnot (Bdd.dand x y))
           (Bdd.dor (Bdd.dnot x) (Bdd.dnot y)));
      ignore man)

let test_ite () =
  with_man (fun man vars ->
      let x = vars.(0) and y = vars.(1) and z = vars.(2) in
      Alcotest.(check bool) "ite(x,y,z) = xy | !xz" true
        (Bdd.equal (Bdd.ite x y z)
           (Bdd.dor (Bdd.dand x y) (Bdd.dand (Bdd.dnot x) z)));
      ignore man)

let test_quantification () =
  with_man (fun man vars ->
      let x = vars.(0) and y = vars.(1) in
      let f = Bdd.dand x y in
      Alcotest.(check bool) "exists x. xy = y" true
        (Bdd.equal (Bdd.exists ~cube:x f) y);
      Alcotest.(check bool) "forall x. xy = 0" true
        (Bdd.is_false (Bdd.forall ~cube:x f));
      let g = Bdd.dor x y in
      Alcotest.(check bool) "forall x. x|y = y" true
        (Bdd.equal (Bdd.forall ~cube:x g) y);
      Alcotest.(check bool) "and_exists = exists of and" true
        (Bdd.equal
           (Bdd.and_exists ~cube:x f g)
           (Bdd.exists ~cube:x (Bdd.dand f g)));
      ignore man)

let test_permute () =
  with_man (fun man vars ->
      let x = vars.(0) and y = vars.(1) in
      let vm = Bdd.make_varmap man [ (0, 1); (1, 0) ] in
      let f = Bdd.dand x (Bdd.dnot y) in
      let g = Bdd.permute vm f in
      Alcotest.(check bool) "swap x,y" true
        (Bdd.equal g (Bdd.dand y (Bdd.dnot x))))

let test_satcount () =
  with_man (fun man vars ->
      let x = vars.(0) and y = vars.(1) in
      Alcotest.(check (float 1e-9)) "count x" (Float.of_int (1 lsl (nvars - 1)))
        (Bdd.satcount x ~nvars);
      Alcotest.(check (float 1e-9)) "count xy" (Float.of_int (1 lsl (nvars - 2)))
        (Bdd.satcount (Bdd.dand x y) ~nvars);
      Alcotest.(check (float 1e-9)) "count over {0,1}" 1.0
        (Bdd.satcount_vars (Bdd.dand x y) ~vars:[ 0; 1 ]);
      Alcotest.(check (float 1e-9)) "count x over {0,1,2}" 4.0
        (Bdd.satcount_vars x ~vars:[ 0; 1; 2 ]);
      ignore man)

let test_pick_cube () =
  with_man (fun man vars ->
      let f = Bdd.dand vars.(0) (Bdd.dnot vars.(3)) in
      let cube = Bdd.pick_cube f in
      Alcotest.(check bool) "cube satisfies f" true
        (Bdd.eval f (fun v -> match List.assoc_opt v cube with
           | Some b -> b
           | None -> false));
      Alcotest.check_raises "pick on false" Not_found (fun () ->
          ignore (Bdd.pick_cube (Bdd.dfalse man))))

let test_gc () =
  with_man (fun man vars ->
      let keep = ref (Bdd.dtrue man) in
      for i = 0 to 50 do
        let f = Bdd.dand vars.(i mod nvars) vars.((i + 1) mod nvars) in
        let g = Bdd.xor f vars.((i + 2) mod nvars) in
        if i = 25 then keep := g
      done;
      let before = Bdd.node_count man in
      Gc.full_major ();
      let freed = Bdd.gc man in
      let after = Bdd.node_count man in
      Alcotest.(check bool) "some nodes freed" true (freed >= 0 && after <= before);
      (* The kept handle must still be intact. *)
      Alcotest.(check bool) "kept handle valid" true
        (Bdd.eval !keep (fun _ -> true) || not (Bdd.eval !keep (fun _ -> true)));
      Alcotest.(check (list string)) "invariants hold" [] (Bdd.check man))

let test_restrict_unit () =
  with_man (fun man vars ->
      let x = vars.(0) and y = vars.(1) in
      let f = Bdd.dand x y in
      (* within care = x, f is just y *)
      let r = Bdd.restrict f ~care:x in
      Alcotest.(check bool) "restrict shrinks to y" true (Bdd.equal r y);
      ignore man)

let test_sift_preserves () =
  with_man (fun man vars ->
      (* Build a function with a known bad-then-good order: the classic
         x0 x2 | x1 x3 | ... pattern. *)
      let f =
        Bdd.dor
          (Bdd.dor (Bdd.dand vars.(0) vars.(3)) (Bdd.dand vars.(1) vars.(4)))
          (Bdd.dand vars.(2) vars.(5))
      in
      let envs = all_envs nvars in
      let before = List.map (fun env -> Bdd.eval f env) envs in
      let size_before = Bdd.dag_size f in
      Bdd.sift man;
      let after = List.map (fun env -> Bdd.eval f env) envs in
      Alcotest.(check (list bool)) "semantics preserved" before after;
      Alcotest.(check (list string)) "invariants hold" [] (Bdd.check man);
      Alcotest.(check bool) "size not worse" true (Bdd.dag_size f <= size_before))

(* Reordering over real verification workloads: build the partitioned
   transition relation of a fuzz-generated BLIF-MV network, snapshot the
   reachable set, sift, and audit the manager (unique-table consistency,
   refcounts, freelist) plus semantics: the same fixpoint recomputed after
   the reorder must produce the identical BDD and state count. *)
let test_sift_transition_relations () =
  let module Rng = Hsis_gen.Rng in
  let seed = Rng.seed_from_env ~default:0x51f15eed () in
  let master = Rng.make seed in
  for net_no = 1 to 4 do
    let rng = Rng.split master in
    let m = Hsis_gen.Gen.flat rng in
    let net = Hsis_blifmv.Net.of_model m in
    let man = Bdd.new_man () in
    let trans = Hsis_fsm.Trans.build (Hsis_fsm.Sym.make man net) in
    let init = Hsis_fsm.Trans.initial trans in
    let compute () =
      (Hsis_check.Reach.compute ~profile:false trans init)
        .Hsis_check.Reach.reachable
    in
    let reach = compute () in
    let count_before = Hsis_check.Reach.count_states trans reach in
    Bdd.sift man;
    let label what =
      Printf.sprintf "%s [net %d] (HSIS_TEST_SEED=%d)" what net_no seed
    in
    Alcotest.(check (list string)) (label "invariants after sift") []
      (Bdd.check man);
    let reach' = compute () in
    Alcotest.(check bool) (label "reachable set preserved") true
      (Bdd.equal reach reach');
    Alcotest.(check bool) (label "state count preserved") true
      (Float.abs (count_before -. Hsis_check.Reach.count_states trans reach')
      < 1e-6);
    (* Force a collection against the post-reorder arena: finalizer
       refcount decrements and the manager's sweep must agree. *)
    Gc.full_major ();
    ignore (Bdd.gc man);
    Alcotest.(check (list string)) (label "invariants after gc") []
      (Bdd.check man)
  done

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_build_matches_eval =
  QCheck.Test.make ~count:200 ~name:"bdd agrees with direct evaluation"
    form_arb (fun form ->
      with_man (fun _man vars ->
          let b = build _man vars form in
          List.for_all
            (fun env -> Bdd.eval b env = eval_form env form)
            (all_envs nvars)))

let prop_double_negation =
  QCheck.Test.make ~count:100 ~name:"double negation" form_arb (fun form ->
      with_man (fun man vars ->
          let b = build man vars form in
          Bdd.equal b (Bdd.dnot (Bdd.dnot b))))

let prop_exists_or =
  QCheck.Test.make ~count:100 ~name:"exists v f = f[v:=0] | f[v:=1]" form_arb
    (fun form ->
      with_man (fun man vars ->
          let b = build man vars form in
          let v = 0 in
          let q = Bdd.exists ~cube:vars.(v) b in
          List.for_all
            (fun env ->
              let e0 i = if i = v then false else env i in
              let e1 i = if i = v then true else env i in
              Bdd.eval q env = (Bdd.eval b e0 || Bdd.eval b e1))
            (all_envs nvars)))

let prop_restrict_agrees_on_care =
  QCheck.Test.make ~count:100 ~name:"restrict agrees on care set"
    (QCheck.pair form_arb form_arb) (fun (f_form, c_form) ->
      with_man (fun man vars ->
          let f = build man vars f_form in
          let c = build man vars c_form in
          QCheck.assume (not (Bdd.is_false c));
          let r = Bdd.restrict f ~care:c in
          List.for_all
            (fun env ->
              (not (Bdd.eval c env)) || Bdd.eval r env = Bdd.eval f env)
            (all_envs nvars)))

let prop_constrain_agrees_on_care =
  QCheck.Test.make ~count:100 ~name:"constrain agrees on care set"
    (QCheck.pair form_arb form_arb) (fun (f_form, c_form) ->
      with_man (fun man vars ->
          let f = build man vars f_form in
          let c = build man vars c_form in
          QCheck.assume (not (Bdd.is_false c));
          let r = Bdd.constrain f ~care:c in
          List.for_all
            (fun env ->
              (not (Bdd.eval c env)) || Bdd.eval r env = Bdd.eval f env)
            (all_envs nvars)))

let prop_satcount =
  QCheck.Test.make ~count:100 ~name:"satcount matches enumeration" form_arb
    (fun form ->
      with_man (fun man vars ->
          let b = build man vars form in
          let expected =
            List.length (List.filter (fun env -> Bdd.eval b env) (all_envs nvars))
          in
          Float.abs (Bdd.satcount b ~nvars -. Float.of_int expected) < 1e-6))

let prop_sift_random =
  QCheck.Test.make ~count:30 ~name:"sifting preserves random functions"
    (QCheck.pair form_arb form_arb) (fun (f1, f2) ->
      with_man (fun man vars ->
          let b1 = build man vars f1 in
          let b2 = build man vars f2 in
          let envs = all_envs nvars in
          let r1 = List.map (Bdd.eval b1) envs in
          let r2 = List.map (Bdd.eval b2) envs in
          Bdd.sift man;
          Bdd.check man = []
          && List.map (Bdd.eval b1) envs = r1
          && List.map (Bdd.eval b2) envs = r2))

let prop_support =
  QCheck.Test.make ~count:100 ~name:"support contains only relevant vars"
    form_arb (fun form ->
      with_man (fun man vars ->
          let b = build man vars form in
          let sup = Bdd.support b in
          (* flipping a variable outside the support never changes f *)
          List.for_all
            (fun v ->
              List.mem v sup
              || List.for_all
                   (fun env ->
                     let env' i = if i = v then not (env i) else env i in
                     Bdd.eval b env = Bdd.eval b env')
                   (all_envs nvars))
            (List.init nvars Fun.id)))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_build_matches_eval;
      prop_double_negation;
      prop_exists_or;
      prop_restrict_agrees_on_care;
      prop_constrain_agrees_on_care;
      prop_satcount;
      prop_sift_random;
      prop_support;
    ]

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "variable laws" `Quick test_var_laws;
          Alcotest.test_case "ite" `Quick test_ite;
          Alcotest.test_case "quantification" `Quick test_quantification;
          Alcotest.test_case "permute" `Quick test_permute;
          Alcotest.test_case "satcount" `Quick test_satcount;
          Alcotest.test_case "pick_cube" `Quick test_pick_cube;
          Alcotest.test_case "gc" `Quick test_gc;
          Alcotest.test_case "restrict" `Quick test_restrict_unit;
          Alcotest.test_case "sift preserves semantics" `Quick test_sift_preserves;
          Alcotest.test_case "sift over fuzzed transition relations" `Quick
            test_sift_transition_relations;
        ] );
      ("properties", qsuite);
    ]
