(* Verilog front end: parsing, elaboration to BLIF-MV, and end-to-end
   behavior of the compiled networks. *)

open Hsis_blifmv
open Hsis_fsm
open Hsis_check
open Hsis_verilog

let counter_v =
  {|
// 2-bit counter with a non-deterministic pause
module counter(clk);
  input clk;
  reg [1:0] s;
  wire go;
  assign go = $ND(0, 1);
  initial s = 0;
  always @(posedge clk) begin
    if (go)
      s <= s + 1;
  end
endmodule
|}

let enum_v =
  {|
module handshake(clk);
  input clk;
  enum {IDLE, REQ, ACK} reg st;
  wire advance;
  assign advance = $ND(0, 1);
  initial st = IDLE;
  always @(posedge clk) begin
    case (st)
      IDLE: if (advance) st <= REQ;
      REQ:  if (advance) st <= ACK;
      ACK:  st <= IDLE;
    endcase
  end
endmodule
|}

let hier_v =
  {|
module top(clk);
  input clk;
  wire a; wire b;
  inv i1(.x(b), .y(a));
  inv i2(.x(a2), .y(b));
  reg a2;
  initial a2 = 0;
  always @(posedge clk) a2 <= a;
endmodule

module inv(x, y);
  input x;
  output y;
  assign y = !x;
endmodule
|}

let net_of src = Net.of_ast (Elab.compile src)

let reach_count net =
  let man = Hsis_bdd.Bdd.new_man () in
  let sym = Sym.make man net in
  let trans = Trans.build sym in
  let r = Reach.compute trans (Trans.initial trans) in
  int_of_float (Reach.count_states trans r.Reach.reachable)

let test_counter () =
  let net = net_of counter_v in
  Alcotest.(check bool) "closed" true (Net.is_closed net);
  Alcotest.(check int) "4 reachable states" 4 (reach_count net);
  Alcotest.(check int) "explicit agrees" 4 (Enum.count_reachable net)

let test_counter_blifmv_text () =
  let text = Elab.to_blifmv counter_v in
  (* round-trips through the BLIF-MV parser *)
  let net = Net.of_ast (Parser.parse text) in
  Alcotest.(check int) "4 states after round trip" 4 (reach_count net);
  Alcotest.(check bool) "counts lines" true (Ast.line_count text > 5)

let test_enum () =
  let net = net_of enum_v in
  Alcotest.(check int) "3 reachable states" 3 (reach_count net);
  let st = Option.get (Net.find_signal net "st") in
  Alcotest.(check int) "enum domain size 3" 3
    (Hsis_mv.Domain.size (Net.dom net st));
  Alcotest.(check (option int)) "symbolic value" (Some 1)
    (Hsis_mv.Domain.index_of (Net.dom net st) "REQ")

let test_enum_ctl () =
  let net = net_of enum_v in
  let man = Hsis_bdd.Bdd.new_man () in
  let sym = Sym.make man net in
  let trans = Trans.build sym in
  let check src = (Mc.holds (Mc.check trans (Hsis_auto.Ctl.parse src))) in
  Alcotest.(check bool) "EF st=ACK" true (check "EF st=ACK");
  Alcotest.(check bool) "AG (st=ACK -> AX st=IDLE)" true
    (check "AG (st=ACK -> AX st=IDLE)");
  Alcotest.(check bool) "AG st!=ACK fails" false (check "AG st!=ACK")

let test_hierarchy () =
  let net = net_of hier_v in
  (* a2 flips each cycle through two inverters: a = !b = !!a2 = a2 --
     wait: a = !b, b = !a2, so a = a2; a2' = a = a2: stuck at 0. *)
  Alcotest.(check int) "1 reachable state" 1 (reach_count net);
  Alcotest.(check bool) "flattened signals exist" true
    (Net.find_signal net "a" <> None && Net.find_signal net "b" <> None)

let test_nd_reset () =
  let src =
    {|
module m(clk);
  input clk;
  reg [1:0] s;
  initial s = $ND(1, 3);
  always @(posedge clk) s <= s;
endmodule
|}
  in
  let net = net_of src in
  Alcotest.(check int) "two frozen states" 2 (reach_count net)

let test_sub_wraps () =
  let src =
    {|
module m(clk);
  input clk;
  reg [1:0] s;
  initial s = 0;
  always @(posedge clk) s <= s - 1;
endmodule
|}
  in
  Alcotest.(check int) "wraparound visits all 4" 4 (reach_count (net_of src))

let test_parse_errors () =
  let cases =
    [
      "module m(; endmodule";
      "module m(clk); input clk; always @(posedge clk) x <= 1 endmodule";
      "module m(clk); wire w = 1; endmodule" (* decl-assign unsupported *);
    ]
  in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects " ^ src) true
        (try
           ignore (Vparser.parse src);
           false
         with Vparser.Error _ -> true))
    cases

let test_elab_errors () =
  let comb_latch =
    "module m(clk); input clk; wire c; assign c = $ND(0,1); reg r; wire w; \
     always @(*) begin if (c) w = 1; end endmodule"
  in
  Alcotest.(check bool) "comb latch inference rejected" true
    (try
       ignore (Elab.compile comb_latch);
       false
     with Elab.Error _ -> true);
  let undeclared =
    "module m(clk); input clk; assign w = 1; endmodule"
  in
  Alcotest.(check bool) "undeclared signal rejected" true
    (try
       ignore (Elab.compile undeclared);
       false
     with Elab.Error _ -> true)

let test_operators () =
  (* adder circuit: s' = (a + 3) with comparison outputs *)
  let src =
    {|
module m(clk);
  input clk;
  reg [2:0] s;
  wire big; wire eq2;
  assign big = s >= 5;
  assign eq2 = s == 2;
  initial s = 0;
  always @(posedge clk) s <= s + 3;
endmodule
|}
  in
  let net = net_of src in
  (* s cycles 0,3,6,1,4,7,2,5 -> all 8 states *)
  Alcotest.(check int) "8 states" 8 (reach_count net);
  let man = Hsis_bdd.Bdd.new_man () in
  let sym = Sym.make man net in
  let trans = Trans.build sym in
  let check src = (Mc.holds (Mc.check trans (Hsis_auto.Ctl.parse src))) in
  Alcotest.(check bool) "EF big" true (check "EF big=1");
  Alcotest.(check bool) "eq2 consistent" true (check "AG (eq2=1 -> s=2)")

(* ------------------------------------------------------------------ *)
(* Property test: random combinational expressions, compiled through the
   elaborator and cross-checked against a direct width-aware evaluator on
   every input valuation (via the explicit engine). *)

(* width-typed generator: returns an expression whose value has the target
   width; operands may mix widths (the elaborator widens) *)
let rec gen_expr target_w depth st =
  let open QCheck.Gen in
  let leaf_w1 st = if int_bound 1 st = 0 then Vast.Id "a" else Vast.Id "b" in
  let leaf st = if target_w = 1 then leaf_w1 st else Vast.Id "c" in
  if depth = 0 || int_bound 3 st = 0 then leaf st
  else begin
    match int_bound (if target_w = 1 then 5 else 2) st with
    | 0 ->
        (* arithmetic/bitwise of possibly-mixed widths, widened to target *)
        let wa = 1 + int_bound (target_w - 1) st in
        let op =
          match int_bound 4 st with
          | 0 -> Vast.Add
          | 1 -> Vast.Sub
          | 2 -> Vast.And
          | 3 -> Vast.Or
          | _ -> Vast.Xor
        in
        let a = gen_expr target_w (depth - 1) st in
        let b = gen_expr wa (depth - 1) st in
        Vast.Binop (op, a, b)
    | 1 ->
        let c = gen_expr 1 (depth - 1) st in
        let t = gen_expr target_w (depth - 1) st in
        let e = gen_expr target_w (depth - 1) st in
        Vast.Cond (c, t, e)
    | 2 -> leaf st
    | 3 -> Vast.Unop (Vast.Lnot, gen_expr (1 + int_bound 1 st) (depth - 1) st)
    | _ ->
        let w = 1 + int_bound 1 st in
        let op =
          match int_bound 3 st with
          | 0 -> Vast.Eq
          | 1 -> Vast.Neq
          | 2 -> Vast.Lt
          | _ -> Vast.Ge
        in
        Vast.Binop (op, gen_expr w (depth - 1) st, gen_expr w (depth - 1) st)
  end

(* the reference semantics: values with widths, mirroring the elaborator *)
let rec ref_eval env = function
  | Vast.Id x -> env x
  | Vast.Int n -> (n, max 1 (int_of_float (ceil (log (float_of_int (max n 2)) /. log 2.))))
  | Vast.Unop (Vast.Lnot, e) ->
      let v, _ = ref_eval env e in
      ((if v = 0 then 1 else 0), 1)
  | Vast.Binop (op, a, b) ->
      let va, wa = ref_eval env a and vb, wb = ref_eval env b in
      let w = max wa wb in
      let mask = (1 lsl w) - 1 in
      let out v = (v land mask, w) in
      let bool_ b = ((if b then 1 else 0), 1) in
      (match op with
      | Vast.Add -> out (va + vb)
      | Vast.Sub -> out (va - vb)
      | Vast.And -> out (va land vb)
      | Vast.Or -> out (va lor vb)
      | Vast.Xor -> out (va lxor vb)
      | Vast.Eq -> bool_ (va = vb)
      | Vast.Neq -> bool_ (va <> vb)
      | Vast.Lt -> bool_ (va < vb)
      | Vast.Le -> bool_ (va <= vb)
      | Vast.Gt -> bool_ (va > vb)
      | Vast.Ge -> bool_ (va >= vb))
  | Vast.Cond (c, t, e) ->
      let vc, _ = ref_eval env c in
      if vc <> 0 then ref_eval env t else ref_eval env e
  | Vast.Nd _ -> invalid_arg "ref_eval: $ND"

let rec pp_vexpr = function
  | Vast.Id x -> x
  | Vast.Int n -> string_of_int n
  | Vast.Unop (Vast.Lnot, e) -> "!(" ^ pp_vexpr e ^ ")"
  | Vast.Binop (op, a, b) ->
      let s =
        match op with
        | Vast.Add -> "+" | Vast.Sub -> "-" | Vast.And -> "&" | Vast.Or -> "|"
        | Vast.Xor -> "^" | Vast.Eq -> "==" | Vast.Neq -> "!=" | Vast.Lt -> "<"
        | Vast.Le -> "<=" | Vast.Gt -> ">" | Vast.Ge -> ">="
      in
      "(" ^ pp_vexpr a ^ " " ^ s ^ " " ^ pp_vexpr b ^ ")"
  | Vast.Cond (c, t, e) ->
      "(" ^ pp_vexpr c ^ " ? " ^ pp_vexpr t ^ " : " ^ pp_vexpr e ^ ")"
  | Vast.Nd es -> "$ND(" ^ String.concat "," (List.map pp_vexpr es) ^ ")"

let expr_arb target_w =
  QCheck.make ~print:pp_vexpr (gen_expr target_w 4)

let compiled_matches_reference target_w expr =
  let design =
    {
      Vast.modules =
        [
          {
            Vast.m_name = "randexpr";
            m_ports = [ "clk" ];
            m_decls =
              [
                { Vast.d_kind = Vast.Input; d_name = "clk"; d_width = 1; d_enum = None };
                { Vast.d_kind = Vast.Wire; d_name = "a"; d_width = 1; d_enum = None };
                { Vast.d_kind = Vast.Wire; d_name = "b"; d_width = 1; d_enum = None };
                { Vast.d_kind = Vast.Wire; d_name = "c"; d_width = 2; d_enum = None };
                {
                  Vast.d_kind = Vast.Wire;
                  d_name = "out";
                  d_width = target_w;
                  d_enum = None;
                };
              ];
            m_assigns =
              [
                ("a", Vast.Nd [ Vast.Int 0; Vast.Int 1 ]);
                ("b", Vast.Nd [ Vast.Int 0; Vast.Int 1 ]);
                ("c", Vast.Nd [ Vast.Int 0; Vast.Int 1; Vast.Int 2; Vast.Int 3 ]);
                ("out", expr);
              ];
            m_always = [];
            m_initials = [];
            m_instances = [];
          };
        ];
    }
  in
  let ast = Elab.elaborate design in
  let net = Net.of_ast ast in
  let sig_of name = Option.get (Net.find_signal net name) in
  let a = sig_of "a" and b = sig_of "b" and c = sig_of "c" and out = sig_of "out" in
  let vals = Enum.valuations_of_state net [||] in
  (* every input combination appears, and out matches the reference *)
  List.length (List.sort_uniq compare (List.map (fun v -> (v.(a), v.(b), v.(c))) vals))
  = 16
  && List.for_all
       (fun v ->
         let env = function
           | "a" -> (v.(a), 1)
           | "b" -> (v.(b), 1)
           | "c" -> (v.(c), 2)
           | x -> invalid_arg x
         in
         let expected, _ = ref_eval env expr in
         let mask = (1 lsl target_w) - 1 in
         v.(out) = expected land mask)
       vals

let prop_elab_w1 =
  QCheck.Test.make ~count:150 ~name:"elaborated 1-bit expressions match"
    (expr_arb 1)
    (fun e -> compiled_matches_reference 1 e)

let prop_elab_w2 =
  QCheck.Test.make ~count:150 ~name:"elaborated 2-bit expressions match"
    (expr_arb 2)
    (fun e -> compiled_matches_reference 2 e)

let () =
  Alcotest.run "verilog"
    [
      ( "elab",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "blifmv text round trip" `Quick
            test_counter_blifmv_text;
          Alcotest.test_case "enum" `Quick test_enum;
          Alcotest.test_case "enum ctl" `Quick test_enum_ctl;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "nd reset" `Quick test_nd_reset;
          Alcotest.test_case "subtraction wraps" `Quick test_sub_wraps;
          Alcotest.test_case "operators" `Quick test_operators;
        ] );
      ( "errors",
        [
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "elab errors" `Quick test_elab_errors;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_elab_w1;
          QCheck_alcotest.to_alcotest prop_elab_w2;
        ] );
    ]
