(* Cross-validation: the symbolic engines (reachability, fair-CTL model
   checking, language containment) against the explicit-state reference on
   fixed and randomized networks. *)

open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check

let counter_src =
  {|
.model counter
.outputs s
.mv s,ns 4
.table -> go
0
1
.table s go -> ns
0 1 1
1 1 2
2 1 3
3 1 0
- 0 =s
.latch ns s
.reset s 0
.end
|}

let build_trans ?heuristic net =
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  Trans.build ?heuristic sym

let counter_net () = Net.of_ast (Parser.parse counter_src)

let test_reachable_counter () =
  let net = counter_net () in
  let trans = build_trans net in
  let r = Reach.compute trans (Trans.initial trans) in
  Alcotest.(check (float 1e-9)) "4 reachable states" 4.0
    (Reach.count_states trans r.Reach.reachable);
  Alcotest.(check int) "explicit agrees" 4 (Enum.count_reachable net)

let test_image_heuristics_agree () =
  let net = counter_net () in
  List.iter
    (fun h ->
      let trans = build_trans ~heuristic:h net in
      let r = Reach.compute trans (Trans.initial trans) in
      Alcotest.(check (float 1e-9)) "4 states" 4.0
        (Reach.count_states trans r.Reach.reachable);
      Trans.set_strategy trans Trans.Monolithic;
      let r' = Reach.compute trans (Trans.initial trans) in
      Alcotest.(check bool) "monolithic image agrees" true
        (Bdd.equal r.Reach.reachable r'.Reach.reachable))
    [ Trans.Min_width; Trans.Pair_clustering; Trans.Naive ]

let ctl_cases =
  [
    ("AG s!=9ish", "AG !(s=2 & go=0) | true", true);
    (* plain propositional reachability facts *)
    ("EF s=3", "EF s=3", true);
    ("EF s=2", "EF s=2", true);
    ("AG s!=2 fails", "AG s!=2", false);
    ("AX from init", "AX (s=0 | s=1)", true);
    ("EX s=1", "EX s=1", true);
    ("EG true", "EG true", true);
    ("EU", "E[s!=3 U s=2]", true);
    ("AU fails", "A[s!=3 U s=2]", false);
    (* without fairness, the counter can pause forever *)
    ("AF s=3 fails", "AF s=3", false);
    ("EG s=0", "EG s=0", true);
  ]

let test_ctl_counter () =
  let net = counter_net () in
  let trans = build_trans net in
  let g = Enum.build net in
  List.iter
    (fun (name, src, expected) ->
      let f = Ctl.parse src in
      let outcome = Mc.check trans f in
      Alcotest.(check bool) (name ^ " (symbolic)") expected (Mc.holds outcome);
      let _, verdict = Enum.check_ctl net g [] f in
      Alcotest.(check bool) (name ^ " (explicit)") expected
        (Hsis_limits.Verdict.holds verdict))
    ctl_cases

let test_ctl_fair_counter () =
  let net = counter_net () in
  let trans = build_trans net in
  let g = Enum.build net in
  (* Fairness: the pause input is asserted infinitely often -> progress. *)
  let fair_syn = [ Fair.Inf (Fair.State (Expr.parse "go=1")) ] in
  let cases =
    [ ("AF s=3 holds under fairness", "AF s=3", true);
      ("EG s=0 fails under fairness", "EG s=0", false);
      ("AG AF s=0", "AG AF s=0", true) ]
  in
  let compiled = Fair.compile_all trans fair_syn in
  let econstrs = Enum.compile_fairness net g fair_syn in
  List.iter
    (fun (name, src, expected) ->
      let f = Ctl.parse src in
      let outcome = Mc.check ~fairness:compiled trans f in
      Alcotest.(check bool) (name ^ " (symbolic)") expected (Mc.holds outcome);
      let _, verdict = Enum.check_ctl net g econstrs f in
      Alcotest.(check bool) (name ^ " (explicit)") expected
        (Hsis_limits.Verdict.holds verdict))
    cases

let test_lc_counter () =
  let flat = Flatten.flatten (Parser.parse counter_src) in
  let ok_prop = Autom.invariance ~name:"nosecond" ~ok:(Expr.parse "s!=2") in
  let sym_out = Lc.check flat ok_prop in
  Alcotest.(check bool) "s!=2 containment fails (symbolic)" false
    (Lc.holds sym_out);
  Alcotest.(check bool) "s!=2 containment fails (explicit)" false
    (Hsis_limits.Verdict.holds (Enum.check_lc flat ok_prop));
  let triv = Autom.invariance ~name:"trivial" ~ok:Expr.True in
  Alcotest.(check bool) "trivial containment holds (symbolic)" true
    (Lc.holds (Lc.check flat triv));
  Alcotest.(check bool) "trivial containment holds (explicit)" true
    (Hsis_limits.Verdict.holds (Enum.check_lc flat triv))

let test_lc_liveness () =
  let flat = Flatten.flatten (Parser.parse counter_src) in
  (* "s=3 happens infinitely often": a one-state automaton with a Büchi
     (Rabin with empty fin) acceptance on the s=3-reading self-loop. *)
  let live =
    {
      Autom.a_name = "live3";
      a_states = [ "w" ];
      a_init = [ "w" ];
      a_edges =
        [
          { Autom.e_src = "w"; e_dst = "w"; e_guard = Expr.True };
        ];
      a_pairs =
        [
          {
            Autom.inf_states = [];
            inf_edges = [];
            fin_states = [];
            fin_edges = [];
          };
        ];
    }
  in
  (* without acceptance constraints this accepts everything *)
  ignore live;
  let fairness = [ Fair.Inf (Fair.State (Expr.parse "go=1")) ] in
  (* under fairness, every fair run visits s=3 infinitely often; the
     invariance property s!=3 must still fail, and with fairness removed
     ("go can stall") EG-style stalling makes the liveness moot. *)
  let inv3 = Autom.invariance ~name:"never3" ~ok:(Expr.parse "s!=3") in
  Alcotest.(check bool) "never3 fails under fairness (symbolic)" false
    (Lc.holds (Lc.check ~fairness flat inv3));
  Alcotest.(check bool) "never3 fails under fairness (explicit)" false
    (Hsis_limits.Verdict.holds (Enum.check_lc ~fairness flat inv3))

let test_lc_nondeterministic_rejected () =
  let flat = Flatten.flatten (Parser.parse counter_src) in
  let nondet =
    {
      Autom.a_name = "nd";
      a_states = [ "a"; "b" ];
      a_init = [ "a" ];
      a_edges =
        [
          { Autom.e_src = "a"; e_dst = "a"; e_guard = Expr.True };
          { Autom.e_src = "a"; e_dst = "b"; e_guard = Expr.parse "s=1" };
          { Autom.e_src = "b"; e_dst = "b"; e_guard = Expr.True };
        ];
      a_pairs =
        [
          {
            Autom.inf_states = [ "a" ];
            inf_edges = [];
            fin_states = [];
            fin_edges = [];
          };
        ];
    }
  in
  Alcotest.(check bool) "nondeterministic property rejected" true
    (try
       ignore (Lc.check flat nondet);
       false
     with Lc.Not_deterministic _ -> true)

(* ------------------------------------------------------------------ *)
(* Randomized cross-validation *)

(* Build a random closed network: two latches with random complete
   (possibly non-deterministic) next-state tables over both latches and a
   free non-deterministic binary signal. *)
let random_model rng_seed =
  let h = ref (rng_seed * 7919) in
  let rand n =
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
    (!h lsr 12) mod n
  in
  let dom_sizes = [| 2 + rand 2; 2 + rand 2 |] in
  let mv =
    [
      { Ast.v_names = [ "s0"; "n0" ]; v_size = dom_sizes.(0); v_values = [] };
      { Ast.v_names = [ "s1"; "n1" ]; v_size = dom_sizes.(1); v_values = [] };
    ]
  in
  let free_table =
    {
      Ast.t_inputs = [];
      t_outputs = [ "u" ];
      t_rows =
        [
          { Ast.r_inputs = []; r_outputs = [ Ast.Val "0" ] };
          { Ast.r_inputs = []; r_outputs = [ Ast.Val "1" ] };
        ];
      t_default = None;
    }
  in
  let next_table out dom_size =
    let rows = ref [] in
    for a = 0 to dom_sizes.(0) - 1 do
      for b = 0 to dom_sizes.(1) - 1 do
        for u = 0 to 1 do
          (* one or two possible next values *)
          let n = 1 + rand 2 in
          for _ = 1 to n do
            rows :=
              {
                Ast.r_inputs =
                  [
                    Ast.Val (string_of_int a);
                    Ast.Val (string_of_int b);
                    Ast.Val (string_of_int u);
                  ];
                r_outputs = [ Ast.Val (string_of_int (rand dom_size)) ];
              }
              :: !rows
          done
        done
      done
    done;
    {
      Ast.t_inputs = [ "s0"; "s1"; "u" ];
      t_outputs = [ out ];
      t_rows = List.rev !rows;
      t_default = None;
    }
  in
  {
    Ast.m_name = "rand";
    m_inputs = [];
    m_outputs = [];
    m_mvs = mv;
    m_tables =
      [ free_table; next_table "n0" dom_sizes.(0); next_table "n1" dom_sizes.(1) ];
    m_latches =
      [
        { Ast.l_input = "n0"; l_output = "s0"; l_reset = [ "0" ] };
        { Ast.l_input = "n1"; l_output = "s1"; l_reset = [ "0" ] };
      ];
    m_subckts = [];
    m_delays = [];
  }

let random_formulas =
  [
    "EF s0=1";
    "AG !(s0=1 & s1=1)";
    "AF s1=1";
    "EG s0=0";
    "E[s0=0 U s1=1]";
    "A[s0=0 U s1=1]";
    "AG EF (s0=0 & s1=0)";
    "EX s1=1";
    "AX (s0=0 | s0=1)";
  ]

let prop_random_crosscheck =
  QCheck.Test.make ~count:60 ~name:"symbolic = explicit on random nets"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let model = random_model seed in
      let net = Net.of_model model in
      let trans = build_trans net in
      let g = Enum.build net in
      let r = Reach.compute trans (Trans.initial trans) in
      let symbolic_count =
        int_of_float (Reach.count_states trans r.Reach.reachable)
      in
      if symbolic_count <> Array.length g.Enum.states then
        QCheck.Test.fail_reportf "reachable: symbolic %d explicit %d"
          symbolic_count
          (Array.length g.Enum.states);
      List.for_all
        (fun src ->
          let f = Ctl.parse src in
          let sym_holds = (Mc.holds (Mc.check ~reach:r trans f)) in
          let _, exp_verdict = Enum.check_ctl net g [] f in
          let exp_holds = Hsis_limits.Verdict.holds exp_verdict in
          if sym_holds <> exp_holds then
            QCheck.Test.fail_reportf "seed %d formula %s: symbolic %b explicit %b"
              seed src sym_holds exp_holds
          else true)
        random_formulas)

let prop_random_crosscheck_fair =
  QCheck.Test.make ~count:40 ~name:"fair symbolic = fair explicit"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let model = random_model seed in
      let net = Net.of_model model in
      let trans = build_trans net in
      let g = Enum.build net in
      let fair_syn =
        [
          Fair.Inf (Fair.State (Expr.parse "u=1"));
          Fair.Streett
            (Fair.State (Expr.parse "s0=1"), Fair.State (Expr.parse "s1=1"));
        ]
      in
      let compiled = Fair.compile_all trans fair_syn in
      let econstrs = Enum.compile_fairness net g fair_syn in
      List.for_all
        (fun src ->
          let f = Ctl.parse src in
          let sym_holds = (Mc.holds (Mc.check ~fairness:compiled trans f)) in
          let _, exp_verdict = Enum.check_ctl net g econstrs f in
          let exp_holds = Hsis_limits.Verdict.holds exp_verdict in
          if sym_holds <> exp_holds then
            QCheck.Test.fail_reportf
              "seed %d formula %s (fair): symbolic %b explicit %b" seed src
              sym_holds exp_holds
          else true)
        [ "AF s1=1"; "EG s0=0"; "AG AF s0=0"; "EF (s0=1 & s1=1)" ])

let prop_random_lc =
  QCheck.Test.make ~count:40 ~name:"language containment symbolic = explicit"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let model = random_model seed in
      let props =
        [
          Autom.invariance ~name:"p1" ~ok:(Expr.parse "!(s0=1 & s1=1)");
          Autom.invariance ~name:"p2" ~ok:(Expr.parse "s1!=1");
        ]
      in
      List.for_all
        (fun aut ->
          let sym_holds = (Lc.holds (Lc.check model aut)) in
          let exp_holds = Hsis_limits.Verdict.holds (Enum.check_lc model aut) in
          if sym_holds <> exp_holds then
            QCheck.Test.fail_reportf "seed %d automaton %s: symbolic %b explicit %b"
              seed aut.Autom.a_name sym_holds exp_holds
          else true)
        props)

let () =
  Alcotest.run "engine"
    [
      ( "counter",
        [
          Alcotest.test_case "reachability" `Quick test_reachable_counter;
          Alcotest.test_case "image heuristics agree" `Quick
            test_image_heuristics_agree;
          Alcotest.test_case "ctl" `Quick test_ctl_counter;
          Alcotest.test_case "fair ctl" `Quick test_ctl_fair_counter;
          Alcotest.test_case "language containment" `Quick test_lc_counter;
          Alcotest.test_case "lc under fairness" `Quick test_lc_liveness;
          Alcotest.test_case "nondet property rejected" `Quick
            test_lc_nondeterministic_rejected;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest prop_random_crosscheck;
          QCheck_alcotest.to_alcotest prop_random_crosscheck_fair;
          QCheck_alcotest.to_alcotest prop_random_lc;
        ] );
    ]
