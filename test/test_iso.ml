(* The isomorphism-sharing TR strategy: detection finds the instance
   groups the hierarchical scaled models are built from, and verdicts /
   reachable-state counts are identical across all three strategies —
   sequentially, under shared-work parallelism, and after a sifting
   reorder.  A fuzz round cross-checks iso against mono on random
   hierarchical designs. *)

open Hsis_models
open Hsis_core
open Hsis_fsm
open Hsis_obs

let holds v = Hsis_limits.Verdict.holds v

let verdicts (r : Hsis.report) =
  List.map
    (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      (c.Hsis.pr_name, holds c.Hsis.pr_verdict))
    r.Hsis.ctl
  @ List.map
      (fun (l : Hsis.lc_evidence Hsis.property_result) ->
        (l.Hsis.pr_name, holds l.Hsis.pr_verdict))
      r.Hsis.lc

let read ~strategy (m : Model.t) =
  Hsis.read_verilog ~strategy m.Model.verilog

(* Detection: the n-station ring and n-philosopher table each carry one
   replicated master module, so iso finds 1 group with n - 1 permuted
   copies and saves the copies' construction. *)
let test_masters_found () =
  List.iter
    (fun (m, n) ->
      let d = read ~strategy:Trans.Iso_shared m in
      (* copies materialize lazily; force them so the savings counter
         reflects every instance *)
      ignore (Trans.parts d.Hsis.trans);
      let p = Trans.tr_profile d.Hsis.trans in
      Alcotest.(check string)
        (m.Model.name ^ ": strategy") "iso" p.Obs.tr_strategy;
      Alcotest.(check int) (m.Model.name ^ ": masters") 1 p.Obs.tr_masters;
      Alcotest.(check int)
        (m.Model.name ^ ": instances") (n - 1) p.Obs.tr_instances;
      Alcotest.(check bool)
        (m.Model.name ^ ": nodes saved")
        true
        (p.Obs.tr_shared_nodes_saved > 0))
    [ (Ring.make ~n:4 (), 4); (Philos.make ~n:3 (), 3) ]

(* Non-hierarchical sources have no provenance: iso degrades to plain
   partitioned construction without claiming any sharing. *)
let test_no_provenance_degrades () =
  let m = Peterson.make () in
  let d = read ~strategy:Trans.Iso_shared m in
  let p = Trans.tr_profile d.Hsis.trans in
  Alcotest.(check int) "no masters" 0 p.Obs.tr_masters;
  Alcotest.(check int) "no instances" 0 p.Obs.tr_instances

let strategies =
  [ Trans.Monolithic; Trans.Partitioned; Trans.Iso_shared ]

(* All three strategies are evaluation variants of the same relation:
   identical reachable-state counts and identical per-property verdicts. *)
let test_strategies_agree () =
  List.iter
    (fun (m : Model.t) ->
      let pif = Model.parse_pif m in
      let runs =
        List.map
          (fun strategy ->
            let d = read ~strategy m in
            let states = Hsis.reached_states d in
            let r = Hsis.run_pif ~witnesses:false d pif in
            (strategy, states, verdicts r))
          strategies
      in
      match runs with
      | (_, states0, vs0) :: rest ->
          List.iter
            (fun (s, states, vs) ->
              let tag =
                Printf.sprintf "%s/%s" m.Model.name (Trans.strategy_name s)
              in
              Alcotest.(check (float 0.0))
                (tag ^ ": reached states") states0 states;
              Alcotest.(check (list (pair string bool)))
                (tag ^ ": verdicts") vs0 vs)
            rest
      | [] -> assert false)
    [ Ring.make ~n:3 (); Philos.make ~n:3 () ]

(* Shared-work fan-out from an iso-built coordinator: the snapshot ships
   one component per master and the workers re-permute the copies, so a
   2-domain run must match the sequential report exactly. *)
let test_iso_parallel_matches_sequential () =
  List.iter
    (fun (m : Model.t) ->
      let pif = Model.parse_pif m in
      let seq =
        let d = read ~strategy:Trans.Iso_shared m in
        Hsis.run_pif ~witnesses:false d pif
      in
      let s =
        Hsis.Session.open_ ~tr:Trans.Iso_shared
          (Hsis.Session.Verilog m.Model.verilog)
      in
      Fun.protect
        ~finally:(fun () -> Hsis.Session.close s)
        (fun () ->
          let par, _obs = Hsis.Session.run ~witnesses:false ~jobs:2 s pif in
          Alcotest.(check (list (pair string bool)))
            (m.Model.name ^ ": jobs 2 verdicts match")
            (verdicts seq) (verdicts par);
          Alcotest.(check int)
            (m.Model.name ^ ": jobs 2 exit code matches")
            (Hsis.report_exit_code seq)
            (Hsis.report_exit_code par)))
    [ Ring.make ~n:3 (); Philos.make ~n:3 () ]

(* Sifting moves levels, not variable indices, so a reordered manager
   still evaluates the permuted parts correctly. *)
let test_iso_survives_sifting () =
  let m = Ring.make ~n:4 () in
  let pif = Model.parse_pif m in
  let baseline =
    let d = read ~strategy:Trans.Partitioned m in
    verdicts (Hsis.run_pif ~witnesses:false d pif)
  in
  let d = read ~strategy:Trans.Iso_shared m in
  Hsis_bdd.Bdd.sift (Trans.man d.Hsis.trans);
  Alcotest.(check (list (pair string bool)))
    "verdicts after sift" baseline
    (verdicts (Hsis.run_pif ~witnesses:false d pif))

(* Fuzz: random hierarchical BLIF-MV designs (Gen.hierarchical), read
   once with iso and once with mono; reachable-state counts and a random
   CTL verdict must agree on every seed. *)
let test_fuzz_iso_vs_mono () =
  let config = { Hsis_gen.Gen.default with hierarchy = true } in
  let seed =
    Hsis_gen.Rng.seed_from_env ~var:"HSIS_ISO_SEED" ~default:20260808 ()
  in
  let rng = Hsis_gen.Rng.make seed in
  for round = 1 to 25 do
    let r = Hsis_gen.Rng.split rng in
    let ast = Hsis_gen.Gen.hierarchical ~config r in
    let flat, prov = Hsis_blifmv.Flatten.flatten_prov ast in
    let d_iso = Hsis.read_flat ~strategy:Trans.Iso_shared ~prov flat in
    let d_mono = Hsis.read_flat ~strategy:Trans.Monolithic flat in
    let tag = Printf.sprintf "seed %d round %d" seed round in
    Alcotest.(check (float 0.0))
      (tag ^ ": reached states")
      (Hsis.reached_states d_mono)
      (Hsis.reached_states d_iso);
    let net = Hsis_blifmv.Net.of_model flat in
    let f = Hsis_gen.Gen.ctl ~config r net in
    let v_iso = (Hsis.check_ctl d_iso ~name:"fuzz" f).Hsis.pr_verdict in
    let v_mono = (Hsis.check_ctl d_mono ~name:"fuzz" f).Hsis.pr_verdict in
    Alcotest.(check bool)
      (tag ^ ": ctl verdict")
      (holds v_mono) (holds v_iso)
  done

let () =
  Alcotest.run "iso"
    [
      ( "detection",
        [
          Alcotest.test_case "masters found on scaled models" `Quick
            test_masters_found;
          Alcotest.test_case "flat source degrades gracefully" `Quick
            test_no_provenance_degrades;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "mono/part/iso agree" `Quick
            test_strategies_agree;
          Alcotest.test_case "iso + jobs 2 matches sequential" `Quick
            test_iso_parallel_matches_sequential;
          Alcotest.test_case "iso survives sifting" `Quick
            test_iso_survives_sifting;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random hierarchy iso vs mono" `Quick
            test_fuzz_iso_vs_mono;
        ] );
    ]
