(* The serve stack end to end: wire-protocol round-trips, in-band error
   handling (the daemon must answer, never die), session-cache LRU
   accounting under a tiny budget, warm-vs-cold verdict equality over the
   Table-1 designs, and the reorder hazard — a cached reach set must not
   survive a variable-order change. *)

open Hsis_obs
open Hsis_core
open Hsis_models
open Hsis_serve

(* ------------------------------------------------------------------ *)
(* Protocol round-trips *)

let full_request =
  {
    Proto.r_id = Obs.Json.Str "req-7";
    r_op = Proto.Check;
    r_design = Some (Proto.Builtin "pingpong");
    r_pif = Some "ctl p \"AG 1\";";
    r_budget =
      { Proto.timeout_s = Some 1.5; max_nodes = Some 1000; max_steps = None };
    r_jobs = Some 2;
    r_kernel_jobs = Some 2;
    r_tr = Some Hsis_fsm.Trans.Iso_shared;
    r_fail_fast = true;
    r_witnesses = false;
    r_stats = true;
  }

let test_request_roundtrip () =
  let back = Proto.request_of_json (Proto.request_to_json full_request) in
  Alcotest.(check bool) "round-trips" true (back = full_request);
  (* parse from literal wire text, exercising every member *)
  let req =
    Proto.parse_request
      {|{"id": 3, "op": "fuzz", "fuzz": {"iters": 7, "seed": 9},
         "jobs": 4, "budget": {"max_steps": 12}}|}
  in
  Alcotest.(check bool) "id echoed" true (req.Proto.r_id = Obs.Json.Int 3);
  (match req.Proto.r_op with
  | Proto.Fuzz f ->
      Alcotest.(check int) "iters" 7 f.Proto.f_iters;
      Alcotest.(check int) "seed" 9 f.Proto.f_seed
  | _ -> Alcotest.fail "expected fuzz op");
  Alcotest.(check bool) "budget steps" true
    (req.Proto.r_budget.Proto.max_steps = Some 12)

let test_request_rejects () =
  let rejects line =
    match Proto.parse_request line with
    | exception Proto.Bad_request _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown op" true (rejects {|{"op": "explode"}|});
  Alcotest.(check bool) "missing op" true (rejects {|{"id": 1}|});
  Alcotest.(check bool) "op not a string" true (rejects {|{"op": 3}|});
  Alcotest.(check bool) "bad design member" true
    (rejects {|{"op": "check", "design": {"fortran": "x"}}|});
  Alcotest.(check bool) "jobs not an int" true
    (rejects {|{"op": "check", "jobs": "many"}|});
  Alcotest.(check bool) "not an object" true (rejects {|[1, 2]|});
  Alcotest.(check bool) "unparseable json" true (rejects "{nope")

let test_response_roundtrip () =
  let resp =
    {
      Proto.p_id = Obs.Json.Str "req-7";
      p_op = "check";
      p_status = `Error (Proto.Job_error, "boom");
      p_exit_code = 2;
      p_elapsed = 0.25;
      p_cache = Obs.Json.Obj [ ("entries", Obs.Json.Int 1) ];
      p_result = None;
      p_obs = None;
    }
  in
  let line = Proto.print_response resp in
  let back = Proto.response_of_json (Obs.Json.parse line) in
  Alcotest.(check bool) "id" true (back.Proto.p_id = resp.Proto.p_id);
  Alcotest.(check string) "op" "check" back.Proto.p_op;
  Alcotest.(check bool) "status" true
    (back.Proto.p_status = `Error (Proto.Job_error, "boom"));
  Alcotest.(check int) "exit code" 2 back.Proto.p_exit_code;
  (* the schema tag is on every line *)
  let j = Obs.Json.parse line in
  Alcotest.(check bool) "schema tagged" true
    (Obs.Json.member "schema" j = Some (Obs.Json.Str Proto.schema_version))

(* ------------------------------------------------------------------ *)
(* Daemon behaviour: in-band errors, never dying *)

let status_kind resp =
  match resp.Proto.p_status with
  | `Ok -> "ok"
  | `Error (k, _) -> Proto.error_kind_name k

let test_malformed_line_in_band () =
  let t = Server.create () in
  (* blank lines owe no response *)
  (match Server.handle_line t "   " with
  | None, `Continue -> ()
  | _ -> Alcotest.fail "blank line should be skipped");
  (* garbage is answered, not fatal *)
  (match Server.handle_line t "this is not json" with
  | Some resp, `Continue ->
      Alcotest.(check string) "parse error" "parse" (status_kind resp);
      Alcotest.(check int) "protocol exit code" 2 resp.Proto.p_exit_code
  | _ -> Alcotest.fail "malformed line must produce one response");
  (* valid JSON, invalid request: id still echoed *)
  (match Server.handle_line t {|{"id": 42, "op": "explode"}|} with
  | Some resp, `Continue ->
      Alcotest.(check string) "request error" "request" (status_kind resp);
      Alcotest.(check bool) "id echoed" true
        (resp.Proto.p_id = Obs.Json.Int 42)
  | _ -> Alcotest.fail "invalid request must produce one response");
  (* job-level failure (unknown builtin) is an error answer too *)
  (match
     Server.handle_line t {|{"id": 1, "op": "check", "design": {"builtin": "zz"}}|}
   with
  | Some resp, `Continue ->
      Alcotest.(check string) "job-level error" "request" (status_kind resp)
  | _ -> Alcotest.fail "unknown builtin must produce one response");
  (* the daemon is still healthy afterwards *)
  (match Server.handle_line t {|{"id": 2, "op": "ping"}|} with
  | Some resp, `Continue -> Alcotest.(check string) "ok" "ok" (status_kind resp)
  | _ -> Alcotest.fail "ping after errors must succeed");
  (* shutdown stops the loop *)
  (match Server.handle_line t {|{"op": "shutdown"}|} with
  | Some resp, `Stop -> Alcotest.(check string) "ok" "ok" (status_kind resp)
  | _ -> Alcotest.fail "shutdown must answer and stop");
  Alcotest.(check bool) "stopping" true (Server.stopping t)

(* ------------------------------------------------------------------ *)
(* Session cache: LRU eviction under a tiny budget, with counters *)

let source_of (m : Model.t) = Hsis.Session.Verilog m.Model.verilog

let test_cache_lru_eviction () =
  let a = Models.by_name "pingpong" |> Option.get in
  let b = Models.by_name "scheduler5" |> Option.get in
  let c = Models.by_name "philos" |> Option.get in
  let cache = Scache.create ~max_entries:2 () in
  let open_ m =
    Scache.find_or_open cache ~heuristic:Hsis_fsm.Trans.Min_width
      ~tr:Hsis_fsm.Trans.Partitioned (source_of m)
  in
  let sa, hit_a = open_ a in
  let _, hit_b = open_ b in
  Alcotest.(check bool) "first opens miss" false (hit_a || hit_b);
  (* touch A so B becomes least-recently-used *)
  let sa', hit_a2 = open_ a in
  Alcotest.(check bool) "re-open hits" true hit_a2;
  Alcotest.(check bool) "same session" true (sa == sa');
  (* third distinct design overflows the 2-entry budget: B is evicted *)
  let sc, _ = open_ c in
  let s = Scache.stats cache in
  Alcotest.(check int) "entries capped" 2 s.Scache.entries;
  Alcotest.(check int) "hits" 1 s.Scache.hits;
  Alcotest.(check int) "misses" 3 s.Scache.misses;
  Alcotest.(check int) "evictions" 1 s.Scache.evictions;
  Alcotest.(check (list string)) "MRU order, B gone"
    [ Hsis.Session.id sc; Hsis.Session.id sa ]
    (Scache.ids cache);
  (* evicted sessions are closed; survivors are not *)
  let _, hit_b2 = open_ b in
  Alcotest.(check bool) "evicted design re-opens as miss" false hit_b2;
  Scache.clear cache;
  Alcotest.(check int) "cleared" 0 (Scache.stats cache).Scache.entries

let test_cache_node_budget () =
  let a = Models.by_name "pingpong" |> Option.get in
  let b = Models.by_name "scheduler5" |> Option.get in
  (* a node budget of 1 means any second entry overflows, but the entry
     just inserted is always kept *)
  let cache = Scache.create ~max_entries:8 ~max_live_nodes:1 () in
  let open_ m =
    Scache.find_or_open cache ~heuristic:Hsis_fsm.Trans.Min_width
      ~tr:Hsis_fsm.Trans.Partitioned (source_of m)
  in
  let _, _ = open_ a in
  let sb, _ = open_ b in
  let s = Scache.stats cache in
  Alcotest.(check int) "one survivor" 1 s.Scache.entries;
  Alcotest.(check int) "one eviction" 1 s.Scache.evictions;
  Alcotest.(check (list string)) "newest kept"
    [ Hsis.Session.id sb ]
    (Scache.ids cache)

(* ------------------------------------------------------------------ *)
(* Warm vs cold: same verdicts for every Table-1 design *)

let property_verdicts result =
  (* [(name, verdict)] for the ctl and lc sections of a check result *)
  let section key =
    match Obs.Json.member key result with
    | Some (Obs.Json.List props) ->
        List.map
          (fun p ->
            match (Obs.Json.member "name" p, Obs.Json.member "verdict" p) with
            | Some (Obs.Json.Str n), Some (Obs.Json.Str v) -> (n, v)
            | _ -> Alcotest.fail "property without name/verdict")
          props
    | _ -> Alcotest.fail ("missing section " ^ key)
  in
  section "ctl" @ section "lc"

let test_warm_cold_verdicts () =
  let server = Server.create () in
  List.iter
    (fun (m : Model.t) ->
      let req =
        {
          Proto.r_id = Obs.Json.Str m.Model.name;
          r_op = Proto.Check;
          r_design = Some (Proto.Verilog m.Model.verilog);
          r_pif = Some m.Model.pif;
          r_budget = Proto.no_budget;
          r_jobs = None;
          r_kernel_jobs = None;
          r_tr = None;
          r_fail_fast = false;
          r_witnesses = false;
          r_stats = false;
        }
      in
      let cold = Server.handle_request server req in
      let warm = Server.handle_request server req in
      let result resp =
        match (resp.Proto.p_status, resp.Proto.p_result) with
        | `Ok, Some r -> r
        | _ -> Alcotest.fail (m.Model.name ^ ": check did not succeed")
      in
      let vc = property_verdicts (result cold) in
      let vw = property_verdicts (result warm) in
      Alcotest.(check bool)
        (m.Model.name ^ ": warm session was actually reused")
        true
        (Obs.Json.member "hit" warm.Proto.p_cache = Some (Obs.Json.Bool true));
      Alcotest.(check (list (pair string string)))
        (m.Model.name ^ ": verdicts equal") vc vw;
      Alcotest.(check int)
        (m.Model.name ^ ": exit codes equal")
        cold.Proto.p_exit_code warm.Proto.p_exit_code)
    (Models.table1_small ())

(* ------------------------------------------------------------------ *)
(* Reorder hazard: a conclusive cached reach set must be dropped when
   the variable order changes (sifting), then rebuilt equal *)

let test_reach_cache_survives_reorder () =
  let m = Models.by_name "pingpong" |> Option.get in
  let d = Hsis.read_verilog m.Model.verilog in
  let r1 = Hsis.reachable d in
  Alcotest.(check bool) "cache filled" true (Hsis.reach_cache_valid d);
  let n1 = Hsis_check.Reach.count_states d.Hsis.trans r1.Hsis_check.Reach.reachable in
  (* same pointer while the order is stable *)
  Alcotest.(check bool) "stable order reuses" true (Hsis.reachable d == r1);
  Hsis_bdd.Bdd.sift (Hsis_fsm.Trans.man d.Hsis.trans);
  Alcotest.(check bool) "sift invalidates" false (Hsis.reach_cache_valid d);
  let r2 = Hsis.reachable d in
  Alcotest.(check bool) "recomputed" true (not (r2 == r1));
  Alcotest.(check bool) "cache refilled" true (Hsis.reach_cache_valid d);
  let n2 = Hsis_check.Reach.count_states d.Hsis.trans r2.Hsis_check.Reach.reachable in
  Alcotest.(check (float 0.0)) "same state count" n1 n2

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "request rejects" `Quick test_request_rejects;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "in-band errors" `Quick
            test_malformed_line_in_band;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction + counters" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "node budget" `Quick test_cache_node_budget;
        ] );
      ( "warm",
        [
          Alcotest.test_case "warm = cold on Table 1" `Slow
            test_warm_cold_verdicts;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "reach cache vs sifting" `Quick
            test_reach_cache_survives_reorder;
        ] );
    ]
