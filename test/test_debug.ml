(* Debugger tests: error traces are real executions (replayed on the
   explicit engine), prefixes are shortest, cycles satisfy the fairness
   constraints, and CTL debug trees witness the right things. *)

open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug

let counter_src =
  {|
.model counter
.mv s,ns 4
.table -> go
0
1
.table s go -> ns
0 1 1
1 1 2
2 1 3
3 1 0
- 0 =s
.latch ns s
.reset s 0
.end
|}

let build src =
  let net = Net.of_ast (Parser.parse src) in
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  (net, Trans.build sym)

(* Replay a decoded state sequence on the explicit engine: every
   consecutive pair must be a real transition. *)
let replayable net states =
  let latch_pos =
    List.mapi (fun i (l : Net.flatch) -> (l.Net.fl_output, i)) net.Net.latches
  in
  let to_estate decoded =
    let arr = Array.make (List.length net.Net.latches) 0 in
    List.iter
      (fun (s, v) ->
        match List.assoc_opt s latch_pos with
        | Some i -> arr.(i) <- v
        | None -> ())
      decoded;
    arr
  in
  let rec ok = function
    | a :: (b :: _ as rest) ->
        List.mem (to_estate b) (Enum.successors net (to_estate a)) && ok rest
    | _ -> true
  in
  ok states

let test_lc_trace_real () =
  (* failing invariance: s never reaches 2 *)
  let ast = Flatten.flatten (Parser.parse counter_src) in
  let aut = Autom.invariance ~name:"no2" ~ok:(Expr.parse "s!=2") in
  let out = Lc.check ast aut in
  Alcotest.(check bool) "fails" false (Lc.holds out);
  let prod = Option.get out.Lc.product in
  let t =
    Trace.fair_lasso prod.Lc.env ~reach:prod.Lc.reach ~fair:prod.Lc.fair
  in
  Alcotest.(check bool) "verified" true t.Trace.verified;
  Alcotest.(check bool) "cycle nonempty" true (List.length t.Trace.cycle >= 1);
  (* the trace must visit a state where the monitor has left "good" *)
  let composed = Net.of_model (Autom.compose ast aut) in
  let mon = Option.get (Net.find_signal composed "_aut_no2") in
  let all_states =
    List.map (fun (s : Trace.step) -> s.Trace.state) (t.Trace.prefix @ t.Trace.cycle)
  in
  Alcotest.(check bool) "monitor leaves good" true
    (List.exists
       (fun st ->
         match List.assoc_opt mon st with Some v -> v > 0 | None -> false)
       all_states);
  Alcotest.(check bool) "prefix+cycle replayable" true
    (replayable composed all_states)

let test_prefix_shortest () =
  (* s=2 is first reached in exactly 2 steps; the prefix must have 2
     states (s=0, s=1) before the cycle *)
  let ast = Flatten.flatten (Parser.parse counter_src) in
  let aut = Autom.invariance ~name:"no2" ~ok:(Expr.parse "s!=2") in
  let out = Lc.check ~early_failure:false ast aut in
  let prod = Option.get out.Lc.product in
  let t =
    Trace.fair_lasso prod.Lc.env ~reach:prod.Lc.reach ~fair:prod.Lc.fair
  in
  (* earliest fair state is at depth >= 2 (need to see s=2 to leave good);
     the shortest possible lasso has prefix <= 3 *)
  Alcotest.(check bool)
    (Printf.sprintf "prefix %d within [0,3]" (List.length t.Trace.prefix))
    true
    (List.length t.Trace.prefix <= 3)

let test_lasso_under_fairness () =
  let net, trans = build counter_src in
  ignore net;
  let fairness =
    Fair.compile_all trans [ Fair.Inf (Fair.State (Expr.parse "go=1")) ]
  in
  let env = El.prepare trans fairness in
  let reach = Reach.compute trans (Trans.initial trans) in
  let fair = El.fair_states env ~within:reach.Reach.reachable in
  Alcotest.(check bool) "fair nonempty" false (Bdd.is_false fair);
  let t = Trace.fair_lasso env ~reach ~fair in
  Alcotest.(check bool) "verified" true t.Trace.verified;
  (* under go-fairness the counter must keep counting: the cycle visits
     all four values of s *)
  Alcotest.(check int) "cycle visits all 4 counter values" 4
    (List.length t.Trace.cycle)

let test_streett_lasso () =
  let _, trans = build counter_src in
  (* Streett: if s=1 occurs infinitely often, s=3 does too *)
  let fairness =
    Fair.compile_all trans
      [
        Fair.Streett
          (Fair.State (Expr.parse "s=1"), Fair.State (Expr.parse "s=3"));
      ]
  in
  let env = El.prepare trans fairness in
  let reach = Reach.compute trans (Trans.initial trans) in
  let fair = El.fair_states env ~within:reach.Reach.reachable in
  let t = Trace.fair_lasso env ~reach ~fair in
  Alcotest.(check bool) "verified" true t.Trace.verified

let test_mcdbg_ag () =
  let _, trans = build counter_src in
  let reach = Reach.compute trans (Trans.initial trans) in
  let ctx = Mcdbg.make trans ~reach in
  let f = Ctl.parse "AG s!=2" in
  let outcome = Mc.check ~reach trans f in
  Alcotest.(check bool) "fails" false (Mc.holds outcome);
  match Mcdbg.explain_failure ctx f outcome with
  | Some (Mcdbg.Path (steps, Mcdbg.Prop_value (_, false))) ->
      (* path of length 3: s=0, s=1, s=2 *)
      Alcotest.(check int) "path length" 3 (List.length steps)
  | Some other ->
      Alcotest.failf "unexpected explanation shape (depth %d)"
        (Mcdbg.depth other)
  | None -> Alcotest.fail "no explanation"

let test_mcdbg_af () =
  let _, trans = build counter_src in
  let reach = Reach.compute trans (Trans.initial trans) in
  let ctx = Mcdbg.make trans ~reach in
  let f = Ctl.parse "AF s=1" in
  let outcome = Mc.check ~reach trans f in
  Alcotest.(check bool) "fails (can pause forever)" false (Mc.holds outcome);
  match Mcdbg.explain_failure ctx f outcome with
  | Some (Mcdbg.Lasso t) ->
      Alcotest.(check bool) "lasso verified" true t.Trace.verified;
      (* the lasso must avoid s=1 entirely *)
      List.iter
        (fun (s : Trace.step) ->
          List.iter (fun (_, v) -> Alcotest.(check bool) "avoids s=1" true (v <> 1))
            s.Trace.state)
        (t.Trace.prefix @ t.Trace.cycle)
  | Some other ->
      Alcotest.failf "expected lasso, got depth-%d tree" (Mcdbg.depth other)
  | None -> Alcotest.fail "no explanation"

let test_mcdbg_conjunction () =
  let _, trans = build counter_src in
  let reach = Reach.compute trans (Trans.initial trans) in
  let ctx = Mcdbg.make trans ~reach in
  let f = Ctl.parse "s=0 & s=1" in
  let outcome = Mc.check ~reach trans f in
  match Mcdbg.explain_failure ctx f outcome with
  | Some (Mcdbg.Conjuncts [ (sub, Mcdbg.Prop_value (_, false)) ]) ->
      Alcotest.(check string) "failing conjunct" "s=1" (Ctl.to_string sub)
  | Some other -> Alcotest.failf "unexpected shape (depth %d)" (Mcdbg.depth other)
  | None -> Alcotest.fail "no explanation"

let test_mcdbg_ex_true_witness () =
  let _, trans = build counter_src in
  let reach = Reach.compute trans (Trans.initial trans) in
  let ctx = Mcdbg.make trans ~reach in
  (* !EX s=1 fails at init; the explanation is the EX witness *)
  let f = Ctl.parse "!(EX s=1)" in
  let outcome = Mc.check ~reach trans f in
  Alcotest.(check bool) "fails" false (Mc.holds outcome);
  match Mcdbg.explain_failure ctx f outcome with
  | Some (Mcdbg.Negation (Mcdbg.Successor (step, Mcdbg.Prop_value (_, true)))) ->
      Alcotest.(check bool) "witness reaches s=1" true
        (List.exists (fun (_, v) -> v = 1) step.Trace.state)
  | Some other -> Alcotest.failf "unexpected shape (depth %d)" (Mcdbg.depth other)
  | None -> Alcotest.fail "no explanation"

(* ------------------------------------------------------------------ *)
(* Randomized soundness: on random networks where an invariance property
   fails, the produced counterexample must verify and replay on the
   explicit engine. *)

let random_model rng_seed =
  let h = ref (rng_seed * 7919) in
  let rand n =
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
    (!h lsr 12) mod n
  in
  let rows =
    let out = ref [] in
    for a = 0 to 3 do
      for u = 0 to 1 do
        let width = 1 + rand 2 in
        for _ = 1 to width do
          out :=
            {
              Ast.r_inputs = [ Ast.Val (string_of_int a); Ast.Val (string_of_int u) ];
              r_outputs = [ Ast.Val (string_of_int (rand 4)) ];
            }
            :: !out
        done
      done
    done;
    List.rev !out
  in
  {
    Ast.m_name = "rnd";
    m_inputs = [];
    m_outputs = [];
    m_mvs = [ { Ast.v_names = [ "s"; "n" ]; v_size = 4; v_values = [] } ];
    m_tables =
      [
        {
          Ast.t_inputs = [];
          t_outputs = [ "u" ];
          t_rows =
            [
              { Ast.r_inputs = []; r_outputs = [ Ast.Val "0" ] };
              { Ast.r_inputs = []; r_outputs = [ Ast.Val "1" ] };
            ];
          t_default = None;
        };
        {
          Ast.t_inputs = [ "s"; "u" ];
          t_outputs = [ "n" ];
          t_rows = rows;
          t_default = None;
        };
      ];
    m_latches = [ { Ast.l_input = "n"; l_output = "s"; l_reset = [ "0" ] } ];
    m_subckts = [];
    m_delays = [];
  }

let prop_counterexamples_sound =
  QCheck.Test.make ~count:60 ~name:"failing LC always yields a verified trace"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let model = random_model seed in
      let target = string_of_int (1 + (seed mod 3)) in
      let aut =
        Autom.invariance
          ~name:"inv"
          ~ok:(Expr.parse (Printf.sprintf "s!=%s" target))
      in
      let out = Lc.check model aut in
      if (Lc.holds out) then true (* nothing to witness *)
      else begin
        let prod = Option.get out.Lc.product in
        let t =
          Trace.fair_lasso prod.Lc.env ~reach:prod.Lc.reach ~fair:prod.Lc.fair
        in
        let composed = Net.of_model (Autom.compose model aut) in
        let states =
          List.map (fun (s : Trace.step) -> s.Trace.state)
            (t.Trace.prefix @ t.Trace.cycle)
        in
        if not t.Trace.verified then
          QCheck.Test.fail_reportf "seed %d: unverified trace" seed
        else if not (replayable composed states) then
          QCheck.Test.fail_reportf "seed %d: trace not replayable" seed
        else begin
          (* the trace must actually exhibit the violation: some state where
             the system reads s = target *)
          let mon = Option.get (Net.find_signal composed "_aut_inv") in
          List.exists
            (fun st ->
              match List.assoc_opt mon st with Some v -> v > 0 | None -> false)
            states
          ||
          QCheck.Test.fail_reportf "seed %d: trace never leaves good" seed
        end
      end)

let () =
  Alcotest.run "debug"
    [
      ( "trace",
        [
          Alcotest.test_case "lc trace is real" `Quick test_lc_trace_real;
          Alcotest.test_case "prefix short" `Quick test_prefix_shortest;
          Alcotest.test_case "fair lasso" `Quick test_lasso_under_fairness;
          Alcotest.test_case "streett lasso" `Quick test_streett_lasso;
          QCheck_alcotest.to_alcotest prop_counterexamples_sound;
        ] );
      ( "mcdbg",
        [
          Alcotest.test_case "AG path" `Quick test_mcdbg_ag;
          Alcotest.test_case "AF lasso" `Quick test_mcdbg_af;
          Alcotest.test_case "conjunction" `Quick test_mcdbg_conjunction;
          Alcotest.test_case "EX witness" `Quick test_mcdbg_ex_true_witness;
        ] );
    ]
