(* Peterson's algorithm end to end: safety, fairness-dependent liveness,
   the seeded bug, and agreement of both engines on all of it. *)

open Hsis_models
open Hsis_core
open Hsis_check
open Hsis_auto

let test_correct () =
  let m = Peterson.make () in
  let d = Hsis.read_verilog m.Model.verilog in
  let pif = Model.parse_pif m in
  let report = Hsis.run_pif d pif in
  List.iter
    (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("ctl " ^ c.Hsis.pr_name) true (Hsis_limits.Verdict.holds c.Hsis.pr_verdict))
    report.Hsis.ctl;
  List.iter
    (fun (l : Hsis.lc_evidence Hsis.property_result) ->
      Alcotest.(check bool) ("lc " ^ l.Hsis.pr_name) true (Hsis_limits.Verdict.holds l.Hsis.pr_verdict))
    report.Hsis.lc

let test_liveness_needs_fairness () =
  let m = Peterson.make () in
  let d = Hsis.read_verilog m.Model.verilog in
  (* without scheduler fairness, a process can be starved by never being
     scheduled *)
  let f = Ctl.parse "AG (p0=WAITTURN -> AF p0=CRIT)" in
  let unfair = Hsis.check_ctl d ~name:"starve" f in
  Alcotest.(check bool) "starvation without fairness" false
    (Hsis_limits.Verdict.holds unfair.Hsis.pr_verdict);
  let fair =
    Hsis.check_ctl
      ~fairness:
        [
          Fair.Inf (Fair.State (Expr.parse "who=0"));
          Fair.Inf (Fair.State (Expr.parse "who=1"));
        ]
      d ~name:"progress" f
  in
  Alcotest.(check bool) "progress under fairness" true (Hsis_limits.Verdict.holds fair.Hsis.pr_verdict)

let test_broken () =
  let m = Peterson.broken () in
  let d = Hsis.read_verilog m.Model.verilog in
  let mutex = Hsis.check_ctl d ~name:"mutex" (Ctl.parse "AG !(p0=CRIT & p1=CRIT)") in
  Alcotest.(check bool) "mutex violated" false (Hsis_limits.Verdict.holds mutex.Hsis.pr_verdict);
  (* the language-containment route agrees and yields a verified trace *)
  let aut =
    Autom.invariance ~name:"excl" ~ok:(Expr.parse "!(p0=CRIT & p1=CRIT)")
  in
  let lc = Hsis.check_lc d aut in
  Alcotest.(check bool) "lc violated" false (Hsis_limits.Verdict.holds lc.Hsis.pr_verdict);
  (match lc.Hsis.pr_verdict with
  | Hsis_limits.Verdict.Fail { Hsis.le_trace = Some t; _ } ->
      Alcotest.(check bool) "trace verified" true t.Hsis_debug.Trace.verified
  | _ -> Alcotest.fail "no trace");
  (* explicit engine agrees on the violation *)
  Alcotest.(check bool) "explicit agrees" false
    (Hsis_limits.Verdict.holds (Enum.check_lc (Model.flat m) aut))

let test_explicit_crosscheck () =
  let m = Peterson.make () in
  let net = Model.net m in
  let d = Hsis.read_verilog m.Model.verilog in
  Alcotest.(check int) "state counts agree"
    (Enum.count_reachable net)
    (int_of_float (Hsis.reached_states d));
  let g = Enum.build net in
  let fair_syn =
    [
      Fair.Inf (Fair.State (Expr.parse "who=0"));
      Fair.Inf (Fair.State (Expr.parse "who=1"));
    ]
  in
  let econstrs = Enum.compile_fairness net g fair_syn in
  let _, verdict =
    Enum.check_ctl net g econstrs (Ctl.parse "AG (p0=WAITTURN -> AF p0=CRIT)")
  in
  Alcotest.(check bool) "explicit fair liveness" true
    (Hsis_limits.Verdict.holds verdict)

let () =
  Alcotest.run "peterson"
    [
      ( "peterson",
        [
          Alcotest.test_case "correct version" `Quick test_correct;
          Alcotest.test_case "liveness needs fairness" `Quick
            test_liveness_needs_fairness;
          Alcotest.test_case "broken version" `Quick test_broken;
          Alcotest.test_case "explicit crosscheck" `Quick
            test_explicit_crosscheck;
        ] );
    ]
