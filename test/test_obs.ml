(* Observability subsystem: clock monotonicity, counter monotonicity,
   snapshot diffs, the hand-rolled JSON printer/parser, and end-to-end
   JSON round-trips of a real design snapshot. *)

open Hsis_obs
open Hsis_bdd

let test_clock_monotonic () =
  let a = Obs.Clock.now () in
  let b = Obs.Clock.now () in
  let c = Obs.Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (a <= b && b <= c);
  let x, dt = Obs.Clock.wall (fun () -> Sys.opaque_identity 42) in
  Alcotest.(check int) "wall returns result" 42 x;
  Alcotest.(check bool) "wall time non-negative" true (dt >= 0.0)

let test_timers () =
  let t = Obs.Timers.create () in
  Obs.Timers.add t "parse" 0.5;
  Obs.Timers.add t "order" 0.25;
  Obs.Timers.add t "parse" 0.5;
  Alcotest.(check (option (float 1e-9))) "accumulates" (Some 1.0)
    (Obs.Timers.find t "parse");
  Alcotest.(check (list (pair string (float 1e-9)))) "insertion order"
    [ ("parse", 1.0); ("order", 0.25) ]
    (Obs.Timers.to_list t);
  Alcotest.(check (float 1e-9)) "total" 1.25 (Obs.Timers.total t);
  let v = Obs.Timers.time t "work" (fun () -> 7) in
  Alcotest.(check int) "time passes result through" 7 v;
  Alcotest.(check bool) "timed phase recorded" true
    (Obs.Timers.find t "work" <> None)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("a", Int 3);
        ("b", Float 1.5);
        ("c", Str "hi \"there\"\nline\t\\end");
        ("d", List [ Bool true; Bool false; Null ]);
        ("e", Obj [ ("nested", List [ Int (-7); Float (-0.125) ]) ]);
        ("empty_list", List []);
        ("empty_obj", Obj []);
      ]
  in
  let s = to_string v in
  Alcotest.(check bool) "parses back equal" true (parse s = v);
  (* non-finite floats degrade to null rather than emitting invalid JSON *)
  let s2 = to_string (List [ Float nan; Float infinity ]) in
  Alcotest.(check bool) "nan/inf become null" true (parse s2 = List [ Null; Null ])

let test_json_parser_strict () =
  let open Obs.Json in
  let ok s v = Alcotest.(check bool) ("parse " ^ s) true (parse s = v) in
  ok "  null " Null;
  ok "[1,2,3]" (List [ Int 1; Int 2; Int 3 ]);
  ok "\"\\u0041\\u00e9\"" (Str "A\xc3\xa9");
  ok "-2.5e2" (Float (-250.0));
  let fails s =
    Alcotest.(check bool) ("reject " ^ s) true
      (match parse s with exception Parse_error _ -> true | _ -> false)
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails "{\"a\":1} trailing";
  fails "'single'";
  (* accessors: missing members yield neutral elements *)
  let v = parse "{\"x\":4,\"y\":\"s\",\"z\":[1]}" in
  Alcotest.(check int) "member int" 4 (to_int (member "x" v));
  Alcotest.(check string) "member str" "s" (to_str (member "y" v));
  Alcotest.(check int) "member list" 1 (List.length (to_list (member "z" v)));
  Alcotest.(check int) "missing int is 0" 0 (to_int (member "nope" v))

(* Build a little BDD workload with the given amount of churn and return
   the manager's structured stats. *)
let workload man rounds =
  let vars = Array.init 8 (fun i -> Bdd.new_var ~name:(Printf.sprintf "w%d" i) man) in
  let acc = ref (Bdd.dtrue man) in
  for r = 0 to rounds - 1 do
    let f = Bdd.dand vars.(r mod 8) vars.((r + 3) mod 8) in
    let g = Bdd.xor f vars.((r + 5) mod 8) in
    acc := Bdd.dor !acc (Bdd.ite g f (Bdd.dnot f))
  done;
  !acc

let test_counters_monotonic () =
  let man = Bdd.new_man () in
  ignore (workload man 6);
  let st1 = Bdd.stats man in
  ignore (workload man 18);
  let st2 = Bdd.stats man in
  let by_name (st : Obs.man_stats) =
    List.map (fun (o : Obs.Cache.op) -> (o.Obs.Cache.name, o)) st.Obs.cache.Obs.Cache.ops
  in
  let m1 = by_name st1 and m2 = by_name st2 in
  Alcotest.(check int) "same op set" (List.length m1) (List.length m2);
  List.iter
    (fun (name, (o2 : Obs.Cache.op)) ->
      let o1 = List.assoc name m1 in
      Alcotest.(check bool) (name ^ " hits monotone") true
        (o2.Obs.Cache.hits >= o1.Obs.Cache.hits);
      Alcotest.(check bool) (name ^ " misses monotone") true
        (o2.Obs.Cache.misses >= o1.Obs.Cache.misses))
    m2;
  Alcotest.(check bool) "workload hit the cache" true
    (Obs.Cache.lookups { Obs.Cache.name = "all";
                         hits = Obs.Cache.hits st2.Obs.cache;
                         misses = Obs.Cache.misses st2.Obs.cache } > 0);
  Alcotest.(check bool) "peak live positive" true
    (st2.Obs.arena.Obs.Arena.peak_live > 0);
  Alcotest.(check bool) "peak live >= live" true
    (st2.Obs.arena.Obs.Arena.peak_live >= st2.Obs.arena.Obs.Arena.live);
  (* direct-mapped cache gauges *)
  Alcotest.(check bool) "cache has slots" true
    (st2.Obs.cache.Obs.Cache.slots > 0);
  Alcotest.(check bool) "entries within slots" true
    (st2.Obs.cache.Obs.Cache.entries >= 0
    && st2.Obs.cache.Obs.Cache.entries <= st2.Obs.cache.Obs.Cache.slots);
  Alcotest.(check bool) "occupancy in [0,1]" true
    (let o = Obs.Cache.occupancy st2.Obs.cache in
     o >= 0.0 && o <= 1.0);
  Alcotest.(check bool) "evictions monotone" true
    (st2.Obs.cache.Obs.Cache.evictions >= st1.Obs.cache.Obs.Cache.evictions)

let test_diff_non_negative () =
  let man = Bdd.new_man () in
  ignore (workload man 5);
  let s1 = Obs.snapshot ~phases:[ ("reach", 1.0) ] (Bdd.stats man) in
  ignore (workload man 15);
  Bdd.sift man;
  let s2 = Obs.snapshot ~phases:[ ("reach", 3.5); ("mc", 0.5) ] (Bdd.stats man) in
  let d = Obs.diff s1 s2 in
  List.iter2
    (fun (o2 : Obs.Cache.op) (od : Obs.Cache.op) ->
      Alcotest.(check bool) (od.Obs.Cache.name ^ " diff hits >= 0") true
        (od.Obs.Cache.hits >= 0);
      Alcotest.(check bool) (od.Obs.Cache.name ^ " diff misses >= 0") true
        (od.Obs.Cache.misses >= 0);
      Alcotest.(check bool) (od.Obs.Cache.name ^ " diff <= after") true
        (od.Obs.Cache.hits <= o2.Obs.Cache.hits))
    s2.Obs.man.Obs.cache.Obs.Cache.ops d.Obs.man.Obs.cache.Obs.Cache.ops;
  Alcotest.(check bool) "gc diff non-negative" true
    (d.Obs.man.Obs.gc.Obs.Gc.runs >= 0 && d.Obs.man.Obs.gc.Obs.Gc.time >= 0.0);
  Alcotest.(check bool) "reorder diff non-negative" true
    (d.Obs.man.Obs.reorder.Obs.Reorder.runs >= 0
    && d.Obs.man.Obs.reorder.Obs.Reorder.time >= 0.0);
  Alcotest.(check (option (float 1e-9))) "phase diff subtracts" (Some 2.5)
    (List.assoc_opt "reach" d.Obs.phases
     |> Option.map (fun x -> Some x) |> Option.value ~default:None);
  Alcotest.(check (option (float 1e-9))) "new phase kept whole" (Some 0.5)
    (List.assoc_opt "mc" d.Obs.phases
     |> Option.map (fun x -> Some x) |> Option.value ~default:None);
  (* gauges come from [after] *)
  Alcotest.(check int) "arena is after's gauge"
    s2.Obs.man.Obs.arena.Obs.Arena.live d.Obs.man.Obs.arena.Obs.Arena.live

let counter_src =
  {|
.model obscount
.mv s,ns 4
.table s -> ns
0 1
1 2
2 3
3 0
.latch ns s
.reset s 0
.end
|}

let test_design_snapshot_roundtrip () =
  let design = Hsis_core.Hsis.read_blifmv counter_src in
  ignore (Hsis_core.Hsis.reachable design);
  let snap = Hsis_core.Hsis.snapshot design in
  (* sanity on the live snapshot *)
  Alcotest.(check bool) "has parse phase" true
    (List.mem_assoc "parse" snap.Obs.phases);
  Alcotest.(check bool) "has reach phase" true
    (List.mem_assoc "reach" snap.Obs.phases);
  Alcotest.(check bool) "reach profile non-empty" true (snap.Obs.reach <> []);
  let steps = List.map (fun (s : Obs.reach_sample) -> s.Obs.step) snap.Obs.reach in
  Alcotest.(check bool) "profile steps strictly increasing from 0" true
    (steps = List.init (List.length steps) Fun.id);
  List.iter
    (fun (s : Obs.reach_sample) ->
      Alcotest.(check bool) "frontier nodes positive" true (s.Obs.frontier_nodes > 0);
      Alcotest.(check bool) "step time non-negative" true (s.Obs.step_time >= 0.0))
    snap.Obs.reach;
  (match snap.Obs.relation with
  | None -> Alcotest.fail "relation profile missing"
  | Some r ->
      Alcotest.(check bool) "relation parts positive" true (r.Obs.rel_parts > 0);
      Alcotest.(check bool) "largest <= total" true (r.Obs.rel_largest <= r.Obs.rel_nodes));
  (* JSON round-trip preserves the key fields *)
  let snap' = Obs.of_json (Obs.Json.parse (Obs.json_string snap)) in
  Alcotest.(check bool) "cache ops survive" true
    (List.map (fun (o : Obs.Cache.op) -> (o.Obs.Cache.name, o.Obs.Cache.hits, o.Obs.Cache.misses))
       snap.Obs.man.Obs.cache.Obs.Cache.ops
    = List.map (fun (o : Obs.Cache.op) -> (o.Obs.Cache.name, o.Obs.Cache.hits, o.Obs.Cache.misses))
        snap'.Obs.man.Obs.cache.Obs.Cache.ops);
  Alcotest.(check int) "peak live survives"
    snap.Obs.man.Obs.arena.Obs.Arena.peak_live
    snap'.Obs.man.Obs.arena.Obs.Arena.peak_live;
  Alcotest.(check int) "cache slots survive"
    snap.Obs.man.Obs.cache.Obs.Cache.slots
    snap'.Obs.man.Obs.cache.Obs.Cache.slots;
  Alcotest.(check int) "cache evictions survive"
    snap.Obs.man.Obs.cache.Obs.Cache.evictions
    snap'.Obs.man.Obs.cache.Obs.Cache.evictions;
  Alcotest.(check int) "cache entries survive"
    snap.Obs.man.Obs.cache.Obs.Cache.entries
    snap'.Obs.man.Obs.cache.Obs.Cache.entries;
  (* a /1 document (no slots/evictions members) still parses: the new
     members default to zero, keeping the schema bump additive *)
  let old_doc =
    Obs.Json.parse
      {|{"schema":"hsis-obs/1","cache":{"entries":7,"ops":[{"op":"and","hits":3,"misses":2}]}}|}
  in
  let old_snap = Obs.of_json old_doc in
  Alcotest.(check int) "v1 entries read" 7
    old_snap.Obs.man.Obs.cache.Obs.Cache.entries;
  Alcotest.(check int) "v1 slots default 0" 0
    old_snap.Obs.man.Obs.cache.Obs.Cache.slots;
  Alcotest.(check int) "v1 evictions default 0" 0
    old_snap.Obs.man.Obs.cache.Obs.Cache.evictions;
  Alcotest.(check int) "gc runs survive" snap.Obs.man.Obs.gc.Obs.Gc.runs
    snap'.Obs.man.Obs.gc.Obs.Gc.runs;
  Alcotest.(check (list (pair string (float 1e-9)))) "phases survive"
    snap.Obs.phases snap'.Obs.phases;
  Alcotest.(check int) "reach profile length survives"
    (List.length snap.Obs.reach) (List.length snap'.Obs.reach);
  Alcotest.(check bool) "relation survives" true
    (snap.Obs.relation = snap'.Obs.relation);
  (* schema tag present in the emitted JSON *)
  let j = Obs.Json.parse (Obs.json_string snap) in
  Alcotest.(check string) "schema version" Obs.schema_version
    (Obs.Json.to_str (Obs.Json.member "schema" j))

(* Documents from every schema generation must parse: /1 and /2 lack the
   /3 "limits" object and "verdicts" tally, which default to zero/empty;
   a /3 document round-trips them intact. *)
let test_schema_compat () =
  let v2 =
    Obs.of_json
      (Obs.Json.parse
         {|{"schema":"hsis-obs/2","cache":{"entries":4,"slots":64,"evictions":9,"ops":[]}}|})
  in
  Alcotest.(check int) "v2 slots read" 64 v2.Obs.man.Obs.cache.Obs.Cache.slots;
  Alcotest.(check int) "v2 limit checks default 0" 0
    v2.Obs.man.Obs.limits.Obs.Limit.checks;
  Alcotest.(check (list (pair string int))) "v2 interrupts default empty" []
    v2.Obs.man.Obs.limits.Obs.Limit.interrupts;
  Alcotest.(check (list (pair string int))) "v2 verdicts default empty" []
    v2.Obs.verdicts;
  let v3 =
    Obs.of_json
      (Obs.Json.parse
         {|{"schema":"hsis-obs/3",
            "limits":{"checks":42,"interrupts":{"deadline":2,"nodes":1}},
            "verdicts":{"pass":5,"fail":1,"inconclusive":2}}|})
  in
  Alcotest.(check int) "v3 limit checks" 42 v3.Obs.man.Obs.limits.Obs.Limit.checks;
  Alcotest.(check (option int)) "v3 deadline interrupts" (Some 2)
    (List.assoc_opt "deadline" v3.Obs.man.Obs.limits.Obs.Limit.interrupts);
  Alcotest.(check (option int)) "v3 verdict tally" (Some 5)
    (List.assoc_opt "pass" v3.Obs.verdicts);
  (* and a synthetic /3 snapshot round-trips the new members intact *)
  let man = Bdd.new_man () in
  ignore (workload man 5);
  let snap =
    Obs.snapshot ~verdicts:[ ("pass", 3); ("inconclusive", 1) ] (Bdd.stats man)
  in
  let snap' = Obs.of_json (Obs.Json.parse (Obs.json_string snap)) in
  Alcotest.(check (list (pair string int))) "verdicts survive"
    snap.Obs.verdicts snap'.Obs.verdicts;
  Alcotest.(check int) "limit checks survive"
    snap.Obs.man.Obs.limits.Obs.Limit.checks
    snap'.Obs.man.Obs.limits.Obs.Limit.checks;
  Alcotest.(check (list (pair string int))) "interrupt tally survives"
    snap.Obs.man.Obs.limits.Obs.Limit.interrupts
    snap'.Obs.man.Obs.limits.Obs.Limit.interrupts

(* Merging share-nothing per-task snapshots: counters sum, gauges combine,
   worker samples concatenate — and the operation is associative, so
   per-worker partial merges compose.  Phase/worker times use exact binary
   fractions so float sums are order-independent and structural equality
   is exact. *)
let test_merge () =
  let w t s = { Obs.w_tasks = t; Obs.w_time = s } in
  let mk rounds phases verdicts workers =
    let man = Bdd.new_man () in
    ignore (workload man rounds);
    Obs.snapshot ~phases ~verdicts ~workers (Bdd.stats man)
  in
  let a = mk 4 [ ("reach", 1.0) ] [ ("pass", 2) ] [ w 3 0.5 ] in
  let b = mk 9 [ ("reach", 0.5); ("mc", 0.25) ] [ ("fail", 1) ] [ w 1 0.25 ] in
  let c = mk 14 [ ("lc", 2.0) ] [ ("pass", 4) ] [] in
  let m = Obs.merge [ a; b; c ] in
  let hits s = Obs.Cache.hits s.Obs.man.Obs.cache in
  let misses s = Obs.Cache.misses s.Obs.man.Obs.cache in
  Alcotest.(check int) "hits sum" (hits a + hits b + hits c) (hits m);
  Alcotest.(check int) "misses sum" (misses a + misses b + misses c)
    (misses m);
  let live s = s.Obs.man.Obs.arena.Obs.Arena.live in
  Alcotest.(check int) "live nodes sum" (live a + live b + live c) (live m);
  let vars s = s.Obs.man.Obs.arena.Obs.Arena.vars in
  Alcotest.(check int) "vars is the max" (max (vars a) (max (vars b) (vars c)))
    (vars m);
  Alcotest.(check (list (pair string (float 1e-9)))) "phases sum in order"
    [ ("reach", 1.5); ("mc", 0.25); ("lc", 2.0) ]
    m.Obs.phases;
  Alcotest.(check (list (pair string int))) "verdict tallies sum"
    [ ("pass", 6); ("fail", 1) ]
    m.Obs.verdicts;
  Alcotest.(check bool) "worker samples concatenate" true
    (m.Obs.workers = [ w 3 0.5; w 1 0.25 ]);
  (* associativity: partial merges compose *)
  Alcotest.(check bool) "associative" true
    (Obs.merge [ a; Obs.merge [ b; c ] ]
    = Obs.merge [ Obs.merge [ a; b ]; c ]);
  (* neutral element *)
  let z = Obs.merge [] in
  Alcotest.(check int) "merge [] has zero hits" 0 (hits z);
  Alcotest.(check bool) "merge [] is empty" true
    (z.Obs.phases = [] && z.Obs.verdicts = [] && z.Obs.workers = []);
  Alcotest.(check bool) "merge [x] keeps counters" true
    (hits (Obs.merge [ a ]) = hits a)

(* /4 adds the workers member (and per-step simplify_saved): it must
   round-trip, and documents from every earlier generation must still
   parse with workers defaulting to empty. *)
let test_workers_roundtrip () =
  let man = Bdd.new_man () in
  ignore (workload man 6);
  let snap =
    Obs.snapshot
      ~workers:
        [
          { Obs.w_tasks = 5; Obs.w_time = 1.25 };
          { Obs.w_tasks = 2; Obs.w_time = 0.5 };
        ]
      (Bdd.stats man)
  in
  let snap' = Obs.of_json (Obs.Json.parse (Obs.json_string snap)) in
  Alcotest.(check bool) "workers survive the round-trip" true
    (snap.Obs.workers = snap'.Obs.workers);
  (* a /3 document has no workers member *)
  let v3 =
    Obs.of_json
      (Obs.Json.parse {|{"schema":"hsis-obs/3","limits":{"checks":1}}|})
  in
  Alcotest.(check bool) "v3 workers default empty" true (v3.Obs.workers = []);
  (* a /3 reach profile has no simplify_saved member *)
  let v3r =
    Obs.of_json
      (Obs.Json.parse
         {|{"schema":"hsis-obs/3",
            "reach_profile":[{"step":0,"frontier_nodes":3,"reachable_nodes":3,"step_time":0.0}]}|})
  in
  (match v3r.Obs.reach with
  | [ s ] ->
      Alcotest.(check int) "v3 simplify_saved defaults 0" 0
        s.Obs.simplify_saved
  | _ -> Alcotest.fail "v3 reach profile lost");
  Alcotest.(check string) "schema is /7" "hsis-obs/7" Obs.schema_version

(* /6 adds the tr member (transition-relation strategy and isomorphism
   sharing counters): it must round-trip, and documents from every earlier
   generation — which have no tr member — must still parse with tr
   defaulting to absent. *)
let test_tr_roundtrip () =
  let man = Bdd.new_man () in
  ignore (workload man 4);
  let tr =
    {
      Obs.tr_strategy = "iso";
      tr_masters = 2;
      tr_instances = 5;
      tr_shared_nodes_saved = 1234;
      tr_permute_time = 0.125;
    }
  in
  let snap = Obs.snapshot ~tr (Bdd.stats man) in
  let snap' = Obs.of_json (Obs.Json.parse (Obs.json_string snap)) in
  Alcotest.(check bool) "tr survives the round-trip" true
    (snap'.Obs.tr = Some tr);
  (* absence also round-trips *)
  let bare = Obs.snapshot (Bdd.stats man) in
  let bare' = Obs.of_json (Obs.Json.parse (Obs.json_string bare)) in
  Alcotest.(check bool) "absent tr stays absent" true (bare'.Obs.tr = None);
  (* /1-/5 documents have no tr member *)
  List.iter
    (fun v ->
      let doc =
        Obs.of_json
          (Obs.Json.parse
             (Printf.sprintf {|{"schema":"hsis-obs/%d","gc":{"runs":1}}|} v))
      in
      Alcotest.(check bool)
        (Printf.sprintf "v%d tr defaults to absent" v)
        true (doc.Obs.tr = None))
    [ 1; 2; 3; 4; 5 ];
  (* diff keeps the after side's tr; merge keeps the first present one *)
  let d = Obs.diff bare snap in
  Alcotest.(check bool) "diff takes after's tr" true (d.Obs.tr = Some tr);
  let m = Obs.merge [ bare; snap ] in
  Alcotest.(check bool) "merge finds the first present tr" true
    (m.Obs.tr = Some tr)

(* /7 adds the intra member (intra-operation parallel kernel counters):
   it must round-trip, and documents from every earlier generation — which
   have no intra member — must parse with intra defaulting to zero. *)
let test_intra_roundtrip () =
  let man = Bdd.new_man ~kernel_jobs:2 () in
  ignore (workload man 6);
  let snap = Obs.snapshot (Bdd.stats man) in
  let snap' = Obs.of_json (Obs.Json.parse (Obs.json_string snap)) in
  Alcotest.(check bool) "intra survives the round-trip" true
    (snap.Obs.man.Obs.intra = snap'.Obs.man.Obs.intra);
  Alcotest.(check bool) "parallel sections were recorded" true
    (snap.Obs.man.Obs.intra.Obs.Intra.ops > 0);
  List.iter
    (fun v ->
      let doc =
        Obs.of_json
          (Obs.Json.parse
             (Printf.sprintf {|{"schema":"hsis-obs/%d","gc":{"runs":1}}|} v))
      in
      Alcotest.(check bool)
        (Printf.sprintf "v%d intra defaults to zero" v)
        true
        (doc.Obs.man.Obs.intra = Obs.Intra.zero))
    [ 1; 2; 3; 4; 5; 6 ];
  (* merge sums the counters across snapshots *)
  let m = Obs.merge [ snap; snap ] in
  Alcotest.(check int) "merge sums intra ops"
    (2 * snap.Obs.man.Obs.intra.Obs.Intra.ops)
    m.Obs.man.Obs.intra.Obs.Intra.ops

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "timers" `Quick test_timers;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "strict parser" `Quick test_json_parser_strict;
        ] );
      ( "counters",
        [
          Alcotest.test_case "monotonic" `Quick test_counters_monotonic;
          Alcotest.test_case "diff non-negative" `Quick test_diff_non_negative;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "design roundtrip" `Quick
            test_design_snapshot_roundtrip;
          Alcotest.test_case "schema compat /1 /2 /3" `Quick test_schema_compat;
          Alcotest.test_case "merge sums and is associative" `Quick test_merge;
          Alcotest.test_case "workers member round-trip + compat" `Quick
            test_workers_roundtrip;
          Alcotest.test_case "tr member round-trip + compat" `Quick
            test_tr_roundtrip;
          Alcotest.test_case "intra member round-trip + compat" `Quick
            test_intra_roundtrip;
        ] );
    ]
