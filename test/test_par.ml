(* The domain pool and the job-count invariance contracts: pool mechanics
   (ordered results, fail-fast, cancellation, error re-raise), fuzz runs
   whose findings must be identical at -j 1/2/4 (including the shrink +
   repro-file pipeline, exercised via a config that crashes the
   generator), and parallel property checking matching run_pif. *)

open Hsis_obs
open Hsis_limits
open Hsis_par
open Hsis_core
open Hsis_models

(* ------------------------------------------------------------------ *)
(* Pool mechanics *)

let test_pool_results () =
  let results, stats =
    Par.run ~jobs:4 ~tasks:25 (fun ~cancelled:_ i -> i * i)
  in
  Alcotest.(check int) "all slots" 25 (Array.length results);
  Array.iteri
    (fun i r ->
      Alcotest.(check (option int)) (Printf.sprintf "slot %d" i)
        (Some (i * i)) r)
    results;
  Alcotest.(check int) "completed" 25 stats.Par.completed;
  Alcotest.(check int) "cancelled" 0 stats.Par.cancelled;
  Alcotest.(check int) "workers ran every task once" 25
    (Array.fold_left ( + ) 0 stats.Par.worker_tasks);
  Alcotest.(check int) "worker sample count" stats.Par.jobs
    (List.length (Par.worker_samples stats))

let test_pool_sequential_order () =
  (* a one-worker pool must behave like a plain for-loop: ascending task
     order, no domain spawned (the order ref would race otherwise) *)
  let order = ref [] in
  let results, _ =
    Par.run ~jobs:1 ~tasks:6 (fun ~cancelled:_ i ->
        order := i :: !order;
        i)
  in
  Alcotest.(check (list int)) "ascending at one job" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !order);
  Alcotest.(check bool) "all done" true (Array.for_all (( <> ) None) results)

let test_pool_exception () =
  Alcotest.check_raises "task exception re-raised" (Failure "boom")
    (fun () ->
      ignore
        (Par.run ~jobs:2 ~tasks:8 (fun ~cancelled:_ i ->
             if i = 3 then failwith "boom")))

let test_pool_cancelled_budget () =
  (* an already-cancelled pool budget skips every task *)
  let limits =
    { Limits.none with Limits.cancelled = Some (fun () -> true) }
  in
  let results, stats =
    Par.run ~jobs:2 ~limits ~tasks:5 (fun ~cancelled:_ i -> i)
  in
  Alcotest.(check bool) "all skipped" true (Array.for_all (( = ) None) results);
  Alcotest.(check int) "cancelled count" 5 stats.Par.cancelled;
  (* map refuses to return a partial result set *)
  Alcotest.check_raises "map raises on cancellation"
    (Limits.Interrupted Limits.Cancelled) (fun () ->
      ignore (Par.map ~jobs:2 ~limits (fun x -> x) [ 1; 2; 3 ]))

let test_pool_fail_fast () =
  let results, stats =
    Par.run ~jobs:1 ~tasks:10
      ~stop_when:(fun _ r -> r = 4)
      ~limits:Limits.none
      (fun ~cancelled:_ i -> i * 2)
  in
  Alcotest.(check (option int)) "task 0 ran" (Some 0) results.(0);
  Alcotest.(check (option int)) "task 2 (the trigger) ran" (Some 4)
    results.(2);
  for i = 3 to 9 do
    Alcotest.(check (option int))
      (Printf.sprintf "task %d cancelled" i)
      None results.(i)
  done;
  Alcotest.(check int) "completed" 3 stats.Par.completed;
  Alcotest.(check int) "cancelled" 7 stats.Par.cancelled

let test_map_order () =
  let rs, _ = Par.map ~jobs:3 (fun x -> x + 1) [ 5; 1; 9; 7 ] in
  Alcotest.(check (list int)) "order preserved" [ 6; 2; 10; 8 ] rs

let test_with_cancelled () =
  let flag = ref false in
  let l = Par.with_cancelled Limits.none (fun () -> !flag) in
  Alcotest.(check bool) "no breach initially" true
    (Limits.breach l ~live:0 = None);
  flag := true;
  Alcotest.(check bool) "breach once the pool flag flips" true
    (Limits.breach l ~live:0 <> None);
  (* composition keeps the budget's own callback *)
  let own = ref false in
  let base =
    { Limits.none with Limits.cancelled = Some (fun () -> !own) }
  in
  let l2 = Par.with_cancelled base (fun () -> false) in
  Alcotest.(check bool) "own callback still consulted" true
    (Limits.breach l2 ~live:0 = None
    &&
    (own := true;
     Limits.breach l2 ~live:0 <> None))

(* ------------------------------------------------------------------ *)
(* Fuzz job-count invariance *)

let canon_fuzz report =
  (* the scheduling-independent part of the report JSON: everything minus
     wall-clock and pool statistics *)
  match Hsis_gen.Diff.report_to_json report with
  | Obs.Json.Obj ms ->
      Obs.Json.to_string
        (Obs.Json.Obj
           (List.filter
              (fun (k, _) ->
                not (List.mem k [ "elapsed_s"; "jobs"; "pool" ]))
              ms))
  | j -> Obs.Json.to_string j

let fuzz_cfg ~iters ~seed jobs =
  { Hsis_gen.Diff.default_config with Hsis_gen.Diff.iters; seed; jobs }

let test_fuzz_jobs_invariance () =
  List.iter
    (fun seed ->
      let run j = Hsis_gen.Diff.run (fuzz_cfg ~iters:12 ~seed j) in
      let r1 = canon_fuzz (run 1) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: -j 2 report identical" seed)
        r1
        (canon_fuzz (run 2));
      Alcotest.(check string)
        (Printf.sprintf "seed %d: -j 4 report identical" seed)
        r1
        (canon_fuzz (run 4)))
    [ 42; 1994 ]

(* A generator config with no latches makes every iteration die inside
   [Gen.flat], which drives the whole discrepancy pipeline — crash record,
   shrinking, repro writing — deterministically at any job count. *)
let crash_cfg ~seed ~out_dir jobs =
  {
    (fuzz_cfg ~iters:3 ~seed jobs) with
    Hsis_gen.Diff.out_dir;
    gen_config =
      { Hsis_gen.Gen.default with Hsis_gen.Gen.max_latches = 0 };
  }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let dir_contents dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let test_crash_pipeline_invariance () =
  (* relative paths: the test runs in dune's sandbox directory *)
  let d1 = "par-crash-repros-j1" and d2 = "par-crash-repros-j2" in
  let r1 = Hsis_gen.Diff.run (crash_cfg ~seed:7 ~out_dir:(Some d1) 1) in
  let r2 = Hsis_gen.Diff.run (crash_cfg ~seed:7 ~out_dir:(Some d2) 2) in
  Alcotest.(check int) "every iteration is a discrepancy" 3
    (List.length r1.Hsis_gen.Diff.discrepancies);
  List.iter
    (fun (d : Hsis_gen.Diff.discrepancy) ->
      Alcotest.(check string) "crash kind" "crash"
        (Hsis_gen.Diff.kind_name d.Hsis_gen.Diff.d_kind))
    r1.Hsis_gen.Diff.discrepancies;
  (* same findings... *)
  let key (d : Hsis_gen.Diff.discrepancy) =
    (d.Hsis_gen.Diff.d_iter, d.Hsis_gen.Diff.d_kind, d.Hsis_gen.Diff.d_detail)
  in
  Alcotest.(check bool) "discrepancy lists identical" true
    (List.map key r1.Hsis_gen.Diff.discrepancies
    = List.map key r2.Hsis_gen.Diff.discrepancies);
  (* ...and byte-identical repro files *)
  Alcotest.(check bool) "repro files identical" true
    (dir_contents d1 = dir_contents d2);
  Alcotest.(check bool) "repro files were written" true (dir_contents d1 <> [])

(* ------------------------------------------------------------------ *)
(* Parallel property checking *)

let prop_keys ps =
  List.map
    (fun p -> (p.Hsis.pr_name, Verdict.name p.Hsis.pr_verdict))
    ps

let test_check_par_matches_seq () =
  let m = Option.get (Models.by_name "pingpong") in
  let pif = Model.parse_pif m in
  let seq =
    Hsis.run_pif ~witnesses:false (Hsis.read_verilog m.Model.verilog) pif
  in
  let par, snap =
    Hsis.run_pif_par ~witnesses:false ~jobs:2
      (Hsis.read_verilog m.Model.verilog)
      pif
  in
  Alcotest.(check (list (pair string string))) "ctl verdicts match"
    (prop_keys seq.Hsis.ctl) (prop_keys par.Hsis.ctl);
  Alcotest.(check (list (pair string string))) "lc verdicts match"
    (prop_keys seq.Hsis.lc) (prop_keys par.Hsis.lc);
  Alcotest.(check int) "exit codes match"
    (Hsis.report_exit_code seq)
    (Hsis.report_exit_code par);
  (* the merged snapshot aggregates every task manager and carries the
     pool's per-worker activity *)
  Alcotest.(check int) "two worker samples" 2 (List.length snap.Obs.workers);
  let props = List.length seq.Hsis.ctl + List.length seq.Hsis.lc in
  Alcotest.(check int) "merged verdict tally covers every property" props
    (List.fold_left (fun acc (_, n) -> acc + n) 0 snap.Obs.verdicts);
  Alcotest.(check int) "every task executed" props
    (List.fold_left
       (fun acc (w : Obs.worker_sample) -> acc + w.Obs.w_tasks)
       0 snap.Obs.workers)

let test_check_fail_fast_exit_code () =
  (* fail-fast may skip siblings (inconclusive) but a definitive failure
     must still dominate the exit code; on an all-pass design fail-fast
     changes nothing *)
  let m = Option.get (Models.by_name "pingpong") in
  let pif = Model.parse_pif m in
  let report, _ =
    Hsis.run_pif_par ~witnesses:false ~fail_fast:true ~jobs:2
      (Hsis.read_verilog m.Model.verilog)
      pif
  in
  Alcotest.(check int) "all-pass design unaffected by fail-fast" 0
    (Hsis.report_exit_code report)

(* ------------------------------------------------------------------ *)
(* Frontier simplification is result-invariant *)

let test_reach_simplify_invariant () =
  let m = Option.get (Models.by_name "pingpong") in
  let d = Hsis.read_verilog m.Model.verilog in
  let init = Hsis_fsm.Trans.initial d.Hsis.trans in
  let plain = Hsis_check.Reach.compute d.Hsis.trans init in
  let simp = Hsis_check.Reach.compute ~simplify:true d.Hsis.trans init in
  Alcotest.(check bool) "reachable set identical" true
    (Hsis_bdd.Bdd.equal plain.Hsis_check.Reach.reachable
       simp.Hsis_check.Reach.reachable);
  Alcotest.(check int) "same step count" plain.Hsis_check.Reach.steps
    simp.Hsis_check.Reach.steps;
  Alcotest.(check int) "same ring count"
    (Array.length plain.Hsis_check.Reach.rings)
    (Array.length simp.Hsis_check.Reach.rings);
  Array.iteri
    (fun k r ->
      Alcotest.(check bool)
        (Printf.sprintf "ring %d identical" k)
        true
        (Hsis_bdd.Bdd.equal r simp.Hsis_check.Reach.rings.(k)))
    plain.Hsis_check.Reach.rings;
  Alcotest.(check bool) "same verdict" true
    (plain.Hsis_check.Reach.verdict = simp.Hsis_check.Reach.verdict);
  (* saved-node accounting present and sane *)
  Array.iter
    (fun (s : Obs.reach_sample) ->
      Alcotest.(check bool) "saved >= 0" true (s.Obs.simplify_saved >= 0))
    simp.Hsis_check.Reach.profile;
  Array.iter
    (fun (s : Obs.reach_sample) ->
      Alcotest.(check int) "plain run saves nothing" 0 s.Obs.simplify_saved)
    plain.Hsis_check.Reach.profile

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered results" `Quick test_pool_results;
          Alcotest.test_case "sequential order at -j 1" `Quick
            test_pool_sequential_order;
          Alcotest.test_case "exception re-raise" `Quick test_pool_exception;
          Alcotest.test_case "cancelled budget skips all" `Quick
            test_pool_cancelled_budget;
          Alcotest.test_case "fail-fast" `Quick test_pool_fail_fast;
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "with_cancelled composes" `Quick
            test_with_cancelled;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "findings identical at -j 1/2/4" `Slow
            test_fuzz_jobs_invariance;
          Alcotest.test_case "crash/shrink/repro pipeline invariant" `Quick
            test_crash_pipeline_invariance;
        ] );
      ( "check",
        [
          Alcotest.test_case "parallel matches sequential" `Quick
            test_check_par_matches_seq;
          Alcotest.test_case "fail-fast exit code" `Quick
            test_check_fail_fast_exit_code;
        ] );
      ( "reach",
        [
          Alcotest.test_case "simplify is result-invariant" `Quick
            test_reach_simplify_invariant;
        ] );
    ]
