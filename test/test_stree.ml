(* Synchrony trees (extended c/s model, paper Sec. 4): interleaved and
   mixed semantics, symbolic vs explicit agreement. *)

open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check

(* Two 2-bit counters that each increment every tick. *)
let twin_src =
  {|
.model twin
.mv a,na,b,nb 4
.table a -> na
0 1
1 2
2 3
3 0
.table b -> nb
0 1
1 2
2 3
3 0
.latch na a
.reset a 0
.latch nb b
.reset b 0
.end
|}

let flat () = Flatten.flatten (Parser.parse twin_src)

let reach_count net =
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  let trans = Trans.build sym in
  let r = Reach.compute trans (Trans.initial trans) in
  int_of_float (Reach.count_states trans r.Reach.reachable)

let test_validate () =
  let m = flat () in
  Alcotest.(check bool) "synchronous tree valid" true
    (Stree.validate m (Stree.fully_synchronous m) = Ok ());
  Alcotest.(check bool) "interleaved tree valid" true
    (Stree.validate m (Stree.interleaved m) = Ok ());
  Alcotest.(check bool) "missing latch rejected" true
    (Stree.validate m (Stree.Sync [ Stree.Leaf "a" ]) <> Ok ());
  Alcotest.(check bool) "duplicate latch rejected" true
    (Stree.validate m
       (Stree.Sync [ Stree.Leaf "a"; Stree.Leaf "a"; Stree.Leaf "b" ])
    <> Ok ())

let test_synchronous_diagonal () =
  (* lock-step: a and b always equal -> 4 reachable states *)
  let m = flat () in
  let net = Net.of_model (Stree.apply m (Stree.fully_synchronous m)) in
  Alcotest.(check int) "diagonal only" 4 (reach_count net);
  Alcotest.(check int) "explicit agrees" 4 (Enum.count_reachable net)

let test_interleaved_full () =
  (* one counter steps per tick: all 16 combinations become reachable *)
  let m = flat () in
  let net = Net.of_model (Stree.apply m (Stree.interleaved m)) in
  Alcotest.(check int) "full product" 16 (reach_count net);
  Alcotest.(check int) "explicit agrees" 16 (Enum.count_reachable net)

let test_mixed_tree () =
  (* a three-latch system: (a | b) sync with c -- a or b steps, c always *)
  let src =
    {|
.model mixed
.table a -> na
0 1
1 0
.table b -> nb
0 1
1 0
.table c -> nc
0 1
1 0
.latch na a
.reset a 0
.latch nb b
.reset b 0
.latch nc c
.reset c 0
.end
|}
  in
  let m = Flatten.flatten (Parser.parse src) in
  let tree =
    Stree.Sync [ Stree.Async [ Stree.Leaf "a"; Stree.Leaf "b" ]; Stree.Leaf "c" ]
  in
  Alcotest.(check bool) "tree valid" true (Stree.validate m tree = Ok ());
  let net = Net.of_model (Stree.apply m tree) in
  let symbolic = reach_count net in
  Alcotest.(check int) "symbolic = explicit" (Enum.count_reachable net) symbolic;
  (* each tick flips c and exactly one of a, b: the parity a^b^c is
     invariant, and all 4 even-parity states are reachable *)
  Alcotest.(check int) "even-parity states" 4 symbolic;
  (* whereas full lock-step would visit only 2 states *)
  let sync_net = Net.of_model (Stree.apply m (Stree.fully_synchronous m)) in
  Alcotest.(check int) "lock-step visits 2" 2 (reach_count sync_net)

let test_interleaved_ctl () =
  let m = flat () in
  let net = Net.of_model (Stree.apply m (Stree.interleaved m)) in
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  let trans = Trans.build sym in
  let holds src = (Mc.holds (Mc.check trans (Ctl.parse src))) in
  (* desynchronized states are reachable *)
  Alcotest.(check bool) "EF (a=3 & b=0)" true (holds "EF (a=3 & b=0)");
  (* but each counter still only ever increments *)
  Alcotest.(check bool) "AG (a=0 -> AX (a=0 | a=1))" true
    (holds "AG (a=0 -> AX (a=0 | a=1))");
  (* under interleaving, a can starve without fairness *)
  Alcotest.(check bool) "AF a=1 fails" false (holds "AF a=1")

let test_fair_interleaving () =
  (* weak fairness on each choice direction restores progress *)
  let m = flat () in
  let net = Net.of_model (Stree.apply m (Stree.interleaved m)) in
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  let trans = Trans.build sym in
  let fairness =
    Fair.compile_all trans
      [
        Fair.Inf (Fair.State (Expr.parse "_ch0=0"));
        Fair.Inf (Fair.State (Expr.parse "_ch0=1"));
      ]
  in
  let holds src = (Mc.holds (Mc.check ~fairness trans (Ctl.parse src))) in
  Alcotest.(check bool) "AF a=1 holds under fair scheduling" true
    (holds "AF a=1");
  Alcotest.(check bool) "AG AF b=0 holds" true (holds "AG AF b=0")

(* ------------------------------------------------------------------ *)
(* Randomized: arbitrary synchrony trees over random small nets keep the
   symbolic and explicit engines in agreement, and every tree's reachable
   set sits between lock-step and full interleaving is NOT generally true
   (grouping can both add and remove behaviors), so we only check engine
   agreement and basic sanity. *)

let random_tree latches rand =
  (* random binary tree shape over a shuffled latch list *)
  let rec build = function
    | [ l ] -> Stree.Leaf l
    | ls ->
        let n = List.length ls in
        let k = 1 + rand (n - 1) in
        let left = List.filteri (fun i _ -> i < k) ls in
        let right = List.filteri (fun i _ -> i >= k) ls in
        if rand 2 = 0 then Stree.Sync [ build left; build right ]
        else Stree.Async [ build left; build right ]
  in
  build latches

let prop_random_stree =
  QCheck.Test.make ~count:40 ~name:"random synchrony trees: symbolic = explicit"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let h = ref (seed * 31) in
      let rand n =
        h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
        (!h lsr 12) mod n
      in
      (* three independent togglers with random next-state tables *)
      let table out rows_src =
        {
          Hsis_blifmv.Ast.t_inputs = [ rows_src ];
          t_outputs = [ out ];
          t_rows =
            List.init 2 (fun v ->
                {
                  Hsis_blifmv.Ast.r_inputs = [ Ast.Val (string_of_int v) ];
                  r_outputs = [ Ast.Val (string_of_int (rand 2)) ];
                });
          t_default = None;
        }
      in
      let model =
        {
          Ast.m_name = "rnd";
          m_inputs = [];
          m_outputs = [];
          m_mvs = [];
          m_tables = [ table "na" "a"; table "nb" "b"; table "nc" "c" ];
          m_latches =
            [
              { Ast.l_input = "na"; l_output = "a"; l_reset = [ "0" ] };
              { Ast.l_input = "nb"; l_output = "b"; l_reset = [ "0" ] };
              { Ast.l_input = "nc"; l_output = "c"; l_reset = [ "0" ] };
            ];
          m_subckts = [];
          m_delays = [];
        }
      in
      let tree = random_tree [ "a"; "b"; "c" ] rand in
      (match Stree.validate model tree with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid tree: %s" e);
      let net = Net.of_model (Stree.apply model tree) in
      let explicit = Enum.count_reachable net in
      let symbolic = reach_count net in
      if explicit <> symbolic then
        QCheck.Test.fail_reportf "seed %d: symbolic %d explicit %d" seed
          symbolic explicit
      else true)

let () =
  Alcotest.run "stree"
    [
      ( "stree",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "synchronous diagonal" `Quick
            test_synchronous_diagonal;
          Alcotest.test_case "interleaved full" `Quick test_interleaved_full;
          Alcotest.test_case "mixed tree" `Quick test_mixed_tree;
          Alcotest.test_case "interleaved ctl" `Quick test_interleaved_ctl;
          Alcotest.test_case "fair interleaving" `Quick test_fair_interleaving;
          QCheck_alcotest.to_alcotest prop_random_stree;
        ] );
    ]
