(* Additional engine coverage: Emerson-Lei edge cases, early failure
   detection, reachability rings, monolithic-vs-partitioned agreement,
   deadlocking systems, multiple initial states, and the BDD manager under
   combined GC + reordering load. *)

open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check

let build src =
  let net = Net.of_ast (Parser.parse src) in
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  (net, Trans.build sym)

let counter_src =
  {|
.model counter
.mv s,ns 4
.table -> go
0
1
.table s go -> ns
0 1 1
1 1 2
2 1 3
3 1 0
- 0 =s
.latch ns s
.reset s 0
.end
|}

(* A system that deadlocks: from s=2 no row matches and there is no
   default, so the relation is empty there. *)
let deadlock_src =
  {|
.model dead
.mv s,ns 3
.table s -> ns
0 1
1 2
.latch ns s
.reset s 0
.end
|}

let test_rings_partition () =
  let _, trans = build counter_src in
  let r = Reach.compute trans (Trans.initial trans) in
  (* rings are disjoint and union to the reachable set *)
  let union = Array.fold_left Bdd.dor (Bdd.dfalse (Trans.man trans)) r.Reach.rings in
  Alcotest.(check bool) "union = reachable" true
    (Bdd.equal union r.Reach.reachable);
  Array.iteri
    (fun i ri ->
      Array.iteri
        (fun j rj ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "rings %d,%d disjoint" i j)
              true
              (Bdd.is_false (Bdd.dand ri rj)))
        r.Reach.rings)
    r.Reach.rings

let test_bad_hit () =
  let _, trans = build counter_src in
  let sym = Trans.sym trans in
  let bad =
    Trans.abstract_to_states trans
      (Expr.to_bdd sym (Expr.parse "s=3"))
  in
  let r = Reach.compute ~bad trans (Trans.initial trans) in
  Alcotest.(check (option int)) "s=3 first hit at step 3" (Some 3) (Reach.bad_hit r);
  let r2 = Reach.compute ~bad ~stop_on_bad:true trans (Trans.initial trans) in
  Alcotest.(check int) "stopped early" 3 r2.Reach.steps

let test_deadlock_eg () =
  let net, trans = build deadlock_src in
  let env = El.prepare trans [] in
  let r = Reach.compute trans (Trans.initial trans) in
  (* all three states reachable, but no state has an infinite path *)
  Alcotest.(check (float 0.01)) "3 reachable" 3.0
    (Reach.count_states trans r.Reach.reachable);
  let eg = El.fair_states env ~within:r.Reach.reachable in
  Alcotest.(check bool) "no infinite path" true (Bdd.is_false eg);
  (* explicit engine agrees: EG true holds nowhere *)
  let g = Enum.build net in
  let sat, verdict = Enum.check_ctl net g [] (Ctl.parse "EG true") in
  Alcotest.(check bool) "explicit EG true empty" false
    (Array.exists Fun.id sat);
  Alcotest.(check bool) "formula fails" false
    (Hsis_limits.Verdict.holds verdict)

let test_multiple_init () =
  let src =
    {|
.model multi
.mv s,ns 4
.table s -> ns
0 0
1 1
2 2
3 3
.latch ns s
.reset s 0 2
.end
|}
  in
  let _, trans = build src in
  let r = Reach.compute trans (Trans.initial trans) in
  Alcotest.(check (float 0.01)) "two frozen states" 2.0
    (Reach.count_states trans r.Reach.reachable)

let test_el_edge_buchi () =
  (* Büchi on the increment edge: fair paths must keep counting *)
  let _, trans = build counter_src in
  let sym = Trans.sym trans in
  let inc_edge =
    (* a step where the counter changes *)
    let s0 = Expr.to_bdd sym (Expr.parse "s=0") in
    ignore s0;
    Fair.edge_set trans (Expr.parse "s=0", Expr.parse "s=1")
  in
  let env = El.prepare trans [ Fair.CInf_edge inc_edge ] in
  let r = Reach.compute trans (Trans.initial trans) in
  let fair = El.fair_states env ~within:r.Reach.reachable in
  (* taking edge 0->1 infinitely often forces full cycling: all states fair *)
  Alcotest.(check (float 0.01)) "all 4 states fair" 4.0
    (Reach.count_states trans fair)

let test_el_unsatisfiable_streett () =
  (* (GF true -> GF false) is unsatisfiable on any infinite path *)
  let _, trans = build counter_src in
  let cs =
    Fair.compile_all trans
      [ Fair.Streett (Fair.State Expr.True, Fair.State Expr.False) ]
  in
  let env = El.prepare trans cs in
  let r = Reach.compute trans (Trans.initial trans) in
  Alcotest.(check bool) "no fair states" true
    (Bdd.is_false (El.fair_states env ~within:r.Reach.reachable))

let test_el_vacuous_streett () =
  (* (GF false -> GF q) holds vacuously: everything with a path is fair *)
  let _, trans = build counter_src in
  let cs =
    Fair.compile_all trans
      [ Fair.Streett (Fair.State Expr.False, Fair.State Expr.False) ]
  in
  let env = El.prepare trans cs in
  let r = Reach.compute trans (Trans.initial trans) in
  Alcotest.(check (float 0.01)) "all states fair" 4.0
    (Reach.count_states trans (El.fair_states env ~within:r.Reach.reachable))

let test_mono_vs_partitioned_pre () =
  let _, trans = build counter_src in
  let sym = Trans.sym trans in
  let target = Trans.abstract_to_states trans (Expr.to_bdd sym (Expr.parse "s=2")) in
  let p1 = Trans.preimage trans target in
  Trans.set_strategy trans Trans.Monolithic;
  let p2 = Trans.preimage trans target in
  Trans.set_strategy trans Trans.Partitioned;
  Alcotest.(check bool) "preimages agree" true (Bdd.equal p1 p2)

let test_invariance_fast_path () =
  let _, trans = build counter_src in
  let f = Ctl.parse "AG s!=2" in
  let with_efd = Mc.check ~early_failure:true trans f in
  Alcotest.(check bool) "fails" false (Mc.holds with_efd);
  Alcotest.(check bool) "early step recorded" true
    (with_efd.Mc.early_failure_step <> None)

let test_manager_stress () =
  (* interleave bulk BDD construction, garbage collection and sifting;
     invariants must hold throughout and results stay correct *)
  let man = Bdd.new_man () in
  let vars = Array.init 12 (fun i -> Bdd.new_var ~name:(Printf.sprintf "v%d" i) man) in
  Bdd.set_gc_threshold man 2048;
  let majority a b c = Bdd.dor (Bdd.dand a b) (Bdd.dor (Bdd.dand b c) (Bdd.dand a c)) in
  let keep = ref [] in
  for round = 0 to 20 do
    let f =
      majority vars.(round mod 12) vars.((round + 5) mod 12) vars.((round + 9) mod 12)
    in
    let g = Bdd.xor f vars.((round + 3) mod 12) in
    if round mod 4 = 0 then keep := g :: !keep;
    if round mod 7 = 0 then begin
      Gc.full_major ();
      ignore (Bdd.gc man)
    end;
    if round mod 10 = 5 then Bdd.sift man
  done;
  Alcotest.(check (list string)) "invariants" [] (Bdd.check man);
  (* all kept functions still evaluate consistently *)
  List.iteri
    (fun i g ->
      let env v = (v + i) mod 3 = 0 in
      (* evaluate twice; identical by determinism *)
      Alcotest.(check bool) (Printf.sprintf "kept %d stable" i)
        (Bdd.eval g env) (Bdd.eval g env))
    !keep

let test_auto_reorder () =
  let man = Bdd.new_man () in
  let vars = Array.init 10 (fun _ -> Bdd.new_var man) in
  Bdd.set_auto_reorder man true;
  Bdd.set_reorder_threshold man 30;
  (* the classic order-sensitive function *)
  let f = ref (Bdd.dfalse man) in
  for i = 0 to 4 do
    f := Bdd.dor !f (Bdd.dand vars.(i) vars.(i + 5))
  done;
  Alcotest.(check (list string)) "invariants after auto-reorder" []
    (Bdd.check man);
  Alcotest.(check bool) "auto reorder fired" true
    ((Bdd.stats man).Hsis_obs.Obs.reorder.Hsis_obs.Obs.Reorder.runs >= 1);
  (* with intermediate garbage collected, sifting reaches the linear
     interleaved order *)
  Gc.full_major ();
  ignore (Bdd.gc man);
  Bdd.sift man;
  Alcotest.(check (list string)) "invariants after final sift" []
    (Bdd.check man);
  Alcotest.(check bool)
    (Printf.sprintf "small after reorder (%d)" (Bdd.dag_size !f))
    true
    (Bdd.dag_size !f <= 16)

let () =
  Alcotest.run "check-extra"
    [
      ( "reach",
        [
          Alcotest.test_case "rings partition" `Quick test_rings_partition;
          Alcotest.test_case "bad hit" `Quick test_bad_hit;
          Alcotest.test_case "multiple init" `Quick test_multiple_init;
        ] );
      ( "el",
        [
          Alcotest.test_case "deadlock EG" `Quick test_deadlock_eg;
          Alcotest.test_case "edge buchi" `Quick test_el_edge_buchi;
          Alcotest.test_case "unsat streett" `Quick test_el_unsatisfiable_streett;
          Alcotest.test_case "vacuous streett" `Quick test_el_vacuous_streett;
          Alcotest.test_case "mono preimage" `Quick test_mono_vs_partitioned_pre;
          Alcotest.test_case "invariance EFD" `Quick test_invariance_fast_path;
        ] );
      ( "manager",
        [
          Alcotest.test_case "gc + sift stress" `Quick test_manager_stress;
          Alcotest.test_case "auto reorder" `Quick test_auto_reorder;
        ] );
    ]
