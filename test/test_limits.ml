(* The resource governor end to end: budget breaches must interrupt the
   BDD kernels and the engines, leave the manager audit-clean, surface as
   Inconclusive verdicts carrying usable partial state, and map onto the
   CLI exit-code protocol. *)

open Hsis_bdd
open Hsis_limits
open Hsis_check
open Hsis_core
open Hsis_models

let scheduler_design n =
  let m = Scheduler.make ~n () in
  Hsis.read_verilog m.Model.verilog

(* ------------------------------------------------------------------ *)
(* Limits / Verdict units *)

let test_limits_basics () =
  Alcotest.(check bool) "none is none" true (Limits.is_none Limits.none);
  Alcotest.(check bool) "make () is none" true (Limits.is_none (Limits.make ()));
  let l = Limits.make ~max_nodes:10 () in
  Alcotest.(check bool) "armed" false (Limits.is_none l);
  Alcotest.(check bool) "under quota" true (Limits.breach l ~live:5 = None);
  Alcotest.(check bool) "over quota" true
    (Limits.breach l ~live:11 = Some Limits.Limit_nodes);
  (* an already-expired deadline breaches immediately *)
  let d = Limits.make ~timeout:(-1.0) () in
  Alcotest.(check bool) "expired deadline" true
    (Limits.breach d ~live:0 = Some Limits.Limit_deadline);
  (* step quota: steps 0..n-1 allowed, step n not *)
  let s = Limits.make ~max_steps:3 () in
  Alcotest.(check bool) "step 2 allowed" true (Limits.step_allowed s ~step:2);
  Alcotest.(check bool) "step 3 denied" false (Limits.step_allowed s ~step:3);
  Alcotest.(check bool) "unlimited steps" true
    (Limits.step_allowed Limits.none ~step:max_int);
  List.iter
    (fun (r, n) -> Alcotest.(check string) "reason name" n (Limits.reason_name r))
    [
      (Limits.Limit_deadline, "deadline");
      (Limits.Limit_nodes, "nodes");
      (Limits.Limit_steps, "steps");
      (Limits.Cancelled, "cancelled");
    ]

let test_verdict_exit_codes () =
  Alcotest.(check int) "pass" 0 (Verdict.exit_code (Verdict.Pass : unit Verdict.t));
  Alcotest.(check int) "fail" 3 (Verdict.exit_code (Verdict.Fail ()));
  Alcotest.(check int) "inconclusive" 4
    (Verdict.exit_code (Verdict.inconclusive Limits.Limit_deadline : unit Verdict.t));
  (* agreement: inconclusive never contradicts, conclusive must match *)
  let inc : unit Verdict.t = Verdict.inconclusive Limits.Cancelled in
  Alcotest.(check bool) "inc vs pass" true (Verdict.agree inc Verdict.Pass);
  Alcotest.(check bool) "inc vs fail" true (Verdict.agree inc (Verdict.Fail ()));
  Alcotest.(check bool) "pass vs fail" false
    (Verdict.agree (Verdict.Pass : unit Verdict.t) (Verdict.Fail ()))

(* ------------------------------------------------------------------ *)
(* Kernel-level interrupts *)

(* A node quota breached mid-[and_exists] must raise, and the manager must
   pass its own invariant audit immediately afterwards (caches wiped, no
   half-built entries), staying fully usable. *)
let test_node_quota_audit () =
  let man = Bdd.new_man () in
  let vars = Array.init 24 (fun i -> Bdd.new_var ~name:(Printf.sprintf "v%d" i) man) in
  let build () =
    (* order-hostile conjunction: plenty of intermediate nodes *)
    let f = ref (Bdd.dtrue man) in
    for i = 0 to 7 do
      f := Bdd.dand !f (Bdd.dor vars.(i) vars.(i + 8))
    done;
    let g = ref (Bdd.dtrue man) in
    for i = 8 to 15 do
      g := Bdd.dand !g (Bdd.xor vars.(i) vars.(i + 8))
    done;
    let cube = Array.to_list (Array.sub vars 8 8) in
    Bdd.and_exists ~cube:(Bdd.cube man cube) !f !g
  in
  let quota = Limits.make ~max_nodes:(Bdd.node_count man + 8) () in
  (match Bdd.with_limits man quota build with
  | _ -> Alcotest.fail "tiny node quota did not interrupt"
  | exception Bdd.Interrupted Limits.Limit_nodes -> ()
  | exception Bdd.Interrupted r ->
      Alcotest.failf "wrong interrupt reason: %s" (Limits.reason_name r));
  Alcotest.(check (list string)) "audit clean after interrupt" [] (Bdd.check man);
  (* limits were restored by with_limits: the same work now completes *)
  let r = build () in
  Alcotest.(check bool) "manager usable after interrupt" false (Bdd.is_false r);
  Alcotest.(check (list string)) "audit clean after rerun" [] (Bdd.check man);
  (* the interrupt was tallied for observability *)
  let st = Bdd.stats man in
  Alcotest.(check (option int)) "nodes interrupt tallied" (Some 1)
    (List.assoc_opt "nodes" st.Hsis_obs.Obs.limits.Hsis_obs.Obs.Limit.interrupts);
  Alcotest.(check bool) "budget polls counted" true
    (st.Hsis_obs.Obs.limits.Hsis_obs.Obs.Limit.checks > 0)

(* ------------------------------------------------------------------ *)
(* Engine-level interrupts with partial state *)

(* A step quota mid-reachability must yield Inconclusive(steps) with the
   partial onion intact: the explored rings are exactly the first
   max_steps+1 rings of the unbounded run. *)
let test_reach_step_quota () =
  let d = scheduler_design 6 in
  Hsis.set_limits d (Limits.make ~max_steps:3 ());
  let partial = Hsis.reachable d in
  (match partial.Reach.verdict with
  | Verdict.Inconclusive { Verdict.reason = Limits.Limit_steps; at_step = Some 3 } -> ()
  | v -> Alcotest.failf "expected Inconclusive(steps) at step 3, got %s" (Verdict.name v));
  Alcotest.(check int) "onion has 4 rings" 4 (Array.length partial.Reach.rings);
  (* an inconclusive result is not cached: lifting the budget recomputes *)
  Hsis.set_limits d Limits.none;
  let full = Hsis.reachable d in
  Alcotest.(check bool) "unbounded rerun completes" true (Reach.complete full);
  (* the partial onion is exactly the unbounded run's first four rings *)
  Array.iteri
    (fun k ring ->
      Alcotest.(check bool) (Printf.sprintf "ring %d matches unbounded" k) true
        (Bdd.equal ring full.Reach.rings.(k)))
    partial.Reach.rings;
  (* the partial reachable set is a strict subset of the true one *)
  Alcotest.(check bool) "partial below full" true
    (Bdd.is_false (Bdd.dand partial.Reach.reachable (Bdd.dnot full.Reach.reachable)));
  Alcotest.(check bool) "strictly smaller" true
    (not (Bdd.equal partial.Reach.reachable full.Reach.reachable))

(* An expired deadline interrupts reachability before any image step; the
   partial onion still holds the initial ring, so callers can always make
   sense of the result structure. *)
let test_reach_deadline () =
  let d = scheduler_design 6 in
  Hsis.set_limits d (Limits.make ~timeout:0.0 ());
  let r = Hsis.reachable d in
  (match r.Reach.verdict with
  | Verdict.Inconclusive { Verdict.reason = Limits.Limit_deadline; _ } -> ()
  | v -> Alcotest.failf "expected Inconclusive(deadline), got %s" (Verdict.name v));
  Alcotest.(check bool) "onion non-empty" true (Array.length r.Reach.rings >= 1);
  Alcotest.(check bool) "initial states present" true
    (not (Bdd.is_false r.Reach.rings.(0)))

(* The cancellation callback must stop a CTL model-checking run. *)
let test_cancellation_stops_mc () =
  let d = scheduler_design 6 in
  let polls = ref 0 in
  let cancel () =
    incr polls;
    !polls > 40
  in
  Hsis.set_limits d (Limits.make ~cancelled:cancel ());
  let r = Hsis.check_ctl d ~name:"token" (Hsis_auto.Ctl.parse "AG EF pos=0") in
  (match r.Hsis.pr_verdict with
  | Verdict.Inconclusive { Verdict.reason = Limits.Cancelled; _ } -> ()
  | v -> Alcotest.failf "expected Inconclusive(cancelled), got %s" (Verdict.name v));
  Alcotest.(check bool) "callback was polled" true (!polls > 40)

(* ------------------------------------------------------------------ *)
(* Report-level exit-code precedence *)

let prop name verdict =
  { Hsis.pr_name = name; pr_verdict = verdict; pr_time = 0.0; pr_early_step = None }

let test_report_exit_codes () =
  let pass = (Verdict.Pass : Hsis.ctl_evidence Verdict.t) in
  let fail = Verdict.Fail { Hsis.ce_explanation = None } in
  let inc : Hsis.ctl_evidence Verdict.t =
    Verdict.inconclusive Limits.Limit_deadline
  in
  let report ctl =
    { Hsis.design_name = "x"; ctl; lc = []; mc_time = 0.0; lc_time = 0.0 }
  in
  Alcotest.(check int) "all pass -> 0" 0
    (Hsis.report_exit_code (report [ prop "a" pass; prop "b" pass ]));
  Alcotest.(check int) "inconclusive -> 4" 4
    (Hsis.report_exit_code (report [ prop "a" pass; prop "b" inc ]));
  Alcotest.(check int) "fail beats inconclusive" 3
    (Hsis.report_exit_code (report [ prop "a" inc; prop "b" fail; prop "c" pass ]));
  Alcotest.(check int) "empty report passes" 0 (Hsis.report_exit_code (report []))

(* The verdict tally the facade feeds into snapshots reflects what ran. *)
let test_verdict_tally () =
  let d = scheduler_design 5 in
  let f = Hsis_auto.Ctl.parse "AG EF pos=0" in
  Hsis.set_limits d (Limits.make ~max_steps:1 ());
  let r1 = Hsis.check_ctl d ~name:"budgeted" f in
  Alcotest.(check bool) "budgeted run inconclusive" false
    (Verdict.conclusive r1.Hsis.pr_verdict);
  Hsis.set_limits d Limits.none;
  let r2 = Hsis.check_ctl d ~name:"unbounded" f in
  Alcotest.(check bool) "unbounded run passes" true
    (Verdict.holds r2.Hsis.pr_verdict);
  let snap = Hsis.snapshot d in
  Alcotest.(check (option int)) "one inconclusive tallied" (Some 1)
    (List.assoc_opt "inconclusive" snap.Hsis_obs.Obs.verdicts);
  Alcotest.(check (option int)) "one pass tallied" (Some 1)
    (List.assoc_opt "pass" snap.Hsis_obs.Obs.verdicts)

let () =
  Alcotest.run "limits"
    [
      ( "units",
        [
          Alcotest.test_case "limit basics" `Quick test_limits_basics;
          Alcotest.test_case "verdict exit codes" `Quick test_verdict_exit_codes;
        ] );
      ( "kernel",
        [ Alcotest.test_case "node quota + audit" `Quick test_node_quota_audit ] );
      ( "engines",
        [
          Alcotest.test_case "reach step quota" `Quick test_reach_step_quota;
          Alcotest.test_case "reach deadline" `Quick test_reach_deadline;
          Alcotest.test_case "cancellation stops mc" `Quick
            test_cancellation_stops_mc;
        ] );
      ( "report",
        [
          Alcotest.test_case "exit-code precedence" `Quick test_report_exit_codes;
          Alcotest.test_case "verdict tally" `Quick test_verdict_tally;
        ] );
    ]
