(* Randomized stress test for the flat-array BDD manager: interleaves a
   soup of random operations with forced collections and sifting, then
   checks ROBDD canonicity and unique-table/arena consistency via
   [Bdd.check] (no duplicate (var, lo, hi) triples, lo <> hi, children at
   strictly greater levels, chains and counts consistent, freelist sane).

   Handles are dropped continuously (a sliding window of live results), so
   collections run against real garbage, and the OCaml GC's finalizers
   exercise the refcount-decrement path.

   Randomness comes from the shared splittable [Hsis_gen.Rng]: the run is
   reproducible from one seed, overridable with HSIS_TEST_SEED, and every
   failure message carries the seed that produced it. *)

open Hsis_bdd
module Rng = Hsis_gen.Rng

let seed = Rng.seed_from_env ~default:0x2545F491 ()

let assert_healthy man label =
  match Bdd.check man with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s (HSIS_TEST_SEED=%d): %d invariant violations, first: %s"
        label seed (List.length errs) (List.hd errs)

(* One random function over the window and the variables. *)
let random_op rng man vars window =
  let nv = Array.length vars in
  let pick () = window.(Rng.int rng (Array.length window)) in
  let pick_cube () =
    let k = 1 + Rng.int rng 3 in
    Bdd.cube man (List.init k (fun _ -> vars.(Rng.int rng nv)))
  in
  match Rng.int rng 10 with
  | 0 -> Bdd.dand (pick ()) (pick ())
  | 1 -> Bdd.dor (pick ()) (pick ())
  | 2 -> Bdd.xor (pick ()) (pick ())
  | 3 -> Bdd.dnot (pick ())
  | 4 -> Bdd.ite (pick ()) (pick ()) (pick ())
  | 5 -> Bdd.exists ~cube:(pick_cube ()) (pick ())
  | 6 -> Bdd.and_exists ~cube:(pick_cube ()) (pick ()) (pick ())
  | 7 -> Bdd.restrict (pick ()) ~care:(Bdd.dor (pick ()) vars.(Rng.int rng nv))
  | 8 -> Bdd.eqv (pick ()) (pick ())
  | _ -> Bdd.dand (pick ()) (Bdd.dnot (pick ()))

(* Algebraic identities that must hold on canonical diagrams; hash-consing
   makes each an O(1) id comparison. *)
let spot_identities rng man vars window =
  let f = window.(Rng.int rng (Array.length window)) in
  let g = window.(Rng.int rng (Array.length window)) in
  let cube = Bdd.cube man [ vars.(Rng.int rng (Array.length vars)) ] in
  let label what = Printf.sprintf "%s (HSIS_TEST_SEED=%d)" what seed in
  Alcotest.(check bool) (label "double negation") true
    (Bdd.equal f (Bdd.dnot (Bdd.dnot f)));
  Alcotest.(check bool) (label "De Morgan") true
    (Bdd.equal (Bdd.dnot (Bdd.dand f g)) (Bdd.dor (Bdd.dnot f) (Bdd.dnot g)));
  Alcotest.(check bool) (label "and commutes") true
    (Bdd.equal (Bdd.dand f g) (Bdd.dand g f));
  Alcotest.(check bool) (label "ite collapse") true (Bdd.equal (Bdd.ite f g g) g);
  Alcotest.(check bool) (label "exists distributes over or") true
    (Bdd.equal
       (Bdd.exists ~cube (Bdd.dor f g))
       (Bdd.dor (Bdd.exists ~cube f) (Bdd.exists ~cube g)));
  Alcotest.(check bool) (label "and_exists = exists of and") true
    (Bdd.equal (Bdd.and_exists ~cube f g) (Bdd.exists ~cube (Bdd.dand f g)))

let test_soup () =
  let rng = Rng.make seed in
  let man = Bdd.new_man () in
  (* A low threshold forces many real collections during the run. *)
  Bdd.set_gc_threshold man 64;
  let vars = Array.init 10 (fun i -> Bdd.new_var ~name:(Printf.sprintf "s%d" i) man) in
  let window =
    Array.init 24 (fun i -> if i mod 2 = 0 then vars.(i mod 10) else Bdd.dnot vars.(i mod 10))
  in
  for step = 1 to 4000 do
    window.(Rng.int rng (Array.length window)) <- random_op rng man vars window;
    if step mod 200 = 0 then spot_identities rng man vars window;
    if step mod 500 = 0 then begin
      (* Drop unreachable handles so their finalizers release refs, then
         force a manager collection and audit every invariant. *)
      Gc.full_major ();
      ignore (Bdd.gc man);
      assert_healthy man (Printf.sprintf "after gc at step %d" step)
    end;
    if step mod 1500 = 0 then begin
      Bdd.sift man;
      assert_healthy man (Printf.sprintf "after sift at step %d" step);
      spot_identities rng man vars window
    end
  done;
  Gc.full_major ();
  ignore (Bdd.gc man);
  assert_healthy man "final";
  (* Touching the window here keeps its handles alive through the forced
     collection above; the largest surviving function bounds the arena
     population from below. *)
  let largest = Array.fold_left (fun acc f -> max acc (Bdd.dag_size f)) 0 window in
  Alcotest.(check bool) "window nodes accounted for" true
    (largest <= Bdd.node_count man)

(* Same soup but with automatic reordering enabled, so sifting fires from
   inside the operation entry hook at unpredictable points. *)
let test_soup_auto_reorder () =
  let rng = Rng.make (seed lxor 0x5bd1e995) in
  let man = Bdd.new_man () in
  Bdd.set_gc_threshold man 128;
  Bdd.set_auto_reorder man true;
  Bdd.set_reorder_threshold man 64;
  let vars = Array.init 8 (fun _ -> Bdd.new_var man) in
  let window = Array.init 16 (fun i -> vars.(i mod 8)) in
  for step = 1 to 1500 do
    window.(Rng.int rng (Array.length window)) <- random_op rng man vars window;
    if step mod 300 = 0 then begin
      Gc.full_major ();
      ignore (Bdd.gc man);
      assert_healthy man (Printf.sprintf "auto-reorder step %d" step)
    end
  done;
  assert_healthy man "auto-reorder final"

(* Deterministic evaluation crosscheck: a random function built two ways
   (structurally vs via Shannon expansion on evaluations) must agree on
   every assignment. *)
let test_eval_crosscheck () =
  let rng = Rng.make (seed + 1) in
  let man = Bdd.new_man () in
  let n = 6 in
  let vars = Array.init n (fun _ -> Bdd.new_var man) in
  let window = Array.copy vars in
  for _ = 1 to 300 do
    window.(Rng.int rng n) <- random_op rng man vars window
  done;
  Gc.full_major ();
  ignore (Bdd.gc man);
  assert_healthy man "before crosscheck";
  let f = window.(Rng.int rng n) and g = window.(Rng.int rng n) in
  let h = Bdd.dand f g and x = Bdd.xor f g in
  for bits = 0 to (1 lsl n) - 1 do
    let env v = bits land (1 lsl v) <> 0 in
    Alcotest.(check bool)
      (Printf.sprintf "and agrees on %d (HSIS_TEST_SEED=%d)" bits seed)
      (Bdd.eval f env && Bdd.eval g env)
      (Bdd.eval h env);
    Alcotest.(check bool)
      (Printf.sprintf "xor agrees on %d (HSIS_TEST_SEED=%d)" bits seed)
      (Bdd.eval f env <> Bdd.eval g env)
      (Bdd.eval x env)
  done

(* Multi-domain determinism: the same op soup, replayed from the same seed
   on managers with kernel_jobs 1, 2 and 4, must produce identical
   canonical results.  Node ids legitimately differ across job counts
   (allocation order is scheduling-dependent), so the comparison goes
   through snapshots: exporting from the parallel manager and importing
   into the sequential one lands on the sequential manager's canonical
   node — hash-consing makes equality an id comparison there.  No sifting
   in this round: all three managers must keep the same variable order for
   the windows to stay comparable step by step. *)
let run_soup_window man steps =
  let rng = Rng.make (seed lxor 0x2b992dd5) in
  Bdd.set_gc_threshold man 64;
  let vars = Array.init 10 (fun i -> Bdd.new_var ~name:(Printf.sprintf "d%d" i) man) in
  let window =
    Array.init 24 (fun i -> if i mod 2 = 0 then vars.(i mod 10) else Bdd.dnot vars.(i mod 10))
  in
  for step = 1 to steps do
    window.(Rng.int rng (Array.length window)) <- random_op rng man vars window;
    if step mod 400 = 0 then begin
      Gc.full_major ();
      ignore (Bdd.gc man)
    end
  done;
  window

let test_kernel_jobs_determinism () =
  let steps = 1200 in
  let ref_man = Bdd.new_man () in
  let ref_window = run_soup_window ref_man steps in
  assert_healthy ref_man "kernel_jobs=1 reference";
  List.iter
    (fun jobs ->
      let man = Bdd.new_man ~kernel_jobs:jobs () in
      let window = run_soup_window man steps in
      assert_healthy man (Printf.sprintf "kernel_jobs=%d soup" jobs);
      Array.iteri
        (fun i h ->
          let rehydrated =
            match Bdd.import ref_man (Bdd.export (Bdd.man_of h) [ h ]) with
            | [ r ] -> r
            | _ -> Alcotest.fail "single-root import shape"
          in
          Alcotest.(check bool)
            (Printf.sprintf
               "window[%d] identical under kernel_jobs=%d (HSIS_TEST_SEED=%d)"
               i jobs seed)
            true
            (Bdd.equal rehydrated ref_window.(i)))
        window)
    [ 2; 4 ]

(* Parallel sections interleaved with collections and sifting: the
   deferred-refcount fixup and the per-domain cache wipes must keep every
   manager invariant intact across gc/sift boundaries. *)
let test_kernel_jobs_gc_sift () =
  let rng = Rng.make (seed lxor 0x7f4a7c15) in
  let man = Bdd.new_man ~kernel_jobs:2 () in
  Bdd.set_gc_threshold man 64;
  let vars = Array.init 10 (fun i -> Bdd.new_var ~name:(Printf.sprintf "p%d" i) man) in
  let window =
    Array.init 24 (fun i -> if i mod 2 = 0 then vars.(i mod 10) else Bdd.dnot vars.(i mod 10))
  in
  for step = 1 to 2000 do
    window.(Rng.int rng (Array.length window)) <- random_op rng man vars window;
    if step mod 200 = 0 then spot_identities rng man vars window;
    if step mod 500 = 0 then begin
      Gc.full_major ();
      ignore (Bdd.gc man);
      assert_healthy man (Printf.sprintf "kj=2 after gc at step %d" step)
    end;
    if step mod 900 = 0 then begin
      Bdd.sift man;
      assert_healthy man (Printf.sprintf "kj=2 after sift at step %d" step);
      spot_identities rng man vars window
    end
  done;
  Gc.full_major ();
  ignore (Bdd.gc man);
  assert_healthy man "kj=2 final"

let () =
  Alcotest.run "bdd-stress"
    [
      ( "soup",
        [
          Alcotest.test_case "ops + gc + sift" `Quick test_soup;
          Alcotest.test_case "auto reorder" `Quick test_soup_auto_reorder;
          Alcotest.test_case "eval crosscheck" `Quick test_eval_crosscheck;
        ] );
      ( "intra-parallel",
        [
          Alcotest.test_case "kernel_jobs determinism" `Quick
            test_kernel_jobs_determinism;
          Alcotest.test_case "kj=2 gc/sift interleavings" `Quick
            test_kernel_jobs_gc_sift;
        ] );
    ]
