(* Sanity for the parameterized scaled families (philos N / ring N /
   scheduler N): symbolic reach counts match the explicit-state engine at
   small N, every generated property holds, [Models.by_name] parses the
   suffixed names, and shared-work parallel runs produce verdicts and
   exit codes identical to sequential ones. *)

open Hsis_models
open Hsis_core
open Hsis_check

let holds v = Hsis_limits.Verdict.holds v

let all_pass report =
  List.for_all (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
      holds c.Hsis.pr_verdict)
    report.Hsis.ctl
  && List.for_all (fun (l : Hsis.lc_evidence Hsis.property_result) ->
         holds l.Hsis.pr_verdict)
       report.Hsis.lc

let check_family make family ns =
  List.iter
    (fun n ->
      let m = make n in
      let d = Hsis.read_verilog m.Model.verilog in
      let states = Hsis.reached_states d in
      Alcotest.(check int)
        (Printf.sprintf "%s%d: symbolic matches explicit" family n)
        (Enum.count_reachable (Model.net m))
        (int_of_float states);
      let report = Hsis.run_pif ~witnesses:false d (Model.parse_pif m) in
      Alcotest.(check int)
        (Printf.sprintf "%s%d: 2n ctl properties" family n)
        (2 * n)
        (List.length report.Hsis.ctl);
      Alcotest.(check bool)
        (Printf.sprintf "%s%d: all properties hold" family n)
        true (all_pass report))
    ns

let test_philos_family () = check_family (fun n -> Philos.make ~n ()) "philos" [ 3; 4 ]
let test_ring_family () = check_family (fun n -> Ring.make ~n ()) "ring" [ 3; 4 ]

let test_scheduler_family () =
  (* scheduler reaches exactly n * 2^n states *)
  List.iter
    (fun n ->
      let m = Scheduler.make ~n () in
      let d = Hsis.read_verilog m.Model.verilog in
      Alcotest.(check (float 0.1))
        (Printf.sprintf "scheduler%d: n*2^n states" n)
        (float_of_int (n * (1 lsl n)))
        (Hsis.reached_states d))
    [ 3; 6 ]

let test_by_name () =
  let name n = Option.map (fun m -> m.Model.name) (Models.by_name n) in
  Alcotest.(check (option string)) "philos5" (Some "philos5") (name "philos5");
  Alcotest.(check (option string)) "ring12" (Some "ring12") (name "ring12");
  Alcotest.(check (option string))
    "scheduler9" (Some "scheduler9") (name "scheduler9");
  Alcotest.(check (option string)) "bare ring" (Some "ring") (name "ring");
  Alcotest.(check (option string)) "ring1 too small" None (name "ring1");
  Alcotest.(check (option string)) "junk suffix" None (name "philosx");
  Alcotest.(check int) "scaled family size" 9
    (List.length (Models.scaled ()))

(* Shared-work fan-out must be observationally identical to the
   sequential engine: same verdict per property (by name, in order) and
   the same exit code, on every scaled family. *)
let test_parallel_matches_sequential () =
  List.iter
    (fun (m : Model.t) ->
      let pif = Model.parse_pif m in
      let verdicts (r : Hsis.report) =
        List.map
          (fun (c : Hsis.ctl_evidence Hsis.property_result) ->
            (c.Hsis.pr_name, holds c.Hsis.pr_verdict))
          r.Hsis.ctl
        @ List.map
            (fun (l : Hsis.lc_evidence Hsis.property_result) ->
              (l.Hsis.pr_name, holds l.Hsis.pr_verdict))
            r.Hsis.lc
      in
      let seq =
        let d = Hsis.read_verilog m.Model.verilog in
        Hsis.run_pif ~witnesses:false d pif
      in
      List.iter
        (fun share ->
          let d = Hsis.read_verilog m.Model.verilog in
          let par, _obs =
            Hsis.run_pif_par ~witnesses:false ~share ~jobs:2 d pif
          in
          let mode = if share then "shared-work" else "share-nothing" in
          Alcotest.(check (list (pair string bool)))
            (Printf.sprintf "%s: %s verdicts match" m.Model.name mode)
            (verdicts seq) (verdicts par);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s exit code matches" m.Model.name mode)
            (Hsis.report_exit_code seq)
            (Hsis.report_exit_code par))
        [ true; false ])
    [ Philos.make ~n:3 (); Ring.make ~n:3 (); Scheduler.make ~n:4 () ]

let () =
  Alcotest.run "scaled"
    [
      ( "families",
        [
          Alcotest.test_case "philos N" `Quick test_philos_family;
          Alcotest.test_case "ring N" `Quick test_ring_family;
          Alcotest.test_case "scheduler N" `Quick test_scheduler_family;
          Alcotest.test_case "by_name parsing" `Quick test_by_name;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "shared-work matches sequential" `Quick
            test_parallel_matches_sequential;
        ] );
    ]
