bin/hsis_cli.ml: Arg Cmd Cmdliner Filename Format Hsis Hsis_auto Hsis_bdd Hsis_bisim Hsis_blifmv Hsis_check Hsis_core Hsis_debug Hsis_fsm Hsis_models Hsis_sim Hsis_verilog List Printf Term
