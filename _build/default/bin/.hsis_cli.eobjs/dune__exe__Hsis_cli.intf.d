bin/hsis_cli.mli:
