(* vl2mv: translate the supported Verilog subset into BLIF-MV, mirroring
   the tool of the same name shipped with HSIS (paper Sec. 7). *)

let run input output =
  let src =
    let ic = open_in input in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Hsis_verilog.Elab.to_blifmv src with
  | text -> (
      match output with
      | None ->
          print_string text;
          0
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          0)
  | exception Hsis_verilog.Vparser.Error (line, msg) ->
      Printf.eprintf "%s:%d: parse error: %s\n" input line msg;
      1
  | exception Hsis_verilog.Vlexer.Error (line, msg) ->
      Printf.eprintf "%s:%d: lexical error: %s\n" input line msg;
      1
  | exception Hsis_verilog.Elab.Error msg ->
      Printf.eprintf "%s: %s\n" input msg;
      1

open Cmdliner

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.v")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.mv")

let cmd =
  let doc = "translate a Verilog subset into BLIF-MV" in
  Cmd.v (Cmd.info "vl2mv" ~doc) Term.(const run $ input $ output)

let () = exit (Cmd.eval' cmd)
