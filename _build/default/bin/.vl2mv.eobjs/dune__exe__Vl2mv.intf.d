bin/vl2mv.mli:
