bin/vl2mv.ml: Arg Cmd Cmdliner Hsis_verilog Printf Term
