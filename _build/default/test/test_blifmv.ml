(* BLIF-MV front end: lexer, parser, printer round trips, flattening,
   network resolution, determinism analysis. *)

open Hsis_blifmv

let counter_src =
  {|
# a 2-bit counter with a non-deterministic pause input
.model counter
.outputs s
.mv s,ns 4
.table -> go
0
1
.table s go -> ns
0 1 1
1 1 2
2 1 3
3 1 0
- 0 =s
.latch ns s
.reset s 0
.end
|}

let hier_src =
  {|
.model top
.subckt cell a x=p y=q
.subckt cell b x=q y=p
.table -> p0
1
.end

.model cell
.inputs x
.outputs y
.table x -> y
0 1
1 0
.end
|}

let parse_counter () = Parser.parse counter_src

let test_lexer () =
  let lines = Lexer.logical_lines "a b \\\n c\n# comment\n\nx {1,2} y" in
  Alcotest.(check int) "two logical lines" 2 (List.length lines);
  (match lines with
  | [ l1; l2 ] ->
      Alcotest.(check (list string)) "continuation" [ "a"; "b"; "c" ] l1.Lexer.tokens;
      Alcotest.(check (list string)) "braces" [ "x"; "{1,2}"; "y" ] l2.Lexer.tokens
  | _ -> Alcotest.fail "expected two lines");
  Alcotest.check_raises "unbalanced brace" (Lexer.Error (1, "unbalanced brace"))
    (fun () -> ignore (Lexer.logical_lines "a {1,2"))

let test_parse_counter () =
  let ast = parse_counter () in
  let m = Option.get (Ast.find_model ast "counter") in
  Alcotest.(check int) "tables" 2 (List.length m.Ast.m_tables);
  Alcotest.(check int) "latches" 1 (List.length m.Ast.m_latches);
  let l = List.hd m.Ast.m_latches in
  Alcotest.(check (list string)) "reset" [ "0" ] l.Ast.l_reset

let test_roundtrip () =
  let ast = parse_counter () in
  let printed = Printer.to_string ast in
  let ast2 = Parser.parse printed in
  let printed2 = Printer.to_string ast2 in
  Alcotest.(check string) "print . parse . print is stable" printed printed2

let test_net_counter () =
  let net = Net.of_ast (parse_counter ()) in
  Alcotest.(check int) "latches" 1 (List.length net.Net.latches);
  Alcotest.(check bool) "closed" true (Net.is_closed net);
  Alcotest.(check int) "signals" 3 (Net.num_signals net);
  let topo = Net.topo_tables net in
  Alcotest.(check int) "topo covers tables" 2 (List.length topo)

let test_row_semantics () =
  let net = Net.of_ast (parse_counter ()) in
  let tb =
    List.find
      (fun t -> List.length t.Net.ft_inputs = 2)
      net.Net.tables
  in
  (* s=1, go=1 -> ns=2 *)
  Alcotest.(check (list (list int))) "increment" [ [ 2 ] ]
    (Net.row_output_options net tb [| 1; 1 |]);
  (* s=2, go=0 -> ns=2 via =s *)
  Alcotest.(check (list (list int))) "hold" [ [ 2 ] ]
    (Net.row_output_options net tb [| 2; 0 |])

let test_flatten () =
  let ast = Parser.parse hier_src in
  let flat = Flatten.flatten ast in
  Alcotest.(check int) "three tables" 3 (List.length flat.Ast.m_tables);
  let net = Net.of_model flat in
  Alcotest.(check bool) "signal a/y exists" true
    (Net.find_signal net "q" <> None)

let test_flatten_recursion () =
  let src = ".model a\n.subckt a self x=x\n.inputs x\n.end\n" in
  Alcotest.(check bool) "recursive instantiation rejected" true
    (try
       ignore (Flatten.flatten (Parser.parse src));
       false
     with Flatten.Error _ -> true)

let test_driver_checks () =
  let dup = ".model m\n.table -> x\n1\n.table -> x\n0\n.end\n" in
  Alcotest.(check bool) "duplicate driver rejected" true
    (try
       ignore (Net.of_ast (Parser.parse dup));
       false
     with Net.Error _ -> true);
  let undriven = ".model m\n.table a -> x\n1 1\n.end\n" in
  Alcotest.(check bool) "undriven signal rejected" true
    (try
       ignore (Net.of_ast (Parser.parse undriven));
       false
     with Net.Error _ -> true)

let test_comb_cycle () =
  let src =
    ".model m\n.table a -> b\n0 1\n1 0\n.table b -> a\n0 1\n1 0\n.end\n"
  in
  Alcotest.(check bool) "combinational cycle detected" true
    (try
       ignore (Net.topo_tables (Net.of_ast (Parser.parse src)));
       false
     with Net.Error _ -> true)

let test_determinism () =
  let net = Net.of_ast (parse_counter ()) in
  let free_tb = List.find (fun t -> t.Net.ft_inputs = []) net.Net.tables in
  let inc_tb = List.find (fun t -> t.Net.ft_inputs <> []) net.Net.tables in
  Alcotest.(check bool) "free table nondet" false
    (Check.table_deterministic net free_tb);
  Alcotest.(check bool) "increment table det" true
    (Check.table_deterministic net inc_tb);
  Alcotest.(check bool) "net nondet" false (Check.deterministic net);
  Alcotest.(check (list string)) "nondet signals" [ "go" ]
    (Check.nondet_signals net)

let test_completeness () =
  let net = Net.of_ast (parse_counter ()) in
  List.iter
    (fun tb ->
      Alcotest.(check bool) "tables complete" true (Check.table_complete net tb))
    net.Net.tables;
  let partial = ".model m\n.table -> a\n1\n.table a -> b\n1 0\n.end\n" in
  let net2 = Net.of_ast (Parser.parse partial) in
  let tb = List.find (fun t -> t.Net.ft_inputs <> []) net2.Net.tables in
  Alcotest.(check bool) "partial table incomplete" false
    (Check.table_complete net2 tb)

let test_line_count () =
  Alcotest.(check int) "non-blank lines" 3 (Ast.line_count "a\n\nb\n  \nc\n")

let test_parse_errors () =
  let bad_cases =
    [
      ".table a b\n0 0 0\n";
      (* outside model *)
      ".model m\n.latch\n.end\n";
      ".model m\n.mv x two\n.end\n";
      ".model m\n.table a -> b\n0\n.end\n" (* row arity *);
    ]
  in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ String.escaped src) true
        (try
           ignore (Parser.parse src);
           false
         with Parser.Error _ -> true))
    bad_cases

let () =
  Alcotest.run "blifmv"
    [
      ( "lexer",
        [ Alcotest.test_case "logical lines" `Quick test_lexer ] );
      ( "parser",
        [
          Alcotest.test_case "counter" `Quick test_parse_counter;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "line count" `Quick test_line_count;
        ] );
      ( "net",
        [
          Alcotest.test_case "resolution" `Quick test_net_counter;
          Alcotest.test_case "row semantics" `Quick test_row_semantics;
          Alcotest.test_case "flatten" `Quick test_flatten;
          Alcotest.test_case "flatten recursion" `Quick test_flatten_recursion;
          Alcotest.test_case "driver checks" `Quick test_driver_checks;
          Alcotest.test_case "combinational cycle" `Quick test_comb_cycle;
        ] );
      ( "check",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "completeness" `Quick test_completeness;
        ] );
    ]
