(* Multi-valued domain and encoding tests. *)

open Hsis_bdd
open Hsis_mv

let test_domain () =
  let d = Domain.make "state" [| "idle"; "busy"; "done" |] in
  Alcotest.(check int) "size" 3 (Domain.size d);
  Alcotest.(check int) "bits" 2 (Domain.bits d);
  Alcotest.(check (option int)) "index" (Some 1) (Domain.index_of d "busy");
  Alcotest.(check (option int)) "missing" None (Domain.index_of d "nope");
  Alcotest.(check string) "value" "done" (Domain.value d 2);
  Alcotest.(check int) "bits of 1" 1 (Domain.bits (Domain.make "u" [| "x" |]));
  Alcotest.(check int) "bits of 2" 1 (Domain.bits Domain.boolean);
  Alcotest.(check int) "bits of 4" 2 (Domain.bits (Domain.of_size "q" 4));
  Alcotest.(check int) "bits of 5" 3 (Domain.bits (Domain.of_size "q" 5))

let test_domain_dup () =
  Alcotest.check_raises "duplicate values"
    (Invalid_argument "Domain.make: duplicate value a") (fun () ->
      ignore (Domain.make "d" [| "a"; "a" |]))

let with_enc size f =
  let man = Bdd.new_man () in
  let d = Domain.of_size "sig" size in
  let bits =
    Array.init (Domain.bits d) (fun i ->
        Bdd.new_var ~name:(Printf.sprintf "b%d" i) man)
  in
  f man d (Enc.make d bits)

let test_value_bdds_disjoint () =
  with_enc 5 (fun man _d e ->
      for i = 0 to 4 do
        for j = i + 1 to 4 do
          Alcotest.(check bool)
            (Printf.sprintf "v%d and v%d disjoint" i j)
            true
            (Bdd.is_false (Bdd.dand (Enc.value_bdd e i) (Enc.value_bdd e j)))
        done
      done;
      ignore man)

let test_domain_constraint () =
  with_enc 5 (fun man _d e ->
      (* 5 values on 3 bits: 3 illegal codes *)
      let dc = Enc.domain_constraint e in
      Alcotest.(check (float 1e-9)) "legal codes" 5.0
        (Bdd.satcount_vars dc ~vars:(Enc.var_indices e));
      ignore man)

let test_set_and_decode () =
  with_enc 4 (fun _man _d e ->
      let s = Enc.set_bdd e [ 1; 3 ] in
      Alcotest.(check (float 1e-9)) "set of two" 2.0
        (Bdd.satcount_vars s ~vars:(Enc.var_indices e));
      let assign = Enc.assign e 3 in
      let env v = List.assoc v assign in
      Alcotest.(check int) "decode of assign" 3 (Enc.decode e env);
      Alcotest.(check bool) "assign satisfies set" true (Bdd.eval s env))

let test_eq () =
  let man = Bdd.new_man () in
  let d = Domain.of_size "x" 4 in
  let mk () = Array.init 2 (fun _ -> Bdd.new_var man) in
  let a = Enc.make d (mk ()) and b = Enc.make d (mk ()) in
  let eq = Enc.eq a b in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let assign = Enc.assign a i @ Enc.assign b j in
      let env v = List.assoc v assign in
      Alcotest.(check bool)
        (Printf.sprintf "eq %d %d" i j)
        (i = j) (Bdd.eval eq env)
    done
  done

let prop_decode_value_roundtrip =
  QCheck.Test.make ~count:100 ~name:"decode . assign = id"
    QCheck.(int_range 2 9)
    (fun size ->
      with_enc size (fun _man _d e ->
          List.for_all
            (fun v ->
              let assign = Enc.assign e v in
              Enc.decode e (fun var -> List.assoc var assign) = v)
            (List.init size Fun.id)))

let () =
  Alcotest.run "mv"
    [
      ( "domain",
        [
          Alcotest.test_case "basics" `Quick test_domain;
          Alcotest.test_case "duplicates rejected" `Quick test_domain_dup;
        ] );
      ( "enc",
        [
          Alcotest.test_case "values disjoint" `Quick test_value_bdds_disjoint;
          Alcotest.test_case "domain constraint" `Quick test_domain_constraint;
          Alcotest.test_case "sets and decode" `Quick test_set_and_decode;
          Alcotest.test_case "equality relation" `Quick test_eq;
          QCheck_alcotest.to_alcotest prop_decode_value_roundtrip;
        ] );
    ]
