(* Simulator and bisimulation/don't-care minimization tests. *)

open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_check
open Hsis_sim
open Hsis_bisim

let counter_src =
  {|
.model counter
.outputs even
.mv s,ns 4
.table -> go
0
1
.table s go -> ns
0 1 1
1 1 2
2 1 3
3 1 0
- 0 =s
.table s -> even
0 1
1 0
2 1
3 0
.latch ns s
.reset s 0
.end
|}

let counter_net () = Net.of_ast (Parser.parse counter_src)

(* ---------------- simulator ---------------- *)

let test_sim_walk () =
  let net = counter_net () in
  let sim = Simulator.create net in
  Alcotest.(check int) "starts at depth 0" 0 (Simulator.depth sim);
  Alcotest.(check (array int)) "initial state" [| 0 |] (Simulator.state sim);
  let opts = Simulator.options sim in
  (* go=0 keeps s, go=1 increments: two distinct successors *)
  let succs = List.sort_uniq compare (List.map snd opts) in
  Alcotest.(check int) "two successors" 2 (List.length succs);
  (* force an increment *)
  let go = Option.get (Net.find_signal net "go") in
  Alcotest.(check bool) "guided step" true
    (Simulator.step_where sim (fun v -> v.(go) = 1));
  Alcotest.(check (array int)) "incremented" [| 1 |] (Simulator.state sim);
  Alcotest.(check bool) "backtrack" true (Simulator.backtrack sim);
  Alcotest.(check (array int)) "back to 0" [| 0 |] (Simulator.state sim);
  Alcotest.(check bool) "cannot backtrack at start" false
    (Simulator.backtrack sim)

let test_sim_history () =
  let net = counter_net () in
  let sim = Simulator.create net in
  let go = Option.get (Net.find_signal net "go") in
  for _ = 1 to 3 do
    ignore (Simulator.step_where sim (fun v -> v.(go) = 1))
  done;
  Alcotest.(check int) "depth 3" 3 (Simulator.depth sim);
  Alcotest.(check (list (array int))) "history"
    [ [| 0 |]; [| 1 |]; [| 2 |]; [| 3 |] ]
    (Simulator.history sim)

let test_explorer () =
  let net = counter_net () in
  let e = Simulator.explorer net in
  Alcotest.(check int) "one initial" 1 (Simulator.discovered e);
  let l1 = Simulator.expand e in
  Alcotest.(check int) "level 1 finds s=1" 1 l1;
  let rec drain total =
    let n = Simulator.expand e in
    if n = 0 then total else drain (total + n)
  in
  ignore (drain 0);
  Alcotest.(check int) "all four found" 4 (Simulator.discovered e)

(* ---------------- bisimulation ---------------- *)

let build src =
  let net = Net.of_ast (Parser.parse src) in
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  Trans.build sym

let test_bisim_counter_even () =
  (* observing only "even", states {0,2} and {1,3} are bisimilar pairs:
     0 ~ 2 and 1 ~ 3 (the observed sequence has period 2) *)
  let trans = build counter_src in
  let reach = Reach.compute trans (Trans.initial trans) in
  let r = Bisim.compute trans ~reach:reach.Reach.reachable in
  Alcotest.(check int) "two classes" 2 r.Bisim.classes;
  Alcotest.(check (float 0.01)) "four states" 4.0 r.Bisim.states

let test_bisim_reflexive () =
  let trans = build counter_src in
  let reach = Reach.compute trans (Trans.initial trans) in
  let r = Bisim.compute trans ~reach:reach.Reach.reachable in
  (* every reachable state is bisimilar to itself: the diagonal is in E *)
  let diag_ok =
    let s0 =
      Hsis_debug.Trace.pick_state trans reach.Reach.reachable
    in
    let cls = Bisim.equivalent_to trans r s0 in
    not (Bdd.is_false (Bdd.dand cls s0))
  in
  Alcotest.(check bool) "reflexive on a sample" true diag_ok

let test_bisim_distinguishes () =
  (* observing s itself, no two distinct states are equivalent *)
  let trans = build counter_src in
  let net = Sym.net (Trans.sym trans) in
  let s = Option.get (Net.find_signal net "s") in
  let reach = Reach.compute trans (Trans.initial trans) in
  let r = Bisim.compute ~obs:[ s ] trans ~reach:reach.Reach.reachable in
  Alcotest.(check int) "four classes" 4 r.Bisim.classes

(* ---------------- don't cares ---------------- *)

let test_dontcare_preserves_images () =
  let trans = build counter_src in
  let reach = Reach.compute trans (Trans.initial trans) in
  let report = Dontcare.with_reachable trans ~reach:reach.Reach.reachable in
  Alcotest.(check bool) "not larger" true
    (report.Dontcare.after <= report.Dontcare.before);
  Alcotest.(check bool) "image preserved" true
    (Dontcare.image_equal trans report.Dontcare.minimized
       ~from_:reach.Reach.reachable);
  (* reachability recomputed on the minimized structure agrees *)
  let r2 =
    Reach.compute report.Dontcare.minimized
      (Trans.initial report.Dontcare.minimized)
  in
  Alcotest.(check bool) "reachable set identical" true
    (Bdd.equal reach.Reach.reachable r2.Reach.reachable)

let prop_dontcare_random =
  QCheck.Test.make ~count:30 ~name:"restrict minimization sound on random nets"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      (* reuse the random model generator shape from test_engine via a
         small local builder *)
      let h = ref (seed * 131) in
      let rand n =
        h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
        (!h lsr 12) mod n
      in
      let rows out_dom =
        let rows = ref [] in
        for a = 0 to 2 do
          for u = 0 to 1 do
            rows :=
              {
                Hsis_blifmv.Ast.r_inputs =
                  [ Ast.Val (string_of_int a); Ast.Val (string_of_int u) ];
                r_outputs = [ Ast.Val (string_of_int (rand out_dom)) ];
              }
              :: !rows
          done
        done;
        List.rev !rows
      in
      let model =
        {
          Ast.m_name = "r";
          m_inputs = [];
          m_outputs = [];
          m_mvs = [ { Ast.v_names = [ "s"; "n" ]; v_size = 3; v_values = [] } ];
          m_tables =
            [
              {
                Ast.t_inputs = [];
                t_outputs = [ "u" ];
                t_rows =
                  [
                    { Ast.r_inputs = []; r_outputs = [ Ast.Val "0" ] };
                    { Ast.r_inputs = []; r_outputs = [ Ast.Val "1" ] };
                  ];
                t_default = None;
              };
              {
                Ast.t_inputs = [ "s"; "u" ];
                t_outputs = [ "n" ];
                t_rows = rows 3;
                t_default = None;
              };
            ];
          m_latches =
            [ { Ast.l_input = "n"; l_output = "s"; l_reset = [ "0" ] } ];
          m_subckts = [];
          m_delays = [];
        }
      in
      let net = Net.of_model model in
      let man = Bdd.new_man () in
      let sym = Sym.make man net in
      let trans = Trans.build sym in
      let reach = Reach.compute trans (Trans.initial trans) in
      let report = Dontcare.with_reachable trans ~reach:reach.Reach.reachable in
      let r2 =
        Reach.compute report.Dontcare.minimized
          (Trans.initial report.Dontcare.minimized)
      in
      Bdd.equal reach.Reach.reachable r2.Reach.reachable)

let () =
  Alcotest.run "sim-bisim"
    [
      ( "simulator",
        [
          Alcotest.test_case "walk" `Quick test_sim_walk;
          Alcotest.test_case "history" `Quick test_sim_history;
          Alcotest.test_case "explorer" `Quick test_explorer;
        ] );
      ( "bisim",
        [
          Alcotest.test_case "even observer" `Quick test_bisim_counter_even;
          Alcotest.test_case "reflexive" `Quick test_bisim_reflexive;
          Alcotest.test_case "full observer" `Quick test_bisim_distinguishes;
        ] );
      ( "dontcare",
        [
          Alcotest.test_case "preserves images" `Quick
            test_dontcare_preserves_images;
          QCheck_alcotest.to_alcotest prop_dontcare_random;
        ] );
    ]
