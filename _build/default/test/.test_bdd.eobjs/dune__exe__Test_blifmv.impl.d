test/test_blifmv.ml: Alcotest Ast Check Flatten Hsis_blifmv Lexer List Net Option Parser Printer String
