test/test_quant.ml: Alcotest Apply Array Bdd Hsis_bdd Hsis_quant List Printf QCheck QCheck_alcotest Schedule String
