test/test_auto.mli:
