test/test_blifmv.mli:
