test/test_timing.ml: Alcotest Array Ast Bdd Enum Hsis_bdd Hsis_blifmv Hsis_check Hsis_fsm List Net Option Parser Printer Printf Reach String Sym Timing Trans
