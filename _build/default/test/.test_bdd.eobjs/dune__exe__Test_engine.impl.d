test/test_engine.ml: Alcotest Array Ast Autom Bdd Ctl Enum Expr Fair Flatten Hsis_auto Hsis_bdd Hsis_blifmv Hsis_check Hsis_fsm Lc List Mc Net Parser QCheck QCheck_alcotest Reach Sym Trans
