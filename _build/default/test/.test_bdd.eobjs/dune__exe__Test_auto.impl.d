test/test_auto.ml: Alcotest Autom Ctl Expr Fair Hsis_auto Hsis_blifmv Hsis_mv List Option Pif
