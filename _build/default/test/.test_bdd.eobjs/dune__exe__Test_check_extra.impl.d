test/test_check_extra.ml: Alcotest Array Bdd Ctl El Enum Expr Fair Fun Gc Hsis_auto Hsis_bdd Hsis_blifmv Hsis_check Hsis_fsm List Mc Net Parser Printf Reach Sym Trans
