test/test_mv.ml: Alcotest Array Bdd Domain Enc Fun Hsis_bdd Hsis_mv List Printf QCheck QCheck_alcotest
