test/test_proplib_simrel.ml: Alcotest Autom Ctl Enum Expr Flatten Hsis_auto Hsis_bdd Hsis_bisim Hsis_blifmv Hsis_check Hsis_fsm Lc List Mc Net Option Parser Pif Proplib Simrel
