test/test_peterson.mli:
