test/test_bdd.ml: Alcotest Array Bdd Float Fun Gc Hsis_bdd List Printf QCheck QCheck_alcotest
