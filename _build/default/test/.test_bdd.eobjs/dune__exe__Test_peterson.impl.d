test/test_peterson.ml: Alcotest Autom Ctl Enum Expr Fair Hsis Hsis_auto Hsis_check Hsis_core Hsis_debug Hsis_models List Model Peterson
