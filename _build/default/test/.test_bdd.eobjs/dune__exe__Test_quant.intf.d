test/test_quant.mli:
