test/test_mv.mli:
