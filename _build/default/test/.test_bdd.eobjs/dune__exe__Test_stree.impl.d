test/test_stree.ml: Alcotest Ast Bdd Ctl Enum Expr Fair Flatten Hsis_auto Hsis_bdd Hsis_blifmv Hsis_check Hsis_fsm List Mc Net Parser QCheck QCheck_alcotest Reach Stree Sym Trans
