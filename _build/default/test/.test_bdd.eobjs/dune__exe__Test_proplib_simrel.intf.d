test/test_proplib_simrel.mli:
