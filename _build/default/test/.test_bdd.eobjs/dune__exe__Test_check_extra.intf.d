test/test_check_extra.mli:
