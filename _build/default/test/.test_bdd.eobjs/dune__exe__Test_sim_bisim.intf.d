test/test_sim_bisim.mli:
