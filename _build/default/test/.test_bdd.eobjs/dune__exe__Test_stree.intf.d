test/test_stree.mli:
