test/test_models.ml: Alcotest Dcnew Enum Gigamax Hsis Hsis_auto Hsis_check Hsis_core Hsis_debug Hsis_models List Mdlc Model Option Philos Pingpong Printf Scheduler Trace
