(* Early-quantification scheduling: validity of schedules, equivalence of
   all heuristics against the naive product, and width improvements. *)

open Hsis_bdd
open Hsis_quant

let mk_problem supports quantify =
  { Schedule.supports = Array.of_list supports; quantify }

let heuristics =
  [
    ("min_width", Schedule.min_width);
    ("pair_clustering", Schedule.pair_clustering);
    ("naive", Schedule.naive);
  ]

let test_validate_simple () =
  let p = mk_problem [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] [ 1; 2 ] in
  List.iter
    (fun (name, h) ->
      match Schedule.validate p (h p) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" name m)
    heuristics

let test_early_is_early () =
  (* chain: r0(0,1) r1(1,2) r2(2,3): eliminating 1 must join only r0,r1 *)
  let p = mk_problem [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] [ 1 ] in
  let s = Schedule.min_width p in
  let width = Schedule.max_cluster_support p s in
  Alcotest.(check bool) "cluster width below full union" true (width < 4)

let test_quantified_vars () =
  let p = mk_problem [ [ 0; 1 ]; [ 2; 3 ] ] [ 1; 3; 99 ] in
  (* 99 appears nowhere: silently dropped *)
  List.iter
    (fun (name, h) ->
      let s = h p in
      Alcotest.(check (list int)) (name ^ " qvars") [ 1; 3 ]
        (Schedule.quantified_vars s))
    heuristics

(* Random relation soups executed over BDDs: all heuristics must agree
   with the naive schedule's result. *)
let soup_gen =
  QCheck.Gen.(
    let* nrels = int_range 2 6 in
    let* nvars = int_range 3 8 in
    let* supports =
      list_repeat nrels
        (let* k = int_range 1 3 in
         list_repeat k (int_range 0 (nvars - 1)))
    in
    let* nq = int_range 0 (nvars - 1) in
    let* quantify = list_repeat nq (int_range 0 (nvars - 1)) in
    return (nvars, List.map (List.sort_uniq compare) supports,
            List.sort_uniq compare quantify))

let soup_arb =
  QCheck.make
    ~print:(fun (nv, sup, q) ->
      Printf.sprintf "nvars=%d supports=[%s] q=[%s]" nv
        (String.concat ";"
           (List.map
              (fun s -> "[" ^ String.concat "," (List.map string_of_int s) ^ "]")
              sup))
        (String.concat "," (List.map string_of_int q)))
    soup_gen

(* Deterministic pseudo-random relation over the given support: a random
   truth table with ~75% density (dense relations keep products nonempty). *)
let relation man vars seed support =
  let h = ref (seed * 7919) in
  let next () =
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF;
    (!h lsr 13) land 3 > 0
  in
  let support = Array.of_list support in
  let n = Array.length support in
  let acc = ref (Bdd.dfalse man) in
  for m = 0 to (1 lsl n) - 1 do
    if next () then begin
      let cube = ref (Bdd.dtrue man) in
      for i = 0 to n - 1 do
        let lit =
          if (m lsr i) land 1 = 1 then vars.(support.(i))
          else Bdd.dnot vars.(support.(i))
        in
        cube := Bdd.dand !cube lit
      done;
      acc := Bdd.dor !acc !cube
    end
  done;
  !acc

let prop_heuristics_agree =
  QCheck.Test.make ~count:100 ~name:"all schedules compute the same function"
    soup_arb (fun (nvars, supports, quantify) ->
      QCheck.assume (supports <> []);
      let man = Bdd.new_man () in
      let vars = Array.init nvars (fun _ -> Bdd.new_var man) in
      let rels =
        Array.of_list
          (List.mapi (fun i s -> relation man vars (i + 1) s) supports)
      in
      let problem =
        { Schedule.supports = Array.of_list supports; quantify }
      in
      let cube_of ids = Bdd.cube man (List.map (fun v -> vars.(v)) ids) in
      let run h =
        let s = h problem in
        (match Schedule.validate problem s with
        | Ok () -> ()
        | Error m -> QCheck.Test.fail_reportf "invalid schedule: %s" m);
        (Apply.execute ~rels ~cube_of s).Apply.value
      in
      let reference = run Schedule.naive in
      List.for_all
        (fun (_, h) -> Bdd.equal (run h) reference)
        heuristics)

let test_width_improvement () =
  (* a long chain: min_width should keep clusters small where naive grows *)
  let n = 20 in
  let supports = List.init n (fun i -> [ i; i + 1 ]) in
  let quantify = List.init n (fun i -> i) in
  let p = mk_problem supports quantify in
  let w_min = Schedule.max_cluster_support p (Schedule.min_width p) in
  let w_naive = Schedule.max_cluster_support p (Schedule.naive p) in
  Alcotest.(check bool)
    (Printf.sprintf "min_width %d < naive %d" w_min w_naive)
    true (w_min < w_naive)

let () =
  Alcotest.run "quant"
    [
      ( "schedule",
        [
          Alcotest.test_case "validate" `Quick test_validate_simple;
          Alcotest.test_case "early quantification" `Quick test_early_is_early;
          Alcotest.test_case "quantified vars" `Quick test_quantified_vars;
          Alcotest.test_case "width improvement" `Quick test_width_improvement;
        ] );
      ( "apply",
        [ QCheck_alcotest.to_alcotest prop_heuristics_agree ] );
    ]
