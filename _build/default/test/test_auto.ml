(* Property-side tests: expression/CTL/PIF parsers, automata validation
   and composition, fairness compilation. *)

open Hsis_auto

let test_expr_parse () =
  let cases =
    [
      ("a=1", "a=1");
      ("a", "a=1");
      ("a=req & b!=2", "(a=req & b!=2)");
      ("!a | b -> c", "((!(a=1) | b=1) -> c=1)");
      ("a -> b -> c", "(a=1 -> (b=1 -> c=1))");
      ("(a | b) & c", "((a=1 | b=1) & c=1)");
      ("true & false", "(true & false)");
    ]
  in
  List.iter
    (fun (src, expected) ->
      Alcotest.(check string) src expected (Expr.to_string (Expr.parse src)))
    cases

let test_expr_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects " ^ src) true
        (try
           ignore (Expr.parse src);
           false
         with Expr.Parse_error _ -> true))
    [ "("; "a &"; "a = "; "&"; "a b" ]

let test_expr_signals () =
  Alcotest.(check (list string)) "signals" [ "a"; "b"; "c" ]
    (Expr.signals (Expr.parse "a=1 & (b!=0 | c=2) & a=0"))

let test_ctl_parse () =
  let cases =
    [
      ("AG p", "AG p=1");
      ("AG !(out1=1 & out2=1)", "AG !((out1=1 & out2=1))");
      ("E[p U q]", "E[p=1 U q=1]");
      ("A[p=0 U q=2]", "A[p=0 U q=2]");
      ("AG (req=1 -> AF ack=1)", "AG (req=1 -> AF ack=1)");
      ("EF EG p", "EF EG p=1");
      ("AG AF p | EF q", "(AG AF p=1 | EF q=1)");
      ("AX (a & b)", "AX (a=1 & b=1)");
    ]
  in
  List.iter
    (fun (src, expected) ->
      Alcotest.(check string) src expected (Ctl.to_string (Ctl.parse src)))
    cases

let test_ctl_roundtrip () =
  (* to_string of a parse is itself parseable and stable *)
  List.iter
    (fun src ->
      let f = Ctl.parse src in
      let s = Ctl.to_string f in
      Alcotest.(check string) src s (Ctl.to_string (Ctl.parse s)))
    [ "AG (a -> E[b U c=2])"; "!EF !p"; "A[x U A[y U z]]" ]

let test_ctl_classify () =
  Alcotest.(check bool) "AG prop is invariance" true
    (Ctl.is_invariance (Ctl.parse "AG !(a & b)") <> None);
  Alcotest.(check bool) "AG EF is not invariance" true
    (Ctl.is_invariance (Ctl.parse "AG EF a") = None);
  Alcotest.(check bool) "AG AF universal" true
    (Ctl.universal_only (Ctl.parse "AG AF p"));
  Alcotest.(check bool) "EF not universal" false
    (Ctl.universal_only (Ctl.parse "EF p"));
  Alcotest.(check bool) "!EF universal" true
    (Ctl.universal_only (Ctl.parse "!EF p"));
  Alcotest.(check bool) "AG !EX universal-with-negation" true
    (Ctl.universal_only (Ctl.parse "AG !(EX p)"))

let test_pif_parse () =
  let src =
    {|
# comment
fairness inf "go=1";
fairness notforever "stall=1";
fairness streett "p=1" "q=1";
fairness inf_edge "a=1" "s=2";
ctl named "AG p";
ctl "EF q";
automaton watch {
  states a b; init a;
  edge a b "p=1";
  edge a a "p=0";
  edge b b "true";
  accept inf { b } fin { a };
  accept inf_edges { a->b, b->b } fin { };
}
lc watch;
|}
  in
  let p = Pif.parse src in
  Alcotest.(check int) "4 fairness" 4 (List.length p.Pif.p_fairness);
  Alcotest.(check int) "2 ctl" 2 (List.length p.Pif.p_ctl);
  Alcotest.(check int) "1 automaton" 1 (List.length p.Pif.p_automata);
  Alcotest.(check (list string)) "lc list" [ "watch" ] p.Pif.p_lc;
  let a = Option.get (Pif.find_automaton p "watch") in
  Alcotest.(check int) "2 accept pairs" 2 (List.length a.Autom.a_pairs);
  Alcotest.(check int) "3 edges" 3 (List.length a.Autom.a_edges);
  (match a.Autom.a_pairs with
  | [ p1; p2 ] ->
      Alcotest.(check (list string)) "pair1 inf" [ "b" ] p1.Autom.inf_states;
      Alcotest.(check int) "pair2 edges" 2 (List.length p2.Autom.inf_edges)
  | _ -> Alcotest.fail "expected two pairs");
  Alcotest.(check bool) "named ctl present" true
    (List.mem_assoc "named" p.Pif.p_ctl)

let test_pif_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects " ^ src) true
        (try
           ignore (Pif.parse src);
           false
         with Pif.Error _ -> true))
    [
      "ctl \"AG (\";";
      "fairness bogus \"x\";";
      "automaton a { states; }";
      "lc;";
    ]

let test_autom_validate () =
  let base = Autom.invariance ~name:"i" ~ok:Expr.True in
  Alcotest.(check bool) "invariance valid" true (Autom.validate base = Ok ());
  let bad_init = { base with Autom.a_init = [ "nope" ] } in
  Alcotest.(check bool) "unknown init rejected" true
    (Autom.validate bad_init <> Ok ());
  let no_accept = { base with Autom.a_pairs = [] } in
  Alcotest.(check bool) "no acceptance rejected" true
    (Autom.validate no_accept <> Ok ());
  let reserved = { base with Autom.a_states = [ "good"; "_dead" ] } in
  Alcotest.(check bool) "reserved state rejected" true
    (Autom.validate reserved <> Ok ())

let test_autom_compose () =
  let flat =
    Hsis_blifmv.Flatten.flatten
      (Hsis_blifmv.Parser.parse
         ".model m\n.table -> x\n0\n1\n.latch n s\n.reset s 0\n.table x -> n\n0 0\n1 1\n.end\n")
  in
  let aut = Autom.invariance ~name:"w" ~ok:(Expr.parse "s=0") in
  let composed = Autom.compose flat aut in
  let net = Hsis_blifmv.Net.of_model composed in
  Alcotest.(check bool) "monitor signal exists" true
    (Hsis_blifmv.Net.find_signal net "_aut_w" <> None);
  Alcotest.(check int) "one more latch" 2
    (List.length net.Hsis_blifmv.Net.latches);
  (* monitor domain carries the dead state *)
  let mon = Option.get (Hsis_blifmv.Net.find_signal net "_aut_w") in
  Alcotest.(check int) "monitor domain" 3
    (Hsis_mv.Domain.size (Hsis_blifmv.Net.dom net mon))

let test_complement_constraints () =
  let aut = Autom.invariance ~name:"v" ~ok:Expr.True in
  match Autom.complement_constraints aut with
  | [ Hsis_auto.Fair.Streett (Fair.State _, Fair.State _) ] -> ()
  | _ -> Alcotest.fail "expected one state-Streett pair"

let () =
  Alcotest.run "auto"
    [
      ( "expr",
        [
          Alcotest.test_case "parse" `Quick test_expr_parse;
          Alcotest.test_case "errors" `Quick test_expr_errors;
          Alcotest.test_case "signals" `Quick test_expr_signals;
        ] );
      ( "ctl",
        [
          Alcotest.test_case "parse" `Quick test_ctl_parse;
          Alcotest.test_case "roundtrip" `Quick test_ctl_roundtrip;
          Alcotest.test_case "classification" `Quick test_ctl_classify;
        ] );
      ( "pif",
        [
          Alcotest.test_case "parse" `Quick test_pif_parse;
          Alcotest.test_case "errors" `Quick test_pif_errors;
        ] );
      ( "autom",
        [
          Alcotest.test_case "validate" `Quick test_autom_validate;
          Alcotest.test_case "compose" `Quick test_autom_compose;
          Alcotest.test_case "complement" `Quick test_complement_constraints;
        ] );
    ]
