(* The .delay timing extension: fixed pipelines and bounded-interval
   transport delays. *)

open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_check

let toggler_with delay_line =
  Printf.sprintf
    {|
.model toggler
.outputs s
.table s -> n
0 1
1 0
.latch n s
.reset s 0
%s
.end
|}
    delay_line

let net_of src = Net.of_ast (Parser.parse src)

(* The deterministic output sequence of a net with one observable latch
   chainend signal, via the explicit engine. *)
let trace_of net ~signal ~steps =
  let g = Enum.build net in
  ignore g;
  let s = Option.get (Net.find_signal net signal) in
  let rec go st k acc =
    if k = 0 then List.rev acc
    else begin
      match Enum.successors net st with
      | [ next ] ->
          let v =
            (* find the signal's value in a consistent valuation *)
            match Enum.valuations_of_state net st with
            | vals :: _ -> vals.(s)
            | [] -> -1
          in
          go next (k - 1) (v :: acc)
      | _ -> List.rev acc (* non-deterministic: stop *)
    end
  in
  match Enum.initial_states net with
  | [ st ] -> go st steps []
  | _ -> []

let test_no_delay_period_2 () =
  let net = net_of (toggler_with "") in
  Alcotest.(check (list int)) "period 2" [ 0; 1; 0; 1; 0; 1 ]
    (trace_of net ~signal:"s" ~steps:6)

let test_fixed_delay_pipeline () =
  (* with a 3-stage delay, the feedback loop has period 6 *)
  let net = net_of (toggler_with ".delay s 3") in
  Alcotest.(check int) "three extra latches" 3 (List.length net.Net.latches);
  Alcotest.(check (list int)) "period 6"
    [ 0; 0; 0; 1; 1; 1; 0; 0; 0; 1; 1; 1 ]
    (trace_of net ~signal:"s" ~steps:12)

let test_interval_delay () =
  let net = net_of (toggler_with ".delay s 1 2") in
  (* symbolic and explicit reachable sets agree *)
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  let trans = Trans.build sym in
  let r = Reach.compute trans (Trans.initial trans) in
  Alcotest.(check int) "symbolic = explicit"
    (Enum.count_reachable net)
    (int_of_float (Reach.count_states trans r.Reach.reachable));
  (* jitter adds behaviors: the interval net has branching states, while
     the fixed pipeline stays deterministic *)
  let branching net =
    let g = Enum.build net in
    Array.exists (fun succ -> List.length succ >= 2) g.Enum.succ
  in
  let fixed = net_of (toggler_with ".delay s 2") in
  Alcotest.(check bool) "interval branches" true (branching net);
  Alcotest.(check bool) "fixed deterministic" false (branching fixed)

let test_roundtrip () =
  let src = toggler_with ".delay s 1 2" in
  let printed = Printer.to_string (Parser.parse src) in
  Alcotest.(check bool) ".delay survives printing" true
    (let rec contains i =
       i + 12 <= String.length printed
       && (String.sub printed i 12 = ".delay s 1 2" || contains (i + 1))
     in
     contains 0);
  let reparsed = Parser.parse printed in
  let m = Option.get (Ast.find_model reparsed "toggler") in
  Alcotest.(check int) "delay entry" 1 (List.length m.Ast.m_delays)

let test_errors () =
  Alcotest.(check bool) "unknown signal rejected" true
    (try
       ignore (net_of (toggler_with ".delay nope 2"));
       false
     with Timing.Error _ -> true);
  Alcotest.(check bool) "bad bounds rejected" true
    (try
       ignore (Parser.parse (toggler_with ".delay s 3 2"));
       false
     with Parser.Error _ -> true);
  Alcotest.(check bool) "zero delay rejected" true
    (try
       ignore (Parser.parse (toggler_with ".delay s 0"));
       false
     with Parser.Error _ -> true)

let test_delay_one_is_identity () =
  let plain = net_of (toggler_with "") in
  let delayed = net_of (toggler_with ".delay s 1") in
  Alcotest.(check int) "same latch count"
    (List.length plain.Net.latches)
    (List.length delayed.Net.latches);
  Alcotest.(check int) "same reachable"
    (Enum.count_reachable plain)
    (Enum.count_reachable delayed)

let () =
  Alcotest.run "timing"
    [
      ( "delay",
        [
          Alcotest.test_case "no delay baseline" `Quick test_no_delay_period_2;
          Alcotest.test_case "fixed pipeline" `Quick test_fixed_delay_pipeline;
          Alcotest.test_case "interval delay" `Quick test_interval_delay;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "delay 1 is identity" `Quick
            test_delay_one_is_identity;
        ] );
    ]
