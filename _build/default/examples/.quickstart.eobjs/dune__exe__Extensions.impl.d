examples/extensions.ml: Expr Flatten Format Hsis_auto Hsis_bisim Hsis_blifmv Hsis_check Hsis_core List Net Parser Pif Proplib Stree
