examples/simulator_walk.ml: Array Flatten Format Hsis_blifmv Hsis_models Hsis_sim Hsis_verilog Net Simulator
