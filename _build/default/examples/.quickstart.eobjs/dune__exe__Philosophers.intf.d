examples/philosophers.mli:
