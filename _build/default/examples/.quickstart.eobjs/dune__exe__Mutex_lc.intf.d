examples/mutex_lc.mli:
