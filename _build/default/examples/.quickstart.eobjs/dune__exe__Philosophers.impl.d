examples/philosophers.ml: Format Hsis_core Hsis_debug Hsis_models Hsis_sim List Model Option Philos
