examples/scheduler_scaling.ml: Format Hsis_bdd Hsis_core Hsis_fsm Hsis_models List Model Scheduler Sys
