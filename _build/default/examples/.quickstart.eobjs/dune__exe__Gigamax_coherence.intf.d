examples/gigamax_coherence.mli:
