examples/simulator_walk.mli:
