examples/quickstart.ml: Format Hsis_auto Hsis_blifmv Hsis_core Hsis_debug Hsis_verilog List
