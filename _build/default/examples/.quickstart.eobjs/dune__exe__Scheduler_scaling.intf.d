examples/scheduler_scaling.mli:
