examples/quickstart.mli:
