examples/mutex_lc.ml: Autom Ctl Expr Format Hsis_auto Hsis_core Hsis_debug Printf
