examples/gigamax_coherence.ml: Float Format Gigamax Hsis_bisim Hsis_blifmv Hsis_check Hsis_core Hsis_models List Model
