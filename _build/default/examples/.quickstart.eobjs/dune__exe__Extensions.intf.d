examples/extensions.mli:
