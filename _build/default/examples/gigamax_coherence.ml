(* Gigamax cache coherence: the nine CTL properties and the containment
   check, then the Sec. 2 minimization features — don't-care restrict
   minimization of the relation BDDs and bisimulation class counting.

   Run with: dune exec examples/gigamax_coherence.exe *)

open Hsis_models

let () =
  Format.printf "=== Gigamax cache-consistency protocol ===@.@.";
  let m = Gigamax.make () in
  let design = Hsis_core.Hsis.read_verilog m.Model.verilog in
  Format.printf "reachable states: %.0f@.@."
    (Hsis_core.Hsis.reached_states design);
  let report = Hsis_core.Hsis.run_pif design (Model.parse_pif m) in
  Format.printf "%a@." Hsis_core.Hsis.pp_report report;

  (* don't-care minimization: restrict the relation parts with the
     reachable care set *)
  let dc = Hsis_core.Hsis.minimize design in
  Format.printf "don't-care minimization: %d -> %d relation nodes (%.1f%%)@."
    dc.Hsis_bisim.Dontcare.before dc.Hsis_bisim.Dontcare.after
    (100.0
    *. Float.of_int dc.Hsis_bisim.Dontcare.after
    /. Float.of_int (max 1 dc.Hsis_bisim.Dontcare.before));
  (* validate that minimization preserved images on the care set *)
  let reach = Hsis_core.Hsis.reachable design in
  let ok =
    Hsis_bisim.Dontcare.image_equal design.Hsis_core.Hsis.trans
      dc.Hsis_bisim.Dontcare.minimized
      ~from_:reach.Hsis_check.Reach.reachable
  in
  Format.printf "image preserved on reachable set: %b@.@." ok;

  (* bisimulation: observing only the four cache lines, how many of the
     320 product states are behaviorally distinct? *)
  let net = design.Hsis_core.Hsis.net in
  let obs =
    List.filter_map
      (Hsis_blifmv.Net.find_signal net)
      [ "c0"; "c1"; "c2"; "c3" ]
  in
  let b =
    Hsis_bisim.Bisim.compute ~obs design.Hsis_core.Hsis.trans
      ~reach:reach.Hsis_check.Reach.reachable
  in
  Format.printf
    "bisimulation (observing the cache lines): %.0f states fall into %d \
     classes after %d refinement steps@."
    b.Hsis_bisim.Bisim.states b.Hsis_bisim.Bisim.classes
    b.Hsis_bisim.Bisim.iterations
