(* The state-based simulator (paper Sec. 2 item 4) used two ways on the
   mdlc link: a guided walk that forces a frame through the lossy channel,
   and frontier-at-a-time enumeration of the reachable states.

   Run with: dune exec examples/simulator_walk.exe *)

open Hsis_blifmv
open Hsis_sim

let link_only =
  (* just one link of the 2mdlc design *)
  let m = Hsis_models.Mdlc.make () in
  let ast = Hsis_verilog.Elab.compile m.Hsis_models.Model.verilog in
  Net.of_model
    (Flatten.flatten ~root:"link" ast)

let () =
  Format.printf "=== simulator: stepping an mdlc link ===@.@.";
  let net = link_only in
  let sim = Simulator.create net in
  let value name vals =
    match Net.find_signal net name with
    | Some s -> vals.(s)
    | None -> -1
  in
  Format.printf "start: %a@." (Simulator.pp_state net) (Simulator.state sim);
  (* force the frame through: never lose, always time out when waiting *)
  let forced = ref 0 in
  for i = 1 to 8 do
    let took =
      Simulator.step_where sim (fun vals ->
          value "lose" vals = 0 && value "alose" vals = 0
          && value "timeout" vals = 1)
    in
    if took then incr forced;
    Format.printf "%4d: %a@." i (Simulator.pp_state net) (Simulator.state sim)
  done;
  Format.printf "guided steps taken: %d, depth %d@.@." !forced
    (Simulator.depth sim);
  (* backtrack a couple of steps *)
  ignore (Simulator.backtrack sim);
  ignore (Simulator.backtrack sim);
  Format.printf "after backtracking twice: %a@.@." (Simulator.pp_state net)
    (Simulator.state sim);

  (* frontier-at-a-time reachable-state enumeration under user control *)
  Format.printf "frontier exploration:@.";
  let e = Simulator.explorer net in
  let level = ref 0 in
  let continue = ref true in
  while !continue do
    let fresh = Simulator.expand e in
    incr level;
    Format.printf "  level %2d: %5d new states (total %d)@." !level fresh
      (Simulator.discovered e);
    if fresh = 0 || !level >= 12 then continue := false
  done
