open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_blifmv

(** Language containment checking (paper Sec. 5.2): is every fair behavior
    of the system accepted by the property automaton?

    The automaton (deterministic edge-Rabin) is compiled into a BLIF-MV
    monitor and composed with the system; containment fails exactly when
    the product has a reachable fair cycle satisfying the system fairness
    and the complemented (Streett) acceptance — a language-emptiness check
    carried out with the Emerson-Lei engine. *)

type outcome = {
  holds : bool;
  trans : Trans.t;  (** transition structure of the composed product *)
  reach : Reach.t;
  fair : Bdd.t;  (** reachable fair states of the product (empty iff holds) *)
  env : El.env;
  early_failure_step : int option;
  monitor : string;  (** name of the monitor state signal *)
}

exception Not_deterministic of string
(** Raised when the property automaton is non-deterministic (the paper
    restricts containment to deterministic properties, Sec. 8 item 6). *)

val check :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?heuristic:Trans.heuristic ->
  Ast.model ->
  Autom.t ->
  outcome
(** [check flat_model automaton].  [fairness] constrains the system. *)

val product : ?heuristic:Trans.heuristic -> Ast.model -> Autom.t -> Trans.t
(** Just the composed transition structure (for debugging/benches). *)
