lib/check/reach.mli: Bdd Hsis_bdd Hsis_fsm Trans
