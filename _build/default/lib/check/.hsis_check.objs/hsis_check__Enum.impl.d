lib/check/enum.ml: Array Autom Ctl Domain Expr Fair Fun Hashtbl Hsis_auto Hsis_blifmv Hsis_mv List Net Queue
