lib/check/lc.ml: Array Autom Bdd Check El Fair Hsis_auto Hsis_bdd Hsis_blifmv Hsis_fsm List Net Reach Sym Trans
