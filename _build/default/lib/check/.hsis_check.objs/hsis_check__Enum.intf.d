lib/check/enum.mli: Ast Autom Ctl Expr Fair Hsis_auto Hsis_blifmv Net
