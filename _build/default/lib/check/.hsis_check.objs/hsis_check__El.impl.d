lib/check/el.ml: Bdd Fair Hashtbl Hsis_auto Hsis_bdd Hsis_fsm List Trans
