lib/check/el.mli: Bdd Fair Hsis_auto Hsis_bdd Hsis_fsm Trans
