lib/check/reach.ml: Array Bdd Hsis_bdd Hsis_fsm List Sym Trans
