lib/check/mc.ml: Array Bdd Ctl El Expr Hsis_auto Hsis_bdd Hsis_fsm Reach Trans
