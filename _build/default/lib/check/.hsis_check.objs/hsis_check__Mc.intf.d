lib/check/mc.mli: Bdd Ctl Fair Hsis_auto Hsis_bdd Hsis_fsm Reach Trans
