lib/check/lc.mli: Ast Autom Bdd El Fair Hsis_auto Hsis_bdd Hsis_blifmv Hsis_fsm Reach Trans
