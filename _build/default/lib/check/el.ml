open Hsis_bdd
open Hsis_fsm
open Hsis_auto

type env = {
  trans : Trans.t;
  cs : Fair.compiled list;
  (* Edge-restricted transition structures, shared across fixpoints. *)
  edge_trans : (int, Trans.t) Hashtbl.t;
}

let edge_key b = Bdd.id b

let edge_restricted env trans edge =
  (* Caching is only valid against the base structure; restricted recursion
     (Streett avoid-branches) builds fresh ones. *)
  if trans == env.trans then begin
    let k = edge_key edge in
    match Hashtbl.find_opt env.edge_trans k with
    | Some t -> t
    | None ->
        let t = Trans.transition_constraint trans edge in
        Hashtbl.replace env.edge_trans k t;
        t
  end
  else Trans.transition_constraint trans edge

let prepare trans cs = { trans; cs; edge_trans = Hashtbl.create 8 }
let constraints env = env.cs
let trans_of env = env.trans

(* ---- generic operators over an explicit transition structure ---- *)

let pre trans s = Trans.preimage trans s

let eu trans ~within target =
  let target = Bdd.dand target within in
  let rec lfp y =
    let y' = Bdd.dor target (Bdd.dand within (pre trans y)) in
    if Bdd.equal y y' then y else lfp y'
  in
  lfp target

let eg trans within =
  let rec gfp y =
    let y' = Bdd.dand y (pre trans y) in
    if Bdd.equal y y' then y else gfp y'
  in
  gfp within

(* ---- Emerson-Lei with exact Streett handling ----

   The greatest fixpoint keeps a state when, within the current hull Z, it
   can (a) reach each Büchi condition again, and (b) for each Streett pair
   (p, q), either reach q again or reach a region where an infinite path
   avoids p forever *while still satisfying the remaining constraints* —
   the latter computed by recursing with the pair removed (and, for edge
   conditions, with the transition relation restricted to non-p edges). *)

let rec fair_rec env trans cs within =
  let step z =
    let z = eg trans z in
    List.fold_left
      (fun z c ->
        if Bdd.is_false z then z
        else
          match c with
          | Fair.CInf_state p ->
              let hull = eu trans ~within:z (Bdd.dand p z) in
              Bdd.dand z (Bdd.dand z (pre trans hull))
          | Fair.CInf_edge e ->
              let t_e = edge_restricted env trans e in
              let sources = Bdd.dand z (Trans.preimage t_e z) in
              Bdd.dand z (eu trans ~within:z sources)
          | Fair.CStreett (p, q) ->
              let others = List.filter (fun c' -> c' != c) cs in
              let satisfy_q =
                match q with
                | Fair.CState qs ->
                    Bdd.dand z
                      (pre trans (eu trans ~within:z (Bdd.dand qs z)))
                | Fair.CEdge qe ->
                    let t_q = edge_restricted env trans qe in
                    let sources = Bdd.dand z (Trans.preimage t_q z) in
                    eu trans ~within:z sources
              in
              let avoid_p =
                match p with
                | Fair.CState ps ->
                    fair_rec env trans others (Bdd.dand z (Bdd.dnot ps))
                | Fair.CEdge pe ->
                    let t_notp = edge_restricted env trans (Bdd.dnot pe) in
                    fair_rec env t_notp others z
              in
              Bdd.dand z (Bdd.dor satisfy_q (eu trans ~within:z avoid_p))
          )
      z cs
  in
  let rec outer z =
    let z' = step z in
    if Bdd.equal z z' then z else outer z'
  in
  outer within

let fair_states env ~within = fair_rec env env.trans env.cs within
let eu_within env ~within target = eu env.trans ~within target
let eg_within env within = eg env.trans within
let pre_within env ~within s = Bdd.dand within (pre env.trans s)

let pre_edge env ~edge s =
  Trans.preimage (edge_restricted env env.trans edge) s
