open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_blifmv

type outcome = {
  holds : bool;
  trans : Trans.t;
  reach : Reach.t;
  fair : Bdd.t;
  env : El.env;
  early_failure_step : int option;
  monitor : string;
}

exception Not_deterministic of string

let build_product ?(heuristic = Trans.Min_width) flat aut =
  let composed = Autom.compose flat aut in
  let net = Net.of_model composed in
  (* The property automaton must be deterministic: its compiled table must
     never allow two next states for one input pattern. *)
  let mon = Autom.monitor_signal aut in
  let mon_next =
    match Net.find_signal net (mon ^ "_next") with
    | Some s -> s
    | None -> invalid_arg "Lc: monitor signal missing after composition"
  in
  List.iter
    (fun (tb : Net.ftable) ->
      if List.mem mon_next tb.Net.ft_outputs then
        if not (Check.table_deterministic net tb) then
          raise (Not_deterministic aut.Autom.a_name))
    net.Net.tables;
  let man = Bdd.new_man () in
  let sym = Sym.make man net in
  Trans.build ~heuristic sym

let product ?heuristic flat aut = build_product ?heuristic flat aut

let check ?(fairness = []) ?(early_failure = false) ?heuristic flat aut =
  (match Autom.validate aut with
  | Ok () -> ()
  | Error m -> invalid_arg ("Lc.check: " ^ m));
  let trans = build_product ?heuristic flat aut in
  let mon = Autom.monitor_signal aut in
  let constraints =
    Fair.compile_all trans (fairness @ Autom.complement_constraints aut)
  in
  let env = El.prepare trans constraints in
  let init = Trans.initial trans in
  (* Early failure detection, second technique (Sec. 5.4): while exploring,
     probe growing prefixes of the reachable set for a fair cycle — a fair
     cycle of a substructure is a fair cycle of the full structure. *)
  let full = Reach.compute trans init in
  let probe upto =
    let partial = Reach.partial full ~upto in
    El.fair_states env ~within:partial
  in
  let early =
    (* One probe on a short prefix: a fair cycle of a substructure is
       real, and most errors are shallow (Sec. 5.4). *)
    if early_failure then begin
      let n = Array.length full.Reach.rings in
      let k = min 4 (n - 2) in
      if k < 1 then None
      else begin
        let fair = probe k in
        if not (Bdd.is_false fair) then Some (k, fair) else None
      end
    end
    else None
  in
  let fair, early_step =
    match early with
    | Some (k, fair) -> (fair, Some k)
    | None -> (El.fair_states env ~within:full.Reach.reachable, None)
  in
  {
    holds = Bdd.is_false fair;
    trans;
    reach = full;
    fair;
    env;
    early_failure_step = early_step;
    monitor = mon;
  }
