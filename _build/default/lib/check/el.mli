open Hsis_bdd
open Hsis_fsm
open Hsis_auto

(** Emerson-Lei style fair-state computation (paper Sec. 5.3, refs
    [10]/[17]): the greatest set of states from which an infinite path
    exists satisfying every fairness constraint, computed as a nested
    fixpoint over preimage operators. *)

type env
(** Prepared operators: the transition structure plus, per edge condition,
    a transition structure restricted to (or avoiding) those edges. *)

val prepare : Trans.t -> Fair.compiled list -> env
val constraints : env -> Fair.compiled list
val trans_of : env -> Trans.t

val eu_within : env -> within:Bdd.t -> Bdd.t -> Bdd.t
(** [eu_within env ~within target]: least fixpoint of
    [Y = (target /\ within) \/ (within /\ pre Y)] — states with a path
    inside [within] to [target]. *)

val eg_within : env -> Bdd.t -> Bdd.t
(** Greatest fixpoint of [Y = within /\ pre Y] — states with an infinite
    path inside [within] (no fairness). *)

val fair_states : env -> within:Bdd.t -> Bdd.t
(** The fair hull: states in [within] from which some infinite path stays
    in [within] and satisfies all constraints of the environment.  With no
    constraints this degenerates to {!eg_within}. *)

val pre_within : env -> within:Bdd.t -> Bdd.t -> Bdd.t
(** One [EX] step restricted to [within]. *)

val pre_edge : env -> edge:Bdd.t -> Bdd.t -> Bdd.t
(** Preimage through the transitions satisfying the edge condition. *)
