lib/mv/domain.ml: Array Format Hashtbl String
