lib/mv/domain.mli: Format
