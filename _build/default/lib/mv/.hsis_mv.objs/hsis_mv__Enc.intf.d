lib/mv/enc.mli: Bdd Domain Hsis_bdd
