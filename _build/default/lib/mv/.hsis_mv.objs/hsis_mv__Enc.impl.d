lib/mv/enc.ml: Array Bdd Domain Fun Hsis_bdd List Printf
