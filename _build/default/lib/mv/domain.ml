type t = { name : string; values : string array; index : (string, int) Hashtbl.t }

let make name values =
  if Array.length values = 0 then invalid_arg "Domain.make: empty domain";
  let index = Hashtbl.create (Array.length values) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem index v then
        invalid_arg ("Domain.make: duplicate value " ^ v);
      Hashtbl.add index v i)
    values;
  { name; values = Array.copy values; index }

let boolean = make "bool" [| "0"; "1" |]
let of_size name n = make name (Array.init n string_of_int)
let name d = d.name
let size d = Array.length d.values
let values d = Array.copy d.values
let value d i = d.values.(i)
let index_of d v = Hashtbl.find_opt d.index v

let bits d =
  let n = size d in
  let rec go b acc = if acc >= n then b else go (b + 1) (2 * acc) in
  (* singleton domains still get one (constrained) bit so every signal has
     a non-empty encoding *)
  max 1 (go 0 1)

let equal a b =
  size a = size b && Array.for_all2 String.equal a.values b.values

let pp fmt d =
  Format.fprintf fmt "%s{%s}" d.name (String.concat "," (Array.to_list d.values))
