(** Finite symbolic domains of multi-valued variables (BLIF-MV [.mv]). *)

type t

val make : string -> string array -> t
(** [make name values]; values must be non-empty and distinct. *)

val boolean : t
(** The two-valued domain [{"0"; "1"}]. *)

val of_size : string -> int -> t
(** Anonymous values ["0"], ["1"], ... *)

val name : t -> string
val size : t -> int
val values : t -> string array
val value : t -> int -> string
val index_of : t -> string -> int option
val bits : t -> int
(** Number of binary variables needed to encode the domain. *)

val equal : t -> t -> bool
(** Same size and same value names. *)

val pp : Format.formatter -> t -> unit
