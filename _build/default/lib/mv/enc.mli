open Hsis_bdd

(** Binary encoding of a multi-valued variable onto BDD literals.

    A variable with domain size [k] uses [ceil(log2 k)] BDD variables
    (least-significant bit first).  Codes at or beyond [k] are illegal and
    excluded by {!domain_constraint}. *)

type t

val make : Domain.t -> Bdd.t array -> t
(** [make dom bits]: [bits] are positive literals, LSB first; their count
    must equal [Domain.bits dom]. *)

val domain : t -> Domain.t
val bits : t -> Bdd.t array
val man : t -> Bdd.man

val value_bdd : t -> int -> Bdd.t
(** Characteristic function of [var = value-index]. *)

val set_bdd : t -> int list -> Bdd.t
(** Characteristic function of membership in a set of value indices. *)

val full_bdd : t -> Bdd.t
(** Same as [set_bdd] over the whole domain — the domain constraint. *)

val domain_constraint : t -> Bdd.t
(** Excludes the unused binary codes; [true] when the size is a power of 2. *)

val eq : t -> t -> Bdd.t
(** Bitwise equality of two encodings of equal-size domains. *)

val cube : t -> Bdd.t
(** Quantification cube of the encoding's variables. *)

val var_indices : t -> int list

val decode : t -> (int -> bool) -> int
(** Recover the value index from a total assignment of the bit variables.
    Raises [Invalid_argument] on an illegal code. *)

val assign : t -> int -> (int * bool) list
(** Bit-variable assignment encoding a value index. *)