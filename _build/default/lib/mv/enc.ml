open Hsis_bdd

type t = { dom : Domain.t; bits : Bdd.t array; man : Bdd.man }

let make dom bits =
  let expected = Domain.bits dom in
  if Array.length bits <> expected then
    invalid_arg
      (Printf.sprintf "Enc.make: %s needs %d bits, got %d" (Domain.name dom)
         expected (Array.length bits));
  let man =
    if Array.length bits = 0 then invalid_arg "Enc.make: empty encoding"
    else Bdd.man_of bits.(0)
  in
  { dom; bits = Array.copy bits; man }

let domain e = e.dom
let bits e = Array.copy e.bits
let man e = e.man

let value_bdd e v =
  if v < 0 || v >= Domain.size e.dom then invalid_arg "Enc.value_bdd";
  let acc = ref (Bdd.dtrue e.man) in
  Array.iteri
    (fun i bit ->
      let lit = if (v lsr i) land 1 = 1 then bit else Bdd.dnot bit in
      acc := Bdd.dand !acc lit)
    e.bits;
  !acc

let set_bdd e vs =
  List.fold_left (fun acc v -> Bdd.dor acc (value_bdd e v)) (Bdd.dfalse e.man) vs

let full_bdd e = set_bdd e (List.init (Domain.size e.dom) Fun.id)
let domain_constraint = full_bdd

let eq a b =
  if Domain.size a.dom <> Domain.size b.dom then
    invalid_arg "Enc.eq: domain size mismatch";
  let acc = ref (Bdd.dtrue a.man) in
  Array.iteri (fun i bit -> acc := Bdd.dand !acc (Bdd.eqv bit b.bits.(i))) a.bits;
  !acc

let cube e = Bdd.cube e.man (Array.to_list e.bits)
let var_indices e = Array.to_list (Array.map Bdd.var_index e.bits)

let decode e env =
  let v = ref 0 in
  Array.iteri
    (fun i bit -> if env (Bdd.var_index bit) then v := !v lor (1 lsl i))
    e.bits;
  if !v >= Domain.size e.dom then
    invalid_arg
      (Printf.sprintf "Enc.decode: illegal code %d for %s" !v
         (Domain.name e.dom));
  !v

let assign e v =
  if v < 0 || v >= Domain.size e.dom then invalid_arg "Enc.assign";
  Array.to_list
    (Array.mapi (fun i bit -> (Bdd.var_index bit, (v lsr i) land 1 = 1)) e.bits)