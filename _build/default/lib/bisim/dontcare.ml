open Hsis_bdd
open Hsis_fsm

type report = { before : int; after : int; minimized : Trans.t }

let with_care trans ~care =
  let before = Trans.parts_size trans in
  let minimized = Trans.map_parts trans (fun p -> Bdd.restrict p ~care) in
  { before; after = Trans.parts_size minimized; minimized }

let with_reachable trans ~reach = with_care trans ~care:reach

let image_equal t1 t2 ~from_ =
  Bdd.equal (Trans.image t1 from_) (Trans.image t2 from_)
