open Hsis_bdd
open Hsis_fsm

(** Don't-care based BDD minimization (paper Sec. 2 item 3): shrink the
    relation parts of a transition structure using reachability (and
    optionally bisimulation-class) don't cares via the restrict
    operator. *)

type report = {
  before : int;  (** total dag nodes of the parts before minimization *)
  after : int;
  minimized : Trans.t;
}

val with_reachable : Trans.t -> reach:Bdd.t -> report
(** Restrict every part with the reachable set as the care set: behavior on
    unreachable states is free. *)

val with_care : Trans.t -> care:Bdd.t -> report
(** Restrict with an arbitrary care set over present variables. *)

val image_equal : Trans.t -> Trans.t -> from_:Bdd.t -> bool
(** Do the two structures compute the same image of a state set?  Used to
    validate that minimization preserved behavior on the care set. *)
