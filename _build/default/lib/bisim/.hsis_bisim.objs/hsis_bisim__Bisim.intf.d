lib/bisim/bisim.mli: Bdd Hsis_bdd Hsis_fsm Trans
