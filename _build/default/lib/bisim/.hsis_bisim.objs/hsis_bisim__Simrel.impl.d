lib/bisim/simrel.ml: Bdd Domain Enc Fun Hsis_bdd Hsis_blifmv Hsis_fsm Hsis_mv List Net Sym Trans
