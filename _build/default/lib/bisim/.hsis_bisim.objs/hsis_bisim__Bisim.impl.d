lib/bisim/bisim.ml: Bdd Domain Enc Fun Hsis_bdd Hsis_blifmv Hsis_fsm Hsis_mv List Net Printf Sym Trans
