lib/bisim/dontcare.ml: Bdd Hsis_bdd Hsis_fsm Trans
