lib/bisim/dontcare.mli: Bdd Hsis_bdd Hsis_fsm Trans
