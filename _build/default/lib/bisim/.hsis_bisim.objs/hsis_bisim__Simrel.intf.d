lib/bisim/simrel.mli: Bdd Hsis_bdd Hsis_blifmv Net
