(** Tokenizer shared by the expression, CTL and PIF parsers. *)

type t =
  | Ident of string
  | Str of string  (** double-quoted *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Bang
  | Amp
  | Bar
  | Arrow  (** [->] *)
  | Eq
  | Neq
  | Semi
  | Comma

exception Error of string

val tokenize : string -> t list
val to_string : t -> string
