type t =
  | Ident of string
  | Str of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Bang
  | Amp
  | Bar
  | Arrow
  | Eq
  | Neq
  | Semi
  | Comma

exception Error of string

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '/' || c = '\''

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      push (Ident (String.sub s start (!i - start)))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do
        incr i
      done;
      if !i >= n then raise (Error "unterminated string");
      push (Str (String.sub s start (!i - start)));
      incr i
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "->" ->
          push Arrow;
          i := !i + 2
      | "!=" ->
          push Neq;
          i := !i + 2
      | "&&" ->
          push Amp;
          i := !i + 2
      | "||" ->
          push Bar;
          i := !i + 2
      | "==" ->
          push Eq;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> push Lparen
          | ')' -> push Rparen
          | '[' -> push Lbracket
          | ']' -> push Rbracket
          | '{' -> push Lbrace
          | '}' -> push Rbrace
          | '!' -> push Bang
          | '&' -> push Amp
          | '|' -> push Bar
          | '=' -> push Eq
          | ';' -> push Semi
          | ',' -> push Comma
          | c -> raise (Error (Printf.sprintf "unexpected character %c" c)))
    end
  done;
  List.rev !toks

let to_string = function
  | Ident s -> s
  | Str s -> "\"" ^ s ^ "\""
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Bang -> "!"
  | Amp -> "&"
  | Bar -> "|"
  | Arrow -> "->"
  | Eq -> "="
  | Neq -> "!="
  | Semi -> ";"
  | Comma -> ","
