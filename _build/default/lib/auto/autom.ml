open Hsis_mv
open Hsis_blifmv

type edge = { e_src : string; e_dst : string; e_guard : Expr.t }

type accept_pair = {
  inf_states : string list;
  inf_edges : (string * string) list;
  fin_states : string list;
  fin_edges : (string * string) list;
}

type t = {
  a_name : string;
  a_states : string list;
  a_init : string list;
  a_edges : edge list;
  a_pairs : accept_pair list;
}

let dead_state = "_dead"

let validate a =
  let known s = List.mem s a.a_states in
  let check_pair_part part =
    List.for_all known part
  in
  if a.a_states = [] then Error "automaton has no states"
  else if List.mem dead_state a.a_states then
    Error (dead_state ^ " is a reserved state name")
  else if a.a_init = [] then Error "automaton has no initial state"
  else if not (List.for_all known a.a_init) then
    Error "unknown initial state"
  else if
    not
      (List.for_all (fun e -> known e.e_src && known e.e_dst) a.a_edges)
  then Error "edge endpoint is not a declared state"
  else if
    not
      (List.for_all
         (fun p ->
           check_pair_part p.inf_states
           && check_pair_part p.fin_states
           && List.for_all (fun (s, d) -> known s && known d) p.inf_edges
           && List.for_all (fun (s, d) -> known s && known d) p.fin_edges)
         a.a_pairs)
  then Error "acceptance refers to unknown states"
  else if a.a_pairs = [] then Error "automaton has no acceptance condition"
  else Ok ()

let monitor_signal a = "_aut_" ^ a.a_name

(* All valuations of the guard's support satisfying it, as
   (signal name, value name) association lists. *)
let guard_rows (doms : (string * Domain.t) list) guard =
  let support = Expr.signals guard in
  let dom_of name =
    match List.assoc_opt name doms with
    | Some d -> d
    | None -> invalid_arg ("Autom: guard mentions unknown signal " ^ name)
  in
  let rec enumerate = function
    | [] -> [ [] ]
    | name :: rest ->
        let d = dom_of name in
        let tails = enumerate rest in
        List.concat_map
          (fun i ->
            List.map (fun tl -> (name, Domain.value d i) :: tl) tails)
          (List.init (Domain.size d) Fun.id)
  in
  let sat env =
    let net_lookup name = List.assoc name env in
    (* Evaluate the expression directly on names/values. *)
    let rec go = function
      | Expr.True -> true
      | Expr.False -> false
      | Expr.Eq (n, v) -> net_lookup n = v
      | Expr.Neq (n, v) -> net_lookup n <> v
      | Expr.Not e -> not (go e)
      | Expr.And (x, y) -> go x && go y
      | Expr.Or (x, y) -> go x || go y
      | Expr.Imp (x, y) -> (not (go x)) || go y
    in
    go guard
  in
  List.filter sat (enumerate support)

let compose (flat : Ast.model) a =
  (match validate a with
  | Ok () -> ()
  | Error m -> invalid_arg ("Autom.compose: " ^ m));
  if flat.Ast.m_subckts <> [] then invalid_arg "Autom.compose: model not flat";
  let sys = Net.of_model flat in
  let mon = monitor_signal a in
  let mon_next = mon ^ "_next" in
  (match Net.find_signal sys mon with
  | Some _ -> invalid_arg ("Autom.compose: signal " ^ mon ^ " already exists")
  | None -> ());
  let doms =
    List.filter_map
      (fun name ->
        Option.map
          (fun s -> (name, Net.dom sys s))
          (Net.find_signal sys name))
      (List.sort_uniq compare
         (List.concat_map (fun e -> Expr.signals e.e_guard) a.a_edges))
  in
  (* Validate guard signals exist up front for a clean error. *)
  List.iter
    (fun e ->
      List.iter
        (fun name ->
          if not (List.mem_assoc name doms) then
            invalid_arg ("Autom.compose: guard mentions unknown signal " ^ name))
        (Expr.signals e.e_guard))
    a.a_edges;
  let support = List.map fst doms in
  let states = a.a_states @ [ dead_state ] in
  let mv_decl =
    {
      Ast.v_names = [ mon; mon_next ];
      v_size = List.length states;
      v_values = states;
    }
  in
  let latch = { Ast.l_input = mon_next; l_output = mon; l_reset = a.a_init } in
  let rows =
    List.concat_map
      (fun e ->
        List.map
          (fun env ->
            let ins =
              List.map
                (fun name ->
                  match List.assoc_opt name env with
                  | Some v -> Ast.Val v
                  | None -> Ast.Any)
                support
            in
            {
              Ast.r_inputs = ins @ [ Ast.Val e.e_src ];
              r_outputs = [ Ast.Val e.e_dst ];
            })
          (guard_rows doms e.e_guard))
      a.a_edges
  in
  let table =
    {
      Ast.t_inputs = support @ [ mon ];
      t_outputs = [ mon_next ];
      t_rows = rows;
      t_default = Some [ Ast.Val dead_state ];
    }
  in
  {
    flat with
    Ast.m_mvs = flat.Ast.m_mvs @ [ mv_decl ];
    m_tables = flat.Ast.m_tables @ [ table ];
    m_latches = flat.Ast.m_latches @ [ latch ];
  }

let complement_constraints a =
  let mon = monitor_signal a in
  let state_expr states =
    List.fold_left
      (fun acc s -> Expr.Or (acc, Expr.Eq (mon, s)))
      Expr.False states
  in
  let cond states edges =
    if edges = [] then Fair.State (state_expr states)
    else
      Fair.Edges
        (List.map (fun (s, d) -> (Expr.Eq (mon, s), Expr.Eq (mon, d))) edges
        @ List.map (fun s -> (Expr.True, Expr.Eq (mon, s))) states)
  in
  (* Rabin pair (Inf, Fin) complements to the Streett pair (Inf, Fin):
     "if Inf occurs infinitely often, so must Fin". *)
  List.map
    (fun p ->
      Fair.Streett
        (cond p.inf_states p.inf_edges, cond p.fin_states p.fin_edges))
    a.a_pairs

let invariance ~name ~ok =
  {
    a_name = name;
    a_states = [ "good"; "bad" ];
    a_init = [ "good" ];
    a_edges =
      [
        { e_src = "good"; e_dst = "good"; e_guard = ok };
        { e_src = "good"; e_dst = "bad"; e_guard = Expr.Not ok };
        { e_src = "bad"; e_dst = "bad"; e_guard = Expr.True };
      ];
    a_pairs =
      [
        {
          inf_states = [ "good" ];
          inf_edges = [];
          fin_states = [ "bad" ];
          fin_edges = [];
        };
      ];
  }
