(** The Property Intermediate Format (PIF): fairness constraints, CTL
    properties and containment automata, in one text file (paper Fig. 1).

    Grammar (statements end with [;], ['#'] comments):
    {v
    fairness inf "expr";
    fairness inf_edge "from-expr" "to-expr";
    fairness notforever "expr";
    fairness streett "p-expr" "q-expr";
    ctl [name] "AG !(out1=1 & out2=1)";
    automaton name {
      states A B;  init A;
      edge A B "guard-expr";
      accept inf { A } fin { B };
      accept inf_edges { A->B, B->B } fin_edges { };
    }
    lc name;
    v} *)

type t = {
  p_fairness : Fair.syntactic list;
  p_ctl : (string * Ctl.t) list;
  p_automata : Autom.t list;
  p_lc : string list;  (** automata to check for language containment *)
}

exception Error of string

val parse : string -> t
val parse_file : string -> t
val find_automaton : t -> string -> Autom.t option
val empty : t
