type t = {
  p_name : string;
  p_ctl : Ctl.t option;
  p_autom : Autom.t option;
  p_doc : string;
}

let enot e = Expr.Not e
let eand a b = Expr.And (a, b)

let all_states_pair states =
  {
    Autom.inf_states = states;
    inf_edges = [];
    fin_states = [];
    fin_edges = [];
  }

let invariant ~name ok =
  {
    p_name = name;
    p_ctl = Some (Ctl.AG (Ctl.Prop ok));
    p_autom = Some (Autom.invariance ~name ~ok);
    p_doc = "invariant: " ^ Expr.to_string ok;
  }

let mutual_exclusion ~name a b =
  let t = invariant ~name (enot (eand a b)) in
  {
    t with
    p_doc =
      Printf.sprintf "mutual exclusion of %s and %s" (Expr.to_string a)
        (Expr.to_string b);
  }

let response ~name ~trigger ~response =
  let aut =
    {
      Autom.a_name = name;
      a_states = [ "idle"; "pending" ];
      a_init = [ "idle" ];
      a_edges =
        [
          (* an immediately-answered trigger never leaves idle *)
          {
            Autom.e_src = "idle";
            e_dst = "idle";
            e_guard = Expr.Or (enot trigger, eand trigger response);
          };
          {
            Autom.e_src = "idle";
            e_dst = "pending";
            e_guard = eand trigger (enot response);
          };
          { Autom.e_src = "pending"; e_dst = "idle"; e_guard = response };
          {
            Autom.e_src = "pending";
            e_dst = "pending";
            e_guard = enot response;
          };
        ];
      a_pairs =
        [
          {
            Autom.inf_states = [ "idle" ];
            inf_edges = [];
            fin_states = [];
            fin_edges = [];
          };
        ];
    }
  in
  {
    p_name = name;
    p_ctl = Some (Ctl.AG (Ctl.Imp (Ctl.Prop trigger, Ctl.AF (Ctl.Prop response))));
    p_autom = Some aut;
    p_doc =
      Printf.sprintf "%s is always followed by %s" (Expr.to_string trigger)
        (Expr.to_string response);
  }

let recurrence ~name p =
  let aut =
    {
      Autom.a_name = name;
      a_states = [ "wait"; "hit" ];
      a_init = [ "wait" ];
      a_edges =
        [
          { Autom.e_src = "wait"; e_dst = "wait"; e_guard = enot p };
          { Autom.e_src = "wait"; e_dst = "hit"; e_guard = p };
          { Autom.e_src = "hit"; e_dst = "hit"; e_guard = p };
          { Autom.e_src = "hit"; e_dst = "wait"; e_guard = enot p };
        ];
      a_pairs =
        [
          {
            Autom.inf_states = [ "hit" ];
            inf_edges = [];
            fin_states = [];
            fin_edges = [];
          };
        ];
    }
  in
  {
    p_name = name;
    p_ctl = Some (Ctl.AG (Ctl.AF (Ctl.Prop p)));
    p_autom = Some aut;
    p_doc = Expr.to_string p ^ " holds infinitely often";
  }

let stability ~name p =
  let aut =
    {
      Autom.a_name = name;
      a_states = [ "low"; "high" ];
      a_init = [ "low" ];
      a_edges =
        [
          { Autom.e_src = "low"; e_dst = "low"; e_guard = enot p };
          { Autom.e_src = "low"; e_dst = "high"; e_guard = p };
          { Autom.e_src = "high"; e_dst = "high"; e_guard = p };
          (* high with !p falls to the dead state via the default row *)
        ];
      a_pairs = [ all_states_pair [ "low"; "high" ] ];
    }
  in
  {
    p_name = name;
    p_ctl = Some (Ctl.AG (Ctl.Imp (Ctl.Prop p, Ctl.AG (Ctl.Prop p))));
    p_autom = Some aut;
    p_doc = "once " ^ Expr.to_string p ^ " holds, it holds forever";
  }

let precedence ~name ~first ~before =
  let aut =
    {
      Autom.a_name = name;
      a_states = [ "waiting"; "opened" ];
      a_init = [ "waiting" ];
      a_edges =
        [
          {
            Autom.e_src = "waiting";
            e_dst = "waiting";
            e_guard = eand (enot first) (enot before);
          };
          { Autom.e_src = "waiting"; e_dst = "opened"; e_guard = first };
          (* before without first: dead via default *)
          { Autom.e_src = "opened"; e_dst = "opened"; e_guard = Expr.True };
        ];
      a_pairs = [ all_states_pair [ "waiting"; "opened" ] ];
    }
  in
  {
    p_name = name;
    p_ctl = None;
    p_autom = Some aut;
    p_doc =
      Printf.sprintf "%s cannot occur before %s" (Expr.to_string before)
        (Expr.to_string first);
  }

let sequence ~name es =
  if es = [] then invalid_arg "Proplib.sequence: empty";
  let k = List.length es in
  let state i = Printf.sprintf "s%d" i in
  let states = List.init (k + 1) state in
  let es_arr = Array.of_list es in
  let none_of_rest i =
    (* none of e_i .. e_{k-1} *)
    let rec go j acc =
      if j >= k then acc else go (j + 1) (eand acc (enot es_arr.(j)))
    in
    go i Expr.True
  in
  let edges =
    List.concat
      (List.init k (fun i ->
           [
             { Autom.e_src = state i; e_dst = state (i + 1); e_guard = es_arr.(i) };
             {
               Autom.e_src = state i;
               e_dst = state i;
               e_guard = none_of_rest i;
             };
           ]))
    @ [ { Autom.e_src = state k; e_dst = state k; e_guard = Expr.True } ]
  in
  let aut =
    {
      Autom.a_name = name;
      a_states = states;
      a_init = [ state 0 ];
      a_edges = edges;
      a_pairs = [ all_states_pair states ];
    }
  in
  {
    p_name = name;
    p_ctl = None;
    p_autom = Some aut;
    p_doc =
      "events occur in order: "
      ^ String.concat " ; " (List.map Expr.to_string es);
  }

(* ------------------------------------------------------------------ *)
(* Rendering as PIF *)

let autom_to_pif (a : Autom.t) =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "automaton %s {\n" a.Autom.a_name;
  pf "  states %s;\n" (String.concat " " a.Autom.a_states);
  pf "  init %s;\n" (String.concat " " a.Autom.a_init);
  List.iter
    (fun (e : Autom.edge) ->
      pf "  edge %s %s \"%s\";\n" e.Autom.e_src e.Autom.e_dst
        (Expr.to_string e.Autom.e_guard))
    a.Autom.a_edges;
  List.iter
    (fun (p : Autom.accept_pair) ->
      let edge_set es =
        String.concat ", " (List.map (fun (s, d) -> s ^ "->" ^ d) es)
      in
      pf "  accept inf { %s }" (String.concat ", " p.Autom.inf_states);
      if p.Autom.inf_edges <> [] then
        pf " inf_edges { %s }" (edge_set p.Autom.inf_edges);
      pf " fin { %s }" (String.concat ", " p.Autom.fin_states);
      if p.Autom.fin_edges <> [] then
        pf " fin_edges { %s }" (edge_set p.Autom.fin_edges);
      pf ";\n")
    a.Autom.a_pairs;
  pf "}\n";
  Buffer.contents b

let to_pif ts =
  let b = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string b ("# " ^ t.p_doc ^ "\n");
      (match t.p_ctl with
      | Some f ->
          Buffer.add_string b
            (Printf.sprintf "ctl %s \"%s\";\n" t.p_name (Ctl.to_string f))
      | None -> ());
      (match t.p_autom with
      | Some a ->
          Buffer.add_string b (autom_to_pif a);
          Buffer.add_string b (Printf.sprintf "lc %s;\n" a.Autom.a_name)
      | None -> ());
      Buffer.add_char b '\n')
    ts;
  Buffer.contents b
