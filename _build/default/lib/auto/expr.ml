open Hsis_bdd
open Hsis_mv
open Hsis_blifmv
open Hsis_fsm

type t =
  | True
  | False
  | Eq of string * string
  | Neq of string * string
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Recursive descent; each level returns (expr, remaining tokens). *)
let rec parse_imp toks =
  let lhs, rest = parse_or toks in
  match rest with
  | Tok.Arrow :: rest ->
      let rhs, rest = parse_imp rest in
      (Imp (lhs, rhs), rest)
  | _ -> (lhs, rest)

and parse_or toks =
  let lhs, rest = parse_and toks in
  let rec loop lhs rest =
    match rest with
    | Tok.Bar :: rest ->
        let rhs, rest = parse_and rest in
        loop (Or (lhs, rhs)) rest
    | _ -> (lhs, rest)
  in
  loop lhs rest

and parse_and toks =
  let lhs, rest = parse_unary toks in
  let rec loop lhs rest =
    match rest with
    | Tok.Amp :: rest ->
        let rhs, rest = parse_unary rest in
        loop (And (lhs, rhs)) rest
    | _ -> (lhs, rest)
  in
  loop lhs rest

and parse_unary = function
  | Tok.Bang :: rest ->
      let e, rest = parse_unary rest in
      (Not e, rest)
  | Tok.Lparen :: rest -> (
      let e, rest = parse_imp rest in
      match rest with
      | Tok.Rparen :: rest -> (e, rest)
      | _ -> fail "expected )")
  | Tok.Ident "true" :: rest -> (True, rest)
  | Tok.Ident "false" :: rest -> (False, rest)
  | Tok.Ident name :: Tok.Eq :: Tok.Ident v :: rest -> (Eq (name, v), rest)
  | Tok.Ident name :: Tok.Neq :: Tok.Ident v :: rest -> (Neq (name, v), rest)
  | Tok.Ident name :: rest -> (Eq (name, "1"), rest)
  | t :: _ -> fail "unexpected token %s" (Tok.to_string t)
  | [] -> fail "unexpected end of expression"

let parse_tokens toks = parse_imp toks

let parse s =
  let toks = try Tok.tokenize s with Tok.Error m -> fail "%s" m in
  match parse_imp toks with
  | e, [] -> e
  | _, t :: _ -> fail "trailing token %s" (Tok.to_string t)

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Eq (s, v) -> s ^ "=" ^ v
  | Neq (s, v) -> s ^ "!=" ^ v
  | Not e -> "!(" ^ to_string e ^ ")"
  | And (a, b) -> "(" ^ to_string a ^ " & " ^ to_string b ^ ")"
  | Or (a, b) -> "(" ^ to_string a ^ " | " ^ to_string b ^ ")"
  | Imp (a, b) -> "(" ^ to_string a ^ " -> " ^ to_string b ^ ")"

let signals e =
  let rec go acc = function
    | True | False -> acc
    | Eq (s, _) | Neq (s, _) -> s :: acc
    | Not e -> go acc e
    | And (a, b) | Or (a, b) | Imp (a, b) -> go (go acc a) b
  in
  List.sort_uniq compare (go [] e)

let resolve net name v =
  match Net.find_signal net name with
  | None -> invalid_arg ("Expr: unknown signal " ^ name)
  | Some s -> (
      match Domain.index_of (Net.dom net s) v with
      | None -> invalid_arg ("Expr: signal " ^ name ^ " has no value " ^ v)
      | Some i -> (s, i))

let to_bdd sym e =
  let net = Sym.net sym in
  let man = Sym.man sym in
  let rec go = function
    | True -> Bdd.dtrue man
    | False -> Bdd.dfalse man
    | Eq (name, v) ->
        let s, i = resolve net name v in
        Enc.value_bdd (Sym.pres sym s) i
    | Neq (name, v) ->
        let s, i = resolve net name v in
        Bdd.dand
          (Bdd.dnot (Enc.value_bdd (Sym.pres sym s) i))
          (Enc.domain_constraint (Sym.pres sym s))
    | Not e -> Bdd.dnot (go e)
    | And (a, b) -> Bdd.dand (go a) (go b)
    | Or (a, b) -> Bdd.dor (go a) (go b)
    | Imp (a, b) -> Bdd.imp (go a) (go b)
  in
  go e

let eval net value e =
  let rec go = function
    | True -> true
    | False -> false
    | Eq (name, v) ->
        let s, i = resolve net name v in
        value s = i
    | Neq (name, v) ->
        let s, i = resolve net name v in
        value s <> i
    | Not e -> not (go e)
    | And (a, b) -> go a && go b
    | Or (a, b) -> go a || go b
    | Imp (a, b) -> (not (go a)) || go b
  in
  go e
