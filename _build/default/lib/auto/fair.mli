open Hsis_bdd
open Hsis_fsm

(** Fairness constraints (paper Sec. 5.1): the edge-Streett / edge-Rabin
    environment.  Constraints come in a syntactic form (conditions are
    {!Expr.t}) and a compiled form (conditions are state sets or edge sets
    over the symbolic space). *)

type 'c cond =
  | State of 'c  (** a condition on states *)
  | Edges of ('c * 'c) list
      (** a union of transition sets, each given as a from-condition and a
          to-condition *)

type 'c constr =
  | Inf of 'c cond
      (** positive (Büchi): the condition holds infinitely often *)
  | Not_forever of 'c
      (** negative state-subset constraint: runs that eventually stay in
          the subset forever are excluded *)
  | Streett of 'c cond * 'c cond
      (** (p, q): if p holds infinitely often then so does q *)

type syntactic = Expr.t constr

type compiled =
  | CInf_state of Bdd.t
  | CInf_edge of Bdd.t  (** over present and next state variables *)
  | CStreett of compiled_cond * compiled_cond

and compiled_cond = CState of Bdd.t | CEdge of Bdd.t

val state_set : Trans.t -> Expr.t -> Bdd.t
(** Lift a condition to state variables by existential abstraction. *)

val edge_set : Trans.t -> Expr.t * Expr.t -> Bdd.t
(** E(x, y) = from(x) /\ to(y); the to-condition may only mention state
    signals. *)

val compile : Trans.t -> syntactic -> compiled
val compile_all : Trans.t -> syntactic list -> compiled list
val pp_syntactic : Format.formatter -> syntactic -> unit
