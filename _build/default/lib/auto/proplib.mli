(** The library of commonly used properties the paper plans as future work
    (Sec. 8 item 8): parameterized templates, each available in both
    formalisms where expressible — a CTL formula and/or a deterministic
    edge-Rabin automaton — so novices need not write either by hand. *)

type t = {
  p_name : string;
  p_ctl : Ctl.t option;
  p_autom : Autom.t option;
  p_doc : string;
}

val invariant : name:string -> Expr.t -> t
(** [ok] holds in every reachable state (Figure 2's pattern). *)

val mutual_exclusion : name:string -> Expr.t -> Expr.t -> t
(** The two conditions never hold together. *)

val response : name:string -> trigger:Expr.t -> response:Expr.t -> t
(** Every trigger is eventually followed by the response
    (AG (trigger -> AF response); automaton form uses a Büchi-style
    acceptance forbidding an eventually-forever-pending trigger). *)

val recurrence : name:string -> Expr.t -> t
(** The condition holds infinitely often on every (fair) run. *)

val stability : name:string -> Expr.t -> t
(** Once the condition holds it holds forever
    (AG (p -> AG p); automaton: no p to !p edge accepted). *)

val precedence : name:string -> first:Expr.t -> before:Expr.t -> t
(** [before] cannot hold until [first] has held
    (automaton-only: sequencing is where automata shine, Sec. 5.2). *)

val sequence : name:string -> Expr.t list -> t
(** The conditions occur in order, each at most starting after the
    previous one was seen (automaton-only). *)

val to_pif : t list -> string
(** Render templates as a PIF source text (parseable by {!Pif.parse}). *)
