(** CTL formula syntax (paper Sec. 5.2); fair semantics are implemented by
    the model checker in [Hsis_check.Mc]. *)

type t =
  | Prop of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | EX of t
  | EF of t
  | EG of t
  | EU of t * t
  | AX of t
  | AF of t
  | AG of t
  | AU of t * t

exception Parse_error of string

val parse : string -> t
(** Temporal operators are prefixes binding like negation; until is written
    [E[p U q]] / [A[p U q]].  Example: [AG !(out1=1 & out2=1)]. *)

val to_string : t -> string

val is_invariance : t -> Expr.t option
(** [Some p] when the formula is [AG p] with [p] propositional — the fast
    path the paper optimizes (Sec. 5.2 item 3). *)

val universal_only : t -> bool
(** No existential quantifier under an even number of negations — the
    fragment eligible for early failure detection (Sec. 5.4). *)

val size : t -> int
