lib/auto/expr.mli: Bdd Hsis_bdd Hsis_blifmv Hsis_fsm Net Sym Tok
