lib/auto/ctl.ml: Expr Format Option Tok
