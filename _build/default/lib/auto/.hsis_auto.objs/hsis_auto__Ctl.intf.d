lib/auto/ctl.mli: Expr
