lib/auto/expr.ml: Bdd Domain Enc Format Hsis_bdd Hsis_blifmv Hsis_fsm Hsis_mv List Net Sym Tok
