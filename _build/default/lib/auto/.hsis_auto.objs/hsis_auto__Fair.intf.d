lib/auto/fair.mli: Bdd Expr Format Hsis_bdd Hsis_fsm Trans
