lib/auto/pif.mli: Autom Ctl Fair
