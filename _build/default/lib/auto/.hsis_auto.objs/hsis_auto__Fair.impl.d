lib/auto/fair.ml: Bdd Expr Format Hsis_bdd Hsis_blifmv Hsis_fsm List Printf String Sym Trans
