lib/auto/proplib.mli: Autom Ctl Expr
