lib/auto/autom.ml: Ast Domain Expr Fair Fun Hsis_blifmv Hsis_mv List Net Option
