lib/auto/pif.ml: Autom Ctl Expr Fair Format List Printf Tok
