lib/auto/tok.mli:
