lib/auto/tok.ml: List Printf String
