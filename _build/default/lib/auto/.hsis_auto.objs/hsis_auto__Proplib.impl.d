lib/auto/proplib.ml: Array Autom Buffer Ctl Expr List Printf String
