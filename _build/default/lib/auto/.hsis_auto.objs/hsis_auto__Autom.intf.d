lib/auto/autom.mli: Ast Expr Fair Hsis_blifmv
