type t =
  | Prop of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | EX of t
  | EF of t
  | EG of t
  | EU of t * t
  | AX of t
  | AF of t
  | AG of t
  | AU of t * t

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* The grammar layers boolean connectives over unary-ish temporal atoms.
   A temporal operator applies to the next unary item, like negation. *)
let rec parse_imp toks =
  let lhs, rest = parse_or toks in
  match rest with
  | Tok.Arrow :: rest ->
      let rhs, rest = parse_imp rest in
      (Imp (lhs, rhs), rest)
  | _ -> (lhs, rest)

and parse_or toks =
  let lhs, rest = parse_and toks in
  let rec loop lhs = function
    | Tok.Bar :: rest ->
        let rhs, rest = parse_and rest in
        loop (Or (lhs, rhs)) rest
    | rest -> (lhs, rest)
  in
  loop lhs rest

and parse_and toks =
  let lhs, rest = parse_unary toks in
  let rec loop lhs = function
    | Tok.Amp :: rest ->
        let rhs, rest = parse_unary rest in
        loop (And (lhs, rhs)) rest
    | rest -> (lhs, rest)
  in
  loop lhs rest

and parse_unary = function
  | Tok.Bang :: rest ->
      let e, rest = parse_unary rest in
      (Not e, rest)
  | Tok.Ident "AG" :: rest ->
      let e, rest = parse_unary rest in
      (AG e, rest)
  | Tok.Ident "AF" :: rest ->
      let e, rest = parse_unary rest in
      (AF e, rest)
  | Tok.Ident "AX" :: rest ->
      let e, rest = parse_unary rest in
      (AX e, rest)
  | Tok.Ident "EG" :: rest ->
      let e, rest = parse_unary rest in
      (EG e, rest)
  | Tok.Ident "EF" :: rest ->
      let e, rest = parse_unary rest in
      (EF e, rest)
  | Tok.Ident "EX" :: rest ->
      let e, rest = parse_unary rest in
      (EX e, rest)
  | Tok.Ident ("E" | "A") :: Tok.Lbracket :: _ as toks -> parse_until toks
  | Tok.Lparen :: rest -> (
      let e, rest = parse_imp rest in
      match rest with
      | Tok.Rparen :: rest -> (e, rest)
      | _ -> fail "expected )")
  | Tok.Ident "true" :: rest -> (Prop Expr.True, rest)
  | Tok.Ident "false" :: rest -> (Prop Expr.False, rest)
  | Tok.Ident n :: Tok.Eq :: Tok.Ident v :: rest -> (Prop (Expr.Eq (n, v)), rest)
  | Tok.Ident n :: Tok.Neq :: Tok.Ident v :: rest ->
      (Prop (Expr.Neq (n, v)), rest)
  | Tok.Ident n :: rest -> (Prop (Expr.Eq (n, "1")), rest)
  | t :: _ -> fail "unexpected token %s" (Tok.to_string t)
  | [] -> fail "unexpected end of formula"

and parse_until = function
  | Tok.Ident q :: Tok.Lbracket :: rest -> (
      let p, rest = parse_imp rest in
      match rest with
      | Tok.Ident "U" :: rest -> (
          let r, rest = parse_imp rest in
          match rest with
          | Tok.Rbracket :: rest ->
              if q = "E" then (EU (p, r), rest) else (AU (p, r), rest)
          | _ -> fail "expected ] in until")
      | _ -> fail "expected U in until")
  | _ -> fail "malformed until"

let parse s =
  let toks = try Tok.tokenize s with Tok.Error m -> fail "%s" m in
  match parse_imp toks with
  | e, [] -> e
  | _, t :: _ -> fail "trailing token %s" (Tok.to_string t)

let rec to_string = function
  | Prop e -> Expr.to_string e
  | Not f -> "!(" ^ to_string f ^ ")"
  | And (a, b) -> "(" ^ to_string a ^ " & " ^ to_string b ^ ")"
  | Or (a, b) -> "(" ^ to_string a ^ " | " ^ to_string b ^ ")"
  | Imp (a, b) -> "(" ^ to_string a ^ " -> " ^ to_string b ^ ")"
  | EX f -> "EX " ^ to_string f
  | EF f -> "EF " ^ to_string f
  | EG f -> "EG " ^ to_string f
  | EU (a, b) -> "E[" ^ to_string a ^ " U " ^ to_string b ^ "]"
  | AX f -> "AX " ^ to_string f
  | AF f -> "AF " ^ to_string f
  | AG f -> "AG " ^ to_string f
  | AU (a, b) -> "A[" ^ to_string a ^ " U " ^ to_string b ^ "]"

let rec as_prop = function
  | Prop e -> Some e
  | Not f -> Option.map (fun e -> Expr.Not e) (as_prop f)
  | And (a, b) -> (
      match (as_prop a, as_prop b) with
      | Some x, Some y -> Some (Expr.And (x, y))
      | _ -> None)
  | Or (a, b) -> (
      match (as_prop a, as_prop b) with
      | Some x, Some y -> Some (Expr.Or (x, y))
      | _ -> None)
  | Imp (a, b) -> (
      match (as_prop a, as_prop b) with
      | Some x, Some y -> Some (Expr.Imp (x, y))
      | _ -> None)
  | EX _ | EF _ | EG _ | EU _ | AX _ | AF _ | AG _ | AU _ -> None

let is_invariance = function
  | AG f -> as_prop f
  | _ -> None

let universal_only f =
  (* positive = under an even number of negations *)
  let rec go positive = function
    | Prop _ -> true
    | Not f -> go (not positive) f
    | And (a, b) | Or (a, b) -> go positive a && go positive b
    | Imp (a, b) -> go (not positive) a && go positive b
    | AX f | AF f | AG f -> if positive then go positive f else false
    | AU (a, b) -> if positive then go positive a && go positive b else false
    | EX f | EF f | EG f -> if positive then false else go positive f
    | EU (a, b) ->
        if positive then false else go positive a && go positive b
  in
  go true f

let rec size = function
  | Prop _ -> 1
  | Not f | EX f | EF f | EG f | AX f | AF f | AG f -> 1 + size f
  | And (a, b) | Or (a, b) | Imp (a, b) | EU (a, b) | AU (a, b) ->
      1 + size a + size b
