open Hsis_bdd
open Hsis_fsm

type 'c cond = State of 'c | Edges of ('c * 'c) list

type 'c constr =
  | Inf of 'c cond
  | Not_forever of 'c
  | Streett of 'c cond * 'c cond

type syntactic = Expr.t constr

type compiled =
  | CInf_state of Bdd.t
  | CInf_edge of Bdd.t
  | CStreett of compiled_cond * compiled_cond

and compiled_cond = CState of Bdd.t | CEdge of Bdd.t

let state_set trans e =
  Trans.abstract_to_states trans (Expr.to_bdd (Trans.sym trans) e)

(* Does the expression mention only latch outputs?  Conditions on inputs or
   internal signals must be compiled to edge sets so they stay correlated
   with the transition that reads them. *)
let state_only trans e =
  let sym = Trans.sym trans in
  List.for_all
    (fun name ->
      match Hsis_blifmv.Net.find_signal (Sym.net sym) name with
      | Some s -> Sym.is_state sym s
      | None -> invalid_arg ("Fair: unknown signal " ^ name))
    (Expr.signals e)

let edge_set trans (from_e, to_e) =
  let sym = Trans.sym trans in
  if not (state_only trans to_e) then
    invalid_arg "Fair: edge to-condition mentions non-state signal";
  let from_edges =
    Trans.abstract_to_edges trans (Expr.to_bdd sym from_e)
  in
  let to_states = state_set trans to_e in
  Bdd.dand from_edges (Bdd.permute (Sym.pres_to_next sym) to_states)

let edges_union trans pairs =
  List.fold_left
    (fun acc p -> Bdd.dor acc (edge_set trans p))
    (Bdd.dfalse (Sym.man (Trans.sym trans)))
    pairs

let compile_cond trans = function
  | State e ->
      if state_only trans e then CState (state_set trans e)
      else
        CEdge (Trans.abstract_to_edges trans (Expr.to_bdd (Trans.sym trans) e))
  | Edges pairs -> CEdge (edges_union trans pairs)

let compile trans = function
  | Inf (State e) ->
      if state_only trans e then CInf_state (state_set trans e)
      else
        CInf_edge
          (Trans.abstract_to_edges trans (Expr.to_bdd (Trans.sym trans) e))
  | Inf (Edges pairs) -> CInf_edge (edges_union trans pairs)
  | Not_forever e ->
      (* Excluding "eventually always e" is requiring "infinitely often
         not-e"; for conditions on non-state signals that is an edge
         constraint on steps that can be labeled with not-e. *)
      if state_only trans e then CInf_state (Bdd.dnot (state_set trans e))
      else
        CInf_edge
          (Trans.abstract_to_edges trans
             (Bdd.dnot (Expr.to_bdd (Trans.sym trans) e)))
  | Streett (p, q) -> CStreett (compile_cond trans p, compile_cond trans q)

let compile_all trans cs = List.map (compile trans) cs

let pp_cond fmt = function
  | State e -> Format.fprintf fmt "state \"%s\"" (Expr.to_string e)
  | Edges pairs ->
      Format.fprintf fmt "edges {%s}"
        (String.concat "; "
           (List.map
              (fun (f, t) ->
                Printf.sprintf "\"%s\" -> \"%s\"" (Expr.to_string f)
                  (Expr.to_string t))
              pairs))

let pp_syntactic fmt = function
  | Inf c -> Format.fprintf fmt "inf %a" pp_cond c
  | Not_forever e ->
      Format.fprintf fmt "not-forever \"%s\"" (Expr.to_string e)
  | Streett (p, q) ->
      Format.fprintf fmt "streett (%a, %a)" pp_cond p pp_cond q
