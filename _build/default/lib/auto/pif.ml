type t = {
  p_fairness : Fair.syntactic list;
  p_ctl : (string * Ctl.t) list;
  p_automata : Autom.t list;
  p_lc : string list;
}

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let empty = { p_fairness = []; p_ctl = []; p_automata = []; p_lc = [] }

let expr_of s =
  try Expr.parse s with Expr.Parse_error m -> fail "bad expression %S: %s" s m

let ctl_of s =
  try Ctl.parse s with Ctl.Parse_error m -> fail "bad CTL %S: %s" s m

(* Parse a semicolon-terminated statement; return remaining tokens. *)
let rec parse_stmts acc toks =
  match toks with
  | [] -> acc
  | Tok.Ident "fairness" :: rest -> (
      match rest with
      | Tok.Ident "inf" :: Tok.Str e :: Tok.Semi :: rest ->
          parse_stmts
            { acc with p_fairness = Fair.Inf (Fair.State (expr_of e)) :: acc.p_fairness }
            rest
      | Tok.Ident "inf_edge" :: Tok.Str f :: Tok.Str t :: Tok.Semi :: rest ->
          parse_stmts
            {
              acc with
              p_fairness =
                Fair.Inf (Fair.Edges [ (expr_of f, expr_of t) ])
                :: acc.p_fairness;
            }
            rest
      | Tok.Ident "notforever" :: Tok.Str e :: Tok.Semi :: rest ->
          parse_stmts
            { acc with p_fairness = Fair.Not_forever (expr_of e) :: acc.p_fairness }
            rest
      | Tok.Ident "streett" :: Tok.Str p :: Tok.Str q :: Tok.Semi :: rest ->
          parse_stmts
            {
              acc with
              p_fairness =
                Fair.Streett (Fair.State (expr_of p), Fair.State (expr_of q))
                :: acc.p_fairness;
            }
            rest
      | _ -> fail "malformed fairness statement")
  | Tok.Ident "ctl" :: Tok.Ident name :: Tok.Str f :: Tok.Semi :: rest ->
      parse_stmts { acc with p_ctl = (name, ctl_of f) :: acc.p_ctl } rest
  | Tok.Ident "ctl" :: Tok.Str f :: Tok.Semi :: rest ->
      let name = Printf.sprintf "ctl%d" (List.length acc.p_ctl + 1) in
      parse_stmts { acc with p_ctl = (name, ctl_of f) :: acc.p_ctl } rest
  | Tok.Ident "lc" :: Tok.Ident name :: Tok.Semi :: rest ->
      parse_stmts { acc with p_lc = name :: acc.p_lc } rest
  | Tok.Ident "automaton" :: Tok.Ident name :: Tok.Lbrace :: rest ->
      let aut, rest = parse_automaton name rest in
      parse_stmts { acc with p_automata = aut :: acc.p_automata } rest
  | t :: _ -> fail "unexpected token %s" (Tok.to_string t)

and parse_automaton name toks =
  let states = ref [] in
  let init = ref [] in
  let edges = ref [] in
  let pairs = ref [] in
  let rec idents acc = function
    | Tok.Ident s :: rest -> idents (s :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let parse_state_set toks =
    match toks with
    | Tok.Lbrace :: rest ->
        let rec go acc = function
          | Tok.Rbrace :: rest -> (List.rev acc, rest)
          | Tok.Ident s :: rest -> go (s :: acc) rest
          | Tok.Comma :: rest -> go acc rest
          | _ -> fail "malformed state set in automaton %s" name
        in
        go [] rest
    | _ -> fail "expected { in automaton %s" name
  in
  let parse_edge_set toks =
    match toks with
    | Tok.Lbrace :: rest ->
        let rec go acc = function
          | Tok.Rbrace :: rest -> (List.rev acc, rest)
          | Tok.Ident s :: Tok.Arrow :: Tok.Ident d :: rest ->
              go ((s, d) :: acc) rest
          | Tok.Comma :: rest -> go acc rest
          | _ -> fail "malformed edge set in automaton %s" name
        in
        go [] rest
    | _ -> fail "expected { in automaton %s" name
  in
  let rec body toks =
    match toks with
    | Tok.Rbrace :: rest ->
        ( {
            Autom.a_name = name;
            a_states = List.rev !states;
            a_init = List.rev !init;
            a_edges = List.rev !edges;
            a_pairs = List.rev !pairs;
          },
          rest )
    | Tok.Ident "states" :: rest ->
        let ss, rest = idents [] rest in
        if ss = [] then fail "empty states list in automaton %s" name;
        states := List.rev_append ss !states;
        expect_semi rest
    | Tok.Ident "init" :: rest ->
        let ss, rest = idents [] rest in
        if ss = [] then fail "empty init list in automaton %s" name;
        init := List.rev_append ss !init;
        expect_semi rest
    | Tok.Ident "edge" :: Tok.Ident s :: Tok.Ident d :: Tok.Str g :: rest ->
        edges :=
          { Autom.e_src = s; e_dst = d; e_guard = expr_of g } :: !edges;
        expect_semi rest
    | Tok.Ident "accept" :: rest ->
        let pair =
          ref
            {
              Autom.inf_states = [];
              inf_edges = [];
              fin_states = [];
              fin_edges = [];
            }
        in
        let rec parts toks =
          match toks with
          | Tok.Ident "inf" :: rest ->
              let ss, rest = parse_state_set rest in
              pair := { !pair with Autom.inf_states = ss };
              parts rest
          | Tok.Ident "fin" :: rest ->
              let ss, rest = parse_state_set rest in
              pair := { !pair with Autom.fin_states = ss };
              parts rest
          | Tok.Ident "inf_edges" :: rest ->
              let es, rest = parse_edge_set rest in
              pair := { !pair with Autom.inf_edges = es };
              parts rest
          | Tok.Ident "fin_edges" :: rest ->
              let es, rest = parse_edge_set rest in
              pair := { !pair with Autom.fin_edges = es };
              parts rest
          | Tok.Semi :: rest ->
              pairs := !pair :: !pairs;
              rest
          | _ -> fail "malformed accept in automaton %s" name
        in
        body (parts rest)
    | t :: _ ->
        fail "unexpected token %s in automaton %s" (Tok.to_string t) name
    | [] -> fail "unterminated automaton %s" name
  and expect_semi = function
    | Tok.Semi :: rest -> body rest
    | _ -> fail "expected ; in automaton %s" name
  in
  body toks

let parse src =
  let toks = try Tok.tokenize src with Tok.Error m -> fail "%s" m in
  let acc = parse_stmts empty toks in
  {
    p_fairness = List.rev acc.p_fairness;
    p_ctl = List.rev acc.p_ctl;
    p_automata = List.rev acc.p_automata;
    p_lc = List.rev acc.p_lc;
  }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src

let find_automaton t name =
  List.find_opt (fun a -> a.Autom.a_name = name) t.p_automata
