open Hsis_blifmv

(** Explicit ω-automata with edge-Rabin acceptance, used as properties in
    the language-containment paradigm (paper Sec. 5.2, Figure 2).

    An automaton observes the system's signals through its edge guards.
    For checking, it is compiled into a BLIF-MV monitor (one latch + one
    table) and composed with the system — exactly how HSIS's PIF properties
    were "written in Verilog" with acceptance in PIF (Sec. 7). *)

type edge = { e_src : string; e_dst : string; e_guard : Expr.t }

type accept_pair = {
  inf_states : string list;
  inf_edges : (string * string) list;
  fin_states : string list;
  fin_edges : (string * string) list;
}
(** Rabin acceptance: a run is accepted iff {e some} pair has its [inf]
    part visited infinitely often and its [fin] part visited only finitely
    often.  The common "dotted box" invariance automaton of Figure 2 is
    [inf_states = interior; fin_states = exterior]. *)

type t = {
  a_name : string;
  a_states : string list;
  a_init : string list;
  a_edges : edge list;
  a_pairs : accept_pair list;
}

val dead_state : string
(** Implicit reject sink added when the automaton is incomplete. *)

val validate : t -> (unit, string) result
(** Structural sanity: non-empty states, known endpoints, known acceptance
    states, initial states declared, no reserved names. *)

val monitor_signal : t -> string
(** Name of the latch output added by {!compose}. *)

val compose : Ast.model -> t -> Ast.model
(** Append the compiled monitor to a flat system model.  Guards are
    expanded into table rows by enumerating the guard's support valuations;
    uncovered input patterns fall to {!dead_state} via [.default]. *)

val complement_constraints : t -> Fair.syntactic list
(** Streett constraints (over the composed model) characterizing the
    complement of the automaton's language — a deterministic Rabin
    automaton complements into a Streett condition, which is what the
    emptiness check conjoins with the system's own fairness. *)

val invariance : name:string -> ok:Expr.t -> t
(** The Figure-2 pattern: a two-state automaton accepting exactly the runs
    where [ok] holds forever. *)
