open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm

(** Propositional conditions over network signals: the atoms of CTL
    formulas, automaton edge guards and fairness constraints. *)

type t =
  | True
  | False
  | Eq of string * string  (** signal = value *)
  | Neq of string * string
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t

exception Parse_error of string

val parse : string -> t
(** Grammar (loosest to tightest): [e -> e] (right-assoc), [e | e], [e & e],
    [!e], atoms.  An atom is [name=value], [name!=value], [true], [false],
    or a bare [name] which abbreviates [name=1]. *)

val parse_tokens : Tok.t list -> t * Tok.t list
(** Parse a leading expression, returning the rest (used by CTL/PIF). *)

val to_string : t -> string

val signals : t -> string list
(** Signal names mentioned, sorted and deduplicated. *)

val to_bdd : Sym.t -> t -> Bdd.t
(** Over the present encodings of the mentioned signals (not lifted to
    state variables; see {!Hsis_fsm.Trans.abstract_to_states}).
    Raises [Invalid_argument] on unknown signals or values. *)

val eval : Net.t -> (int -> int) -> t -> bool
(** Evaluate under concrete signal values (explicit engine). *)
