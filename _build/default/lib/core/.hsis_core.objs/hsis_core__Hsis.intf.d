lib/core/hsis.mli: Ast Autom Bdd Ctl Fair Format Hsis_auto Hsis_bdd Hsis_bisim Hsis_blifmv Hsis_check Hsis_debug Hsis_fsm Hsis_sim Mcdbg Net Pif Reach Trace Trans
