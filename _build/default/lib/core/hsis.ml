open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug

type design = {
  flat : Ast.model;
  net : Net.t;
  trans : Trans.t;
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
  mutable reach_cache : Reach.t option;
}

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let read_flat ?(heuristic = Trans.Min_width) ?verilog_lines flat =
  let blifmv_lines = Ast.line_count (Printer.model_to_string flat) in
  let (net, trans), read_time =
    timed (fun () ->
        let net = Net.of_model flat in
        let man = Bdd.new_man () in
        let sym = Sym.make man net in
        let trans = Trans.build ~heuristic sym in
        (* building the relation BDDs is part of "read" in Table 1 *)
        ignore (Trans.parts trans);
        (net, trans))
  in
  { flat; net; trans; verilog_lines; blifmv_lines; read_time;
    reach_cache = None }

let read_blifmv ?heuristic src =
  let ast = Parser.parse src in
  read_flat ?heuristic (Flatten.flatten ast)

let read_verilog ?heuristic src =
  let verilog_lines = Ast.line_count src in
  let ast = Hsis_verilog.Elab.compile src in
  read_flat ?heuristic ~verilog_lines (Flatten.flatten ast)

let reachable d =
  match d.reach_cache with
  | Some r -> r
  | None ->
      let r = Reach.compute d.trans (Trans.initial d.trans) in
      d.reach_cache <- Some r;
      r

let reached_states d = Reach.count_states d.trans (reachable d).Reach.reachable

type ctl_result = {
  cr_name : string;
  cr_formula : Ctl.t;
  cr_holds : bool;
  cr_time : float;
  cr_early_step : int option;
  cr_explanation : Mcdbg.explanation option;
}

type lc_result = {
  lr_name : string;
  lr_holds : bool;
  lr_time : float;
  lr_early_step : int option;
  lr_trace : Trace.t option;
  lr_trans : Trans.t;
}

let check_ctl ?(fairness = []) ?(early_failure = true) ?(explain = false) d
    ~name formula =
  let reach = reachable d in
  let (outcome, compiled), cr_time =
    timed (fun () ->
        let compiled = Fair.compile_all d.trans fairness in
        (Mc.check ~fairness:compiled ~early_failure ~reach d.trans formula,
         compiled))
  in
  let cr_explanation =
    if explain && not outcome.Mc.holds then begin
      let ctx = Mcdbg.make ~fairness:compiled d.trans ~reach in
      Mcdbg.explain_failure ctx formula outcome
    end
    else None
  in
  {
    cr_name = name;
    cr_formula = formula;
    cr_holds = outcome.Mc.holds;
    cr_time;
    cr_early_step = outcome.Mc.early_failure_step;
    cr_explanation;
  }

let check_lc ?(fairness = []) ?(early_failure = true) ?(trace = true) d aut =
  let outcome, lr_time =
    timed (fun () -> Lc.check ~fairness ~early_failure d.flat aut)
  in
  let lr_trace =
    if trace && not outcome.Lc.holds then
      try
        Some
          (Trace.fair_lasso outcome.Lc.env ~reach:outcome.Lc.reach
             ~fair:outcome.Lc.fair)
      with Not_found -> None
    else None
  in
  {
    lr_name = aut.Autom.a_name;
    lr_holds = outcome.Lc.holds;
    lr_time;
    lr_early_step = outcome.Lc.early_failure_step;
    lr_trace;
    lr_trans = outcome.Lc.trans;
  }

type report = {
  design_name : string;
  ctl : ctl_result list;
  lc : lc_result list;
  mc_time : float;
  lc_time : float;
}

let run_pif ?(early_failure = true) ?(witnesses = false) d (pif : Pif.t) =
  let ctl =
    List.map
      (fun (name, f) ->
        check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
          ~explain:witnesses d ~name f)
      pif.Pif.p_ctl
  in
  let lc =
    List.map
      (fun name ->
        match Pif.find_automaton pif name with
        | Some aut ->
            check_lc ~fairness:pif.Pif.p_fairness ~early_failure
              ~trace:witnesses d aut
        | None -> invalid_arg ("run_pif: unknown automaton " ^ name))
      pif.Pif.p_lc
  in
  {
    design_name = d.flat.Ast.m_name;
    ctl;
    lc;
    mc_time = List.fold_left (fun acc r -> acc +. r.cr_time) 0.0 ctl;
    lc_time = List.fold_left (fun acc r -> acc +. r.lr_time) 0.0 lc;
  }

let simulator d = Hsis_sim.Simulator.create d.net

let bisimulation ?class_cap d =
  Hsis_bisim.Bisim.compute ?class_cap d.trans
    ~reach:(reachable d).Reach.reachable

let minimize d =
  Hsis_bisim.Dontcare.with_reachable d.trans
    ~reach:(reachable d).Reach.reachable

let stats d = Bdd.stats (Trans.man d.trans)

let pp_report fmt r =
  Format.fprintf fmt "design %s:@." r.design_name;
  List.iter
    (fun c ->
      Format.fprintf fmt "  ctl %-24s %-6s %6.3fs%s@." c.cr_name
        (if c.cr_holds then "passed" else "FAILED")
        c.cr_time
        (match c.cr_early_step with
        | Some k -> Printf.sprintf " (early failure at step %d)" k
        | None -> ""))
    r.ctl;
  List.iter
    (fun l ->
      Format.fprintf fmt "  lc  %-24s %-6s %6.3fs%s@." l.lr_name
        (if l.lr_holds then "passed" else "FAILED")
        l.lr_time
        (match l.lr_early_step with
        | Some k -> Printf.sprintf " (early failure at step %d)" k
        | None -> ""))
    r.lc
