(** Recursive-descent parser for the supported Verilog subset. *)

exception Error of int * string

val parse : string -> Vast.design
val parse_file : string -> Vast.design
