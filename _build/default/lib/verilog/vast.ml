type unop = Lnot

type binop = Add | Sub | And | Or | Xor | Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Id of string
  | Int of int
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr
  | Nd of expr list

type stmt =
  | Block of stmt list
  | If of expr * stmt * stmt option
  | Case of expr * (expr list * stmt) list * stmt option
  | Assign of string * expr

type decl_kind = Input | Output | Wire | Reg

type decl = {
  d_kind : decl_kind;
  d_name : string;
  d_width : int;
  d_enum : string list option;
}

type always_kind = Comb | Seq

type instance = {
  i_module : string;
  i_name : string;
  i_conns : (string * string) list;
}

type module_ = {
  m_name : string;
  m_ports : string list;
  m_decls : decl list;
  m_assigns : (string * expr) list;
  m_always : (always_kind * stmt) list;
  m_initials : (string * expr) list;
  m_instances : instance list;
}

type design = { modules : module_ list }

let find_module d name = List.find_opt (fun m -> m.m_name = name) d.modules
