(** Verilog tokenizer. *)

type token =
  | ID of string
  | NUM of int
  | KW of string  (** reserved word *)
  | SYM of string  (** punctuation / operator, e.g. "<=", "==", "(" *)
  | EOF

exception Error of int * string
(** Line and message. *)

val tokenize : string -> (token * int) list
(** Tokens with their line numbers, ending with [EOF]. *)

val keywords : string list
