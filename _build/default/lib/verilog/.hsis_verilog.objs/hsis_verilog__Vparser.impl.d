lib/verilog/vparser.ml: Format List Vast Vlexer
