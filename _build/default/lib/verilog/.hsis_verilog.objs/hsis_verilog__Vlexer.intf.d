lib/verilog/vlexer.mli:
