lib/verilog/elab.ml: Ast Bool Format Hashtbl Hsis_blifmv List Map Option Printer Printf String Vast Vparser
