lib/verilog/elab.mli: Ast Hsis_blifmv Vast
