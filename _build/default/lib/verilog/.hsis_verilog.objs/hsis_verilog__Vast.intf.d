lib/verilog/vast.mli:
