lib/verilog/vast.ml: List
