lib/verilog/vparser.mli: Vast
