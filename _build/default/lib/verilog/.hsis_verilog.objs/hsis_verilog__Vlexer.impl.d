lib/verilog/vlexer.ml: List Printf String
