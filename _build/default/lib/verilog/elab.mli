open Hsis_blifmv

(** Elaboration of the Verilog subset into BLIF-MV (the vl2mv step of the
    paper's Fig. 1).  Each operator becomes one small table; [$ND] becomes a
    non-deterministic table; sequential always-blocks become latches whose
    next-state expressions merge the branch structure; [initial] gives
    latch reset values (possibly non-deterministic via [$ND]). *)

exception Error of string

val elaborate : Vast.design -> Ast.t
(** One BLIF-MV model per Verilog module; the root is the first module.
    Signals named as a [posedge] clock are dropped (the BLIF-MV clock is
    implicit). *)

val compile : string -> Ast.t
(** Parse + elaborate a Verilog source text. *)

val to_blifmv : string -> string
(** End-to-end translation to BLIF-MV text (the [vl2mv] tool). *)
