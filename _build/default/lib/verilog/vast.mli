(** Abstract syntax of the supported Verilog subset (paper Sec. 3): the
    synthesizable core, extended with [$ND(...)] non-determinism (after
    Balarin-York) and [enum] declarations. *)

type unop = Lnot  (** [!] / [~] (same thing on our value domains) *)

type binop =
  | Add
  | Sub
  | And  (** [&] / [&&] *)
  | Or  (** [|] / [||] *)
  | Xor
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Id of string  (** signal or enum literal; resolved at elaboration *)
  | Int of int
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr
  | Nd of expr list  (** [$ND(e1, ..., en)] *)

type stmt =
  | Block of stmt list
  | If of expr * stmt * stmt option
  | Case of expr * (expr list * stmt) list * stmt option
  | Assign of string * expr  (** [x <= e] or [x = e] *)

type decl_kind = Input | Output | Wire | Reg

type decl = {
  d_kind : decl_kind;
  d_name : string;
  d_width : int;  (** bits; 1 for scalars *)
  d_enum : string list option;  (** enum value names, overrides width *)
}

type always_kind =
  | Comb  (** combinational: [always] sensitive to everything *)
  | Seq  (** sequential: [always] on [posedge clk] *)

type instance = {
  i_module : string;
  i_name : string;
  i_conns : (string * string) list;  (** .formal(actual) *)
}

type module_ = {
  m_name : string;
  m_ports : string list;
  m_decls : decl list;
  m_assigns : (string * expr) list;
  m_always : (always_kind * stmt) list;
  m_initials : (string * expr) list;  (** reset values; may be [$ND] *)
  m_instances : instance list;
}

type design = { modules : module_ list }

val find_module : design -> string -> module_ option
