type token = ID of string | NUM of int | KW of string | SYM of string | EOF

exception Error of int * string

let keywords =
  [
    "module"; "endmodule"; "input"; "output"; "wire"; "reg"; "always";
    "posedge"; "negedge"; "if"; "else"; "case"; "endcase"; "default";
    "begin"; "end"; "assign"; "initial"; "enum"; "parameter";
  ]

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then raise (Error (!line, "unterminated comment"))
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then incr line;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then push (KW word) else push (ID word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '_') do
        incr i
      done;
      let digits = String.sub src start (!i - start) in
      (* sized literal like 4'b1010 / 3'd5 / 2'h3 *)
      if !i < n && src.[!i] = '\'' then begin
        incr i;
        if !i >= n then raise (Error (!line, "bad sized literal"));
        let base = src.[!i] in
        incr i;
        let vstart = !i in
        while
          !i < n
          && (is_digit src.[!i]
             || (src.[!i] >= 'a' && src.[!i] <= 'f')
             || (src.[!i] >= 'A' && src.[!i] <= 'F')
             || src.[!i] = '_')
        do
          incr i
        done;
        let value = String.sub src vstart (!i - vstart) in
        let value = String.concat "" (String.split_on_char '_' value) in
        let v =
          match base with
          | 'b' | 'B' -> int_of_string ("0b" ^ value)
          | 'h' | 'H' -> int_of_string ("0x" ^ value)
          | 'd' | 'D' -> int_of_string value
          | 'o' | 'O' -> int_of_string ("0o" ^ value)
          | c -> raise (Error (!line, Printf.sprintf "bad base '%c'" c))
        in
        push (NUM v)
      end
      else
        push (NUM (int_of_string (String.concat "" (String.split_on_char '_' digits))))
    end
    else begin
      let two =
        match peek 1 with
        | Some c2 -> Printf.sprintf "%c%c" c c2
        | None -> ""
      in
      match two with
      | "<=" | "==" | "!=" | "&&" | "||" | ">=" | "@(" ->
          (* "@(" split into two symbols below; handle multichar ops *)
          if two = "@(" then begin
            push (SYM "@");
            incr i
          end
          else begin
            push (SYM two);
            i := !i + 2
          end
      | _ -> (
          incr i;
          match c with
          | '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | ':' | '.' | '='
          | '!' | '~' | '&' | '|' | '^' | '+' | '-' | '<' | '>' | '?' | '@'
          | '*' | '#' | '\'' ->
              push (SYM (String.make 1 c))
          | c -> raise (Error (!line, Printf.sprintf "unexpected character %c" c)))
    end
  done;
  push EOF;
  List.rev !toks
