open Vast

exception Error of int * string

type stream = { mutable toks : (Vlexer.token * int) list }

let fail_at line fmt =
  Format.kasprintf (fun s -> raise (Error (line, s))) fmt

let peek st =
  match st.toks with
  | (t, l) :: _ -> (t, l)
  | [] -> (Vlexer.EOF, 0)

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let next st =
  let t, l = peek st in
  advance st;
  (t, l)

let expect_sym st s =
  match next st with
  | Vlexer.SYM s', _ when s' = s -> ()
  | t, l -> fail_at l "expected '%s', got %s" s (match t with
      | Vlexer.ID x -> x
      | Vlexer.KW x -> x
      | Vlexer.SYM x -> "'" ^ x ^ "'"
      | Vlexer.NUM n -> string_of_int n
      | Vlexer.EOF -> "end of file")

let expect_kw st k =
  match next st with
  | Vlexer.KW k', _ when k' = k -> ()
  | _, l -> fail_at l "expected keyword %s" k

let expect_id st =
  match next st with
  | Vlexer.ID x, _ -> x
  | _, l -> fail_at l "expected identifier"

let accept_sym st s =
  match peek st with
  | Vlexer.SYM s', _ when s' = s ->
      advance st;
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions, precedence climbing *)

let rec parse_expr st = parse_cond st

and parse_cond st =
  let c = parse_or st in
  if accept_sym st "?" then begin
    let t = parse_expr st in
    expect_sym st ":";
    let e = parse_cond st in
    Cond (c, t, e)
  end
  else c

and parse_or st =
  let rec loop lhs =
    match peek st with
    | Vlexer.SYM ("||" | "|"), _ ->
        advance st;
        loop (Binop (Or, lhs, parse_xor st))
    | _ -> lhs
  in
  loop (parse_xor st)

and parse_xor st =
  let rec loop lhs =
    match peek st with
    | Vlexer.SYM "^", _ ->
        advance st;
        loop (Binop (Xor, lhs, parse_and st))
    | _ -> lhs
  in
  loop (parse_and st)

and parse_and st =
  let rec loop lhs =
    match peek st with
    | Vlexer.SYM ("&&" | "&"), _ ->
        advance st;
        loop (Binop (And, lhs, parse_cmp st))
    | _ -> lhs
  in
  loop (parse_cmp st)

and parse_cmp st =
  let lhs = parse_addsub st in
  match peek st with
  | Vlexer.SYM "==", _ ->
      advance st;
      Binop (Eq, lhs, parse_addsub st)
  | Vlexer.SYM "!=", _ ->
      advance st;
      Binop (Neq, lhs, parse_addsub st)
  | Vlexer.SYM "<", _ ->
      advance st;
      Binop (Lt, lhs, parse_addsub st)
  | Vlexer.SYM "<=", _ ->
      advance st;
      Binop (Le, lhs, parse_addsub st)
  | Vlexer.SYM ">", _ ->
      advance st;
      Binop (Gt, lhs, parse_addsub st)
  | Vlexer.SYM ">=", _ ->
      advance st;
      Binop (Ge, lhs, parse_addsub st)
  | _ -> lhs

and parse_addsub st =
  let rec loop lhs =
    match peek st with
    | Vlexer.SYM "+", _ ->
        advance st;
        loop (Binop (Add, lhs, parse_unary st))
    | Vlexer.SYM "-", _ ->
        advance st;
        loop (Binop (Sub, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Vlexer.SYM ("!" | "~"), _ ->
      advance st;
      Unop (Lnot, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match next st with
  | Vlexer.NUM n, _ -> Int n
  | Vlexer.ID "$ND", l ->
      expect_sym st "(";
      let rec args acc =
        let e = parse_expr st in
        if accept_sym st "," then args (e :: acc)
        else begin
          expect_sym st ")";
          List.rev (e :: acc)
        end
      in
      let es = args [] in
      if es = [] then fail_at l "$ND needs at least one alternative";
      Nd es
  | Vlexer.ID x, _ -> Id x
  | Vlexer.SYM "(", _ ->
      let e = parse_expr st in
      expect_sym st ")";
      e
  | _, l -> fail_at l "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec parse_stmt st =
  match peek st with
  | Vlexer.KW "begin", _ ->
      advance st;
      let rec items acc =
        match peek st with
        | Vlexer.KW "end", _ ->
            advance st;
            Block (List.rev acc)
        | _ -> items (parse_stmt st :: acc)
      in
      items []
  | Vlexer.KW "if", _ ->
      advance st;
      expect_sym st "(";
      let c = parse_expr st in
      expect_sym st ")";
      let t = parse_stmt st in
      let e =
        match peek st with
        | Vlexer.KW "else", _ ->
            advance st;
            Some (parse_stmt st)
        | _ -> None
      in
      If (c, t, e)
  | Vlexer.KW "case", _ ->
      advance st;
      expect_sym st "(";
      let scrut = parse_expr st in
      expect_sym st ")";
      let rec items arms dflt =
        match peek st with
        | Vlexer.KW "endcase", _ ->
            advance st;
            Case (scrut, List.rev arms, dflt)
        | Vlexer.KW "default", _ ->
            advance st;
            expect_sym st ":";
            let s = parse_stmt st in
            items arms (Some s)
        | _ ->
            let rec labels acc =
              let e = parse_expr st in
              if accept_sym st "," then labels (e :: acc)
              else begin
                expect_sym st ":";
                List.rev (e :: acc)
              end
            in
            let ls = labels [] in
            let s = parse_stmt st in
            items ((ls, s) :: arms) dflt
      in
      items [] None
  | Vlexer.ID x, l ->
      advance st;
      let () =
        match next st with
        | Vlexer.SYM ("=" | "<="), _ -> ()
        | _, l' -> fail_at l' "expected assignment to %s" x
      in
      ignore l;
      let e = parse_expr st in
      expect_sym st ";";
      Assign (x, e)
  | _, l -> fail_at l "expected statement"

(* ------------------------------------------------------------------ *)
(* Module items *)

let parse_range st =
  (* '[' msb ':' lsb ']' -> width *)
  if accept_sym st "[" then begin
    let msb = match next st with
      | Vlexer.NUM n, _ -> n
      | _, l -> fail_at l "expected number in range"
    in
    expect_sym st ":";
    let lsb = match next st with
      | Vlexer.NUM n, _ -> n
      | _, l -> fail_at l "expected number in range"
    in
    expect_sym st "]";
    if lsb <> 0 then fail_at 0 "only [msb:0] ranges supported";
    msb - lsb + 1
  end
  else 1

let parse_name_list st =
  let rec go acc =
    let x = expect_id st in
    if accept_sym st "," then go (x :: acc)
    else begin
      expect_sym st ";";
      List.rev (x :: acc)
    end
  in
  go []

let parse_module st =
  expect_kw st "module";
  let name = expect_id st in
  expect_sym st "(";
  let rec ports acc =
    match next st with
    | Vlexer.ID x, _ ->
        if accept_sym st "," then ports (x :: acc)
        else begin
          expect_sym st ")";
          List.rev (x :: acc)
        end
    | Vlexer.SYM ")", _ -> List.rev acc
    | _, l -> fail_at l "expected port name"
  in
  let ports = ports [] in
  expect_sym st ";";
  let decls = ref [] in
  let assigns = ref [] in
  let always = ref [] in
  let initials = ref [] in
  let instances = ref [] in
  let add_decls kind width enum names =
    List.iter
      (fun d_name ->
        decls := { d_kind = kind; d_name; d_width = width; d_enum = enum } :: !decls)
      names
  in
  let rec items () =
    match peek st with
    | Vlexer.KW "endmodule", _ -> advance st
    | Vlexer.KW (("input" | "output" | "wire" | "reg") as kw), _ ->
        advance st;
        let width = parse_range st in
        let kind =
          match kw with
          | "input" -> Input
          | "output" -> Output
          | "wire" -> Wire
          | _ -> Reg
        in
        (* "output reg [..]" style *)
        let kind, width =
          match peek st with
          | Vlexer.KW "reg", _ when kind = Output ->
              advance st;
              let w = parse_range st in
              (Output, max width w)
          | _ -> (kind, width)
        in
        add_decls kind width None (parse_name_list st);
        items ()
    | Vlexer.KW "enum", _ ->
        advance st;
        expect_sym st "{";
        let rec values acc =
          let v = expect_id st in
          if accept_sym st "," then values (v :: acc)
          else begin
            expect_sym st "}";
            List.rev (v :: acc)
          end
        in
        let vs = values [] in
        let kind =
          match peek st with
          | Vlexer.KW "reg", _ ->
              advance st;
              Reg
          | Vlexer.KW "wire", _ ->
              advance st;
              Wire
          | _ -> Reg
        in
        add_decls kind 1 (Some vs) (parse_name_list st);
        items ()
    | Vlexer.KW "assign", _ ->
        advance st;
        let x = expect_id st in
        expect_sym st "=";
        let e = parse_expr st in
        expect_sym st ";";
        assigns := (x, e) :: !assigns;
        items ()
    | Vlexer.KW "always", l ->
        advance st;
        expect_sym st "@";
        expect_sym st "(";
        let kind =
          match next st with
          | Vlexer.SYM "*", _ -> Comb
          | Vlexer.KW "posedge", _ ->
              let _clk = expect_id st in
              Seq
          | _ -> fail_at l "expected @(*) or @(posedge clk)"
        in
        expect_sym st ")";
        let body = parse_stmt st in
        always := (kind, body) :: !always;
        items ()
    | Vlexer.KW "initial", _ ->
        advance st;
        let x = expect_id st in
        expect_sym st "=";
        let e = parse_expr st in
        expect_sym st ";";
        initials := (x, e) :: !initials;
        items ()
    | Vlexer.ID mname, _ ->
        advance st;
        let iname = expect_id st in
        expect_sym st "(";
        let rec conns acc =
          expect_sym st ".";
          let formal = expect_id st in
          expect_sym st "(";
          let actual = expect_id st in
          expect_sym st ")";
          if accept_sym st "," then conns ((formal, actual) :: acc)
          else begin
            expect_sym st ")";
            List.rev ((formal, actual) :: acc)
          end
        in
        let cs = conns [] in
        expect_sym st ";";
        instances := { i_module = mname; i_name = iname; i_conns = cs } :: !instances;
        items ()
    | t, l ->
        fail_at l "unexpected token %s in module body"
          (match t with
          | Vlexer.ID x -> x
          | Vlexer.KW x -> x
          | Vlexer.SYM x -> "'" ^ x ^ "'"
          | Vlexer.NUM n -> string_of_int n
          | Vlexer.EOF -> "EOF")
  in
  items ();
  {
    m_name = name;
    m_ports = ports;
    m_decls = List.rev !decls;
    m_assigns = List.rev !assigns;
    m_always = List.rev !always;
    m_initials = List.rev !initials;
    m_instances = List.rev !instances;
  }

let parse src =
  let st = { toks = Vlexer.tokenize src } in
  let rec modules acc =
    match peek st with
    | Vlexer.EOF, _ -> List.rev acc
    | Vlexer.KW "module", _ -> modules (parse_module st :: acc)
    | _, l -> fail_at l "expected module"
  in
  { modules = modules [] }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
