open Hsis_blifmv

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Value types: words of a bit width, or symbolic enumerations. *)
type ty = Tword of int | Tenum of string list

let dom_size = function
  | Tword w -> 1 lsl w
  | Tenum vs -> List.length vs

let ty_equal a b =
  match (a, b) with
  | Tword w1, Tword w2 -> w1 = w2
  | Tenum v1, Tenum v2 -> v1 = v2
  | Tword _, Tenum _ | Tenum _, Tword _ -> false

let value_name ty v =
  match ty with
  | Tword _ -> string_of_int v
  | Tenum vs -> List.nth vs v

let max_table_rows = 1 lsl 16

(* Per-module elaboration state. *)
type state = {
  module_name : string;
  types : (string, ty) Hashtbl.t;  (* signal -> type *)
  enum_lits : (string, ty * int) Hashtbl.t;  (* literal -> (type, index) *)
  mutable tables : Ast.table list;  (* reverse order *)
  mutable latches : Ast.latch list;
  mutable temp : int;
  mutable temps : (string * ty) list;  (* declared temporaries *)
  const_cache : (string * int, string) Hashtbl.t;
}

let fresh st ty =
  let name = Printf.sprintf "_e%d" st.temp in
  st.temp <- st.temp + 1;
  st.temps <- (name, ty) :: st.temps;
  name

let emit_table st tb = st.tables <- tb :: st.tables

let ty_of st name =
  match Hashtbl.find_opt st.types name with
  | Some t -> t
  | None -> err "%s: undeclared signal %s" st.module_name name

(* Expression results: a signal carrying a value, or a constant (whose
   type, for plain integer literals, is inferred from context). *)
type res = Rsig of string * ty | Rconst of ty option * int

let res_ty = function
  | Rsig (_, ty) -> Some ty
  | Rconst (ty, _) -> ty

(* Materialize a constant as a one-row, zero-input table. *)
let force_const st ty v =
  if v < 0 || v >= dom_size ty then
    err "%s: constant %d out of range for its context" st.module_name v;
  let key = (value_name ty v, dom_size ty) in
  match Hashtbl.find_opt st.const_cache key with
  | Some s -> s
  | None ->
      let s = fresh st ty in
      emit_table st
        {
          Ast.t_inputs = [];
          t_outputs = [ s ];
          t_rows =
            [ { Ast.r_inputs = []; r_outputs = [ Ast.Val (value_name ty v) ] } ];
          t_default = None;
        };
      Hashtbl.replace st.const_cache key s;
      s

(* Widen a word signal to a wider word domain via an identity table. *)
let widen st s w_from w_to =
  let out = fresh st (Tword w_to) in
  let rows =
    List.init (1 lsl w_from) (fun v ->
        {
          Ast.r_inputs = [ Ast.Val (string_of_int v) ];
          r_outputs = [ Ast.Val (string_of_int v) ];
        })
  in
  emit_table st
    { Ast.t_inputs = [ s ]; t_outputs = [ out ]; t_rows = rows; t_default = None };
  out

let force st ty = function
  | Rsig (s, ty') -> (
      if ty_equal ty ty' then s
      else
        match (ty, ty') with
        | Tword w_to, Tword w_from when w_from < w_to -> widen st s w_from w_to
        | (Tword _ | Tenum _), (Tword _ | Tenum _) ->
            err "%s: type mismatch on %s" st.module_name s)
  | Rconst (Some ty', v) -> (
      if ty_equal ty ty' then force_const st ty v
      else
        match (ty, ty') with
        | Tword w_to, Tword w_from when w_from < w_to ->
            ignore w_to;
            ignore w_from;
            force_const st ty v
        | (Tword _ | Tenum _), (Tword _ | Tenum _) ->
            err "%s: constant type mismatch" st.module_name)
  | Rconst (None, v) -> force_const st ty v

(* Unify operand types for a binary operator. *)
let unify st a b =
  match (res_ty a, res_ty b) with
  | Some (Tenum v1), Some (Tenum v2) when v1 = v2 -> Tenum v1
  | Some (Tenum _), Some (Tenum _) ->
      err "%s: comparing different enum types" st.module_name
  | Some (Tenum _), Some (Tword _) | Some (Tword _), Some (Tenum _) ->
      err "%s: mixing enum and word operands" st.module_name
  | Some (Tword w1), Some (Tword w2) -> Tword (max w1 w2)
  | Some t, None | None, Some t -> t
  | None, None ->
      (* both constants: width of the larger value *)
      let v = match (a, b) with
        | Rconst (_, x), Rconst (_, y) -> max (max x y) 1
        | _ -> 1
      in
      let rec width n = if n <= 1 then 1 else 1 + width (n / 2) in
      Tword (width v)

let bool_ty = Tword 1

let apply_binop op w a b =
  let mask = (1 lsl w) - 1 in
  match op with
  | Vast.Add -> (a + b) land mask
  | Vast.Sub -> (a - b) land mask
  | Vast.And -> a land b
  | Vast.Or -> a lor b
  | Vast.Xor -> a lxor b
  | Vast.Eq -> if a = b then 1 else 0
  | Vast.Neq -> if a <> b then 1 else 0
  | Vast.Lt -> if a < b then 1 else 0
  | Vast.Le -> if a <= b then 1 else 0
  | Vast.Gt -> if a > b then 1 else 0
  | Vast.Ge -> if a >= b then 1 else 0

let out_ty_of op operand_ty =
  match op with
  | Vast.Eq | Vast.Neq | Vast.Lt | Vast.Le | Vast.Gt | Vast.Ge -> bool_ty
  | Vast.Add | Vast.Sub | Vast.And | Vast.Or | Vast.Xor -> (
      match operand_ty with
      | Tword w -> Tword w
      | Tenum _ -> err "arithmetic on enum values")

let rec compile_expr st (e : Vast.expr) : res =
  match e with
  | Vast.Int n -> Rconst (None, n)
  | Vast.Id x -> (
      match Hashtbl.find_opt st.types x with
      | Some ty -> Rsig (x, ty)
      | None -> (
          match Hashtbl.find_opt st.enum_lits x with
          | Some (ty, v) -> Rconst (Some ty, v)
          | None -> err "%s: unknown identifier %s" st.module_name x))
  | Vast.Unop (Vast.Lnot, e) -> (
      match compile_expr st e with
      | Rconst (_, v) -> Rconst (Some bool_ty, if v = 0 then 1 else 0)
      | Rsig (s, ty) ->
          let out = fresh st bool_ty in
          let d = dom_size ty in
          let rows =
            List.init d (fun v ->
                {
                  Ast.r_inputs = [ Ast.Val (value_name ty v) ];
                  r_outputs = [ Ast.Val (if v = 0 then "1" else "0") ];
                })
          in
          emit_table st
            {
              Ast.t_inputs = [ s ];
              t_outputs = [ out ];
              t_rows = rows;
              t_default = None;
            };
          Rsig (out, bool_ty))
  | Vast.Binop (op, ea, eb) -> (
      let ra = compile_expr st ea and rb = compile_expr st eb in
      let ty = unify st ra rb in
      (* widen narrower word operands into the unified domain *)
      let coerce r =
        match r with
        | Rsig (_, ty') when not (ty_equal ty' ty) -> Rsig (force st ty r, ty)
        | Rsig _ | Rconst _ -> r
      in
      let ra = coerce ra and rb = coerce rb in
      let w = match ty with Tword w -> w | Tenum _ -> 0 in
      (match (op, ty) with
      | (Vast.Eq | Vast.Neq), _ -> ()
      | _, Tenum _ -> err "%s: arithmetic on enum operands" st.module_name
      | _, Tword _ -> ());
      match (ra, rb) with
      | Rconst (_, va), Rconst (_, vb) ->
          Rconst (Some (out_ty_of op ty), apply_binop op (max w 1) va vb)
      | _ ->
          let d = dom_size ty in
          let out_ty = out_ty_of op ty in
          let eval va vb =
            match ty with
            | Tword w -> apply_binop op w va vb
            | Tenum _ -> apply_binop op 1 (Bool.to_int (va = vb)) 1
              (* enum: only eq/neq reach here; recompute directly *)
          in
          let eval va vb =
            match ty with
            | Tword _ -> eval va vb
            | Tenum _ -> (
                match op with
                | Vast.Eq -> if va = vb then 1 else 0
                | Vast.Neq -> if va <> vb then 1 else 0
                | _ -> assert false)
          in
          let rows_and_inputs =
            match (ra, rb) with
            | Rsig (sa, _), Rsig (sb, _) ->
                if d * d > max_table_rows then
                  err "%s: operator table too large (%d rows)" st.module_name
                    (d * d);
                let rows = ref [] in
                for va = 0 to d - 1 do
                  for vb = 0 to d - 1 do
                    rows :=
                      {
                        Ast.r_inputs =
                          [ Ast.Val (value_name ty va); Ast.Val (value_name ty vb) ];
                        r_outputs =
                          [ Ast.Val (value_name out_ty (eval va vb)) ];
                      }
                      :: !rows
                  done
                done;
                (List.rev !rows, [ sa; sb ])
            | Rsig (sa, _), Rconst (_, vb) ->
                let rows =
                  List.init d (fun va ->
                      {
                        Ast.r_inputs = [ Ast.Val (value_name ty va) ];
                        r_outputs = [ Ast.Val (value_name out_ty (eval va vb)) ];
                      })
                in
                (rows, [ sa ])
            | Rconst (_, va), Rsig (sb, _) ->
                let rows =
                  List.init d (fun vb ->
                      {
                        Ast.r_inputs = [ Ast.Val (value_name ty vb) ];
                        r_outputs = [ Ast.Val (value_name out_ty (eval va vb)) ];
                      })
                in
                (rows, [ sb ])
            | Rconst _, Rconst _ -> assert false
          in
          let rows, inputs = rows_and_inputs in
          let out = fresh st out_ty in
          emit_table st
            {
              Ast.t_inputs = inputs;
              t_outputs = [ out ];
              t_rows = rows;
              t_default = None;
            };
          Rsig (out, out_ty))
  | Vast.Cond (c, t, e) -> (
      let rc = compile_expr st c in
      match rc with
      | Rconst (_, v) -> if v <> 0 then compile_expr st t else compile_expr st e
      | Rsig (sc, cty) ->
          if dom_size cty <> 2 then
            err "%s: condition must be boolean" st.module_name;
          let rt = compile_expr st t and re = compile_expr st e in
          let ty =
            match (res_ty rt, res_ty re) with
            | Some a, Some b when ty_equal a b -> a
            | Some a, None | None, Some a -> a
            | Some _, Some _ -> err "%s: branches of ?: differ" st.module_name
            | None, None -> unify st rt re
          in
          let s_t = force st ty rt and s_e = force st ty re in
          let out = fresh st ty in
          emit_table st
            {
              Ast.t_inputs = [ sc; s_t; s_e ];
              t_outputs = [ out ];
              t_rows =
                [
                  {
                    Ast.r_inputs = [ Ast.Val "1"; Ast.Any; Ast.Any ];
                    r_outputs = [ Ast.Eq s_t ];
                  };
                  {
                    Ast.r_inputs = [ Ast.Val "0"; Ast.Any; Ast.Any ];
                    r_outputs = [ Ast.Eq s_e ];
                  };
                ];
              t_default = None;
            };
          Rsig (out, ty))
  | Vast.Nd es ->
      let rs = List.map (compile_expr st) es in
      let rec width n = if n <= 1 then 1 else 1 + width (n / 2) in
      let ty =
        (* widest alternative wins; enums must all agree *)
        List.fold_left
          (fun acc r ->
            let t =
              match r with
              | Rsig (_, t) | Rconst (Some t, _) -> Some t
              | Rconst (None, v) -> Some (Tword (width (max v 1)))
            in
            match (acc, t) with
            | None, t -> t
            | Some a, Some b -> (
                match (a, b) with
                | Tword wa, Tword wb -> Some (Tword (max wa wb))
                | Tenum va, Tenum vb when va = vb -> Some a
                | (Tword _ | Tenum _), (Tword _ | Tenum _) ->
                    err "%s: $ND alternatives differ in type" st.module_name)
            | Some a, None -> Some a)
          None rs
        |> Option.get
      in
      let rs =
        List.map
          (fun r ->
            match r with
            | Rsig (_, ty') when not (ty_equal ty' ty) ->
                Rsig (force st ty r, ty)
            | Rsig _ | Rconst _ -> r)
          rs
      in
      let inputs =
        List.filter_map (function Rsig (s, _) -> Some s | Rconst _ -> None) rs
      in
      let out = fresh st ty in
      let any_inputs = List.map (fun _ -> Ast.Any) inputs in
      let rows =
        List.map
          (fun r ->
            let out_entry =
              match r with
              | Rsig (s, _) -> Ast.Eq s
              | Rconst (_, v) -> Ast.Val (value_name ty v)
            in
            { Ast.r_inputs = any_inputs; r_outputs = [ out_entry ] })
          rs
      in
      emit_table st
        {
          Ast.t_inputs = inputs;
          t_outputs = [ out ];
          t_rows = rows;
          t_default = None;
        };
      Rsig (out, ty)

(* ------------------------------------------------------------------ *)
(* Statement normalization: an always-block becomes, per assigned signal,
   one expression tree.  Reads always see pre-block values (non-blocking
   semantics). *)

let rec desugar_case scrut arms dflt =
  match arms with
  | [] -> (
      match dflt with
      | Some s -> s
      | None -> Vast.Block [] (* no default: hold / nothing *))
  | (labels, s) :: rest ->
      let cond =
        match labels with
        | [] -> err "empty case labels"
        | l0 :: ls ->
            List.fold_left
              (fun acc l -> Vast.Binop (Vast.Or, acc, Vast.Binop (Vast.Eq, scrut, l)))
              (Vast.Binop (Vast.Eq, scrut, l0))
              ls
      in
      Vast.If (cond, s, Some (desugar_case scrut rest dflt))

(* Map from signal to its assigned expression after the statement. *)
module SM = Map.Make (String)

let rec xform (stmt : Vast.stmt) (cur : Vast.expr SM.t) : Vast.expr SM.t =
  match stmt with
  | Vast.Assign (x, e) -> SM.add x e cur
  | Vast.Block ss -> List.fold_left (fun acc s -> xform s acc) cur ss
  | Vast.If (c, t, e) ->
      let mt = xform t cur in
      let me = match e with Some s -> xform s cur | None -> cur in
      let keys =
        SM.fold (fun k _ acc -> k :: acc) mt []
        @ SM.fold (fun k _ acc -> k :: acc) me []
        |> List.sort_uniq compare
      in
      List.fold_left
        (fun acc k ->
          let vt = SM.find_opt k mt and ve = SM.find_opt k me in
          match (vt, ve) with
          | Some a, Some b when a = b -> SM.add k a acc
          | _ ->
              let dflt = SM.find_opt k cur in
              let hold = Option.value ~default:(Vast.Id k) dflt in
              let a = Option.value ~default:hold vt in
              let b = Option.value ~default:hold ve in
              SM.add k (Vast.Cond (c, a, b)) acc)
        cur keys
  | Vast.Case (scrut, arms, dflt) -> xform (desugar_case scrut arms dflt) cur

let assigned_signals stmt =
  let rec go acc = function
    | Vast.Assign (x, _) -> x :: acc
    | Vast.Block ss -> List.fold_left go acc ss
    | Vast.If (_, t, e) ->
        let acc = go acc t in
        (match e with Some s -> go acc s | None -> acc)
    | Vast.Case (_, arms, dflt) ->
        let acc = List.fold_left (fun acc (_, s) -> go acc s) acc arms in
        (match dflt with Some s -> go acc s | None -> acc)
  in
  List.sort_uniq compare (go [] stmt)

(* Does the expression (after merge) fall back to reading the signal
   itself — i.e. would a combinational block infer a latch? *)
let rec reads_self x = function
  | Vast.Id y -> x = y
  | Vast.Int _ -> false
  | Vast.Unop (_, e) -> reads_self x e
  | Vast.Binop (_, a, b) -> reads_self x a || reads_self x b
  | Vast.Cond (c, t, e) -> reads_self x c || reads_self x t || reads_self x e
  | Vast.Nd es -> List.exists (reads_self x) es

(* ------------------------------------------------------------------ *)
(* Module elaboration *)

let elaborate_module (m : Vast.module_) : Ast.model =
  (* Clock signals: any identifier used in @(posedge _) — the parser drops
     the name, so detect "clk"-style ports that are never read: simpler,
     treat any input named "clk" or "clock" as the implicit clock. *)
  let is_clock n = n = "clk" || n = "clock" in
  let st =
    {
      module_name = m.Vast.m_name;
      types = Hashtbl.create 64;
      enum_lits = Hashtbl.create 64;
      tables = [];
      latches = [];
      temp = 0;
      temps = [];
      const_cache = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (d : Vast.decl) ->
      if not (is_clock d.Vast.d_name) then begin
        let ty =
          match d.Vast.d_enum with
          | Some vs ->
              List.iteri
                (fun i v ->
                  match Hashtbl.find_opt st.enum_lits v with
                  | Some (ty', i') when ty_equal ty' (Tenum vs) && i' = i -> ()
                  | Some _ -> err "%s: enum literal %s redeclared" m.Vast.m_name v
                  | None -> Hashtbl.add st.enum_lits v (Tenum vs, i))
                vs;
              Tenum vs
          | None -> Tword d.Vast.d_width
        in
        if Hashtbl.mem st.types d.Vast.d_name then
          err "%s: signal %s redeclared" m.Vast.m_name d.Vast.d_name;
        Hashtbl.add st.types d.Vast.d_name ty
      end)
    m.Vast.m_decls;
  (* continuous assignments *)
  List.iter
    (fun (x, e) ->
      let ty = ty_of st x in
      let r = compile_expr st e in
      let s = force st ty r in
      emit_table st
        {
          Ast.t_inputs = [ s ];
          t_outputs = [ x ];
          t_rows = [ { Ast.r_inputs = [ Ast.Any ]; r_outputs = [ Ast.Eq s ] } ];
          t_default = None;
        })
    m.Vast.m_assigns;
  (* always blocks *)
  let seq_regs = Hashtbl.create 16 in
  List.iter
    (fun (kind, body) ->
      let final = xform body SM.empty in
      let targets = assigned_signals body in
      List.iter
        (fun x ->
          let ty = ty_of st x in
          let e =
            match SM.find_opt x final with
            | Some e -> e
            | None -> Vast.Id x
          in
          match kind with
          | Vast.Seq ->
              let r = compile_expr st e in
              let s = force st ty r in
              let next = x ^ "_next" in
              if Hashtbl.mem st.types next then
                err "%s: reserved name %s already used" m.Vast.m_name next;
              Hashtbl.add st.types next ty;
              emit_table st
                {
                  Ast.t_inputs = [ s ];
                  t_outputs = [ next ];
                  t_rows =
                    [ { Ast.r_inputs = [ Ast.Any ]; r_outputs = [ Ast.Eq s ] } ];
                  t_default = None;
                };
              Hashtbl.replace seq_regs x next
          | Vast.Comb ->
              if reads_self x e then
                err "%s: combinational always block infers a latch on %s"
                  m.Vast.m_name x;
              let r = compile_expr st e in
              let s = force st ty r in
              emit_table st
                {
                  Ast.t_inputs = [ s ];
                  t_outputs = [ x ];
                  t_rows =
                    [ { Ast.r_inputs = [ Ast.Any ]; r_outputs = [ Ast.Eq s ] } ];
                  t_default = None;
                })
        targets)
    m.Vast.m_always;
  (* latches with reset values *)
  Hashtbl.iter
    (fun x next ->
      let ty = ty_of st x in
      let resets =
        match List.assoc_opt x m.Vast.m_initials with
        | None -> [ value_name ty 0 ]
        | Some e ->
            let const_of = function
              | Vast.Int n -> value_name ty n
              | Vast.Id lit -> (
                  match Hashtbl.find_opt st.enum_lits lit with
                  | Some (ty', v) when ty_equal ty ty' -> value_name ty v
                  | Some _ -> err "%s: initial value type mismatch on %s" m.Vast.m_name x
                  | None -> err "%s: initial value must be constant" m.Vast.m_name)
              | Vast.Unop _ | Vast.Binop _ | Vast.Cond _ | Vast.Nd _ ->
                  err "%s: initial value must be constant" m.Vast.m_name
            in
            (match e with
            | Vast.Nd es -> List.map const_of es
            | e -> [ const_of e ])
      in
      st.latches <-
        { Ast.l_input = next; l_output = x; l_reset = resets } :: st.latches)
    seq_regs;
  (* declarations for BLIF-MV *)
  let mv_of name ty =
    match ty with
    | Tword 1 -> None
    | Tword w ->
        Some { Ast.v_names = [ name ]; v_size = 1 lsl w; v_values = [] }
    | Tenum vs ->
        Some { Ast.v_names = [ name ]; v_size = List.length vs; v_values = vs }
  in
  let decl_mvs =
    List.filter_map
      (fun (d : Vast.decl) ->
        if is_clock d.Vast.d_name then None
        else mv_of d.Vast.d_name (ty_of st d.Vast.d_name))
      m.Vast.m_decls
  in
  let next_mvs =
    Hashtbl.fold
      (fun x next acc ->
        match mv_of next (ty_of st x) with Some d -> d :: acc | None -> acc)
      seq_regs []
  in
  let temp_mvs =
    List.filter_map (fun (name, ty) -> mv_of name ty) st.temps
  in
  let subckts =
    List.map
      (fun (i : Vast.instance) ->
        {
          Ast.s_model = i.Vast.i_module;
          s_inst = i.Vast.i_name;
          (* clock hookups vanish: the BLIF-MV clock is implicit *)
          s_conns =
            List.filter (fun (formal, _) -> not (is_clock formal)) i.Vast.i_conns;
        })
      m.Vast.m_instances
  in
  let port_kind k =
    List.filter_map
      (fun (d : Vast.decl) ->
        if d.Vast.d_kind = k && (not (is_clock d.Vast.d_name)) then
          Some d.Vast.d_name
        else None)
      m.Vast.m_decls
  in
  {
    Ast.m_name = m.Vast.m_name;
    m_inputs = port_kind Vast.Input;
    m_outputs = port_kind Vast.Output;
    m_mvs = decl_mvs @ next_mvs @ List.rev temp_mvs;
    m_tables = List.rev st.tables;
    m_latches = List.rev st.latches;
    m_subckts = subckts;
    m_delays = [];
  }

let elaborate (d : Vast.design) : Ast.t =
  match d.Vast.modules with
  | [] -> err "no modules in design"
  | first :: _ ->
      {
        Ast.models = List.map elaborate_module d.Vast.modules;
        root = first.Vast.m_name;
      }

let compile src = elaborate (Vparser.parse src)
let to_blifmv src = Printer.to_string (compile src)
