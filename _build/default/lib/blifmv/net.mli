(** Flattened BLIF-MV networks with resolved signals and domains.

    This is the form consumed by the symbolic engine: a set of signals, a
    set of (possibly non-deterministic) relations over them, and a set of
    latches implementing the synchronous combinational/sequential model of
    paper Sec. 4. *)

open Hsis_mv

type fentry =
  | FAny  (** any domain value *)
  | FSet of int list  (** one of these value indices (sorted, non-empty) *)
  | FEq of int  (** output equals the table input at this position *)

type frow = { fr_in : fentry list; fr_out : fentry list }

type ftable = {
  ft_inputs : int list;  (** signal ids *)
  ft_outputs : int list;
  ft_rows : frow list;
  ft_default : fentry list option;
}

type flatch = { fl_input : int; fl_output : int; fl_reset : int list }

type signal = { s_id : int; s_name : string; s_dom : Domain.t }

type t = {
  name : string;
  signals : signal array;
  inputs : int list;  (** primary inputs (empty for a closed system) *)
  outputs : int list;
  tables : ftable list;
  latches : flatch list;
}

exception Error of string

val of_model : Ast.model -> t
(** Resolve a flat model (no subckts; see {!Flatten.flatten}). *)

val of_ast : ?root:string -> Ast.t -> t
(** [Flatten.flatten] followed by {!of_model}. *)

val signal : t -> int -> signal
val find_signal : t -> string -> int option
val dom : t -> int -> Domain.t
val num_signals : t -> int
val state_signals : t -> int list
(** Latch outputs, in latch order. *)

val is_closed : t -> bool

val topo_tables : t -> ftable list
(** Tables in dependency order (inputs before outputs), treating latch
    outputs and primary inputs as sources.  Raises {!Error} on a
    combinational cycle. *)

val entry_matches : fentry -> inputs:int array -> int -> bool
(** [entry_matches e ~inputs v]: does value [v] satisfy entry [e]?
    For [FEq k], compares against [inputs.(k)]. *)

val row_output_options : t -> ftable -> int array -> int list list
(** Given concrete input values (by position), the list of output tuples
    allowed by the table.  Implements row union + [.default] semantics. *)

val pp_stats : Format.formatter -> t -> unit
