(** Hierarchy elaboration: instantiate every [.subckt] recursively, producing
    a single flat model whose internal signals are prefixed by instance path
    (e.g. [cpu1/alu/carry]). *)

exception Error of string

val flatten : ?root:string -> Ast.t -> Ast.model
(** Raises {!Error} on unknown models, recursive instantiation, unbound or
    duplicate connections. *)
