open Hsis_mv

let entry_values t tb pos = function
  | Net.FAny ->
      let d = (Net.signal t (List.nth tb.Net.ft_inputs pos)).Net.s_dom in
      List.init (Domain.size d) Fun.id
  | Net.FSet vs -> vs
  | Net.FEq _ -> invalid_arg "Check: =x in an input column"

let inputs_overlap t tb (a : Net.frow) (b : Net.frow) =
  let rec go pos ea eb =
    match (ea, eb) with
    | [], [] -> true
    | x :: xs, y :: ys ->
        let va = entry_values t tb pos x and vb = entry_values t tb pos y in
        List.exists (fun v -> List.mem v vb) va && go (pos + 1) xs ys
    | _, _ -> invalid_arg "Check.inputs_overlap: arity mismatch"
  in
  go 0 a.Net.fr_in b.Net.fr_in

(* An output tuple is unique when every entry pins a single value. *)
let outputs_single (r : Net.frow) =
  List.for_all
    (function
      | Net.FSet [ _ ] | Net.FEq _ -> true
      | Net.FSet _ | Net.FAny -> false)
    r.Net.fr_out

let same_outputs (a : Net.frow) (b : Net.frow) = a.Net.fr_out = b.Net.fr_out

let table_deterministic t (tb : Net.ftable) =
  let rows = tb.Net.ft_rows in
  List.for_all outputs_single rows
  && (match tb.Net.ft_default with
     | None -> true
     | Some d ->
         List.for_all
           (function
             | Net.FSet [ _ ] | Net.FEq _ -> true
             | Net.FSet _ | Net.FAny -> false)
           d)
  &&
  let rec pairs = function
    | [] -> true
    | r :: rest ->
        List.for_all
          (fun r' ->
            (not (inputs_overlap t tb r r')) || same_outputs r r')
          rest
        && pairs rest
  in
  pairs rows

(* Completeness: every input pattern matches a row or there is a default.
   With a default the table is trivially complete; otherwise we check that
   row input cubes cover the full input space by enumeration (input spaces
   of individual tables are small in practice). *)
let table_complete t (tb : Net.ftable) =
  match tb.Net.ft_default with
  | Some _ -> true
  | None ->
      let dims =
        List.map (fun s -> Domain.size (Net.signal t s).Net.s_dom) tb.Net.ft_inputs
      in
      let space = List.fold_left ( * ) 1 dims in
      if space > 1 lsl 16 then
        (* conservatively treat huge tables as incomplete *)
        false
      else begin
        let rec patterns = function
          | [] -> [ [] ]
          | d :: rest ->
              let tails = patterns rest in
              List.concat_map
                (fun v -> List.map (fun tl -> v :: tl) tails)
                (List.init d Fun.id)
        in
        List.for_all
          (fun pat ->
            let inputs = Array.of_list pat in
            List.exists
              (fun r ->
                List.for_all2
                  (fun e v -> Net.entry_matches e ~inputs v)
                  r.Net.fr_in pat)
              tb.Net.ft_rows)
          (patterns dims)
      end

let deterministic t =
  List.for_all (table_deterministic t) t.Net.tables
  && List.for_all (fun l -> List.length l.Net.fl_reset = 1) t.Net.latches

let synthesizable t = deterministic t

let nondet_signals t =
  let from_tables =
    List.concat_map
      (fun tb ->
        if table_deterministic t tb then []
        else List.map (fun s -> (Net.signal t s).Net.s_name) tb.Net.ft_outputs)
      t.Net.tables
  in
  let from_latches =
    List.filter_map
      (fun l ->
        if List.length l.Net.fl_reset > 1 then
          Some (Net.signal t l.Net.fl_output).Net.s_name
        else None)
      t.Net.latches
  in
  List.sort_uniq compare (from_tables @ from_latches)
