let entry_to_string = function
  | Ast.Any -> "-"
  | Ast.Val v -> v
  | Ast.Set vs -> "{" ^ String.concat "," vs ^ "}"
  | Ast.Not v -> "!" ^ v
  | Ast.Eq x -> "=" ^ x

let buf_add_line buf s =
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

let model_to_string (m : Ast.model) =
  let buf = Buffer.create 1024 in
  let line s = buf_add_line buf s in
  line (".model " ^ m.m_name);
  if m.m_inputs <> [] then line (".inputs " ^ String.concat " " m.m_inputs);
  if m.m_outputs <> [] then line (".outputs " ^ String.concat " " m.m_outputs);
  List.iter
    (fun (d : Ast.var_decl) ->
      let values = if d.v_values = [] then "" else " " ^ String.concat " " d.v_values in
      line
        (Printf.sprintf ".mv %s %d%s" (String.concat "," d.v_names) d.v_size
           values))
    m.m_mvs;
  List.iter
    (fun (s : Ast.subckt) ->
      let conns = List.map (fun (f, a) -> f ^ "=" ^ a) s.s_conns in
      line (".subckt " ^ s.s_model ^ " " ^ s.s_inst ^ " " ^ String.concat " " conns))
    m.m_subckts;
  List.iter
    (fun (l : Ast.latch) ->
      line (".latch " ^ l.l_input ^ " " ^ l.l_output);
      if l.l_reset <> [] then
        line (".reset " ^ l.l_output ^ " " ^ String.concat " " l.l_reset))
    m.m_latches;
  List.iter
    (fun (out, dmin, dmax) ->
      if dmin = dmax then line (Printf.sprintf ".delay %s %d" out dmin)
      else line (Printf.sprintf ".delay %s %d %d" out dmin dmax))
    m.m_delays;
  List.iter
    (fun (t : Ast.table) ->
      line
        (".table " ^ String.concat " " t.t_inputs ^ " -> "
        ^ String.concat " " t.t_outputs);
      (match t.t_default with
      | Some entries ->
          line (".default " ^ String.concat " " (List.map entry_to_string entries))
      | None -> ());
      List.iter
        (fun (r : Ast.row) ->
          line
            (String.concat " "
               (List.map entry_to_string (r.r_inputs @ r.r_outputs))))
        t.t_rows)
    m.m_tables;
  line ".end";
  Buffer.contents buf

let to_string (t : Ast.t) =
  (* Root model first, preserving declaration order otherwise. *)
  String.concat "\n" (List.map model_to_string t.models)
