(** BLIF-MV parser (paper Sec. 4). *)

exception Error of int * string
(** Line number and message. *)

val parse : string -> Ast.t
(** Parse a source text; the root model is the first one declared. *)

val parse_file : string -> Ast.t
