lib/blifmv/printer.mli: Ast
