lib/blifmv/check.mli: Net
