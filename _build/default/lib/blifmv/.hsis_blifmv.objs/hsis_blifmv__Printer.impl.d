lib/blifmv/printer.ml: Ast Buffer List Printf String
