lib/blifmv/parser.ml: Ast Format Lexer List String
