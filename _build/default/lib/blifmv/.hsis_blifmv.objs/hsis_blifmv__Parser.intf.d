lib/blifmv/parser.mli: Ast
