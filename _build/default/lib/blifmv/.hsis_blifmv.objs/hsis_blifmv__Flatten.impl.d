lib/blifmv/flatten.ml: Ast Format Hashtbl List Option
