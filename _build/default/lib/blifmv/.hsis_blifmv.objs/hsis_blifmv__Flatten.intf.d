lib/blifmv/flatten.mli: Ast
