lib/blifmv/net.ml: Array Ast Domain Flatten Format Fun Hashtbl Hsis_mv List Option Timing
