lib/blifmv/lexer.ml: Buffer List String
