lib/blifmv/ast.ml: List String
