lib/blifmv/stree.ml: Ast List Printf
