lib/blifmv/timing.mli: Ast
