lib/blifmv/stree.mli: Ast
