lib/blifmv/check.ml: Array Domain Fun Hsis_mv List Net
