lib/blifmv/timing.ml: Ast Format List Printf
