lib/blifmv/lexer.mli:
