lib/blifmv/net.mli: Ast Domain Format Hsis_mv
