lib/blifmv/ast.mli:
