open Hsis_mv

type fentry = FAny | FSet of int list | FEq of int
type frow = { fr_in : fentry list; fr_out : fentry list }

type ftable = {
  ft_inputs : int list;
  ft_outputs : int list;
  ft_rows : frow list;
  ft_default : fentry list option;
}

type flatch = { fl_input : int; fl_output : int; fl_reset : int list }
type signal = { s_id : int; s_name : string; s_dom : Domain.t }

type t = {
  name : string;
  signals : signal array;
  inputs : int list;
  outputs : int list;
  tables : ftable list;
  latches : flatch list;
}

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let signal t id = t.signals.(id)

let find_signal t name =
  let n = Array.length t.signals in
  let rec go i =
    if i >= n then None
    else if t.signals.(i).s_name = name then Some i
    else go (i + 1)
  in
  go 0

let dom t id = t.signals.(id).s_dom
let num_signals t = Array.length t.signals
let state_signals t = List.map (fun l -> l.fl_output) t.latches
let is_closed t = t.inputs = []

(* ------------------------------------------------------------------ *)
(* Resolution of a flat model *)

let of_model (m : Ast.model) =
  if m.Ast.m_subckts <> [] then err "of_model: model %s not flat" m.Ast.m_name;
  (* compile away any timing annotations first *)
  let m = Timing.expand m in
  (* Domains from .mv declarations; duplicates must agree. *)
  let doms = Hashtbl.create 64 in
  List.iter
    (fun (d : Ast.var_decl) ->
      let domain name =
        if d.Ast.v_values = [] then Domain.of_size name d.Ast.v_size
        else Domain.make name (Array.of_list d.Ast.v_values)
      in
      List.iter
        (fun name ->
          let nd = domain name in
          match Hashtbl.find_opt doms name with
          | Some old when not (Domain.equal old nd) ->
              err "conflicting .mv declarations for %s" name
          | _ -> Hashtbl.replace doms name nd)
        d.Ast.v_names)
    m.Ast.m_mvs;
  (* Signal ids in first-mention order. *)
  let ids = Hashtbl.create 64 in
  let order = ref [] in
  let intern name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids name id;
        order := name :: !order;
        id
  in
  List.iter (fun n -> ignore (intern n)) m.Ast.m_inputs;
  List.iter
    (fun (l : Ast.latch) ->
      ignore (intern l.Ast.l_output);
      ignore (intern l.Ast.l_input))
    m.Ast.m_latches;
  List.iter
    (fun (t : Ast.table) ->
      List.iter (fun n -> ignore (intern n)) t.Ast.t_inputs;
      List.iter (fun n -> ignore (intern n)) t.Ast.t_outputs)
    m.Ast.m_tables;
  List.iter (fun n -> ignore (intern n)) m.Ast.m_outputs;
  let names = Array.of_list (List.rev !order) in
  let signals =
    Array.mapi
      (fun id name ->
        let dom =
          match Hashtbl.find_opt doms name with
          | Some d -> d
          | None -> Domain.make name [| "0"; "1" |]
        in
        { s_id = id; s_name = name; s_dom = dom })
      names
  in
  let sig_of name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> err "undeclared signal %s" name
  in
  let value_index name v =
    let d = signals.(sig_of name).s_dom in
    match Domain.index_of d v with
    | Some i -> i
    | None ->
        err "signal %s: value %s not in domain %s" name v
          (Format.asprintf "%a" Domain.pp d)
  in
  let all_values name =
    List.init (Domain.size signals.(sig_of name).s_dom) Fun.id
  in
  let convert_entry ~table_inputs ~is_output column_signal = function
    | Ast.Any -> FAny
    | Ast.Val v -> FSet [ value_index column_signal v ]
    | Ast.Set vs ->
        FSet (List.sort_uniq compare (List.map (value_index column_signal) vs))
    | Ast.Not v ->
        let bad = value_index column_signal v in
        FSet (List.filter (fun i -> i <> bad) (all_values column_signal))
    | Ast.Eq x ->
        if not is_output then err "=%s used in an input column" x;
        let rec pos i = function
          | [] -> err "=%s: %s is not an input of the table" x x
          | y :: _ when y = x -> i
          | _ :: rest -> pos (i + 1) rest
        in
        let k = pos 0 table_inputs in
        if Domain.size signals.(sig_of x).s_dom
           <> Domain.size signals.(sig_of column_signal).s_dom
        then err "=%s: domain size mismatch with %s" x column_signal;
        FEq k
  in
  let tables =
    List.map
      (fun (t : Ast.table) ->
        let conv_row (r : Ast.row) =
          if List.length r.Ast.r_inputs <> List.length t.Ast.t_inputs then
            err "table in %s: row arity mismatch" m.Ast.m_name;
          {
            fr_in =
              List.map2
                (fun s e ->
                  convert_entry ~table_inputs:t.Ast.t_inputs ~is_output:false s e)
                t.Ast.t_inputs r.Ast.r_inputs;
            fr_out =
              List.map2
                (fun s e ->
                  convert_entry ~table_inputs:t.Ast.t_inputs ~is_output:true s e)
                t.Ast.t_outputs r.Ast.r_outputs;
          }
        in
        {
          ft_inputs = List.map sig_of t.Ast.t_inputs;
          ft_outputs = List.map sig_of t.Ast.t_outputs;
          ft_rows = List.map conv_row t.Ast.t_rows;
          ft_default =
            Option.map
              (List.map2
                 (fun s e ->
                   convert_entry ~table_inputs:t.Ast.t_inputs ~is_output:true s e)
                 t.Ast.t_outputs)
              t.Ast.t_default;
        })
      m.Ast.m_tables
  in
  let latches =
    List.map
      (fun (l : Ast.latch) ->
        let input = sig_of l.Ast.l_input and output = sig_of l.Ast.l_output in
        if Domain.size signals.(input).s_dom <> Domain.size signals.(output).s_dom
        then err "latch %s: input/output domain mismatch" l.Ast.l_output;
        let reset =
          match l.Ast.l_reset with
          | [] -> [ 0 ]
          | vs -> List.sort_uniq compare (List.map (value_index l.Ast.l_output) vs)
        in
        { fl_input = input; fl_output = output; fl_reset = reset })
      m.Ast.m_latches
  in
  let inputs = List.map sig_of m.Ast.m_inputs in
  let outputs = List.map sig_of m.Ast.m_outputs in
  (* Driver discipline: every signal except primary inputs is driven by
     exactly one table column or latch. *)
  let drivers = Array.make (Array.length signals) 0 in
  List.iter
    (fun t -> List.iter (fun o -> drivers.(o) <- drivers.(o) + 1) t.ft_outputs)
    tables;
  List.iter (fun l -> drivers.(l.fl_output) <- drivers.(l.fl_output) + 1) latches;
  List.iter
    (fun i ->
      if drivers.(i) > 0 then err "primary input %s is driven" names.(i))
    inputs;
  Array.iteri
    (fun id d ->
      if not (List.mem id inputs) then begin
        if d = 0 then err "signal %s has no driver" names.(id);
        if d > 1 then err "signal %s has %d drivers" names.(id) d
      end)
    drivers;
  { name = m.Ast.m_name; signals; inputs; outputs; tables; latches }

let of_ast ?root ast = of_model (Flatten.flatten ?root ast)

(* ------------------------------------------------------------------ *)
(* Topological order of tables *)

let topo_tables t =
  let nsig = Array.length t.signals in
  let resolved = Array.make nsig false in
  List.iter (fun i -> resolved.(i) <- true) t.inputs;
  List.iter (fun l -> resolved.(l.fl_output) <- true) t.latches;
  let remaining = ref t.tables in
  let out = ref [] in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let ready, blocked =
      List.partition
        (fun tb -> List.for_all (fun i -> resolved.(i)) tb.ft_inputs)
        !remaining
    in
    if ready <> [] then begin
      progress := true;
      List.iter
        (fun tb ->
          List.iter (fun o -> resolved.(o) <- true) tb.ft_outputs;
          out := tb :: !out)
        ready
    end;
    remaining := blocked
  done;
  if !remaining <> [] then err "combinational cycle in %s" t.name;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Explicit row semantics (used by the enumerative engine) *)

let entry_matches e ~inputs v =
  match e with
  | FAny -> true
  | FSet vs -> List.mem v vs
  | FEq k -> v = inputs.(k)

let expand_out_entry t tb ~inputs pos = function
  | FAny ->
      let d = t.signals.(List.nth tb.ft_outputs pos).s_dom in
      List.init (Domain.size d) Fun.id
  | FSet vs -> vs
  | FEq k -> [ inputs.(k) ]

(* Exact semantics including .default: the set of output tuples allowed for
   the given concrete input values. *)
let row_output_options t tb inputs =
  let matching =
    List.filter
      (fun r ->
        List.for_all2 (fun e v -> entry_matches e ~inputs v) r.fr_in
          (Array.to_list inputs))
      tb.ft_rows
  in
  let expand_row entries =
    let choices =
      List.mapi (fun pos e -> expand_out_entry t tb ~inputs pos e) entries
    in
    List.fold_right
      (fun opts acc ->
        List.concat_map (fun v -> List.map (fun tl -> v :: tl) acc) opts)
      choices [ [] ]
  in
  let tuples =
    if matching <> [] then
      List.concat_map (fun r -> expand_row r.fr_out) matching
    else
      match tb.ft_default with Some d -> expand_row d | None -> []
  in
  List.sort_uniq compare tuples

let pp_stats fmt t =
  Format.fprintf fmt "net %s: %d signals, %d tables, %d latches, %d inputs"
    t.name (Array.length t.signals) (List.length t.tables)
    (List.length t.latches) (List.length t.inputs)
