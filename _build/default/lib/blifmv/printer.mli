(** Pretty-printer producing parseable BLIF-MV text. *)

val entry_to_string : Ast.entry -> string
val model_to_string : Ast.model -> string
val to_string : Ast.t -> string
