(** The timing extension (paper Sec. 8 item 1: "to accommodate timing
    verification, we have extended BLIF-MV to handle timing constraints").

    A [.delay out dmin dmax] annotation gives a latch a bounded transport
    delay: the value observed at [out] is the one presented at the latch
    input between [dmin] and [dmax] clock ticks earlier, the exact lag
    chosen non-deterministically at every tick.  [.delay out d] is a fixed
    [d]-stage pipeline.

    {!expand} compiles the annotations away into ordinary synchronous
    constructs — a chain of [dmax] stages plus, for a proper interval, a
    non-deterministic tap selector — so all engines run unchanged. *)

exception Error of string

val expand : Ast.model -> Ast.model
(** Apply and clear [m_delays] of a flat model.  Fixed delays keep the
    delayed signal a latch output; interval delays turn it into a
    combinational tap mux (so edge-fairness to-conditions may no longer
    reference it).  Raises {!Error} when an annotation names a signal that
    is not a latch output. *)
