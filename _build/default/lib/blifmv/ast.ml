type entry =
  | Any
  | Val of string
  | Set of string list
  | Not of string
  | Eq of string

type row = { r_inputs : entry list; r_outputs : entry list }

type table = {
  t_inputs : string list;
  t_outputs : string list;
  t_rows : row list;
  t_default : entry list option;
}

type var_decl = { v_names : string list; v_size : int; v_values : string list }
type latch = { l_input : string; l_output : string; l_reset : string list }
type subckt = { s_model : string; s_inst : string; s_conns : (string * string) list }

type model = {
  m_name : string;
  m_inputs : string list;
  m_outputs : string list;
  m_mvs : var_decl list;
  m_tables : table list;
  m_latches : latch list;
  m_subckts : subckt list;
  m_delays : (string * int * int) list;
}

type t = { models : model list; root : string }

let find_model t name = List.find_opt (fun m -> m.m_name = name) t.models

let line_count src =
  String.split_on_char '\n' src
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
