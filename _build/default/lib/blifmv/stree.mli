(** The extended combinational/sequential concurrency model (paper Sec. 4):
    a {e synchrony tree} whose leaves are the latches and whose internal
    nodes are labeled synchronous or asynchronous.  At every clock tick the
    set of latches that update is found by walking from the root, taking
    every branch of an S node and one non-deterministically chosen branch
    of an A node; all other latches hold their values.

    The tree is applied as a source-to-source transformation on a flat
    model: choice signals and hold-muxes are added, so the synchronous
    engines (symbolic and explicit) run unchanged on the result. *)

type t =
  | Leaf of string  (** a latch, by its output signal name *)
  | Sync of t list
  | Async of t list

val leaves : t -> string list

val validate : Ast.model -> t -> (unit, string) result
(** Leaves must name each latch output of the model exactly once. *)

val fully_synchronous : Ast.model -> t
(** [Sync] over all latches: the ordinary c/s model. *)

val interleaved : Ast.model -> t
(** [Async] over all latches: classic interleaving semantics. *)

val apply : Ast.model -> t -> Ast.model
(** Elaborate the tree: each A node gets a free choice signal; each latch
    input is replaced by a mux holding the latch when it is not selected.
    A fully synchronous tree returns the model unchanged.
    Raises [Invalid_argument] when {!validate} fails. *)
