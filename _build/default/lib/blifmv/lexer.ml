type line = { num : int; tokens : string list }

exception Error of int * string

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Split on whitespace, keeping brace groups like [{a,b}] intact.  Spaces
   are not allowed inside braces; a dangling brace is an error. *)
let tokenize num s =
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\r' ->
          if !depth > 0 then raise (Error (num, "whitespace inside braces"));
          flush ()
      | '{' | '(' ->
          incr depth;
          Buffer.add_char buf '{'
      | '}' | ')' ->
          decr depth;
          if !depth < 0 then raise (Error (num, "unbalanced brace"));
          Buffer.add_char buf '}'
      | c -> Buffer.add_char buf c)
    s;
  if !depth <> 0 then raise (Error (num, "unbalanced brace"));
  flush ();
  List.rev !toks

let logical_lines src =
  let raw = String.split_on_char '\n' src in
  let rec go num pending pending_start acc = function
    | [] ->
        if pending <> "" then raise (Error (pending_start, "dangling continuation"))
        else List.rev acc
    | l :: rest ->
        let l = strip_comment l in
        let trimmed = String.trim l in
        let continued =
          String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\'
        in
        let body =
          if continued then String.sub trimmed 0 (String.length trimmed - 1)
          else trimmed
        in
        let start = if pending = "" then num else pending_start in
        let joined = if pending = "" then body else pending ^ " " ^ body in
        if continued then go (num + 1) joined start acc rest
        else begin
          let tokens = tokenize start joined in
          let acc = if tokens = [] then acc else { num = start; tokens } :: acc in
          go (num + 1) "" 0 acc rest
        end
  in
  go 1 "" 0 [] raw
