exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let expand (m : Ast.model) =
  if m.Ast.m_delays = [] then m
  else begin
    if m.Ast.m_subckts <> [] then err "Timing.expand: model %s not flat" m.Ast.m_name;
    let domain_decl_of output =
      List.find_opt
        (fun (d : Ast.var_decl) -> List.mem output d.Ast.v_names)
        m.Ast.m_mvs
    in
    let new_mvs = ref [] in
    let new_tables = ref [] in
    let declare_like out name =
      match domain_decl_of out with
      | Some d -> new_mvs := { d with Ast.v_names = [ name ] } :: !new_mvs
      | None -> ()
    in
    let latches = ref [] in
    let expand_one (l : Ast.latch) (dmin, dmax) =
      let out = l.Ast.l_output in
      let stage i = Printf.sprintf "_dly%d_%s" i out in
      if dmin = dmax then begin
        (* fixed pipeline: in -> _dly1 -> ... -> out (still a latch) *)
        let d = dmin in
        if d = 1 then latches := l :: !latches
        else begin
          for i = 1 to d - 1 do
            declare_like out (stage i);
            let input = if i = 1 then l.Ast.l_input else stage (i - 1) in
            latches :=
              { Ast.l_input = input; l_output = stage i; l_reset = l.Ast.l_reset }
              :: !latches
          done;
          latches :=
            { l with Ast.l_input = stage (d - 1) } :: !latches
        end
      end
      else begin
        (* interval delay: a dmax-deep chain plus a non-deterministic tap
           selector; [out] becomes the selected tap *)
        for i = 1 to dmax do
          declare_like out (stage i);
          let input = if i = 1 then l.Ast.l_input else stage (i - 1) in
          latches :=
            { Ast.l_input = input; l_output = stage i; l_reset = l.Ast.l_reset }
            :: !latches
        done;
        let k = dmax - dmin + 1 in
        let sel = "_tap_" ^ out in
        if k <> 2 then
          new_mvs := { Ast.v_names = [ sel ]; v_size = k; v_values = [] } :: !new_mvs;
        new_tables :=
          {
            Ast.t_inputs = [];
            t_outputs = [ sel ];
            t_rows =
              List.init k (fun i ->
                  { Ast.r_inputs = []; r_outputs = [ Ast.Val (string_of_int i) ] });
            t_default = None;
          }
          :: !new_tables;
        let taps = List.init k (fun i -> stage (dmin + i)) in
        new_tables :=
          {
            Ast.t_inputs = sel :: taps;
            t_outputs = [ out ];
            t_rows =
              List.mapi
                (fun i tap ->
                  {
                    Ast.r_inputs =
                      Ast.Val (string_of_int i)
                      :: List.map (fun _ -> Ast.Any) taps;
                    r_outputs = [ Ast.Eq tap ];
                  })
                taps;
            t_default = None;
          }
          :: !new_tables
      end
    in
    List.iter
      (fun (l : Ast.latch) ->
        match
          List.find_opt (fun (o, _, _) -> o = l.Ast.l_output) m.Ast.m_delays
        with
        | Some (_, dmin, dmax) -> expand_one l (dmin, dmax)
        | None -> latches := l :: !latches)
      m.Ast.m_latches;
    List.iter
      (fun (out, _, _) ->
        if
          not
            (List.exists (fun (l : Ast.latch) -> l.Ast.l_output = out)
               m.Ast.m_latches)
        then err ".delay %s: not a latch output" out)
      m.Ast.m_delays;
    {
      m with
      Ast.m_mvs = m.Ast.m_mvs @ List.rev !new_mvs;
      m_tables = m.Ast.m_tables @ List.rev !new_tables;
      m_latches = List.rev !latches;
      m_delays = [];
    }
  end
