(** Line-level tokenizer for BLIF-MV: strips ['#'] comments, joins
    backslash-continued lines, and splits each logical line into tokens. *)

type line = { num : int; tokens : string list }

exception Error of int * string
(** Line number and message. *)

val logical_lines : string -> line list
(** Non-empty logical lines of a source text, in order. *)
