exception Error of int * string

let fail num fmt = Format.kasprintf (fun s -> raise (Error (num, s))) fmt

let parse_entry num tok =
  if tok = "-" then Ast.Any
  else if String.length tok >= 2 && tok.[0] = '{' then begin
    let body = String.sub tok 1 (String.length tok - 2) in
    match String.split_on_char ',' body with
    | [] | [ "" ] -> fail num "empty value set"
    | vs -> Ast.Set vs
  end
  else if tok.[0] = '!' then Ast.Not (String.sub tok 1 (String.length tok - 1))
  else if tok.[0] = '=' then Ast.Eq (String.sub tok 1 (String.length tok - 1))
  else Ast.Val tok

(* Mutable accumulator for the model being parsed. *)
type building = {
  mutable b_name : string;
  mutable b_inputs : string list;
  mutable b_outputs : string list;
  mutable b_mvs : Ast.var_decl list;
  mutable b_tables : Ast.table list;
  mutable b_latches : Ast.latch list;
  mutable b_subckts : Ast.subckt list;
  mutable b_delays : (string * int * int) list;
  (* current table being filled, in reverse row order *)
  mutable b_cur : (string list * string list * Ast.row list * Ast.entry list option) option;
}

let fresh_building name =
  {
    b_name = name;
    b_inputs = [];
    b_outputs = [];
    b_mvs = [];
    b_tables = [];
    b_latches = [];
    b_subckts = [];
    b_delays = [];
    b_cur = None;
  }

let flush_table b =
  match b.b_cur with
  | None -> ()
  | Some (ins, outs, rows, dflt) ->
      b.b_cur <- None;
      b.b_tables <-
        { Ast.t_inputs = ins; t_outputs = outs; t_rows = List.rev rows;
          t_default = dflt }
        :: b.b_tables

let finish b =
  flush_table b;
  {
    Ast.m_name = b.b_name;
    m_inputs = List.rev b.b_inputs;
    m_outputs = List.rev b.b_outputs;
    m_mvs = List.rev b.b_mvs;
    m_tables = List.rev b.b_tables;
    m_latches = List.rev b.b_latches;
    m_subckts = List.rev b.b_subckts;
    m_delays = List.rev b.b_delays;
  }

let split_arrow tokens =
  let rec go before = function
    | [] -> None
    | "->" :: after -> Some (List.rev before, after)
    | t :: rest -> go (t :: before) rest
  in
  go [] tokens

let parse src =
  let lines = Lexer.logical_lines src in
  let models = ref [] in
  let cur = ref None in
  let with_model num f =
    match !cur with
    | None -> fail num "directive outside of a .model"
    | Some b -> f b
  in
  let handle { Lexer.num; tokens } =
    match tokens with
    | [] -> ()
    | dir :: args when String.length dir > 0 && dir.[0] = '.' -> (
        match dir with
        | ".model" -> (
            (match !cur with
            | Some b -> models := finish b :: !models
            | None -> ());
            match args with
            | [ name ] -> cur := Some (fresh_building name)
            | _ -> fail num ".model expects one name")
        | ".inputs" ->
            with_model num (fun b ->
                flush_table b;
                b.b_inputs <- List.rev_append args b.b_inputs)
        | ".outputs" ->
            with_model num (fun b ->
                flush_table b;
                b.b_outputs <- List.rev_append args b.b_outputs)
        | ".mv" ->
            with_model num (fun b ->
                flush_table b;
                match args with
                | names :: size :: values ->
                    let size =
                      match int_of_string_opt size with
                      | Some n when n >= 1 -> n
                      | _ -> fail num ".mv: bad size %s" size
                    in
                    let names = String.split_on_char ',' names in
                    if values <> [] && List.length values <> size then
                      fail num ".mv: %d values for size %d"
                        (List.length values) size;
                    b.b_mvs <-
                      { Ast.v_names = names; v_size = size; v_values = values }
                      :: b.b_mvs
                | _ -> fail num ".mv expects names and a size")
        | ".latch" ->
            with_model num (fun b ->
                flush_table b;
                match args with
                | [ i; o ] ->
                    b.b_latches <-
                      { Ast.l_input = i; l_output = o; l_reset = [] }
                      :: b.b_latches
                | _ -> fail num ".latch expects input and output")
        | ".reset" | ".r" ->
            with_model num (fun b ->
                flush_table b;
                match args with
                | out :: (_ :: _ as values) ->
                    let found = ref false in
                    b.b_latches <-
                      List.map
                        (fun l ->
                          if l.Ast.l_output = out then begin
                            found := true;
                            { l with Ast.l_reset = l.Ast.l_reset @ values }
                          end
                          else l)
                        b.b_latches;
                    if not !found then
                      fail num ".reset: no latch drives %s" out
                | _ -> fail num ".reset expects a latch output and values")
        | ".table" | ".names" ->
            with_model num (fun b ->
                flush_table b;
                match split_arrow args with
                | Some (ins, outs) ->
                    if outs = [] then fail num ".table: no outputs";
                    b.b_cur <- Some (ins, outs, [], None)
                | None -> (
                    (* BLIF convention: last signal is the single output *)
                    match List.rev args with
                    | out :: rev_ins ->
                        b.b_cur <- Some (List.rev rev_ins, [ out ], [], None)
                    | [] -> fail num ".table expects signals"))
        | ".default" ->
            with_model num (fun b ->
                match b.b_cur with
                | None -> fail num ".default outside of a table"
                | Some (ins, outs, rows, _) ->
                    if List.length args <> List.length outs then
                      fail num ".default: expected %d entries"
                        (List.length outs);
                    let entries = List.map (parse_entry num) args in
                    b.b_cur <- Some (ins, outs, rows, Some entries))
        | ".subckt" ->
            with_model num (fun b ->
                flush_table b;
                match args with
                | model :: inst :: conns ->
                    let parse_conn c =
                      match String.index_opt c '=' with
                      | Some i ->
                          ( String.sub c 0 i,
                            String.sub c (i + 1) (String.length c - i - 1) )
                      | None -> fail num ".subckt: bad connection %s" c
                    in
                    b.b_subckts <-
                      {
                        Ast.s_model = model;
                        s_inst = inst;
                        s_conns = List.map parse_conn conns;
                      }
                      :: b.b_subckts
                | _ -> fail num ".subckt expects a model and instance name")
        | ".delay" ->
            with_model num (fun b ->
                flush_table b;
                let int_arg s =
                  match int_of_string_opt s with
                  | Some n when n >= 1 -> n
                  | _ -> fail num ".delay: bad bound %s" s
                in
                match args with
                | [ out; d ] ->
                    let d = int_arg d in
                    b.b_delays <- (out, d, d) :: b.b_delays
                | [ out; dmin; dmax ] ->
                    let dmin = int_arg dmin and dmax = int_arg dmax in
                    if dmin > dmax then fail num ".delay: min above max";
                    b.b_delays <- (out, dmin, dmax) :: b.b_delays
                | _ -> fail num ".delay expects a latch output and bounds")
        | ".end" -> with_model num (fun b -> flush_table b)
        | ".exdc" | ".wire_load_slope" | ".gate" ->
            fail num "unsupported BLIF construct %s" dir
        | _ -> fail num "unknown directive %s" dir)
    | tokens ->
        with_model num (fun b ->
            match b.b_cur with
            | None -> fail num "table row outside of a table"
            | Some (ins, outs, rows, dflt) ->
                let arity = List.length ins + List.length outs in
                if List.length tokens <> arity then
                  fail num "row has %d entries, expected %d"
                    (List.length tokens) arity;
                let entries = List.map (parse_entry num) tokens in
                let rec take n acc = function
                  | rest when n = 0 -> (List.rev acc, rest)
                  | x :: rest -> take (n - 1) (x :: acc) rest
                  | [] -> assert false
                in
                let rin, rout = take (List.length ins) [] entries in
                let row = { Ast.r_inputs = rin; r_outputs = rout } in
                b.b_cur <- Some (ins, outs, row :: rows, dflt))
  in
  List.iter handle lines;
  (match !cur with
  | Some b -> models := finish b :: !models
  | None -> raise (Error (0, "no .model in input")));
  let models = List.rev !models in
  match models with
  | [] -> raise (Error (0, "no .model in input"))
  | first :: _ -> { Ast.models; root = first.Ast.m_name }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
