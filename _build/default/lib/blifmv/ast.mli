(** Abstract syntax of BLIF-MV, the multi-valued, non-deterministic
    extension of BLIF used as HSIS's intermediate format (paper Sec. 4). *)

type entry =
  | Any  (** ['-']: any value *)
  | Val of string  (** a single symbolic value *)
  | Set of string list  (** [{v1,v2,...}]: one of the listed values *)
  | Not of string  (** [!v]: any value except [v] *)
  | Eq of string  (** [=x] in an output column: copy input [x] *)

type row = { r_inputs : entry list; r_outputs : entry list }

type table = {
  t_inputs : string list;
  t_outputs : string list;
  t_rows : row list;
  t_default : entry list option;  (** outputs for uncovered input patterns *)
}

type var_decl = {
  v_names : string list;
  v_size : int;
  v_values : string list;  (** empty means ["0" .. size-1] *)
}

type latch = {
  l_input : string;  (** next-state signal *)
  l_output : string;  (** present-state signal *)
  l_reset : string list;  (** one or more initial values (non-determinism) *)
}

type subckt = {
  s_model : string;
  s_inst : string;
  s_conns : (string * string) list;  (** formal = actual *)
}

type model = {
  m_name : string;
  m_inputs : string list;
  m_outputs : string list;
  m_mvs : var_decl list;
  m_tables : table list;
  m_latches : latch list;
  m_subckts : subckt list;
  m_delays : (string * int * int) list;
      (** bounded transport delays: (latch output, dmin, dmax) — the timing
          extension of paper Sec. 8 item 1; see {!Timing}. *)
}

type t = { models : model list; root : string }

val find_model : t -> string -> model option
val line_count : string -> int
(** Number of non-blank lines in a BLIF-MV source text (Table 1 metric). *)
