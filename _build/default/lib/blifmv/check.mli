(** Legality and determinism analysis of flattened networks.

    A BLIF-MV description with no non-determinism is exactly synchronous
    hardware (paper Sec. 4); these checks decide which fragment a network
    lies in, and validate property automata (which must be deterministic
    for language containment, Sec. 5.2). *)

val table_deterministic : Net.t -> Net.ftable -> bool
(** No input pattern admits two distinct output tuples.  Decided by a
    pairwise row-overlap test, exact for the entry forms we produce. *)

val table_complete : Net.t -> Net.ftable -> bool
(** Every input pattern admits at least one output tuple. *)

val deterministic : Net.t -> bool
(** All tables deterministic and all latch resets unique. *)

val synthesizable : Net.t -> bool
(** Deterministic and closed-under-drivers: the synthesizable fragment. *)

val nondet_signals : Net.t -> string list
(** Names of signals driven non-deterministically (for diagnostics). *)
