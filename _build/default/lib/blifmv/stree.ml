type t = Leaf of string | Sync of t list | Async of t list

let rec leaves = function
  | Leaf l -> [ l ]
  | Sync ts | Async ts -> List.concat_map leaves ts

let validate (m : Ast.model) tree =
  let latch_outputs = List.map (fun l -> l.Ast.l_output) m.Ast.m_latches in
  let ls = leaves tree in
  let sorted = List.sort compare ls in
  if List.length sorted <> List.length (List.sort_uniq compare sorted) then
    Error "synchrony tree mentions a latch twice"
  else if List.sort compare latch_outputs <> sorted then
    Error "synchrony tree leaves do not match the model's latches"
  else Ok ()

let fully_synchronous (m : Ast.model) =
  Sync (List.map (fun l -> Leaf l.Ast.l_output) m.Ast.m_latches)

let interleaved (m : Ast.model) =
  Async (List.map (fun l -> Leaf l.Ast.l_output) m.Ast.m_latches)

(* Per latch, the (choice signal, branch index) constraints on its root
   path; [fresh k] allocates the choice signal of an A node. *)
let selection_paths tree ~fresh =
  let rec go tree acc_path acc =
    match tree with
    | Leaf l -> (l, List.rev acc_path) :: acc
    | Sync ts -> List.fold_left (fun acc t -> go t acc_path acc) acc ts
    | Async [ t ] -> go t acc_path acc (* a one-way choice is no choice *)
    | Async ts ->
        let choice = fresh (List.length ts) in
        snd
          (List.fold_left
             (fun (i, acc) t -> (i + 1, go t ((choice, i) :: acc_path) acc))
             (0, acc) ts)
  in
  go tree [] []

let apply (m : Ast.model) tree =
  (match validate m tree with
  | Ok () -> ()
  | Error e -> invalid_arg ("Stree.apply: " ^ e));
  let counter = ref 0 in
  let new_mvs = ref [] in
  let new_tables = ref [] in
  let fresh k =
    let name = Printf.sprintf "_ch%d" !counter in
    incr counter;
    if k <> 2 then
      new_mvs := { Ast.v_names = [ name ]; v_size = k; v_values = [] } :: !new_mvs;
    new_tables :=
      {
        Ast.t_inputs = [];
        t_outputs = [ name ];
        t_rows =
          List.init k (fun i ->
              { Ast.r_inputs = []; r_outputs = [ Ast.Val (string_of_int i) ] });
        t_default = None;
      }
      :: !new_tables;
    name
  in
  let paths = selection_paths tree ~fresh in
  let domain_decl_of output =
    List.find_opt
      (fun (d : Ast.var_decl) -> List.mem output d.Ast.v_names)
      m.Ast.m_mvs
  in
  let latches' =
    List.map
      (fun (l : Ast.latch) ->
        match List.assoc l.Ast.l_output paths with
        | [] -> l (* always selected: plain synchronous latch *)
        | path ->
            let hold = "_hold_" ^ l.Ast.l_output in
            (match domain_decl_of l.Ast.l_output with
            | Some d ->
                new_mvs :=
                  { d with Ast.v_names = [ hold ] } :: !new_mvs
            | None -> ());
            let choice_sigs = List.map fst path in
            let selected =
              List.map (fun (_, v) -> Ast.Val (string_of_int v)) path
            in
            new_tables :=
              {
                Ast.t_inputs = choice_sigs @ [ l.Ast.l_input; l.Ast.l_output ];
                t_outputs = [ hold ];
                t_rows =
                  [
                    {
                      Ast.r_inputs = selected @ [ Ast.Any; Ast.Any ];
                      r_outputs = [ Ast.Eq l.Ast.l_input ];
                    };
                  ];
                t_default = Some [ Ast.Eq l.Ast.l_output ];
              }
              :: !new_tables;
            { l with Ast.l_input = hold })
      m.Ast.m_latches
  in
  {
    m with
    Ast.m_mvs = m.Ast.m_mvs @ List.rev !new_mvs;
    m_tables = m.Ast.m_tables @ List.rev !new_tables;
    m_latches = latches';
  }
