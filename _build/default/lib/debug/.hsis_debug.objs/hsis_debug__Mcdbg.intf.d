lib/debug/mcdbg.mli: Bdd Ctl Expr Fair Format Hsis_auto Hsis_bdd Hsis_check Hsis_fsm Mc Reach Trace Trans
