lib/debug/trace.ml: Array Bdd Domain El Enc Fair Format Fun Hsis_auto Hsis_bdd Hsis_blifmv Hsis_check Hsis_fsm Hsis_mv List Net Printf Reach String Sym Trans
