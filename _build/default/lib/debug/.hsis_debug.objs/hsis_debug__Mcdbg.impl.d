lib/debug/mcdbg.ml: Bdd Ctl El Expr Fair Format Hashtbl Hsis_auto Hsis_bdd Hsis_blifmv Hsis_check Hsis_fsm Hsis_mv List Mc Printf Reach String Sym Trace Trans
