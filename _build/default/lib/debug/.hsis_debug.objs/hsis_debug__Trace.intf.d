lib/debug/trace.mli: Bdd El Format Hsis_bdd Hsis_check Hsis_fsm Reach Trans
