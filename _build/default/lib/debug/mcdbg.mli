open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_check

(** Interactive model-checking debugger (paper Sec. 6.2): unfold a failing
    CTL formula one step at a time.  The result is a machine-walkable
    explanation tree; a front end can present the user's choices (which
    conjunct to certify false, which successor to pursue) one node at a
    time. *)

type explanation =
  | Prop_value of Expr.t * bool
      (** the propositional atom's value at the current state *)
  | Conjuncts of (Ctl.t * explanation) list
      (** a conjunction fails: the failing conjuncts (user picks one) *)
  | Disjuncts of (Ctl.t * explanation) list
      (** a disjunction fails: every disjunct fails *)
  | Negation of explanation
  | Successor of Trace.step * explanation
      (** one transition, then continue at the reached state *)
  | Path of Trace.step list * explanation
      (** a finite path witnessing an eventuality failure, explained at its
          last state *)
  | Lasso of Trace.t
      (** an infinite (fair) path witnessing an EG/AF-style failure *)
  | Choice of (Trace.step * explanation) list
      (** several successors, each with its own continuation (the user
          prompts which next state to pursue) *)
  | Holds
      (** the sub-formula holds here; nothing to explain *)
  | Unreachable of Ctl.t
      (** no witness exists anywhere (e.g. EF of an unreachable target) *)

type ctx

val make :
  ?fairness:Fair.compiled list -> Trans.t -> reach:Reach.t -> ctx

val explain : ctx -> Ctl.t -> state:Bdd.t -> explanation
(** Why the formula fails (or how it holds, for negations) at the given
    concrete state. *)

val explain_failure : ctx -> Ctl.t -> Mc.outcome -> explanation option
(** Explanation at one failing initial state; [None] when the property
    holds. *)

val pp : Trans.t -> Format.formatter -> explanation -> unit
(** Render the whole tree (a CLI front end may instead walk it node by
    node). *)

val depth : explanation -> int
