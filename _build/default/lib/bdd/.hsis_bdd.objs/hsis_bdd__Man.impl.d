lib/bdd/man.ml: Array Float Format Hashtbl List Option Printf
