lib/bdd/man.mli:
