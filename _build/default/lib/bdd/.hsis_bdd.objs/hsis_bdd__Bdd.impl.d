lib/bdd/bdd.ml: Array Format Gc List Man String
