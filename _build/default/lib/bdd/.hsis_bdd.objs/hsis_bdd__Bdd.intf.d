lib/bdd/bdd.mli: Format Man
