open Hsis_bdd
open Hsis_mv
open Hsis_blifmv

(** Symbol table binding network signals to BDD-variable encodings.

    Every signal gets a present-state encoding; latch outputs additionally
    get a next-state encoding whose bits are interleaved with the present
    bits (pairing present/next keeps relabeling a level-preserving
    permutation). *)

type t

val make : ?order:int list -> Bdd.man -> Net.t -> t
(** Allocate variables in [order] (default {!Order.signal_order}). *)

val net : t -> Net.t
val man : t -> Bdd.man
val pres : t -> int -> Enc.t
(** Present-state encoding of a signal. *)

val next : t -> int -> Enc.t
(** Next-state encoding; raises [Invalid_argument] for non-state signals. *)

val is_state : t -> int -> bool
val state_signals : t -> int list

val pres_cube_of : t -> int list -> Bdd.t
(** Quantification cube of the present encodings of the given signals. *)

val next_cube : t -> Bdd.t
(** Cube of all next-state variables. *)

val state_cube : t -> Bdd.t
(** Cube of all present-state variables of latches. *)

val nonstate_cube : t -> Bdd.t
(** Cube of present encodings of all non-state signals (inputs and
    internal signals) — the variables quantified when forming T(x,y). *)

val next_to_pres : t -> Bdd.varmap
val pres_to_next : t -> Bdd.varmap

val domain_ok : t -> Bdd.t
(** Conjunction of present-state domain constraints of all state signals. *)

val initial : t -> Bdd.t
(** Initial-state set from latch reset values (over present vars). *)

val state_of_assignment : t -> (int -> bool) -> (int * int) list
(** Decode a total BDD-variable assignment into [(state signal, value)]
    pairs. *)

val pp_state : t -> Format.formatter -> (int * int) list -> unit
(** Print a decoded state using signal and value names. *)

val num_state_bits : t -> int

val state_bit_vars : t -> int list
(** BDD variable indices of all present-state bits. *)

val var_pairs : t -> (int * int) list
(** (present bit, next bit) variable pairs of every latch. *)
