open Hsis_blifmv

let signal_order (net : Net.t) =
  let n = Net.num_signals net in
  (* fanin: for each signal, the inputs of the table driving it. *)
  let fanin = Array.make n [] in
  List.iter
    (fun (tb : Net.ftable) ->
      List.iter (fun o -> fanin.(o) <- tb.Net.ft_inputs) tb.Net.ft_outputs)
    net.Net.tables;
  List.iter
    (fun (l : Net.flatch) -> fanin.(l.Net.fl_output) <- [ l.Net.fl_input ])
    net.Net.latches;
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs s =
    if not (visited.(s)) then begin
      visited.(s) <- true;
      order := s :: !order;
      List.iter dfs fanin.(s)
    end
  in
  (* Latches first (state variables at the top of the order, cones
     interleaved), then primary outputs, then anything left. *)
  List.iter (fun (l : Net.flatch) -> dfs l.Net.fl_output) net.Net.latches;
  List.iter dfs net.Net.outputs;
  for s = 0 to n - 1 do
    dfs s
  done;
  List.rev !order
