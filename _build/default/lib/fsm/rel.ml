open Hsis_bdd
open Hsis_mv
open Hsis_blifmv

let in_entry_bdd sym tb pos entry =
  let s = List.nth tb.Net.ft_inputs pos in
  let enc = Sym.pres sym s in
  match entry with
  | Net.FAny -> Bdd.dtrue (Sym.man sym)
  | Net.FSet vs -> Enc.set_bdd enc vs
  | Net.FEq _ -> invalid_arg "Rel: =x in an input column"

let out_entry_bdd sym tb pos entry =
  let s = List.nth tb.Net.ft_outputs pos in
  let enc = Sym.pres sym s in
  match entry with
  | Net.FAny -> Enc.domain_constraint enc
  | Net.FSet vs -> Enc.set_bdd enc vs
  | Net.FEq k -> Enc.eq enc (Sym.pres sym (List.nth tb.Net.ft_inputs k))

let table_rel sym (tb : Net.ftable) =
  let man = Sym.man sym in
  let row_match (r : Net.frow) =
    List.fold_left Bdd.dand (Bdd.dtrue man)
      (List.mapi (fun pos e -> in_entry_bdd sym tb pos e) r.Net.fr_in)
  in
  let row_out entries =
    List.fold_left Bdd.dand (Bdd.dtrue man)
      (List.mapi (fun pos e -> out_entry_bdd sym tb pos e) entries)
  in
  let covered = ref (Bdd.dfalse man) in
  let rel = ref (Bdd.dfalse man) in
  List.iter
    (fun (r : Net.frow) ->
      let m = row_match r in
      covered := Bdd.dor !covered m;
      rel := Bdd.dor !rel (Bdd.dand m (row_out r.Net.fr_out)))
    tb.Net.ft_rows;
  (match tb.Net.ft_default with
  | Some entries ->
      rel := Bdd.dor !rel (Bdd.dand (Bdd.dnot !covered) (row_out entries))
  | None -> ());
  (* Exclude illegal codes on every signal the table touches. *)
  let dc =
    Bdd.conj man
      (List.map
         (fun s -> Enc.domain_constraint (Sym.pres sym s))
         (tb.Net.ft_inputs @ tb.Net.ft_outputs))
  in
  Bdd.dand !rel dc

let latch_rel sym (l : Net.flatch) =
  Enc.eq (Sym.next sym l.Net.fl_output) (Sym.pres sym l.Net.fl_input)

let table_support (net : Net.t) (tb : Net.ftable) =
  ignore net;
  List.sort_uniq compare (tb.Net.ft_inputs @ tb.Net.ft_outputs)

let latch_support (net : Net.t) (l : Net.flatch) =
  [ l.Net.fl_input; Net.num_signals net + l.Net.fl_output ]
