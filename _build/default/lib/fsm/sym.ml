open Hsis_bdd
open Hsis_mv
open Hsis_blifmv

type t = {
  net : Net.t;
  man : Bdd.man;
  pres_enc : Enc.t array;
  next_enc : Enc.t option array;
  nxt2prs : Bdd.varmap;
  prs2nxt : Bdd.varmap;
}

let make ?order man (net : Net.t) =
  let order = match order with Some o -> o | None -> Order.signal_order net in
  let n = Net.num_signals net in
  if List.sort compare order <> List.init n Fun.id then
    invalid_arg "Sym.make: order must mention each signal exactly once";
  let is_state = Array.make n false in
  List.iter (fun (l : Net.flatch) -> is_state.(l.Net.fl_output) <- true)
    net.Net.latches;
  let pres_enc = Array.make n None in
  let next_enc = Array.make n None in
  let pairs = ref [] in
  List.iter
    (fun s ->
      let d = Net.dom net s in
      let nbits = Domain.bits d in
      let name = (Net.signal net s).Net.s_name in
      let pres_bits = Array.make nbits (Bdd.dtrue man) in
      let next_bits = Array.make nbits (Bdd.dtrue man) in
      for i = 0 to nbits - 1 do
        let b = Bdd.new_var ~name:(Printf.sprintf "%s.%d" name i) man in
        pres_bits.(i) <- b;
        if is_state.(s) then begin
          let b' = Bdd.new_var ~name:(Printf.sprintf "%s'.%d" name i) man in
          next_bits.(i) <- b';
          pairs := (Bdd.var_index b, Bdd.var_index b') :: !pairs
        end
      done;
      pres_enc.(s) <- Some (Enc.make d pres_bits);
      if is_state.(s) then next_enc.(s) <- Some (Enc.make d next_bits))
    order;
  let pairs = !pairs in
  let nxt2prs = Bdd.make_varmap man (List.map (fun (p, x) -> (x, p)) pairs) in
  let prs2nxt = Bdd.make_varmap man pairs in
  {
    net;
    man;
    pres_enc = Array.map Option.get pres_enc;
    next_enc;
    nxt2prs;
    prs2nxt;
  }

let net t = t.net
let man t = t.man
let pres t s = t.pres_enc.(s)

let next t s =
  match t.next_enc.(s) with
  | Some e -> e
  | None ->
      invalid_arg
        ("Sym.next: " ^ (Net.signal t.net s).Net.s_name ^ " is not a state signal")

let is_state t s = t.next_enc.(s) <> None
let state_signals t = Net.state_signals t.net

let pres_cube_of t signals =
  Bdd.conj t.man (List.map (fun s -> Enc.cube t.pres_enc.(s)) signals)

let next_cube t =
  Bdd.conj t.man
    (List.filter_map (Option.map Enc.cube) (Array.to_list t.next_enc))

let state_cube t = pres_cube_of t (state_signals t)

let nonstate_cube t =
  let all = List.init (Net.num_signals t.net) Fun.id in
  pres_cube_of t (List.filter (fun s -> not (is_state t s)) all)

let next_to_pres t = t.nxt2prs
let pres_to_next t = t.prs2nxt

let domain_ok t =
  Bdd.conj t.man
    (List.map (fun s -> Enc.domain_constraint t.pres_enc.(s)) (state_signals t))

let initial t =
  List.fold_left
    (fun acc (l : Net.flatch) ->
      Bdd.dand acc (Enc.set_bdd t.pres_enc.(l.Net.fl_output) l.Net.fl_reset))
    (Bdd.dtrue t.man) t.net.Net.latches

let state_of_assignment t env =
  List.map (fun s -> (s, Enc.decode t.pres_enc.(s) env)) (state_signals t)

let pp_state t fmt state =
  let items =
    List.map
      (fun (s, v) ->
        Printf.sprintf "%s=%s"
          (Net.signal t.net s).Net.s_name
          (Domain.value (Net.dom t.net s) v))
      state
  in
  Format.fprintf fmt "%s" (String.concat " " items)

let num_state_bits t =
  List.fold_left
    (fun acc s -> acc + Array.length (Enc.bits t.pres_enc.(s)))
    0 (state_signals t)

let state_bit_vars t =
  List.concat_map (fun s -> Enc.var_indices t.pres_enc.(s)) (state_signals t)

let var_pairs t =
  List.concat_map
    (fun s ->
      List.combine
        (Enc.var_indices t.pres_enc.(s))
        (Enc.var_indices (next t s)))
    (state_signals t)
