open Hsis_bdd
open Hsis_blifmv

(** Per-component relation BDDs (each BLIF-MV table is one relation, as in
    paper Sec. 4). *)

val table_rel : Sym.t -> Net.ftable -> Bdd.t
(** Characteristic function of the table over the present encodings of its
    signals, including row union, [.default] fallback, and the domain
    constraints of every signal involved. *)

val latch_rel : Sym.t -> Net.flatch -> Bdd.t
(** [next(output) = pres(input)]. *)

val table_support : Net.t -> Net.ftable -> int list
(** Abstract support as signal ids (present space). *)

val latch_support : Net.t -> Net.flatch -> int list
(** Abstract support: the input's present id and the output's {e next} id,
    encoded as [num_signals + output]. *)
