(** Static BDD variable ordering for interacting FSMs (paper footnote 1,
    ref [1]): a depth-first traversal of the network's fanin graph from the
    latches keeps signals that interact in the same table at nearby
    levels. *)

val signal_order : Hsis_blifmv.Net.t -> int list
(** All signal ids, each exactly once. *)
