lib/fsm/sym.ml: Array Bdd Domain Enc Format Fun Hsis_bdd Hsis_blifmv Hsis_mv List Net Option Order Printf String
