lib/fsm/rel.ml: Bdd Enc Hsis_bdd Hsis_blifmv Hsis_mv List Net Sym
