lib/fsm/order.ml: Array Hsis_blifmv List Net
