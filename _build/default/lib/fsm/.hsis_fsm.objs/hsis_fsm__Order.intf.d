lib/fsm/order.mli: Hsis_blifmv
