lib/fsm/trans.mli: Bdd Hsis_bdd Sym
