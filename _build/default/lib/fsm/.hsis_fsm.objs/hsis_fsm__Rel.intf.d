lib/fsm/rel.mli: Bdd Hsis_bdd Hsis_blifmv Net Sym
