lib/fsm/trans.ml: Apply Array Bdd Enc Fun Hashtbl Hsis_bdd Hsis_blifmv Hsis_mv Hsis_quant List Net Rel Schedule Sym
