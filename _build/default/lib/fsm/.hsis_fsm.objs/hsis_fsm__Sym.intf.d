lib/fsm/sym.mli: Bdd Enc Format Hsis_bdd Hsis_blifmv Hsis_mv Net
