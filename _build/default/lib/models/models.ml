let table1 () =
  [
    Philos.make ();
    Pingpong.make ();
    Gigamax.make ();
    Scheduler.make ();
    Dcnew.make ();
    Mdlc.make ();
  ]

let table1_small () =
  [
    Philos.make ();
    Pingpong.make ();
    Gigamax.make ();
    Scheduler.make ~n:5 ();
    Dcnew.make ();
    Mdlc.make ();
  ]

let by_name name =
  let candidates =
    table1 ()
    @ [
        Scheduler.make ~n:5 ();
        Scheduler.make ~n:8 ();
        Scheduler.make ~n:12 ();
        Peterson.make ();
        Peterson.broken ();
      ]
  in
  List.find_opt (fun m -> m.Model.name = name) candidates
