(** The Encore Gigamax cache-consistency protocol (Table 1 row "gigamax",
    after McMillan-Schwalbe): three caches with invalid/shared/dirty lines,
    a two-phase bus, and a memory-freshness bit.  Nine CTL coherence
    properties and one containment property. *)

val make : unit -> Model.t
