lib/models/pingpong.mli: Model
