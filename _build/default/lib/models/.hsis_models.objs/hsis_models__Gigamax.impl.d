lib/models/gigamax.ml: Model
