lib/models/dcnew.ml: Model
