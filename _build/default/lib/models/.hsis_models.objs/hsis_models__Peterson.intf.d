lib/models/peterson.mli: Model
