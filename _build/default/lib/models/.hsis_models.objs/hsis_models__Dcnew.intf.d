lib/models/dcnew.mli: Model
