lib/models/scheduler.ml: Buffer Model Printf
