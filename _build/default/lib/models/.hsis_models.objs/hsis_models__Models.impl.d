lib/models/models.ml: Dcnew Gigamax List Mdlc Model Peterson Philos Pingpong Scheduler
