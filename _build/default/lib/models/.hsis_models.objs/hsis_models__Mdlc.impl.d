lib/models/mdlc.ml: Model
