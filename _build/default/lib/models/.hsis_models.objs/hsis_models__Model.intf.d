lib/models/model.mli: Hsis_auto Hsis_blifmv
