lib/models/pingpong.ml: Model
