lib/models/gigamax.mli: Model
