lib/models/philos.mli: Model
