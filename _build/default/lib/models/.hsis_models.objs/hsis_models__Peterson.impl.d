lib/models/peterson.ml: Model Printf
