lib/models/scheduler.mli: Model
