lib/models/philos.ml: Model
