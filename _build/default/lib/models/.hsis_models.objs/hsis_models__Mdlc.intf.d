lib/models/mdlc.mli: Model
