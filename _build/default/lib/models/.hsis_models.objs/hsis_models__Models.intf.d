lib/models/models.mli: Model
