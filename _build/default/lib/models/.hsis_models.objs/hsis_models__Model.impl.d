lib/models/model.ml: Hsis_auto Hsis_blifmv Hsis_verilog
