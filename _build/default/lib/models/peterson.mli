(** Peterson's mutual-exclusion algorithm, interleaved via a scheduler
    choice — the classic shared-memory protocol (the paper notes the
    interleaving shared-memory model maps into synchronous c/s, Sec. 4).
    Mutual exclusion holds; entry is starvation-free under a fair
    scheduler.  The [broken] variant raises its flag too late and violates
    mutual exclusion, exercising the debugger. *)

val make : unit -> Model.t
val broken : unit -> Model.t
