(** A message data-link controller (Table 1 row "2mdlc"): an
    alternating-bit-style sender/receiver pair over lossy data and ack
    channels with bounded retry.  One expensive fair-CTL property (the
    paper's slowest MC row) and one containment property. *)

val make : unit -> Model.t
