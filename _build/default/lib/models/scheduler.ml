let default_n = 17

let bits_for n =
  let rec go b acc = if acc >= n then b else go (b + 1) (2 * acc) in
  go 0 1

let verilog n =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let w = max 1 (bits_for n) in
  pf "// Milner's cycler with %d stations: a token advances when the\n" n;
  pf "// station at the token starts its task; tasks finish on their own.\n";
  pf "module scheduler(clk);\n  input clk;\n";
  pf "  reg [%d:0] pos;\n" (w - 1);
  for i = 0 to n - 1 do
    pf "  reg run_%d;\n" i
  done;
  pf "  wire start;\n  assign start = $ND(0, 1);\n";
  for i = 0 to n - 1 do
    pf "  wire fin_%d;\n  assign fin_%d = $ND(0, 1);\n" i i
  done;
  (* task running at the token position *)
  pf "  wire atpos_run;\n  assign atpos_run = ";
  for i = 0 to n - 2 do
    pf "(pos == %d) ? run_%d : " i i
  done;
  pf "run_%d;\n" (n - 1);
  pf "  wire legal;\n  assign legal = pos < %d;\n" n;
  pf "  wire advance;\n  assign advance = start & !atpos_run & legal;\n";
  pf "  wire start0;\n  assign start0 = advance & pos == 0;\n";
  pf "  wire start1;\n  assign start1 = advance & pos == 1;\n";
  pf "  initial pos = 0;\n";
  for i = 0 to n - 1 do
    pf "  initial run_%d = 0;\n" i
  done;
  pf "  always @(posedge clk) begin\n";
  pf "    if (advance) pos <= (pos == %d) ? 0 : pos + 1;\n" (n - 1);
  pf "  end\n";
  for i = 0 to n - 1 do
    pf "  always @(posedge clk) begin\n";
    pf "    if (advance && pos == %d) run_%d <= 1;\n" i i;
    pf "    else if (run_%d && fin_%d) run_%d <= 0;\n" i i i;
    pf "  end\n"
  done;
  pf "endmodule\n";
  Buffer.contents b

let pif =
  {|
ctl token_home "AG EF pos=0";

automaton stays_legal {
  states ok; init ok;
  edge ok ok "legal=1";
  accept inf { ok } fin { };
}
lc stays_legal;

# round-robin order: between two starts of station 0 lies a start of 1
automaton round_robin {
  states a b; init a;
  edge a a "start0=0";
  edge a b "start0=1";
  edge b a "start1=1";
  edge b b "start1=0 & start0=0";
  accept inf { a, b } fin { };
}
lc round_robin;
|}

let make ?(n = default_n) () =
  {
    Model.name = (if n = default_n then "scheduler" else Printf.sprintf "scheduler%d" n);
    verilog = verilog n;
    pif;
    description = Printf.sprintf "Milner cycler with %d stations" n;
  }
