let verilog =
  {|
// Two dining philosophers, forks taken one at a time (deadlock possible).
module philos(clk);
  input clk;
  enum {THINK, HUNGRY, ONE, EAT} reg p0;
  enum {THINK, HUNGRY, ONE, EAT} reg p1;
  enum {FREE, OWN0, OWN1} reg f0;
  enum {FREE, OWN0, OWN1} reg f1;
  wire turn; wire act;
  assign turn = $ND(0, 1);
  assign act = $ND(0, 1);
  initial p0 = THINK;
  initial p1 = THINK;
  initial f0 = FREE;
  initial f1 = FREE;
  always @(posedge clk) begin
    if (act) begin
      if (turn == 0) begin
        case (p0)
          THINK: p0 <= HUNGRY;
          HUNGRY: if (f0 == FREE) begin f0 <= OWN0; p0 <= ONE; end
          ONE: if (f1 == FREE) begin f1 <= OWN0; p0 <= EAT; end
          EAT: begin p0 <= THINK; f0 <= FREE; f1 <= FREE; end
        endcase
      end else begin
        case (p1)
          THINK: p1 <= HUNGRY;
          HUNGRY: if (f1 == FREE) begin f1 <= OWN1; p1 <= ONE; end
          ONE: if (f0 == FREE) begin f0 <= OWN1; p1 <= EAT; end
          EAT: begin p1 <= THINK; f0 <= FREE; f1 <= FREE; end
        endcase
      end
    end
  end
endmodule
|}

let pif =
  {|
ctl mutual_exclusion "AG !(p0=EAT & p1=EAT)";
ctl possible_progress "AG (p0=HUNGRY -> EF p0=EAT)";

automaton never_both_eat {
  states ok; init ok;
  edge ok ok "!(p0=EAT & p1=EAT)";
  accept inf { ok } fin { };
}
lc never_both_eat;

# fails: the deadlock (each holds one fork) starves philosopher 0
automaton p0_eats_forever_often {
  states wait eat; init wait;
  edge wait wait "p0!=EAT";
  edge wait eat "p0=EAT";
  edge eat wait "p0!=EAT";
  edge eat eat "p0=EAT";
  accept inf { eat } fin { };
}
lc p0_eats_forever_often;
|}

let make () =
  {
    Model.name = "philos";
    verilog;
    pif;
    description = "two dining philosophers with single-fork pickup";
  }
