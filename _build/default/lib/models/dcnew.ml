let verilog =
  {|
// Data controller: copy a block in bursts, drain the pipeline, retry on
// aborted transfers.
module dcnew(clk);
  input clk;
  enum {IDLE, SETUP, COPY, DRAIN, DONE, ERROR} reg st;
  reg [5:0] src;
  reg [5:0] dst;
  reg [2:0] errs;
  wire req;
  wire abort;
  wire [5:0] burst;
  assign req = $ND(0, 1);
  assign abort = $ND(0, 1);
  assign burst = $ND(1, 2, 4);
  initial st = IDLE;
  initial src = 0;
  initial dst = 0;
  initial errs = 0;
  always @(posedge clk) begin
    case (st)
      IDLE: if (req) st <= SETUP;
      SETUP: begin src <= 0; dst <= 0; st <= COPY; end
      COPY: begin
        if (abort) st <= ERROR;
        else begin
          src <= src + burst;
          dst <= dst + 1;
          if (dst >= 60) st <= DRAIN;
        end
      end
      DRAIN: begin
        if (dst == 0) st <= DONE;
        else dst <= dst - 1;
      end
      ERROR: begin
        errs <= (errs == 7) ? 7 : errs + 1;
        st <= IDLE;
      end
      DONE: if (req) st <= IDLE;
    endcase
  end
endmodule
|}

let pif =
  {|
ctl completion_possible "EF st=DONE";
ctl error_recovers "AG (st=ERROR -> AX st=IDLE)";
ctl drain_empties "AG (st=DONE -> dst=0)";
ctl restartable "AG EF st=IDLE";
ctl copy_commits "AG (st=COPY -> EF (st=DRAIN | st=ERROR))";
ctl setup_zeroes "AG (st=SETUP -> AX (st=COPY & dst=0))";
ctl err_saturates "AG !(errs=7 & st=SETUP) | AG EF st=IDLE";

automaton no_done_after_error {
  states calm burned; init calm;
  edge calm calm "st!=ERROR";
  edge calm burned "st=ERROR";
  edge burned calm "st=IDLE";
  edge burned burned "st!=IDLE & st!=DONE";
  accept inf { calm } fin { };
}
lc no_done_after_error;
|}

let make () =
  {
    Model.name = "dcnew";
    verilog;
    pif;
    description = "burst data controller with abort/retry";
  }
