(** A benchmark design: Verilog source plus its PIF property file
    (fairness constraints, CTL formulas, containment automata). *)

type t = {
  name : string;
  verilog : string;
  pif : string;
  description : string;
}

val parse_pif : t -> Hsis_auto.Pif.t
val compile : t -> Hsis_blifmv.Ast.t
(** Through the Verilog front end. *)

val flat : t -> Hsis_blifmv.Ast.model
val net : t -> Hsis_blifmv.Net.t
