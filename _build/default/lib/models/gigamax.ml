let verilog =
  {|
// Simplified Gigamax cache-consistency protocol: four caches, a
// two-phase bus (request, then completion or retry), and a bit telling
// whether main memory holds a fresh copy of the line.
module gigamax(clk);
  input clk;
  enum {INV, SHARED, DIRTY} reg c0;
  enum {INV, SHARED, DIRTY} reg c1;
  enum {INV, SHARED, DIRTY} reg c2;
  enum {INV, SHARED, DIRTY} reg c3;
  enum {B_IDLE, B_BUSY} reg bus;
  enum {READ, WRITE, FLUSH, NOP} reg rop;
  reg [1:0] rwho;
  reg memfresh;
  wire [1:0] who;
  enum {READ, WRITE, FLUSH, NOP} wire op;
  wire done;
  assign who = $ND(0, 1, 2, 3);
  assign op = $ND(READ, WRITE, FLUSH, NOP);
  assign done = $ND(0, 1);
  initial c0 = INV;
  initial c1 = INV;
  initial c2 = INV;
  initial c3 = INV;
  initial bus = B_IDLE;
  initial rop = NOP;
  initial rwho = 0;
  initial memfresh = 1;
  always @(posedge clk) begin
    if (bus == B_IDLE) begin
      if (op != NOP) begin
        bus <= B_BUSY;
        rop <= op;
        rwho <= who;
      end
    end else begin
      if (done) begin
        bus <= B_IDLE;
        rop <= NOP;
        if (rop == WRITE) begin
          if (rwho == 0) begin c0 <= DIRTY; c1 <= INV; c2 <= INV; c3 <= INV; end
          if (rwho == 1) begin c1 <= DIRTY; c0 <= INV; c2 <= INV; c3 <= INV; end
          if (rwho == 2) begin c2 <= DIRTY; c0 <= INV; c1 <= INV; c3 <= INV; end
          if (rwho == 3) begin c3 <= DIRTY; c0 <= INV; c1 <= INV; c2 <= INV; end
          memfresh <= 0;
        end
        if (rop == READ) begin
          if (rwho == 0 && c0 == INV) begin
            c0 <= SHARED;
            if (c1 == DIRTY) c1 <= SHARED;
            if (c2 == DIRTY) c2 <= SHARED;
            if (c3 == DIRTY) c3 <= SHARED;
            memfresh <= 1;
          end
          if (rwho == 1 && c1 == INV) begin
            c1 <= SHARED;
            if (c0 == DIRTY) c0 <= SHARED;
            if (c2 == DIRTY) c2 <= SHARED;
            if (c3 == DIRTY) c3 <= SHARED;
            memfresh <= 1;
          end
          if (rwho == 2 && c2 == INV) begin
            c2 <= SHARED;
            if (c0 == DIRTY) c0 <= SHARED;
            if (c1 == DIRTY) c1 <= SHARED;
            if (c3 == DIRTY) c3 <= SHARED;
            memfresh <= 1;
          end
          if (rwho == 3 && c3 == INV) begin
            c3 <= SHARED;
            if (c0 == DIRTY) c0 <= SHARED;
            if (c1 == DIRTY) c1 <= SHARED;
            if (c2 == DIRTY) c2 <= SHARED;
            memfresh <= 1;
          end
        end
        if (rop == FLUSH) begin
          if (rwho == 0 && c0 == DIRTY) begin c0 <= INV; memfresh <= 1; end
          if (rwho == 1 && c1 == DIRTY) begin c1 <= INV; memfresh <= 1; end
          if (rwho == 2 && c2 == DIRTY) begin c2 <= INV; memfresh <= 1; end
          if (rwho == 3 && c3 == DIRTY) begin c3 <= INV; memfresh <= 1; end
        end
      end
    end
  end
endmodule
|}

let pif =
  {|
# nine CTL coherence properties
ctl one_owner_01  "AG !(c0=DIRTY & c1=DIRTY)";
ctl one_owner_02  "AG !(c0=DIRTY & c2=DIRTY)";
ctl one_owner_03  "AG !(c0=DIRTY & c3=DIRTY)";
ctl one_owner_12  "AG !(c1=DIRTY & c2=DIRTY)";
ctl one_owner_13  "AG !(c1=DIRTY & c3=DIRTY)";
ctl one_owner_23  "AG !(c2=DIRTY & c3=DIRTY)";
ctl stale_has_owner "AG (memfresh=0 -> (c0=DIRTY | c1=DIRTY | c2=DIRTY | c3=DIRTY))";
ctl can_quiesce   "AG EF (bus=B_IDLE & memfresh=1)";
ctl write_possible "EF c3=DIRTY";

automaton single_writer {
  states coherent; init coherent;
  edge coherent coherent "!(c0=DIRTY & c1=DIRTY) & !(c0=DIRTY & c2=DIRTY) & !(c0=DIRTY & c3=DIRTY) & !(c1=DIRTY & c2=DIRTY) & !(c1=DIRTY & c3=DIRTY) & !(c2=DIRTY & c3=DIRTY)";
  accept inf { coherent } fin { };
}
lc single_writer;
|}

let make () =
  {
    Model.name = "gigamax";
    verilog;
    pif;
    description = "4-cache Gigamax-style coherence protocol with 2-phase bus";
  }
