(** Dining philosophers (Table 1 row "philos"): two philosophers, two
    forks picked up one at a time — mutual exclusion holds, the liveness
    containment property fails on the classic deadlock, which exercises
    the debugger. *)

val make : unit -> Model.t
