let verilog =
  {|
// Two players bounce a ball: serve, then alternate ping / pong.
module pingpong(clk);
  input clk;
  enum {SERVE, PING, PONG} reg ball;
  initial ball = SERVE;
  always @(posedge clk) begin
    case (ball)
      SERVE: ball <= PING;
      PING:  ball <= PONG;
      PONG:  ball <= PING;
    endcase
  end
endmodule
|}

let pif =
  {|
# six small properties in both formalisms
ctl serve_once "AG (ball=SERVE -> AX ball=PING)";
ctl alternate1 "AG (ball=PING -> AX ball=PONG)";
ctl alternate2 "AG (ball=PONG -> AX ball=PING)";
ctl rally "AG AF ball=PING";
ctl no_return "AG (ball!=SERVE | ball=SERVE)";
ctl reach_pong "EF ball=PONG";

automaton never_reserve {
  states rally; init rally;
  edge rally rally "true";
  accept inf { rally } fin { };
}
lc never_reserve;

automaton serve_first {
  states fresh played; init fresh;
  edge fresh fresh "ball=SERVE";
  edge fresh played "ball!=SERVE";
  edge played played "ball!=SERVE";
  accept inf { played } fin { fresh };
}
lc serve_first;

automaton strict_alternation {
  states s p q; init s;
  edge s s "ball=SERVE";
  edge s p "ball=PING";
  edge p q "ball=PONG";
  edge q p "ball=PING";
  accept inf { p, q } fin { };
}
lc strict_alternation;

automaton eventually_pong {
  states waiting seen; init waiting;
  edge waiting waiting "ball!=PONG";
  edge waiting seen "ball=PONG";
  edge seen seen "true";
  accept inf { seen } fin { waiting };
}
lc eventually_pong;

automaton ping_recurs {
  states hunt hit; init hunt;
  edge hunt hunt "ball!=PING";
  edge hunt hit "ball=PING";
  edge hit hunt "ball!=PING";
  edge hit hit "ball=PING";
  accept inf { hit } fin { };
}
lc ping_recurs;

automaton no_double_pong {
  states ok bad; init ok;
  edge ok ok "ball!=PONG";
  edge ok bad "ball=PONG";
  edge bad ok "ball!=PONG";
  edge bad bad "ball=PONG";
  accept inf { ok } fin { };
}
lc no_double_pong;
|}

let make () =
  {
    Model.name = "pingpong";
    verilog;
    pif;
    description = "toy two-player rally; 3 reachable states";
  }
