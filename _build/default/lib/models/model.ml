type t = {
  name : string;
  verilog : string;
  pif : string;
  description : string;
}

let parse_pif t = Hsis_auto.Pif.parse t.pif
let compile t = Hsis_verilog.Elab.compile t.verilog
let flat t = Hsis_blifmv.Flatten.flatten (compile t)
let net t = Hsis_blifmv.Net.of_model (flat t)
