(** A DMA-style data controller (Table 1 row "dcnew"): a control FSM
    moving a block with a non-deterministic burst size, abort/retry
    handling and an error counter.  Seven CTL properties and one
    containment property. *)

val make : unit -> Model.t
