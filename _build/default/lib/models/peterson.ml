(* The broken variant waits on the wrong turn polarity: process 0 yields
   to itself, so both processes can pass the gate together. *)
let verilog ~p0_turn_guard =
  Printf.sprintf
    {|
// Peterson's mutual exclusion, one process step per clock tick.
module peterson(clk);
  input clk;
  enum {IDLE, WANT, WAITTURN, CRIT} reg p0;
  enum {IDLE, WANT, WAITTURN, CRIT} reg p1;
  reg flag0;
  reg flag1;
  reg turn;
  wire who;
  assign who = $ND(0, 1);
  initial p0 = IDLE;
  initial p1 = IDLE;
  initial flag0 = 0;
  initial flag1 = 0;
  initial turn = 0;
  always @(posedge clk) begin
    if (who == 0) begin
      case (p0)
        IDLE: begin p0 <= WANT; flag0 <= 1; end
        WANT: begin p0 <= WAITTURN; turn <= 1; end
        WAITTURN: if (flag1 == 0 | turn == %s) p0 <= CRIT;
        CRIT: begin p0 <= IDLE; flag0 <= 0; end
      endcase
    end else begin
      case (p1)
        IDLE: begin p1 <= WANT; flag1 <= 1; end
        WANT: begin p1 <= WAITTURN; turn <= 0; end
        WAITTURN: if (flag0 == 0 | turn == 1) p1 <= CRIT;
        CRIT: begin p1 <= IDLE; flag1 <= 0; end
      endcase
    end
  end
endmodule
|}
    p0_turn_guard

let pif =
  {|
# both processes get scheduled infinitely often
fairness inf "who=0";
fairness inf "who=1";

ctl mutual_exclusion "AG !(p0=CRIT & p1=CRIT)";
ctl no_starvation_0 "AG (p0=WAITTURN -> AF p0=CRIT)";
ctl no_starvation_1 "AG (p1=WAITTURN -> AF p1=CRIT)";
ctl can_contend "EF (p0=WAITTURN & p1=WAITTURN)";

automaton crit_excl {
  states ok; init ok;
  edge ok ok "!(p0=CRIT & p1=CRIT)";
  accept inf { ok } fin { };
}
lc crit_excl;
|}

let make () =
  {
    Model.name = "peterson";
    verilog = verilog ~p0_turn_guard:"0";
    pif;
    description = "Peterson's mutual exclusion under a fair scheduler";
  }

let broken () =
  {
    Model.name = "peterson-broken";
    verilog = verilog ~p0_turn_guard:"1";
    pif;
    description = "Peterson with an inverted turn guard: both can enter";
  }
