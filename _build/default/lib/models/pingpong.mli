(** The "ping pong" toy example of Table 1: two players exchanging a ball,
    3 reachable states, six tiny properties. *)

val make : unit -> Model.t
