(** The six evaluation designs of the paper's Table 1. *)

val table1 : unit -> Model.t list
(** philos, pingpong, gigamax, scheduler, dcnew, mdlc at paper scale
    (scheduler at its 17-station default: ~2.2M states). *)

val table1_small : unit -> Model.t list
(** Same designs with the scheduler scaled down (for tests). *)

val by_name : string -> Model.t option
(** Table-1 designs plus scheduler5/8/12 and peterson / peterson-broken. *)
