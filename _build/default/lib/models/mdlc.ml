let verilog =
  {|
// Two independent message data-link controllers (the "2" of 2mdlc):
// alternating-bit protocol with lossy channels, retransmission and a
// bounded retry counter, instantiated twice.
module mdlc2(clk);
  input clk;
  link a(.clk(clk));
  link b(.clk(clk));
endmodule

module link(clk);
  input clk;
  enum {S_SEND, S_WAIT} reg sst;
  reg sseq;
  reg [1:0] sdata;
  reg [1:0] tries;
  // data channel (one frame deep)
  reg cvalid;
  reg cseq;
  reg [1:0] cdata;
  // ack channel
  reg avalid;
  reg aseq;
  // receiver
  reg rseq;
  reg [1:0] rdata;
  wire lose;
  wire alose;
  wire timeout;
  wire [1:0] newdata;
  wire deliver;
  assign lose = $ND(0, 1);
  assign alose = $ND(0, 1);
  assign timeout = $ND(0, 1);
  assign newdata = $ND(0, 1, 2, 3);
  assign deliver = cvalid & !lose & cseq == rseq;
  initial sst = S_SEND;
  initial sseq = 0;
  initial sdata = 0;
  initial tries = 0;
  initial cvalid = 0;
  initial cseq = 0;
  initial cdata = 0;
  initial avalid = 0;
  initial aseq = 0;
  initial rseq = 0;
  initial rdata = 0;
  always @(posedge clk) begin
    // receiver end of the data channel
    if (cvalid) begin
      if (!lose) begin
        if (cseq == rseq) begin
          rdata <= cdata;
          rseq <= !rseq;
        end
        avalid <= 1;
        aseq <= cseq;
      end
      cvalid <= 0;
    end
    // sender
    if (sst == S_SEND) begin
      if (!cvalid) begin
        cvalid <= 1;
        cseq <= sseq;
        cdata <= sdata;
        sst <= S_WAIT;
      end
    end else begin
      if (avalid) begin
        avalid <= 0;
        if (!alose && aseq == sseq) begin
          sseq <= !sseq;
          sdata <= newdata;
          tries <= 0;
          sst <= S_SEND;
        end
      end else begin
        if (timeout) begin
          tries <= (tries == 3) ? 3 : tries + 1;
          sst <= S_SEND;
        end
      end
    end
  end
endmodule
|}

let pif =
  {|
# the channels may lose messages, but not forever
fairness notforever "a/lose=1";
fairness notforever "a/alose=1";
fairness inf "a/timeout=1";
fairness notforever "b/lose=1";
fairness notforever "b/alose=1";
fairness inf "b/timeout=1";

# the one (expensive) fair-CTL property: both senders keep making
# progress under fair loss
ctl sender_progress "AG ((a/sst=S_WAIT -> AF a/sst=S_SEND) & (b/sst=S_WAIT -> AF b/sst=S_SEND))";

# containment: link a's expected sequence bit toggles exactly one cycle
# after a delivery, never spontaneously.
automaton seq_discipline {
  states e0 e1 o0 o1; init e0;
  edge e0 e0 "a/rseq=0 & a/deliver=0";
  edge e0 e1 "a/rseq=0 & a/deliver=1";
  edge e1 o0 "a/rseq=1 & a/deliver=0";
  edge e1 o1 "a/rseq=1 & a/deliver=1";
  edge o0 o0 "a/rseq=1 & a/deliver=0";
  edge o0 o1 "a/rseq=1 & a/deliver=1";
  edge o1 e0 "a/rseq=0 & a/deliver=0";
  edge o1 e1 "a/rseq=0 & a/deliver=1";
  accept inf { e0, e1, o0, o1 } fin { };
}
lc seq_discipline;
|}

let make () =
  {
    Model.name = "mdlc";
    verilog;
    pif;
    description =
      "two alternating-bit data-link controllers over lossy channels";
  }
