lib/sim/simulator.mli: Enum Format Hsis_blifmv Hsis_check Net
