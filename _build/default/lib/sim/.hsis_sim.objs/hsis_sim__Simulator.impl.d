lib/sim/simulator.ml: Array Domain Enum Format Fun Hashtbl Hsis_blifmv Hsis_check Hsis_mv List Net Printf String
