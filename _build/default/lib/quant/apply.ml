open Hsis_bdd

type result = { value : Bdd.t; peak_nodes : int }

let execute ~rels ~cube_of sched =
  let peak = ref 0 in
  let note b =
    let s = Bdd.dag_size b in
    if s > !peak then peak := s;
    b
  in
  let rec go = function
    | Schedule.Leaf { rel; q } ->
        let b = rels.(rel) in
        if q = [] then note b else note (Bdd.exists ~cube:(cube_of q) b)
    | Schedule.Join { left; right; q } ->
        let l = go left in
        let r = go right in
        if q = [] then note (Bdd.dand l r)
        else note (Bdd.and_exists ~cube:(cube_of q) l r)
  in
  let value = go sched in
  { value; peak_nodes = !peak }
