open Hsis_bdd

(** Execute a quantification schedule over concrete BDD relations. *)

type result = { value : Bdd.t; peak_nodes : int }
(** [peak_nodes] is the largest intermediate BDD (dag nodes) built while
    executing the schedule — the metric the scheduling heuristics minimize. *)

val execute :
  rels:Bdd.t array -> cube_of:(int list -> Bdd.t) -> Schedule.t -> result
(** [cube_of vars] must return the BDD-variable cube encoding the abstract
    variables [vars] (an MV signal maps to several BDD bits).  Products at
    joins use the relational-product operator so the conjunction under a
    quantifier is never materialized. *)
