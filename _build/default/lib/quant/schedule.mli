(** Early-quantification scheduling (paper Secs. 1 and 4, ref [14]).

    Given a collection of relations (identified by index, each with an
    abstract support — a set of variable ids) and a set of variables to
    quantify existentially from their product, compute a tree telling in
    which order to multiply relations and where each variable can be
    quantified {e early}, i.e. as soon as no relation outside the partial
    product mentions it.  The goal is to keep intermediate BDDs small. *)

type t =
  | Leaf of { rel : int; q : int list }
      (** Relation [rel]; quantify [q] from it immediately. *)
  | Join of { left : t; right : t; q : int list }
      (** Multiply the two sub-results, then quantify [q]. *)

type problem = { supports : int list array; quantify : int list }
(** [supports.(i)] is the abstract support of relation [i]. *)

val min_width : problem -> t
(** Bucket-elimination style: repeatedly eliminate the quantified variable
    whose cluster (all active items mentioning it) has the smallest combined
    support, joining the cluster smallest-first. *)

val pair_clustering : problem -> t
(** Repeatedly join the pair of items whose union support is smallest,
    quantifying variables that become local. *)

val naive : problem -> t
(** Left fold in input order, all quantification at the root (baseline). *)

val quantified_vars : t -> int list
(** All variables quantified somewhere in the tree, sorted. *)

val rels_used : t -> int list
(** All relation indices, sorted. *)

val validate : problem -> t -> (unit, string) result
(** Every relation used exactly once; the quantified variables are exactly
    [quantify] (minus those appearing in no support); each variable is
    quantified only after its last occurrence. *)

val max_cluster_support : problem -> t -> int
(** Width metric: the largest abstract support of any intermediate node
    (a proxy for intermediate BDD size, used by benches). *)

val pp : Format.formatter -> t -> unit
