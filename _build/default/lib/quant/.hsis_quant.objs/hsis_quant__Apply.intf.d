lib/quant/apply.mli: Bdd Hsis_bdd Schedule
