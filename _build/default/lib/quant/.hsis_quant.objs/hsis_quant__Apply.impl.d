lib/quant/apply.ml: Array Bdd Hsis_bdd Schedule
