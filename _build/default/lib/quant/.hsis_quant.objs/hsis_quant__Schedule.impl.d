lib/quant/schedule.ml: Array Format Fun Hashtbl Int List Option Set String
