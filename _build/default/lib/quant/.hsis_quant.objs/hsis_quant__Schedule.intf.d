lib/quant/schedule.mli: Format
