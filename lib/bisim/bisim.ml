open Hsis_bdd
open Hsis_mv
open Hsis_blifmv
open Hsis_fsm
open Hsis_limits

type result = {
  relation : Bdd.t;
  classes : int;
  states : float;
  iterations : int;
  to_shadow : Bdd.varmap;
  x2_cube : Bdd.t;
  verdict : unit Verdict.t;
}

let holds r = Verdict.holds r.verdict

let compute ?obs ?(class_cap = 4096) ?(limits = Limits.none) trans ~reach =
  let sym = Trans.sym trans in
  let man = Trans.man trans in
  let net = Sym.net sym in
  let state_sigs = Sym.state_signals sym in
  let pres_bits =
    List.concat_map (fun s -> Enc.var_indices (Sym.pres sym s)) state_sigs
  in
  let next_bits =
    List.concat_map (fun s -> Enc.var_indices (Sym.next sym s)) state_sigs
  in
  (* shadow copies of both spaces *)
  let shadow v = Bdd.var_index (Bdd.new_var ~name:(Printf.sprintf "~%d" v) man) in
  let x2_bits = List.map shadow pres_bits in
  let y2_bits = List.map shadow next_bits in
  let zip = List.combine in
  let map_t2 =
    Bdd.make_varmap man (zip pres_bits x2_bits @ zip next_bits y2_bits)
  in
  let map_e_next =
    Bdd.make_varmap man (zip pres_bits next_bits @ zip x2_bits y2_bits)
  in
  let map_x_to_x2 = Bdd.make_varmap man (zip pres_bits x2_bits) in
  let map_x2_to_x = Bdd.make_varmap man (zip x2_bits pres_bits) in
  let cube_of bits = Bdd.cube man (List.map (Bdd.ithvar man) bits) in
  let y_cube = cube_of next_bits in
  let y2_cube = cube_of y2_bits in
  let x1_cube = cube_of pres_bits in
  let x2_cube = cube_of x2_bits in
  let states = Bdd.satcount_vars reach ~vars:pres_bits in
  (* Refinement progress survives an interrupt: [best] always holds the
     coarsest relation established so far (an over-approximation of the
     true bisimulation), so a budgeted run still returns usable partial
     state next to its Inconclusive verdict. *)
  let best = ref (Bdd.dtrue man) in
  let iterations = ref 0 in
  let finish verdict relation classes =
    {
      relation;
      classes;
      states;
      iterations = !iterations;
      to_shadow = map_x_to_x2;
      x2_cube;
      verdict;
    }
  in
  Bdd.with_limits man limits @@ fun () ->
  match
    let t = Trans.monolithic trans in
    let t2 = Bdd.permute map_t2 t in
    let reach2 = Bdd.permute map_x_to_x2 reach in
    (* observation equivalence *)
    let observed =
      match obs with
      | Some o -> o
      | None -> if net.Net.outputs <> [] then net.Net.outputs else state_sigs
    in
    let e0 =
      List.fold_left
        (fun acc o ->
          let dom = Net.dom net o in
          let per_value acc v =
            let s =
              Bdd.dand reach
                (Trans.abstract_to_states trans
                   (Enc.value_bdd (Sym.pres sym o) v))
            in
            let s2 = Bdd.permute map_x_to_x2 s in
            Bdd.dand acc (Bdd.eqv s s2)
          in
          List.fold_left per_value acc (List.init (Domain.size dom) Fun.id))
        (Bdd.dand reach reach2)
        observed
    in
    best := e0;
    iterations := 1;
    (* greatest fixpoint of mutual simulation *)
    let rec fix e k =
      if not (Limits.step_allowed limits ~step:k) then begin
        Bdd.note_interrupt man Limits.Limit_steps;
        raise (Limits.Interrupted Limits.Limit_steps)
      end;
      let e_next = Bdd.permute map_e_next e in
      let inner1 = Bdd.and_exists ~cube:y2_cube t2 e_next in
      let match1 =
        Bdd.dnot (Bdd.exists ~cube:y_cube (Bdd.dand t (Bdd.dnot inner1)))
      in
      let inner2 = Bdd.and_exists ~cube:y_cube t e_next in
      let match2 =
        Bdd.dnot (Bdd.exists ~cube:y2_cube (Bdd.dand t2 (Bdd.dnot inner2)))
      in
      let e' = Bdd.dand e (Bdd.dand match1 match2) in
      best := e';
      iterations := k;
      if Bdd.equal e e' then e else fix e' (k + 1)
    in
    fix e0 1
  with
  | exception Limits.Interrupted r ->
      finish (Verdict.inconclusive ~at_step:!iterations r) !best (-1)
  | relation -> (
      (* count classes by peeling representatives *)
      match
        let rec count rem n =
          if Bdd.is_false rem then n
          else if n >= class_cap then -1
          else begin
            let assignment = Bdd.pick_state rem ~over:pres_bits in
            let x0 =
              Bdd.conj man
                (List.map
                   (fun (v, b) ->
                     let lit = Bdd.ithvar man v in
                     if b then lit else Bdd.dnot lit)
                   assignment)
            in
            let cls_x2 = Bdd.and_exists ~cube:x1_cube relation x0 in
            let cls = Bdd.permute map_x2_to_x cls_x2 in
            count (Bdd.dand rem (Bdd.dnot cls)) (n + 1)
          end
        in
        count reach 0
      with
      | exception Limits.Interrupted r ->
          (* The relation itself is exact; only the class count was cut
             short. *)
          finish (Verdict.inconclusive ~at_step:!iterations r) relation (-1)
      | classes -> finish Verdict.Pass relation classes)

let equivalent_to _trans result set =
  let set2 = Bdd.permute result.to_shadow set in
  Bdd.exists ~cube:result.x2_cube (Bdd.dand result.relation set2)
