open Hsis_bdd
open Hsis_blifmv
open Hsis_limits

(** Hierarchical verification support (paper Sec. 8 item 3): check that a
    lower-level design refines a higher-level one, so properties proved on
    the abstraction need not be re-evaluated.

    Refinement here is the standard simulation preorder over observed
    signals: every reachable implementation state is related to a
    specification state that can produce the same observations, every
    implementation move is matched by a specification move, and every
    implementation initial state is covered by a specification initial
    state. *)

type result = {
  verdict : Bdd.t Verdict.t;
      (** [Fail] carries [uncovered_init]; [Inconclusive] means a resource
          budget fired before the simulation fixpoint converged *)
  relation : Bdd.t;
      (** the greatest simulation (over the combined variable spaces) *)
  iterations : int;
  uncovered_init : Bdd.t;
      (** implementation initial states no spec initial state simulates
          (empty when the verdict is [Pass]) *)
}

val holds : result -> bool

val refines :
  ?obs:string list -> ?limits:Limits.t -> impl:Net.t -> spec:Net.t -> unit ->
  result
(** [obs] defaults to the specification's declared outputs; each observed
    name must exist in both networks with equal-size domains.  Both
    networks are built into one fresh BDD manager.  Observation matching
    is capability containment: any observed valuation the implementation
    can produce in a state, the related specification state can produce
    too.  Raises [Invalid_argument] on missing or mismatched observables. *)
