open Hsis_bdd
open Hsis_mv
open Hsis_blifmv
open Hsis_fsm
open Hsis_limits

type result = {
  verdict : Bdd.t Verdict.t;
  relation : Bdd.t;
  iterations : int;
  uncovered_init : Bdd.t;
}

let holds r = Verdict.holds r.verdict

let refines ?obs ?(limits = Limits.none) ~impl ~spec () =
  let man = Bdd.new_man () in
  Bdd.set_limits man limits;
  (* Both networks live in this fresh manager; disarm it on the way out so
     post-processing on the result is not interrupted. *)
  Fun.protect ~finally:(fun () -> Bdd.set_limits man Limits.none)
  @@ fun () ->
  let iterations = ref 0 in
  try
  let sym_i = Sym.make man impl in
  let sym_s = Sym.make man spec in
  let trans_i = Trans.build sym_i in
  let trans_s = Trans.build sym_s in
  let obs =
    match obs with
    | Some o -> o
    | None ->
        List.map (fun s -> (Net.signal spec s).Net.s_name) spec.Net.outputs
  in
  if obs = [] then invalid_arg "Simrel.refines: no observed signals";
  let lookup net name =
    match Net.find_signal net name with
    | Some s -> s
    | None -> invalid_arg ("Simrel.refines: no signal " ^ name ^ " in a model")
  in
  (* capability containment on each observed value *)
  let obs_ok =
    List.fold_left
      (fun acc name ->
        let si = lookup impl name and ss = lookup spec name in
        let di = Net.dom impl si and ds = Net.dom spec ss in
        if Domain.size di <> Domain.size ds then
          invalid_arg ("Simrel.refines: domain mismatch on " ^ name);
        let per_value acc v =
          let can_i =
            Trans.abstract_to_states trans_i
              (Enc.value_bdd (Sym.pres sym_i si) v)
          in
          let can_s =
            Trans.abstract_to_states trans_s
              (Enc.value_bdd (Sym.pres sym_s ss) v)
          in
          Bdd.dand acc (Bdd.imp can_i can_s)
        in
        List.fold_left per_value acc (List.init (Domain.size di) Fun.id))
      (Bdd.dtrue man) obs
  in
  (* restrict to reachable impl states (simulation need only cover them) *)
  let reach_i =
    let rec go reached frontier =
      if Bdd.is_false frontier then reached
      else begin
        let next =
          Bdd.dand (Trans.image trans_i frontier) (Bdd.dnot reached)
        in
        go (Bdd.dor reached next) next
      end
    in
    let init = Trans.initial trans_i in
    go init init
  in
  let s0 =
    Bdd.dand obs_ok (Bdd.dand reach_i (Sym.domain_ok sym_s))
  in
  let to_next =
    Bdd.make_varmap man (Sym.var_pairs sym_i @ Sym.var_pairs sym_s)
  in
  let y_i_cube = Sym.next_cube sym_i in
  let y_s_cube = Sym.next_cube sym_s in
  let t_i = Trans.monolithic trans_i in
  let t_s = Trans.monolithic trans_s in
  let rec gfp s k =
    iterations := k;
    if not (Limits.step_allowed limits ~step:k) then begin
      Bdd.note_interrupt man Limits.Limit_steps;
      raise (Limits.Interrupted Limits.Limit_steps)
    end;
    let s_next = Bdd.permute to_next s in
    (* spec can match: exists y_s with a spec transition into relation *)
    let inner = Bdd.and_exists ~cube:y_s_cube t_s s_next in
    (* for all impl moves *)
    let matched =
      Bdd.dnot (Bdd.exists ~cube:y_i_cube (Bdd.dand t_i (Bdd.dnot inner)))
    in
    let s' = Bdd.dand s matched in
    if Bdd.equal s s' then s else gfp s' (k + 1)
  in
  let relation = gfp s0 1 in
  let x_s_cube = Sym.state_cube sym_s in
  let covered =
    Bdd.exists ~cube:x_s_cube (Bdd.dand (Trans.initial trans_s) relation)
  in
  let uncovered_init = Bdd.dand (Trans.initial trans_i) (Bdd.dnot covered) in
  let verdict =
    if Bdd.is_false uncovered_init then Verdict.Pass
    else Verdict.Fail uncovered_init
  in
  { verdict; relation; iterations = !iterations; uncovered_init }
  with Limits.Interrupted r ->
    {
      verdict = Verdict.inconclusive ~at_step:!iterations r;
      relation = Bdd.dtrue man;
      iterations = !iterations;
      uncovered_init = Bdd.dfalse man;
    }
