open Hsis_bdd
open Hsis_fsm
open Hsis_limits

(** Symbolic bisimulation for state minimization (paper Sec. 2 item 3):
    the greatest relation E(x1, x2) over reachable states such that related
    states agree on the observed signals and every move of one can be
    matched by the other into related states. *)

type result = {
  relation : Bdd.t;
      (** E over present vars (x1) and the shadow copy (x2); when the
          verdict is [Inconclusive] this is the coarsest refinement
          reached so far — an over-approximation of the true
          bisimulation *)
  classes : int;  (** number of equivalence classes (-1 if above the cap
                      or when counting was interrupted) *)
  states : float;  (** reachable states, for the reduction ratio *)
  iterations : int;
  to_shadow : Bdd.varmap;  (** present vars -> shadow copy *)
  x2_cube : Bdd.t;  (** quantification cube of the shadow variables *)
  verdict : unit Verdict.t;
      (** [Pass] when the fixpoint (and class counting) ran to completion;
          [Inconclusive] when a resource budget fired.  Never [Fail]. *)
}

val holds : result -> bool

val compute :
  ?obs:int list -> ?class_cap:int -> ?limits:Limits.t -> Trans.t ->
  reach:Bdd.t -> result
(** [obs] defaults to the network's outputs (falling back to all latch
    outputs when the network declares none).  Shadow variables for the
    second state copy are allocated in the transition structure's manager
    on first use.  [limits] governs the fixpoint (its step quota caps
    refinement iterations); on a breach the partial relation is returned
    with an [Inconclusive] verdict. *)

val equivalent_to : Trans.t -> result -> Bdd.t -> Bdd.t
(** All reachable states bisimilar to some state of the given set. *)
