(** The six evaluation designs of the paper's Table 1. *)

val table1 : unit -> Model.t list
(** philos, pingpong, gigamax, scheduler, dcnew, mdlc at paper scale
    (scheduler at its 17-station default: ~2.2M states). *)

val table1_small : unit -> Model.t list
(** Same designs with the scheduler scaled down (for tests). *)

val scaled : ?sizes:int list -> unit -> Model.t list
(** The parameterized families (philos / ring / scheduler) at each given
    size — the scaled designs of the parallel benchmarks, 10-100x the
    Table 1 state counts at the default sizes. *)

val by_name : string -> Model.t option
(** Table-1 designs, ring, peterson / peterson-broken, plus any instance
    of the parameterized families by suffixed name: ["philos<n>"],
    ["ring<n>"], ["scheduler<n>"] (n >= 2). *)
