let verilog2 =
  {|
// Two dining philosophers, forks taken one at a time (deadlock possible).
module philos(clk);
  input clk;
  enum {THINK, HUNGRY, ONE, EAT} reg p0;
  enum {THINK, HUNGRY, ONE, EAT} reg p1;
  enum {FREE, OWN0, OWN1} reg f0;
  enum {FREE, OWN0, OWN1} reg f1;
  wire turn; wire act;
  assign turn = $ND(0, 1);
  assign act = $ND(0, 1);
  initial p0 = THINK;
  initial p1 = THINK;
  initial f0 = FREE;
  initial f1 = FREE;
  always @(posedge clk) begin
    if (act) begin
      if (turn == 0) begin
        case (p0)
          THINK: p0 <= HUNGRY;
          HUNGRY: if (f0 == FREE) begin f0 <= OWN0; p0 <= ONE; end
          ONE: if (f1 == FREE) begin f1 <= OWN0; p0 <= EAT; end
          EAT: begin p0 <= THINK; f0 <= FREE; f1 <= FREE; end
        endcase
      end else begin
        case (p1)
          THINK: p1 <= HUNGRY;
          HUNGRY: if (f1 == FREE) begin f1 <= OWN1; p1 <= ONE; end
          ONE: if (f0 == FREE) begin f0 <= OWN1; p1 <= EAT; end
          EAT: begin p1 <= THINK; f0 <= FREE; f1 <= FREE; end
        endcase
      end
    end
  end
endmodule
|}

let pif2 =
  {|
ctl mutual_exclusion "AG !(p0=EAT & p1=EAT)";
ctl possible_progress "AG (p0=HUNGRY -> EF p0=EAT)";

automaton never_both_eat {
  states ok; init ok;
  edge ok ok "!(p0=EAT & p1=EAT)";
  accept inf { ok } fin { };
}
lc never_both_eat;

# fails: the deadlock (each holds one fork) starves philosopher 0
automaton p0_eats_forever_often {
  states wait eat; init wait;
  edge wait wait "p0!=EAT";
  edge wait eat "p0=EAT";
  edge eat wait "p0!=EAT";
  edge eat eat "p0=EAT";
  accept inf { eat } fin { };
}
lc p0_eats_forever_often;
|}

(* The same protocol at ring size [n]: philosopher [i] picks fork [i]
   (left) first, then fork [i+1 mod n]; one philosopher moves per step,
   chosen by a multi-way $ND.  Forks are single bits — ownership is
   implicit in the philosopher states, and only the holder releases.  The
   circular wait (everybody in ONE) stays reachable at every [n].

   The design is hierarchical: one [phil] module instantiated [n] times.
   A fork is shared by two neighbours, so the fork bits stay in the top;
   each instance reads whether its forks are free and exports its
   take/release intents ([takel]/[taker]/[rel]), which the top folds into
   the fork updates.  All [n] instances are exact renamings of each
   other, which is what the [Iso_shared] transition-relation strategy
   detects and builds only once. *)
let verilog n =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "// %d dining philosophers, forks taken one at a time (deadlock possible).\n"
    n;
  (* the root is the first module in the file *)
  pf "module philos(clk);\n  input clk;\n";
  for i = 0 to n - 1 do
    pf "  reg f%d;\n" i
  done;
  pf "  wire [%d:0] turn;\n" (max 1 (Scheduler.bits_for n) - 1);
  pf "  assign turn = $ND(%s);\n"
    (String.concat ", " (List.init n string_of_int));
  pf "  wire act;\n  assign act = $ND(0, 1);\n";
  for i = 0 to n - 1 do
    pf "  wire go%d;\n  assign go%d = act & (turn == %d);\n" i i i;
    pf "  wire free%d;\n  assign free%d = f%d == 0;\n" i i i;
    pf "  wire tl%d;\n  wire tr%d;\n  wire rel%d;\n" i i i
  done;
  for i = 0 to n - 1 do
    pf "  initial f%d = 0;\n" i
  done;
  (* fork [i]: left fork of philosopher [i], right fork of [i-1]; taken
     by either neighbour's pickup intent, dropped when its holder eats
     (the two intents are mutually exclusive — one mover per step). *)
  for i = 0 to n - 1 do
    let left = (i + n - 1) mod n in
    pf "  always @(posedge clk) begin\n";
    pf "    if (tl%d | tr%d) f%d <= 1;\n" i left i;
    pf "    else if (rel%d | rel%d) f%d <= 0;\n" i left i;
    pf "  end\n"
  done;
  for i = 0 to n - 1 do
    let right = (i + 1) mod n in
    pf
      "  phil ph%d (.clk(clk), .go(go%d), .lfree(free%d), .rfree(free%d), \
       .takel(tl%d), .taker(tr%d), .rel(rel%d));\n"
      i i i right i i i
  done;
  pf "endmodule\n\n";
  pf "module phil(clk, go, lfree, rfree, takel, taker, rel);\n";
  pf "  input clk;\n  input go;\n  input lfree;\n  input rfree;\n";
  pf "  output takel;\n  output taker;\n  output rel;\n";
  pf "  enum {THINK, HUNGRY, ONE, EAT} reg s;\n";
  pf "  initial s = THINK;\n";
  pf "  assign takel = go & (s == HUNGRY) & lfree;\n";
  pf "  assign taker = go & (s == ONE) & rfree;\n";
  pf "  assign rel = go & (s == EAT);\n";
  pf "  always @(posedge clk) begin\n";
  pf "    if (go) begin\n";
  pf "      case (s)\n";
  pf "        THINK: s <= HUNGRY;\n";
  pf "        HUNGRY: if (lfree) s <= ONE;\n";
  pf "        ONE: if (rfree) s <= EAT;\n";
  pf "        EAT: s <= THINK;\n";
  pf "      endcase\n";
  pf "    end\n";
  pf "  end\n";
  pf "endmodule\n";
  Buffer.contents b

(* Per-philosopher properties, so the property count scales with the ring:
   [n] adjacent-mutex invariants plus [n] possible-progress formulas (each
   an EF fixpoint — the per-property model-checking work the parallel
   benchmarks fan out).  Philosopher state lives at the flattened
   hierarchical name [ph<i>/s]. *)
let pif n =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for i = 0 to n - 1 do
    pf "ctl mutual_exclusion_%d \"AG !(ph%d/s=EAT & ph%d/s=EAT)\";\n" i i
      ((i + 1) mod n)
  done;
  for i = 0 to n - 1 do
    pf "ctl possible_progress_%d \"AG (ph%d/s=HUNGRY -> EF ph%d/s=EAT)\";\n" i
      i i
  done;
  Buffer.contents b

let make ?(n = 2) () =
  if n = 2 then
    {
      Model.name = "philos";
      verilog = verilog2;
      pif = pif2;
      description = "two dining philosophers with single-fork pickup";
    }
  else
    {
      Model.name = Printf.sprintf "philos%d" n;
      verilog = verilog n;
      pif = pif n;
      description =
        Printf.sprintf "%d dining philosophers with single-fork pickup" n;
    }
