(* A token-ring mutex with [n] stations.  A single token position cycles
   through the stations; each station independently runs IDLE -> WAIT ->
   CS -> IDLE, entering its critical section only while the token is at
   its slot.  The token may only advance past an IDLE station, so a
   waiting station freezes it until it has been through the critical
   section — entering CS and advancing the token can never happen in the
   same step, which is what makes the mutual exclusion invariants hold.
   Reachable states grow as [n * 3^n]: the scaled rows of the parallel
   benchmarks. *)

let default_n = 4

let verilog n =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let w = max 1 (Scheduler.bits_for n) in
  pf "// Token-ring mutex with %d stations.\n" n;
  pf "module ring(clk);\n  input clk;\n";
  pf "  reg [%d:0] pos;\n" (w - 1);
  for i = 0 to n - 1 do
    pf "  enum {IDLE, WAIT, CS} reg s%d;\n" i
  done;
  pf "  wire [%d:0] who;\n" (w - 1);
  pf "  assign who = $ND(%s);\n"
    (String.concat ", " (List.init n string_of_int));
  pf "  wire req;\n  assign req = $ND(0, 1);\n";
  pf "  wire mv;\n  assign mv = $ND(0, 1);\n";
  for i = 0 to n - 1 do
    pf "  wire idle%d;\n  assign idle%d = s%d == IDLE;\n" i i i
  done;
  (* token may advance only past an idle station *)
  pf "  wire atpos_idle;\n  assign atpos_idle = ";
  for i = 0 to n - 2 do
    pf "(pos == %d) ? idle%d : " i i
  done;
  pf "idle%d;\n" (n - 1);
  pf "  wire advance;\n  assign advance = mv & atpos_idle;\n";
  pf "  initial pos = 0;\n";
  for i = 0 to n - 1 do
    pf "  initial s%d = IDLE;\n" i
  done;
  pf "  always @(posedge clk) begin\n";
  pf "    if (advance) pos <= (pos == %d) ? 0 : pos + 1;\n" (n - 1);
  pf "  end\n";
  for i = 0 to n - 1 do
    pf "  always @(posedge clk) begin\n";
    pf "    if (who == %d) begin\n" i;
    pf "      case (s%d)\n" i;
    pf "        IDLE: if (req) s%d <= WAIT;\n" i;
    pf "        WAIT: if (pos == %d) s%d <= CS;\n" i i;
    pf "        CS: if (req) s%d <= IDLE;\n" i;
    pf "      endcase\n";
    pf "    end\n";
    pf "  end\n"
  done;
  pf "endmodule\n";
  Buffer.contents b

(* [n] adjacent-exclusion invariants plus [n] EF-accession formulas: one
   property per station in each direction around the ring. *)
let pif n =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for i = 0 to n - 1 do
    pf "ctl mutex_%d \"AG !(s%d=CS & s%d=CS)\";\n" i i ((i + 1) mod n)
  done;
  for i = 0 to n - 1 do
    pf "ctl accession_%d \"AG (s%d=WAIT -> EF s%d=CS)\";\n" i i i
  done;
  Buffer.contents b

let make ?(n = default_n) () =
  {
    Model.name =
      (if n = default_n then "ring" else Printf.sprintf "ring%d" n);
    verilog = verilog n;
    pif = pif n;
    description = Printf.sprintf "token-ring mutex with %d stations" n;
  }
