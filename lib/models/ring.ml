(* A token-ring mutex with [n] stations.  A single token position cycles
   through the stations; each station independently runs IDLE -> WAIT ->
   CS -> IDLE, entering its critical section only while the token is at
   its slot.  The token may only advance past an IDLE station, so a
   waiting station freezes it until it has been through the critical
   section — entering CS and advancing the token can never happen in the
   same step, which is what makes the mutual exclusion invariants hold.
   Reachable states grow as [n * 3^n]: the scaled rows of the parallel
   benchmarks.

   The design is hierarchical: one [station] module instantiated [n]
   times under the [ring] top, with the token arbitration (who moves,
   whether the token may advance) kept in the top.  Every per-station
   comparison against [who] and [pos] is computed in the top and fed in
   as a 1-bit port, so the [n] instances are exact renamings of each
   other — the shape the [Iso_shared] transition-relation strategy
   recognizes and builds only once. *)

let default_n = 4

let verilog n =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let w = max 1 (Scheduler.bits_for n) in
  pf "// Token-ring mutex with %d stations (one station module, %d instances).\n"
    n n;
  (* the root is the first module in the file *)
  pf "module ring(clk);\n  input clk;\n";
  pf "  reg [%d:0] pos;\n" (w - 1);
  pf "  wire [%d:0] who;\n" (w - 1);
  pf "  assign who = $ND(%s);\n"
    (String.concat ", " (List.init n string_of_int));
  pf "  wire req;\n  assign req = $ND(0, 1);\n";
  pf "  wire mv;\n  assign mv = $ND(0, 1);\n";
  for i = 0 to n - 1 do
    pf "  wire go%d;\n  assign go%d = who == %d;\n" i i i;
    pf "  wire at%d;\n  assign at%d = pos == %d;\n" i i i;
    pf "  wire idle%d;\n" i
  done;
  (* token may advance only past an idle station *)
  pf "  wire atpos_idle;\n  assign atpos_idle = ";
  for i = 0 to n - 2 do
    pf "(pos == %d) ? idle%d : " i i
  done;
  pf "idle%d;\n" (n - 1);
  pf "  wire advance;\n  assign advance = mv & atpos_idle;\n";
  pf "  initial pos = 0;\n";
  pf "  always @(posedge clk) begin\n";
  pf "    if (advance) pos <= (pos == %d) ? 0 : pos + 1;\n" (n - 1);
  pf "  end\n";
  for i = 0 to n - 1 do
    pf "  station st%d (.clk(clk), .go(go%d), .at(at%d), .req(req), .idle(idle%d));\n"
      i i i i
  done;
  pf "endmodule\n\n";
  pf "module station(clk, go, at, req, idle);\n";
  pf "  input clk;\n  input go;\n  input at;\n  input req;\n";
  pf "  output idle;\n";
  pf "  enum {IDLE, WAIT, CS} reg s;\n";
  pf "  initial s = IDLE;\n";
  pf "  assign idle = s == IDLE;\n";
  pf "  always @(posedge clk) begin\n";
  pf "    if (go) begin\n";
  pf "      case (s)\n";
  pf "        IDLE: if (req) s <= WAIT;\n";
  pf "        WAIT: if (at) s <= CS;\n";
  pf "        CS: if (req) s <= IDLE;\n";
  pf "      endcase\n";
  pf "    end\n";
  pf "  end\n";
  pf "endmodule\n";
  Buffer.contents b

(* [n] adjacent-exclusion invariants plus [n] EF-accession formulas: one
   property per station in each direction around the ring.  Station state
   lives at the flattened hierarchical name [st<i>/s]. *)
let pif n =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for i = 0 to n - 1 do
    pf "ctl mutex_%d \"AG !(st%d/s=CS & st%d/s=CS)\";\n" i i ((i + 1) mod n)
  done;
  for i = 0 to n - 1 do
    pf "ctl accession_%d \"AG (st%d/s=WAIT -> EF st%d/s=CS)\";\n" i i i
  done;
  Buffer.contents b

let make ?(n = default_n) () =
  {
    Model.name =
      (if n = default_n then "ring" else Printf.sprintf "ring%d" n);
    verilog = verilog n;
    pif = pif n;
    description = Printf.sprintf "token-ring mutex with %d stations" n;
  }
