(** Token-ring mutex with [n] stations: a unique token position cycles
    past idle stations; each station runs IDLE -> WAIT -> CS, entering
    its critical section only with the token at its slot (a waiting
    station freezes the token until served).  Mutual exclusion holds;
    every station can always eventually be served.  Reachable states grow
    as [n * 3^n] and the property list scales with [n] ([n] adjacent
    mutex invariants + [n] EF accession formulas) — the scaled family of
    the parallel benchmarks. *)

val make : ?n:int -> unit -> Model.t
(** Default [n = 4] (named ["ring"]); other sizes are named ["ring<n>"]. *)

val default_n : int
