let table1 () =
  [
    Philos.make ();
    Pingpong.make ();
    Gigamax.make ();
    Scheduler.make ();
    Dcnew.make ();
    Mdlc.make ();
  ]

let table1_small () =
  [
    Philos.make ();
    Pingpong.make ();
    Gigamax.make ();
    Scheduler.make ~n:5 ();
    Dcnew.make ();
    Mdlc.make ();
  ]

let scaled ?(sizes = [ 8; 12; 16 ]) () =
  List.concat_map
    (fun n -> [ Philos.make ~n (); Ring.make ~n (); Scheduler.make ~n () ])
    sizes

(* "philos7" / "ring12" / "scheduler40" -> Some 7 / 12 / 40 *)
let param_of prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    match int_of_string_opt (String.sub name pl (String.length name - pl)) with
    | Some n when n >= 2 -> Some n
    | _ -> None
  else None

let by_name name =
  let static =
    table1 ()
    @ [ Ring.make (); Peterson.make (); Peterson.broken () ]
  in
  match List.find_opt (fun m -> m.Model.name = name) static with
  | Some m -> Some m
  | None -> (
      match param_of "scheduler" name with
      | Some n -> Some (Scheduler.make ~n ())
      | None -> (
          match param_of "philos" name with
          | Some n -> Some (Philos.make ~n ())
          | None -> (
              match param_of "ring" name with
              | Some n -> Some (Ring.make ~n ())
              | None -> None)))
