(** Milner's distributed cycler / scheduler (Table 1 row "scheduler", from
    Communication and Concurrency): a token cycles through [n] stations;
    each station starts its task when it holds the token, tasks finish
    non-deterministically.  Reachable states grow as [n * 2^n]; the paper's
    instance has ~2.7M states, matched here at the default scale. *)

val make : ?n:int -> unit -> Model.t
(** Default [n = 17]. *)

val default_n : int

val bits_for : int -> int
(** Bits needed to count to [n - 1] (shared by the other generated
    families). *)
