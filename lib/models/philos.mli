(** Dining philosophers (Table 1 row "philos"): forks picked up one at a
    time (left first), so the classic circular-wait deadlock is reachable
    at every ring size.  The default [n = 2] is the paper's hand-written
    instance, whose liveness containment property fails on the deadlock
    and exercises the debugger; larger [n] generates the same protocol
    with [n] philosophers and a property list that scales with the ring
    ([n] adjacent-mutex invariants + [n] EF-progress formulas), sized for
    the parallel benchmarks. *)

val make : ?n:int -> unit -> Model.t
(** Default [n = 2] (named ["philos"]); generated instances are named
    ["philos<n>"]. *)
