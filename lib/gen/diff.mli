open Hsis_obs
open Hsis_blifmv
open Hsis_auto
open Hsis_limits

(** The differential fuzz driver: generate a random verification problem,
    run the symbolic engines and the explicit-state reference engine on it,
    and compare every answer.

    Per iteration it cross-checks the reachable-state count ({!Hsis_check.Reach}
    vs {!Hsis_check.Enum.build}), a handful of CTL verdicts
    ({!Hsis_check.Mc} vs {!Hsis_check.Enum.check_ctl}, under the same
    random fairness constraints), language emptiness ({!Hsis_check.Lc} vs
    the explicit SCC fair-cycle check), and replays every symbolic
    counterexample lasso through the concrete
    {!Hsis_sim.Simulator}.  Any disagreement — or an engine exception — is
    recorded, greedily shrunk, and optionally written out as a standalone
    repro file. *)

type kind =
  | Reach_count  (** symbolic and explicit reachable-state counts differ *)
  | Ctl_verdict  (** [Mc] and [Enum.check_ctl] disagree on a formula *)
  | Lc_verdict  (** [Lc] and the explicit emptiness check disagree *)
  | Budget_verdict
      (** a conclusive verdict obtained under a resource budget contradicts
          the unbounded run ([Verdict.agree] violation — [Inconclusive] on
          either side is never a discrepancy) *)
  | Trace_replay
      (** a counterexample lasso was unverified or failed concrete replay *)
  | Crash  (** an engine raised *)

val kind_name : kind -> string

type discrepancy = {
  d_iter : int;  (** iteration (0-based) within the run *)
  d_kind : kind;
  d_detail : string;  (** human-readable mismatch description *)
  d_model : Ast.model;  (** shrunk (when shrinking is on) failing model *)
  d_ctl : Ctl.t option;
  d_automaton : Autom.t option;
  d_fairness : Fair.syntactic list;
  d_repro : string option;  (** path of the written [.mv] repro file *)
}

type config = {
  iters : int;
  seed : int;
  state_limit : int;
      (** explicit-engine budget; iterations whose system (or product)
          exceeds it are counted as skips, not failures (default 20_000) *)
  ctl_per_iter : int;  (** formulas checked per network (default 3) *)
  lc : bool;  (** also cross-check language containment (default true) *)
  shrink : bool;  (** minimize failing inputs (default true) *)
  budget : Limits.t option;
      (** when set, every Mc/Lc check is rerun under this budget and the
          budgeted verdict must agree with the unbounded one (default
          [None]).  Use deterministic budgets ([max_steps] / [max_nodes]):
          a deadline budget is wall-clock dependent and expires for the
          whole run once hit. *)
  out_dir : string option;  (** where to write repro files (default none) *)
  gen_config : Gen.config;
  log : (string -> unit) option;  (** progress callback *)
  jobs : int;
      (** worker domains to spread iterations over (default 1 =
          sequential).  Findings are independent of [jobs]: iteration [i]
          always consumes split [i] of the master stream, results are
          collected by iteration index, and shrinking/repro writing are
          per-iteration — so the report (minus [elapsed]/[pool]) and the
          repro files are byte-identical at any job count.  With [jobs > 1]
          progress log lines may interleave. *)
}

val default_config : config
(** 100 iterations of seed 0, no output directory. *)

type report = {
  config : config;
  iterations : int;  (** iterations actually run *)
  states_explored : int;  (** total explicit states enumerated *)
  ctl_checked : int;
  lc_checked : int;
  budget_checked : int;  (** budgeted reruns compared against unbounded *)
  traces_replayed : int;  (** counterexample lassos replayed successfully *)
  skips : Obs.Tally.t;  (** skip reasons, e.g. ["system-state-limit"] *)
  discrepancies : discrepancy list;  (** oldest first *)
  elapsed : float;  (** wall-clock seconds *)
  pool : Hsis_par.Par.stats option;
      (** domain-pool statistics when [config.jobs > 1]; [None] for
          sequential runs *)
}

val run : config -> report
(** Deterministic given [config.seed]: the per-iteration generator streams
    are pre-split from the master up front ([Array.init iters (fun _ ->
    Rng.split master)]), so iteration [k] generates the same problem
    regardless of what earlier iterations did with their generators — and,
    with [config.jobs > 1], regardless of which worker domain runs it or in
    what order. *)

val report_to_json : report -> Obs.Json.t
(** Schema ["hsis-fuzz/1"]: run parameters, totals, per-kind discrepancy
    tallies and per-discrepancy records (with repro paths).  Parallel runs
    additionally fill the ["pool"] member (worker count, steal count,
    per-worker busy time); scheduling-independent members are byte-stable
    across job counts. *)

val pp_report : Format.formatter -> report -> unit
