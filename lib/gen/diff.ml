open Hsis_obs
open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug
open Hsis_limits
open Hsis_par

type kind =
  | Reach_count
  | Ctl_verdict
  | Lc_verdict
  | Budget_verdict
  | Trace_replay
  | Crash

let kind_name = function
  | Reach_count -> "reach-count"
  | Ctl_verdict -> "ctl-verdict"
  | Lc_verdict -> "lc-verdict"
  | Budget_verdict -> "budget-verdict"
  | Trace_replay -> "trace-replay"
  | Crash -> "crash"

type discrepancy = {
  d_iter : int;
  d_kind : kind;
  d_detail : string;
  d_model : Ast.model;
  d_ctl : Ctl.t option;
  d_automaton : Autom.t option;
  d_fairness : Fair.syntactic list;
  d_repro : string option;
}

type config = {
  iters : int;
  seed : int;
  state_limit : int;
  ctl_per_iter : int;
  lc : bool;
  shrink : bool;
  budget : Limits.t option;
  out_dir : string option;
  gen_config : Gen.config;
  log : (string -> unit) option;
  jobs : int;
}

let default_config =
  {
    iters = 100;
    seed = 0;
    state_limit = 20_000;
    ctl_per_iter = 3;
    lc = true;
    shrink = true;
    budget = None;
    out_dir = None;
    gen_config = Gen.default;
    log = None;
    jobs = 1;
  }

type report = {
  config : config;
  iterations : int;
  states_explored : int;
  ctl_checked : int;
  lc_checked : int;
  budget_checked : int;
  traces_replayed : int;
  skips : Obs.Tally.t;
  discrepancies : discrepancy list;
  elapsed : float;
  pool : Par.stats option;
}

(* ------------------------------------------------------------------ *)
(* One verification problem and its cross-checks *)

type problem = {
  p_fairness : Fair.syntactic list;
  p_ctls : Ctl.t list;
  p_aut : Autom.t option;
  p_heuristic : Trans.heuristic;
  p_early : bool;
}

type failure =
  | Fail_reach of int * int  (** symbolic count, explicit count *)
  | Fail_ctl of Ctl.t * string * string
      (** formula, symbolic verdict, explicit verdict *)
  | Fail_lc of string * string
  | Fail_budget of string
      (** a conclusive budgeted verdict contradicts the unbounded one *)
  | Fail_replay of string
  | Fail_crash of string

let kind_of = function
  | Fail_reach _ -> Reach_count
  | Fail_ctl _ -> Ctl_verdict
  | Fail_lc _ -> Lc_verdict
  | Fail_budget _ -> Budget_verdict
  | Fail_replay _ -> Trace_replay
  | Fail_crash _ -> Crash

let describe = function
  | Fail_reach (s, e) ->
      Printf.sprintf "reachable-state count: symbolic %d vs explicit %d" s e
  | Fail_ctl (f, s, e) ->
      Printf.sprintf "CTL %s: symbolic %s vs explicit %s" (Ctl.to_string f) s
        e
  | Fail_lc (s, e) ->
      Printf.sprintf "language containment: symbolic %s vs explicit %s" s e
  | Fail_budget d -> "budget cross-check: " ^ d
  | Fail_replay r -> "counterexample replay: " ^ r
  | Fail_crash e -> "engine exception: " ^ e

type outcome = {
  o_states : int;
  o_ctl_checked : int;
  o_lc_checked : int;
  o_budget_checked : int;
  o_traces : int;
  o_skips : string list;
  o_failure : failure option;
}

let base_outcome =
  {
    o_states = 0;
    o_ctl_checked = 0;
    o_lc_checked = 0;
    o_budget_checked = 0;
    o_traces = 0;
    o_skips = [];
    o_failure = None;
  }

(* Run every cross-check on one problem.  Never raises: engine exceptions
   become [Fail_crash], which makes the function directly usable as a
   shrinking predicate.  When [budget] is given, every Mc/Lc check also
   reruns under it and the budgeted verdict must not contradict the
   unbounded one ([Verdict.agree]: Inconclusive is always compatible). *)
let run_checks ~limit ?budget (p : problem) (m : Ast.model) : outcome =
  try
    let net = Net.of_model m in
    let g = Enum.build ~limit net in
    if not (Enum.complete g) then
      { base_outcome with o_skips = [ "system-state-limit" ] }
    else begin
      let nstates = Array.length g.Enum.states in
      let got = { base_outcome with o_states = nstates } in
      let man = Bdd.new_man () in
      let trans = Trans.build ~heuristic:p.p_heuristic (Sym.make man net) in
      let r = Reach.compute ~profile:false trans (Trans.initial trans) in
      let sym_count =
        int_of_float (Reach.count_states trans r.Reach.reachable)
      in
      if sym_count <> nstates then
        { got with o_failure = Some (Fail_reach (sym_count, nstates)) }
      else begin
        let compiled = Fair.compile_all trans p.p_fairness in
        let econstrs = Enum.compile_fairness net g p.p_fairness in
        let checked = ref 0 in
        let budget_n = ref 0 in
        let ctl_failure =
          List.find_map
            (fun f ->
              incr checked;
              let sym =
                (Mc.check ~fairness:compiled ~early_failure:p.p_early
                   ~reach:r trans f)
                  .Mc.verdict
              in
              let exp = snd (Enum.check_ctl net g econstrs f) in
              if not (Verdict.agree sym exp) then
                Some (Fail_ctl (f, Verdict.name sym, Verdict.name exp))
              else
                match budget with
                | None -> None
                | Some b -> (
                    incr budget_n;
                    (* no ~reach: exploration itself must run under the
                       budget for the interrupt paths to be exercised *)
                    let bud =
                      (Mc.check ~fairness:compiled
                         ~early_failure:p.p_early ~limits:b trans f)
                        .Mc.verdict
                    in
                    if Verdict.agree bud sym then None
                    else
                      Some
                        (Fail_budget
                           (Printf.sprintf
                              "CTL %s: budgeted %s vs unbounded %s"
                              (Ctl.to_string f) (Verdict.name bud)
                              (Verdict.name sym)))))
            p.p_ctls
        in
        let got =
          { got with o_ctl_checked = !checked; o_budget_checked = !budget_n }
        in
        match ctl_failure with
        | Some f -> { got with o_failure = Some f }
        | None -> (
            match p.p_aut with
            | None -> got
            | Some aut -> (
                let sym =
                  try
                    `Outcome
                      (Lc.check ~fairness:p.p_fairness
                         ~early_failure:p.p_early ~heuristic:p.p_heuristic m
                         aut)
                  with Lc.Not_deterministic _ -> `Nondet
                in
                match sym with
                | `Nondet ->
                    { got with o_skips = [ "lc-nondeterministic" ] }
                | `Outcome o -> (
                    match
                      Enum.check_lc ~fairness:p.p_fairness ~limit m aut
                    with
                    | Verdict.Inconclusive _ ->
                        { got with o_skips = [ "product-state-limit" ] }
                    | exp -> (
                        let got = { got with o_lc_checked = 1 } in
                        if not (Verdict.agree o.Lc.verdict exp) then
                          {
                            got with
                            o_failure =
                              Some
                                (Fail_lc
                                   ( Verdict.name o.Lc.verdict,
                                     Verdict.name exp ));
                          }
                        else
                          let budget_failure =
                            match budget with
                            | None -> None
                            | Some b -> (
                                incr budget_n;
                                match
                                  Lc.check ~fairness:p.p_fairness
                                    ~early_failure:p.p_early
                                    ~heuristic:p.p_heuristic ~limits:b m aut
                                with
                                | exception Lc.Not_deterministic _ -> None
                                | bud ->
                                    if
                                      Verdict.agree bud.Lc.verdict
                                        o.Lc.verdict
                                    then None
                                    else
                                      Some
                                        (Fail_budget
                                           (Printf.sprintf
                                              "LC: budgeted %s vs unbounded \
                                               %s"
                                              (Verdict.name bud.Lc.verdict)
                                              (Verdict.name o.Lc.verdict))))
                          in
                          let got =
                            { got with o_budget_checked = !budget_n }
                          in
                          match budget_failure with
                          | Some f -> { got with o_failure = Some f }
                          | None -> (
                              match o.Lc.verdict with
                              | Verdict.Pass | Verdict.Inconclusive _ -> got
                              | Verdict.Fail _ -> (
                                  (* containment fails on both sides: the
                                     symbolic counterexample must verify and
                                     replay *)
                                  let prod = Option.get o.Lc.product in
                                  match
                                    Trace.fair_lasso prod.Lc.env
                                      ~reach:prod.Lc.reach
                                      ~fair:prod.Lc.fair
                                  with
                                  | exception Not_found ->
                                      {
                                        got with
                                        o_failure =
                                          Some
                                            (Fail_replay
                                               "no lasso in a non-empty \
                                                fair set");
                                      }
                                  | t ->
                                      if not t.Trace.verified then
                                        {
                                          got with
                                          o_failure =
                                            Some
                                              (Fail_replay
                                                 "lasso failed fairness \
                                                  verification");
                                        }
                                      else if
                                        not (Trace.replay prod.Lc.trans t)
                                      then
                                        {
                                          got with
                                          o_failure =
                                            Some
                                              (Fail_replay
                                                 "lasso not realizable on \
                                                  the concrete simulator");
                                        }
                                      else { got with o_traces = 1 }))))))
      end
    end
  with e ->
    { base_outcome with o_failure = Some (Fail_crash (Printexc.to_string e)) }

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let still_fails ~limit ?budget p k m =
  match (run_checks ~limit ?budget p m).o_failure with
  | Some f -> kind_of f = k
  | None -> false

(* Minimize the ingredients in dependency order: fairness first (freeing
   signals the model shrinker may then drop), then the offending formula or
   automaton, then the network itself. *)
let shrink_problem ~limit ?budget (p : problem) failure m =
  let k = kind_of failure in
  let check p m = still_fails ~limit ?budget p k m in
  let p =
    match failure with
    | Fail_reach _ -> { p with p_ctls = []; p_aut = None }
    | Fail_ctl (f, _, _) -> { p with p_ctls = [ f ]; p_aut = None }
    | Fail_lc _ | Fail_replay _ -> { p with p_ctls = [] }
    | Fail_budget _ | Fail_crash _ ->
        (* try discarding whole ingredients before structural shrinking *)
        let p' = { p with p_ctls = [] } in
        let p = if check p' m then p' else p in
        let p' = { p with p_aut = None } in
        if check p' m then p' else p
  in
  let p =
    {
      p with
      p_fairness =
        Shrink.minimize_fairness
          ~still_fails:(fun fs -> check { p with p_fairness = fs } m)
          p.p_fairness;
    }
  in
  let p =
    match p.p_ctls with
    | [ f ] ->
        {
          p with
          p_ctls =
            [
              Shrink.minimize_ctl
                ~still_fails:(fun f' -> check { p with p_ctls = [ f' ] } m)
                f;
            ];
        }
    | _ -> p
  in
  let p =
    match p.p_aut with
    | Some a ->
        {
          p with
          p_aut =
            Some
              (Shrink.minimize_automaton
                 ~still_fails:(fun a' -> check { p with p_aut = Some a' } m)
                 a);
        }
    | None -> p
  in
  let m = Shrink.minimize_model ~still_fails:(fun m' -> check p m') m in
  (p, m)

(* ------------------------------------------------------------------ *)
(* Repro files *)

let autom_lines (a : Autom.t) =
  let pair i (p : Autom.accept_pair) =
    let part name s = if s = "" then [] else [ name ^ " " ^ s ] in
    let states = String.concat " " in
    let edges es =
      String.concat " " (List.map (fun (x, y) -> x ^ "->" ^ y) es)
    in
    (Printf.sprintf "pair %d:" i
    :: part "  inf-states" (states p.inf_states))
    @ part "  inf-edges" (edges p.inf_edges)
    @ part "  fin-states" (states p.fin_states)
    @ part "  fin-edges" (edges p.fin_edges)
  in
  [
    "automaton " ^ a.a_name;
    "states: " ^ String.concat " " a.a_states;
    "init: " ^ String.concat " " a.a_init;
  ]
  @ List.map
      (fun (e : Autom.edge) ->
        Printf.sprintf "edge %s -> %s when %s" e.e_src e.e_dst
          (Expr.to_string e.e_guard))
      a.a_edges
  @ List.concat (List.mapi pair a.a_pairs)

let fairness_lines fs =
  List.map (fun c -> Format.asprintf "%a" Fair.pp_syntactic c) fs

let write_file path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let write_repro cfg ~iter failure (p : problem) m =
  match cfg.out_dir with
  | None -> None
  | Some dir ->
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      let base = Printf.sprintf "repro-seed%d-iter%d" cfg.seed iter in
      let mv = Filename.concat dir (base ^ ".mv") in
      let header =
        [
          "# hsis fuzz repro";
          Printf.sprintf "# seed %d iteration %d kind %s" cfg.seed iter
            (kind_name (kind_of failure));
          "# " ^ describe failure;
          Printf.sprintf "# details in %s.txt" base;
        ]
      in
      write_file mv (header @ [ Printer.model_to_string m ]);
      let detail =
        [ describe failure; "" ]
        @ (match p.p_ctls with
          | [ f ] -> [ "formula: " ^ Ctl.to_string f ]
          | _ -> [])
        @ (if p.p_fairness = [] then []
           else "fairness:" :: List.map (fun l -> "  " ^ l)
                                 (fairness_lines p.p_fairness))
        @
        match p.p_aut with
        | Some a -> "" :: autom_lines a
        | None -> []
      in
      write_file (Filename.concat dir (base ^ ".txt")) detail;
      Some mv

(* ------------------------------------------------------------------ *)
(* The driver *)

let empty_model name =
  {
    Ast.m_name = name;
    m_inputs = [];
    m_outputs = [];
    m_mvs = [];
    m_tables = [];
    m_latches = [];
    m_subckts = [];
    m_delays = [];
  }

let gen_problem cfg rng =
  let config = cfg.gen_config in
  let m = Gen.flat ~config rng in
  let net = Net.of_model m in
  let p_fairness = Gen.fairness ~config rng net in
  let p_ctls =
    List.init cfg.ctl_per_iter (fun _ -> Gen.ctl ~config rng net)
  in
  let p_aut = if cfg.lc then Some (Gen.automaton ~config rng net) else None in
  let p_heuristic =
    Rng.pick rng [ Trans.Min_width; Trans.Pair_clustering; Trans.Naive ]
  in
  let p_early = Rng.bool rng in
  (m, { p_fairness; p_ctls; p_aut; p_heuristic; p_early })

(* Log + shrink + repro for one discrepancy.  Pure of shared state: the
   built record is returned, not accumulated, so the same code serves the
   sequential loop and parallel workers. *)
let record_disc cfg ~log ~iter failure p m =
  log (Printf.sprintf "iteration %d: DISCREPANCY %s" iter (describe failure));
  let p, m =
    if cfg.shrink then
      shrink_problem ~limit:cfg.state_limit ?budget:cfg.budget p failure m
    else (p, m)
  in
  (* re-derive the failure detail from the shrunk problem when possible,
     so the repro describes what the shrunk file actually does *)
  let failure =
    if not cfg.shrink then failure
    else
      match
        (run_checks ~limit:cfg.state_limit ?budget:cfg.budget p m).o_failure
      with
      | Some f when kind_of f = kind_of failure -> f
      | _ -> failure
  in
  let repro = write_repro cfg ~iter failure p m in
  {
    d_iter = iter;
    d_kind = kind_of failure;
    d_detail = describe failure;
    d_model = m;
    d_ctl = (match p.p_ctls with [ f ] -> Some f | _ -> None);
    d_automaton = p.p_aut;
    d_fairness = p.p_fairness;
    d_repro = repro;
  }

(* One full iteration on its own generator stream: generate, cross-check,
   and (on a mismatch) shrink and write the repro.  Returns the outcome
   plus the recorded discrepancy, touching no shared state — safe to run
   from any pool worker. *)
let run_iter cfg ~log iter rng =
  match gen_problem cfg rng with
  | exception e ->
      ( base_outcome,
        Some
          (record_disc cfg ~log ~iter
             (Fail_crash ("generator: " ^ Printexc.to_string e))
             {
               p_fairness = [];
               p_ctls = [];
               p_aut = None;
               p_heuristic = Trans.Min_width;
               p_early = false;
             }
             (empty_model "generator-crash")) )
  | m, p ->
      let o = run_checks ~limit:cfg.state_limit ?budget:cfg.budget p m in
      (o, Option.map (fun f -> record_disc cfg ~log ~iter f p m) o.o_failure)

let run cfg =
  let t0 = Obs.Clock.now () in
  let master = Rng.make cfg.seed in
  (* Iteration i's generator is split i of the master stream, materialized
     up front.  This draws exactly what the old per-iteration cursor drew,
     but makes the streams index-addressable: a parallel schedule executing
     iterations out of order still feeds iteration i bit-identical
     randomness, so findings match the sequential run byte for byte. *)
  let streams = Array.init cfg.iters (fun _ -> Rng.split master) in
  let log s = match cfg.log with Some f -> f s | None -> () in
  let skips = Obs.Tally.create () in
  let discrepancies = ref [] in
  let states = ref 0 in
  let ctl_n = ref 0 in
  let lc_n = ref 0 in
  let budget_n = ref 0 in
  let traces = ref 0 in
  let tally_result (o, disc) =
    states := !states + o.o_states;
    ctl_n := !ctl_n + o.o_ctl_checked;
    lc_n := !lc_n + o.o_lc_checked;
    budget_n := !budget_n + o.o_budget_checked;
    traces := !traces + o.o_traces;
    List.iter (fun s -> Obs.Tally.incr skips s) o.o_skips;
    match disc with
    | Some d -> discrepancies := d :: !discrepancies
    | None -> ()
  in
  let pool =
    if cfg.jobs <= 1 then begin
      for iter = 0 to cfg.iters - 1 do
        tally_result (run_iter cfg ~log iter streams.(iter));
        if (iter + 1) mod 50 = 0 then
          log
            (Printf.sprintf "%d/%d iterations, %d states, %d discrepancies"
               (iter + 1) cfg.iters !states
               (List.length !discrepancies))
      done;
      None
    end
    else begin
      let results, pstats =
        Par.run ~jobs:cfg.jobs ~tasks:cfg.iters (fun ~cancelled:_ iter ->
            run_iter cfg ~log iter streams.(iter))
      in
      (* Fold in iteration order: the totals and the discrepancy list come
         out identical to a sequential run whatever the worker schedule
         was.  (No limits are installed on the pool, so every slot is
         filled unless a worker died on an exception, which re-raised.) *)
      Array.iter (function Some r -> tally_result r | None -> ()) results;
      Some pstats
    end
  in
  {
    config = cfg;
    iterations = cfg.iters;
    states_explored = !states;
    ctl_checked = !ctl_n;
    lc_checked = !lc_n;
    budget_checked = !budget_n;
    traces_replayed = !traces;
    skips;
    discrepancies = List.rev !discrepancies;
    elapsed = Obs.Clock.now () -. t0;
    pool;
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let kinds_tally ds =
  let t = Obs.Tally.create () in
  List.iter (fun d -> Obs.Tally.incr t (kind_name d.d_kind)) ds;
  t

let disc_to_json d =
  let open Obs.Json in
  Obj
    [
      ("iteration", Int d.d_iter);
      ("kind", Str (kind_name d.d_kind));
      ("detail", Str d.d_detail);
      ("model", Str (Printer.model_to_string d.d_model));
      ( "formula",
        match d.d_ctl with Some f -> Str (Ctl.to_string f) | None -> Null );
      ( "fairness",
        List (List.map (fun l -> Str l) (fairness_lines d.d_fairness)) );
      ( "automaton",
        match d.d_automaton with
        | Some a -> Str (String.concat "\n" (autom_lines a))
        | None -> Null );
      ("repro", match d.d_repro with Some p -> Str p | None -> Null);
    ]

let report_to_json r =
  let open Obs.Json in
  Obj
    [
      ("schema", Str "hsis-fuzz/1");
      ("seed", Int r.config.seed);
      ("iters", Int r.config.iters);
      ("state_limit", Int r.config.state_limit);
      ("ctl_per_iter", Int r.config.ctl_per_iter);
      ("lc", Bool r.config.lc);
      ("shrink", Bool r.config.shrink);
      ("budget", Bool (r.config.budget <> None));
      ("iterations", Int r.iterations);
      ("states_explored", Int r.states_explored);
      ("ctl_checked", Int r.ctl_checked);
      ("lc_checked", Int r.lc_checked);
      ("budget_checked", Int r.budget_checked);
      ("traces_replayed", Int r.traces_replayed);
      ("skips", Obs.Tally.to_json r.skips);
      ("discrepancy_count", Int (List.length r.discrepancies));
      ("discrepancies_by_kind", Obs.Tally.to_json (kinds_tally r.discrepancies));
      ("discrepancies", List (List.map disc_to_json r.discrepancies));
      ("elapsed_s", Float r.elapsed);
      ("jobs", Int r.config.jobs);
      ( "pool",
        match r.pool with
        | None -> Null
        | Some s ->
            Obj
              [
                ("jobs", Int s.Par.jobs);
                ("tasks", Int s.Par.tasks);
                ("completed", Int s.Par.completed);
                ("steals", Int s.Par.steals);
                ("wall_s", Float s.Par.wall);
                ( "workers",
                  List
                    (List.map
                       (fun (w : Obs.worker_sample) ->
                         Obj
                           [
                             ("tasks", Int w.Obs.w_tasks);
                             ("time_s", Float w.Obs.w_time);
                           ])
                       (Par.worker_samples s)) );
              ] );
    ]

let pp_report fmt r =
  Format.fprintf fmt
    "fuzz: seed %d, %d iterations in %.1fs@\n\
     explicit states explored: %d@\n\
     checks: %d CTL, %d LC, %d budget reruns, %d counterexamples replayed@\n"
    r.config.seed r.iterations r.elapsed r.states_explored r.ctl_checked
    r.lc_checked r.budget_checked r.traces_replayed;
  (match r.pool with
  | None -> ()
  | Some s ->
      Format.fprintf fmt "pool: %d workers, %d tasks, %d steals@\n" s.Par.jobs
        s.Par.tasks s.Par.steals);
  (match Obs.Tally.to_list r.skips with
  | [] -> ()
  | sk ->
      Format.fprintf fmt "skips:";
      List.iter (fun (k, n) -> Format.fprintf fmt " %s=%d" k n) sk;
      Format.fprintf fmt "@\n");
  match r.discrepancies with
  | [] -> Format.fprintf fmt "discrepancies: none@\n"
  | ds ->
      Format.fprintf fmt "discrepancies: %d@\n" (List.length ds);
      List.iter
        (fun d ->
          Format.fprintf fmt "  iteration %d [%s]: %s%s@\n" d.d_iter
            (kind_name d.d_kind) d.d_detail
            (match d.d_repro with
            | Some p -> " (repro: " ^ p ^ ")"
            | None -> ""))
        ds
