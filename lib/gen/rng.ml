(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny splittable PRNG
   with a 64-bit state advanced by a Weyl sequence and output through a
   variant of the MurmurHash3 finalizer.  Far stronger than the hand-rolled
   LCGs it replaces, and — unlike [Random] — identical on every platform
   and OCaml version, which is what makes seeds in CI failure messages
   actionable locally. *)

type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.s <- Int64.add t.s golden;
  mix t.s

(* Pre-mix the seed so that nearby seeds (0, 1, 2, ...) give unrelated
   streams from the very first draw. *)
let make seed = { s = mix (Int64.of_int seed) }

let split t = { s = Int64.logxor (next t) 0x5851F42D4C957F2DL }
let copy t = { s = t.s }

(* 62 non-negative bits: enough for any bound we use, and the modulo bias
   over generator-sized bounds (< 2^16) is negligible. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L
let chance t k n = int t n < k

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_arr: empty array";
  a.(int t (Array.length a))

let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 pairs in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (w, x) :: rest ->
        let acc = acc + max 0 w in
        if roll < acc then x else go acc rest
  in
  go 0 pairs

let sample t k xs =
  (* Reservoir-free: tag each element with a draw, keep the k smallest,
     restore input order.  O(n log n), fine at generator sizes. *)
  let tagged = List.mapi (fun i x -> (bits t, i, x)) xs in
  let chosen =
    List.filteri (fun i _ -> i < k)
      (List.sort (fun (a, _, _) (b, _, _) -> compare a b) tagged)
  in
  List.map (fun (_, _, x) -> x)
    (List.sort (fun (_, i, _) (_, j, _) -> compare i j) chosen)

let seed_from_env ?(var = "HSIS_TEST_SEED") ~default () =
  match Sys.getenv_opt var with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> default)
  | None -> default
