open Hsis_blifmv
open Hsis_auto
open Hsis_mv

type config = {
  max_latches : int;
  max_dom : int;
  max_aux_tables : int;
  max_inputs : int;
  hierarchy : bool;
  max_formula_depth : int;
}

let default =
  {
    max_latches = 3;
    max_dom = 4;
    max_aux_tables = 2;
    max_inputs = 1;
    hierarchy = true;
    max_formula_depth = 3;
  }

(* A signal visible while wiring the root model, with its domain size. *)
type sig_info = { sname : string; ssize : int }


let val_of v = Ast.Val (string_of_int v)

(* ------------------------------------------------------------------ *)
(* Table entries *)

(* Input-column entry over a domain of [size] values. *)
let gen_in_entry rng size =
  Rng.weighted rng
    ([ (3, `Any); (4, `Val) ]
    @ (if size > 2 then [ (2, `Set) ] else [])
    @ if size > 1 then [ (1, `Not) ] else [])
  |> function
  | `Any -> Ast.Any
  | `Val -> val_of (Rng.int rng size)
  | `Not -> Ast.Not (string_of_int (Rng.int rng size))
  | `Set ->
      let a = Rng.int rng size in
      let b = (a + 1 + Rng.int rng (size - 1)) mod size in
      Ast.Set [ string_of_int a; string_of_int b ]

(* Output-column entry: [Set]/[Any] introduce non-determinism; [Eq] copies
   a same-domain table input when one exists. *)
let gen_out_entry rng ~inputs ~size =
  let eq_candidates =
    List.filter (fun s -> s.ssize = size) inputs
  in
  Rng.weighted rng
    ([ (6, `Val); (1, `Any) ]
    @ (if size > 2 then [ (2, `Set) ] else [ (1, `Set) ])
    @ if eq_candidates <> [] then [ (1, `Eq) ] else [])
  |> function
  | `Val -> val_of (Rng.int rng size)
  | `Any -> Ast.Any
  | `Eq -> Ast.Eq (Rng.pick rng eq_candidates).sname
  | `Set ->
      if size < 2 then val_of 0
      else begin
        let a = Rng.int rng size in
        let b = (a + 1 + Rng.int rng (size - 1)) mod size in
        Ast.Set [ string_of_int a; string_of_int b ]
      end

(* A complete table [inputs -> outputs]: random rows plus either a
   [.default] or a catch-all row, so every input pattern admits at least
   one output tuple. *)
let gen_table rng ~(inputs : sig_info list) ~(outputs : sig_info list) =
  let input_space =
    List.fold_left (fun acc s -> acc * s.ssize) 1 inputs
  in
  let nrows = 1 + Rng.int rng (min 6 (max 1 input_space)) in
  let row () =
    {
      Ast.r_inputs = List.map (fun s -> gen_in_entry rng s.ssize) inputs;
      r_outputs =
        List.map (fun s -> gen_out_entry rng ~inputs ~size:s.ssize) outputs;
    }
  in
  let rows = List.init nrows (fun _ -> row ()) in
  let default_out () =
    List.map (fun s -> gen_out_entry rng ~inputs ~size:s.ssize) outputs
  in
  if Rng.bool rng then
    {
      Ast.t_inputs = List.map (fun s -> s.sname) inputs;
      t_outputs = List.map (fun s -> s.sname) outputs;
      t_rows = rows;
      t_default = Some (default_out ());
    }
  else begin
    let catch_all =
      {
        Ast.r_inputs = List.map (fun _ -> Ast.Any) inputs;
        r_outputs = default_out ();
      }
    in
    {
      Ast.t_inputs = List.map (fun s -> s.sname) inputs;
      t_outputs = List.map (fun s -> s.sname) outputs;
      t_rows = rows @ [ catch_all ];
      t_default = None;
    }
  end

(* Free (input-like) table: no inputs, a non-empty set of allowed values. *)
let gen_free_table rng ~(out : sig_info) =
  let k = 1 + Rng.int rng out.ssize in
  let values = Rng.sample rng k (List.init out.ssize Fun.id) in
  {
    Ast.t_inputs = [];
    t_outputs = [ out.sname ];
    t_rows =
      List.map
        (fun v -> { Ast.r_inputs = []; r_outputs = [ val_of v ] })
        values;
    t_default = None;
  }

let mv_decls signals =
  List.map
    (fun (names, size) -> { Ast.v_names = names; v_size = size; v_values = [] })
    signals

(* ------------------------------------------------------------------ *)
(* Cells (hierarchy) *)

(* A leaf cell: [in_doms] formal inputs, one output, one complete table. *)
let gen_leaf_cell rng ~name ~in_sizes ~out_size =
  let formals =
    List.mapi (fun i sz -> { sname = Printf.sprintf "a%d" i; ssize = sz }) in_sizes
  in
  let z = { sname = "z"; ssize = out_size } in
  {
    Ast.m_name = name;
    m_inputs = List.map (fun s -> s.sname) formals;
    m_outputs = [ z.sname ];
    m_mvs =
      mv_decls
        (List.map (fun s -> ([ s.sname ], s.ssize)) (formals @ [ z ]));
    m_tables = [ gen_table rng ~inputs:formals ~outputs:[ z ] ];
    m_latches = [];
    m_subckts = [];
    m_delays = [];
  }

(* An outer cell wrapping a leaf: its single input feeds the leaf instance,
   and a table over (input, leaf output) drives its own output. *)
let gen_outer_cell rng ~name ~leaf ~in_size ~out_size =
  let a = { sname = "a0"; ssize = in_size } in
  let leaf_in_sizes =
    List.map
      (fun n ->
        match
          List.find_opt (fun (d : Ast.var_decl) -> List.mem n d.Ast.v_names)
            leaf.Ast.m_mvs
        with
        | Some d -> d.Ast.v_size
        | None -> 2)
      leaf.Ast.m_inputs
  in
  (* The outer input must match the leaf's first formal domain; remaining
     leaf formals are fed from it too when sizes agree, else from a local
     free signal. *)
  let conns, extra_frees =
    List.fold_left
      (fun (conns, frees) (formal, sz) ->
        if sz = a.ssize then ((formal, a.sname) :: conns, frees)
        else begin
          let f = { sname = Printf.sprintf "f%d" (List.length frees); ssize = sz } in
          ((formal, f.sname) :: conns, f :: frees)
        end)
      ([], [])
      (List.combine leaf.Ast.m_inputs leaf_in_sizes)
  in
  let w =
    {
      sname = "w";
      ssize =
        (match
           List.find_opt
             (fun (d : Ast.var_decl) -> List.mem "z" d.Ast.v_names)
             leaf.Ast.m_mvs
         with
        | Some d -> d.Ast.v_size
        | None -> 2);
    }
  in
  let z = { sname = "z"; ssize = out_size } in
  let locals = extra_frees @ [ w; z ] in
  {
    Ast.m_name = name;
    m_inputs = [ a.sname ];
    m_outputs = [ z.sname ];
    m_mvs =
      mv_decls
        (List.map (fun s -> ([ s.sname ], s.ssize)) (a :: locals));
    m_tables =
      List.map (fun f -> gen_free_table rng ~out:f) extra_frees
      @ [ gen_table rng ~inputs:[ a; w ] ~outputs:[ z ] ];
    m_latches = [];
    m_subckts =
      [
        {
          Ast.s_model = leaf.Ast.m_name;
          s_inst = "inner";
          s_conns = List.rev (("z", w.sname) :: conns);
        };
      ];
    m_delays = [];
  }

(* ------------------------------------------------------------------ *)
(* The root model *)

let hierarchical ?(config = default) rng =
  let dom () = Rng.range rng 2 config.max_dom in
  let nl = Rng.range rng 1 config.max_latches in
  let latch_sigs =
    List.init nl (fun i -> { sname = Printf.sprintf "s%d" i; ssize = dom () })
  in
  let next_sigs =
    List.mapi
      (fun i s -> { sname = Printf.sprintf "n%d" i; ssize = s.ssize })
      latch_sigs
  in
  let ninputs = Rng.int rng (config.max_inputs + 1) in
  let input_sigs =
    List.init ninputs (fun i ->
        { sname = Printf.sprintf "in%d" i; ssize = Rng.range rng 2 3 })
  in
  let nfree = Rng.range rng 1 2 in
  let free_sigs =
    List.init nfree (fun i ->
        { sname = Printf.sprintf "u%d" i; ssize = Rng.range rng 2 3 })
  in
  let available = ref (latch_sigs @ input_sigs @ free_sigs) in
  let tables = ref (List.map (fun f -> gen_free_table rng ~out:f) free_sigs) in
  let subckts = ref [] in
  let cells = ref [] in
  (* Hierarchy: a leaf cell, maybe wrapped in an outer cell, instantiated
     once or twice with domain-matching actuals. *)
  if config.hierarchy && Rng.chance rng 1 2 then begin
    let n_formals = Rng.range rng 1 2 in
    let actuals = Rng.sample rng n_formals !available in
    if actuals <> [] then begin
      let leaf =
        gen_leaf_cell rng ~name:"cell_leaf"
          ~in_sizes:(List.map (fun s -> s.ssize) actuals)
          ~out_size:(dom ())
      in
      cells := [ leaf ];
      let use_outer = Rng.chance rng 1 2 in
      let cell =
        if use_outer then begin
          let outer =
            gen_outer_cell rng ~name:"cell_outer" ~leaf
              ~in_size:(List.hd actuals).ssize ~out_size:(dom ())
          in
          cells := [ leaf; outer ];
          outer
        end
        else leaf
      in
      let out_size =
        match
          List.find_opt
            (fun (d : Ast.var_decl) -> List.mem "z" d.Ast.v_names)
            cell.Ast.m_mvs
        with
        | Some d -> d.Ast.v_size
        | None -> 2
      in
      let n_inst = Rng.range rng 1 2 in
      for k = 0 to n_inst - 1 do
        (* re-pick domain-matching actuals per instance *)
        let formal_sizes =
          List.map
            (fun n ->
              match
                List.find_opt
                  (fun (d : Ast.var_decl) -> List.mem n d.Ast.v_names)
                  cell.Ast.m_mvs
              with
              | Some d -> d.Ast.v_size
              | None -> 2)
            cell.Ast.m_inputs
        in
        let chosen =
          List.map
            (fun sz ->
              match List.filter (fun s -> s.ssize = sz) !available with
              | [] -> None
              | cands -> Some (Rng.pick rng cands))
            formal_sizes
        in
        if List.for_all Option.is_some chosen then begin
          let h = { sname = Printf.sprintf "h%d" k; ssize = out_size } in
          subckts :=
            {
              Ast.s_model = cell.Ast.m_name;
              s_inst = Printf.sprintf "c%d" k;
              s_conns =
                List.map2
                  (fun formal actual -> (formal, (Option.get actual).sname))
                  cell.Ast.m_inputs chosen
                @ [ ("z", h.sname) ];
            }
            :: !subckts;
          available := !available @ [ h ]
        end
      done
    end
  end;
  (* Intermediate combinational tables over whatever is available so far:
     acyclic by construction (each reads only earlier signals). *)
  let naux = Rng.int rng (config.max_aux_tables + 1) in
  for i = 0 to naux - 1 do
    let n_in = Rng.range rng 1 (min 2 (List.length !available)) in
    let ins = Rng.sample rng n_in !available in
    let out = { sname = Printf.sprintf "t%d" i; ssize = dom () } in
    tables := gen_table rng ~inputs:ins ~outputs:[ out ] :: !tables;
    available := !available @ [ out ]
  done;
  (* Next-state logic: one table per latch (occasionally one table driving
     two next-state signals of equal-sized latches). *)
  let rec gen_next = function
    | [] -> ()
    | n :: rest ->
        let pair =
          match rest with
          | n2 :: _ when n2.ssize = n.ssize && Rng.chance rng 1 4 ->
              Some n2
          | _ -> None
        in
        let outs = match pair with Some n2 -> [ n; n2 ] | None -> [ n ] in
        let n_in = Rng.range rng 1 (min 3 (List.length !available)) in
        let ins = Rng.sample rng n_in !available in
        tables := gen_table rng ~inputs:ins ~outputs:outs :: !tables;
        gen_next (match pair with Some _ -> List.tl rest | None -> rest)
  in
  gen_next next_sigs;
  let latches =
    List.map2
      (fun s n ->
        let nresets = if Rng.chance rng 1 3 then 2 else 1 in
        let resets =
          Rng.sample rng nresets (List.init s.ssize Fun.id)
          |> List.map string_of_int
        in
        { Ast.l_input = n.sname; l_output = s.sname; l_reset = resets })
      latch_sigs next_sigs
  in
  let all_sigs =
    latch_sigs @ next_sigs @ input_sigs @ free_sigs
    @ List.filter
        (fun s ->
          not
            (List.exists (fun x -> x.sname = s.sname)
               (latch_sigs @ next_sigs @ input_sigs @ free_sigs)))
        !available
  in
  let root =
    {
      Ast.m_name = "fuzz";
      m_inputs = List.map (fun s -> s.sname) input_sigs;
      m_outputs = List.map (fun s -> s.sname) latch_sigs;
      m_mvs = mv_decls (List.map (fun s -> ([ s.sname ], s.ssize)) all_sigs);
      m_tables = List.rev !tables;
      m_latches = latches;
      m_subckts = List.rev !subckts;
      m_delays = [];
    }
  in
  { Ast.models = root :: !cells; root = "fuzz" }

let flat ?config rng =
  let ast = hierarchical ?config rng in
  let m = Flatten.flatten ast in
  (* Fail fast on generator bugs: a generated model must always resolve. *)
  ignore (Net.of_model m);
  m

(* ------------------------------------------------------------------ *)
(* Formulas *)

(* Atom signals: latch outputs weighted up, everything else available. *)
let atom_pool (net : Net.t) =
  let state = Net.state_signals net in
  let all = List.init (Net.num_signals net) Fun.id in
  List.map (fun s -> (3, s)) state @ List.map (fun s -> (1, s)) all

let gen_atom rng net =
  let pool = atom_pool net in
  let s = Rng.weighted rng pool in
  let d = Net.dom net s in
  let name = (Net.signal net s).Net.s_name in
  let v = Domain.value d (Rng.int rng (Domain.size d)) in
  if Rng.chance rng 1 4 then Expr.Neq (name, v) else Expr.Eq (name, v)

let rec gen_expr rng net depth =
  if depth = 0 || Rng.chance rng 1 3 then gen_atom rng net
  else
    match Rng.int rng 4 with
    | 0 -> Expr.Not (gen_expr rng net (depth - 1))
    | 1 -> Expr.And (gen_expr rng net (depth - 1), gen_expr rng net (depth - 1))
    | 2 -> Expr.Or (gen_expr rng net (depth - 1), gen_expr rng net (depth - 1))
    | _ -> Expr.Imp (gen_expr rng net (depth - 1), gen_expr rng net (depth - 1))

let ctl ?(config = default) rng net =
  let rec go depth =
    if depth = 0 || Rng.chance rng 1 4 then Ctl.Prop (gen_expr rng net 1)
    else
      let sub () = go (depth - 1) in
      match Rng.int rng 12 with
      | 0 -> Ctl.Not (sub ())
      | 1 -> Ctl.And (sub (), sub ())
      | 2 -> Ctl.Or (sub (), sub ())
      | 3 -> Ctl.Imp (sub (), sub ())
      | 4 -> Ctl.EX (sub ())
      | 5 -> Ctl.EF (sub ())
      | 6 -> Ctl.EG (sub ())
      | 7 -> Ctl.EU (sub (), sub ())
      | 8 -> Ctl.AX (sub ())
      | 9 -> Ctl.AF (sub ())
      | 10 -> Ctl.AG (sub ())
      | _ -> Ctl.AU (sub (), sub ())
  in
  go config.max_formula_depth

(* ------------------------------------------------------------------ *)
(* Fairness *)

(* An expression over latch outputs only (edge to-conditions and
   [Enum]-side edge compilation require state signals). *)
let gen_state_expr rng (net : Net.t) =
  let state = Net.state_signals net in
  let s = Rng.pick rng state in
  let d = Net.dom net s in
  let name = (Net.signal net s).Net.s_name in
  Expr.Eq (name, Domain.value d (Rng.int rng (Domain.size d)))

let fairness ?(config = default) rng net =
  ignore config;
  let n = Rng.weighted rng [ (2, 0); (3, 1); (2, 2) ] in
  List.init n (fun _ ->
      match Rng.weighted rng [ (5, `Inf); (2, `Nf); (2, `Streett); (1, `Edge) ] with
      | `Inf -> Fair.Inf (Fair.State (gen_expr rng net 1))
      | `Nf -> Fair.Not_forever (gen_expr rng net 1)
      | `Streett ->
          Fair.Streett
            (Fair.State (gen_expr rng net 1), Fair.State (gen_expr rng net 1))
      | `Edge ->
          Fair.Inf
            (Fair.Edges [ (gen_expr rng net 1, gen_state_expr rng net) ]))

(* ------------------------------------------------------------------ *)
(* Property automata *)

let automaton ?(config = default) rng (net : Net.t) =
  ignore config;
  (* Watch one signal; guards of the form watch=v partition its domain per
     source state, keeping the automaton deterministic by construction. *)
  let pool = atom_pool net in
  let w = Rng.weighted rng pool in
  let wname = (Net.signal net w).Net.s_name in
  let wdom = Net.dom net w in
  let ns = Rng.range rng 1 3 in
  let states = List.init ns (fun i -> Printf.sprintf "q%d" i) in
  let edges = ref [] in
  List.iter
    (fun src ->
      for v = 0 to Domain.size wdom - 1 do
        if Rng.chance rng 3 4 then
          edges :=
            {
              Autom.e_src = src;
              e_dst = Rng.pick rng states;
              e_guard = Expr.Eq (wname, Domain.value wdom v);
            }
            :: !edges
      done)
    states;
  (* Guarantee at least one edge so the automaton is not trivially dead. *)
  if !edges = [] then
    edges :=
      [
        {
          Autom.e_src = List.hd states;
          e_dst = List.hd states;
          e_guard = Expr.Eq (wname, Domain.value wdom 0);
        };
      ];
  let edge_pairs =
    List.sort_uniq compare
      (List.map (fun e -> (e.Autom.e_src, e.Autom.e_dst)) !edges)
  in
  let subset xs = List.filter (fun _ -> Rng.bool rng) xs in
  let npairs = Rng.range rng 1 2 in
  let pairs =
    List.init npairs (fun _ ->
        let inf_states = subset states in
        let use_edges = Rng.chance rng 1 4 in
        {
          Autom.inf_states;
          inf_edges = (if use_edges then Rng.sample rng 1 edge_pairs else []);
          fin_states = subset states;
          fin_edges =
            (if Rng.chance rng 1 6 then Rng.sample rng 1 edge_pairs else []);
        })
  in
  {
    Autom.a_name = "prop";
    a_states = states;
    a_init = [ List.hd states ];
    a_edges = List.rev !edges;
    a_pairs = pairs;
  }
