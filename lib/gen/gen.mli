open Hsis_blifmv
open Hsis_auto

(** Random well-formed verification problems: BLIF-MV networks, CTL
    formulas, fairness constraints and deterministic property automata.

    Everything is generated from an explicit {!Rng.t}, so a run is fully
    reproducible from one seed.  Networks are valid by construction —
    every non-input signal has exactly one driver, table dependencies are
    acyclic, every table is complete (no input pattern without an allowed
    output, so generated machines never deadlock), and latch input/output
    domains agree — but they exercise the full BLIF-MV feature set: random
    multi-valued domains, non-deterministic rows ([Set]/[Any] outputs and
    overlapping rows), [=input] output entries, [.default] rows, latches
    with multiple reset values, primary inputs, free (input-like) tables
    and bounded [.subckt] hierarchy resolved through {!Flatten}. *)

type config = {
  max_latches : int;  (** 1 .. this many latches (default 3) *)
  max_dom : int;  (** domain sizes range over 2 .. this (default 4) *)
  max_aux_tables : int;  (** intermediate combinational tables (default 2) *)
  max_inputs : int;  (** primary inputs (default 1; 0 keeps nets closed) *)
  hierarchy : bool;  (** allow [.subckt] cells, up to two levels deep *)
  max_formula_depth : int;  (** CTL operator nesting (default 3) *)
}

val default : config
(** Small state spaces (tens to a few thousand states) suited to
    cross-checking against the explicit-state engine. *)

val hierarchical : ?config:config -> Rng.t -> Ast.t
(** A BLIF-MV design with a root model and zero to two cell models
    instantiated through [.subckt] (nested one deep at most). *)

val flat : ?config:config -> Rng.t -> Ast.model
(** {!hierarchical} followed by {!Flatten.flatten}; also validates the
    result through {!Net.of_model} so a generator bug surfaces here, not
    in an engine. *)

val ctl : ?config:config -> Rng.t -> Net.t -> Ctl.t
(** A random CTL formula whose atoms test signals of the given network
    (biased toward latch outputs). *)

val fairness : ?config:config -> Rng.t -> Net.t -> Fair.syntactic list
(** Zero to two random fairness constraints: Büchi ([Inf]) state and edge
    conditions, [Not_forever] subsets, and Streett pairs.  Edge
    to-conditions only mention latch outputs, as both engines require. *)

val automaton : ?config:config -> Rng.t -> Net.t -> Autom.t
(** A random {e deterministic} property automaton: each state's outgoing
    guards partition the values of one watched signal, so language
    containment never rejects it; uncovered values fall to the implicit
    dead state.  Acceptance is one or two Rabin pairs over random state
    and edge subsets. *)
