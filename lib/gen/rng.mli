(** Splittable, seeded pseudo-random number generator (SplitMix64).

    The single randomness source of the fuzzing subsystem and of every
    randomized test in the repo: deterministic across platforms and OCaml
    versions (unlike [Random], whose algorithm changed in 5.0), cheap to
    split into independent streams, and reproducible from one integer
    seed.  [split] derives a statistically independent child generator, so
    one master seed can fan out to per-iteration / per-component streams
    whose draws do not perturb each other — adding a draw in one component
    never shifts the sequence seen by another. *)

type t

val make : int -> t
(** A fresh generator from an integer seed (any value, including 0). *)

val split : t -> t
(** An independent child stream; advances the parent by one draw. *)

val copy : t -> t
(** A generator that will replay the same sequence as [t] from here. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [\[0, n)].  [n] must be positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance t k n]: true with probability [k/n]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_arr : t -> 'a array -> 'a

val weighted : t -> (int * 'a) list -> 'a
(** Draw from a non-empty list of [(weight, value)] pairs with probability
    proportional to weight (weights must be non-negative, sum positive). *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs]: up to [k] distinct elements of [xs], in stable order. *)

val seed_from_env : ?var:string -> default:int -> unit -> int
(** The seed to use for a randomized test: the value of the [HSIS_TEST_SEED]
    environment variable (or [var] if given) when set and numeric, else
    [default].  Tests print the seed they used in every failure message so
    any run can be reproduced with [HSIS_TEST_SEED=<seed>]. *)
