open Hsis_blifmv
open Hsis_auto

(** Greedy repro minimization.

    Each minimizer repeatedly tries structural simplifications of its
    subject and keeps any candidate for which [still_fails] returns true,
    restarting until no candidate is accepted (a greedy local minimum).
    [still_fails] must be total: it is expected to catch engine exceptions
    and return false for candidates that no longer build — the shrinkers
    themselves propose edits that may leave dangling signal reads (those
    simply get rejected by the predicate). *)

val minimize_model :
  ?max_evals:int -> still_fails:(Ast.model -> bool) -> Ast.model -> Ast.model
(** Tries, from most to least aggressive: dropping a latch (cascading the
    removal of its signals through table columns), dropping a table
    (cascading its outputs), dropping a primary input, shrinking an
    anonymous domain by one value (remapping references), collapsing a
    multi-valued reset to one value, dropping a table row, and dropping a
    [.default].  At most [max_evals] predicate evaluations (default
    400). *)

val minimize_ctl :
  ?max_evals:int -> still_fails:(Ctl.t -> bool) -> Ctl.t -> Ctl.t
(** Replaces the formula by ever-smaller subformulas. *)

val minimize_automaton :
  ?max_evals:int -> still_fails:(Autom.t -> bool) -> Autom.t -> Autom.t
(** Drops states (with their edges and acceptance references), edges and
    acceptance pairs. *)

val minimize_fairness :
  still_fails:(Fair.syntactic list -> bool) ->
  Fair.syntactic list ->
  Fair.syntactic list
(** Drops constraints one at a time. *)
