open Hsis_blifmv
open Hsis_auto

(* Generic greedy descent: take the first candidate the predicate accepts,
   restart from it, stop at a local minimum or when the budget runs out. *)
let greedy ?(max_evals = 400) ~still_fails ~candidates subject =
  let evals = ref 0 in
  let accepts c =
    !evals < max_evals
    && begin
         incr evals;
         still_fails c
       end
  in
  let rec loop cur =
    match List.find_opt accepts (candidates cur) with
    | Some smaller -> loop smaller
    | None -> cur
  in
  loop subject

let drop_nth i xs = List.filteri (fun j _ -> j <> i) xs

(* ------------------------------------------------------------------ *)
(* Models *)

(* Remove a set of signals from a flat model, cascading: a latch reading or
   producing a dead signal dies (and kills its own output), tables lose the
   dead input/output columns, [=x] copies of a dead input become don't-care,
   and declarations and interface lists are pruned.  A table left with no
   outputs disappears. *)
let remove_signals (m : Ast.model) sigs0 =
  let sigs = ref (List.sort_uniq compare sigs0) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l : Ast.latch) ->
        if
          (List.mem l.l_input !sigs || List.mem l.l_output !sigs)
          && not (List.mem l.l_output !sigs)
        then begin
          sigs := l.l_output :: !sigs;
          changed := true
        end)
      m.Ast.m_latches
  done;
  let dead s = List.mem s !sigs in
  let filter_by keeps xs =
    List.concat (List.map2 (fun k x -> if k then [ x ] else []) keeps xs)
  in
  let fix_entry = function
    | Ast.Eq x when dead x -> Ast.Any
    | e -> e
  in
  let prune_table (t : Ast.table) =
    let keep_out = List.map (fun s -> not (dead s)) t.t_outputs in
    if not (List.exists Fun.id keep_out) then None
    else
      let keep_in = List.map (fun s -> not (dead s)) t.t_inputs in
      let row (r : Ast.row) =
        {
          Ast.r_inputs = filter_by keep_in r.r_inputs;
          r_outputs = List.map fix_entry (filter_by keep_out r.r_outputs);
        }
      in
      Some
        {
          Ast.t_inputs = filter_by keep_in t.t_inputs;
          t_outputs = filter_by keep_out t.t_outputs;
          t_rows = List.map row t.t_rows;
          t_default =
            Option.map
              (fun d -> List.map fix_entry (filter_by keep_out d))
              t.t_default;
        }
  in
  let prune_mv (d : Ast.var_decl) =
    match List.filter (fun s -> not (dead s)) d.v_names with
    | [] -> None
    | names -> Some { d with Ast.v_names = names }
  in
  {
    m with
    Ast.m_inputs = List.filter (fun s -> not (dead s)) m.m_inputs;
    m_outputs = List.filter (fun s -> not (dead s)) m.m_outputs;
    m_mvs = List.filter_map prune_mv m.m_mvs;
    m_tables = List.filter_map prune_table m.m_tables;
    m_latches =
      List.filter (fun (l : Ast.latch) -> not (dead l.l_output)) m.m_latches;
    m_delays = List.filter (fun (s, _, _) -> not (dead s)) m.m_delays;
  }

let latch_drops (m : Ast.model) =
  List.mapi
    (fun i (l : Ast.latch) ->
      remove_signals { m with Ast.m_latches = drop_nth i m.m_latches }
        [ l.l_output ])
    m.m_latches

let table_drops (m : Ast.model) =
  List.mapi
    (fun i (t : Ast.table) ->
      remove_signals { m with Ast.m_tables = drop_nth i m.m_tables } t.t_outputs)
    m.m_tables

let input_drops (m : Ast.model) =
  List.map (fun s -> remove_signals m [ s ]) m.m_inputs

(* Shrink an anonymous (numeric) domain by one value, remapping the removed
   top value onto its neighbor everywhere the declared signals appear. *)
let domain_shrinks (m : Ast.model) =
  List.concat
    (List.mapi
       (fun di (d : Ast.var_decl) ->
         if d.v_values <> [] || d.v_size <= 2 then []
         else
           let old_v = string_of_int (d.v_size - 1) in
           let new_v = string_of_int (d.v_size - 2) in
           let in_decl s = List.mem s d.v_names in
           let remap_val v = if v = old_v then new_v else v in
           let remap_entry = function
             | Ast.Val v -> Ast.Val (remap_val v)
             | Ast.Set vs ->
                 Ast.Set (List.sort_uniq compare (List.map remap_val vs))
             | Ast.Not v -> if v = old_v then Ast.Any else Ast.Not v
             | (Ast.Any | Ast.Eq _) as e -> e
           in
           let remap_cols names entries =
             List.map2
               (fun s e -> if in_decl s then remap_entry e else e)
               names entries
           in
           let table (t : Ast.table) =
             {
               t with
               Ast.t_rows =
                 List.map
                   (fun (r : Ast.row) ->
                     {
                       Ast.r_inputs = remap_cols t.t_inputs r.r_inputs;
                       r_outputs = remap_cols t.t_outputs r.r_outputs;
                     })
                   t.t_rows;
               t_default = Option.map (remap_cols t.t_outputs) t.t_default;
             }
           in
           let latch (l : Ast.latch) =
             if in_decl l.l_output then
               {
                 l with
                 Ast.l_reset =
                   List.sort_uniq compare (List.map remap_val l.l_reset);
               }
             else l
           in
           [
             {
               m with
               Ast.m_mvs =
                 List.mapi
                   (fun i (d' : Ast.var_decl) ->
                     if i = di then { d' with Ast.v_size = d'.v_size - 1 }
                     else d')
                   m.m_mvs;
               m_tables = List.map table m.m_tables;
               m_latches = List.map latch m.m_latches;
             };
           ])
       m.Ast.m_mvs)

let reset_collapses (m : Ast.model) =
  List.concat
    (List.mapi
       (fun i (l : Ast.latch) ->
         match l.l_reset with
         | v :: _ :: _ ->
             [
               {
                 m with
                 Ast.m_latches =
                   List.mapi
                     (fun j (l' : Ast.latch) ->
                       if j = i then { l' with Ast.l_reset = [ v ] } else l')
                     m.m_latches;
               };
             ]
         | _ -> [])
       m.m_latches)

let row_drops (m : Ast.model) =
  List.concat
    (List.mapi
       (fun ti (t : Ast.table) ->
         let n = List.length t.t_rows in
         if n = 0 || (t.t_default = None && n <= 1) then []
         else
           List.init n (fun ri ->
               {
                 m with
                 Ast.m_tables =
                   List.mapi
                     (fun j (t' : Ast.table) ->
                       if j = ti then
                         { t' with Ast.t_rows = drop_nth ri t'.t_rows }
                       else t')
                     m.m_tables;
               }))
       m.m_tables)

let default_drops (m : Ast.model) =
  List.concat
    (List.mapi
       (fun ti (t : Ast.table) ->
         if t.t_default = None || t.t_rows = [] then []
         else
           [
             {
               m with
               Ast.m_tables =
                 List.mapi
                   (fun j (t' : Ast.table) ->
                     if j = ti then { t' with Ast.t_default = None } else t')
                   m.m_tables;
             };
           ])
       m.m_tables)

let minimize_model ?max_evals ~still_fails m =
  let candidates m =
    List.concat
      [
        latch_drops m;
        table_drops m;
        input_drops m;
        domain_shrinks m;
        reset_collapses m;
        row_drops m;
        default_drops m;
      ]
  in
  greedy ?max_evals ~still_fails ~candidates m

(* ------------------------------------------------------------------ *)
(* CTL formulas: replace by immediate subformulas. *)

let ctl_subs = function
  | Ctl.Prop _ -> []
  | Ctl.Not f | Ctl.EX f | Ctl.EF f | Ctl.EG f | Ctl.AX f | Ctl.AF f
  | Ctl.AG f ->
      [ f ]
  | Ctl.And (a, b) | Ctl.Or (a, b) | Ctl.Imp (a, b) | Ctl.EU (a, b)
  | Ctl.AU (a, b) ->
      [ a; b ]

let minimize_ctl ?max_evals ~still_fails f =
  greedy ?max_evals ~still_fails ~candidates:ctl_subs f

(* ------------------------------------------------------------------ *)
(* Automata: drop states (with incident edges and acceptance mentions),
   edges, and acceptance pairs. *)

let drop_state (a : Autom.t) s =
  let keep x = x <> s in
  let pair (p : Autom.accept_pair) =
    {
      Autom.inf_states = List.filter keep p.inf_states;
      inf_edges = List.filter (fun (x, y) -> keep x && keep y) p.inf_edges;
      fin_states = List.filter keep p.fin_states;
      fin_edges = List.filter (fun (x, y) -> keep x && keep y) p.fin_edges;
    }
  in
  {
    a with
    Autom.a_states = List.filter keep a.a_states;
    a_init = List.filter keep a.a_init;
    a_edges =
      List.filter
        (fun (e : Autom.edge) -> keep e.e_src && keep e.e_dst)
        a.a_edges;
    a_pairs = List.map pair a.a_pairs;
  }

let autom_candidates (a : Autom.t) =
  let states = List.map (drop_state a) a.a_states in
  let edges =
    List.mapi
      (fun i _ -> { a with Autom.a_edges = drop_nth i a.a_edges })
      a.a_edges
  in
  let pairs =
    if List.length a.a_pairs <= 1 then []
    else
      List.mapi
        (fun i _ -> { a with Autom.a_pairs = drop_nth i a.a_pairs })
        a.a_pairs
  in
  states @ edges @ pairs

let minimize_automaton ?max_evals ~still_fails a =
  greedy ?max_evals ~still_fails ~candidates:autom_candidates a

(* ------------------------------------------------------------------ *)
(* Fairness: drop one constraint at a time. *)

let minimize_fairness ~still_fails cs =
  let candidates cs = List.mapi (fun i _ -> drop_nth i cs) cs in
  greedy ~max_evals:100 ~still_fails ~candidates cs
