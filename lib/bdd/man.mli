(** Low-level BDD manager: hash-consed nodes in integer arenas.

    This is the engine room of the package — raw node ids, explicit
    reference counting, and in-place reordering.  User code should go
    through {!Bdd}, whose handles tie node lifetimes to the OCaml GC; this
    interface exists for the handle layer and for white-box tests.

    Invariants (checked by {!check}): nodes are reduced ([lo <> hi]) and
    ordered (children live at strictly greater levels); every live node is
    registered in the unique table of its variable; stored reference
    counts dominate the internal parent counts. *)

type t
(** A manager: node arena, per-variable unique tables, operation caches,
    variable order, and garbage-collection bookkeeping. *)

type node_id = int
(** Raw node index.  [0] and [1] are the constants. *)

val false_id : node_id
val true_id : node_id

val create : ?initial_capacity:int -> ?kernel_jobs:int -> unit -> t
(** [kernel_jobs] (default 1) sets the intra-operation parallelism degree:
    with [kernel_jobs > 1] the [and]/[ite]/[exists]/[and_exists] kernels
    run as fork-join parallel sections over a persistent domain pool (see
    {!set_kernel_jobs}); with 1, every code path is the sequential one. *)

val set_kernel_jobs : t -> int -> unit
(** Change the intra-operation parallelism degree (clamped to >= 1).  Safe
    between operations: the old pool is shut down and a new one spins up
    lazily on the next parallel apply.  Results are bit-identical across
    job counts — the kernels are deterministic up to node ids, and
    canonicity makes exported snapshots id-independent. *)

val kernel_jobs : t -> int

(** {1 Variables and structure} *)

val new_var : ?name:string -> t -> int
(** Allocate a fresh variable at the bottom of the order; returns its
    index. *)

val num_vars : t -> int
val name_of_var : t -> int -> string
val is_const : node_id -> bool
val var : t -> node_id -> int
val lo : t -> node_id -> node_id
val hi : t -> node_id -> node_id
val level : t -> node_id -> int
(** Position of the node's variable in the current order;
    [terminal_level] for constants. *)

val terminal_level : int
val order : t -> int list
(** Variables from the outermost level down. *)

val node_count : t -> int
(** Live (referenced) nodes. *)

(** {1 Reference counting} *)

val incr_ref : t -> node_id -> unit
val decr_ref : t -> node_id -> unit
(** Raises [Invalid_argument] on underflow. *)

(** {1 Node construction and operations}

    All operations return raw ids whose reference counts are {e not}
    incremented; callers must protect results before the next collection
    point.  Operations never collect internally. *)

val mk : t -> int -> node_id -> node_id -> node_id
(** [mk m v lo hi] is the canonical node for [if v then hi else lo]. *)

val ithvar : t -> int -> node_id
val nithvar : t -> int -> node_id
val apply_and : t -> node_id -> node_id -> node_id
val apply_or : t -> node_id -> node_id -> node_id
val apply_xor : t -> node_id -> node_id -> node_id
val apply_not : t -> node_id -> node_id
val apply_ite : t -> node_id -> node_id -> node_id -> node_id

val apply_exists : t -> node_id -> node_id -> node_id
(** [apply_exists m f cube]: existential quantification of the positive
    cube from [f]. *)

val apply_and_exists : t -> node_id -> node_id -> node_id -> node_id
(** [apply_and_exists m f g cube]: the relational product
    [exists cube (f /\ g)] without materializing the conjunction. *)

val register_map : t -> int array -> int
(** Register a variable relabeling for caching; returns its id. *)

val apply_permute : t -> int -> int array -> node_id -> node_id
val apply_restrict : t -> node_id -> node_id -> node_id
(** Coudert-Madre restrict (don't-care minimization). *)

val apply_constrain : t -> node_id -> node_id -> node_id
(** Generalized cofactor. *)

(** {1 Queries} *)

val support : t -> node_id -> int list
val dag_size : t -> node_id -> int
val satcount : t -> node_id -> int -> float
val satcount_vars : t -> node_id -> int list -> float
val eval : t -> node_id -> (int -> bool) -> bool
val pick_cube : t -> node_id -> (int * bool) list
val iter_cubes : t -> node_id -> nvars:int -> ((int -> bool option) -> unit) -> unit

(** {1 Collection and reordering} *)

val collect : t -> int
(** Free all dead nodes (cascading); clears the caches; returns the number
    of nodes freed. *)

val clear_caches : t -> unit
val maybe_collect : t -> unit
val set_gc_enabled : t -> bool -> unit
val set_gc_threshold : t -> int -> unit

val swap_levels : t -> int -> unit
(** Swap the variables at a level and the one below, in place.  Caches
    must be clear.  External ids remain valid. *)

val sift_var : t -> int -> unit
(** Move one variable to its locally optimal level (Rudell sifting). *)

val sift : ?max_vars:int -> t -> unit
val set_auto_reorder : t -> bool -> unit
val set_reorder_threshold : t -> int -> unit

val entry_hook : t -> unit
(** Called by the handle layer at operation entry: polls the resource
    budget, then runs collection and automatic reordering when thresholds
    are crossed. *)

(** {1 Resource governor} *)

exception Interrupted of Hsis_limits.Limits.reason
(** Alias of [Hsis_limits.Limits.Interrupted] (same runtime constructor:
    catching either catches both).  Raised from inside the apply kernels
    when the installed budget is breached.  The manager is left
    consistent: computed caches are wiped before raising, intermediate
    nodes are ordinary dead arena entries reclaimed by the next
    collection, and {!check} passes. *)

val set_limits : t -> Hsis_limits.Limits.t -> unit
(** Install a budget.  The apply kernels poll it amortized (every few
    hundred computed-cache misses) and every {!entry_hook} call; a breach
    raises {!Interrupted}.  Install [Limits.none] to disarm. *)

val limits : t -> Hsis_limits.Limits.t

val note_interrupt : t -> Hsis_limits.Limits.reason -> unit
(** Record an engine-originated interrupt (e.g. a step-quota breach the
    manager cannot see) in this manager's obs counters. *)

(** {1 Diagnostics} *)

val note_snapshot :
  t -> [ `Export | `Import ] -> nodes:int -> bytes:int -> seconds:float -> unit
(** Record one snapshot export/import (node count, wire bytes, wall time)
    in this manager's obs counters; rendered by {!stats} as the [snap]
    member. *)

val stats : t -> Hsis_obs.Obs.man_stats
(** Structured per-manager counters: computed-cache hit/miss rates per
    operation kernel, GC and reorder run counts with cumulative wall-clock
    pause time, and arena occupancy including the live-node high-water
    mark.  See {!Hsis_obs.Obs} for the taxonomy. *)

val check : t -> string list
(** Invariant violations, empty when healthy. *)
