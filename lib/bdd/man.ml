(* Low-level BDD manager: hash-consed nodes in integer arenas, per-variable
   unique tables, computed caches, eager reference counting with deferred
   collection, and in-place adjacent-level swaps used by sifting.

   Node ids: 0 = logical false, 1 = logical true; real nodes start at 2.
   Convention: a node [(v, lo, hi)] denotes [if v then hi else lo], and the
   reduced-ordered invariant is [lo <> hi] with both children at strictly
   greater levels than [v]'s level.

   The two hot data structures are allocation-free flat arrays (see the
   "BDD manager memory layout" section of DESIGN.md):

   - Unique tables are CUDD-style chained subtables: one power-of-two
     [buckets : int array] of chain heads per variable, with collision
     chains threaded through node ids by the global [next_arr]. A [mk]
     probe is a few int-array reads — no tuple key, no polymorphic hash,
     no allocation.

   - The computed cache is a single direct-mapped lossy [int array] with
     four slots per entry (tag, f, g, result). The tag packs the operation
     code (5 bits) with the third operand (ite's else-branch, and_exists'
     cube, permute's map id), so ternary ops fit the same entry shape.
     Collisions overwrite (counted as evictions); GC and reordering wipe
     the cache by index range instead of rebuilding a hashtable. *)

open Hsis_obs
open Hsis_limits

type node_id = int

let false_id = 0
let true_id = 1

(* Computed-cache operation tags; all fit in the 5 low bits of a cache tag
   word, the extra operand (if any) is packed above them. *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_not = 3
let op_ite = 4
let op_exists = 5
let op_and_exists = 6
let op_restrict = 7
let op_constrain = 8
let op_permute = 9
(* permute cache tags pack the registered map id as the extra operand *)

let num_op_slots = 10

let op_names =
  [| "and"; "or"; "xor"; "not"; "ite"; "exists"; "and_exists"; "restrict";
     "constrain"; "permute" |]

(* One variable's unique table: power-of-two bucket heads; collision chains
   live in the manager-wide [next_arr]. *)
type subtable = {
  mutable buckets : int array; (* chain head per hash of (lo, hi); -1 empty *)
  mutable st_count : int; (* nodes currently chained in this subtable *)
}

(* Per-domain kernel context for intra-operation parallel mode
   (kernel_jobs > 1).  Each domain owns a private direct-mapped computed
   cache — lossy and coherence-free, since every entry is a canonical
   (op, f, g) -> result truth, so domains missing each other's results
   costs recomputation, never soundness — plus a private allocation chunk
   carved off the shared arena bump region and private countdown/counter
   state.  The parallel recursion therefore mutates no shared field
   outside the per-variable unique-table locks. *)
type dctx = {
  dc_cache : int array; (* 4 ints per entry (tag, f, g, result) *)
  dc_mask : int;
  mutable dc_hits : int;
  mutable dc_misses : int;
  mutable dc_checks : int; (* budget polls performed by this domain *)
  mutable dc_countdown : int; (* cache misses until the next budget poll *)
  mutable dc_cutoff : int; (* recursions kept inline by the depth cutoff *)
  mutable dc_waits : int; (* unique-table lock acquisitions that blocked *)
  mutable dc_chunk_start : int; (* current chunk: [start, cursor) consumed *)
  mutable dc_chunk : int; (* next free id; = dc_chunk_end when exhausted *)
  mutable dc_chunk_end : int;
  mutable dc_ranges : (int * int) list; (* consumed ranges, finished chunks *)
}

(* Registry of every context a manager handed out, so sequential code
   (cache wipes, stats, section fixup) can enumerate them. *)
type dreg = { reg_lock : Mutex.t; mutable reg_all : dctx list }

type t = {
  mutable var_arr : int array; (* node -> variable index, -1 when free *)
  mutable lo_arr : int array; (* node -> else-child; freelist thread when free *)
  mutable hi_arr : int array; (* node -> then-child *)
  mutable rc_arr : int array; (* node -> internal parents + external refs *)
  mutable next_arr : int array; (* node -> next in its unique-table chain *)
  mutable used : int; (* high-water mark of allocated ids *)
  mutable free_list : int; (* head of freed ids, -1 when empty *)
  mutable nodecount : int; (* allocated, not yet freed (live + dead) *)
  mutable deadcount : int; (* allocated nodes whose rc dropped to 0 *)
  mutable subtables : subtable array; (* unique table per var *)
  mutable perm : int array; (* var -> level *)
  mutable invperm : int array; (* level -> var *)
  mutable nvars : int;
  mutable names : string array;
  (* direct-mapped computed cache: 4 ints per entry (tag, f, g, result);
     tag -1 marks an empty entry *)
  mutable cache : int array;
  mutable cache_mask : int; (* entry count - 1 (power of two) *)
  mutable cache_used : int; (* occupied entries (gauge) *)
  mutable cache_evictions : int; (* overwrites of live entries (counter) *)
  satcache : (int, float) Hashtbl.t;
  mutable maps : int array array; (* registered permutation maps *)
  mutable gc_enabled : bool;
  mutable gc_threshold : int;
  mutable gc_runs : int;
  mutable reorder_runs : int;
  mutable auto_reorder : bool;
  mutable reorder_threshold : int;
  (* observability counters (see Obs): per-op computed-cache hits/misses,
     cumulative GC/reorder wall time, and the live-node high-water mark *)
  cache_hits : int array;
  cache_misses : int array;
  mutable gc_freed : int;
  mutable gc_time : float;
  mutable reorder_time : float;
  mutable peak_live : int;
  (* resource governor *)
  mutable limits : Limits.t;
  mutable limit_countdown : int; (* cache misses until the next budget poll *)
  mutable limit_checks : int; (* budget polls performed (counter) *)
  mutable intr_deadline : int; (* interrupts raised, per reason (counters) *)
  mutable intr_nodes : int;
  mutable intr_steps : int;
  mutable intr_cancelled : int;
  (* snapshot traffic: Bdd.export/Bdd.import activity on this manager *)
  mutable snap_exports : int;
  mutable snap_imports : int;
  mutable snap_nodes : int;
  mutable snap_bytes : int;
  mutable snap_export_time : float;
  mutable snap_import_time : float;
  (* intra-operation parallel mode; see "Parallel kernels" below *)
  mutable kernel_jobs : int;
  mutable pool : Hsis_par.Pool.t option; (* lazily created kernel pool *)
  mutable dctx_key : dctx Domain.DLS.key option; (* lazily created *)
  dreg : dreg;
  mutable vlocks : Mutex.t array; (* one unique-table lock per variable *)
  alloc_lock : Mutex.t; (* guards chunk refills off the bump region *)
  par_abort : bool Atomic.t; (* budget breach flag, polled by all domains *)
  mutable par_abort_reason : Limits.reason option;
  mutable par_used0 : int; (* [used] at section entry, for live estimates *)
  mutable par_fork_depth : int; (* fork cofactor tasks above this depth *)
  mutable intra_ops : int; (* top-level ops run as parallel sections *)
  mutable intra_forked0 : int; (* fork/steal counts of retired pools *)
  mutable intra_stolen0 : int;
}

let initial_cache_slots = 1 lsl 12
let max_cache_slots = 1 lsl 21
let initial_bucket_count = 16

(* Granularity cutoff for the parallel recursion: enough forks to give
   every domain a few tasks to steal (2^d >= 4 * jobs) without flooding
   the queue with microtasks. *)
let fork_depth_for jobs =
  let rec go d n = if n >= 4 * jobs then d else go (d + 1) (2 * n) in
  go 0 1

let create ?(initial_capacity = 1 lsl 12) ?(kernel_jobs = 1) () =
  let cap = max 16 initial_capacity in
  let kernel_jobs = max 1 kernel_jobs in
  {
    var_arr = Array.make cap (-1);
    lo_arr = Array.make cap (-1);
    hi_arr = Array.make cap (-1);
    rc_arr = Array.make cap 0;
    next_arr = Array.make cap (-1);
    used = 2;
    free_list = -1;
    nodecount = 0;
    deadcount = 0;
    subtables = [||];
    perm = [||];
    invperm = [||];
    nvars = 0;
    names = [||];
    cache = Array.make (4 * initial_cache_slots) (-1);
    cache_mask = initial_cache_slots - 1;
    cache_used = 0;
    cache_evictions = 0;
    satcache = Hashtbl.create 64;
    maps = [||];
    gc_enabled = true;
    gc_threshold = 1 lsl 18;
    gc_runs = 0;
    reorder_runs = 0;
    auto_reorder = false;
    reorder_threshold = 1 lsl 20;
    cache_hits = Array.make num_op_slots 0;
    cache_misses = Array.make num_op_slots 0;
    gc_freed = 0;
    gc_time = 0.0;
    reorder_time = 0.0;
    peak_live = 0;
    limits = Limits.none;
    limit_countdown = max_int;
    limit_checks = 0;
    intr_deadline = 0;
    intr_nodes = 0;
    intr_steps = 0;
    intr_cancelled = 0;
    snap_exports = 0;
    snap_imports = 0;
    snap_nodes = 0;
    snap_bytes = 0;
    snap_export_time = 0.0;
    snap_import_time = 0.0;
    kernel_jobs;
    pool = None;
    dctx_key = None;
    dreg = { reg_lock = Mutex.create (); reg_all = [] };
    vlocks = [||];
    alloc_lock = Mutex.create ();
    par_abort = Atomic.make false;
    par_abort_reason = None;
    par_used0 = 0;
    par_fork_depth = fork_depth_for kernel_jobs;
    intra_ops = 0;
    intra_forked0 = 0;
    intra_stolen0 = 0;
  }

let is_const u = u < 2
let terminal_level = max_int

let level m u = if is_const u then terminal_level else m.perm.(m.var_arr.(u))
let var m u = m.var_arr.(u)
let lo m u = m.lo_arr.(u)
let hi m u = m.hi_arr.(u)
let num_vars m = m.nvars
let node_count m = m.nodecount - m.deadcount

let name_of_var m v =
  if v >= 0 && v < Array.length m.names && m.names.(v) <> "" then m.names.(v)
  else "v" ^ string_of_int v

(* ------------------------------------------------------------------ *)
(* Unique-table hashing *)

(* Cheap multiplicative mix of a child pair onto a power-of-two range.
   Multiplication wraps silently in OCaml's native ints; [land mask]
   discards the sign, so negative intermediates are harmless. *)
let[@inline] utbl_hash lo_child hi_child mask =
  let h = (lo_child * 0x9e3779b1) lxor (hi_child * 0x7feb352d) in
  (h lxor (h lsr 16)) land mask

let fresh_subtable () =
  { buckets = Array.make initial_bucket_count (-1); st_count = 0 }

(* Double a subtable and re-thread every chained node; no allocation per
   node — the chains are relinked in place through [next_arr]. *)
let grow_subtable m st =
  let old = st.buckets in
  let nmask = (2 * Array.length old) - 1 in
  let nb = Array.make (nmask + 1) (-1) in
  Array.iter
    (fun head ->
      let id = ref head in
      while !id >= 0 do
        let nxt = m.next_arr.(!id) in
        let h = utbl_hash m.lo_arr.(!id) m.hi_arr.(!id) nmask in
        m.next_arr.(!id) <- nb.(h);
        nb.(h) <- !id;
        id := nxt
      done)
    old;
  st.buckets <- nb

(* Unlink a node from its variable's unique table. Must be called while
   the node's [lo]/[hi] (and hence its hash) are still intact. *)
let unlink_node m v id =
  let st = m.subtables.(v) in
  let h = utbl_hash m.lo_arr.(id) m.hi_arr.(id) (Array.length st.buckets - 1) in
  if st.buckets.(h) = id then st.buckets.(h) <- m.next_arr.(id)
  else begin
    let p = ref st.buckets.(h) in
    while m.next_arr.(!p) <> id do
      p := m.next_arr.(!p)
    done;
    m.next_arr.(!p) <- m.next_arr.(id)
  end;
  st.st_count <- st.st_count - 1

(* ------------------------------------------------------------------ *)
(* Variables *)

let new_var ?(name = "") m =
  let v = m.nvars in
  m.nvars <- v + 1;
  let grow a fill =
    let old = Array.length a in
    if v >= old then begin
      let b = Array.make (max 8 (2 * (v + 1))) fill in
      Array.blit a 0 b 0 old;
      b
    end
    else a
  in
  m.perm <- grow m.perm 0;
  m.invperm <- grow m.invperm 0;
  m.names <-
    (let old = Array.length m.names in
     if v >= old then begin
       let b = Array.make (max 8 (2 * (v + 1))) "" in
       Array.blit m.names 0 b 0 old;
       b
     end
     else m.names);
  m.subtables <-
    (let old = Array.length m.subtables in
     if v >= old then
       Array.init (max 8 (2 * (v + 1))) (fun i ->
           if i < old then m.subtables.(i) else fresh_subtable ())
     else m.subtables);
  m.vlocks <-
    (let old = Array.length m.vlocks in
     if v >= old then
       Array.init (max 8 (2 * (v + 1))) (fun i ->
           if i < old then m.vlocks.(i) else Mutex.create ())
     else m.vlocks);
  m.perm.(v) <- v;
  m.invperm.(v) <- v;
  m.names.(v) <- name;
  v

(* ------------------------------------------------------------------ *)
(* Reference counting and node allocation *)

let incr_ref m u =
  if not (is_const u) then begin
    let rc = m.rc_arr.(u) in
    if rc = 0 then begin
      m.deadcount <- m.deadcount - 1;
      let live = m.nodecount - m.deadcount in
      if live > m.peak_live then m.peak_live <- live
    end;
    m.rc_arr.(u) <- rc + 1
  end

let decr_ref m u =
  if not (is_const u) then begin
    let rc = m.rc_arr.(u) in
    if rc <= 0 then invalid_arg "Man.decr_ref: reference count underflow";
    m.rc_arr.(u) <- rc - 1;
    if rc = 1 then m.deadcount <- m.deadcount + 1
  end

let grow_arenas m needed =
  let old = Array.length m.var_arr in
  if needed >= old then begin
    let ncap = max (2 * old) (needed + 1) in
    let g a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 old;
      b
    in
    m.var_arr <- g m.var_arr (-1);
    m.lo_arr <- g m.lo_arr (-1);
    m.hi_arr <- g m.hi_arr (-1);
    m.rc_arr <- g m.rc_arr 0;
    m.next_arr <- g m.next_arr (-1)
  end

let alloc_id m =
  if m.free_list >= 0 then begin
    let id = m.free_list in
    m.free_list <- m.lo_arr.(id);
    id
  end
  else begin
    let id = m.used in
    grow_arenas m id;
    m.used <- id + 1;
    id
  end

(* [mk v lo hi] returns the canonical node for [if v then hi else lo].
   Children reference counts are incremented only when a fresh node is
   created (they gain one new internal parent). The probe walks the
   variable's bucket chain by raw int reads — no allocation on hit or
   miss. *)
let mk m v lo_child hi_child =
  if lo_child = hi_child then lo_child
  else begin
    let st = m.subtables.(v) in
    let mask = Array.length st.buckets - 1 in
    let h = utbl_hash lo_child hi_child mask in
    let rec find id =
      if id < 0 then -1
      else if m.lo_arr.(id) = lo_child && m.hi_arr.(id) = hi_child then id
      else find m.next_arr.(id)
    in
    let found = find st.buckets.(h) in
    if found >= 0 then found
    else begin
      let id = alloc_id m in
      m.var_arr.(id) <- v;
      m.lo_arr.(id) <- lo_child;
      m.hi_arr.(id) <- hi_child;
      m.rc_arr.(id) <- 0;
      m.nodecount <- m.nodecount + 1;
      m.deadcount <- m.deadcount + 1;
      incr_ref m lo_child;
      incr_ref m hi_child;
      m.next_arr.(id) <- st.buckets.(h);
      st.buckets.(h) <- id;
      st.st_count <- st.st_count + 1;
      (* Keep chains short: grow once the load factor reaches 4. *)
      if st.st_count > 4 * (mask + 1) then grow_subtable m st;
      id
    end
  end

let ithvar m v = mk m v false_id true_id
let nithvar m v = mk m v true_id false_id

(* ------------------------------------------------------------------ *)
(* Computed cache: direct-mapped, lossy, one flat int array *)

(* tag = op lor (extra lsl 5): [extra] is ite's else-branch, and_exists'
   cube, or permute's map id; 0 for binary/unary ops. *)
let[@inline] cache_hash tag f g mask =
  let h = (tag * 0x9e3779b1) + (f * 0x85ebca77) + (g * 0x27d4eb2f) in
  (h lxor (h lsr 21)) land mask

let cache_wipe m =
  Array.fill m.cache 0 (Array.length m.cache) (-1);
  m.cache_used <- 0

let dctx_wipe dc = Array.fill dc.dc_cache 0 (Array.length dc.dc_cache) (-1)

(* The per-domain caches of the parallel kernels record the same node-id
   facts as the global computed cache, so anything that invalidates the
   global cache (collection, sifting, a budget breach) invalidates them
   identically. *)
let clear_caches m =
  cache_wipe m;
  Hashtbl.reset m.satcache;
  let reg = m.dreg in
  Mutex.lock reg.reg_lock;
  let dcs = reg.reg_all in
  Mutex.unlock reg.reg_lock;
  List.iter dctx_wipe dcs

(* ------------------------------------------------------------------ *)
(* Resource governor *)

exception Interrupted = Limits.Interrupted

(* The budget is polled every [limit_poll_interval] computed-cache misses:
   each miss is one real recursive apply step, so the poll cost is
   amortized over actual work, and a run that keeps hitting the cache (no
   new nodes, no new work) still gets polled from [entry_hook]. *)
let limit_poll_interval = 256

let note_interrupt m (r : Limits.reason) =
  match r with
  | Limits.Limit_deadline -> m.intr_deadline <- m.intr_deadline + 1
  | Limits.Limit_nodes -> m.intr_nodes <- m.intr_nodes + 1
  | Limits.Limit_steps -> m.intr_steps <- m.intr_steps + 1
  | Limits.Cancelled -> m.intr_cancelled <- m.intr_cancelled + 1

(* Consistency protocol on a breach: wipe the computed caches *before*
   raising, so no entry built by the aborted recursion survives (its
   result nodes may become dead and be reclaimed).  Intermediate nodes
   themselves are ordinary rc-0 arena entries picked up by the next
   collection — the unique tables and refcounts stay audit-clean
   ([check m] passes right after an interrupt). *)
let[@inline never] do_limit_check m =
  if Limits.is_none m.limits then m.limit_countdown <- max_int
  else begin
    m.limit_countdown <- limit_poll_interval;
    m.limit_checks <- m.limit_checks + 1;
    match Limits.breach m.limits ~live:(m.nodecount - m.deadcount) with
    | None -> ()
    | Some r ->
        note_interrupt m r;
        clear_caches m;
        raise (Interrupted r)
  end

let set_limits m l =
  m.limits <- l;
  (* Poll at the next opportunity so a freshly armed (or disarmed) budget
     takes effect immediately. *)
  m.limit_countdown <- 0

let limits m = m.limits

(* Probe; returns the cached node id or -1 on miss (node ids are always
   non-negative). The op's hit/miss counters are bumped as a side effect,
   and the miss path — one per recursive apply step — drives the
   amortized budget poll. *)
let[@inline] cache_lookup m slot tag f g =
  let i = 4 * cache_hash tag f g m.cache_mask in
  let c = m.cache in
  if c.(i) = tag && c.(i + 1) = f && c.(i + 2) = g then begin
    m.cache_hits.(slot) <- m.cache_hits.(slot) + 1;
    c.(i + 3)
  end
  else begin
    m.cache_misses.(slot) <- m.cache_misses.(slot) + 1;
    m.limit_countdown <- m.limit_countdown - 1;
    if m.limit_countdown <= 0 then do_limit_check m;
    -1
  end

let[@inline] cache_store m tag f g r =
  let i = 4 * cache_hash tag f g m.cache_mask in
  let c = m.cache in
  let t0 = c.(i) in
  if t0 < 0 then m.cache_used <- m.cache_used + 1
  else if not (t0 = tag && c.(i + 1) = f && c.(i + 2) = g) then
    m.cache_evictions <- m.cache_evictions + 1;
  c.(i) <- tag;
  c.(i + 1) <- f;
  c.(i + 2) <- g;
  c.(i + 3) <- r

(* Size the cache against the live-node count: grow (wiping — the cache is
   lossy anyway) whenever live nodes outnumber entries 2:1, up to a cap.
   Called only at operation-entry boundaries, never mid-recursion. *)
let maybe_resize_cache m =
  let live = m.nodecount - m.deadcount in
  let slots = m.cache_mask + 1 in
  if slots < max_cache_slots && live > 2 * slots then begin
    let nslots = ref slots in
    while !nslots < max_cache_slots && live > 2 * !nslots do
      nslots := 2 * !nslots
    done;
    m.cache <- Array.make (4 * !nslots) (-1);
    m.cache_mask <- !nslots - 1;
    m.cache_used <- 0
  end

(* ------------------------------------------------------------------ *)
(* Collection of dead nodes *)

(* Free a node known dead: unlink from its unique table, release children
   (cascading via the worklist), thread onto the freelist. *)
let collect m =
  let t0 = Obs.Clock.now () in
  clear_caches m;
  let stack = ref [] in
  for id = 2 to m.used - 1 do
    if m.var_arr.(id) >= 0 && m.rc_arr.(id) = 0 then stack := id :: !stack
  done;
  let freed = ref 0 in
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        (* A node on the stack may have been resurrected or already freed. *)
        if m.var_arr.(id) >= 0 && m.rc_arr.(id) = 0 then begin
          let v = m.var_arr.(id) and l = m.lo_arr.(id) and h = m.hi_arr.(id) in
          unlink_node m v id;
          m.var_arr.(id) <- -1;
          m.lo_arr.(id) <- m.free_list;
          m.free_list <- id;
          m.nodecount <- m.nodecount - 1;
          m.deadcount <- m.deadcount - 1;
          incr freed;
          let release c =
            if not (is_const c) then begin
              decr_ref m c;
              if m.rc_arr.(c) = 0 then stack := c :: !stack
            end
          in
          release l;
          release h
        end;
        drain ()
  in
  drain ();
  m.gc_runs <- m.gc_runs + 1;
  m.gc_freed <- m.gc_freed + !freed;
  m.gc_time <- m.gc_time +. (Obs.Clock.now () -. t0);
  !freed

let maybe_collect m =
  if m.gc_enabled && m.nodecount > m.gc_threshold then begin
    let freed = collect m in
    (* If collection reclaimed little, raise the bar to avoid thrashing. *)
    if freed < m.gc_threshold / 4 then m.gc_threshold <- 2 * m.gc_threshold
  end

let set_gc_enabled m b = m.gc_enabled <- b
let set_gc_threshold m n = m.gc_threshold <- max 16 n

(* ------------------------------------------------------------------ *)
(* Core operations; all recursion is over raw ids and never collects. *)

let cofactors m u v =
  if is_const u || m.var_arr.(u) <> v then (u, u)
  else (m.lo_arr.(u), m.hi_arr.(u))

let top_of2 m f g =
  let lf = level m f and lg = level m g in
  if lf <= lg then m.var_arr.(f) else m.var_arr.(g)

let rec apply_and m f g =
  if f = g then f
  else if f = false_id || g = false_id then false_id
  else if f = true_id then g
  else if g = true_id then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = cache_lookup m op_and op_and f g in
    if r >= 0 then r
    else begin
      let v = top_of2 m f g in
      let f0, f1 = cofactors m f v and g0, g1 = cofactors m g v in
      let r0 = apply_and m f0 g0 in
      let r1 = apply_and m f1 g1 in
      let r = mk m v r0 r1 in
      cache_store m op_and f g r;
      r
    end
  end

let rec apply_or m f g =
  if f = g then f
  else if f = true_id || g = true_id then true_id
  else if f = false_id then g
  else if g = false_id then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = cache_lookup m op_or op_or f g in
    if r >= 0 then r
    else begin
      let v = top_of2 m f g in
      let f0, f1 = cofactors m f v and g0, g1 = cofactors m g v in
      let r0 = apply_or m f0 g0 in
      let r1 = apply_or m f1 g1 in
      let r = mk m v r0 r1 in
      cache_store m op_or f g r;
      r
    end
  end

let rec apply_xor m f g =
  if f = g then false_id
  else if f = false_id then g
  else if g = false_id then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = cache_lookup m op_xor op_xor f g in
    if r >= 0 then r
    else begin
      let v = top_of2 m f g in
      let f0, f1 = cofactors m f v and g0, g1 = cofactors m g v in
      let r0 = apply_xor m f0 g0 in
      let r1 = apply_xor m f1 g1 in
      let r = mk m v r0 r1 in
      cache_store m op_xor f g r;
      r
    end
  end

let rec apply_not m f =
  if f = false_id then true_id
  else if f = true_id then false_id
  else begin
    let r = cache_lookup m op_not op_not f 0 in
    if r >= 0 then r
    else begin
      let v = m.var_arr.(f) in
      let r = mk m v (apply_not m m.lo_arr.(f)) (apply_not m m.hi_arr.(f)) in
      cache_store m op_not f 0 r;
      r
    end
  end

let rec apply_ite m f g h =
  if f = true_id then g
  else if f = false_id then h
  else if g = h then g
  else if g = true_id && h = false_id then f
  else if g = false_id && h = true_id then apply_not m f
  else begin
    let tag = op_ite lor (h lsl 5) in
    let r = cache_lookup m op_ite tag f g in
    if r >= 0 then r
    else begin
      let lf = level m f and lg = level m g and lh = level m h in
      let lmin = min lf (min lg lh) in
      let v = m.invperm.(lmin) in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let r0 = apply_ite m f0 g0 h0 in
      let r1 = apply_ite m f1 g1 h1 in
      let r = mk m v r0 r1 in
      cache_store m tag f g r;
      r
    end
  end

(* Existential quantification of the positive cube [cube] from [f]. *)
let rec apply_exists m f cube =
  if is_const f || cube = true_id then f
  else begin
    let lf = level m f in
    (* Skip cube variables above f's support. *)
    let rec advance cube =
      if cube = true_id then cube
      else if level m cube < lf then advance m.hi_arr.(cube)
      else cube
    in
    let cube = advance cube in
    if cube = true_id then f
    else begin
      let r = cache_lookup m op_exists op_exists f cube in
      if r >= 0 then r
      else begin
        let v = m.var_arr.(f) in
        let r =
          if level m cube = lf then begin
            let r0 = apply_exists m m.lo_arr.(f) m.hi_arr.(cube) in
            let r1 = apply_exists m m.hi_arr.(f) m.hi_arr.(cube) in
            apply_or m r0 r1
          end
          else begin
            let r0 = apply_exists m m.lo_arr.(f) cube in
            let r1 = apply_exists m m.hi_arr.(f) cube in
            mk m v r0 r1
          end
        in
        cache_store m op_exists f cube r;
        r
      end
    end
  end

(* Relational product: exists cube (f /\ g), without building f /\ g. *)
let rec apply_and_exists m f g cube =
  if f = false_id || g = false_id then false_id
  else if cube = true_id then apply_and m f g
  else if f = true_id then apply_exists m g cube
  else if g = true_id then apply_exists m f cube
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let lf = level m f and lg = level m g in
    let ltop = min lf lg in
    let rec advance cube =
      if cube = true_id then cube
      else if level m cube < ltop then advance m.hi_arr.(cube)
      else cube
    in
    let cube = advance cube in
    if cube = true_id then apply_and m f g
    else begin
      let tag = op_and_exists lor (cube lsl 5) in
      let r = cache_lookup m op_and_exists tag f g in
      if r >= 0 then r
      else begin
        let v = m.invperm.(ltop) in
        let f0, f1 = cofactors m f v and g0, g1 = cofactors m g v in
        let r =
          if level m cube = ltop then begin
            let r0 = apply_and_exists m f0 g0 m.hi_arr.(cube) in
            if r0 = true_id then true_id
            else begin
              let r1 = apply_and_exists m f1 g1 m.hi_arr.(cube) in
              apply_or m r0 r1
            end
          end
          else begin
            let r0 = apply_and_exists m f0 g0 cube in
            let r1 = apply_and_exists m f1 g1 cube in
            mk m v r0 r1
          end
        in
        cache_store m tag f g r;
        r
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Permutation (variable relabeling) *)

let register_map m map =
  let id = Array.length m.maps in
  m.maps <- Array.append m.maps [| Array.copy map |];
  id

let rec apply_permute m map_id map f =
  if is_const f then f
  else begin
    let tag = op_permute lor (map_id lsl 5) in
    let r = cache_lookup m op_permute tag f 0 in
    if r >= 0 then r
    else begin
      let v = m.var_arr.(f) in
      let nv = if v < Array.length map then map.(v) else v in
      let r0 = apply_permute m map_id map m.lo_arr.(f) in
      let r1 = apply_permute m map_id map m.hi_arr.(f) in
      (* The image variable must still sit above both rewritten children;
         relabelings used here (present<->next swaps) preserve levels
         pairwise, so [mk] keeps canonicity. Build via ite to stay safe
         even if the permutation is not level-monotonic. *)
      let r =
        let lv = m.perm.(nv) in
        if level m r0 > lv && level m r1 > lv then mk m nv r0 r1
        else apply_ite m (ithvar m nv) r1 r0
      in
      cache_store m tag f 0 r;
      r
    end
  end

(* ------------------------------------------------------------------ *)
(* Don't-care minimization *)

let rec apply_restrict m f c =
  if c = true_id || is_const f then f
  else if c = false_id then f
  else begin
    let r = cache_lookup m op_restrict op_restrict f c in
    if r >= 0 then r
    else begin
      let lf = level m f and lc = level m c in
      let r =
        if lc < lf then
          (* variable absent from f: merge the two care branches *)
          apply_restrict m f (apply_or m m.lo_arr.(c) m.hi_arr.(c))
        else begin
          let v = m.var_arr.(f) in
          let c0, c1 = cofactors m c v in
          if c0 = false_id then apply_restrict m m.hi_arr.(f) c1
          else if c1 = false_id then apply_restrict m m.lo_arr.(f) c0
          else
            mk m v
              (apply_restrict m m.lo_arr.(f) c0)
              (apply_restrict m m.hi_arr.(f) c1)
        end
      in
      cache_store m op_restrict f c r;
      r
    end
  end

let rec apply_constrain m f c =
  if c = true_id || is_const f then f
  else if c = false_id then false_id
  else if f = c then true_id
  else begin
    let r = cache_lookup m op_constrain op_constrain f c in
    if r >= 0 then r
    else begin
      let lf = level m f and lc = level m c in
      let lmin = min lf lc in
      let v = m.invperm.(lmin) in
      let f0, f1 = cofactors m f v and c0, c1 = cofactors m c v in
      let r =
        if c0 = false_id then apply_constrain m f1 c1
        else if c1 = false_id then apply_constrain m f0 c0
        else mk m v (apply_constrain m f0 c0) (apply_constrain m f1 c1)
      in
      cache_store m op_constrain f c r;
      r
    end
  end

(* ------------------------------------------------------------------ *)
(* Intra-operation parallel kernels *)

(* When [kernel_jobs > 1] the recursive apply operators above get parallel
   twins that fork the two cofactor recursions onto a persistent domain
   pool.  The protocol, piece by piece:

   - Unique table: each variable's subtable gets its own [Mutex.t]
     ([vlocks]); [mk_locked] probes and inserts under that lock, so two
     domains can build nodes of different variables with no interaction at
     all, and the lock doubles as the publication fence: any node id read
     out of a chain was fully initialised before its inserter released the
     lock that the reader now holds.

   - Allocation: domains carve [par_chunk]-sized ranges off the arena tail
     under [alloc_lock] and bump-allocate privately within them.  The
     arena arrays are NEVER grown during a section (growth replaces the
     arrays, which would race with every concurrent read); instead
     [run_parallel] pre-reserves generous headroom and chunk refill raises
     [Par_overflow] when it runs out, which quiesces the section and
     retries the operation on the sequential path.

   - Refcounts: [mk_locked] does not touch [rc_arr]/[nodecount]/
     [deadcount] — those are manager-global and would race.  After the
     section quiesces, [section_fixup] replays the bookkeeping
     sequentially: consumed chunk ranges are counted into
     nodecount/deadcount, then children get their [incr_ref]; unconsumed
     slots go back on the free list.  This preserves the audit invariant
     [free + nodecount = used - 2] exactly.

   - Computed caches: each domain keeps a private direct-mapped lossy
     cache ([dctx]) — no coherence needed, a miss only costs recomputation
     and the unique table deduplicates the result.  [clear_caches] wipes
     them together with the global cache.

   - Limits: every domain polls the budget on its own cache-miss
     countdown; a breach flips the shared [par_abort] flag and raises
     [Par_abort] everywhere, the forker always joins its futures (so the
     section quiesces even on exceptional unwind), and the top-level
     handler runs the refcount fixup, wipes all caches, and re-raises as
     a normal [Interrupted] — keeping the audit-clean breach invariant.

   GC-finalizer safety: [Bdd.t] handles are allocated only on the domain
   that owns the manager, so [decr_ref] finalizers can only run there, and
   that domain is busy inside the section — no concurrent rc mutation. *)

module Pool = Hsis_par.Pool

exception Par_overflow
exception Par_abort

let par_chunk = 512
let dctx_cache_slots = 1 lsl 13

let new_dctx () =
  {
    dc_cache = Array.make (4 * dctx_cache_slots) (-1);
    dc_mask = dctx_cache_slots - 1;
    dc_hits = 0;
    dc_misses = 0;
    dc_checks = 0;
    dc_countdown = limit_poll_interval;
    dc_cutoff = 0;
    dc_waits = 0;
    dc_chunk_start = 0;
    dc_chunk = 0;
    dc_chunk_end = 0;
    dc_ranges = [];
  }

(* The DLS key is created lazily per manager (a program churning through
   many managers would otherwise leak DLS keyspace).  The initializer
   registers the fresh context in the manager's registry so stats and
   cache wipes can reach contexts owned by other domains. *)
let ensure_dctx_key m =
  match m.dctx_key with
  | Some k -> k
  | None ->
      let reg = m.dreg in
      let k =
        Domain.DLS.new_key (fun () ->
            let dc = new_dctx () in
            Mutex.lock reg.reg_lock;
            reg.reg_all <- dc :: reg.reg_all;
            Mutex.unlock reg.reg_lock;
            dc)
      in
      m.dctx_key <- Some k;
      k

let get_dctx m =
  match m.dctx_key with
  | Some k -> Domain.DLS.get k
  | None -> Domain.DLS.get (ensure_dctx_key m)

let ensure_pool m =
  match m.pool with
  | Some p -> p
  | None ->
      ignore (ensure_dctx_key m);
      let p = Pool.create ~jobs:m.kernel_jobs in
      m.pool <- Some p;
      p

(* Chunked bump allocation.  Lock order: a domain holding a vlock may take
   [alloc_lock] (via [mk_locked] -> [alloc_par] -> here); nothing holding
   [alloc_lock] ever takes a vlock, so there is no cycle. *)
let refill_chunk m dc =
  Mutex.lock m.alloc_lock;
  let start = m.used in
  if start + par_chunk > Array.length m.var_arr then begin
    Mutex.unlock m.alloc_lock;
    raise Par_overflow
  end;
  m.used <- start + par_chunk;
  Mutex.unlock m.alloc_lock;
  if dc.dc_chunk_start < dc.dc_chunk then
    dc.dc_ranges <- (dc.dc_chunk_start, dc.dc_chunk) :: dc.dc_ranges;
  dc.dc_chunk_start <- start;
  dc.dc_chunk <- start;
  dc.dc_chunk_end <- start + par_chunk

let[@inline] alloc_par m dc =
  if dc.dc_chunk >= dc.dc_chunk_end then refill_chunk m dc;
  let id = dc.dc_chunk in
  dc.dc_chunk <- id + 1;
  id

(* Parallel twin of [mk]: probe/insert under the variable's lock,
   allocating from the domain's private chunk.  Deliberately does NOT
   maintain nodecount/deadcount or child refcounts — [section_fixup]
   replays those once the section quiesces. *)
let mk_locked m dc v lo_child hi_child =
  if lo_child = hi_child then lo_child
  else begin
    let lk = m.vlocks.(v) in
    if not (Mutex.try_lock lk) then begin
      dc.dc_waits <- dc.dc_waits + 1;
      Mutex.lock lk
    end;
    let st = m.subtables.(v) in
    let mask = Array.length st.buckets - 1 in
    let h = utbl_hash lo_child hi_child mask in
    let rec find id =
      if id < 0 then -1
      else if m.lo_arr.(id) = lo_child && m.hi_arr.(id) = hi_child then id
      else find m.next_arr.(id)
    in
    let found = find st.buckets.(h) in
    if found >= 0 then begin
      Mutex.unlock lk;
      found
    end
    else begin
      match alloc_par m dc with
      | exception e ->
          Mutex.unlock lk;
          raise e
      | id ->
          m.var_arr.(id) <- v;
          m.lo_arr.(id) <- lo_child;
          m.hi_arr.(id) <- hi_child;
          m.rc_arr.(id) <- 0;
          m.next_arr.(id) <- st.buckets.(h);
          st.buckets.(h) <- id;
          st.st_count <- st.st_count + 1;
          if st.st_count > 4 * (mask + 1) then grow_subtable m st;
          Mutex.unlock lk;
          id
    end
  end

(* Cooperative budget poll, one per domain on its own miss countdown.
   The live estimate adds the section's raw allocation to the pre-section
   count — racy reads of [m.used] are fine for an estimate. *)
let[@inline never] par_poll m dc =
  dc.dc_countdown <- limit_poll_interval;
  if Atomic.get m.par_abort then raise Par_abort;
  if not (Limits.is_none m.limits) then begin
    dc.dc_checks <- dc.dc_checks + 1;
    let live = m.nodecount - m.deadcount + (m.used - m.par_used0) in
    match Limits.breach m.limits ~live with
    | None -> ()
    | Some r ->
        m.par_abort_reason <- Some r;
        Atomic.set m.par_abort true;
        raise Par_abort
  end

let[@inline] dcache_lookup m dc tag f g =
  let i = 4 * cache_hash tag f g dc.dc_mask in
  let c = dc.dc_cache in
  if c.(i) = tag && c.(i + 1) = f && c.(i + 2) = g then begin
    dc.dc_hits <- dc.dc_hits + 1;
    c.(i + 3)
  end
  else begin
    dc.dc_misses <- dc.dc_misses + 1;
    dc.dc_countdown <- dc.dc_countdown - 1;
    if dc.dc_countdown <= 0 then par_poll m dc;
    -1
  end

let[@inline] dcache_store dc tag f g r =
  let i = 4 * cache_hash tag f g dc.dc_mask in
  let c = dc.dc_cache in
  c.(i) <- tag;
  c.(i + 1) <- f;
  c.(i + 2) <- g;
  c.(i + 3) <- r

(* The parallel recursions mirror their sequential counterparts exactly —
   same terminal cases, same operand normalization, same cache tags — but
   route node creation through [mk_locked], caching through the domain
   context, and the two cofactor calls through [par_pair]. *)
let rec par_and m dc depth f g =
  if f = g then f
  else if f = false_id || g = false_id then false_id
  else if f = true_id then g
  else if g = true_id then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = dcache_lookup m dc op_and f g in
    if r >= 0 then r
    else begin
      let v = top_of2 m f g in
      let f0, f1 = cofactors m f v and g0, g1 = cofactors m g v in
      let r0, r1 =
        par_pair m dc depth
          (fun dc d -> par_and m dc d f0 g0)
          (fun dc d -> par_and m dc d f1 g1)
      in
      let r = mk_locked m dc v r0 r1 in
      dcache_store dc op_and f g r;
      r
    end
  end

and par_or m dc depth f g =
  if f = g then f
  else if f = true_id || g = true_id then true_id
  else if f = false_id then g
  else if g = false_id then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = dcache_lookup m dc op_or f g in
    if r >= 0 then r
    else begin
      let v = top_of2 m f g in
      let f0, f1 = cofactors m f v and g0, g1 = cofactors m g v in
      let r0, r1 =
        par_pair m dc depth
          (fun dc d -> par_or m dc d f0 g0)
          (fun dc d -> par_or m dc d f1 g1)
      in
      let r = mk_locked m dc v r0 r1 in
      dcache_store dc op_or f g r;
      r
    end
  end

and par_not m dc depth f =
  if f = false_id then true_id
  else if f = true_id then false_id
  else begin
    let r = dcache_lookup m dc op_not f 0 in
    if r >= 0 then r
    else begin
      let v = m.var_arr.(f) in
      let lo = m.lo_arr.(f) and hi = m.hi_arr.(f) in
      let r0, r1 =
        par_pair m dc depth
          (fun dc d -> par_not m dc d lo)
          (fun dc d -> par_not m dc d hi)
      in
      let r = mk_locked m dc v r0 r1 in
      dcache_store dc op_not f 0 r;
      r
    end
  end

and par_ite m dc depth f g h =
  if f = true_id then g
  else if f = false_id then h
  else if g = h then g
  else if g = true_id && h = false_id then f
  else if g = false_id && h = true_id then par_not m dc depth f
  else begin
    let tag = op_ite lor (h lsl 5) in
    let r = dcache_lookup m dc tag f g in
    if r >= 0 then r
    else begin
      let lf = level m f and lg = level m g and lh = level m h in
      let lmin = min lf (min lg lh) in
      let v = m.invperm.(lmin) in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let r0, r1 =
        par_pair m dc depth
          (fun dc d -> par_ite m dc d f0 g0 h0)
          (fun dc d -> par_ite m dc d f1 g1 h1)
      in
      let r = mk_locked m dc v r0 r1 in
      dcache_store dc tag f g r;
      r
    end
  end

and par_exists m dc depth f cube =
  if is_const f || cube = true_id then f
  else begin
    let lf = level m f in
    let rec advance cube =
      if cube = true_id then cube
      else if level m cube < lf then advance m.hi_arr.(cube)
      else cube
    in
    let cube = advance cube in
    if cube = true_id then f
    else begin
      let r = dcache_lookup m dc op_exists f cube in
      if r >= 0 then r
      else begin
        let v = m.var_arr.(f) in
        let lo = m.lo_arr.(f) and hi = m.hi_arr.(f) in
        let r =
          if level m cube = lf then begin
            let cube' = m.hi_arr.(cube) in
            let r0, r1 =
              par_pair m dc depth
                (fun dc d -> par_exists m dc d lo cube')
                (fun dc d -> par_exists m dc d hi cube')
            in
            par_or m dc depth r0 r1
          end
          else begin
            let r0, r1 =
              par_pair m dc depth
                (fun dc d -> par_exists m dc d lo cube)
                (fun dc d -> par_exists m dc d hi cube)
            in
            mk_locked m dc v r0 r1
          end
        in
        dcache_store dc op_exists f cube r;
        r
      end
    end
  end

and par_and_exists m dc depth f g cube =
  if f = false_id || g = false_id then false_id
  else if cube = true_id then par_and m dc depth f g
  else if f = true_id then par_exists m dc depth g cube
  else if g = true_id then par_exists m dc depth f cube
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let lf = level m f and lg = level m g in
    let ltop = min lf lg in
    let rec advance cube =
      if cube = true_id then cube
      else if level m cube < ltop then advance m.hi_arr.(cube)
      else cube
    in
    let cube = advance cube in
    if cube = true_id then par_and m dc depth f g
    else begin
      let tag = op_and_exists lor (cube lsl 5) in
      let r = dcache_lookup m dc tag f g in
      if r >= 0 then r
      else begin
        let v = m.invperm.(ltop) in
        let f0, f1 = cofactors m f v and g0, g1 = cofactors m g v in
        let r =
          if level m cube = ltop then begin
            let cube' = m.hi_arr.(cube) in
            if depth < m.par_fork_depth then begin
              (* Forked: compute both quantified cofactors concurrently;
                 the sequential true-short-circuit is given up in exchange
                 for the overlap. *)
              let r0, r1 =
                par_pair m dc depth
                  (fun dc d -> par_and_exists m dc d f0 g0 cube')
                  (fun dc d -> par_and_exists m dc d f1 g1 cube')
              in
              par_or m dc depth r0 r1
            end
            else begin
              let d = depth + 1 in
              let r0 = par_and_exists m dc d f0 g0 cube' in
              if r0 = true_id then true_id
              else par_or m dc depth r0 (par_and_exists m dc d f1 g1 cube')
            end
          end
          else begin
            let r0, r1 =
              par_pair m dc depth
                (fun dc d -> par_and_exists m dc d f0 g0 cube)
                (fun dc d -> par_and_exists m dc d f1 g1 cube)
            in
            mk_locked m dc v r0 r1
          end
        in
        dcache_store dc tag f g r;
        r
      end
    end
  end

(* Fork/join of the two cofactor recursions.  Above the depth cutoff both
   run inline (counted as a cutoff hit); below it, one is forked onto the
   pool and the other runs here.  The forked future is ALWAYS joined —
   even when the inline branch raised — so the section has quiesced by
   the time an exception reaches [run_parallel]. *)
and par_pair m dc depth k0 k1 =
  if depth < m.par_fork_depth then begin
    let pool = match m.pool with Some p -> p | None -> assert false in
    let d = depth + 1 in
    let fut = Pool.fork pool (fun () -> k1 (get_dctx m) d) in
    let r0 = try Ok (k0 dc d) with e -> Error e in
    let r1 = try Ok (Pool.join pool fut) with e -> Error e in
    match (r0, r1) with
    | Ok a, Ok b -> (a, b)
    | Error e, _ | _, Error e -> raise e
  end
  else begin
    dc.dc_cutoff <- dc.dc_cutoff + 1;
    let d = depth + 1 in
    let a = k0 dc d in
    let b = k1 dc d in
    (a, b)
  end

(* Replay the bookkeeping [mk_locked] deferred, on the (now quiescent)
   manager: count consumed chunk ranges into nodecount/deadcount first,
   THEN give children their references — the order matters because
   [incr_ref] on a section-allocated rc-0 child adjusts a deadcount that
   must already include it.  Unconsumed chunk slots return to the free
   list, preserving [free + nodecount = used - 2]. *)
let section_fixup m =
  let reg = m.dreg in
  Mutex.lock reg.reg_lock;
  let dcs = reg.reg_all in
  Mutex.unlock reg.reg_lock;
  let ranges = ref [] in
  List.iter
    (fun dc ->
      for id = dc.dc_chunk to dc.dc_chunk_end - 1 do
        m.lo_arr.(id) <- m.free_list;
        m.free_list <- id
      done;
      if dc.dc_chunk_start < dc.dc_chunk then
        ranges := (dc.dc_chunk_start, dc.dc_chunk) :: !ranges;
      ranges := dc.dc_ranges @ !ranges;
      dc.dc_ranges <- [];
      dc.dc_chunk_start <- 0;
      dc.dc_chunk <- 0;
      dc.dc_chunk_end <- 0)
    dcs;
  List.iter
    (fun (s, e) ->
      m.nodecount <- m.nodecount + (e - s);
      m.deadcount <- m.deadcount + (e - s))
    !ranges;
  List.iter
    (fun (s, e) ->
      for id = s to e - 1 do
        incr_ref m m.lo_arr.(id);
        incr_ref m m.hi_arr.(id)
      done)
    !ranges

let par_headroom m = 16 * m.kernel_jobs * par_chunk

(* Run [f] as a parallel section.  Returns [None] on arena-headroom
   overflow — the caller falls back to the sequential kernel (which can
   grow the arena freely).  A budget breach follows the same consistency
   protocol as [do_limit_check]: fixup, wipe every cache, record the
   interrupt, raise [Interrupted]. *)
let run_parallel m f =
  let _ = ensure_pool m in
  if m.used + par_headroom m > Array.length m.var_arr then
    grow_arenas m (m.used + par_headroom m);
  Atomic.set m.par_abort false;
  m.par_abort_reason <- None;
  m.par_used0 <- m.used;
  m.intra_ops <- m.intra_ops + 1;
  let finish_abort () =
    section_fixup m;
    clear_caches m;
    let r = Option.value m.par_abort_reason ~default:Limits.Cancelled in
    note_interrupt m r;
    raise (Interrupted r)
  in
  match f (get_dctx m) with
  | r ->
      section_fixup m;
      Some r
  | exception Par_overflow ->
      if Atomic.get m.par_abort then finish_abort ()
      else begin
        section_fixup m;
        None
      end
  | exception Par_abort -> finish_abort ()

(* Dispatch: with [kernel_jobs <= 1] these shadowing wrappers take the
   [else] branch, i.e. the untouched sequential kernels above — the
   single-thread path allocates and behaves exactly as before.  [None]
   from [run_parallel] means the pre-reserved headroom ran out; the
   sequential retry can grow the arena and starts from a unique table
   already populated with the section's partial results. *)
let apply_and m f g =
  if m.kernel_jobs > 1 && not (is_const f) && not (is_const g) then
    match run_parallel m (fun dc -> par_and m dc 0 f g) with
    | Some r -> r
    | None -> apply_and m f g
  else apply_and m f g

let apply_ite m f g h =
  if m.kernel_jobs > 1 && not (is_const f) then
    match run_parallel m (fun dc -> par_ite m dc 0 f g h) with
    | Some r -> r
    | None -> apply_ite m f g h
  else apply_ite m f g h

let apply_exists m f cube =
  if m.kernel_jobs > 1 && not (is_const f) && cube <> true_id then
    match run_parallel m (fun dc -> par_exists m dc 0 f cube) with
    | Some r -> r
    | None -> apply_exists m f cube
  else apply_exists m f cube

let apply_and_exists m f g cube =
  if m.kernel_jobs > 1 && not (is_const f) && not (is_const g) then
    match run_parallel m (fun dc -> par_and_exists m dc 0 f g cube) with
    | Some r -> r
    | None -> apply_and_exists m f g cube
  else apply_and_exists m f g cube

let kernel_jobs m = m.kernel_jobs

(* Changing the job count tears down the pool (the counters are folded
   into the manager first so stats stay monotone); a new pool spins up
   lazily on the next parallel operation. *)
let set_kernel_jobs m n =
  let n = max 1 n in
  if n <> m.kernel_jobs then begin
    (match m.pool with
    | Some p ->
        let f, s = Pool.counters p in
        m.intra_forked0 <- m.intra_forked0 + f;
        m.intra_stolen0 <- m.intra_stolen0 + s;
        Pool.shutdown p;
        m.pool <- None
    | None -> ());
    m.kernel_jobs <- n;
    m.par_fork_depth <- fork_depth_for n
  end

(* ------------------------------------------------------------------ *)
(* Structural queries *)

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go u =
    if (not (is_const u)) && not (Hashtbl.mem seen u) then begin
      Hashtbl.add seen u ();
      Hashtbl.replace vars m.var_arr.(u) ();
      go m.lo_arr.(u);
      go m.hi_arr.(u)
    end
  in
  go f;
  let l = Hashtbl.fold (fun v () acc -> v :: acc) vars [] in
  List.sort compare l

let dag_size m f =
  let seen = Hashtbl.create 64 in
  let rec go u acc =
    if is_const u || Hashtbl.mem seen u then acc
    else begin
      Hashtbl.add seen u ();
      go m.hi_arr.(u) (go m.lo_arr.(u) (acc + 1))
    end
  in
  go f 0

(* Number of satisfying assignments over [n] variables. *)
let satcount m f n =
  Hashtbl.reset m.satcache;
  let rec go u =
    if u = false_id then 0.0
    else if u = true_id then 1.0
    else
      match Hashtbl.find_opt m.satcache u with
      | Some c -> c
      | None ->
          let l = m.lo_arr.(u) and h = m.hi_arr.(u) in
          let lev_u = level m u in
          let gap c =
            let lev_c = if is_const c then n else level m c in
            Float.of_int (lev_c - lev_u - 1)
          in
          let c = (go l *. (2.0 ** gap l)) +. (go h *. (2.0 ** gap h)) in
          Hashtbl.replace m.satcache u c;
          c
  in
  if is_const f then if f = true_id then 2.0 ** Float.of_int n else 0.0
  else go f *. (2.0 ** Float.of_int (level m f))

(* Number of satisfying assignments over exactly the variables in [vars]
   (the support of [f] must be a subset).  Levels outside [vars] contribute
   no factor. *)
let satcount_vars m f vars =
  let levels = List.sort compare (List.map (fun v -> m.perm.(v)) vars) in
  let k = List.length levels in
  (* rank.(i): number of counted levels strictly below level i; plus a
     sentinel giving k for the terminal level. *)
  let rank =
    let tbl = Hashtbl.create (2 * k) in
    List.iteri (fun i l -> Hashtbl.replace tbl l i) levels;
    fun l ->
      if l = terminal_level then k
      else
        match Hashtbl.find_opt tbl l with
        | Some i -> i
        | None ->
            (* level not counted: rank = number of counted levels below *)
            let rec count i = function
              | [] -> i
              | x :: rest -> if x < l then count (i + 1) rest else i
            in
            count 0 levels
  in
  let memo = Hashtbl.create 64 in
  let rec go u =
    if u = false_id then 0.0
    else if u = true_id then 1.0
    else
      match Hashtbl.find_opt memo u with
      | Some c -> c
      | None ->
          let lu = level m u in
          let branch c =
            let skipped = rank (level m c) - rank lu - 1 in
            go c *. (2.0 ** Float.of_int skipped)
          in
          let c = branch m.lo_arr.(u) +. branch m.hi_arr.(u) in
          Hashtbl.replace memo u c;
          c
  in
  if f = false_id then 0.0
  else if f = true_id then 2.0 ** Float.of_int k
  else go f *. (2.0 ** Float.of_int (rank (level m f)))

(* One satisfying path as [(var, value)] pairs; raises [Not_found] on 0. *)
let pick_cube m f =
  if f = false_id then raise Not_found;
  let rec go u acc =
    if u = true_id then List.rev acc
    else begin
      let v = m.var_arr.(u) in
      if m.lo_arr.(u) <> false_id then go m.lo_arr.(u) ((v, false) :: acc)
      else go m.hi_arr.(u) ((v, true) :: acc)
    end
  in
  go f []

(* Iterate all satisfying cubes (paths to 1); values: Some b or None (free). *)
let iter_cubes m f ~nvars:(_ : int) k =
  let assign = Hashtbl.create 16 in
  let rec go u =
    if u = true_id then
      k (fun v -> Hashtbl.find_opt assign v)
    else if u <> false_id then begin
      let v = m.var_arr.(u) in
      Hashtbl.replace assign v false;
      go m.lo_arr.(u);
      Hashtbl.replace assign v true;
      go m.hi_arr.(u);
      Hashtbl.remove assign v
    end
  in
  go f

(* Evaluate under a total assignment given as a function var -> bool. *)
let rec eval m f env =
  if f = true_id then true
  else if f = false_id then false
  else if env m.var_arr.(f) then eval m m.hi_arr.(f) env
  else eval m m.lo_arr.(f) env

(* ------------------------------------------------------------------ *)
(* Consistency checking (used by the test suite) *)

let check m =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Per-node structural invariants + unique-table membership. *)
  for id = 2 to m.used - 1 do
    let v = m.var_arr.(id) in
    if v >= 0 then begin
      let l = m.lo_arr.(id) and h = m.hi_arr.(id) in
      if l = h then err "node %d: lo = hi" id;
      if level m id >= level m l then err "node %d: lo level order" id;
      if level m id >= level m h then err "node %d: hi level order" id;
      let st = m.subtables.(v) in
      let mask = Array.length st.buckets - 1 in
      let rec find id' =
        if id' < 0 then -1
        else if m.lo_arr.(id') = l && m.hi_arr.(id') = h then id'
        else find m.next_arr.(id')
      in
      match find st.buckets.(utbl_hash l h mask) with
      | id' when id' = id -> ()
      | -1 -> err "node %d: missing from unique table" id
      | id' -> err "node %d: duplicate of %d in unique table" id id'
    end
  done;
  (* Arena-wide canonicity: no two live nodes share a (var, lo, hi)
     triple, even across different hash buckets. *)
  let triples = Hashtbl.create 256 in
  for id = 2 to m.used - 1 do
    if m.var_arr.(id) >= 0 then begin
      let key = (m.var_arr.(id), m.lo_arr.(id), m.hi_arr.(id)) in
      (match Hashtbl.find_opt triples key with
      | Some other -> err "node %d: same (var,lo,hi) as node %d" id other
      | None -> ());
      Hashtbl.replace triples key id
    end
  done;
  (* Subtable bookkeeping: every chained id belongs to the variable, and
     the per-subtable counts match the chains. *)
  let chained = ref 0 in
  for v = 0 to m.nvars - 1 do
    let st = m.subtables.(v) in
    let cnt = ref 0 in
    Array.iter
      (fun head ->
        let id = ref head in
        let steps = ref 0 in
        while !id >= 0 && !steps <= m.used do
          if m.var_arr.(!id) <> v then
            err "node %d: chained under var %d but labeled %d" !id v
              m.var_arr.(!id);
          incr cnt;
          incr steps;
          id := m.next_arr.(!id)
        done;
        if !steps > m.used then err "var %d: unique-table chain cycle" v)
      st.buckets;
    if !cnt <> st.st_count then
      err "var %d: subtable count %d but %d chained" v st.st_count !cnt;
    chained := !chained + !cnt
  done;
  if !chained <> m.nodecount then
    err "unique tables hold %d nodes but arena has %d allocated" !chained
      m.nodecount;
  (* Freelist: freed slots are unlabeled, and freed + allocated covers the
     arena's used range. *)
  let free = ref 0 in
  let fl = ref m.free_list in
  while !fl >= 0 && !free <= m.used do
    if m.var_arr.(!fl) <> -1 then err "freelist node %d still labeled" !fl;
    incr free;
    fl := m.lo_arr.(!fl)
  done;
  if !free > m.used then err "freelist cycle"
  else if !free + m.nodecount <> m.used - 2 then
    err "freelist %d + allocated %d <> used %d" !free m.nodecount (m.used - 2);
  (* Internal-parent counts must never exceed stored reference counts. *)
  let parents = Hashtbl.create 256 in
  let bump u =
    if not (is_const u) then
      Hashtbl.replace parents u (1 + Option.value ~default:0 (Hashtbl.find_opt parents u))
  in
  for id = 2 to m.used - 1 do
    if m.var_arr.(id) >= 0 then begin
      bump m.lo_arr.(id);
      bump m.hi_arr.(id)
    end
  done;
  Hashtbl.iter
    (fun u p ->
      if m.rc_arr.(u) < p then err "node %d: rc %d < parents %d" u m.rc_arr.(u) p)
    parents;
  List.rev !errors

(* ------------------------------------------------------------------ *)
(* Dynamic reordering: adjacent-level swap + sifting *)

(* Remove dead node [id] during a swap; children may cascade. *)
let rec purge m id =
  if m.var_arr.(id) >= 0 && m.rc_arr.(id) = 0 then begin
    let v = m.var_arr.(id) and l = m.lo_arr.(id) and h = m.hi_arr.(id) in
    unlink_node m v id;
    m.var_arr.(id) <- -1;
    m.lo_arr.(id) <- m.free_list;
    m.free_list <- id;
    m.nodecount <- m.nodecount - 1;
    m.deadcount <- m.deadcount - 1;
    let release c =
      if not (is_const c) then begin
        decr_ref m c;
        if m.rc_arr.(c) = 0 then purge m c
      end
    in
    release l;
    release h
  end

(* All node ids currently chained in a variable's unique table. *)
let subtable_nodes m v =
  let acc = ref [] in
  Array.iter
    (fun head ->
      let id = ref head in
      while !id >= 0 do
        acc := !id :: !acc;
        id := m.next_arr.(!id)
      done)
    m.subtables.(v).buckets;
  !acc

(* Swap the variables at levels [l] and [l+1]. Caches must be clear.

   Unique-table protocol: a rewritten node keeps its id but changes both
   its variable (x -> y) and its children, so it is unlinked from x's
   subtable while its old (lo, hi) key is still intact, then re-chained
   into y's subtable under the new key. The two [mk] calls that build the
   new children go through x's subtable as usual and can never collide
   with the stale entry (the keys differ because children sit at strictly
   greater levels). *)
let swap_levels m l =
  let x = m.invperm.(l) and y = m.invperm.(l + 1) in
  let xs = subtable_nodes m x in
  let rewrite id =
    if m.var_arr.(id) = x then begin
      if m.rc_arr.(id) = 0 then purge m id
      else begin
        let f0 = m.lo_arr.(id) and f1 = m.hi_arr.(id) in
        let dep0 = (not (is_const f0)) && m.var_arr.(f0) = y in
        let dep1 = (not (is_const f1)) && m.var_arr.(f1) = y in
        if dep0 || dep1 then begin
          let f00 = if dep0 then m.lo_arr.(f0) else f0 in
          let f01 = if dep0 then m.hi_arr.(f0) else f0 in
          let f10 = if dep1 then m.lo_arr.(f1) else f1 in
          let f11 = if dep1 then m.hi_arr.(f1) else f1 in
          (* New structure: y ? (x ? f11 : f01) : (x ? f10 : f00) *)
          let c0 = mk m x f00 f10 in
          incr_ref m c0;
          let c1 = mk m x f01 f11 in
          incr_ref m c1;
          (* Unlink before rewriting lo/hi: the hash still needs (f0, f1). *)
          unlink_node m x id;
          decr_ref m f0;
          if m.rc_arr.(f0) = 0 then purge m f0;
          decr_ref m f1;
          if (not (is_const f1)) && m.var_arr.(f1) >= 0 && m.rc_arr.(f1) = 0
          then purge m f1;
          m.var_arr.(id) <- y;
          m.lo_arr.(id) <- c0;
          m.hi_arr.(id) <- c1;
          (* rc transfer: the two incr_ref above are now the node's own
             references to its children; drop the temporary protection. *)
          let st = m.subtables.(y) in
          let mask = Array.length st.buckets - 1 in
          let h = utbl_hash c0 c1 mask in
          let rec find id' =
            if id' < 0 then -1
            else if m.lo_arr.(id') = c0 && m.hi_arr.(id') = c1 then id'
            else find m.next_arr.(id')
          in
          (match find st.buckets.(h) with
          | other when other >= 0 && other <> id ->
              (* Cannot happen for reduced diagrams: two distinct nodes
                 would denote the same function. *)
              invalid_arg
                (Printf.sprintf "swap_levels: collision %d/%d" id other)
          | _ ->
              m.next_arr.(id) <- st.buckets.(h);
              st.buckets.(h) <- id;
              st.st_count <- st.st_count + 1;
              if st.st_count > 4 * (mask + 1) then grow_subtable m st)
        end
      end
    end
  in
  List.iter rewrite xs;
  m.perm.(x) <- l + 1;
  m.perm.(y) <- l;
  m.invperm.(l) <- y;
  m.invperm.(l + 1) <- x

(* Sift a single variable to its locally optimal level. *)
let sift_var m v =
  let n = m.nvars in
  if n > 1 then begin
    let best_size = ref (node_count m) in
    let best_lev = ref m.perm.(v) in
    let move_to target =
      while m.perm.(v) < target do
        swap_levels m m.perm.(v)
      done;
      while m.perm.(v) > target do
        swap_levels m (m.perm.(v) - 1)
      done
    in
    let start = m.perm.(v) in
    (* Explore toward the closer end first, then the other. *)
    let down_first = start >= n / 2 in
    let explore_down () =
      while m.perm.(v) < n - 1 do
        swap_levels m m.perm.(v);
        let s = node_count m in
        if s < !best_size then begin
          best_size := s;
          best_lev := m.perm.(v)
        end
      done
    in
    let explore_up () =
      while m.perm.(v) > 0 do
        swap_levels m (m.perm.(v) - 1);
        let s = node_count m in
        if s < !best_size then begin
          best_size := s;
          best_lev := m.perm.(v)
        end
      done
    in
    if down_first then begin
      explore_down ();
      explore_up ()
    end
    else begin
      explore_up ();
      explore_down ()
    end;
    move_to !best_lev
  end

(* Sift the [max_vars] largest variables (all by default). *)
let sift ?max_vars m =
  let t0 = Obs.Clock.now () in
  clear_caches m;
  ignore (collect m);
  let order =
    List.init m.nvars (fun v -> (m.subtables.(v).st_count, v))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let order =
    match max_vars with
    | None -> order
    | Some k -> List.filteri (fun i _ -> i < k) order
  in
  List.iter (fun v -> sift_var m v) order;
  m.reorder_runs <- m.reorder_runs + 1;
  clear_caches m;
  m.reorder_time <- m.reorder_time +. (Obs.Clock.now () -. t0)

let set_auto_reorder m b = m.auto_reorder <- b
let set_reorder_threshold m n = m.reorder_threshold <- max 16 n

(* Hook called by the handle layer at operation entry.  Also polls the
   budget unconditionally: a workload that never misses the cache makes no
   progress through the amortized in-kernel poll, but still enters ops. *)
let entry_hook m =
  if not (Limits.is_none m.limits) then do_limit_check m;
  maybe_collect m;
  maybe_resize_cache m;
  if m.auto_reorder && node_count m > m.reorder_threshold then begin
    sift m;
    m.reorder_threshold <- max (2 * node_count m) m.reorder_threshold
  end

let stats m : Obs.man_stats =
  let ops =
    List.init num_op_slots (fun i ->
        {
          Obs.Cache.name = op_names.(i);
          hits = m.cache_hits.(i);
          misses = m.cache_misses.(i);
        })
  in
  let dcs =
    let reg = m.dreg in
    Mutex.lock reg.reg_lock;
    let l = reg.reg_all in
    Mutex.unlock reg.reg_lock;
    List.rev l
  in
  let sum f = List.fold_left (fun acc dc -> acc + f dc) 0 dcs in
  let pool_forked, pool_stolen =
    match m.pool with Some p -> Pool.counters p | None -> (0, 0)
  in
  {
    Obs.cache =
      {
        Obs.Cache.entries = m.cache_used;
        slots = m.cache_mask + 1;
        evictions = m.cache_evictions;
        ops;
      };
    gc = { Obs.Gc.runs = m.gc_runs; freed = m.gc_freed; time = m.gc_time };
    reorder = { Obs.Reorder.runs = m.reorder_runs; time = m.reorder_time };
    arena =
      {
        Obs.Arena.live = node_count m;
        dead = m.deadcount;
        vars = m.nvars;
        peak_live = m.peak_live;
        capacity = Array.length m.var_arr;
      };
    limits =
      {
        Obs.Limit.checks = m.limit_checks + sum (fun dc -> dc.dc_checks);
        interrupts =
          List.filter
            (fun (_, n) -> n > 0)
            [ ("deadline", m.intr_deadline); ("nodes", m.intr_nodes);
              ("steps", m.intr_steps); ("cancelled", m.intr_cancelled) ];
      };
    snap =
      {
        Obs.Snap.exports = m.snap_exports;
        imports = m.snap_imports;
        nodes = m.snap_nodes;
        bytes = m.snap_bytes;
        export_time = m.snap_export_time;
        import_time = m.snap_import_time;
      };
    intra =
      {
        Obs.Intra.domains = List.length dcs;
        ops = m.intra_ops;
        forked = m.intra_forked0 + pool_forked;
        stolen = m.intra_stolen0 + pool_stolen;
        cutoff_hits = sum (fun dc -> dc.dc_cutoff);
        lock_contention = sum (fun dc -> dc.dc_waits);
        cache_hits = sum (fun dc -> dc.dc_hits);
        cache_misses = sum (fun dc -> dc.dc_misses);
        per_domain = List.map (fun dc -> (dc.dc_hits, dc.dc_misses)) dcs;
      };
  }

let order m = Array.to_list (Array.sub m.invperm 0 m.nvars)

let note_snapshot m dir ~nodes ~bytes ~seconds =
  m.snap_nodes <- m.snap_nodes + nodes;
  m.snap_bytes <- m.snap_bytes + bytes;
  match dir with
  | `Export ->
      m.snap_exports <- m.snap_exports + 1;
      m.snap_export_time <- m.snap_export_time +. seconds
  | `Import ->
      m.snap_imports <- m.snap_imports + 1;
      m.snap_import_time <- m.snap_import_time +. seconds
