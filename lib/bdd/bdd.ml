type man = Man.t

type t = { node : int; man : man }

let wrap man node =
  Man.incr_ref man node;
  let h = { node; man } in
  Gc.finalise (fun h -> Man.decr_ref h.man h.node) h;
  h

let same_man a b =
  if a.man != b.man then invalid_arg "Bdd: handles from different managers"

let new_man ?initial_capacity ?kernel_jobs () =
  Man.create ?initial_capacity ?kernel_jobs ()

let man_of h = h.man
let set_kernel_jobs = Man.set_kernel_jobs
let kernel_jobs = Man.kernel_jobs
let num_vars = Man.num_vars
let node_count = Man.node_count

let new_var ?name m =
  let v = Man.new_var ?name m in
  wrap m (Man.ithvar m v)

let ithvar m v =
  if v < 0 || v >= Man.num_vars m then invalid_arg "Bdd.ithvar";
  wrap m (Man.ithvar m v)

let var_index h =
  if Man.is_const h.node then invalid_arg "Bdd.var_index: constant";
  if
    Man.lo h.man h.node = Man.false_id
    && Man.hi h.man h.node = Man.true_id
  then Man.var h.man h.node
  else invalid_arg "Bdd.var_index: not a positive literal"

let dtrue m = wrap m Man.true_id
let dfalse m = wrap m Man.false_id
let is_true h = h.node = Man.true_id
let is_false h = h.node = Man.false_id
let equal a b = a.man == b.man && a.node = b.node
let id h = h.node

let unary f h =
  Man.entry_hook h.man;
  wrap h.man (f h.man h.node)

let binary f a b =
  same_man a b;
  Man.entry_hook a.man;
  wrap a.man (f a.man a.node b.node)

let dnot h = unary Man.apply_not h
let dand a b = binary Man.apply_and a b
let dor a b = binary Man.apply_or a b
let xor a b = binary Man.apply_xor a b
let nand a b = dnot (dand a b)
let nor a b = dnot (dor a b)
let imp a b = dor (dnot a) b
let eqv a b = dnot (xor a b)
let iff = eqv

let ite f g h =
  same_man f g;
  same_man g h;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_ite f.man f.node g.node h.node)

let conj m hs = List.fold_left dand (dtrue m) hs
let disj m hs = List.fold_left dor (dfalse m) hs
let cube m hs = conj m hs

let exists ~cube f =
  same_man cube f;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_exists f.man f.node cube.node)

let forall ~cube f = dnot (exists ~cube (dnot f))

let and_exists ~cube f g =
  same_man cube f;
  same_man f g;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_and_exists f.man f.node g.node cube.node)

type varmap = { vm_man : man; vm_id : int; vm_map : int array }

let make_varmap m pairs =
  let map = Array.init (Man.num_vars m) (fun i -> i) in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= Array.length map then invalid_arg "Bdd.make_varmap";
      map.(src) <- dst)
    pairs;
  { vm_man = m; vm_id = Man.register_map m map; vm_map = map }

let permute vm f =
  if vm.vm_man != f.man then invalid_arg "Bdd.permute: manager mismatch";
  Man.entry_hook f.man;
  wrap f.man (Man.apply_permute f.man vm.vm_id vm.vm_map f.node)

let restrict f ~care =
  same_man f care;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_restrict f.man f.node care.node)

let constrain f ~care =
  same_man f care;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_constrain f.man f.node care.node)

let support h = Man.support h.man h.node
let dag_size h = Man.dag_size h.man h.node
let satcount h ~nvars = Man.satcount h.man h.node nvars
let satcount_vars h ~vars = Man.satcount_vars h.man h.node vars
let eval h env = Man.eval h.man h.node env
let pick_cube h = Man.pick_cube h.man h.node

let pick_state h ~over =
  let partial = pick_cube h in
  List.map
    (fun v ->
      match List.assoc_opt v partial with
      | Some b -> (v, b)
      | None -> (v, false))
    over

let iter_cubes h k = Man.iter_cubes h.man h.node ~nvars:(Man.num_vars h.man) k
let gc m = Man.collect m
let set_gc_threshold = Man.set_gc_threshold
let sift ?max_vars m = Man.sift ?max_vars m
let set_auto_reorder = Man.set_auto_reorder
let set_reorder_threshold = Man.set_reorder_threshold
let order = Man.order
let name_of_var = Man.name_of_var

exception Interrupted = Man.Interrupted

let set_limits = Man.set_limits
let limits = Man.limits
let note_interrupt = Man.note_interrupt

(* Install a budget for the duration of [f] only, restoring the previous
   one on any exit (including an interrupt escaping [f]). *)
let with_limits m l f =
  let saved = Man.limits m in
  Man.set_limits m l;
  Fun.protect ~finally:(fun () -> Man.set_limits m saved) f

let stats = Man.stats
let check = Man.check

(* ------------------------------------------------------------------ *)
(* Snapshots: compact cross-manager serialization of shared DAGs.

   Wire layout: [snap_nodes] holds one 4-int record per DAG node in
   topological (children-first) order — (variable index, low ref, high
   ref, complement bit).  The complement bit is reserved 0: this package
   has no complement edges, but the slot keeps the record shape stable if
   they are ever added.  A child ref is 0 for false, 1 for true, and
   [k + 2] for the node of record [k] — always an earlier record, so
   rehydration is a single linear pass of [Man.mk] calls with no
   unique-table misses beyond the nodes themselves.  [snap_order] is the
   exporting manager's variable order (outermost first): a snapshot is
   directly valid in any manager whose order agrees on these variables;
   on a mismatch {!import} either rejects ([strict]) or re-canonicalizes
   node-by-node via ite. *)

type snapshot = {
  snap_order : int array;
  snap_nodes : int array;
  snap_roots : int array;
}

let snapshot_nodes s = Array.length s.snap_nodes / 4

(* Wire size if written as 64-bit words: records + roots + order + a
   length header.  Used for Obs accounting and cache budgets. *)
let snapshot_bytes s =
  8
  * (Array.length s.snap_nodes + Array.length s.snap_roots
    + Array.length s.snap_order + 1)

let snapshot_order s = Array.to_list s.snap_order

let export m roots =
  List.iter
    (fun h ->
      if h.man != m then invalid_arg "Bdd.export: handle from another manager")
    roots;
  let t0 = Hsis_obs.Obs.Clock.now () in
  let idx = Hashtbl.create 256 in
  (* records, appended 4 ints at a time *)
  let buf = ref (Array.make 1024 0) in
  let len = ref 0 in
  let push x =
    if !len = Array.length !buf then begin
      let b = Array.make (2 * !len) 0 in
      Array.blit !buf 0 b 0 !len;
      buf := b
    end;
    !buf.(!len) <- x;
    incr len
  in
  let ref_of u =
    if u = Man.false_id then 0
    else if u = Man.true_id then 1
    else Hashtbl.find idx u + 2
  in
  (* Explicit-stack post-order DFS: children are always emitted before
     their parents, which is exactly the topological record order. *)
  let stack = Stack.create () in
  let visit u =
    if not (Man.is_const u || Hashtbl.mem idx u) then
      Stack.push (`Enter u) stack
  in
  List.iter (fun h -> visit h.node) roots;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Enter u ->
        if not (Hashtbl.mem idx u) then begin
          Stack.push (`Emit u) stack;
          visit (Man.hi m u);
          visit (Man.lo m u)
        end
    | `Emit u ->
        if not (Hashtbl.mem idx u) then begin
          push (Man.var m u);
          push (ref_of (Man.lo m u));
          push (ref_of (Man.hi m u));
          push 0;
          Hashtbl.replace idx u ((!len / 4) - 1)
        end
  done;
  let s =
    {
      snap_order = Array.of_list (Man.order m);
      snap_nodes = Array.sub !buf 0 !len;
      snap_roots = Array.of_list (List.map (fun h -> ref_of h.node) roots);
    }
  in
  Man.note_snapshot m `Export ~nodes:(snapshot_nodes s)
    ~bytes:(snapshot_bytes s)
    ~seconds:(Hsis_obs.Obs.Clock.now () -. t0);
  s

(* Level of a variable in [m]'s current order (via its literal, which
   [mk]-probes but allocates at most once). *)
let var_level m v = Man.level m (Man.ithvar m v)

let import ?(strict = false) m s =
  let t0 = Hsis_obs.Obs.Clock.now () in
  let nvars = Man.num_vars m in
  (* Order compatibility: the exporting order restricted to variables this
     manager knows must be increasing under the local order too. *)
  let order_ok =
    let last = ref (-1) in
    Array.for_all
      (fun v ->
        v >= nvars
        ||
        let l = var_level m v in
        let ok = l > !last in
        last := l;
        ok)
      s.snap_order
  in
  if strict && not order_ok then
    invalid_arg "Bdd.import: variable order mismatch";
  let n = Array.length s.snap_nodes / 4 in
  let ids = Array.make n Man.false_id in
  let resolve r =
    if r = 0 then Man.false_id
    else if r = 1 then Man.true_id
    else ids.(r - 2)
  in
  (* Single linear pass; no operation entry hooks run, so no collection
     can reclaim a record before a later record (or a root handle) takes
     its reference. *)
  for k = 0 to n - 1 do
    let v = s.snap_nodes.(4 * k) in
    if v < 0 || v >= nvars then
      invalid_arg "Bdd.import: snapshot variable not allocated here";
    let l = resolve s.snap_nodes.(4 * k + 1) in
    let h = resolve s.snap_nodes.(4 * k + 2) in
    ids.(k) <-
      (if order_ok then Man.mk m v l h
       else begin
         (* Re-permute under the local order: mk is only sound when both
            children still sit strictly below the variable; otherwise
            rebuild the node with ite, which re-canonicalizes. *)
         let lv = var_level m v in
         if Man.level m l > lv && Man.level m h > lv then Man.mk m v l h
         else Man.apply_ite m (Man.ithvar m v) h l
       end)
  done;
  let roots =
    List.map (fun r -> wrap m (resolve r)) (Array.to_list s.snap_roots)
  in
  Man.note_snapshot m `Import ~nodes:n ~bytes:(snapshot_bytes s)
    ~seconds:(Hsis_obs.Obs.Clock.now () -. t0);
  roots

let pp fmt h =
  if is_true h then Format.fprintf fmt "true"
  else if is_false h then Format.fprintf fmt "false"
  else begin
    let first = ref true in
    let cubes = ref 0 in
    iter_cubes h (fun lookup ->
        incr cubes;
        if !cubes <= 64 then begin
          if not !first then Format.fprintf fmt " + ";
          first := false;
          let lits = ref [] in
          for v = Man.num_vars h.man - 1 downto 0 do
            match lookup v with
            | Some true -> lits := Man.name_of_var h.man v :: !lits
            | Some false -> lits := ("!" ^ Man.name_of_var h.man v) :: !lits
            | None -> ()
          done;
          Format.fprintf fmt "%s" (String.concat "." !lits)
        end);
    if !cubes > 64 then Format.fprintf fmt " + ... (%d cubes)" !cubes
  end
