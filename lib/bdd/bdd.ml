type man = Man.t

type t = { node : int; man : man }

let wrap man node =
  Man.incr_ref man node;
  let h = { node; man } in
  Gc.finalise (fun h -> Man.decr_ref h.man h.node) h;
  h

let same_man a b =
  if a.man != b.man then invalid_arg "Bdd: handles from different managers"

let new_man ?initial_capacity () = Man.create ?initial_capacity ()
let man_of h = h.man
let num_vars = Man.num_vars
let node_count = Man.node_count

let new_var ?name m =
  let v = Man.new_var ?name m in
  wrap m (Man.ithvar m v)

let ithvar m v =
  if v < 0 || v >= Man.num_vars m then invalid_arg "Bdd.ithvar";
  wrap m (Man.ithvar m v)

let var_index h =
  if Man.is_const h.node then invalid_arg "Bdd.var_index: constant";
  if
    Man.lo h.man h.node = Man.false_id
    && Man.hi h.man h.node = Man.true_id
  then Man.var h.man h.node
  else invalid_arg "Bdd.var_index: not a positive literal"

let dtrue m = wrap m Man.true_id
let dfalse m = wrap m Man.false_id
let is_true h = h.node = Man.true_id
let is_false h = h.node = Man.false_id
let equal a b = a.man == b.man && a.node = b.node
let id h = h.node

let unary f h =
  Man.entry_hook h.man;
  wrap h.man (f h.man h.node)

let binary f a b =
  same_man a b;
  Man.entry_hook a.man;
  wrap a.man (f a.man a.node b.node)

let dnot h = unary Man.apply_not h
let dand a b = binary Man.apply_and a b
let dor a b = binary Man.apply_or a b
let xor a b = binary Man.apply_xor a b
let nand a b = dnot (dand a b)
let nor a b = dnot (dor a b)
let imp a b = dor (dnot a) b
let eqv a b = dnot (xor a b)

let ite f g h =
  same_man f g;
  same_man g h;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_ite f.man f.node g.node h.node)

let conj m hs = List.fold_left dand (dtrue m) hs
let disj m hs = List.fold_left dor (dfalse m) hs
let cube m hs = conj m hs

let exists ~cube f =
  same_man cube f;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_exists f.man f.node cube.node)

let forall ~cube f = dnot (exists ~cube (dnot f))

let and_exists ~cube f g =
  same_man cube f;
  same_man f g;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_and_exists f.man f.node g.node cube.node)

type varmap = { vm_man : man; vm_id : int; vm_map : int array }

let make_varmap m pairs =
  let map = Array.init (Man.num_vars m) (fun i -> i) in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= Array.length map then invalid_arg "Bdd.make_varmap";
      map.(src) <- dst)
    pairs;
  { vm_man = m; vm_id = Man.register_map m map; vm_map = map }

let permute vm f =
  if vm.vm_man != f.man then invalid_arg "Bdd.permute: manager mismatch";
  Man.entry_hook f.man;
  wrap f.man (Man.apply_permute f.man vm.vm_id vm.vm_map f.node)

let restrict f ~care =
  same_man f care;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_restrict f.man f.node care.node)

let constrain f ~care =
  same_man f care;
  Man.entry_hook f.man;
  wrap f.man (Man.apply_constrain f.man f.node care.node)

let support h = Man.support h.man h.node
let dag_size h = Man.dag_size h.man h.node
let satcount h ~nvars = Man.satcount h.man h.node nvars
let satcount_vars h ~vars = Man.satcount_vars h.man h.node vars
let eval h env = Man.eval h.man h.node env
let pick_cube h = Man.pick_cube h.man h.node

let pick_state h ~over =
  let partial = pick_cube h in
  List.map
    (fun v ->
      match List.assoc_opt v partial with
      | Some b -> (v, b)
      | None -> (v, false))
    over

let iter_cubes h k = Man.iter_cubes h.man h.node ~nvars:(Man.num_vars h.man) k
let gc m = Man.collect m
let set_gc_threshold = Man.set_gc_threshold
let sift ?max_vars m = Man.sift ?max_vars m
let set_auto_reorder = Man.set_auto_reorder
let set_reorder_threshold = Man.set_reorder_threshold
let order = Man.order
let name_of_var = Man.name_of_var

exception Interrupted = Man.Interrupted

let set_limits = Man.set_limits
let limits = Man.limits
let note_interrupt = Man.note_interrupt

(* Install a budget for the duration of [f] only, restoring the previous
   one on any exit (including an interrupt escaping [f]). *)
let with_limits m l f =
  let saved = Man.limits m in
  Man.set_limits m l;
  Fun.protect ~finally:(fun () -> Man.set_limits m saved) f

let stats = Man.stats
let check = Man.check

let pp fmt h =
  if is_true h then Format.fprintf fmt "true"
  else if is_false h then Format.fprintf fmt "false"
  else begin
    let first = ref true in
    let cubes = ref 0 in
    iter_cubes h (fun lookup ->
        incr cubes;
        if !cubes <= 64 then begin
          if not !first then Format.fprintf fmt " + ";
          first := false;
          let lits = ref [] in
          for v = Man.num_vars h.man - 1 downto 0 do
            match lookup v with
            | Some true -> lits := Man.name_of_var h.man v :: !lits
            | Some false -> lits := ("!" ^ Man.name_of_var h.man v) :: !lits
            | None -> ()
          done;
          Format.fprintf fmt "%s" (String.concat "." !lits)
        end);
    if !cubes > 64 then Format.fprintf fmt " + ... (%d cubes)" !cubes
  end
