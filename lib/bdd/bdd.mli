(** Reduced ordered binary decision diagrams.

    This is the public face of the HSIS BDD package: handles returned by the
    operations below are tied to the OCaml garbage collector, so user code
    never manages node reference counts explicitly.  Each handle belongs to a
    {!man}; mixing handles from two managers raises [Invalid_argument]. *)

type man
(** A BDD manager: node arena, unique tables, caches, variable order. *)

type t
(** A BDD handle.  Structural equality of functions is pointer equality,
    exposed as {!equal}. *)

val new_man : ?initial_capacity:int -> ?kernel_jobs:int -> unit -> man
(** Create a fresh manager with no variables.  [kernel_jobs] (default 1)
    sets the intra-operation parallelism degree: with more than one job
    the [and]/[ite]/[exists]/[and_exists] kernels fork their cofactor
    recursions onto a persistent domain pool.  Results are bit-identical
    across job counts. *)

val set_kernel_jobs : man -> int -> unit
(** Change the intra-operation parallelism degree (clamped to >= 1); safe
    between operations. *)

val kernel_jobs : man -> int

val new_var : ?name:string -> man -> t
(** Allocate a fresh variable at the bottom of the current order and return
    its positive literal. *)

val num_vars : man -> int
val node_count : man -> int

val man_of : t -> man
val var_index : t -> int
(** Variable index of the literal returned by {!new_var} / {!ithvar}.
    Raises [Invalid_argument] on non-literal BDDs. *)

val ithvar : man -> int -> t
(** Positive literal of variable [i] (which must already exist). *)

val dtrue : man -> t
val dfalse : man -> t

val is_true : t -> bool
val is_false : t -> bool
val equal : t -> t -> bool
val id : t -> int
(** Stable node id, for hashing and ordering of handles. *)

(** {1 Boolean connectives} *)

val dnot : t -> t
val dand : t -> t -> t
val dor : t -> t -> t
val xor : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t
val imp : t -> t -> t
val eqv : t -> t -> t

val iff : t -> t -> t
(** Alias of {!eqv}: true exactly where the two functions agree (so
    [is_true (iff a b)] is semantic equivalence). *)

val ite : t -> t -> t -> t
val conj : man -> t list -> t
val disj : man -> t list -> t

(** {1 Quantification} *)

val cube : man -> t list -> t
(** Conjunction of positive literals, used as a quantification set. *)

val exists : cube:t -> t -> t
val forall : cube:t -> t -> t
val and_exists : cube:t -> t -> t -> t
(** [and_exists ~cube f g] is [exists ~cube (dand f g)] computed without
    materializing the conjunction (relational product). *)

(** {1 Substitution} *)

type varmap
(** A registered variable relabeling, cached across calls. *)

val make_varmap : man -> (int * int) list -> varmap
(** [make_varmap m pairs] maps each [fst] variable to its [snd]; variables
    not mentioned are fixed. *)

val permute : varmap -> t -> t

(** {1 Don't-care minimization} *)

val restrict : t -> care:t -> t
(** Coudert-Madre [restrict]: minimize the first argument assuming inputs
    outside [care] never occur.  Result agrees with the argument on [care]. *)

val constrain : t -> care:t -> t
(** Generalized cofactor. *)

(** {1 Queries} *)

val support : t -> int list
(** Variable indices occurring in the BDD, sorted increasingly. *)

val dag_size : t -> int
val satcount : t -> nvars:int -> float

(** Satisfying assignments counted over exactly [vars]; the BDD's support
    must be a subset of [vars]. *)
val satcount_vars : t -> vars:int list -> float
val eval : t -> (int -> bool) -> bool

val pick_cube : t -> (int * bool) list
(** One satisfying partial assignment (a path to 1).
    Raises [Not_found] if the BDD is false. *)

val pick_state : t -> over:int list -> (int * bool) list
(** Like {!pick_cube} but completed to a total assignment over [over]
    (unconstrained variables are set to [false]). *)

val iter_cubes : t -> ((int -> bool option) -> unit) -> unit
(** Iterate the satisfying paths; the callback receives a partial
    assignment lookup. *)

(** {1 Snapshots}

    A compact, manager-independent serialization of a set of BDDs: the
    reachable DAG as a flat int array in topological (children-first)
    order, one [(var, low, high, complement)] record per node, plus the
    exporting manager's variable order.  Snapshots are plain immutable
    data — safe to share across domains — and rehydrate with a single
    linear pass.  They are how the shared-work parallel path ships a
    transition relation built once on the coordinator into fresh
    per-worker managers. *)

type snapshot

val export : man -> t list -> snapshot
(** Serialize the DAG reachable from the given handles (all of which must
    belong to [man]).  Shared subgraphs are stored once; root order is
    preserved.  Linear in the DAG size. *)

val import : ?strict:bool -> man -> snapshot -> t list
(** Rehydrate a snapshot, returning one handle per exported root (in
    order).  Every variable mentioned by the snapshot must already exist
    in [man] (raises [Invalid_argument] otherwise — allocate them first,
    e.g. by building the same symbol table).  When the importing order
    agrees with the exporting order on the snapshot's variables, this is
    a single linear pass of unique-table inserts; on a mismatch the nodes
    are re-canonicalized one by one under the local order ([ite] per
    record), or rejected with [Invalid_argument] when [strict] is set.
    Counts toward the manager's snapshot obs counters either way. *)

val snapshot_nodes : snapshot -> int
(** DAG nodes recorded in the snapshot. *)

val snapshot_bytes : snapshot -> int
(** Wire size in bytes (8 per stored word): the unit of snapshot obs
    accounting and serve-cache budgets. *)

val snapshot_order : snapshot -> int list
(** The exporting manager's variable order, outermost first. *)

(** {1 Garbage collection and reordering} *)

val gc : man -> int
(** Collect dead nodes; returns the number of nodes freed. *)

val set_gc_threshold : man -> int -> unit
val sift : ?max_vars:int -> man -> unit
(** Rudell sifting over the whole order (or the [max_vars] largest). *)

val set_auto_reorder : man -> bool -> unit
val set_reorder_threshold : man -> int -> unit
val order : man -> int list
(** Current variable order, outermost first. *)

val name_of_var : man -> int -> string

(** {1 Resource governor}

    See {!Hsis_limits.Limits}: a budget installed on a manager is polled
    from inside the operation kernels (amortized over computed-cache
    misses); a breach raises {!Interrupted} with the manager left
    consistent (caches wiped, invariant audit clean). *)

exception Interrupted of Hsis_limits.Limits.reason
(** Alias of [Hsis_limits.Limits.Interrupted]; catching either catches
    both. *)

val set_limits : man -> Hsis_limits.Limits.t -> unit
(** Install a budget; [Limits.none] disarms. *)

val limits : man -> Hsis_limits.Limits.t

val with_limits : man -> Hsis_limits.Limits.t -> (unit -> 'a) -> 'a
(** Install a budget for the duration of the thunk only; the previous
    budget is restored on any exit, including an escaping interrupt. *)

val note_interrupt : man -> Hsis_limits.Limits.reason -> unit
(** Record an engine-originated interrupt (e.g. a step-quota breach) in
    this manager's obs counters. *)

(** Structured diagnostics: nested [cache] (per-operation hit/miss
    counters), [gc], [reorder], [arena], and [limits] sub-records — see
    {!Hsis_obs.Obs}. *)
val stats : man -> Hsis_obs.Obs.man_stats
val check : man -> string list
(** Internal-invariant violations (empty when healthy); for tests. *)

val pp : Format.formatter -> t -> unit
(** Print as a sum of cubes using variable names (for debugging; linear in
    the number of cubes). *)
