open Hsis_blifmv
open Hsis_check

(** The state-based simulator (paper Sec. 2 item 4): enumerate reachable
    states under user control — step through concrete behaviors, inspect
    the enabled non-deterministic choices, backtrack, or expand the
    reachable frontier level by level. *)

type t

val create : ?init_choice:int -> Net.t -> t
(** Start at one of the initial states ([init_choice]-th, default 0). *)

val net : t -> Net.t
val state : t -> Enum.state
val depth : t -> int
(** Number of steps taken so far. *)

val options : t -> (Enum.valuation * Enum.state) list
(** The enabled combinational valuations and the successor each leads to.
    Distinct valuations may lead to the same successor. *)

val step : t -> int -> unit
(** Take the [i]-th option.  Raises [Invalid_argument] when out of range. *)

val step_where : t -> (Enum.valuation -> bool) -> bool
(** Take the first option whose valuation satisfies the predicate; returns
    false (and stays put) when none does. *)

val step_matching : t -> (Enum.valuation -> Enum.state -> bool) -> bool
(** Like {!step_where} but the predicate also sees the successor state the
    option leads to — used to replay symbolic counterexample traces, where
    each step pins both the transition labels and the next state. *)

val backtrack : t -> bool
(** Undo the last step; false at the start. *)

val history : t -> Enum.state list
(** States visited, oldest first, including the current one. *)

val pp_state : Net.t -> Format.formatter -> Enum.state -> unit
val pp_valuation : Net.t -> Format.formatter -> Enum.valuation -> unit

(** Frontier-at-a-time exploration of the reachable states. *)
type explorer

val explorer : Net.t -> explorer
val expand : explorer -> int
(** Expand one BFS level; returns the number of newly discovered states
    (0 when the reachable set is exhausted). *)

val discovered : explorer -> int
val frontier : explorer -> Enum.state list
