open Hsis_mv
open Hsis_blifmv
open Hsis_check

type t = {
  net : Net.t;
  mutable trail : Enum.state list; (* newest first, never empty *)
}

let create ?(init_choice = 0) net =
  let inits = Enum.initial_states net in
  let n = List.length inits in
  if n = 0 then invalid_arg "Simulator.create: no initial states";
  let st = List.nth inits (init_choice mod n) in
  { net; trail = [ st ] }

let net t = t.net

let state t =
  match t.trail with
  | st :: _ -> st
  | [] -> assert false

let depth t = List.length t.trail - 1

let next_of net vals =
  Array.of_list
    (List.map (fun (l : Net.flatch) -> vals.(l.Net.fl_input)) net.Net.latches)

let options t =
  List.map
    (fun vals -> (vals, next_of t.net vals))
    (Enum.valuations_of_state t.net (state t))

let step t i =
  let opts = options t in
  match List.nth_opt opts i with
  | Some (_, next) -> t.trail <- next :: t.trail
  | None -> invalid_arg "Simulator.step: option out of range"

let step_where t pred =
  let opts = options t in
  match List.find_opt (fun (v, _) -> pred v) opts with
  | Some (_, next) ->
      t.trail <- next :: t.trail;
      true
  | None -> false

let step_matching t pred =
  let opts = options t in
  match List.find_opt (fun (v, next) -> pred v next) opts with
  | Some (_, next) ->
      t.trail <- next :: t.trail;
      true
  | None -> false

let backtrack t =
  match t.trail with
  | _ :: (_ :: _ as rest) ->
      t.trail <- rest;
      true
  | _ -> false

let history t = List.rev t.trail

let pp_state net fmt st =
  let items =
    List.mapi
      (fun i (l : Net.flatch) ->
        let s = l.Net.fl_output in
        Printf.sprintf "%s=%s"
          (Net.signal net s).Net.s_name
          (Domain.value (Net.dom net s) st.(i)))
      net.Net.latches
  in
  Format.fprintf fmt "%s" (String.concat " " items)

let pp_valuation net fmt vals =
  let items =
    List.filter_map
      (fun s ->
        if List.exists (fun (l : Net.flatch) -> l.Net.fl_output = s)
             net.Net.latches
        then None
        else
          Some
            (Printf.sprintf "%s=%s"
               (Net.signal net s).Net.s_name
               (Domain.value (Net.dom net s) vals.(s))))
      (List.init (Net.num_signals net) Fun.id)
  in
  Format.fprintf fmt "%s" (String.concat " " items)

(* ------------------------------------------------------------------ *)
(* Frontier exploration *)

type explorer = {
  e_net : Net.t;
  seen : (Enum.state, unit) Hashtbl.t;
  mutable front : Enum.state list;
  mutable count : int;
}

let explorer net =
  let seen = Hashtbl.create 256 in
  let inits = Enum.initial_states net in
  List.iter (fun st -> Hashtbl.replace seen st ()) inits;
  { e_net = net; seen; front = inits; count = List.length inits }

let expand e =
  let fresh = ref [] in
  List.iter
    (fun st ->
      List.iter
        (fun st' ->
          if not (Hashtbl.mem e.seen st') then begin
            Hashtbl.replace e.seen st' ();
            fresh := st' :: !fresh
          end)
        (Enum.successors e.e_net st))
    e.front;
  e.front <- !fresh;
  e.count <- e.count + List.length !fresh;
  List.length !fresh

let discovered e = e.count
let frontier e = e.front
