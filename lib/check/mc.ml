open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_limits

type outcome = {
  verdict : Bdd.t Verdict.t;
  sat : Bdd.t;
  fail_init : Bdd.t;
  early_failure_step : int option;
  explored : Reach.t;
}

let holds o = Verdict.holds o.verdict

(* Satisfaction sets are always kept within the explored state set [reach];
   negation is relative to it. *)
let rec sat env trans reach fair f =
  let recur f = sat env trans reach fair f in
  let lift e =
    Bdd.dand reach (Trans.abstract_to_states trans (Expr.to_bdd (Trans.sym trans) e))
  in
  let ex s = Bdd.dand reach (El.pre_within env ~within:reach (Bdd.dand s fair)) in
  (* Fair E[p U q]: least fixpoint from fair q-states; q-states need not
     satisfy p, so this is the standard lfp rather than eu_within. *)
  let eu p q =
    let target = Bdd.dand (Bdd.dand q fair) reach in
    let rec lfp y =
      let y' =
        Bdd.dor target (Bdd.dand p (El.pre_within env ~within:reach y))
      in
      if Bdd.equal y y' then y else lfp y'
    in
    lfp target
  in
  let eg p =
    (* fair EG: infinite fair path staying in p *)
    El.fair_states env ~within:(Bdd.dand p reach)
  in
  match f with
  | Ctl.Prop e -> lift e
  | Ctl.Not f -> Bdd.dand reach (Bdd.dnot (recur f))
  | Ctl.And (a, b) -> Bdd.dand (recur a) (recur b)
  | Ctl.Or (a, b) -> Bdd.dor (recur a) (recur b)
  | Ctl.Imp (a, b) -> Bdd.dand reach (Bdd.dor (Bdd.dnot (recur a)) (recur b))
  | Ctl.EX f -> ex (recur f)
  | Ctl.EF f -> eu reach (recur f)
  | Ctl.EG f -> eg (recur f)
  | Ctl.EU (p, q) -> eu (recur p) (recur q)
  | Ctl.AX f -> Bdd.dand reach (Bdd.dnot (ex (Bdd.dand reach (Bdd.dnot (recur f)))))
  | Ctl.AF f ->
      (* AF f = !EG !f *)
      Bdd.dand reach (Bdd.dnot (eg (Bdd.dand reach (Bdd.dnot (recur f)))))
  | Ctl.AG f ->
      (* AG f = !EF !f *)
      Bdd.dand reach (Bdd.dnot (eu reach (Bdd.dand reach (Bdd.dnot (recur f)))))
  | Ctl.AU (p, q) ->
      (* A[p U q] = !( E[!q U (!p & !q)] | EG !q ) *)
      let np = Bdd.dand reach (Bdd.dnot (recur p)) in
      let nq = Bdd.dand reach (Bdd.dnot (recur q)) in
      Bdd.dand reach
        (Bdd.dnot (Bdd.dor (eu nq (Bdd.dand np nq)) (eg nq)))

let sat_within ?(fairness = []) trans ~within f =
  let env = El.prepare trans fairness in
  let fair = El.fair_states env ~within in
  sat env trans within fair f

let sat_states ?fairness trans ~within f = sat_within ?fairness trans ~within f

let evaluate ?(fairness = []) trans reach_set init f =
  let env = El.prepare trans fairness in
  let fair = El.fair_states env ~within:reach_set in
  let s = sat env trans reach_set fair f in
  let fail_init = Bdd.dand init (Bdd.dand reach_set (Bdd.dnot s)) in
  (s, fail_init)

let check ?(fairness = []) ?(early_failure = false) ?reach
    ?(limits = Limits.none) trans f =
  let man = Trans.man trans in
  let init = Trans.initial trans in
  let full =
    match reach with Some r -> r | None -> Reach.compute ~limits trans init
  in
  let dfalse = Bdd.dfalse man in
  let outcome verdict sat fail_init early_failure_step =
    { verdict; sat; fail_init; early_failure_step; explored = full }
  in
  (* Fixpoint evaluation under the same budget as exploration; the apply
     kernels raise [Limits.Interrupted] on a breach. *)
  let evaluate_within set = Bdd.with_limits man limits (fun () ->
      evaluate ~fairness trans set init f)
  in
  match full.Reach.verdict with
  | Verdict.Inconclusive inc ->
      (* The reachable set is only a prefix.  Refutation of a universal
         formula on a substructure is still sound (Sec. 5.4) — try it
         before giving up; any further interrupt just confirms
         inconclusiveness. *)
      let refuted =
        if Ctl.universal_only f then
          match evaluate_within full.Reach.reachable with
          | _, fail_init when not (Bdd.is_false fail_init) -> Some fail_init
          | _ -> None
          | exception Limits.Interrupted _ -> None
        else None
      in
      (match refuted with
      | Some fail_init ->
          outcome (Verdict.Fail fail_init) dfalse fail_init
            (Some full.Reach.steps)
      | None -> outcome (Verdict.Inconclusive inc) dfalse dfalse None)
  | Verdict.Pass | Verdict.Fail _ -> (
      (* Early failure detection on growing prefixes: sound for refutation
         of universal formulas because a counterexample inside a
         substructure is a counterexample of the full structure.  One cheap
         probe on a short prefix: most errors show up within a few
         reachability steps (Sec. 5.4), while passing properties should not
         pay for repeated re-evaluation. *)
      let early =
        if early_failure && Ctl.universal_only f then begin
          let n = Array.length full.Reach.rings in
          let k = min 4 (n - 2) in
          if k < 1 then None
          else
            match evaluate_within (Reach.partial full ~upto:k) with
            | _, fail_init when not (Bdd.is_false fail_init) ->
                Some (k, fail_init)
            | _ -> None
            | exception Limits.Interrupted _ -> None
        end
        else None
      in
      match early with
      | Some (k, fail_init) ->
          outcome (Verdict.Fail fail_init) dfalse fail_init (Some k)
      | None -> (
          match evaluate_within full.Reach.reachable with
          | s, fail_init ->
              let verdict =
                if Bdd.is_false fail_init then Verdict.Pass
                else Verdict.Fail fail_init
              in
              outcome verdict s fail_init None
          | exception Limits.Interrupted r ->
              outcome (Verdict.inconclusive r) dfalse dfalse None))
