open Hsis_blifmv
open Hsis_auto

(** Explicit-state reference engine.

    Re-implements reachability, fair-cycle detection (SCC-based, a different
    algorithm from the symbolic Emerson-Lei), CTL and language containment
    by enumeration.  It exists to cross-validate the symbolic engines on
    small examples and to power the interactive simulator. *)

type state = int array
(** Latch values in latch order. *)

type valuation = int array
(** Values of every signal (indexed by signal id). *)

type graph = {
  states : state array;
  succ : int list array;
  init : int list;
  complete : bool;  (** false when the state [limit] was hit *)
}

val valuations_of_state : Net.t -> state -> valuation list
(** All consistent assignments of every signal given latch values: primary
    inputs range over their domains, tables contribute each allowed output
    tuple.  Empty when the combinational constraints are unsatisfiable. *)

val initial_states : Net.t -> state list
val successors : Net.t -> state -> state list
val build : ?limit:int -> Net.t -> graph
(** Breadth-first enumeration from the initial states (default limit
    1_000_000 states). *)

val state_sat : Net.t -> state -> Expr.t -> bool
(** Some consistent valuation satisfies the expression (matches the
    symbolic engine's existential abstraction). *)

(** Fairness constraints in explicit form. *)
type econd = Estate of bool array | Eedge of (int -> int -> bool)
type econstr =
  | EInf of econd
  | EStreett of econd * econd

val compile_fairness :
  Net.t -> graph -> Fair.syntactic list -> econstr list

val fair_states : graph -> econstr list -> bool array
(** States from which an infinite path satisfying every constraint exists,
    via SCC decomposition with recursive Streett analysis. *)

val check_ctl :
  Net.t -> graph -> econstr list -> Ctl.t -> bool array * bool
(** Satisfying set over graph states, and whether all initial states are in
    it. *)

val check_lc :
  ?fairness:Fair.syntactic list -> ?limit:int -> Ast.model -> Autom.t -> bool
(** Explicit language containment on the composed product.  Raises
    [Invalid_argument] when the product enumeration hits the state
    [limit] — a truncated graph cannot certify emptiness either way. *)

val check_lc_opt :
  ?fairness:Fair.syntactic list ->
  ?limit:int ->
  Ast.model ->
  Autom.t ->
  bool option
(** As {!check_lc} but [None] on truncation, for callers (the fuzz
    harness) that want to count the skip rather than fail. *)

val count_reachable : ?limit:int -> Net.t -> int
