open Hsis_blifmv
open Hsis_auto
open Hsis_limits

(** Explicit-state reference engine.

    Re-implements reachability, fair-cycle detection (SCC-based, a different
    algorithm from the symbolic Emerson-Lei), CTL and language containment
    by enumeration.  It exists to cross-validate the symbolic engines on
    small examples and to power the interactive simulator. *)

type state = int array
(** Latch values in latch order. *)

type valuation = int array
(** Values of every signal (indexed by signal id). *)

type graph = {
  states : state array;
  succ : int list array;
  init : int list;
  stopped : Limits.reason option;
      (** [Some r] when enumeration stopped before exhausting the state
          space: the state [limit] / node quota ([Limit_nodes]), a
          deadline, or cancellation *)
}

val complete : graph -> bool
(** [stopped = None]: the graph is the whole reachable state space. *)

val valuations_of_state : Net.t -> state -> valuation list
(** All consistent assignments of every signal given latch values: primary
    inputs range over their domains, tables contribute each allowed output
    tuple.  Empty when the combinational constraints are unsatisfiable. *)

val initial_states : Net.t -> state list
val successors : Net.t -> state -> state list
val build : ?limit:int -> ?limits:Limits.t -> Net.t -> graph
(** Breadth-first enumeration from the initial states (default limit
    1_000_000 states).  [limits] is polled during enumeration with the
    interned-state count standing in for the live-node count; a breach
    stops the build with the corresponding [stopped] reason instead of
    raising. *)

val state_sat : Net.t -> state -> Expr.t -> bool
(** Some consistent valuation satisfies the expression (matches the
    symbolic engine's existential abstraction). *)

(** Fairness constraints in explicit form. *)
type econd = Estate of bool array | Eedge of (int -> int -> bool)
type econstr =
  | EInf of econd
  | EStreett of econd * econd

val compile_fairness :
  Net.t -> graph -> Fair.syntactic list -> econstr list

val fair_states : graph -> econstr list -> bool array
(** States from which an infinite path satisfying every constraint exists,
    via SCC decomposition with recursive Streett analysis. *)

val check_ctl :
  Net.t -> graph -> econstr list -> Ctl.t -> bool array * unit Verdict.t
(** Satisfying set over graph states, and the verdict over the initial
    states.  On a truncated graph ([stopped <> None]) the verdict is
    [Inconclusive] — missing successors make both answers unreliable —
    while the satisfying set is still returned for inspection. *)

val check_lc :
  ?fairness:Fair.syntactic list ->
  ?limit:int ->
  ?limits:Limits.t ->
  Ast.model ->
  Autom.t ->
  unit Verdict.t
(** Explicit language containment on the composed product.  [Inconclusive]
    when the product enumeration was truncated (state [limit], node quota,
    deadline or cancellation) — a truncated graph cannot certify emptiness
    either way. *)

val count_reachable : ?limit:int -> Net.t -> int
