open Hsis_mv
open Hsis_blifmv
open Hsis_auto
open Hsis_limits

type state = int array
type valuation = int array

type graph = {
  states : state array;
  succ : int list array;
  init : int list;
  stopped : Limits.reason option;
}

let complete g = g.stopped = None

(* ------------------------------------------------------------------ *)
(* Combinational evaluation *)

let valuations_of_state (net : Net.t) (st : state) =
  let nsig = Net.num_signals net in
  let topo = Net.topo_tables net in
  let base = Array.make nsig (-1) in
  List.iteri
    (fun i (l : Net.flatch) -> base.(l.Net.fl_output) <- st.(i))
    net.Net.latches;
  let rec assign_inputs vals inputs acc =
    match inputs with
    | [] -> eval_tables vals topo acc
    | i :: rest ->
        let d = Domain.size (Net.dom net i) in
        let acc = ref acc in
        for v = 0 to d - 1 do
          let vals' = Array.copy vals in
          vals'.(i) <- v;
          acc := assign_inputs vals' rest !acc
        done;
        !acc
  and eval_tables vals tables acc =
    match tables with
    | [] -> vals :: acc
    | (tb : Net.ftable) :: rest ->
        let inputs =
          Array.of_list (List.map (fun i -> vals.(i)) tb.Net.ft_inputs)
        in
        let options = Net.row_output_options net tb inputs in
        List.fold_left
          (fun acc tuple ->
            let vals' = Array.copy vals in
            List.iter2 (fun o v -> vals'.(o) <- v) tb.Net.ft_outputs tuple;
            eval_tables vals' rest acc)
          acc options
  in
  List.rev (assign_inputs base net.Net.inputs [])

let initial_states (net : Net.t) =
  let rec go = function
    | [] -> [ [] ]
    | (l : Net.flatch) :: rest ->
        let tails = go rest in
        List.concat_map
          (fun v -> List.map (fun tl -> v :: tl) tails)
          l.Net.fl_reset
  in
  List.map Array.of_list (go net.Net.latches)

let successors (net : Net.t) (st : state) =
  let vals = valuations_of_state net st in
  let next_of v =
    Array.of_list
      (List.map (fun (l : Net.flatch) -> v.(l.Net.fl_input)) net.Net.latches)
  in
  List.sort_uniq compare (List.map next_of vals)

(* Growable state store. *)
module Store = struct
  type t = {
    mutable arr : state array;
    mutable n : int;
    index : (state, int) Hashtbl.t;
  }

  let create () = { arr = Array.make 64 [||]; n = 0; index = Hashtbl.create 1024 }

  let intern t st =
    match Hashtbl.find_opt t.index st with
    | Some i -> (i, false)
    | None ->
        if t.n >= Array.length t.arr then begin
          let bigger = Array.make (2 * Array.length t.arr) [||] in
          Array.blit t.arr 0 bigger 0 t.n;
          t.arr <- bigger
        end;
        let i = t.n in
        t.arr.(i) <- st;
        t.n <- t.n + 1;
        Hashtbl.add t.index st i;
        (i, true)
end

let build ?(limit = 1_000_000) ?(limits = Limits.none) (net : Net.t) =
  let store = Store.create () in
  let queue = Queue.create () in
  let inits =
    List.map
      (fun st ->
        let i, fresh = Store.intern store st in
        if fresh then Queue.add i queue;
        i)
      (initial_states net)
  in
  let succ_acc = ref [] in
  let stopped = ref None in
  (* The budget is polled every few expansions; the interned-state count
     stands in for the live-node count, so a node quota caps explicit
     states the same way it caps BDD nodes.  The legacy [limit] cap reports
     as a node-quota stop too. *)
  let countdown = ref 0 in
  let poll () =
    if !countdown <= 0 then begin
      countdown := 64;
      stopped := Limits.breach limits ~live:store.Store.n
    end
    else decr countdown
  in
  let rec loop () =
    if not (Queue.is_empty queue) && !stopped = None then begin
      let i = Queue.pop queue in
      poll ();
      if store.Store.n > limit then stopped := Some Limits.Limit_nodes
      else if !stopped = None then begin
        let st = store.Store.arr.(i) in
        let js =
          List.map
            (fun st' ->
              let j, fresh = Store.intern store st' in
              if fresh then Queue.add j queue;
              j)
            (successors net st)
        in
        succ_acc := (i, js) :: !succ_acc;
        loop ()
      end
    end
  in
  loop ();
  let n = store.Store.n in
  let succ = Array.make (max n 1) [] in
  List.iter (fun (i, js) -> succ.(i) <- js) !succ_acc;
  {
    states = Array.sub store.Store.arr 0 n;
    succ;
    init = List.sort_uniq compare inits;
    stopped = !stopped;
  }

let state_sat (net : Net.t) (st : state) e =
  List.exists
    (fun vals -> Expr.eval net (fun s -> vals.(s)) e)
    (valuations_of_state net st)

(* ------------------------------------------------------------------ *)
(* Fairness, explicit *)

type econd = Estate of bool array | Eedge of (int -> int -> bool)
type econstr = EInf of econd | EStreett of econd * econd

let compile_fairness (net : Net.t) g (cs : Fair.syntactic list) =
  let n = Array.length g.states in
  let state_pred e = Array.init n (fun i -> state_sat net g.states.(i) e) in
  let latch_index =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun i (l : Net.flatch) -> Hashtbl.add tbl l.Net.fl_output i)
      net.Net.latches;
    tbl
  in
  let state_only e =
    List.for_all
      (fun name ->
        match Net.find_signal net name with
        | Some s -> Hashtbl.mem latch_index s
        | None -> invalid_arg ("Enum: unknown signal " ^ name))
      (Expr.signals e)
  in
  let state_index =
    let tbl = Hashtbl.create n in
    Array.iteri (fun i st -> Hashtbl.replace tbl st i) g.states;
    tbl
  in
  (* Edge predicate for a condition on non-state signals: the step (i, j)
     admits a valuation satisfying [pred_of_valuation].  Mirrors the
     symbolic abstract_to_edges construction exactly. *)
  let edge_pred_of sat_valuation =
    let edges = Hashtbl.create 64 in
    Array.iteri
      (fun i st ->
        List.iter
          (fun vals ->
            if sat_valuation vals then begin
              let next =
                Array.of_list
                  (List.map
                     (fun (l : Net.flatch) -> vals.(l.Net.fl_input))
                     net.Net.latches)
              in
              match Hashtbl.find_opt state_index next with
              | Some j -> Hashtbl.replace edges (i, j) ()
              | None -> () (* truncated graph *)
            end)
          (valuations_of_state net st))
      g.states;
    fun i j -> Hashtbl.mem edges (i, j)
  in
  let expr_edge_pred e =
    edge_pred_of (fun vals -> Expr.eval net (fun s -> vals.(s)) e)
  in
  let to_pred e =
    let eval_state st =
      Expr.eval net
        (fun s ->
          match Hashtbl.find_opt latch_index s with
          | Some i -> st.(i)
          | None -> invalid_arg "Enum: to-condition on non-state signal")
        e
    in
    Array.init n (fun i -> eval_state g.states.(i))
  in
  let cond = function
    | Fair.State e ->
        if state_only e then Estate (state_pred e)
        else Eedge (expr_edge_pred e)
    | Fair.Edges pairs ->
        let preds =
          List.map (fun (f, t) -> (expr_edge_pred f, to_pred t)) pairs
        in
        Eedge (fun i j -> List.exists (fun (pf, pt) -> pf i j && pt.(j)) preds)
  in
  List.map
    (function
      | Fair.Inf c -> EInf (cond c)
      | Fair.Not_forever e ->
          if state_only e then EInf (Estate (Array.map not (state_pred e)))
          else EInf (Eedge (expr_edge_pred (Expr.Not e)))
      | Fair.Streett (p, q) -> EStreett (cond p, cond q))
    cs

(* Tarjan over the subgraph of [alive] states and edges passing [edge_ok]. *)
let sccs succ alive edge_ok =
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if alive.(w) && edge_ok v w then
          if index.(w) < 0 then begin
            strong w;
            low.(v) <- min low.(v) low.(w)
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      succ.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if alive.(v) && index.(v) < 0 then strong v
  done;
  !out

(* Find a sub-SCC where every constraint is directly realizable.  Returns
   its members, or None.  Streett pairs with a reachable q-witness are
   directly fine; otherwise the pair's p-part must be cut out and the
   analysis recurses on the pieces (standard Streett emptiness). *)
let rec feasible_core succ cs members edge_ok =
  let member = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace member v ()) members;
  let is_member v = Hashtbl.mem member v in
  let internal_edges v =
    List.filter (fun w -> is_member w && edge_ok v w) succ.(v)
  in
  let has_cycle = List.exists (fun v -> internal_edges v <> []) members in
  if not has_cycle then None
  else begin
    let cond_witness = function
      | Estate p -> List.exists (fun v -> p.(v)) members
      | Eedge f ->
          List.exists
            (fun v -> List.exists (fun w -> f v w) (internal_edges v))
            members
    in
    let inf_ok =
      List.for_all
        (function EInf c -> cond_witness c | EStreett _ -> true)
        cs
    in
    if not inf_ok then None
    else begin
      let violating =
        List.find_opt
          (function
            | EStreett (p, q) -> cond_witness p && not (cond_witness q)
            | EInf _ -> false)
          cs
      in
      match violating with
      | None -> Some members
      | Some (EStreett (p, _)) ->
          (* cut p out of this SCC and recurse on the pieces *)
          let n = Array.length succ in
          let alive = Array.make n false in
          List.iter (fun v -> alive.(v) <- true) members;
          let edge_ok' =
            match p with
            | Estate ps ->
                List.iter (fun v -> if ps.(v) then alive.(v) <- false) members;
                edge_ok
            | Eedge f -> fun v w -> edge_ok v w && not (f v w)
          in
          let pieces =
            sccs succ alive (fun v w -> alive.(v) && alive.(w) && edge_ok' v w)
          in
          List.fold_left
            (fun acc piece ->
              match acc with
              | Some _ -> acc
              | None -> feasible_core succ cs piece edge_ok')
            None pieces
      | Some (EInf _) -> assert false
    end
  end

let fair_states_within g cs within =
  let n = Array.length g.states in
  let alive = Array.copy within in
  let edge_ok v w = alive.(v) && alive.(w) in
  let cores =
    List.filter_map
      (fun scc -> feasible_core g.succ cs scc edge_ok)
      (sccs g.succ alive edge_ok)
  in
  (* backward closure within [within] *)
  let fair = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (List.iter (fun v ->
         if not fair.(v) then begin
           fair.(v) <- true;
           Queue.add v queue
         end))
    cores;
  let preds = Array.make n [] in
  Array.iteri
    (fun v ws ->
      if within.(v) then
        List.iter (fun w -> if within.(w) then preds.(w) <- v :: preds.(w)) ws)
    g.succ;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun u ->
        if not fair.(u) then begin
          fair.(u) <- true;
          Queue.add u queue
        end)
      preds.(v)
  done;
  fair

let fair_states g cs =
  fair_states_within g cs (Array.make (Array.length g.states) true)

(* ------------------------------------------------------------------ *)
(* Explicit CTL *)

let check_ctl (net : Net.t) g cs f =
  let n = Array.length g.states in
  let fair = fair_states g cs in
  let preds = Array.make n [] in
  Array.iteri
    (fun v ws -> List.iter (fun w -> preds.(w) <- v :: preds.(w)) ws)
    g.succ;
  let band a b = Array.init n (fun i -> a.(i) && b.(i)) in
  let bnot a = Array.map not a in
  let ex s =
    Array.init n (fun v -> List.exists (fun w -> s.(w) && fair.(w)) g.succ.(v))
  in
  let eu p q =
    let set = Array.init n (fun i -> q.(i) && fair.(i)) in
    let queue = Queue.create () in
    Array.iteri (fun i b -> if b then Queue.add i queue) set;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun u ->
          if p.(u) && not set.(u) then begin
            set.(u) <- true;
            Queue.add u queue
          end)
        preds.(v)
    done;
    set
  in
  let eg p = fair_states_within g cs p in
  let rec go = function
    | Ctl.Prop e -> Array.init n (fun i -> state_sat net g.states.(i) e)
    | Ctl.Not f -> bnot (go f)
    | Ctl.And (a, b) -> band (go a) (go b)
    | Ctl.Or (a, b) ->
        let x = go a and y = go b in
        Array.init n (fun i -> x.(i) || y.(i))
    | Ctl.Imp (a, b) ->
        let x = go a and y = go b in
        Array.init n (fun i -> (not x.(i)) || y.(i))
    | Ctl.EX f -> ex (go f)
    | Ctl.EF f -> eu (Array.make n true) (go f)
    | Ctl.EG f -> eg (go f)
    | Ctl.EU (p, q) -> eu (go p) (go q)
    | Ctl.AX f -> bnot (ex (bnot (go f)))
    | Ctl.AF f -> bnot (eg (bnot (go f)))
    | Ctl.AG f -> bnot (eu (Array.make n true) (bnot (go f)))
    | Ctl.AU (p, q) ->
        let np = bnot (go p) and nq = bnot (go q) in
        bnot
          (Array.init n
             (let viaeu = eu nq (band np nq) and viaeg = eg nq in
              fun i -> viaeu.(i) || viaeg.(i)))
  in
  let s = go f in
  let verdict =
    match g.stopped with
    | Some r ->
        (* A truncated graph proves nothing either way: successors of the
           frontier are missing, so both sat and unsat answers are
           unreliable. *)
        Verdict.inconclusive r
    | None ->
        if List.for_all (fun i -> s.(i)) g.init then Verdict.Pass
        else Verdict.Fail ()
  in
  (s, verdict)

let check_lc ?(fairness = []) ?limit ?limits flat aut =
  let composed = Autom.compose flat aut in
  let net = Net.of_model composed in
  let g = build ?limit ?limits net in
  match g.stopped with
  | Some r -> Verdict.inconclusive r
  | None ->
      let cs =
        compile_fairness net g (fairness @ Autom.complement_constraints aut)
      in
      let fair = fair_states g cs in
      if Array.exists Fun.id fair then Verdict.Fail () else Verdict.Pass

let count_reachable ?limit (net : Net.t) =
  let g = build ?limit net in
  Array.length g.states
