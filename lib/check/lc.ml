open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_blifmv
open Hsis_limits

type product = {
  trans : Trans.t;
  reach : Reach.t;
  fair : Bdd.t;
  env : El.env;
}

type outcome = {
  verdict : Bdd.t Verdict.t;
  product : product option;
  early_failure_step : int option;
  monitor : string;
}

let holds o = Verdict.holds o.verdict

exception Not_deterministic of string

let build_product ?(heuristic = Trans.Min_width) ?(limits = Limits.none) flat
    aut =
  let composed = Autom.compose flat aut in
  let net = Net.of_model composed in
  (* The property automaton must be deterministic: its compiled table must
     never allow two next states for one input pattern. *)
  let mon = Autom.monitor_signal aut in
  let mon_next =
    match Net.find_signal net (mon ^ "_next") with
    | Some s -> s
    | None -> invalid_arg "Lc: monitor signal missing after composition"
  in
  List.iter
    (fun (tb : Net.ftable) ->
      if List.mem mon_next tb.Net.ft_outputs then
        if not (Check.table_deterministic net tb) then
          raise (Not_deterministic aut.Autom.a_name))
    net.Net.tables;
  let man = Bdd.new_man () in
  (* The product lives in its own fresh manager; the budget governs its
     construction and stays armed for the caller's fixpoints. *)
  Bdd.set_limits man limits;
  let sym = Sym.make man net in
  Trans.build ~heuristic sym

let product ?heuristic ?limits flat aut =
  build_product ?heuristic ?limits flat aut

let check ?(fairness = []) ?(early_failure = false) ?heuristic
    ?(limits = Limits.none) flat aut =
  (match Autom.validate aut with
  | Ok () -> ()
  | Error m -> invalid_arg ("Lc.check: " ^ m));
  let mon = Autom.monitor_signal aut in
  let inconclusive ?product ?at_step r =
    {
      verdict = Verdict.inconclusive ?at_step r;
      product;
      early_failure_step = None;
      monitor = mon;
    }
  in
  match build_product ?heuristic ~limits flat aut with
  | exception Limits.Interrupted r ->
      (* Interrupted while compiling the product itself: no partial
         transition structure survives (its manager is unreachable). *)
      inconclusive r
  | trans -> (
      let man = Trans.man trans in
      (* Disarm the product manager on the way out so trace extraction and
         other post-processing on the outcome are not interrupted by an
         already-expired deadline. *)
      Fun.protect ~finally:(fun () -> Bdd.set_limits man Limits.none)
      @@ fun () ->
      match
        let constraints =
          Fair.compile_all trans (fairness @ Autom.complement_constraints aut)
        in
        let env = El.prepare trans constraints in
        (env, Reach.compute ~limits trans (Trans.initial trans))
      with
      | exception Limits.Interrupted r ->
          (* During fairness compilation / EL preparation: the transition
             structure exists but no exploration happened. *)
          inconclusive r
      | env, full -> (
          let dfalse = Bdd.dfalse man in
          let made ?(fair = dfalse) verdict early_failure_step =
            {
              verdict;
              product = Some { trans; reach = full; fair; env };
              early_failure_step;
              monitor = mon;
            }
          in
          match full.Reach.verdict with
          | Verdict.Inconclusive inc -> (
              (* Partial reachable set: a fair cycle of a substructure is a
                 fair cycle of the full structure (Sec. 5.4), so probe it —
                 a hit is a definitive failure. *)
              match El.fair_states env ~within:full.Reach.reachable with
              | exception Limits.Interrupted _ ->
                  made (Verdict.Inconclusive inc) None
              | fair ->
                  if Bdd.is_false fair then made (Verdict.Inconclusive inc) None
                  else
                    made ~fair (Verdict.Fail fair) (Some full.Reach.steps))
          | Verdict.Pass | Verdict.Fail _ -> (
              (* Early failure detection, second technique (Sec. 5.4):
                 probe a short prefix of the reachable set for a fair
                 cycle. *)
              let probe upto =
                let partial = Reach.partial full ~upto in
                El.fair_states env ~within:partial
              in
              let early =
                if early_failure then begin
                  let n = Array.length full.Reach.rings in
                  let k = min 4 (n - 2) in
                  if k < 1 then None
                  else
                    match probe k with
                    | exception Limits.Interrupted _ -> None
                    | fair ->
                        if Bdd.is_false fair then None else Some (k, fair)
                end
                else None
              in
              match early with
              | Some (k, fair) -> made ~fair (Verdict.Fail fair) (Some k)
              | None -> (
                  match
                    El.fair_states env ~within:full.Reach.reachable
                  with
                  | exception Limits.Interrupted r ->
                      made (Verdict.inconclusive r) None
                  | fair ->
                      let verdict =
                        if Bdd.is_false fair then Verdict.Pass
                        else Verdict.Fail fair
                      in
                      made ~fair verdict None))))
