open Hsis_obs
open Hsis_bdd
open Hsis_fsm

type t = {
  reachable : Bdd.t;
  rings : Bdd.t array;
  steps : int;
  bad_hit : int option;
  profile : Obs.reach_sample array;
}

let compute ?(use_mono = false) ?bad ?(stop_on_bad = false) ?max_steps
    ?(profile = true) trans init =
  let hits set =
    match bad with
    | None -> false
    | Some b -> not (Bdd.is_false (Bdd.dand set b))
  in
  let samples = ref [] in
  (* dag_size walks the whole reached set each step, which is pure
     profiling overhead on large runs — skip it unless asked. *)
  let sample k frontier reached dt =
    if profile then
      samples :=
        {
          Obs.step = k;
          frontier_nodes = Bdd.dag_size frontier;
          reachable_nodes = Bdd.dag_size reached;
          step_time = dt;
        }
        :: !samples
  in
  sample 0 init init 0.0;
  let rec go k reached frontier rings bad_hit =
    let bad_hit =
      match bad_hit with
      | Some _ -> bad_hit
      | None -> if hits frontier then Some k else None
    in
    let stop_bad = stop_on_bad && bad_hit <> None in
    let stop_depth = match max_steps with Some m -> k >= m | None -> false in
    if Bdd.is_false frontier || stop_bad || stop_depth then
      (reached, List.rev rings, k, bad_hit)
    else begin
      let (fresh, reached'), dt =
        Obs.Clock.wall (fun () ->
            let next = Trans.image ~use_mono trans frontier in
            let fresh = Bdd.dand next (Bdd.dnot reached) in
            (fresh, Bdd.dor reached fresh))
      in
      if not (Bdd.is_false fresh) then sample (k + 1) fresh reached' dt;
      go (k + 1) reached' fresh (fresh :: rings) bad_hit
    end
  in
  let reachable, rings, steps, bad_hit = go 0 init init [ init ] None in
  (* The last ring may be empty (fixpoint detection step); drop it. *)
  let rings =
    match List.rev rings with
    | r :: rest when Bdd.is_false r -> List.rev rest
    | _ -> rings
  in
  {
    reachable;
    rings = Array.of_list rings;
    steps;
    bad_hit;
    profile = Array.of_list (List.rev !samples);
  }

let count_states trans set =
  let sym = Trans.sym trans in
  Bdd.satcount_vars set ~vars:(Sym.state_bit_vars sym)

let partial t ~upto =
  let upto = min upto (Array.length t.rings - 1) in
  let acc = ref t.rings.(0) in
  for k = 1 to upto do
    acc := Bdd.dor !acc t.rings.(k)
  done;
  !acc
