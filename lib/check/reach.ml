open Hsis_obs
open Hsis_bdd
open Hsis_fsm
open Hsis_limits

type t = {
  reachable : Bdd.t;
  rings : Bdd.t array;
  steps : int;
  verdict : int Verdict.t;
  profile : Obs.reach_sample array;
}

let bad_hit t = match t.verdict with Verdict.Fail k -> Some k | _ -> None
let complete t = Verdict.conclusive t.verdict

let compute ?bad ?(stop_on_bad = false)
    ?(limits = Limits.none) ?(profile = true) ?(simplify = false) trans init =
  let man = Trans.man trans in
  let hits set =
    match bad with
    | None -> false
    | Some b -> not (Bdd.is_false (Bdd.dand set b))
  in
  let samples = ref [] in
  (* dag_size walks the whole reached set each step, which is pure
     profiling overhead on large runs — skip it unless asked. *)
  let sample k frontier reached dt saved =
    if profile then
      samples :=
        {
          Obs.step = k;
          frontier_nodes = Bdd.dag_size frontier;
          reachable_nodes = Bdd.dag_size reached;
          step_time = dt;
          simplify_saved = saved;
        }
        :: !samples
  in
  sample 0 init init 0.0 0;
  (* Loop state lives in refs so that an interrupt escaping an image
     computation still leaves the rings built so far in reach: the partial
     onion is returned alongside the Inconclusive verdict. *)
  let reached = ref init in
  let frontier = ref init in
  let rings = ref [ init ] in
  let step = ref 0 in
  let first_bad = ref None in
  let finish verdict =
    (* The last ring may be empty (fixpoint detection step); drop it. *)
    let rs =
      match List.rev !rings with
      | r :: rest when Bdd.is_false r -> List.rev rest
      | _ -> !rings
    in
    {
      reachable = !reached;
      rings = Array.of_list (List.rev rs);
      steps = !step;
      verdict;
      profile = Array.of_list (List.rev !samples);
    }
  in
  Bdd.with_limits man limits @@ fun () ->
  try
    let rec go () =
      if !first_bad = None && hits !frontier then first_bad := Some !step;
      if Bdd.is_false !frontier then
        finish
          (match !first_bad with
          | Some k -> Verdict.Fail k
          | None -> Verdict.Pass)
      else if stop_on_bad && !first_bad <> None then
        (* Early failure detection: a bad state inside a reachable prefix
           is definitive even though the fixpoint was not completed. *)
        finish (Verdict.Fail (Option.get !first_bad))
      else if not (Limits.step_allowed limits ~step:!step) then begin
        Bdd.note_interrupt man Limits.Limit_steps;
        finish (Verdict.inconclusive ~at_step:!step Limits.Limit_steps)
      end
      else begin
        let (fresh, reached', saved), dt =
          Obs.Clock.wall (fun () ->
              (* Frontier simplification: [restrict] the frontier against
                 (frontier ∨ ¬reached), i.e. minimize it treating the
                 already-reached interior (reached ∧ ¬frontier) as don't
                 care.  The result F' satisfies frontier ⊆ F' ⊆ reached,
                 and any such image input preserves the exact BFS rings:
                 the extra states have depth ≤ k, so their successors
                 (depth ≤ k+1) either are already reached or belong to
                 ring k+1 anyway.  Kept only when it actually shrinks the
                 dag, so ~simplify can never inflate an image input. *)
              let input, saved =
                if simplify then begin
                  let care = Bdd.dor !frontier (Bdd.dnot !reached) in
                  let f' = Bdd.restrict !frontier ~care in
                  let n = Bdd.dag_size !frontier in
                  let n' = Bdd.dag_size f' in
                  if n' < n then (f', n - n') else (!frontier, 0)
                end
                else (!frontier, 0)
              in
              let next = Trans.image trans input in
              let fresh = Bdd.dand next (Bdd.dnot !reached) in
              (fresh, Bdd.dor !reached fresh, saved))
        in
        if not (Bdd.is_false fresh) then
          sample (!step + 1) fresh reached' dt saved;
        step := !step + 1;
        reached := reached';
        frontier := fresh;
        rings := fresh :: !rings;
        go ()
      end
    in
    go ()
  with Limits.Interrupted r ->
    finish (Verdict.inconclusive ~at_step:!step r)

let count_states trans set =
  let sym = Trans.sym trans in
  Bdd.satcount_vars set ~vars:(Sym.state_bit_vars sym)

let partial t ~upto =
  let upto = min upto (Array.length t.rings - 1) in
  let acc = ref t.rings.(0) in
  for k = 1 to upto do
    acc := Bdd.dor !acc t.rings.(k)
  done;
  !acc
