open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_blifmv
open Hsis_limits

(** Language containment checking (paper Sec. 5.2): is every fair behavior
    of the system accepted by the property automaton?

    The automaton (deterministic edge-Rabin) is compiled into a BLIF-MV
    monitor and composed with the system; containment fails exactly when
    the product has a reachable fair cycle satisfying the system fairness
    and the complemented (Streett) acceptance — a language-emptiness check
    carried out with the Emerson-Lei engine. *)

type product = {
  trans : Trans.t;  (** transition structure of the composed product *)
  reach : Reach.t;
  fair : Bdd.t;
      (** reachable fair states of the product (empty iff containment
          holds; the trace extractor's starting point) *)
  env : El.env;
}
(** The composed product and everything needed to extract a witness lasso
    from it.  The product lives in its own fresh BDD manager. *)

type outcome = {
  verdict : Bdd.t Verdict.t;
      (** [Fail] carries the reachable fair states; [Inconclusive] means a
          resource budget fired — during product construction, exploration
          or the emptiness fixpoint. *)
  product : product option;
      (** [None] only when the interrupt fired before the product's
          transition structure finished building. *)
  early_failure_step : int option;
  monitor : string;  (** name of the monitor state signal *)
}

val holds : outcome -> bool
(** [Verdict.holds] on the outcome's verdict. *)

exception Not_deterministic of string
(** Raised when the property automaton is non-deterministic (the paper
    restricts containment to deterministic properties, Sec. 8 item 6). *)

val check :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?heuristic:Trans.heuristic ->
  ?limits:Limits.t ->
  Ast.model ->
  Autom.t ->
  outcome
(** [check flat_model automaton].  [fairness] constrains the system.
    [limits] governs the whole pipeline (product construction, fairness
    compilation, exploration, emptiness); the product manager is disarmed
    again before returning, so trace extraction on the outcome is never
    interrupted by an expired budget.  When exploration is truncated, the
    explored prefix is still probed for a fair cycle — a hit is a
    definitive [Fail]. *)

val product :
  ?heuristic:Trans.heuristic -> ?limits:Limits.t -> Ast.model -> Autom.t ->
  Trans.t
(** Just the composed transition structure (for debugging/benches).  When
    [limits] is given it stays armed on the fresh manager. *)
