open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_limits

(** Fair CTL model checking (paper Sec. 5.2), with the invariance fast path
    and early failure detection (Sec. 5.4). *)

type outcome = {
  verdict : Bdd.t Verdict.t;
      (** [Fail] carries the violating initial states ([fail_init]);
          [Inconclusive] means a resource budget fired during exploration
          or fixpoint evaluation. *)
  sat : Bdd.t;  (** states (within the explored set) satisfying the formula *)
  fail_init : Bdd.t;  (** initial states violating the formula *)
  early_failure_step : int option;
      (** set when a violation was detected on a partial reachable set *)
  explored : Reach.t;
}

val holds : outcome -> bool
(** [Verdict.holds] on the outcome's verdict. *)

val check :
  ?fairness:Fair.compiled list ->
  ?early_failure:bool ->
  ?reach:Reach.t ->
  ?limits:Limits.t ->
  Trans.t ->
  Ctl.t ->
  outcome
(** Atoms are lifted to state predicates by existential abstraction.  The
    formula holds when every initial state satisfies it; existential
    quantifiers range over fair paths.  When [early_failure] is set and the
    formula is universal (Sec. 5.4), the property is first evaluated on
    growing prefixes of the reachable set — any violation found there is
    definitive.  [limits] governs both exploration and evaluation; if it
    truncates exploration, a universal formula is still probed on the
    partial set (a violation there is a definitive [Fail]), otherwise the
    outcome is [Inconclusive] with [explored] holding the partial onion. *)

val sat_states :
  ?fairness:Fair.compiled list -> Trans.t -> within:Bdd.t -> Ctl.t -> Bdd.t
(** The satisfying set alone, relative to an explored set. *)
