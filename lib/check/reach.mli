open Hsis_bdd
open Hsis_fsm
open Hsis_limits

(** Breadth-first symbolic reachability with onion rings and early failure
    detection (paper Secs. 2 and 5.4). *)

type t = {
  reachable : Bdd.t;
      (** Union of [rings] — the true reachable set when the verdict is
          conclusive, the explored prefix when it is [Inconclusive]. *)
  rings : Bdd.t array;
      (** [rings.(k)] = states first reached in exactly [k] steps; their
          union is [reachable].  Kept for shortest-prefix debug traces. *)
  steps : int;
  verdict : int Verdict.t;
      (** [Pass]: fixpoint reached, no [bad] state reachable.  [Fail k]:
          the [bad] set was first hit at ring [k] (definitive even under
          [stop_on_bad]: a bad state in a reachable prefix is a real
          violation).  [Inconclusive]: a resource budget fired first;
          [reachable]/[rings] hold the partial onion. *)
  profile : Hsis_obs.Obs.reach_sample array;
      (** Per-iteration fixpoint profile: frontier / reached-set BDD sizes
          and wall-clock time per image step, aligned with [rings]. *)
}

val bad_hit : t -> int option
(** First ring index intersecting the [bad] set ([Some k] iff the verdict
    is [Fail k]). *)

val complete : t -> bool
(** Whether exploration ran to a conclusive verdict. *)

val compute :
  ?bad:Bdd.t -> ?stop_on_bad:bool -> ?limits:Limits.t ->
  ?profile:bool -> ?simplify:bool -> Trans.t -> Bdd.t -> t
(** [compute trans init].  Image steps follow the transition system's
    {!Trans.strategy} (switch it with [Trans.set_strategy] to compare
    evaluation paths).  With [stop_on_bad] (early failure detection) the
    exploration stops at the first ring intersecting [bad]; [reachable] is
    then a subset of the true reachable set.  [limits] is installed on the
    transition system's manager for the duration of the call: its step
    quota bounds the number of image steps, and a deadline / node-quota /
    cancellation breach interrupts mid-image — both yield an
    [Inconclusive] verdict with the rings built so far.  [profile]
    (default [true]) records the per-step fixpoint profile; it costs a
    [Bdd.dag_size] traversal of the frontier and the full reached set per
    image step, so benchmarks turn it off.  [simplify] (default [false])
    Coudert-Madre-[restrict]s each frontier against the complement of the
    already-reached interior before the image call — the image input may
    then include extra already-reached states, which changes no result
    (reachable set, rings, verdict and profile steps are identical) but
    can shrink the image input dag; nodes saved per step are reported in
    the profile's [simplify_saved] member. *)

val count_states : Trans.t -> Bdd.t -> float
(** Number of states in a set (satisfying assignments over state bits). *)

val partial : t -> upto:int -> Bdd.t
(** Union of the first [upto+1] rings. *)
