open Hsis_bdd
open Hsis_fsm

(** Breadth-first symbolic reachability with onion rings and early failure
    detection (paper Secs. 2 and 5.4). *)

type t = {
  reachable : Bdd.t;
  rings : Bdd.t array;
      (** [rings.(k)] = states first reached in exactly [k] steps; their
          union is [reachable].  Kept for shortest-prefix debug traces. *)
  steps : int;
  bad_hit : int option;
      (** First ring index intersecting the [bad] set, if one was given. *)
  profile : Hsis_obs.Obs.reach_sample array;
      (** Per-iteration fixpoint profile: frontier / reached-set BDD sizes
          and wall-clock time per image step, aligned with [rings]. *)
}

val compute :
  ?use_mono:bool -> ?bad:Bdd.t -> ?stop_on_bad:bool -> ?max_steps:int ->
  ?profile:bool -> Trans.t -> Bdd.t -> t
(** [compute trans init].  With [stop_on_bad] (early failure detection) the
    exploration stops at the first ring intersecting [bad]; [reachable] is
    then a subset of the true reachable set.  [profile] (default [true])
    records the per-step fixpoint profile; it costs a [Bdd.dag_size]
    traversal of the frontier and the full reached set per image step, so
    benchmarks turn it off. *)

val count_states : Trans.t -> Bdd.t -> float
(** Number of states in a set (satisfying assignments over state bits). *)

val partial : t -> upto:int -> Bdd.t
(** Union of the first [upto+1] rings. *)
