(** Pipeline-wide observability for the HSIS environment.

    This module is the single diagnostics surface of the system: the BDD
    manager, the transition-relation builder, the reachability engine and
    the {!Hsis} facade all report into the record types below, and every
    consumer (CLI [--stats] / [--stats-json], the bench harness, the tests)
    reads them back through {!snapshot} values.

    The design is deliberately plain data + pure functions: producers fill
    records in, {!diff} subtracts two snapshots counter-wise, and
    {!pp} / {!to_json} render them.  JSON emission and parsing are
    hand-rolled (no external dependencies). *)

(** {1 Clock} *)

module Clock : sig
  val now : unit -> float
  (** Monotonicized wall-clock seconds: based on the system wall clock but
      clamped to never run backwards, so differences are non-negative.
      Unlike [Sys.time] this measures elapsed real time, not CPU time. *)

  val wall : (unit -> 'a) -> 'a * float
  (** [wall f] runs [f] and returns its result with the elapsed wall-clock
      seconds. *)
end

(** {1 JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : t -> string
  (** Compact one-line rendering.  Non-finite floats become [null]. *)

  val parse : string -> t
  (** Strict parser for the subset emitted by {!to_string} (full JSON minus
      surrogate-pair [\u] escapes).  Raises {!Parse_error}. *)

  (** Accessors for digging into parsed values; missing members yield the
      neutral element ([0], [""], [[]]). *)

  val member : string -> t -> t option
  val to_int : t option -> int
  val to_float : t option -> float
  val to_str : t option -> string
  val to_list : t option -> t list
end

(** {1 Counter taxonomy}

    The structured replacement for the old flat [Man.stats] record. *)

module Cache : sig
  type op = { name : string; hits : int; misses : int }
  (** Computed-cache behaviour of one operation kernel ([and], [or], [xor],
      [not], [ite], [exists], [and_exists], [restrict], [constrain],
      [permute]).  [hits + misses] is the number of cache lookups; terminal
      cases short-circuit before the cache and are not counted. *)

  type t = { entries : int; slots : int; evictions : int; ops : op list }
  (** [entries] is the current cache population and [slots] its capacity
      (both gauges of the direct-mapped computed cache); [evictions] counts
      entries overwritten by colliding stores (monotone); [ops] holds the
      per-operation hit/miss counters (monotone). *)

  val lookups : op -> int

  (** [occupancy t] is [entries / slots], the fraction of the cache in
      use; 0 when the cache has no slots. *)
  val occupancy : t -> float
  val op_hit_rate : op -> float
  val hits : t -> int
  val misses : t -> int
  val hit_rate : t -> float
end

module Gc : sig
  type t = { runs : int; freed : int; time : float }
  (** Collections run, total nodes freed, and total wall-clock seconds
      spent collecting (including collections triggered inside
      reordering). *)
end

module Reorder : sig
  type t = { runs : int; time : float }
  (** Sifting runs and their total wall-clock seconds (inclusive of the
      cache-clearing collections sifting performs). *)
end

module Arena : sig
  type t = {
    live : int;  (** referenced nodes *)
    dead : int;  (** allocated nodes whose refcount dropped to 0 *)
    vars : int;
    peak_live : int;  (** high-water mark of [live] over the manager's life *)
    capacity : int;  (** allocated arena slots *)
  }
end

module Limit : sig
  type t = { checks : int; interrupts : (string * int) list }
  (** Resource-governor activity: [checks] counts budget polls performed by
      the manager's apply kernels, [interrupts] counts interrupts fired per
      reason label (["deadline"], ["nodes"], ["cancelled"]).  Both
      monotone. *)

  val zero : t
end

module Snap : sig
  type t = {
    exports : int;  (** snapshots produced by [Bdd.export] *)
    imports : int;  (** snapshots consumed by [Bdd.import] *)
    nodes : int;  (** total DAG nodes shipped, both directions *)
    bytes : int;  (** total wire bytes shipped, both directions *)
    export_time : float;  (** wall-clock seconds spent exporting *)
    import_time : float;  (** wall-clock seconds spent importing *)
  }
  (** BDD snapshot traffic of the shared-work parallel path.  All
      monotone. *)

  val zero : t
end

module Intra : sig
  type t = {
    domains : int;  (** per-domain kernel contexts created (gauge) *)
    ops : int;  (** top-level apply calls run as parallel sections *)
    forked : int;  (** cofactor tasks forked onto the kernel pool *)
    stolen : int;  (** forked tasks executed by a non-forking domain *)
    cutoff_hits : int;  (** recursions kept inline by the granularity cutoff *)
    lock_contention : int;  (** unique-subtable lock acquisitions that waited *)
    cache_hits : int;  (** per-domain computed-cache hits, all domains *)
    cache_misses : int;  (** per-domain computed-cache misses, all domains *)
    per_domain : (int * int) list;
        (** per-context (hits, misses) breakdown (gauge) *)
  }
  (** Intra-operation parallel kernel activity ([kernel_jobs > 1]), carried
      on snapshots inside [man_stats] as the [intra] member (since schema
      hsis-obs/7).  All monotone except [domains] and [per_domain]. *)

  val zero : t
  val hit_rate : t -> float
end

type man_stats = {
  cache : Cache.t;
  gc : Gc.t;
  reorder : Reorder.t;
  arena : Arena.t;
  limits : Limit.t;
  snap : Snap.t;
  intra : Intra.t;
}
(** One BDD manager's counters, as returned by [Bdd.stats]. *)

type reach_sample = {
  step : int;  (** BFS depth; step 0 is the initial states *)
  frontier_nodes : int;  (** dag size of the new-states frontier *)
  reachable_nodes : int;  (** dag size of the reached-set BDD so far *)
  step_time : float;  (** seconds to compute this frontier (0 at step 0) *)
  simplify_saved : int;
      (** dag nodes shaved off the image input by frontier [restrict]
          simplification ([Reach.compute ~simplify]); 0 when off *)
}
(** One point of the per-iteration fixpoint profile recorded by [Reach]. *)

type worker_sample = {
  w_tasks : int;  (** tasks this pool worker executed *)
  w_time : float;  (** wall-clock seconds it spent inside tasks *)
}
(** Per-worker activity of a parallel run ([Par] pool), carried on merged
    snapshots as the [workers] member (since schema hsis-obs/4). *)

type rel_profile = { rel_parts : int; rel_nodes : int; rel_largest : int }
(** Shape of the conjunctively partitioned transition relation. *)

type tr_profile = {
  tr_strategy : string;
      (** construction strategy name (["mono"], ["part"], ["iso"]) *)
  tr_masters : int;
      (** isomorphic instance groups whose component BDDs were built once *)
  tr_instances : int;
      (** relation parts materialized by [Bdd.permute] from a master part
          instead of direct construction *)
  tr_shared_nodes_saved : int;
      (** total dag size of the master parts each permuted instance
          avoided re-constructing *)
  tr_permute_time : float;  (** wall-clock seconds spent permuting *)
}
(** Transition-relation strategy and isomorphism-sharing counters, carried
    on snapshots as the [tr] member (since schema hsis-obs/6). *)

(** {1 Phase timers} *)

module Timers : sig
  type t
  (** A mutable, insertion-ordered [phase name -> accumulated seconds]
      map. *)

  val create : unit -> t

  val add : t -> string -> float -> unit
  (** Accumulate seconds onto a phase (created on first use). *)

  val time : t -> string -> (unit -> 'a) -> 'a
  (** Run a thunk, accumulating its wall-clock time onto the phase. *)

  val find : t -> string -> float option
  val to_list : t -> (string * float) list
  val total : t -> float
end

(** {1 Tallies} *)

module Tally : sig
  type t
  (** A mutable, insertion-ordered [label -> count] map for event counters
      whose label set is open-ended — e.g. the fuzz harness's per-reason
      skip and per-kind discrepancy counts. *)

  val create : unit -> t

  val incr : ?by:int -> t -> string -> unit
  (** Add [by] (default 1) to a label's count (created at 0 on first use). *)

  val get : t -> string -> int
  (** 0 for labels never incremented. *)

  val to_list : t -> (string * int) list
  val total : t -> int
  val to_json : t -> Json.t
  val of_json : Json.t -> t
end

(** {1 Snapshots} *)

type snapshot = {
  man : man_stats;
  phases : (string * float) list;  (** phase name -> seconds, in order *)
  reach : reach_sample list;
  relation : rel_profile option;
  tr : tr_profile option;
      (** transition-relation strategy and sharing counters, when the
          snapshot came from a built design *)
  verdicts : (string * int) list;
      (** verdict name (["pass"], ["fail"], ["inconclusive"]) -> count of
          property results produced, in first-seen order (monotone) *)
  workers : worker_sample list;
      (** per-worker activity when this snapshot aggregates a parallel run
          ({!merge}); empty for single-manager snapshots *)
}

val snapshot :
  ?phases:(string * float) list ->
  ?reach:reach_sample list ->
  ?relation:rel_profile ->
  ?tr:tr_profile ->
  ?verdicts:(string * int) list ->
  ?workers:worker_sample list ->
  man_stats ->
  snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff before after]: monotone counters (cache hits/misses, gc, reorder,
    limit checks/interrupts, verdict tallies, phase times) subtracted and
    clamped at zero; gauges (arena, cache entries, reach profile, relation
    profile, workers) taken from [after]. *)

val merge : snapshot list -> snapshot
(** Aggregate the snapshots of a share-nothing parallel run (one BDD
    manager per task) into one document.  Counters (cache hits/misses,
    evictions, gc, reorder, limit activity, verdict tallies, phase times)
    and additive gauges (live/dead/peak nodes, capacities, cache slots)
    are summed; [vars] takes the maximum; the reach profile is the first
    non-empty one and the relation profile the first present one (the
    parent design's, by convention, when it is the head of the list);
    [workers] lists are concatenated.  Associative: [merge [a; merge [b;
    c]]] = [merge [merge [a; b]; c]] — so per-worker partial merges
    compose.  [merge [] ] is the all-zero snapshot. *)

val schema_version : string
(** Value of the ["schema"] member of emitted JSON ("hsis-obs/7"; /2 added
    the additive cache ["slots"]/["evictions"] members, /3 the ["limits"]
    object and ["verdicts"] tally, /4 the ["workers"] member and the
    per-step ["simplify_saved"] reach-profile member, /5 the ["snapshot"]
    object with BDD export/import traffic, /6 the ["tr"] object with the
    transition-relation strategy and isomorphism-sharing counters, /7 the
    ["intra"] object with the intra-operation parallel kernel counters). *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable multi-line report. *)

val to_json : snapshot -> Json.t
(** See the "Observability" section of DESIGN.md for the schema. *)

val of_json : Json.t -> snapshot
(** Inverse of {!to_json} (missing members default to zero/empty). *)

val json_string : snapshot -> string
