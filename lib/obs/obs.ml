(* Pipeline-wide observability: a monotonic wall clock, the counter taxonomy
   shared by the BDD manager and the engines above it, named phase timers,
   a snapshot/diff model, and a hand-rolled JSON emitter/parser (no external
   dependencies).

   Everything here is plain data: the producing layers (Man, Trans, Reach,
   Hsis) fill the records in, and the consumers (CLI, bench harness, tests)
   render them with {!pp} or {!to_json}. *)

(* ------------------------------------------------------------------ *)
(* Clock *)

module Clock = struct
  (* [Unix.gettimeofday] is wall-clock but can step backwards under NTP
     adjustment; clamping against the last reading makes every difference
     of two [now] values non-negative, which is all the timers need. *)
  let last = ref neg_infinity

  let now () =
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

  let wall f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
end

(* ------------------------------------------------------------------ *)
(* JSON *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let add_escaped b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  (* Shortest representation that still round-trips; non-finite floats have
     no JSON spelling and become null. *)
  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_nan f || f = infinity || f = neg_infinity then
          Buffer.add_string b "null"
        else Buffer.add_string b (float_repr f)
    | Str s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            add_escaped b k;
            Buffer.add_string b "\":";
            emit b v)
          kvs;
        Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 256 in
    emit b j;
    Buffer.contents b

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let k = String.length word in
      if !pos + k <= n && String.sub s !pos k = word then begin
        pos := !pos + k;
        v
      end
      else fail (Printf.sprintf "expected '%s'" word)
    in
    let utf8_of_code b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'; incr pos
            | '\\' -> Buffer.add_char b '\\'; incr pos
            | '/' -> Buffer.add_char b '/'; incr pos
            | 'b' -> Buffer.add_char b '\b'; incr pos
            | 'f' -> Buffer.add_char b '\012'; incr pos
            | 'n' -> Buffer.add_char b '\n'; incr pos
            | 'r' -> Buffer.add_char b '\r'; incr pos
            | 't' -> Buffer.add_char b '\t'; incr pos
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                utf8_of_code b cp;
                pos := !pos + 5
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elements (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | _ -> fail "expected a JSON value"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input after JSON value";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let to_int = function
    | Some (Int i) -> i
    | Some (Float f) -> int_of_float f
    | _ -> 0

  let to_float = function
    | Some (Float f) -> f
    | Some (Int i) -> float_of_int i
    | _ -> 0.0

  let to_str = function Some (Str s) -> s | _ -> ""
  let to_list = function Some (List l) -> l | _ -> []
end

(* ------------------------------------------------------------------ *)
(* Counter taxonomy *)

module Cache = struct
  type op = { name : string; hits : int; misses : int }
  type t = { entries : int; slots : int; evictions : int; ops : op list }

  let lookups (o : op) = o.hits + o.misses

  let occupancy t =
    if t.slots = 0 then 0.0
    else float_of_int t.entries /. float_of_int t.slots

  let op_hit_rate (o : op) =
    let l = lookups o in
    if l = 0 then 0.0 else float_of_int o.hits /. float_of_int l

  let hits t = List.fold_left (fun acc o -> acc + o.hits) 0 t.ops
  let misses t = List.fold_left (fun acc o -> acc + o.misses) 0 t.ops

  let hit_rate t =
    let h = hits t and m = misses t in
    if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
end

module Gc = struct
  type t = { runs : int; freed : int; time : float }
end

module Reorder = struct
  type t = { runs : int; time : float }
end

module Arena = struct
  type t = {
    live : int;
    dead : int;
    vars : int;
    peak_live : int;
    capacity : int;
  }
end

module Limit = struct
  (* Resource-governor activity: how many times the manager polled its
     budget, and how many interrupts fired per reason label ("deadline",
     "nodes", "cancelled").  Both monotone. *)
  type t = { checks : int; interrupts : (string * int) list }

  let zero = { checks = 0; interrupts = [] }
end

module Snap = struct
  (* BDD snapshot traffic (Bdd.export / Bdd.import): how many snapshots
     this manager produced and consumed, the total nodes and wire bytes
     shipped, and the wall-clock cost of each direction.  All monotone. *)
  type t = {
    exports : int;
    imports : int;
    nodes : int;
    bytes : int;
    export_time : float;
    import_time : float;
  }

  let zero =
    { exports = 0; imports = 0; nodes = 0; bytes = 0; export_time = 0.0;
      import_time = 0.0 }
end

module Intra = struct
  (* Intra-operation parallel kernel activity (kernel_jobs > 1): how many
     per-domain contexts the manager created, how many top-level apply
     calls ran as parallel sections, fork/steal traffic on the kernel
     pool, granularity-cutoff hits, unique-table lock contention, and the
     per-domain computed-cache hit/miss tallies (aggregate plus the
     per-context breakdown).  All monotone except [domains] and
     [per_domain], which are gauges over the live contexts. *)
  type t = {
    domains : int;
    ops : int;
    forked : int;
    stolen : int;
    cutoff_hits : int;
    lock_contention : int;
    cache_hits : int;
    cache_misses : int;
    per_domain : (int * int) list; (* (hits, misses) per domain context *)
  }

  let zero =
    { domains = 0; ops = 0; forked = 0; stolen = 0; cutoff_hits = 0;
      lock_contention = 0; cache_hits = 0; cache_misses = 0; per_domain = [] }

  let hit_rate t =
    let l = t.cache_hits + t.cache_misses in
    if l = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int l
end

type man_stats = {
  cache : Cache.t;
  gc : Gc.t;
  reorder : Reorder.t;
  arena : Arena.t;
  limits : Limit.t;
  snap : Snap.t;
  intra : Intra.t;
}

type reach_sample = {
  step : int;
  frontier_nodes : int;
  reachable_nodes : int;
  step_time : float;
  simplify_saved : int;
}

type rel_profile = { rel_parts : int; rel_nodes : int; rel_largest : int }

type tr_profile = {
  tr_strategy : string;
  tr_masters : int;
  tr_instances : int;
  tr_shared_nodes_saved : int;
  tr_permute_time : float;
}

type worker_sample = { w_tasks : int; w_time : float }

(* ------------------------------------------------------------------ *)
(* Phase timers *)

module Timers = struct
  (* Insertion-ordered accumulating name -> seconds map.  Phase counts are
     tiny (single digits), so an assoc list beats a hashtable on clarity. *)
  type t = { mutable entries : (string * float) list }

  let create () = { entries = [] }

  let add t name dt =
    let rec go = function
      | [] -> [ (name, dt) ]
      | (n, v) :: rest when String.equal n name -> (n, v +. dt) :: rest
      | e :: rest -> e :: go rest
    in
    t.entries <- go t.entries

  let time t name f =
    let r, dt = Clock.wall f in
    add t name dt;
    r

  let find t name = List.assoc_opt name t.entries
  let to_list t = t.entries
  let total t = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 t.entries
end

(* ------------------------------------------------------------------ *)
(* Tallies *)

module Tally = struct
  (* Insertion-ordered accumulating name -> count map, for labelled event
     counters whose label set is open-ended (fuzz skip reasons,
     discrepancy kinds).  Same shape and rationale as Timers. *)
  type t = { mutable entries : (string * int) list }

  let create () = { entries = [] }

  let incr ?(by = 1) t name =
    let rec go = function
      | [] -> [ (name, by) ]
      | (n, v) :: rest when String.equal n name -> (n, v + by) :: rest
      | e :: rest -> e :: go rest
    in
    t.entries <- go t.entries

  let get t name =
    match List.assoc_opt name t.entries with Some v -> v | None -> 0

  let to_list t = t.entries
  let total t = List.fold_left (fun acc (_, v) -> acc + v) 0 t.entries

  let to_json t =
    Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) t.entries)

  let of_json j =
    {
      entries =
        (match j with
        | Json.Obj members ->
            List.filter_map
              (fun (n, v) ->
                match v with Json.Int i -> Some (n, i) | _ -> None)
              members
        | _ -> []);
    }
end

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type snapshot = {
  man : man_stats;
  phases : (string * float) list;
  reach : reach_sample list;
  relation : rel_profile option;
  tr : tr_profile option;
  verdicts : (string * int) list;
  workers : worker_sample list;
}

let snapshot ?(phases = []) ?(reach = []) ?relation ?tr ?(verdicts = [])
    ?(workers = []) man =
  { man; phases; reach; relation; tr; verdicts; workers }

(* [diff before after]: monotone counters are subtracted (clamped at zero so
   the result is always non-negative), gauges — live/dead/peak nodes, cache
   entries, capacity, the reach profile, the relation profile — are taken
   from [after]. *)
let diff before after =
  let sub a b = max 0 (a - b) in
  let subf a b = Float.max 0.0 (a -. b) in
  let op_diff (o : Cache.op) =
    let prev =
      List.find_opt (fun (p : Cache.op) -> String.equal p.name o.name)
        before.man.cache.Cache.ops
    in
    match prev with
    | None -> o
    | Some p ->
        { o with Cache.hits = sub o.hits p.hits; misses = sub o.misses p.misses }
  in
  let phase_diff (name, v) =
    match List.assoc_opt name before.phases with
    | None -> (name, v)
    | Some p -> (name, subf v p)
  in
  let tally_diff prev (name, v) =
    match List.assoc_opt name prev with
    | None -> (name, v)
    | Some p -> (name, sub v p)
  in
  {
    man =
      {
        cache =
          {
            Cache.entries = after.man.cache.Cache.entries;
            slots = after.man.cache.Cache.slots;
            evictions =
              sub after.man.cache.Cache.evictions
                before.man.cache.Cache.evictions;
            ops = List.map op_diff after.man.cache.Cache.ops;
          };
        gc =
          {
            Gc.runs = sub after.man.gc.Gc.runs before.man.gc.Gc.runs;
            freed = sub after.man.gc.Gc.freed before.man.gc.Gc.freed;
            time = subf after.man.gc.Gc.time before.man.gc.Gc.time;
          };
        reorder =
          {
            Reorder.runs =
              sub after.man.reorder.Reorder.runs before.man.reorder.Reorder.runs;
            time =
              subf after.man.reorder.Reorder.time
                before.man.reorder.Reorder.time;
          };
        arena = after.man.arena;
        limits =
          {
            Limit.checks =
              sub after.man.limits.Limit.checks before.man.limits.Limit.checks;
            interrupts =
              List.map
                (tally_diff before.man.limits.Limit.interrupts)
                after.man.limits.Limit.interrupts;
          };
        snap =
          {
            Snap.exports =
              sub after.man.snap.Snap.exports before.man.snap.Snap.exports;
            imports =
              sub after.man.snap.Snap.imports before.man.snap.Snap.imports;
            nodes = sub after.man.snap.Snap.nodes before.man.snap.Snap.nodes;
            bytes = sub after.man.snap.Snap.bytes before.man.snap.Snap.bytes;
            export_time =
              subf after.man.snap.Snap.export_time
                before.man.snap.Snap.export_time;
            import_time =
              subf after.man.snap.Snap.import_time
                before.man.snap.Snap.import_time;
          };
        intra =
          {
            Intra.domains = after.man.intra.Intra.domains;
            ops = sub after.man.intra.Intra.ops before.man.intra.Intra.ops;
            forked =
              sub after.man.intra.Intra.forked before.man.intra.Intra.forked;
            stolen =
              sub after.man.intra.Intra.stolen before.man.intra.Intra.stolen;
            cutoff_hits =
              sub after.man.intra.Intra.cutoff_hits
                before.man.intra.Intra.cutoff_hits;
            lock_contention =
              sub after.man.intra.Intra.lock_contention
                before.man.intra.Intra.lock_contention;
            cache_hits =
              sub after.man.intra.Intra.cache_hits
                before.man.intra.Intra.cache_hits;
            cache_misses =
              sub after.man.intra.Intra.cache_misses
                before.man.intra.Intra.cache_misses;
            per_domain = after.man.intra.Intra.per_domain;
          };
      };
    phases = List.map phase_diff after.phases;
    reach = after.reach;
    relation = after.relation;
    tr = after.tr;
    verdicts = List.map (tally_diff before.verdicts) after.verdicts;
    workers = after.workers;
  }

(* ------------------------------------------------------------------ *)
(* Merging share-nothing parallel runs *)

(* Sum an assoc tally in first-seen key order — associative because list
   concatenation is, and each key's total is a plain sum. *)
let merge_tallies add zero tallies =
  List.fold_left
    (fun acc entries ->
      List.fold_left
        (fun acc (name, v) ->
          let rec go = function
            | [] -> [ (name, add zero v) ]
            | (n, u) :: rest when String.equal n name -> (n, add u v) :: rest
            | e :: rest -> e :: go rest
          in
          go acc)
        acc entries)
    [] tallies

let merge snapshots =
  let mans = List.map (fun s -> s.man) snapshots in
  let ops =
    (* per-op tallies keyed by kernel name, merged pairwise *)
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun acc (o : Cache.op) ->
            let rec go = function
              | [] -> [ o ]
              | (p : Cache.op) :: rest when String.equal p.name o.name ->
                  { p with
                    Cache.hits = p.hits + o.hits;
                    misses = p.misses + o.misses }
                  :: rest
              | p :: rest -> p :: go rest
            in
            go acc)
          acc m.cache.Cache.ops)
      [] mans
  in
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 mans in
  let sumf f = List.fold_left (fun acc m -> acc +. f m) 0.0 mans in
  let man =
    {
      cache =
        {
          Cache.entries = sum (fun m -> m.cache.Cache.entries);
          slots = sum (fun m -> m.cache.Cache.slots);
          evictions = sum (fun m -> m.cache.Cache.evictions);
          ops;
        };
      gc =
        {
          Gc.runs = sum (fun m -> m.gc.Gc.runs);
          freed = sum (fun m -> m.gc.Gc.freed);
          time = sumf (fun m -> m.gc.Gc.time);
        };
      reorder =
        {
          Reorder.runs = sum (fun m -> m.reorder.Reorder.runs);
          time = sumf (fun m -> m.reorder.Reorder.time);
        };
      arena =
        {
          Arena.live = sum (fun m -> m.arena.Arena.live);
          dead = sum (fun m -> m.arena.Arena.dead);
          (* vars is a per-manager ordering width, not an additive count *)
          vars =
            List.fold_left (fun acc m -> max acc m.arena.Arena.vars) 0 mans;
          peak_live = sum (fun m -> m.arena.Arena.peak_live);
          capacity = sum (fun m -> m.arena.Arena.capacity);
        };
      limits =
        {
          Limit.checks = sum (fun m -> m.limits.Limit.checks);
          interrupts =
            merge_tallies ( + ) 0
              (List.map (fun m -> m.limits.Limit.interrupts) mans);
        };
      snap =
        {
          Snap.exports = sum (fun m -> m.snap.Snap.exports);
          imports = sum (fun m -> m.snap.Snap.imports);
          nodes = sum (fun m -> m.snap.Snap.nodes);
          bytes = sum (fun m -> m.snap.Snap.bytes);
          export_time = sumf (fun m -> m.snap.Snap.export_time);
          import_time = sumf (fun m -> m.snap.Snap.import_time);
        };
      intra =
        {
          Intra.domains = sum (fun m -> m.intra.Intra.domains);
          ops = sum (fun m -> m.intra.Intra.ops);
          forked = sum (fun m -> m.intra.Intra.forked);
          stolen = sum (fun m -> m.intra.Intra.stolen);
          cutoff_hits = sum (fun m -> m.intra.Intra.cutoff_hits);
          lock_contention = sum (fun m -> m.intra.Intra.lock_contention);
          cache_hits = sum (fun m -> m.intra.Intra.cache_hits);
          cache_misses = sum (fun m -> m.intra.Intra.cache_misses);
          per_domain =
            List.concat_map (fun m -> m.intra.Intra.per_domain) mans;
        };
    }
  in
  let first_non_empty f =
    List.fold_left
      (fun acc s -> match acc with [] -> f s | _ -> acc)
      [] snapshots
  in
  {
    man;
    phases =
      merge_tallies ( +. ) 0.0 (List.map (fun s -> s.phases) snapshots);
    reach = first_non_empty (fun s -> s.reach);
    relation = List.find_map (fun s -> s.relation) snapshots;
    tr = List.find_map (fun s -> s.tr) snapshots;
    verdicts = merge_tallies ( + ) 0 (List.map (fun s -> s.verdicts) snapshots);
    workers = List.concat_map (fun s -> s.workers) snapshots;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp fmt s =
  let a = s.man.arena in
  Format.fprintf fmt "bdd arena   : %d live (peak %d), %d dead, %d vars, capacity %d@."
    a.Arena.live a.Arena.peak_live a.Arena.dead a.Arena.vars a.Arena.capacity;
  let c = s.man.cache in
  Format.fprintf fmt
    "cache       : %d/%d entries (%.1f%% full), %d evictions, %.1f%% hit rate \
     (%d hits / %d misses)@."
    c.Cache.entries c.Cache.slots
    (100.0 *. Cache.occupancy c)
    c.Cache.evictions
    (100.0 *. Cache.hit_rate c)
    (Cache.hits c) (Cache.misses c);
  List.iter
    (fun (o : Cache.op) ->
      if Cache.lookups o > 0 then
        Format.fprintf fmt "  %-10s %9d hits %9d misses  (%.1f%%)@." o.Cache.name
          o.Cache.hits o.Cache.misses
          (100.0 *. Cache.op_hit_rate o))
    c.Cache.ops;
  Format.fprintf fmt "gc          : %d runs, %d nodes freed, %.3fs@."
    s.man.gc.Gc.runs s.man.gc.Gc.freed s.man.gc.Gc.time;
  Format.fprintf fmt "reorder     : %d runs, %.3fs@." s.man.reorder.Reorder.runs
    s.man.reorder.Reorder.time;
  let l = s.man.limits in
  if l.Limit.checks > 0 || l.Limit.interrupts <> [] then begin
    Format.fprintf fmt "limits      : %d checks" l.Limit.checks;
    List.iter
      (fun (name, n) -> Format.fprintf fmt ", %d %s interrupts" n name)
      l.Limit.interrupts;
    Format.fprintf fmt "@."
  end;
  let it = s.man.intra in
  if it.Intra.ops > 0 || it.Intra.domains > 0 then begin
    Format.fprintf fmt
      "intra       : %d domains, %d parallel ops, %d forked (%d stolen), %d \
       cutoff hits, %d lock waits, %.1f%% domain-cache hit rate@."
      it.Intra.domains it.Intra.ops it.Intra.forked it.Intra.stolen
      it.Intra.cutoff_hits it.Intra.lock_contention
      (100.0 *. Intra.hit_rate it);
    List.iteri
      (fun i (h, m) ->
        if h + m > 0 then
          Format.fprintf fmt "  d%-9d %9d hits %9d misses  (%.1f%%)@." i h m
            (100.0 *. float_of_int h /. float_of_int (h + m)))
      it.Intra.per_domain
  end;
  let sn = s.man.snap in
  if sn.Snap.exports > 0 || sn.Snap.imports > 0 then
    Format.fprintf fmt
      "snapshot    : %d exports %.3fs, %d imports %.3fs, %d nodes, %d bytes@."
      sn.Snap.exports sn.Snap.export_time sn.Snap.imports sn.Snap.import_time
      sn.Snap.nodes sn.Snap.bytes;
  if s.verdicts <> [] then begin
    Format.fprintf fmt "verdicts    :";
    List.iter
      (fun (name, n) -> Format.fprintf fmt " %d %s" n name)
      s.verdicts;
    Format.fprintf fmt "@."
  end;
  if s.workers <> [] then begin
    Format.fprintf fmt "workers     : %d" (List.length s.workers);
    List.iteri
      (fun i w ->
        Format.fprintf fmt "%s w%d %d tasks %.3fs"
          (if i = 0 then " —" else ",")
          i w.w_tasks w.w_time)
      s.workers;
    Format.fprintf fmt "@."
  end;
  (match s.relation with
  | Some r ->
      Format.fprintf fmt "relation    : %d parts, %d nodes (largest %d)@."
        r.rel_parts r.rel_nodes r.rel_largest
  | None -> ());
  (match s.tr with
  | Some t when t.tr_strategy <> "" ->
      Format.fprintf fmt "tr          : %s" t.tr_strategy;
      if t.tr_masters > 0 then
        Format.fprintf fmt
          ", %d masters shared by %d permuted instances (%d nodes saved, \
           %.3fs permuting)"
          t.tr_masters t.tr_instances t.tr_shared_nodes_saved
          t.tr_permute_time;
      Format.fprintf fmt "@."
  | _ -> ());
  if s.phases <> [] then begin
    Format.fprintf fmt "phases      :@.";
    List.iter
      (fun (name, t) -> Format.fprintf fmt "  %-10s %8.3fs@." name t)
      s.phases
  end;
  match s.reach with
  | [] -> ()
  | samples ->
      let peak =
        List.fold_left (fun acc r -> max acc r.frontier_nodes) 0 samples
      in
      Format.fprintf fmt
        "reach       : %d frontiers, peak frontier %d nodes@." (List.length samples)
        peak;
      let saved =
        List.fold_left (fun acc r -> acc + r.simplify_saved) 0 samples
      in
      if saved <> 0 then
        Format.fprintf fmt
          "  frontier simplification saved %d image-input nodes@." saved;
      List.iter
        (fun r ->
          Format.fprintf fmt
            "  step %3d: frontier %7d nodes, reached %7d nodes, %.3fs%s@."
            r.step r.frontier_nodes r.reachable_nodes r.step_time
            (if r.simplify_saved <> 0 then
               Printf.sprintf " (restrict saved %d)" r.simplify_saved
             else ""))
        samples

(* /2 added the cache "slots" and "evictions" members; /3 added the
   "limits" object (budget checks and per-reason interrupt counts) and the
   top-level "verdicts" tally; /4 added the "workers" member (per-worker
   task counts and wall time of a merged parallel run) and the per-step
   "simplify_saved" member of the reach profile; /5 added the "snapshot"
   object (BDD export/import traffic of the shared-work parallel path);
   /6 added the "tr" object (transition-relation strategy and isomorphism
   sharing counters); /7 adds the "intra" object (intra-operation parallel
   kernel counters: domains, forked/stolen tasks, cutoff hits, unique-table
   lock contention, per-domain computed-cache hit rates).  Each bump is
   additive: older readers ignore the new members, and of_json defaults
   them to zero/empty when reading older documents. *)
let schema_version = "hsis-obs/7"

let to_json s =
  let open Json in
  let op (o : Cache.op) =
    Obj
      [ ("op", Str o.Cache.name); ("hits", Int o.Cache.hits);
        ("misses", Int o.Cache.misses) ]
  in
  let phase (name, t) = Obj [ ("phase", Str name); ("time_s", Float t) ] in
  let sample r =
    Obj
      [ ("step", Int r.step); ("frontier_nodes", Int r.frontier_nodes);
        ("reachable_nodes", Int r.reachable_nodes);
        ("time_s", Float r.step_time);
        ("simplify_saved", Int r.simplify_saved) ]
  in
  let worker w =
    Obj [ ("tasks", Int w.w_tasks); ("time_s", Float w.w_time) ]
  in
  Obj
    ([
       ("schema", Str schema_version);
       ( "cache",
         Obj
           [ ("entries", Int s.man.cache.Cache.entries);
             ("slots", Int s.man.cache.Cache.slots);
             ("evictions", Int s.man.cache.Cache.evictions);
             ("ops", List (List.map op s.man.cache.Cache.ops)) ] );
       ( "gc",
         Obj
           [ ("runs", Int s.man.gc.Gc.runs); ("freed", Int s.man.gc.Gc.freed);
             ("time_s", Float s.man.gc.Gc.time) ] );
       ( "reorder",
         Obj
           [ ("runs", Int s.man.reorder.Reorder.runs);
             ("time_s", Float s.man.reorder.Reorder.time) ] );
       ( "arena",
         Obj
           [ ("live", Int s.man.arena.Arena.live);
             ("dead", Int s.man.arena.Arena.dead);
             ("vars", Int s.man.arena.Arena.vars);
             ("peak_live", Int s.man.arena.Arena.peak_live);
             ("capacity", Int s.man.arena.Arena.capacity) ] );
       ( "limits",
         Obj
           [ ("checks", Int s.man.limits.Limit.checks);
             ( "interrupts",
               Obj
                 (List.map
                    (fun (n, v) -> (n, Int v))
                    s.man.limits.Limit.interrupts) ) ] );
       ( "snapshot",
         Obj
           [ ("exports", Int s.man.snap.Snap.exports);
             ("imports", Int s.man.snap.Snap.imports);
             ("nodes", Int s.man.snap.Snap.nodes);
             ("bytes", Int s.man.snap.Snap.bytes);
             ("export_s", Float s.man.snap.Snap.export_time);
             ("import_s", Float s.man.snap.Snap.import_time) ] );
       ( "intra",
         Obj
           [ ("domains", Int s.man.intra.Intra.domains);
             ("ops", Int s.man.intra.Intra.ops);
             ("forked", Int s.man.intra.Intra.forked);
             ("stolen", Int s.man.intra.Intra.stolen);
             ("cutoff_hits", Int s.man.intra.Intra.cutoff_hits);
             ("lock_contention", Int s.man.intra.Intra.lock_contention);
             ("cache_hits", Int s.man.intra.Intra.cache_hits);
             ("cache_misses", Int s.man.intra.Intra.cache_misses);
             ( "per_domain",
               List
                 (List.map
                    (fun (h, m) ->
                      Obj [ ("hits", Int h); ("misses", Int m) ])
                    s.man.intra.Intra.per_domain) ) ] );
       ( "verdicts",
         Obj (List.map (fun (n, v) -> (n, Int v)) s.verdicts) );
       ("phases", List (List.map phase s.phases));
       ("reach_profile", List (List.map sample s.reach));
     ]
    @ (match s.workers with
      | [] -> []
      | ws ->
          [
            ( "workers",
              Obj
                [
                  ("count", Int (List.length ws));
                  ( "total_time_s",
                    Float
                      (List.fold_left (fun acc w -> acc +. w.w_time) 0.0 ws)
                  );
                  ("workers", List (List.map worker ws));
                ] );
          ])
    @ (match s.relation with
      | None -> []
      | Some r ->
          [
            ( "relation",
              Obj
                [ ("parts", Int r.rel_parts); ("nodes", Int r.rel_nodes);
                  ("largest", Int r.rel_largest) ] );
          ])
    @
    match s.tr with
    | None -> []
    | Some t ->
        [
          ( "tr",
            Obj
              [ ("strategy", Str t.tr_strategy);
                ("masters", Int t.tr_masters);
                ("instances", Int t.tr_instances);
                ("shared_nodes_saved", Int t.tr_shared_nodes_saved);
                ("permute_s", Float t.tr_permute_time) ] );
        ])

let of_json j =
  let open Json in
  let op jo =
    {
      Cache.name = to_str (member "op" jo);
      hits = to_int (member "hits" jo);
      misses = to_int (member "misses" jo);
    }
  in
  let cache =
    let jc = Option.value ~default:(Obj []) (member "cache" j) in
    {
      Cache.entries = to_int (member "entries" jc);
      slots = to_int (member "slots" jc);
      evictions = to_int (member "evictions" jc);
      ops = List.map op (to_list (member "ops" jc));
    }
  in
  let gc =
    let jg = Option.value ~default:(Obj []) (member "gc" j) in
    {
      Gc.runs = to_int (member "runs" jg);
      freed = to_int (member "freed" jg);
      time = to_float (member "time_s" jg);
    }
  in
  let reorder =
    let jr = Option.value ~default:(Obj []) (member "reorder" j) in
    {
      Reorder.runs = to_int (member "runs" jr);
      time = to_float (member "time_s" jr);
    }
  in
  let arena =
    let ja = Option.value ~default:(Obj []) (member "arena" j) in
    {
      Arena.live = to_int (member "live" ja);
      dead = to_int (member "dead" ja);
      vars = to_int (member "vars" ja);
      peak_live = to_int (member "peak_live" ja);
      capacity = to_int (member "capacity" ja);
    }
  in
  let int_tally = function
    | Some (Obj members) ->
        List.filter_map
          (fun (n, v) -> match v with Int i -> Some (n, i) | _ -> None)
          members
    | _ -> []
  in
  (* Absent on /1 and /2 documents; default to zero activity. *)
  let limits =
    let jl = Option.value ~default:(Obj []) (member "limits" j) in
    {
      Limit.checks = to_int (member "checks" jl);
      interrupts = int_tally (member "interrupts" jl);
    }
  in
  (* Absent on /1–/4 documents; default to zero traffic. *)
  let snap =
    let js = Option.value ~default:(Obj []) (member "snapshot" j) in
    {
      Snap.exports = to_int (member "exports" js);
      imports = to_int (member "imports" js);
      nodes = to_int (member "nodes" js);
      bytes = to_int (member "bytes" js);
      export_time = to_float (member "export_s" js);
      import_time = to_float (member "import_s" js);
    }
  in
  (* Absent on /1–/6 documents; default to zero activity. *)
  let intra =
    let ji = Option.value ~default:(Obj []) (member "intra" j) in
    {
      Intra.domains = to_int (member "domains" ji);
      ops = to_int (member "ops" ji);
      forked = to_int (member "forked" ji);
      stolen = to_int (member "stolen" ji);
      cutoff_hits = to_int (member "cutoff_hits" ji);
      lock_contention = to_int (member "lock_contention" ji);
      cache_hits = to_int (member "cache_hits" ji);
      cache_misses = to_int (member "cache_misses" ji);
      per_domain =
        List.map
          (fun jd -> (to_int (member "hits" jd), to_int (member "misses" jd)))
          (to_list (member "per_domain" ji));
    }
  in
  let verdicts = int_tally (member "verdicts" j) in
  let phases =
    List.map
      (fun jp -> (to_str (member "phase" jp), to_float (member "time_s" jp)))
      (to_list (member "phases" j))
  in
  let reach =
    List.map
      (fun jr ->
        {
          step = to_int (member "step" jr);
          frontier_nodes = to_int (member "frontier_nodes" jr);
          reachable_nodes = to_int (member "reachable_nodes" jr);
          step_time = to_float (member "time_s" jr);
          simplify_saved = to_int (member "simplify_saved" jr);
        })
      (to_list (member "reach_profile" j))
  in
  (* Absent on /1–/3 documents: a single-manager snapshot has no workers. *)
  let workers =
    match member "workers" j with
    | None -> []
    | Some jw ->
        List.map
          (fun w ->
            {
              w_tasks = to_int (member "tasks" w);
              w_time = to_float (member "time_s" w);
            })
          (to_list (member "workers" jw))
  in
  let relation =
    match member "relation" j with
    | None -> None
    | Some jr ->
        Some
          {
            rel_parts = to_int (member "parts" jr);
            rel_nodes = to_int (member "nodes" jr);
            rel_largest = to_int (member "largest" jr);
          }
  in
  (* Absent on /1–/5 documents. *)
  let tr =
    match member "tr" j with
    | None -> None
    | Some jt ->
        Some
          {
            tr_strategy = to_str (member "strategy" jt);
            tr_masters = to_int (member "masters" jt);
            tr_instances = to_int (member "instances" jt);
            tr_shared_nodes_saved = to_int (member "shared_nodes_saved" jt);
            tr_permute_time = to_float (member "permute_s" jt);
          }
  in
  { man = { cache; gc; reorder; arena; limits; snap; intra }; phases; reach;
    relation; tr; verdicts; workers }

let json_string s = Json.to_string (to_json s)
