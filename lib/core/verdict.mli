(** The single answer type spoken by every checking engine.

    Engines return a ['ev t] embedded in their own result record; partial
    state built before an interrupt (explored rings, satisfaction sets)
    lives alongside the verdict in that record, keeping verdicts from
    different engines directly comparable. *)

type inconclusive = {
  reason : Limits.reason;
  at_step : int option;
      (** fixpoint step at which the limit fired, when the engine knows *)
}

type 'ev t =
  | Pass
  | Fail of 'ev  (** definitive violation with engine-specific evidence *)
  | Inconclusive of inconclusive
      (** a resource budget interrupted the run before an answer *)

val inconclusive : ?at_step:int -> Limits.reason -> 'ev t

val holds : 'ev t -> bool
(** [true] only for [Pass]. *)

val conclusive : 'ev t -> bool
(** [true] for [Pass] and [Fail _]. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val name : 'ev t -> string
(** ["pass"], ["fail"] or ["inconclusive"]. *)

val agree : 'a t -> 'b t -> bool
(** Differential-checking compatibility: [false] only when both verdicts
    are conclusive and differ. An [Inconclusive] on either side is never a
    discrepancy. *)

val exit_code : 'ev t -> int
(** CLI protocol: 0 pass / 3 fail / 4 inconclusive. *)

val to_json : 'ev t -> Hsis_obs.Obs.Json.t
(** [{"verdict": ...}] plus ["reason"]/["at_step"] when inconclusive.
    Evidence is not serialized here — callers attach their own. *)

val pp : Format.formatter -> 'ev t -> unit
