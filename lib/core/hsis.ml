open Hsis_obs
open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug
open Hsis_limits

type design = {
  flat : Ast.model;
  net : Net.t;
  trans : Trans.t;
  heuristic : Trans.heuristic;
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
  timers : Obs.Timers.t;
  verdicts : Obs.Tally.t;
  mutable limits : Limits.t;
  mutable reach_cache : Reach.t option;
  mutable reach_order_rev : int;
  mutable profile_reach : bool;
  mutable simplify_reach : bool;
}

let set_reach_profile d b = d.profile_reach <- b
let set_reach_simplify d b = d.simplify_reach <- b
let set_limits d l = d.limits <- l
let limits d = d.limits

let timed f = Obs.Clock.wall f

let read_flat ?(heuristic = Trans.Min_width) ?verilog_lines ?timers flat =
  let timers =
    match timers with Some t -> t | None -> Obs.Timers.create ()
  in
  let blifmv_lines = Ast.line_count (Printer.model_to_string flat) in
  let (net, trans), read_time =
    timed (fun () ->
        let net, sym =
          Obs.Timers.time timers "order" (fun () ->
              let net = Net.of_model flat in
              let man = Bdd.new_man () in
              (net, Sym.make man net))
        in
        let trans =
          Obs.Timers.time timers "relation" (fun () ->
              let trans = Trans.build ~heuristic sym in
              (* building the relation BDDs is part of "read" in Table 1 *)
              ignore (Trans.parts trans);
              trans)
        in
        (net, trans))
  in
  { flat; net; trans; heuristic; verilog_lines; blifmv_lines; read_time;
    timers; verdicts = Obs.Tally.create (); limits = Limits.none;
    reach_cache = None; reach_order_rev = 0; profile_reach = true;
    simplify_reach = false }

let read_blifmv ?heuristic src =
  let timers = Obs.Timers.create () in
  let ast = Obs.Timers.time timers "parse" (fun () -> Parser.parse src) in
  let flat =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten ast)
  in
  read_flat ?heuristic ~timers flat

let read_verilog ?heuristic src =
  let timers = Obs.Timers.create () in
  let verilog_lines = Ast.line_count src in
  let ast =
    Obs.Timers.time timers "parse" (fun () -> Hsis_verilog.Elab.compile src)
  in
  let flat =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten ast)
  in
  read_flat ?heuristic ~verilog_lines ~timers flat

(* Reorder generation of the design's manager: the reach cache is only
   valid for the variable order it was computed under, so it carries the
   sifting-run count at fill time and is dropped when that moves (e.g. a
   later property check triggering auto-reorder, or an explicit
   [Bdd.sift] between jobs of a warm serve session). *)
let reorder_runs d =
  (Bdd.stats (Trans.man d.trans)).Obs.reorder.Obs.Reorder.runs

let reach_cache_valid d =
  d.reach_cache <> None && d.reach_order_rev = reorder_runs d

(* Only conclusive explorations are cached: a run truncated by a budget is
   returned to the caller but recomputed on the next call (the absolute
   deadline makes retries after expiry fail fast rather than loop). *)
let reachable ?limits d =
  let limits = Option.value limits ~default:d.limits in
  if d.reach_cache <> None && not (reach_cache_valid d) then
    d.reach_cache <- None;
  match d.reach_cache with
  | Some r -> r
  | None ->
      let r =
        Obs.Timers.time d.timers "reach" (fun () ->
            Reach.compute ~limits ~profile:d.profile_reach
              ~simplify:d.simplify_reach d.trans (Trans.initial d.trans))
      in
      if Verdict.conclusive r.Reach.verdict then begin
        (* stamp with the order as of completion: sifting may have run
           inside the fixpoint itself *)
        d.reach_cache <- Some r;
        d.reach_order_rev <- reorder_runs d
      end;
      r

let reached_states d = Reach.count_states d.trans (reachable d).Reach.reachable

type ctl_evidence = {
  ce_explanation : Mcdbg.explanation option;
}

type lc_evidence = {
  le_trace : Trace.t option;
  le_trans : Trans.t;
}

type 'ev property_result = {
  pr_name : string;
  pr_verdict : 'ev Verdict.t;
  pr_time : float;
  pr_early_step : int option;
}

let tally d v = Obs.Tally.incr d.verdicts (Verdict.name v)

let check_ctl ?(fairness = []) ?(early_failure = true) ?(explain = false)
    ?limits d ~name formula =
  let limits = Option.value limits ~default:d.limits in
  let reach = reachable ~limits d in
  let engine, pr_time =
    timed (fun () ->
        match
          Bdd.with_limits (Trans.man d.trans) limits (fun () ->
              Fair.compile_all d.trans fairness)
        with
        | exception Limits.Interrupted r -> Error r
        | compiled ->
            Ok
              ( compiled,
                Mc.check ~fairness:compiled ~early_failure ~reach ~limits
                  d.trans formula ))
  in
  Obs.Timers.add d.timers "mc" pr_time;
  let pr_verdict, pr_early_step =
    match engine with
    | Error r -> (Verdict.inconclusive r, None)
    | Ok (compiled, outcome) ->
        let evidence _fail_init =
          {
            ce_explanation =
              (if explain then begin
                 let ctx = Mcdbg.make ~fairness:compiled d.trans ~reach in
                 Mcdbg.explain_failure ctx formula outcome
               end
               else None);
          }
        in
        ( Verdict.map evidence outcome.Mc.verdict,
          outcome.Mc.early_failure_step )
  in
  tally d pr_verdict;
  { pr_name = name; pr_verdict; pr_time; pr_early_step }

let check_lc ?(fairness = []) ?(early_failure = true) ?(trace = true) ?limits
    d aut =
  let limits = Option.value limits ~default:d.limits in
  let outcome, pr_time =
    timed (fun () -> Lc.check ~fairness ~early_failure ~limits d.flat aut)
  in
  Obs.Timers.add d.timers "lc" pr_time;
  let evidence _fair =
    (* A [Fail] verdict implies the product was built. *)
    let p = Option.get outcome.Lc.product in
    let le_trace =
      if trace then
        try
          Some
            (Trace.fair_lasso p.Lc.env ~reach:p.Lc.reach ~fair:p.Lc.fair)
        with Not_found -> None
      else None
    in
    { le_trace; le_trans = p.Lc.trans }
  in
  let pr_verdict = Verdict.map evidence outcome.Lc.verdict in
  tally d pr_verdict;
  {
    pr_name = aut.Autom.a_name;
    pr_verdict;
    pr_time;
    pr_early_step = outcome.Lc.early_failure_step;
  }

type report = {
  design_name : string;
  ctl : ctl_evidence property_result list;
  lc : lc_evidence property_result list;
  mc_time : float;
  lc_time : float;
}

let run_pif ?(early_failure = true) ?(witnesses = false) ?limits d
    (pif : Pif.t) =
  let limits = Option.value limits ~default:d.limits in
  let ctl =
    List.map
      (fun (name, f) ->
        check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
          ~explain:witnesses ~limits d ~name f)
      pif.Pif.p_ctl
  in
  let lc =
    List.map
      (fun name ->
        match Pif.find_automaton pif name with
        | Some aut ->
            check_lc ~fairness:pif.Pif.p_fairness ~early_failure
              ~trace:witnesses ~limits d aut
        | None -> invalid_arg ("run_pif: unknown automaton " ^ name))
      pif.Pif.p_lc
  in
  {
    design_name = d.flat.Ast.m_name;
    ctl;
    lc;
    mc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 ctl;
    lc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 lc;
  }

let stats d = Bdd.stats (Trans.man d.trans)

let snapshot d =
  let reach =
    match d.reach_cache with
    | Some r -> Array.to_list r.Reach.profile
    | None -> []
  in
  Obs.snapshot
    ~phases:(Obs.Timers.to_list d.timers)
    ~reach
    ~relation:(Trans.rel_profile d.trans)
    ~verdicts:(Obs.Tally.to_list d.verdicts)
    (stats d)

(* Parallel property checking: fan the (design × property) pairs of a PIF
   file out over a [Par] domain pool.  Share-nothing — every task rebuilds
   the design (symbol table, relation BDDs, its own manager) inside its
   domain from the flattened AST, so no BDD state crosses domains while
   workers run.  Results are collected by task index, so the report lists
   properties in PIF order regardless of which worker finished first. *)
let run_pif_par ?(early_failure = true) ?(witnesses = false)
    ?(fail_fast = false) ?limits ~jobs d (pif : Pif.t) =
  let open Hsis_par in
  let limits = Option.value limits ~default:d.limits in
  let tasks =
    Array.of_list
      (List.map (fun (name, f) -> `Ctl (name, f)) pif.Pif.p_ctl
      @ List.map
          (fun name ->
            match Pif.find_automaton pif name with
            | Some aut -> `Lc aut
            | None -> invalid_arg ("run_pif_par: unknown automaton " ^ name))
          pif.Pif.p_lc)
  in
  let run_task ~cancelled i =
    (* Bridge pool-level cancellation (fail-fast, sibling failure) into the
       task's own budget so BDD kernels poll it. *)
    let sub = read_flat ~heuristic:d.heuristic d.flat in
    sub.profile_reach <- false;
    sub.simplify_reach <- d.simplify_reach;
    sub.limits <- Par.with_cancelled limits cancelled;
    let res =
      match tasks.(i) with
      | `Ctl (name, f) ->
          `Ctl
            (check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
               ~explain:witnesses sub ~name f)
      | `Lc aut ->
          `Lc
            (check_lc ~fairness:pif.Pif.p_fairness ~early_failure
               ~trace:witnesses sub aut)
    in
    (res, snapshot sub)
  in
  let failed (res, _snap) =
    match res with
    | `Ctl p -> ( match p.pr_verdict with Verdict.Fail _ -> true | _ -> false)
    | `Lc p -> ( match p.pr_verdict with Verdict.Fail _ -> true | _ -> false)
  in
  let stop_when = if fail_fast then Some (fun _ r -> failed r) else None in
  let results, pstats =
    Par.run ~jobs ~limits ?stop_when ~tasks:(Array.length tasks) run_task
  in
  (* A task skipped by cancellation still yields a property result — an
     Inconclusive(Cancelled) verdict, tallied on the parent design so the
     merged verdict counts cover every property. *)
  let skipped name =
    let pr_verdict = Verdict.inconclusive Limits.Cancelled in
    tally d pr_verdict;
    { pr_name = name; pr_verdict; pr_time = 0.0; pr_early_step = None }
  in
  let ctl = ref [] and lc = ref [] and snaps = ref [] in
  Array.iteri
    (fun i task ->
      match (task, results.(i)) with
      | `Ctl (name, _), None -> ctl := skipped name :: !ctl
      | `Lc aut, None -> lc := skipped aut.Autom.a_name :: !lc
      | _, Some (`Ctl p, snap) ->
          ctl := p :: !ctl;
          snaps := snap :: !snaps
      | _, Some (`Lc p, snap) ->
          lc := p :: !lc;
          snaps := snap :: !snaps)
    tasks;
  let ctl = List.rev !ctl and lc = List.rev !lc in
  let merged = Obs.merge (snapshot d :: List.rev !snaps) in
  let merged = { merged with Obs.workers = Par.worker_samples pstats } in
  ( {
      design_name = d.flat.Ast.m_name;
      ctl;
      lc;
      mc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 ctl;
      lc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 lc;
    },
    merged )

(* CLI protocol over a whole report: any definitive failure wins (3), else
   any inconclusive result (4), else pass (0). *)
let report_exit_code r =
  let fold worst results =
    List.fold_left
      (fun acc p ->
        match p.pr_verdict with
        | Verdict.Fail _ -> 3
        | Verdict.Inconclusive _ -> if acc = 3 then acc else 4
        | Verdict.Pass -> acc)
      worst results
  in
  fold (fold 0 r.ctl) r.lc

let simulator d = Hsis_sim.Simulator.create d.net

let bisimulation ?class_cap d =
  Hsis_bisim.Bisim.compute ?class_cap ~limits:d.limits d.trans
    ~reach:(reachable d).Reach.reachable

let minimize d =
  Hsis_bisim.Dontcare.with_reachable d.trans
    ~reach:(reachable d).Reach.reachable

let verdict_cell v =
  match v with
  | Verdict.Pass -> "passed"
  | Verdict.Fail _ -> "FAILED"
  | Verdict.Inconclusive { Verdict.reason; _ } ->
      Printf.sprintf "inconclusive(%s)" (Limits.reason_name reason)

let pp_report fmt r =
  Format.fprintf fmt "design %s:@." r.design_name;
  let line kind p =
    Format.fprintf fmt "  %s %-24s %-22s %6.3fs%s@." kind p.pr_name
      (verdict_cell p.pr_verdict) p.pr_time
      (match p.pr_early_step with
      | Some k -> Printf.sprintf " (early failure at step %d)" k
      | None -> "")
  in
  List.iter (line "ctl") r.ctl;
  List.iter (line "lc ") r.lc

let property_to_json (p : 'ev property_result) =
  let verdict_members =
    match Verdict.to_json p.pr_verdict with
    | Obs.Json.Obj ms -> ms
    | j -> [ ("verdict", j) ]
  in
  Obs.Json.Obj
    (("name", Obs.Json.Str p.pr_name)
     :: verdict_members
    @ [ ("time_s", Obs.Json.Float p.pr_time) ]
    @
    match p.pr_early_step with
    | Some k -> [ ("early_step", Obs.Json.Int k) ]
    | None -> [])

let report_to_json r =
  Obs.Json.Obj
    [
      ("design", Obs.Json.Str r.design_name);
      ("ctl", Obs.Json.List (List.map property_to_json r.ctl));
      ("lc", Obs.Json.List (List.map property_to_json r.lc));
      ("mc_s", Obs.Json.Float r.mc_time);
      ("lc_s", Obs.Json.Float r.lc_time);
      ("exit_code", Obs.Json.Int (report_exit_code r));
    ]

(* ------------------------------------------------------------------ *)
(* Sessions: the explicit unit of design state.  A session pins one read
   design (flattened network, symbol table, relation BDDs, variable order,
   reach cache) under a content hash of its source, so callers that used
   to mutate per-call globals instead open a session, run property checks
   against it — possibly many, with per-run budgets — and close it.  The
   serve daemon's warm cache is a map from [hash] to open sessions; the
   batch CLI is the degenerate open-run-close case. *)

module Session = struct
  type source = Verilog of string | Blifmv of string | Flat of Ast.model

  (* Content hash of the design source (stable across processes): the key
     of the serve-mode session cache.  The source kind is folded in so a
     Verilog text and a BLIF-MV text that happen to be equal do not
     collide. *)
  let hash source =
    let tag, text =
      match source with
      | Verilog s -> ("verilog", s)
      | Blifmv s -> ("blifmv", s)
      | Flat m -> ("flat", Printer.model_to_string m)
    in
    Digest.to_hex (Digest.string (tag ^ "\x00" ^ text))

  type t = {
    s_id : string;
    s_heuristic : Trans.heuristic;
    s_design : design;
    mutable s_hits : int;
    mutable s_closed : bool;
  }

  let open_ ?(heuristic = Trans.Min_width) source =
    let design =
      match source with
      | Verilog s -> read_verilog ~heuristic s
      | Blifmv s -> read_blifmv ~heuristic s
      | Flat m -> read_flat ~heuristic m
    in
    { s_id = hash source; s_heuristic = heuristic; s_design = design;
      s_hits = 0; s_closed = false }

  let id s = s.s_id
  let design s = s.s_design
  let heuristic s = s.s_heuristic
  let hits s = s.s_hits
  let touch s = s.s_hits <- s.s_hits + 1
  let closed s = s.s_closed

  let live_nodes s =
    (Bdd.stats (Trans.man s.s_design.trans)).Obs.arena.Obs.Arena.live

  let close s =
    s.s_closed <- true;
    s.s_design.reach_cache <- None

  let run ?(early_failure = true) ?(witnesses = false) ?(fail_fast = false)
      ?(jobs = 1) ?limits s pif =
    if s.s_closed then invalid_arg "Hsis.Session.run: session is closed";
    if jobs > 1 || fail_fast then
      let r, snap =
        run_pif_par ~early_failure ~witnesses ~fail_fast ?limits ~jobs
          s.s_design pif
      in
      (r, Some snap)
    else (run_pif ~early_failure ~witnesses ?limits s.s_design pif, None)
end
