open Hsis_obs
open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug

type design = {
  flat : Ast.model;
  net : Net.t;
  trans : Trans.t;
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
  timers : Obs.Timers.t;
  mutable reach_cache : Reach.t option;
  mutable profile_reach : bool;
}

let set_reach_profile d b = d.profile_reach <- b

let timed f = Obs.Clock.wall f

let read_flat ?(heuristic = Trans.Min_width) ?verilog_lines ?timers flat =
  let timers =
    match timers with Some t -> t | None -> Obs.Timers.create ()
  in
  let blifmv_lines = Ast.line_count (Printer.model_to_string flat) in
  let (net, trans), read_time =
    timed (fun () ->
        let net, sym =
          Obs.Timers.time timers "order" (fun () ->
              let net = Net.of_model flat in
              let man = Bdd.new_man () in
              (net, Sym.make man net))
        in
        let trans =
          Obs.Timers.time timers "relation" (fun () ->
              let trans = Trans.build ~heuristic sym in
              (* building the relation BDDs is part of "read" in Table 1 *)
              ignore (Trans.parts trans);
              trans)
        in
        (net, trans))
  in
  { flat; net; trans; verilog_lines; blifmv_lines; read_time; timers;
    reach_cache = None; profile_reach = true }

let read_blifmv ?heuristic src =
  let timers = Obs.Timers.create () in
  let ast = Obs.Timers.time timers "parse" (fun () -> Parser.parse src) in
  let flat =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten ast)
  in
  read_flat ?heuristic ~timers flat

let read_verilog ?heuristic src =
  let timers = Obs.Timers.create () in
  let verilog_lines = Ast.line_count src in
  let ast =
    Obs.Timers.time timers "parse" (fun () -> Hsis_verilog.Elab.compile src)
  in
  let flat =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten ast)
  in
  read_flat ?heuristic ~verilog_lines ~timers flat

let reachable d =
  match d.reach_cache with
  | Some r -> r
  | None ->
      let r =
        Obs.Timers.time d.timers "reach" (fun () ->
            Reach.compute ~profile:d.profile_reach d.trans
              (Trans.initial d.trans))
      in
      d.reach_cache <- Some r;
      r

let reached_states d = Reach.count_states d.trans (reachable d).Reach.reachable

type ctl_result = {
  cr_name : string;
  cr_formula : Ctl.t;
  cr_holds : bool;
  cr_time : float;
  cr_early_step : int option;
  cr_explanation : Mcdbg.explanation option;
}

type lc_result = {
  lr_name : string;
  lr_holds : bool;
  lr_time : float;
  lr_early_step : int option;
  lr_trace : Trace.t option;
  lr_trans : Trans.t;
}

let check_ctl ?(fairness = []) ?(early_failure = true) ?(explain = false) d
    ~name formula =
  let reach = reachable d in
  let (outcome, compiled), cr_time =
    timed (fun () ->
        let compiled = Fair.compile_all d.trans fairness in
        (Mc.check ~fairness:compiled ~early_failure ~reach d.trans formula,
         compiled))
  in
  Obs.Timers.add d.timers "mc" cr_time;
  let cr_explanation =
    if explain && not outcome.Mc.holds then begin
      let ctx = Mcdbg.make ~fairness:compiled d.trans ~reach in
      Mcdbg.explain_failure ctx formula outcome
    end
    else None
  in
  {
    cr_name = name;
    cr_formula = formula;
    cr_holds = outcome.Mc.holds;
    cr_time;
    cr_early_step = outcome.Mc.early_failure_step;
    cr_explanation;
  }

let check_lc ?(fairness = []) ?(early_failure = true) ?(trace = true) d aut =
  let outcome, lr_time =
    timed (fun () -> Lc.check ~fairness ~early_failure d.flat aut)
  in
  Obs.Timers.add d.timers "lc" lr_time;
  let lr_trace =
    if trace && not outcome.Lc.holds then
      try
        Some
          (Trace.fair_lasso outcome.Lc.env ~reach:outcome.Lc.reach
             ~fair:outcome.Lc.fair)
      with Not_found -> None
    else None
  in
  {
    lr_name = aut.Autom.a_name;
    lr_holds = outcome.Lc.holds;
    lr_time;
    lr_early_step = outcome.Lc.early_failure_step;
    lr_trace;
    lr_trans = outcome.Lc.trans;
  }

type report = {
  design_name : string;
  ctl : ctl_result list;
  lc : lc_result list;
  mc_time : float;
  lc_time : float;
}

let run_pif ?(early_failure = true) ?(witnesses = false) d (pif : Pif.t) =
  let ctl =
    List.map
      (fun (name, f) ->
        check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
          ~explain:witnesses d ~name f)
      pif.Pif.p_ctl
  in
  let lc =
    List.map
      (fun name ->
        match Pif.find_automaton pif name with
        | Some aut ->
            check_lc ~fairness:pif.Pif.p_fairness ~early_failure
              ~trace:witnesses d aut
        | None -> invalid_arg ("run_pif: unknown automaton " ^ name))
      pif.Pif.p_lc
  in
  {
    design_name = d.flat.Ast.m_name;
    ctl;
    lc;
    mc_time = List.fold_left (fun acc r -> acc +. r.cr_time) 0.0 ctl;
    lc_time = List.fold_left (fun acc r -> acc +. r.lr_time) 0.0 lc;
  }

let simulator d = Hsis_sim.Simulator.create d.net

let bisimulation ?class_cap d =
  Hsis_bisim.Bisim.compute ?class_cap d.trans
    ~reach:(reachable d).Reach.reachable

let minimize d =
  Hsis_bisim.Dontcare.with_reachable d.trans
    ~reach:(reachable d).Reach.reachable

let stats d = Bdd.stats (Trans.man d.trans)

let snapshot d =
  let reach =
    match d.reach_cache with
    | Some r -> Array.to_list r.Reach.profile
    | None -> []
  in
  Obs.snapshot
    ~phases:(Obs.Timers.to_list d.timers)
    ~reach
    ~relation:(Trans.rel_profile d.trans)
    (stats d)

let pp_report fmt r =
  Format.fprintf fmt "design %s:@." r.design_name;
  List.iter
    (fun c ->
      Format.fprintf fmt "  ctl %-24s %-6s %6.3fs%s@." c.cr_name
        (if c.cr_holds then "passed" else "FAILED")
        c.cr_time
        (match c.cr_early_step with
        | Some k -> Printf.sprintf " (early failure at step %d)" k
        | None -> ""))
    r.ctl;
  List.iter
    (fun l ->
      Format.fprintf fmt "  lc  %-24s %-6s %6.3fs%s@." l.lr_name
        (if l.lr_holds then "passed" else "FAILED")
        l.lr_time
        (match l.lr_early_step with
        | Some k -> Printf.sprintf " (early failure at step %d)" k
        | None -> ""))
    r.lc
