open Hsis_obs
open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug
open Hsis_limits

type design = {
  flat : Ast.model;
  prov : Flatten.provenance;
  net : Net.t;
  trans : Trans.t;
  heuristic : Trans.heuristic;
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
  timers : Obs.Timers.t;
  verdicts : Obs.Tally.t;
  mutable limits : Limits.t;
  mutable reach_cache : Reach.t option;
  mutable reach_order_rev : int;
  mutable profile_reach : bool;
  mutable simplify_reach : bool;
  mutable shared_cache : shared_cell option;
}

(* The exported form of a design, built once on the coordinator and
   rehydrated into fresh per-domain managers by [design_of_shared].  Only
   immutable plain data and the snapshot int arrays cross domains; no BDD
   handle ever does.  [sd_roots] directly-constructed relation parts head
   the snapshot roots — under [Iso_shared] that is one component per
   master, the permuted copies travelling as renamings inside [sd_shape] —
   followed (when the coordinator's reach cache was conclusive) by the
   reachable set and its [sd_rings] onion rings. *)
and shared_design = {
  sd_flat : Ast.model;
  sd_prov : Flatten.provenance;
  sd_net : Net.t;
  sd_heuristic : Trans.heuristic;
  sd_shape : Trans.shared;
  sd_roots : int;
  sd_snapshot : Bdd.snapshot;
  sd_rings : int;
  sd_reach_steps : int;
  sd_simplify : bool;
  sd_verilog_lines : int option;
  sd_blifmv_lines : int;
}

(* A cached payload is keyed to the coordinator manager's reorder
   generation: sifting changes the exported order, and a stale snapshot
   would force the slow per-node re-permute path on every import. *)
and shared_cell = { sc_payload : shared_design; sc_order_rev : int }

let set_reach_profile d b = d.profile_reach <- b
let set_reach_simplify d b = d.simplify_reach <- b
let set_limits d l = d.limits <- l
let limits d = d.limits
let set_kernel_jobs d n = Bdd.set_kernel_jobs (Trans.man d.trans) n
let kernel_jobs d = Bdd.kernel_jobs (Trans.man d.trans)

let timed f = Obs.Clock.wall f

let read_flat ?(heuristic = Trans.Min_width) ?(strategy = Trans.Partitioned)
    ?kernel_jobs ?(prov = []) ?verilog_lines ?timers flat =
  let timers =
    match timers with Some t -> t | None -> Obs.Timers.create ()
  in
  let blifmv_lines = Ast.line_count (Printer.model_to_string flat) in
  let (net, trans), read_time =
    timed (fun () ->
        let net, sym =
          Obs.Timers.time timers "order" (fun () ->
              let net = Net.of_model flat in
              let man = Bdd.new_man ?kernel_jobs () in
              (net, Sym.make man net))
        in
        let trans =
          Obs.Timers.time timers "relation" (fun () ->
              (* building the relation BDDs is part of "read" in Table 1;
                 under the iso strategy renamed copies stay pending here and
                 materialize on first image/preimage touch *)
              Trans.build ~heuristic ~strategy ~prov sym)
        in
        (net, trans))
  in
  { flat; prov; net; trans; heuristic; verilog_lines; blifmv_lines; read_time;
    timers; verdicts = Obs.Tally.create (); limits = Limits.none;
    reach_cache = None; reach_order_rev = 0; profile_reach = true;
    simplify_reach = false; shared_cache = None }

let read_blifmv ?heuristic ?strategy ?kernel_jobs src =
  let timers = Obs.Timers.create () in
  let ast = Obs.Timers.time timers "parse" (fun () -> Parser.parse src) in
  let flat, prov =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten_prov ast)
  in
  read_flat ?heuristic ?strategy ?kernel_jobs ~prov ~timers flat

let read_verilog ?heuristic ?strategy ?kernel_jobs src =
  let timers = Obs.Timers.create () in
  let verilog_lines = Ast.line_count src in
  let ast =
    Obs.Timers.time timers "parse" (fun () -> Hsis_verilog.Elab.compile src)
  in
  let flat, prov =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten_prov ast)
  in
  read_flat ?heuristic ?strategy ?kernel_jobs ~prov ~verilog_lines ~timers flat

(* Reorder generation of the design's manager: the reach cache is only
   valid for the variable order it was computed under, so it carries the
   sifting-run count at fill time and is dropped when that moves (e.g. a
   later property check triggering auto-reorder, or an explicit
   [Bdd.sift] between jobs of a warm serve session). *)
let reorder_runs d =
  (Bdd.stats (Trans.man d.trans)).Obs.reorder.Obs.Reorder.runs

let reach_cache_valid d =
  d.reach_cache <> None && d.reach_order_rev = reorder_runs d

(* Only conclusive explorations are cached: a run truncated by a budget is
   returned to the caller but recomputed on the next call (the absolute
   deadline makes retries after expiry fail fast rather than loop). *)
let reachable ?limits d =
  let limits = Option.value limits ~default:d.limits in
  if d.reach_cache <> None && not (reach_cache_valid d) then
    d.reach_cache <- None;
  match d.reach_cache with
  | Some r -> r
  | None ->
      let r =
        Obs.Timers.time d.timers "reach" (fun () ->
            Reach.compute ~limits ~profile:d.profile_reach
              ~simplify:d.simplify_reach d.trans (Trans.initial d.trans))
      in
      if Verdict.conclusive r.Reach.verdict then begin
        (* stamp with the order as of completion: sifting may have run
           inside the fixpoint itself *)
        d.reach_cache <- Some r;
        d.reach_order_rev <- reorder_runs d
      end;
      r

let reached_states d = Reach.count_states d.trans (reachable d).Reach.reachable

type ctl_evidence = {
  ce_explanation : Mcdbg.explanation option;
}

type lc_evidence = {
  le_trace : Trace.t option;
  le_trans : Trans.t;
}

type 'ev property_result = {
  pr_name : string;
  pr_verdict : 'ev Verdict.t;
  pr_time : float;
  pr_early_step : int option;
}

let tally d v = Obs.Tally.incr d.verdicts (Verdict.name v)

let check_ctl ?(fairness = []) ?(early_failure = true) ?(explain = false)
    ?limits d ~name formula =
  let limits = Option.value limits ~default:d.limits in
  let reach = reachable ~limits d in
  let engine, pr_time =
    timed (fun () ->
        match
          Bdd.with_limits (Trans.man d.trans) limits (fun () ->
              Fair.compile_all d.trans fairness)
        with
        | exception Limits.Interrupted r -> Error r
        | compiled ->
            Ok
              ( compiled,
                Mc.check ~fairness:compiled ~early_failure ~reach ~limits
                  d.trans formula ))
  in
  Obs.Timers.add d.timers "mc" pr_time;
  let pr_verdict, pr_early_step =
    match engine with
    | Error r -> (Verdict.inconclusive r, None)
    | Ok (compiled, outcome) ->
        let evidence _fail_init =
          {
            ce_explanation =
              (if explain then begin
                 let ctx = Mcdbg.make ~fairness:compiled d.trans ~reach in
                 Mcdbg.explain_failure ctx formula outcome
               end
               else None);
          }
        in
        ( Verdict.map evidence outcome.Mc.verdict,
          outcome.Mc.early_failure_step )
  in
  tally d pr_verdict;
  { pr_name = name; pr_verdict; pr_time; pr_early_step }

let check_lc ?(fairness = []) ?(early_failure = true) ?(trace = true) ?limits
    d aut =
  let limits = Option.value limits ~default:d.limits in
  let outcome, pr_time =
    timed (fun () -> Lc.check ~fairness ~early_failure ~limits d.flat aut)
  in
  Obs.Timers.add d.timers "lc" pr_time;
  let evidence _fair =
    (* A [Fail] verdict implies the product was built. *)
    let p = Option.get outcome.Lc.product in
    let le_trace =
      if trace then
        try
          Some
            (Trace.fair_lasso p.Lc.env ~reach:p.Lc.reach ~fair:p.Lc.fair)
        with Not_found -> None
      else None
    in
    { le_trace; le_trans = p.Lc.trans }
  in
  let pr_verdict = Verdict.map evidence outcome.Lc.verdict in
  tally d pr_verdict;
  {
    pr_name = aut.Autom.a_name;
    pr_verdict;
    pr_time;
    pr_early_step = outcome.Lc.early_failure_step;
  }

type report = {
  design_name : string;
  ctl : ctl_evidence property_result list;
  lc : lc_evidence property_result list;
  mc_time : float;
  lc_time : float;
}

let run_pif ?(early_failure = true) ?(witnesses = false) ?limits d
    (pif : Pif.t) =
  let limits = Option.value limits ~default:d.limits in
  let ctl =
    List.map
      (fun (name, f) ->
        check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
          ~explain:witnesses ~limits d ~name f)
      pif.Pif.p_ctl
  in
  let lc =
    List.map
      (fun name ->
        match Pif.find_automaton pif name with
        | Some aut ->
            check_lc ~fairness:pif.Pif.p_fairness ~early_failure
              ~trace:witnesses ~limits d aut
        | None -> invalid_arg ("run_pif: unknown automaton " ^ name))
      pif.Pif.p_lc
  in
  {
    design_name = d.flat.Ast.m_name;
    ctl;
    lc;
    mc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 ctl;
    lc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 lc;
  }

let stats d = Bdd.stats (Trans.man d.trans)

let snapshot d =
  let reach =
    match d.reach_cache with
    | Some r -> Array.to_list r.Reach.profile
    | None -> []
  in
  Obs.snapshot
    ~phases:(Obs.Timers.to_list d.timers)
    ~reach
    ~relation:(Trans.rel_profile d.trans)
    ~tr:(Trans.tr_profile d.trans)
    ~verdicts:(Obs.Tally.to_list d.verdicts)
    (stats d)

(* ------------------------------------------------------------------ *)
(* Sharing a built design across domains.  [share_design] runs on the
   coordinator: it captures the relation's manager-independent shape
   (schedules, supports) and exports the relation parts — plus the
   conclusive reach set and its onion rings when cached — as one BDD
   snapshot.  [design_of_shared] runs inside a worker domain: fresh
   manager, same symbol table (Sym.make on the shared net is
   deterministic, so variable indices line up), one linear-pass import,
   and a pre-filled reach cache.  Workers thus skip the two expensive
   coordinator phases: Rel.table_rel/latch_rel construction and the
   reachability fixpoint. *)

let share_design d =
  let fresh () =
    (* Only the directly-constructed parts are exported; permuted copies
       travel as their renamings inside the shape and are re-materialized
       on import, so an N-instance iso build ships one component. *)
    let roots = Trans.shared_roots d.trans in
    let reach_roots, rings, steps =
      if reach_cache_valid d then
        match d.reach_cache with
        | Some r ->
            ( r.Reach.reachable :: Array.to_list r.Reach.rings,
              Array.length r.Reach.rings,
              r.Reach.steps )
        | None -> ([], 0, 0)
      else ([], 0, 0)
    in
    let snapshot = Bdd.export (Trans.man d.trans) (roots @ reach_roots) in
    let sd =
      {
        sd_flat = d.flat;
        sd_prov = d.prov;
        sd_net = d.net;
        sd_heuristic = d.heuristic;
        sd_shape = Trans.share d.trans;
        sd_roots = List.length roots;
        sd_snapshot = snapshot;
        sd_rings = rings;
        sd_reach_steps = steps;
        sd_simplify = d.simplify_reach;
        sd_verilog_lines = d.verilog_lines;
        sd_blifmv_lines = d.blifmv_lines;
      }
    in
    d.shared_cache <- Some { sc_payload = sd; sc_order_rev = reorder_runs d };
    sd
  in
  match d.shared_cache with
  | Some { sc_payload; sc_order_rev }
    when sc_order_rev = reorder_runs d
         (* re-export when a reach set has become available since, or when
            the evaluation strategy was flipped after the capture *)
         && (sc_payload.sd_rings > 0 || not (reach_cache_valid d))
         && Trans.shared_strategy sc_payload.sd_shape = Trans.strategy d.trans
    ->
      sc_payload
  | _ -> fresh ()

let design_of_shared sd =
  let (net, trans, reach), read_time =
    timed (fun () ->
        let man = Bdd.new_man () in
        let sym = Sym.make man sd.sd_net in
        let roots = Array.of_list (Bdd.import man sd.sd_snapshot) in
        let trans =
          Trans.of_shared sym sd.sd_shape ~roots:(Array.sub roots 0 sd.sd_roots)
        in
        let reach =
          if sd.sd_rings = 0 then None
          else
            Some
              {
                Reach.reachable = roots.(sd.sd_roots);
                rings = Array.sub roots (sd.sd_roots + 1) sd.sd_rings;
                steps = sd.sd_reach_steps;
                verdict = Verdict.Pass;
                profile = [||];
              }
        in
        (sd.sd_net, trans, reach))
  in
  let d =
    { flat = sd.sd_flat; prov = sd.sd_prov; net; trans;
      heuristic = sd.sd_heuristic;
      verilog_lines = sd.sd_verilog_lines; blifmv_lines = sd.sd_blifmv_lines;
      read_time; timers = Obs.Timers.create ();
      verdicts = Obs.Tally.create (); limits = Limits.none;
      reach_cache = reach; reach_order_rev = 0; profile_reach = false;
      simplify_reach = sd.sd_simplify; shared_cache = None }
  in
  d.reach_order_rev <- reorder_runs d;
  d

(* Parallel property checking: fan the (design × property) pairs of a PIF
   file out over a [Par] domain pool.  Two modes:

   - shared-work (default): the coordinator builds the relation — and,
     when any CTL property will need it, the reachability fixpoint — once,
     exports them as a [Bdd.snapshot], and every task rehydrates into a
     fresh manager inside its domain ([design_of_shared]), skipping the
     per-task relation build and reach fixpoint entirely;
   - share-nothing ([~share:false]): every task rebuilds the design from
     the flattened AST, repeating that work per property (kept for
     comparison benchmarks).

   Either way no BDD state crosses domains while workers run — snapshots
   are plain int arrays.  Results are collected by task index, so the
   report lists properties in PIF order regardless of which worker
   finished first. *)
let run_pif_par ?(early_failure = true) ?(witnesses = false)
    ?(fail_fast = false) ?(share = true) ?limits ~jobs d (pif : Pif.t) =
  let open Hsis_par in
  let limits = Option.value limits ~default:d.limits in
  let tasks =
    Array.of_list
      (List.map (fun (name, f) -> `Ctl (name, f)) pif.Pif.p_ctl
      @ List.map
          (fun name ->
            match Pif.find_automaton pif name with
            | Some aut -> `Lc aut
            | None -> invalid_arg ("run_pif_par: unknown automaton " ^ name))
          pif.Pif.p_lc)
  in
  let shared =
    if not share || jobs <= 1 then None
    else begin
      (* The reach fixpoint is per-design work every CTL task repeats:
         run it once here so the export ships the result.  A budget
         interrupt just leaves the cache unfilled — workers then compute
         reach themselves under their own budgets, as before. *)
      if pif.Pif.p_ctl <> [] then ignore (reachable ~limits d);
      Some (share_design d)
    end
  in
  (* One rehydrated design per worker domain, not per task: the first
     task a worker runs imports the snapshot, later tasks on the same
     worker reuse the warm manager — computed caches included, so
     neighbouring properties share fixpoint iterates just as they do
     sequentially.  The key is fresh per call, so nothing leaks between
     runs; worker domains die with the pool. *)
  let worker_design = Domain.DLS.new_key (fun () -> None) in
  let check_on ~limits sub = function
    | `Ctl (name, f) ->
        `Ctl
          (check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
             ~explain:witnesses ~limits sub ~name f)
    | `Lc aut ->
        `Lc
          (check_lc ~fairness:pif.Pif.p_fairness ~early_failure
             ~trace:witnesses ~limits sub aut)
  in
  let zero_snap = Obs.merge [] in
  let run_task ~cancelled i =
    (* Bridge pool-level cancellation (fail-fast, sibling failure) into the
       task's own budget so BDD kernels poll it. *)
    let sub, before =
      match shared with
      | Some sd -> (
          match Domain.DLS.get worker_design with
          | Some (sd', sub) when sd' == sd ->
              (* warm: count only this task's increments, so the merged
                 document still sums to the run's totals *)
              (sub, Some (snapshot sub))
          | _ ->
              let sub = design_of_shared sd in
              Domain.DLS.set worker_design (Some (sd, sub));
              (sub, None))
      | None ->
          ( read_flat ~heuristic:d.heuristic
              ~strategy:(Trans.strategy d.trans) ~prov:d.prov d.flat,
            None )
    in
    sub.profile_reach <- false;
    sub.simplify_reach <- d.simplify_reach;
    let res = check_on ~limits:(Par.with_cancelled limits cancelled) sub tasks.(i) in
    let snap =
      match before with
      | Some b -> Obs.diff b (snapshot sub)
      | None -> snapshot sub
    in
    (res, snap)
  in
  let failed (res, _snap) =
    match res with
    | `Ctl p -> ( match p.pr_verdict with Verdict.Fail _ -> true | _ -> false)
    | `Lc p -> ( match p.pr_verdict with Verdict.Fail _ -> true | _ -> false)
  in
  let results, worker_samples =
    if jobs <= 1 then begin
      (* A single worker cannot overlap anything: run the tasks in order
         on the coordinator design itself — no pool, no export, no extra
         manager, so -j 1 is a true no-regression against {!run_pif}
         (fail-fast still stops at the first definitive failure; skipped
         tasks come back cancelled below).  Per-task snapshots are zero:
         the parent design's own snapshot already carries the work. *)
      let n = Array.length tasks in
      let results = Array.make n None in
      let t0 = Obs.Clock.now () in
      let ran = ref 0 in
      (try
         for i = 0 to n - 1 do
           let res = check_on ~limits d tasks.(i) in
           incr ran;
           results.(i) <- Some (res, zero_snap);
           if fail_fast && failed (res, zero_snap) then raise Exit
         done
       with Exit -> ());
      (results, [ { Obs.w_tasks = !ran; w_time = Obs.Clock.now () -. t0 } ])
    end
    else begin
      let stop_when = if fail_fast then Some (fun _ r -> failed r) else None in
      let results, pstats =
        Par.run ~jobs ~limits ?stop_when ~tasks:(Array.length tasks) run_task
      in
      (results, Par.worker_samples pstats)
    end
  in
  (* A task skipped by cancellation still yields a property result — an
     Inconclusive(Cancelled) verdict, tallied on the parent design so the
     merged verdict counts cover every property. *)
  let skipped name =
    let pr_verdict = Verdict.inconclusive Limits.Cancelled in
    tally d pr_verdict;
    { pr_name = name; pr_verdict; pr_time = 0.0; pr_early_step = None }
  in
  let ctl = ref [] and lc = ref [] and snaps = ref [] in
  Array.iteri
    (fun i task ->
      match (task, results.(i)) with
      | `Ctl (name, _), None -> ctl := skipped name :: !ctl
      | `Lc aut, None -> lc := skipped aut.Autom.a_name :: !lc
      | _, Some (`Ctl p, snap) ->
          ctl := p :: !ctl;
          snaps := snap :: !snaps
      | _, Some (`Lc p, snap) ->
          lc := p :: !lc;
          snaps := snap :: !snaps)
    tasks;
  let ctl = List.rev !ctl and lc = List.rev !lc in
  let merged = Obs.merge (snapshot d :: List.rev !snaps) in
  let merged = { merged with Obs.workers = worker_samples } in
  ( {
      design_name = d.flat.Ast.m_name;
      ctl;
      lc;
      mc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 ctl;
      lc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 lc;
    },
    merged )

(* CLI protocol over a whole report: any definitive failure wins (3), else
   any inconclusive result (4), else pass (0). *)
let report_exit_code r =
  let fold worst results =
    List.fold_left
      (fun acc p ->
        match p.pr_verdict with
        | Verdict.Fail _ -> 3
        | Verdict.Inconclusive _ -> if acc = 3 then acc else 4
        | Verdict.Pass -> acc)
      worst results
  in
  fold (fold 0 r.ctl) r.lc

let simulator d = Hsis_sim.Simulator.create d.net

let bisimulation ?class_cap d =
  Hsis_bisim.Bisim.compute ?class_cap ~limits:d.limits d.trans
    ~reach:(reachable d).Reach.reachable

let minimize d =
  Hsis_bisim.Dontcare.with_reachable d.trans
    ~reach:(reachable d).Reach.reachable

let verdict_cell v =
  match v with
  | Verdict.Pass -> "passed"
  | Verdict.Fail _ -> "FAILED"
  | Verdict.Inconclusive { Verdict.reason; _ } ->
      Printf.sprintf "inconclusive(%s)" (Limits.reason_name reason)

let pp_report fmt r =
  Format.fprintf fmt "design %s:@." r.design_name;
  let line kind p =
    Format.fprintf fmt "  %s %-24s %-22s %6.3fs%s@." kind p.pr_name
      (verdict_cell p.pr_verdict) p.pr_time
      (match p.pr_early_step with
      | Some k -> Printf.sprintf " (early failure at step %d)" k
      | None -> "")
  in
  List.iter (line "ctl") r.ctl;
  List.iter (line "lc ") r.lc

let property_to_json (p : 'ev property_result) =
  let verdict_members =
    match Verdict.to_json p.pr_verdict with
    | Obs.Json.Obj ms -> ms
    | j -> [ ("verdict", j) ]
  in
  Obs.Json.Obj
    (("name", Obs.Json.Str p.pr_name)
     :: verdict_members
    @ [ ("time_s", Obs.Json.Float p.pr_time) ]
    @
    match p.pr_early_step with
    | Some k -> [ ("early_step", Obs.Json.Int k) ]
    | None -> [])

let report_to_json r =
  Obs.Json.Obj
    [
      ("design", Obs.Json.Str r.design_name);
      ("ctl", Obs.Json.List (List.map property_to_json r.ctl));
      ("lc", Obs.Json.List (List.map property_to_json r.lc));
      ("mc_s", Obs.Json.Float r.mc_time);
      ("lc_s", Obs.Json.Float r.lc_time);
      ("exit_code", Obs.Json.Int (report_exit_code r));
    ]

(* ------------------------------------------------------------------ *)
(* Sessions: the explicit unit of design state.  A session pins one read
   design (flattened network, symbol table, relation BDDs, variable order,
   reach cache) under a content hash of its source, so callers that used
   to mutate per-call globals instead open a session, run property checks
   against it — possibly many, with per-run budgets — and close it.  The
   serve daemon's warm cache is a map from [hash] to open sessions; the
   batch CLI is the degenerate open-run-close case. *)

module Session = struct
  type source = Verilog of string | Blifmv of string | Flat of Ast.model

  (* Content hash of the design source (stable across processes): the key
     of the serve-mode session cache.  The source kind is folded in so a
     Verilog text and a BLIF-MV text that happen to be equal do not
     collide. *)
  let hash source =
    let tag, text =
      match source with
      | Verilog s -> ("verilog", s)
      | Blifmv s -> ("blifmv", s)
      | Flat m -> ("flat", Printer.model_to_string m)
    in
    Digest.to_hex (Digest.string (tag ^ "\x00" ^ text))

  type t = {
    s_id : string;
    s_heuristic : Trans.heuristic;
    s_design : design;
    mutable s_hits : int;
    mutable s_closed : bool;
  }

  let open_ ?(heuristic = Trans.Min_width) ?(tr = Trans.Partitioned)
      ?kernel_jobs source =
    let design =
      match source with
      | Verilog s -> read_verilog ~heuristic ~strategy:tr ?kernel_jobs s
      | Blifmv s -> read_blifmv ~heuristic ~strategy:tr ?kernel_jobs s
      | Flat m -> read_flat ~heuristic ~strategy:tr ?kernel_jobs m
    in
    { s_id = hash source; s_heuristic = heuristic; s_design = design;
      s_hits = 0; s_closed = false }

  let id s = s.s_id
  let design s = s.s_design
  let heuristic s = s.s_heuristic
  let tr s = Trans.strategy s.s_design.trans
  let hits s = s.s_hits
  let touch s = s.s_hits <- s.s_hits + 1
  let closed s = s.s_closed

  let live_nodes s =
    (Bdd.stats (Trans.man s.s_design.trans)).Obs.arena.Obs.Arena.live

  let snapshot_bytes s =
    match s.s_design.shared_cache with
    | Some { sc_payload; _ } -> Bdd.snapshot_bytes sc_payload.sd_snapshot
    | None -> 0

  let close s =
    s.s_closed <- true;
    s.s_design.reach_cache <- None;
    s.s_design.shared_cache <- None

  let run ?(early_failure = true) ?(witnesses = false) ?(fail_fast = false)
      ?(jobs = 1) ?limits ?tr ?kernel_jobs:kj s pif =
    if s.s_closed then invalid_arg "Hsis.Session.run: session is closed";
    (* A per-run [tr] (or [kernel_jobs]) flips the evaluation path for the
       duration of the run, then restores the session's resident setting.
       Construction sharing is fixed at open time; runs are serialized per
       session, so the flip cannot race another run. *)
    let resident = Trans.strategy s.s_design.trans in
    let resident_kj = kernel_jobs s.s_design in
    (match tr with
    | Some strat -> Trans.set_strategy s.s_design.trans strat
    | None -> ());
    (match kj with
    | Some n -> set_kernel_jobs s.s_design n
    | None -> ());
    Fun.protect
      ~finally:(fun () ->
        Trans.set_strategy s.s_design.trans resident;
        set_kernel_jobs s.s_design resident_kj)
      (fun () ->
        if jobs > 1 || fail_fast then
          let r, snap =
            run_pif_par ~early_failure ~witnesses ~fail_fast ?limits ~jobs
              s.s_design pif
          in
          (r, Some snap)
        else (run_pif ~early_failure ~witnesses ?limits s.s_design pif, None))
end
