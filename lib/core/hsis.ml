open Hsis_obs
open Hsis_bdd
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug
open Hsis_limits

type design = {
  flat : Ast.model;
  net : Net.t;
  trans : Trans.t;
  heuristic : Trans.heuristic;
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
  timers : Obs.Timers.t;
  verdicts : Obs.Tally.t;
  mutable limits : Limits.t;
  mutable reach_cache : Reach.t option;
  mutable profile_reach : bool;
  mutable simplify_reach : bool;
}

let set_reach_profile d b = d.profile_reach <- b
let set_reach_simplify d b = d.simplify_reach <- b
let set_limits d l = d.limits <- l
let limits d = d.limits

let timed f = Obs.Clock.wall f

let read_flat ?(heuristic = Trans.Min_width) ?verilog_lines ?timers flat =
  let timers =
    match timers with Some t -> t | None -> Obs.Timers.create ()
  in
  let blifmv_lines = Ast.line_count (Printer.model_to_string flat) in
  let (net, trans), read_time =
    timed (fun () ->
        let net, sym =
          Obs.Timers.time timers "order" (fun () ->
              let net = Net.of_model flat in
              let man = Bdd.new_man () in
              (net, Sym.make man net))
        in
        let trans =
          Obs.Timers.time timers "relation" (fun () ->
              let trans = Trans.build ~heuristic sym in
              (* building the relation BDDs is part of "read" in Table 1 *)
              ignore (Trans.parts trans);
              trans)
        in
        (net, trans))
  in
  { flat; net; trans; heuristic; verilog_lines; blifmv_lines; read_time;
    timers; verdicts = Obs.Tally.create (); limits = Limits.none;
    reach_cache = None; profile_reach = true; simplify_reach = false }

let read_blifmv ?heuristic src =
  let timers = Obs.Timers.create () in
  let ast = Obs.Timers.time timers "parse" (fun () -> Parser.parse src) in
  let flat =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten ast)
  in
  read_flat ?heuristic ~timers flat

let read_verilog ?heuristic src =
  let timers = Obs.Timers.create () in
  let verilog_lines = Ast.line_count src in
  let ast =
    Obs.Timers.time timers "parse" (fun () -> Hsis_verilog.Elab.compile src)
  in
  let flat =
    Obs.Timers.time timers "flatten" (fun () -> Flatten.flatten ast)
  in
  read_flat ?heuristic ~verilog_lines ~timers flat

(* Only conclusive explorations are cached: a run truncated by a budget is
   returned to the caller but recomputed on the next call (the absolute
   deadline makes retries after expiry fail fast rather than loop). *)
let reachable d =
  match d.reach_cache with
  | Some r -> r
  | None ->
      let r =
        Obs.Timers.time d.timers "reach" (fun () ->
            Reach.compute ~limits:d.limits ~profile:d.profile_reach
              ~simplify:d.simplify_reach d.trans (Trans.initial d.trans))
      in
      if Verdict.conclusive r.Reach.verdict then d.reach_cache <- Some r;
      r

let reached_states d = Reach.count_states d.trans (reachable d).Reach.reachable

type ctl_evidence = {
  ce_explanation : Mcdbg.explanation option;
}

type lc_evidence = {
  le_trace : Trace.t option;
  le_trans : Trans.t;
}

type 'ev property_result = {
  pr_name : string;
  pr_verdict : 'ev Verdict.t;
  pr_time : float;
  pr_early_step : int option;
}

let tally d v = Obs.Tally.incr d.verdicts (Verdict.name v)

let check_ctl ?(fairness = []) ?(early_failure = true) ?(explain = false) d
    ~name formula =
  let reach = reachable d in
  let engine, pr_time =
    timed (fun () ->
        match
          Bdd.with_limits (Trans.man d.trans) d.limits (fun () ->
              Fair.compile_all d.trans fairness)
        with
        | exception Limits.Interrupted r -> Error r
        | compiled ->
            Ok
              ( compiled,
                Mc.check ~fairness:compiled ~early_failure ~reach
                  ~limits:d.limits d.trans formula ))
  in
  Obs.Timers.add d.timers "mc" pr_time;
  let pr_verdict, pr_early_step =
    match engine with
    | Error r -> (Verdict.inconclusive r, None)
    | Ok (compiled, outcome) ->
        let evidence _fail_init =
          {
            ce_explanation =
              (if explain then begin
                 let ctx = Mcdbg.make ~fairness:compiled d.trans ~reach in
                 Mcdbg.explain_failure ctx formula outcome
               end
               else None);
          }
        in
        ( Verdict.map evidence outcome.Mc.verdict,
          outcome.Mc.early_failure_step )
  in
  tally d pr_verdict;
  { pr_name = name; pr_verdict; pr_time; pr_early_step }

let check_lc ?(fairness = []) ?(early_failure = true) ?(trace = true) d aut =
  let outcome, pr_time =
    timed (fun () ->
        Lc.check ~fairness ~early_failure ~limits:d.limits d.flat aut)
  in
  Obs.Timers.add d.timers "lc" pr_time;
  let evidence _fair =
    (* A [Fail] verdict implies the product was built. *)
    let p = Option.get outcome.Lc.product in
    let le_trace =
      if trace then
        try
          Some
            (Trace.fair_lasso p.Lc.env ~reach:p.Lc.reach ~fair:p.Lc.fair)
        with Not_found -> None
      else None
    in
    { le_trace; le_trans = p.Lc.trans }
  in
  let pr_verdict = Verdict.map evidence outcome.Lc.verdict in
  tally d pr_verdict;
  {
    pr_name = aut.Autom.a_name;
    pr_verdict;
    pr_time;
    pr_early_step = outcome.Lc.early_failure_step;
  }

type report = {
  design_name : string;
  ctl : ctl_evidence property_result list;
  lc : lc_evidence property_result list;
  mc_time : float;
  lc_time : float;
}

let run_pif ?(early_failure = true) ?(witnesses = false) d (pif : Pif.t) =
  let ctl =
    List.map
      (fun (name, f) ->
        check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
          ~explain:witnesses d ~name f)
      pif.Pif.p_ctl
  in
  let lc =
    List.map
      (fun name ->
        match Pif.find_automaton pif name with
        | Some aut ->
            check_lc ~fairness:pif.Pif.p_fairness ~early_failure
              ~trace:witnesses d aut
        | None -> invalid_arg ("run_pif: unknown automaton " ^ name))
      pif.Pif.p_lc
  in
  {
    design_name = d.flat.Ast.m_name;
    ctl;
    lc;
    mc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 ctl;
    lc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 lc;
  }

let stats d = Bdd.stats (Trans.man d.trans)

let snapshot d =
  let reach =
    match d.reach_cache with
    | Some r -> Array.to_list r.Reach.profile
    | None -> []
  in
  Obs.snapshot
    ~phases:(Obs.Timers.to_list d.timers)
    ~reach
    ~relation:(Trans.rel_profile d.trans)
    ~verdicts:(Obs.Tally.to_list d.verdicts)
    (stats d)

(* Parallel property checking: fan the (design × property) pairs of a PIF
   file out over a [Par] domain pool.  Share-nothing — every task rebuilds
   the design (symbol table, relation BDDs, its own manager) inside its
   domain from the flattened AST, so no BDD state crosses domains while
   workers run.  Results are collected by task index, so the report lists
   properties in PIF order regardless of which worker finished first. *)
let run_pif_par ?(early_failure = true) ?(witnesses = false)
    ?(fail_fast = false) ~jobs d (pif : Pif.t) =
  let open Hsis_par in
  let tasks =
    Array.of_list
      (List.map (fun (name, f) -> `Ctl (name, f)) pif.Pif.p_ctl
      @ List.map
          (fun name ->
            match Pif.find_automaton pif name with
            | Some aut -> `Lc aut
            | None -> invalid_arg ("run_pif_par: unknown automaton " ^ name))
          pif.Pif.p_lc)
  in
  let run_task ~cancelled i =
    (* Bridge pool-level cancellation (fail-fast, sibling failure) into the
       task's own budget so BDD kernels poll it. *)
    let sub = read_flat ~heuristic:d.heuristic d.flat in
    sub.profile_reach <- false;
    sub.simplify_reach <- d.simplify_reach;
    sub.limits <- Par.with_cancelled d.limits cancelled;
    let res =
      match tasks.(i) with
      | `Ctl (name, f) ->
          `Ctl
            (check_ctl ~fairness:pif.Pif.p_fairness ~early_failure
               ~explain:witnesses sub ~name f)
      | `Lc aut ->
          `Lc
            (check_lc ~fairness:pif.Pif.p_fairness ~early_failure
               ~trace:witnesses sub aut)
    in
    (res, snapshot sub)
  in
  let failed (res, _snap) =
    match res with
    | `Ctl p -> ( match p.pr_verdict with Verdict.Fail _ -> true | _ -> false)
    | `Lc p -> ( match p.pr_verdict with Verdict.Fail _ -> true | _ -> false)
  in
  let stop_when = if fail_fast then Some (fun _ r -> failed r) else None in
  let results, pstats =
    Par.run ~jobs ~limits:d.limits ?stop_when ~tasks:(Array.length tasks)
      run_task
  in
  (* A task skipped by cancellation still yields a property result — an
     Inconclusive(Cancelled) verdict, tallied on the parent design so the
     merged verdict counts cover every property. *)
  let skipped name =
    let pr_verdict = Verdict.inconclusive Limits.Cancelled in
    tally d pr_verdict;
    { pr_name = name; pr_verdict; pr_time = 0.0; pr_early_step = None }
  in
  let ctl = ref [] and lc = ref [] and snaps = ref [] in
  Array.iteri
    (fun i task ->
      match (task, results.(i)) with
      | `Ctl (name, _), None -> ctl := skipped name :: !ctl
      | `Lc aut, None -> lc := skipped aut.Autom.a_name :: !lc
      | _, Some (`Ctl p, snap) ->
          ctl := p :: !ctl;
          snaps := snap :: !snaps
      | _, Some (`Lc p, snap) ->
          lc := p :: !lc;
          snaps := snap :: !snaps)
    tasks;
  let ctl = List.rev !ctl and lc = List.rev !lc in
  let merged = Obs.merge (snapshot d :: List.rev !snaps) in
  let merged = { merged with Obs.workers = Par.worker_samples pstats } in
  ( {
      design_name = d.flat.Ast.m_name;
      ctl;
      lc;
      mc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 ctl;
      lc_time = List.fold_left (fun acc r -> acc +. r.pr_time) 0.0 lc;
    },
    merged )

(* CLI protocol over a whole report: any definitive failure wins (3), else
   any inconclusive result (4), else pass (0). *)
let report_exit_code r =
  let fold worst results =
    List.fold_left
      (fun acc p ->
        match p.pr_verdict with
        | Verdict.Fail _ -> 3
        | Verdict.Inconclusive _ -> if acc = 3 then acc else 4
        | Verdict.Pass -> acc)
      worst results
  in
  fold (fold 0 r.ctl) r.lc

let simulator d = Hsis_sim.Simulator.create d.net

let bisimulation ?class_cap d =
  Hsis_bisim.Bisim.compute ?class_cap ~limits:d.limits d.trans
    ~reach:(reachable d).Reach.reachable

let minimize d =
  Hsis_bisim.Dontcare.with_reachable d.trans
    ~reach:(reachable d).Reach.reachable

let verdict_cell v =
  match v with
  | Verdict.Pass -> "passed"
  | Verdict.Fail _ -> "FAILED"
  | Verdict.Inconclusive { Verdict.reason; _ } ->
      Printf.sprintf "inconclusive(%s)" (Limits.reason_name reason)

let pp_report fmt r =
  Format.fprintf fmt "design %s:@." r.design_name;
  let line kind p =
    Format.fprintf fmt "  %s %-24s %-22s %6.3fs%s@." kind p.pr_name
      (verdict_cell p.pr_verdict) p.pr_time
      (match p.pr_early_step with
      | Some k -> Printf.sprintf " (early failure at step %d)" k
      | None -> "")
  in
  List.iter (line "ctl") r.ctl;
  List.iter (line "lc ") r.lc
