(* Resource budgets for verification runs.

   A [t] is an immutable description of how much work a caller is willing
   to pay for: a wall-clock deadline, a cap on live BDD nodes, a cap on
   fixpoint steps, and/or an arbitrary cancellation callback.  The BDD
   manager polls [check] from its apply kernels (amortized over cache
   misses) and the engines poll it once per fixpoint step; a breach raises
   [Interrupted], which every engine converts into an [Inconclusive]
   verdict carrying whatever partial state it had built. *)

type reason =
  | Limit_deadline
  | Limit_nodes
  | Limit_steps
  | Cancelled

exception Interrupted of reason

type t = {
  deadline : float option;  (* absolute, in Obs.Clock.now coordinates *)
  max_nodes : int option;   (* live (referenced) nodes in the manager *)
  max_steps : int option;   (* engine fixpoint iterations *)
  cancelled : (unit -> bool) option;
}

let none = { deadline = None; max_nodes = None; max_steps = None; cancelled = None }

let make ?timeout ?max_nodes ?max_steps ?cancelled () =
  (* The deadline is absolute: computed once here, so a limits value handed
     to several engine calls in sequence keeps ticking across them and
     fails fast once expired. *)
  let deadline =
    match timeout with
    | None -> None
    | Some s -> Some (Hsis_obs.Obs.Clock.now () +. s)
  in
  { deadline; max_nodes; max_steps; cancelled }

let is_none l =
  l.deadline = None && l.max_nodes = None && l.max_steps = None
  && (match l.cancelled with None -> true | Some _ -> false)

let reason_name = function
  | Limit_deadline -> "deadline"
  | Limit_nodes -> "nodes"
  | Limit_steps -> "steps"
  | Cancelled -> "cancelled"

(* Cheapest checks first: the cancellation flag and node count are loads,
   the deadline needs a clock read. *)
let breach l ~live =
  let cancelled =
    match l.cancelled with Some f -> f () | None -> false
  in
  if cancelled then Some Cancelled
  else begin
    let over_nodes =
      match l.max_nodes with Some n -> live > n | None -> false
    in
    if over_nodes then Some Limit_nodes
    else begin
      let over_deadline =
        match l.deadline with
        | Some d -> Hsis_obs.Obs.Clock.now () > d
        | None -> false
      in
      if over_deadline then Some Limit_deadline else None
    end
  end

let check l ~live =
  match breach l ~live with
  | Some r -> raise (Interrupted r)
  | None -> ()

(* Step budgets are enforced by the engines themselves (the manager has no
   notion of a step); [step_allowed] is the one-line guard they use. *)
let step_allowed l ~step =
  match l.max_steps with Some n -> step < n | None -> true
