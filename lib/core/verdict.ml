(* The single answer type spoken by every checking engine.

   [Pass] and [Fail] are definitive; [Fail] carries engine-specific
   evidence (a BDD of failing initial states, a lasso trace, ...).
   [Inconclusive] means a resource budget interrupted the run: the record
   says which limit fired and, when known, at which fixpoint step.  Partial
   state (explored rings, partial satisfaction sets) lives in the engine's
   own result record next to the verdict, not inside the variant, so that
   verdicts from different engines stay directly comparable. *)

type inconclusive = {
  reason : Limits.reason;
  at_step : int option;
}

type 'ev t =
  | Pass
  | Fail of 'ev
  | Inconclusive of inconclusive

let inconclusive ?at_step reason = Inconclusive { reason; at_step }

let holds = function Pass -> true | Fail _ | Inconclusive _ -> false

let conclusive = function Pass | Fail _ -> true | Inconclusive _ -> false

let map f = function
  | Pass -> Pass
  | Fail e -> Fail (f e)
  | Inconclusive i -> Inconclusive i

let name = function
  | Pass -> "pass"
  | Fail _ -> "fail"
  | Inconclusive _ -> "inconclusive"

(* Differential-checking compatibility: two verdicts disagree only when
   both are conclusive and differ.  An Inconclusive on either side is
   compatible with anything — a budgeted run may degrade to Inconclusive
   but may never flip a conclusive answer. *)
let agree a b =
  match (a, b) with
  | Pass, Pass -> true
  | Fail _, Fail _ -> true
  | Inconclusive _, _ | _, Inconclusive _ -> true
  | Pass, Fail _ | Fail _, Pass -> false

(* CLI protocol: 0 pass / 3 fail / 4 inconclusive.  2 stays reserved for
   usage/containment errors (cmdliner, `hsis refine`), 1 for crashes. *)
let exit_code = function Pass -> 0 | Fail _ -> 3 | Inconclusive _ -> 4

let to_json v =
  let open Hsis_obs.Obs.Json in
  let base = [ ("verdict", Str (name v)) ] in
  match v with
  | Pass | Fail _ -> Obj base
  | Inconclusive { reason; at_step } ->
      let fields =
        base
        @ [ ("reason", Str (Limits.reason_name reason)) ]
        @ (match at_step with
          | Some s -> [ ("at_step", Int s) ]
          | None -> [])
      in
      Obj fields

let pp ppf v =
  match v with
  | Pass -> Format.pp_print_string ppf "pass"
  | Fail _ -> Format.pp_print_string ppf "FAIL"
  | Inconclusive { reason; at_step } -> (
      Format.fprintf ppf "inconclusive (%s" (Limits.reason_name reason);
      match at_step with
      | Some s -> Format.fprintf ppf " at step %d)" s
      | None -> Format.pp_print_string ppf ")")
