(** Resource budgets for verification runs.

    A {!t} bundles a wall-clock deadline, a live-node quota, a fixpoint-step
    quota and a cancellation callback.  The BDD manager polls {!check} from
    inside its apply kernels (amortized over computed-cache misses); engines
    additionally poll it once per fixpoint step and guard their iteration
    counts with {!step_allowed}.  A breach raises {!Interrupted}, which the
    engines catch at step granularity and turn into an
    [Verdict.Inconclusive] result carrying partial state. *)

type reason =
  | Limit_deadline  (** wall-clock deadline passed *)
  | Limit_nodes     (** live BDD nodes exceeded the quota *)
  | Limit_steps     (** fixpoint-step quota exhausted *)
  | Cancelled       (** the user cancellation callback returned [true] *)

exception Interrupted of reason

type t = {
  deadline : float option;
      (** absolute time (in [Obs.Clock.now] coordinates), not a duration *)
  max_nodes : int option;
  max_steps : int option;
  cancelled : (unit -> bool) option;
}

val none : t
(** No limits; [is_none none = true]. The manager skips all polling. *)

val make :
  ?timeout:float ->
  ?max_nodes:int ->
  ?max_steps:int ->
  ?cancelled:(unit -> bool) ->
  unit ->
  t
(** [make ~timeout:s] fixes the absolute deadline [now () +. s] at call
    time, so one limits value shared by several engine calls keeps ticking
    across them. *)

val is_none : t -> bool

val breach : t -> live:int -> reason option
(** First breached limit, checked cheapest-first (cancellation, nodes,
    deadline). [live] is the current live-node count. Step quotas are not
    checked here — see {!step_allowed}. *)

val check : t -> live:int -> unit
(** Raise [Interrupted r] if [breach] reports [Some r]. *)

val step_allowed : t -> step:int -> bool
(** Whether fixpoint step number [step] (0-based) may still run. *)

val reason_name : reason -> string
(** Stable lowercase label: ["deadline"], ["nodes"], ["steps"],
    ["cancelled"]. Used in JSON, obs tallies and CLI output. *)
