open Hsis_obs
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug
open Hsis_limits

(** The unified HSIS environment (paper Fig. 1): read a design from Verilog
    or BLIF-MV, build its symbolic transition structure, check CTL and
    containment properties from a PIF file under an optional resource
    budget, and produce bug reports with error traces. *)

type design = {
  flat : Ast.model;  (** flattened BLIF-MV *)
  net : Net.t;
  trans : Trans.t;
  heuristic : Trans.heuristic;
      (** ordering heuristic the relation was built with; {!run_pif_par}
          tasks rebuild the design with the same heuristic so parallel
          verdicts match sequential ones *)
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
      (** wall-clock seconds to build the symbol table + relation BDDs *)
  timers : Obs.Timers.t;
      (** accumulated per-phase wall-clock timings: [parse], [flatten],
          [order], [relation], then [reach] / [mc] / [lc] as the engines
          run.  Rendered by {!snapshot}. *)
  verdicts : Obs.Tally.t;
      (** per-verdict counts ([pass] / [fail] / [inconclusive]) across every
          property checked on this design; rendered by {!snapshot} *)
  mutable limits : Limits.t;  (** see {!set_limits} *)
  mutable reach_cache : Reach.t option;  (** filled by {!reachable} *)
  mutable profile_reach : bool;
      (** record the per-step fixpoint profile during {!reachable}
          (default [true]; see {!set_reach_profile}) *)
  mutable simplify_reach : bool;
      (** [restrict]-simplify each reachability frontier against the
          already-reached interior before the image call (default [false];
          see {!set_reach_simplify}) *)
}

val set_reach_profile : design -> bool -> unit
(** Enable or disable per-step reachability profiling before the first
    {!reachable} call.  Profiling walks the frontier and the full reached
    set with [Bdd.dag_size] each image step; the CLI enables it only when
    [--stats] / [--stats-json] is passed, and benchmarks disable it. *)

val set_reach_simplify : design -> bool -> unit
(** Enable frontier simplification for subsequent {!reachable} calls: each
    frontier is Coudert-Madre-[restrict]ed against the complement of the
    reached interior before the image computation, which can shrink the
    image input without changing the reachable set, the onion rings or the
    verdict (see [Reach.compute ~simplify]).  Nodes saved per step appear
    in the reach profile.  Default off. *)

val set_limits : design -> Limits.t -> unit
(** Install a resource budget governing every subsequent engine call on
    this design ({!reachable}, {!check_ctl}, {!check_lc},
    {!bisimulation}).  Engines interrupted by the budget return
    [Verdict.Inconclusive] results instead of raising.  Deadlines are
    absolute: a [Limits.make ~timeout] value expires once and every later
    call under it fails fast.  Default [Limits.none]. *)

val limits : design -> Limits.t

val read_verilog : ?heuristic:Trans.heuristic -> string -> design
val read_blifmv : ?heuristic:Trans.heuristic -> string -> design
val read_flat :
  ?heuristic:Trans.heuristic ->
  ?verilog_lines:int ->
  ?timers:Obs.Timers.t ->
  Ast.model ->
  design

val reachable : design -> Reach.t
(** Runs under {!val-limits}.  Conclusive results are cached; a truncated
    exploration (verdict [Inconclusive]) is returned but recomputed on the
    next call. *)

val reached_states : design -> float

type ctl_evidence = {
  ce_explanation : Mcdbg.explanation option;
      (** bug report, when requested with [~explain:true] *)
}

type lc_evidence = {
  le_trace : Trace.t option;  (** error trace when containment fails *)
  le_trans : Trans.t;  (** product structure, for printing the trace *)
}

type 'ev property_result = {
  pr_name : string;
  pr_verdict : 'ev Verdict.t;
      (** [Fail] carries the engine-specific evidence *)
  pr_time : float;
  pr_early_step : int option;
      (** reachability step at which the failure was detected, when the
          early-failure scan caught it before the fixpoint converged *)
}
(** One checked property, CTL or language containment: the two legacy
    result records ([ctl_result] / [lc_result]) unified over the verdict
    API. *)

val check_ctl :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?explain:bool ->
  design ->
  name:string ->
  Ctl.t ->
  ctl_evidence property_result

val check_lc :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?trace:bool ->
  design ->
  Autom.t ->
  lc_evidence property_result

type report = {
  design_name : string;
  ctl : ctl_evidence property_result list;
  lc : lc_evidence property_result list;
  mc_time : float;
  lc_time : float;
}

val run_pif :
  ?early_failure:bool -> ?witnesses:bool -> design -> Pif.t -> report
(** Check every [ctl] and [lc] property of the PIF file under its fairness
    constraints (and the design's installed {!val-limits}). *)

val run_pif_par :
  ?early_failure:bool ->
  ?witnesses:bool ->
  ?fail_fast:bool ->
  jobs:int ->
  design ->
  Pif.t ->
  report * Obs.snapshot
(** {!run_pif} fanned out over a [Par] domain pool: one share-nothing task
    per property, each rebuilding the design (own BDD manager) inside its
    worker domain from the flattened AST.  Results are keyed by property
    index, so the report lists properties in PIF order and verdicts match
    {!run_pif} regardless of scheduling.  The design's {!val-limits}
    deadline / cancellation governs the whole pool; with [fail_fast] the
    first definitive [Fail] cancels the remaining tasks, which come back as
    [Inconclusive (Cancelled)].  Also returns the merged observability
    snapshot ([Obs.merge] of the parent and every task snapshot, with the
    pool's per-worker activity in its [workers] member) — per-task manager
    counters are not otherwise reachable once the tasks finish. *)

val report_exit_code : report -> int
(** CLI protocol: [3] if any property has a definitive [Fail] verdict,
    else [4] if any is [Inconclusive], else [0]. *)

val simulator : design -> Hsis_sim.Simulator.t

val bisimulation : ?class_cap:int -> design -> Hsis_bisim.Bisim.result
(** Runs under {!val-limits}. *)

val minimize : design -> Hsis_bisim.Dontcare.report
(** Restrict the relation parts with the reachable care set. *)

val stats : design -> Obs.man_stats
(** Structured counters of the design's BDD manager (see {!Hsis_obs.Obs}). *)

val snapshot : design -> Obs.snapshot
(** Full observability snapshot: manager counters, per-phase timings, the
    relation-partition profile, the verdict tally, and (once {!reachable}
    has run) the per-iteration reachability profile.  Render with [Obs.pp]
    or [Obs.to_json]. *)

val pp_report : Format.formatter -> report -> unit
