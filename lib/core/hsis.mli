open Hsis_obs
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug

(** The unified HSIS environment (paper Fig. 1): read a design from Verilog
    or BLIF-MV, build its symbolic transition structure, check CTL and
    containment properties from a PIF file, and produce bug reports with
    error traces. *)

type design = {
  flat : Ast.model;  (** flattened BLIF-MV *)
  net : Net.t;
  trans : Trans.t;
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
      (** wall-clock seconds to build the symbol table + relation BDDs *)
  timers : Obs.Timers.t;
      (** accumulated per-phase wall-clock timings: [parse], [flatten],
          [order], [relation], then [reach] / [mc] / [lc] as the engines
          run.  Rendered by {!snapshot}. *)
  mutable reach_cache : Reach.t option;  (** filled by {!reachable} *)
  mutable profile_reach : bool;
      (** record the per-step fixpoint profile during {!reachable}
          (default [true]; see {!set_reach_profile}) *)
}

val set_reach_profile : design -> bool -> unit
(** Enable or disable per-step reachability profiling before the first
    {!reachable} call.  Profiling walks the frontier and the full reached
    set with [Bdd.dag_size] each image step; the CLI enables it only when
    [--stats] / [--stats-json] is passed, and benchmarks disable it. *)

val read_verilog : ?heuristic:Trans.heuristic -> string -> design
val read_blifmv : ?heuristic:Trans.heuristic -> string -> design
val read_flat :
  ?heuristic:Trans.heuristic ->
  ?verilog_lines:int ->
  ?timers:Obs.Timers.t ->
  Ast.model ->
  design

val reachable : design -> Reach.t
(** Cached after the first call. *)

val reached_states : design -> float

type ctl_result = {
  cr_name : string;
  cr_formula : Ctl.t;
  cr_holds : bool;
  cr_time : float;
  cr_early_step : int option;
  cr_explanation : Mcdbg.explanation option;  (** bug report when failing *)
}

type lc_result = {
  lr_name : string;
  lr_holds : bool;
  lr_time : float;
  lr_early_step : int option;
  lr_trace : Trace.t option;  (** error trace when containment fails *)
  lr_trans : Trans.t;  (** product structure, for printing the trace *)
}

val check_ctl :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?explain:bool ->
  design ->
  name:string ->
  Ctl.t ->
  ctl_result

val check_lc :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?trace:bool ->
  design ->
  Autom.t ->
  lc_result

type report = {
  design_name : string;
  ctl : ctl_result list;
  lc : lc_result list;
  mc_time : float;
  lc_time : float;
}

val run_pif :
  ?early_failure:bool -> ?witnesses:bool -> design -> Pif.t -> report
(** Check every [ctl] and [lc] property of the PIF file under its fairness
    constraints. *)

val simulator : design -> Hsis_sim.Simulator.t
val bisimulation : ?class_cap:int -> design -> Hsis_bisim.Bisim.result
val minimize : design -> Hsis_bisim.Dontcare.report
(** Restrict the relation parts with the reachable care set. *)

val stats : design -> Obs.man_stats
(** Structured counters of the design's BDD manager (see {!Hsis_obs.Obs}). *)

val snapshot : design -> Obs.snapshot
(** Full observability snapshot: manager counters, per-phase timings, the
    relation-partition profile, and (once {!reachable} has run) the
    per-iteration reachability profile.  Render with [Obs.pp] or
    [Obs.to_json]. *)

val pp_report : Format.formatter -> report -> unit
