open Hsis_obs
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check
open Hsis_debug
open Hsis_limits

(** The unified HSIS environment (paper Fig. 1): read a design from Verilog
    or BLIF-MV, build its symbolic transition structure, check CTL and
    containment properties from a PIF file under an optional resource
    budget, and produce bug reports with error traces. *)

type design = {
  flat : Ast.model;  (** flattened BLIF-MV *)
  prov : Flatten.provenance;
      (** instance provenance recorded by flattening — which contiguous
          runs of the flat table/latch lists came from which [.subckt]
          instance; what [Trans.build ~strategy:Iso_shared] mines for
          isomorphic instance groups.  Empty for designs read from an
          already-flat model. *)
  net : Net.t;
  trans : Trans.t;
  heuristic : Trans.heuristic;
      (** ordering heuristic the relation was built with; {!run_pif_par}
          tasks rebuild the design with the same heuristic (and TR
          strategy / provenance) so parallel verdicts match sequential
          ones *)
  verilog_lines : int option;
  blifmv_lines : int;
  read_time : float;
      (** wall-clock seconds to build the symbol table + relation BDDs *)
  timers : Obs.Timers.t;
      (** accumulated per-phase wall-clock timings: [parse], [flatten],
          [order], [relation], then [reach] / [mc] / [lc] as the engines
          run.  Rendered by {!snapshot}. *)
  verdicts : Obs.Tally.t;
      (** per-verdict counts ([pass] / [fail] / [inconclusive]) across every
          property checked on this design; rendered by {!snapshot} *)
  mutable limits : Limits.t;  (** see {!set_limits} *)
  mutable reach_cache : Reach.t option;  (** filled by {!reachable} *)
  mutable reach_order_rev : int;
      (** reorder-run count of the BDD manager when {!reach_cache} was
          filled; the cache is dropped when the variable order has moved
          since (see {!reach_cache_valid}) *)
  mutable profile_reach : bool;
      (** record the per-step fixpoint profile during {!reachable}
          (default [true]; see {!set_reach_profile}) *)
  mutable simplify_reach : bool;
      (** [restrict]-simplify each reachability frontier against the
          already-reached interior before the image call (default [false];
          see {!set_reach_simplify}) *)
  mutable shared_cache : shared_cell option;
      (** last {!share_design} payload, keyed to the manager's reorder
          generation; reused by later shared-work runs on the same design
          (e.g. a warm serve session) instead of re-exporting *)
}

and shared_design
(** The exported, domain-shareable form of a design: the flattened network
    and relation {e shape} (plain immutable data) plus one [Bdd.snapshot]
    carrying the directly-constructed relation parts — under [Iso_shared]
    one component per master; permuted copies travel as renamings inside
    the shape — and, when the coordinator's reach cache was conclusive,
    the reachable set and its onion rings.  Produced by {!share_design},
    consumed by {!design_of_shared}. *)

and shared_cell = { sc_payload : shared_design; sc_order_rev : int }

val set_reach_profile : design -> bool -> unit
(** Enable or disable per-step reachability profiling before the first
    {!reachable} call.  Profiling walks the frontier and the full reached
    set with [Bdd.dag_size] each image step; the CLI enables it only when
    [--stats] / [--stats-json] is passed, and benchmarks disable it. *)

val set_reach_simplify : design -> bool -> unit
(** Enable frontier simplification for subsequent {!reachable} calls: each
    frontier is Coudert-Madre-[restrict]ed against the complement of the
    reached interior before the image computation, which can shrink the
    image input without changing the reachable set, the onion rings or the
    verdict (see [Reach.compute ~simplify]).  Nodes saved per step appear
    in the reach profile.  Default off. *)

val set_limits : design -> Limits.t -> unit
(** Install a resource budget governing every subsequent engine call on
    this design ({!reachable}, {!check_ctl}, {!check_lc},
    {!bisimulation}).  Engines interrupted by the budget return
    [Verdict.Inconclusive] results instead of raising.  Deadlines are
    absolute: a [Limits.make ~timeout] value expires once and every later
    call under it fails fast.  Default [Limits.none]. *)

val limits : design -> Limits.t

val set_kernel_jobs : design -> int -> unit
(** Set the intra-operation parallelism degree of the design's BDD manager
    (clamped to >= 1; see [Bdd.set_kernel_jobs]).  With more than one job
    the apply kernels fork cofactor recursions onto a persistent domain
    pool; results are bit-identical across job counts.  Safe between
    engine calls. *)

val kernel_jobs : design -> int

val read_verilog :
  ?heuristic:Trans.heuristic ->
  ?strategy:Trans.strategy ->
  ?kernel_jobs:int ->
  string ->
  design

val read_blifmv :
  ?heuristic:Trans.heuristic ->
  ?strategy:Trans.strategy ->
  ?kernel_jobs:int ->
  string ->
  design
(** [strategy] (default [Partitioned]) selects the transition-relation
    representation ({!Trans.strategy}).  The hierarchical front ends record
    flattening provenance and hand it to the relation builder, so
    [~strategy:Iso_shared] shares component BDDs across isomorphic
    [.subckt] / Verilog-module instances.  [kernel_jobs] (default 1) sets
    the manager's intra-operation parallelism degree
    ({!val-set_kernel_jobs}). *)

val read_flat :
  ?heuristic:Trans.heuristic ->
  ?strategy:Trans.strategy ->
  ?kernel_jobs:int ->
  ?prov:Flatten.provenance ->
  ?verilog_lines:int ->
  ?timers:Obs.Timers.t ->
  Ast.model ->
  design
(** Already-flat entry point.  [prov] (default empty) supplies instance
    provenance when the caller flattened with [Flatten.flatten_prov]
    itself; without it [Iso_shared] has nothing to mine and degrades to
    [Partitioned] behaviour. *)

val reachable : ?limits:Limits.t -> design -> Reach.t
(** Runs under [limits] (default: the design's installed {!val-limits}).
    Conclusive results are cached; a truncated exploration (verdict
    [Inconclusive]) is returned but recomputed on the next call.  The
    cache is keyed to the manager's variable order: if sifting ran since
    it was filled (a later job triggering auto-reorder, an explicit
    [Bdd.sift] between serve jobs), it is invalidated and the set is
    recomputed under the new order. *)

val reach_cache_valid : design -> bool
(** Whether a cached reachable set exists {e and} is still keyed to the
    manager's current variable order.  [false] either when nothing is
    cached or when a reorder since the fill has invalidated it. *)

val reached_states : design -> float

type ctl_evidence = {
  ce_explanation : Mcdbg.explanation option;
      (** bug report, when requested with [~explain:true] *)
}

type lc_evidence = {
  le_trace : Trace.t option;  (** error trace when containment fails *)
  le_trans : Trans.t;  (** product structure, for printing the trace *)
}

type 'ev property_result = {
  pr_name : string;
  pr_verdict : 'ev Verdict.t;
      (** [Fail] carries the engine-specific evidence *)
  pr_time : float;
  pr_early_step : int option;
      (** reachability step at which the failure was detected, when the
          early-failure scan caught it before the fixpoint converged *)
}
(** One checked property, CTL or language containment: the two legacy
    result records ([ctl_result] / [lc_result]) unified over the verdict
    API. *)

val check_ctl :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?explain:bool ->
  ?limits:Limits.t ->
  design ->
  name:string ->
  Ctl.t ->
  ctl_evidence property_result
(** [limits] overrides the design's installed budget for this one check —
    the serve daemon's per-job budgets use this instead of mutating the
    shared session. *)

val check_lc :
  ?fairness:Fair.syntactic list ->
  ?early_failure:bool ->
  ?trace:bool ->
  ?limits:Limits.t ->
  design ->
  Autom.t ->
  lc_evidence property_result

type report = {
  design_name : string;
  ctl : ctl_evidence property_result list;
  lc : lc_evidence property_result list;
  mc_time : float;
  lc_time : float;
}

val run_pif :
  ?early_failure:bool ->
  ?witnesses:bool ->
  ?limits:Limits.t ->
  design ->
  Pif.t ->
  report
(** Check every [ctl] and [lc] property of the PIF file under its fairness
    constraints (and [limits], default the design's installed
    {!val-limits}). *)

val share_design : design -> shared_design
(** Export the design for cross-domain rehydration: the relation parts —
    and, when {!reach_cache_valid} holds, the reachable set with its onion
    rings — as one [Bdd.snapshot], alongside the relation shape
    ([Trans.share]).  Cached on the design ({!design.shared_cache}) keyed
    to the manager's reorder generation, so repeated shared-work runs
    export once. *)

val design_of_shared : shared_design -> design
(** Rehydrate inside a worker domain: fresh BDD manager, deterministic
    symbol table ([Sym.make] on the shared net gives identical variable
    indices), one linear-pass [Bdd.import], and a pre-filled conclusive
    reach cache when the payload carried one.  The result is a full
    {!design} whose property checks skip both the relation build and the
    reachability fixpoint.  Reach profiling starts disabled; budgets start
    at [Limits.none]. *)

val run_pif_par :
  ?early_failure:bool ->
  ?witnesses:bool ->
  ?fail_fast:bool ->
  ?share:bool ->
  ?limits:Limits.t ->
  jobs:int ->
  design ->
  Pif.t ->
  report * Obs.snapshot
(** {!run_pif} fanned out over a [Par] domain pool, one task per property.
    By default ([share]) the coordinator builds the relation — and the
    reachability fixpoint, when any CTL property is present — once,
    exports them with {!share_design}, and each task rehydrates with
    {!design_of_shared} into its own fresh manager: per-design work is
    done once instead of once per property.  With [~share:false] every
    task rebuilds the design from the flattened AST (the original
    share-nothing mode, kept for comparison benchmarks).  Language-
    containment products are still built per task in both modes
    ([Lc.check] works from the flattened AST).  Results are keyed by
    property index, so the report lists properties in PIF order and
    verdicts match {!run_pif} regardless of scheduling.  The design's
    {!val-limits} deadline / cancellation governs the whole pool; with
    [fail_fast] the first definitive [Fail] cancels the remaining tasks,
    which come back as [Inconclusive (Cancelled)].  Also returns the
    merged observability snapshot ([Obs.merge] of the parent and every
    task snapshot, with the pool's per-worker activity in its [workers]
    member and the snapshot export/import traffic in each manager's
    [snap] counters) — per-task manager counters are not otherwise
    reachable once the tasks finish. *)

val report_exit_code : report -> int
(** CLI protocol: [3] if any property has a definitive [Fail] verdict,
    else [4] if any is [Inconclusive], else [0]. *)

val property_to_json : 'ev property_result -> Obs.Json.t
(** [{"name", "verdict" (+ "reason"/"at_step"), "time_s", "early_step"?}];
    evidence is not serialized. *)

val report_to_json : report -> Obs.Json.t
(** The whole report — per-property verdicts plus engine times and the
    {!report_exit_code} — as dependency-free JSON (the ["result"] member
    of serve-mode responses). *)

val simulator : design -> Hsis_sim.Simulator.t

val bisimulation : ?class_cap:int -> design -> Hsis_bisim.Bisim.result
(** Runs under {!val-limits}. *)

val minimize : design -> Hsis_bisim.Dontcare.report
(** Restrict the relation parts with the reachable care set. *)

val stats : design -> Obs.man_stats
(** Structured counters of the design's BDD manager (see {!Hsis_obs.Obs}). *)

val snapshot : design -> Obs.snapshot
(** Full observability snapshot: manager counters, per-phase timings, the
    relation-partition profile, the verdict tally, and (once {!reachable}
    has run) the per-iteration reachability profile.  Render with [Obs.pp]
    or [Obs.to_json]. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Sessions}

    The explicit unit of design state replacing ad-hoc per-call facade
    mutation: a session pins one read design — flattened network, symbol
    table, relation BDDs, variable order, reach cache — under a content
    hash of its source.  Callers open a session, run property checks
    against it (many, with independent per-run budgets via the [?limits]
    overrides above), and close it.  The serve daemon keeps a bounded
    cache of open sessions keyed by {!Session.hash} so a re-check of an
    already-read design skips straight to the engines; the batch CLI is
    the degenerate open-run-close case, so both share one code path. *)

module Session : sig
  type source = Verilog of string | Blifmv of string | Flat of Ast.model

  val hash : source -> string
  (** Stable content hash (hex) of the design source, folding in the
      source kind.  Cache key of the serve-mode session cache. *)

  type t

  val open_ :
    ?heuristic:Trans.heuristic ->
    ?tr:Trans.strategy ->
    ?kernel_jobs:int ->
    source ->
    t
  (** Read the design and pin its artifacts.  [tr] (default [Partitioned])
      is the construction-time TR strategy ({!read_blifmv});
      [kernel_jobs] (default 1) the manager's intra-operation parallelism
      degree.  [Session.id] of the result is [hash source]. *)

  val id : t -> string
  val design : t -> design
  val heuristic : t -> Trans.heuristic

  val tr : t -> Trans.strategy
  (** The design's resident TR strategy (as opened, or as left by the
      last {!run} override restore — i.e. the opened one). *)

  val hits : t -> int
  (** Warm reuses recorded by {!touch}; [0] for a fresh session. *)

  val touch : t -> unit
  (** Record a warm reuse (called by the serve cache on a hit). *)

  val live_nodes : t -> int
  (** Live BDD nodes held by the session's manager — the unit of the
      serve cache's memory budget. *)

  val snapshot_bytes : t -> int
  (** Wire bytes of the session design's cached {!share_design} payload
      (0 when none): counted into the serve cache's per-entry weight so a
      warm session's retained export is paid for. *)

  val run :
    ?early_failure:bool ->
    ?witnesses:bool ->
    ?fail_fast:bool ->
    ?jobs:int ->
    ?limits:Limits.t ->
    ?tr:Trans.strategy ->
    ?kernel_jobs:int ->
    t ->
    Pif.t ->
    report * Obs.snapshot option
  (** Check a PIF property set against the session's design: {!run_pif}
      when [jobs <= 1] and not [fail_fast], {!run_pif_par} (returning the
      pool-merged snapshot) otherwise.  [limits] governs this run only.
      [tr] flips the relation's image/preimage evaluation path
      ([Trans.set_strategy]) and [kernel_jobs] the manager's
      intra-operation parallelism degree, both for this run only — the
      session's resident settings are restored afterwards;
      construction-time sharing stays as opened.  [jobs] workers each get
      their own manager and stay at [kernel_jobs = 1] (the two degrees
      multiply domains otherwise).  Raises [Invalid_argument] on a closed
      session. *)

  val close : t -> unit
  (** Drop the session's cached artifacts and mark it closed ({!run}
      refuses).  Safe to call twice. *)

  val closed : t -> bool
end
