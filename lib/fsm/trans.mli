open Hsis_bdd
open Hsis_blifmv

(** Symbolic transition structure of a network: conjunctively partitioned
    transition relation with early-quantification schedules for image and
    preimage, plus an optional monolithic T(x,y) (paper Secs. 4-5). *)

type heuristic = Min_width | Pair_clustering | Naive

(** How the transition relation is represented and used:

    - [Monolithic] — image/preimage go through the single product T(x,y)
      (built lazily from the parts, cached);
    - [Partitioned] — the conjunctive partition is kept and image/preimage
      interleave conjunction with early quantification under the
      heuristic's schedule (the HSIS default);
    - [Iso_shared] — like [Partitioned], but construction exploits
      replication: instance groups that {!Flatten.provenance} proves are
      copies of one master (isomorphic up to a signal renaming) have their
      component BDDs built once and materialized per instance via
      [Bdd.permute].  In one manager the permuted parts are the same
      canonical nodes direct construction would produce, so every verdict
      is identical — the win is the avoided construction intermediates
      and the smaller snapshot exported by {!share}. *)
type strategy = Monolithic | Partitioned | Iso_shared

val strategy_name : strategy -> string
(** ["mono"] / ["part"] / ["iso"] — the CLI and wire spelling. *)

val strategy_of_name : string -> strategy option

type t

val build :
  ?heuristic:heuristic ->
  ?strategy:strategy ->
  ?prov:Flatten.provenance ->
  Sym.t ->
  t
(** Build the relation parts (one per table, one per latch) and the image /
    preimage schedules.  Defaults: [Min_width], [Partitioned], no
    provenance.  Under [Iso_shared] with provenance, instance groups are
    checked part-by-part for structural equality modulo the positional
    signal renaming; any group (or member) failing the check silently
    falls back to direct construction, so the result is always correct. *)

val strategy : t -> strategy

val set_strategy : t -> strategy -> unit
(** Switch the image/preimage evaluation path of an already-built relation
    ([Monolithic] vs the schedule-driven partition).  Construction-time
    sharing is fixed at {!build}; flipping to [Iso_shared] after the fact
    behaves like [Partitioned]. *)

val sym : t -> Sym.t
val man : t -> Bdd.man
val parts : t -> Bdd.t array
(** All relation parts.  Under [Iso_shared], renamed instance copies are
    materialized lazily — this call (like any evaluation touching a
    pending part) forces the outstanding permutes; construction and
    import store only [{src; varmap}] cells for them. *)

val initial : t -> Bdd.t
(** Initial states, with state domain constraints applied. *)

val monolithic : t -> Bdd.t
(** T(x,y): product of all parts with non-state variables quantified early;
    computed once and cached. *)

val monolithic_peak : t -> int
(** Largest intermediate BDD seen while building {!monolithic} (0 if not yet
    built). *)

val image : t -> Bdd.t -> Bdd.t
(** Successors of a state set (present vars -> present vars), computed per
    the relation's {!strategy}. *)

val preimage : t -> Bdd.t -> Bdd.t
(** Predecessors of a state set, computed per the relation's {!strategy}. *)

val preimage_within : t -> restrict_to:Bdd.t -> Bdd.t -> Bdd.t
(** [preimage] intersected with a state set (the common EX-within-Z step of
    fair-cycle computation). *)

val abstract_to_states : t -> Bdd.t -> Bdd.t
(** Lift a predicate over arbitrary present-signal encodings to a predicate
    on state variables: existentially abstract the non-state signals
    through the combinational relations ("the atom can hold in this
    state"). *)

val abstract_to_edges : t -> Bdd.t -> Bdd.t
(** Lift a predicate over arbitrary present-signal encodings to a predicate
    on {e transitions} (present state vars x next state vars): the pairs
    (x, y) with a transition consistent with the predicate.  This keeps
    conditions on inputs/internal signals correlated with the step that
    reads them — the exact compilation of edge fairness. *)

val transition_constraint : t -> Bdd.t -> t
(** Conjoin an extra relation over (x, i, y) onto the partition — used to
    compose property monitors and edge-fairness constraints. *)

val map_parts : t -> (Bdd.t -> Bdd.t) -> t
(** Apply a transformation (e.g. don't-care minimization) to each part;
    supports may only shrink, so schedules stay valid.  The mapped parts
    are no longer renamed copies of each other, so the result exports
    every part directly. *)

val tr_profile : t -> Hsis_obs.Obs.tr_profile
(** Strategy name plus isomorphism-sharing counters: master groups found,
    parts materialized by permutation, construction nodes saved, permute
    time.  All zero outside [Iso_shared] builds. *)

(** {1 Cross-domain sharing}

    A relation is rebuilt in another manager in two pieces: the
    manager-independent {e shape} below (heuristic, strategy, abstract
    supports, quantification schedules, and per-part reconstruction
    sources — immutable plain data, safe to share across domains) and the
    {e root} parts, shipped as a [Bdd.snapshot] and re-imported.  Parts
    that were materialized by permutation travel as their [(var, var)]
    renaming only: the receiving side re-permutes the imported master
    part, so an N-instance design ships one component instead of N. *)

type shared

val share : t -> shared
(** Capture the shape, forcing the image and preimage schedules if not
    yet computed. *)

val shared_roots : t -> Bdd.t list
(** The directly-constructed parts, in the root order {!of_shared}
    expects — the BDDs to export alongside {!share}'s shape.  Permuted
    parts are omitted (they rebuild from their master's root). *)

val shared_nroots : shared -> int
(** How many roots {!of_shared} expects. *)

val shared_strategy : shared -> strategy

val of_shared : Sym.t -> shared -> roots:Bdd.t array -> t
(** Reassemble a relation in [sym]'s manager from a shared shape and the
    re-imported roots ({!shared_nroots} of them, in {!shared_roots} order —
    raises [Invalid_argument] on a length mismatch).  Permuted parts are
    re-materialized with [Bdd.permute]; [Sym.make]'s deterministic variable
    numbering makes the recorded renamings valid in the new manager.
    Abstraction schedules restart empty; the monolithic relation is not
    carried. *)

val parts_size : t -> int
(** Total dag nodes across parts (metric for minimization benches).
    Does not force pending iso copies: a pending copy is counted at its
    source's size. *)

val rel_profile : t -> Hsis_obs.Obs.rel_profile
(** Shape of the partitioned relation (part count, total and largest part
    dag sizes) for observability snapshots; pending iso copies are
    profiled at their source's size without being forced. *)

val solve_step : t -> pres:Bdd.t -> next:Bdd.t -> Bdd.t
(** The conjunction of all parts with the given present and next state
    constraints — no quantification, so a satisfying cube fixes the
    internal/input signals as well (used for trace reconstruction). *)
