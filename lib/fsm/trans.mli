open Hsis_bdd

(** Symbolic transition structure of a network: conjunctively partitioned
    transition relation with early-quantification schedules for image and
    preimage, plus an optional monolithic T(x,y) (paper Secs. 4-5). *)

type heuristic = Min_width | Pair_clustering | Naive

type t

val build : ?heuristic:heuristic -> Sym.t -> t
(** Build the relation parts (one per table, one per latch) and the image /
    preimage schedules. *)

val sym : t -> Sym.t
val man : t -> Bdd.man
val parts : t -> Bdd.t array

val initial : t -> Bdd.t
(** Initial states, with state domain constraints applied. *)

val monolithic : t -> Bdd.t
(** T(x,y): product of all parts with non-state variables quantified early;
    computed once and cached. *)

val monolithic_peak : t -> int
(** Largest intermediate BDD seen while building {!monolithic} (0 if not yet
    built). *)

val image : ?use_mono:bool -> t -> Bdd.t -> Bdd.t
(** Successors of a state set (present vars -> present vars). *)

val preimage : ?use_mono:bool -> t -> Bdd.t -> Bdd.t
(** Predecessors of a state set. *)

val preimage_within : t -> restrict_to:Bdd.t -> Bdd.t -> Bdd.t
(** [preimage] intersected with a state set (the common EX-within-Z step of
    fair-cycle computation). *)

val abstract_to_states : t -> Bdd.t -> Bdd.t
(** Lift a predicate over arbitrary present-signal encodings to a predicate
    on state variables: existentially abstract the non-state signals
    through the combinational relations ("the atom can hold in this
    state"). *)

val abstract_to_edges : t -> Bdd.t -> Bdd.t
(** Lift a predicate over arbitrary present-signal encodings to a predicate
    on {e transitions} (present state vars x next state vars): the pairs
    (x, y) with a transition consistent with the predicate.  This keeps
    conditions on inputs/internal signals correlated with the step that
    reads them — the exact compilation of edge fairness. *)

val transition_constraint : t -> Bdd.t -> t
(** Conjoin an extra relation over (x, i, y) onto the partition — used to
    compose property monitors and edge-fairness constraints. *)

val map_parts : t -> (Bdd.t -> Bdd.t) -> t
(** Apply a transformation (e.g. don't-care minimization) to each part;
    supports may only shrink, so schedules stay valid. *)

(** {1 Cross-domain sharing}

    A relation is rebuilt in another manager in two pieces: the
    manager-independent {e shape} below (heuristic, abstract supports,
    quantification schedules — immutable plain data, safe to share
    across domains) and the parts themselves, shipped as a
    [Bdd.snapshot] and re-imported.  Together they skip both the
    [Rel.table_rel]/[Rel.latch_rel] construction and the schedule
    clustering on the receiving side. *)

type shared

val share : t -> shared
(** Capture the shape, forcing the image and preimage schedules if not
    yet computed. *)

val of_shared : Sym.t -> shared -> parts:Bdd.t array -> t
(** Reassemble a relation in [sym]'s manager from a shared shape and
    re-imported parts (same count and order as [parts] of the source —
    raises [Invalid_argument] on a length mismatch).  Abstraction
    schedules restart empty; the monolithic relation is not carried. *)

val parts_size : t -> int
(** Total dag nodes across parts (metric for minimization benches). *)

val rel_profile : t -> Hsis_obs.Obs.rel_profile
(** Shape of the partitioned relation (part count, total and largest part
    dag sizes) for observability snapshots. *)

val solve_step : t -> pres:Bdd.t -> next:Bdd.t -> Bdd.t
(** The conjunction of all parts with the given present and next state
    constraints — no quantification, so a satisfying cube fixes the
    internal/input signals as well (used for trace reconstruction). *)
