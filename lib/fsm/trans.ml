open Hsis_bdd
open Hsis_mv
open Hsis_blifmv
open Hsis_quant

type heuristic = Min_width | Pair_clustering | Naive

type t = {
  sym : Sym.t;
  heuristic : heuristic;
  parts : Bdd.t array;
  supports : int list array; (* abstract: signal id, or n + id for next *)
  mutable mono : Bdd.t option;
  mutable mono_peak : int;
  mutable img_sched : Schedule.t option;
  mutable pre_sched : Schedule.t option;
  (* abstraction schedules keyed by the abstract support of the predicate
     and whether latch parts participate *)
  abs_scheds : (int list * bool, Schedule.t) Hashtbl.t;
}

let schedule_of heuristic problem =
  match heuristic with
  | Min_width -> Schedule.min_width problem
  | Pair_clustering -> Schedule.pair_clustering problem
  | Naive -> Schedule.naive problem

let sym t = t.sym
let man t = Sym.man t.sym
let parts t = t.parts

let nsig t = Net.num_signals (Sym.net t.sym)

(* Abstract id -> quantification cube over the proper variable space. *)
let cube_of t ids =
  let n = nsig t in
  Bdd.conj (man t)
    (List.map
       (fun id ->
         if id < n then Enc.cube (Sym.pres t.sym id)
         else Enc.cube (Sym.next t.sym (id - n)))
       ids)

(* Abstract support of an arbitrary BDD, via its variable support. *)
let abstract_support t b =
  let n = nsig t in
  let var2abs = Hashtbl.create 64 in
  for s = 0 to n - 1 do
    List.iter
      (fun v -> Hashtbl.replace var2abs v s)
      (Enc.var_indices (Sym.pres t.sym s));
    if Sym.is_state t.sym s then
      List.iter
        (fun v -> Hashtbl.replace var2abs v (n + s))
        (Enc.var_indices (Sym.next t.sym s))
  done;
  Bdd.support b
  |> List.filter_map (Hashtbl.find_opt var2abs)
  |> List.sort_uniq compare

let build ?(heuristic = Min_width) sym =
  let net = Sym.net sym in
  let table_parts =
    List.map (fun tb -> (Rel.table_rel sym tb, Rel.table_support net tb))
      net.Net.tables
  in
  let latch_parts =
    List.map (fun l -> (Rel.latch_rel sym l, Rel.latch_support net l))
      net.Net.latches
  in
  let all = table_parts @ latch_parts in
  {
    sym;
    heuristic;
    parts = Array.of_list (List.map fst all);
    supports = Array.of_list (List.map snd all);
    mono = None;
    mono_peak = 0;
    img_sched = None;
    pre_sched = None;
    abs_scheds = Hashtbl.create 16;
  }

let initial t = Bdd.dand (Sym.initial t.sym) (Sym.domain_ok t.sym)

let nonstate_ids t =
  let net = Sym.net t.sym in
  List.filter
    (fun s -> not (Sym.is_state t.sym s))
    (List.init (Net.num_signals net) Fun.id)

let present_ids t = List.init (nsig t) Fun.id

let next_ids t =
  List.map (fun s -> nsig t + s) (Sym.state_signals t.sym)

let monolithic t =
  match t.mono with
  | Some b -> b
  | None ->
      let problem =
        { Schedule.supports = t.supports; quantify = nonstate_ids t }
      in
      let sched = schedule_of t.heuristic problem in
      let { Apply.value; peak_nodes } =
        Apply.execute ~rels:t.parts ~cube_of:(cube_of t) sched
      in
      t.mono <- Some value;
      t.mono_peak <- peak_nodes;
      value

let monolithic_peak t = t.mono_peak

let image_schedule t =
  match t.img_sched with
  | Some s -> s
  | None ->
      let supports = Array.append t.supports [| Sym.state_signals t.sym |] in
      let problem = { Schedule.supports; quantify = present_ids t } in
      let s = schedule_of t.heuristic problem in
      t.img_sched <- Some s;
      s

let preimage_schedule t =
  match t.pre_sched with
  | Some s -> s
  | None ->
      let supports = Array.append t.supports [| next_ids t |] in
      let problem =
        { Schedule.supports; quantify = nonstate_ids t @ next_ids t }
      in
      let s = schedule_of t.heuristic problem in
      t.pre_sched <- Some s;
      s

let image ?(use_mono = false) t s =
  let next_result =
    if use_mono then
      Bdd.and_exists ~cube:(Sym.state_cube t.sym) s (monolithic t)
    else begin
      let rels = Array.append t.parts [| s |] in
      let sched = image_schedule t in
      (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value
    end
  in
  Bdd.dand
    (Bdd.permute (Sym.next_to_pres t.sym) next_result)
    (Sym.domain_ok t.sym)

let preimage ?(use_mono = false) t s =
  let s_next = Bdd.permute (Sym.pres_to_next t.sym) s in
  let result =
    if use_mono then
      Bdd.and_exists ~cube:(Sym.next_cube t.sym) s_next (monolithic t)
    else begin
      let rels = Array.append t.parts [| s_next |] in
      let sched = preimage_schedule t in
      (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value
    end
  in
  Bdd.dand result (Sym.domain_ok t.sym)

let preimage_within t ~restrict_to s = Bdd.dand restrict_to (preimage t s)

let abs_schedule t ~with_latches p_support =
  let key = (p_support, with_latches) in
  match Hashtbl.find_opt t.abs_scheds key with
  | Some s -> s
  | None ->
      let nparts =
        if with_latches then Array.length t.parts
        else List.length (Sym.net t.sym).Net.tables
      in
      let supports =
        Array.append (Array.sub t.supports 0 nparts) [| p_support |]
      in
      let problem = { Schedule.supports; quantify = nonstate_ids t } in
      let s = schedule_of t.heuristic problem in
      Hashtbl.replace t.abs_scheds key s;
      s

let abstract_to_states t p =
  let net = Sym.net t.sym in
  let ntables = List.length net.Net.tables in
  let table_parts = Array.sub t.parts 0 ntables in
  let rels = Array.append table_parts [| p |] in
  let sched = abs_schedule t ~with_latches:false (abstract_support t p) in
  (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value

let abstract_to_edges t p =
  let rels = Array.append t.parts [| p |] in
  let sched = abs_schedule t ~with_latches:true (abstract_support t p) in
  (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value

let transition_constraint t extra =
  {
    t with
    parts = Array.append t.parts [| extra |];
    supports = Array.append t.supports [| abstract_support t extra |];
    mono = None;
    mono_peak = 0;
    img_sched = None;
    pre_sched = None;
    abs_scheds = Hashtbl.create 16;
  }

let map_parts t f =
  {
    t with
    parts = Array.map f t.parts;
    mono = None;
    mono_peak = 0;
    (* supports unchanged: restrict-style maps only shrink supports *)
  }

(* The manager-independent shape of a built relation: heuristic, abstract
   supports, and the image/preimage schedules (plain variant data).  No
   BDD handles — safe to share across domains.  The parts themselves
   travel separately as a [Bdd.snapshot]. *)
type shared = {
  sh_heuristic : heuristic;
  sh_supports : int list array;
  sh_img : Schedule.t;
  sh_pre : Schedule.t;
}

let share t =
  {
    sh_heuristic = t.heuristic;
    sh_supports = t.supports;
    sh_img = image_schedule t;
    sh_pre = preimage_schedule t;
  }

let of_shared sym sh ~parts =
  if Array.length parts <> Array.length sh.sh_supports then
    invalid_arg "Trans.of_shared: parts/supports length mismatch";
  {
    sym;
    heuristic = sh.sh_heuristic;
    parts;
    supports = sh.sh_supports;
    mono = None;
    mono_peak = 0;
    img_sched = Some sh.sh_img;
    pre_sched = Some sh.sh_pre;
    abs_scheds = Hashtbl.create 16;
  }

let parts_size t =
  Array.fold_left (fun acc p -> acc + Bdd.dag_size p) 0 t.parts

let rel_profile t =
  let sizes = Array.map Bdd.dag_size t.parts in
  {
    Hsis_obs.Obs.rel_parts = Array.length t.parts;
    rel_nodes = Array.fold_left ( + ) 0 sizes;
    rel_largest = Array.fold_left max 0 sizes;
  }

let solve_step t ~pres ~next =
  let conj = Array.fold_left Bdd.dand (Bdd.dand pres next) t.parts in
  conj
