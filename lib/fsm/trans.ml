open Hsis_bdd
open Hsis_mv
open Hsis_blifmv
open Hsis_quant

type heuristic = Min_width | Pair_clustering | Naive
type strategy = Monolithic | Partitioned | Iso_shared

let strategy_name = function
  | Monolithic -> "mono"
  | Partitioned -> "part"
  | Iso_shared -> "iso"

let strategy_of_name = function
  | "mono" | "monolithic" -> Some Monolithic
  | "part" | "partitioned" -> Some Partitioned
  | "iso" | "iso-shared" | "iso_shared" -> Some Iso_shared
  | _ -> None

(* How each part was obtained: built directly from its table/latch, or
   materialized by permuting an earlier (master) part.  The origin is what
   lets [share] ship one master component plus renamings instead of N
   copies. *)
type origin = Direct | Permuted of { src : int; perm : (int * int) list }

(* A part slot: directly-built parts are materialized at [build]; renamed
   copies stay [Pending] — holding only their source index and varmap —
   until an evaluation first touches them ([force_part]).  A property
   check that never conjoins a copy's part never pays its permute. *)
type cell =
  | Built of Bdd.t
  | Pending of { src : int; vm : Bdd.varmap }

type t = {
  sym : Sym.t;
  heuristic : heuristic;
  mutable strategy : strategy;
  cells : cell array;
  origins : origin array;
  supports : int list array; (* abstract: signal id, or n + id for next *)
  iso_masters : int;
  iso_instances : int;
  mutable iso_nodes_saved : int;
  mutable iso_permute_time : float;
  mutable mono : Bdd.t option;
  mutable mono_peak : int;
  mutable img_sched : Schedule.t option;
  mutable pre_sched : Schedule.t option;
  (* abstraction schedules keyed by the abstract support of the predicate
     and whether latch parts participate *)
  abs_scheds : (int list * bool, Schedule.t) Hashtbl.t;
}

let schedule_of heuristic problem =
  match heuristic with
  | Min_width -> Schedule.min_width problem
  | Pair_clustering -> Schedule.pair_clustering problem
  | Naive -> Schedule.naive problem

let sym t = t.sym
let man t = Sym.man t.sym

(* Materialize one part, permuting its (recursively forced) source on
   first touch.  The sharing counters accumulate here rather than at
   [build]: they record work actually avoided, and [tr_permute_time] the
   permute cost actually paid. *)
let rec force_part t i =
  match t.cells.(i) with
  | Built b -> b
  | Pending { src; vm } ->
      let srcb = force_part t src in
      let b, dt = Hsis_obs.Obs.Clock.wall (fun () -> Bdd.permute vm srcb) in
      t.iso_permute_time <- t.iso_permute_time +. dt;
      t.iso_nodes_saved <- t.iso_nodes_saved + Bdd.dag_size srcb;
      t.cells.(i) <- Built b;
      b

let parts t = Array.init (Array.length t.cells) (force_part t)
let strategy t = t.strategy
let set_strategy t s = t.strategy <- s

let nsig t = Net.num_signals (Sym.net t.sym)

(* Abstract id -> quantification cube over the proper variable space. *)
let cube_of t ids =
  let n = nsig t in
  Bdd.conj (man t)
    (List.map
       (fun id ->
         if id < n then Enc.cube (Sym.pres t.sym id)
         else Enc.cube (Sym.next t.sym (id - n)))
       ids)

(* Abstract support of an arbitrary BDD, via its variable support. *)
let abstract_support t b =
  let n = nsig t in
  let var2abs = Hashtbl.create 64 in
  for s = 0 to n - 1 do
    List.iter
      (fun v -> Hashtbl.replace var2abs v s)
      (Enc.var_indices (Sym.pres t.sym s));
    if Sym.is_state t.sym s then
      List.iter
        (fun v -> Hashtbl.replace var2abs v (n + s))
        (Enc.var_indices (Sym.next t.sym s))
  done;
  Bdd.support b
  |> List.filter_map (Hashtbl.find_opt var2abs)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Isomorphism detection.  Provenance says which contiguous runs of the
   flat table/latch lists came from which .subckt instance; flattening
   renames but never reorders, so run position k of one instance of a
   master corresponds to run position k of every other.  We derive the
   signal renaming positionally from those corresponding tables/latches
   and verify — structurally, per part — that each member really is a
   renamed copy of the group's first instance.  Any mismatch (different
   rows, domain sizes, state-ness, a non-functional or non-injective
   renaming) silently drops the member back to direct construction. *)

type 'vm plan_entry =
  | Plan_build
  | Plan_copy of { src : int; perm : (int * int) list; vm : 'vm }

exception Not_iso

let iso_plan sym (prov : Flatten.provenance) =
  let net = Sym.net sym in
  let tables = Array.of_list net.Net.tables in
  let latches = Array.of_list net.Net.latches in
  let ntab = Array.length tables in
  let nparts = ntab + Array.length latches in
  let plan = Array.make nparts Plan_build in
  let claimed = Array.make nparts false in
  let masters = ref 0 and instances = ref 0 in
  let size (i : Flatten.inst) =
    snd i.Flatten.i_tables + snd i.Flatten.i_latches
  in
  let part_ids (i : Flatten.inst) =
    let ts, tl = i.Flatten.i_tables and ls, ll = i.Flatten.i_latches in
    List.init tl (fun k -> ts + k) @ List.init ll (fun k -> ntab + ls + k)
  in
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (i : Flatten.inst) ->
      match Hashtbl.find_opt groups i.Flatten.i_master with
      | Some is -> Hashtbl.replace groups i.Flatten.i_master (i :: is)
      | None ->
          Hashtbl.add groups i.Flatten.i_master [ i ];
          order := i.Flatten.i_master :: !order)
    prov;
  let group_list =
    List.filter_map
      (fun master ->
        match Hashtbl.find groups master with
        | (_ :: _ :: _) as is -> Some (List.rev is)
        | _ -> None)
      (List.rev !order)
  in
  (* Biggest subtrees first: an outer replicated block subsumes any
     replication nested inside it.  Ties keep flat-position order. *)
  let group_list =
    List.stable_sort
      (fun a b -> compare (size (List.hd b)) (size (List.hd a)))
      group_list
  in
  let dom_size s = Domain.size (Net.dom net s) in
  (* Signal renaming rep -> member, derived positionally; raises Not_iso
     when the member is not a renamed copy. *)
  let renaming (rep : Flatten.inst) (m : Flatten.inst) =
    if
      snd rep.Flatten.i_tables <> snd m.Flatten.i_tables
      || snd rep.Flatten.i_latches <> snd m.Flatten.i_latches
    then raise Not_iso;
    let map = Hashtbl.create 64 in
    let img = Hashtbl.create 64 in
    let bind s s' =
      match Hashtbl.find_opt map s with
      | Some s'' -> if s'' <> s' then raise Not_iso
      | None ->
          if Hashtbl.mem img s' then raise Not_iso;
          if
            dom_size s <> dom_size s'
            || Sym.is_state sym s <> Sym.is_state sym s'
          then raise Not_iso;
          Hashtbl.add map s s';
          Hashtbl.add img s' s
    in
    for k = 0 to snd rep.Flatten.i_tables - 1 do
      let a = tables.(fst rep.Flatten.i_tables + k)
      and b = tables.(fst m.Flatten.i_tables + k) in
      if
        List.length a.Net.ft_inputs <> List.length b.Net.ft_inputs
        || List.length a.Net.ft_outputs <> List.length b.Net.ft_outputs
        || a.Net.ft_rows <> b.Net.ft_rows
        || a.Net.ft_default <> b.Net.ft_default
      then raise Not_iso;
      List.iter2 bind a.Net.ft_inputs b.Net.ft_inputs;
      List.iter2 bind a.Net.ft_outputs b.Net.ft_outputs
    done;
    for k = 0 to snd rep.Flatten.i_latches - 1 do
      let a = latches.(fst rep.Flatten.i_latches + k)
      and b = latches.(fst m.Flatten.i_latches + k) in
      if a.Net.fl_reset <> b.Net.fl_reset then raise Not_iso;
      bind a.Net.fl_input b.Net.fl_input;
      bind a.Net.fl_output b.Net.fl_output
    done;
    (* Identity bindings (shared actuals) need no variable pairs; domain
       sizes match, so the per-signal encodings have equal widths. *)
    Hashtbl.fold
      (fun s s' acc ->
        if s = s' then acc
        else
          let p =
            List.combine
              (Enc.var_indices (Sym.pres sym s))
              (Enc.var_indices (Sym.pres sym s'))
          in
          let p =
            if Sym.is_state sym s then
              p
              @ List.combine
                  (Enc.var_indices (Sym.next sym s))
                  (Enc.var_indices (Sym.next sym s'))
            else p
          in
          p @ acc)
      map []
  in
  let unclaimed i = List.for_all (fun p -> not claimed.(p)) (part_ids i) in
  List.iter
    (fun members ->
      match List.filter unclaimed members with
      | rep :: (_ :: _ as rest) when size rep > 0 ->
          let shared =
            List.filter_map
              (fun m ->
                match renaming rep m with
                | pairs -> Some (m, pairs)
                | exception Not_iso -> None)
              rest
          in
          if shared <> [] then begin
            incr masters;
            List.iter (fun p -> claimed.(p) <- true) (part_ids rep);
            List.iter
              (fun (m, pairs) ->
                incr instances;
                List.iter (fun p -> claimed.(p) <- true) (part_ids m);
                let vm = Bdd.make_varmap (Sym.man sym) pairs in
                List.iter2
                  (fun rp mp ->
                    plan.(mp) <- Plan_copy { src = rp; perm = pairs; vm })
                  (part_ids rep) (part_ids m))
              shared
          end
      | _ -> ())
    group_list;
  (plan, !masters, !instances)

let build ?(heuristic = Min_width) ?(strategy = Partitioned) ?(prov = []) sym =
  let net = Sym.net sym in
  let tables = Array.of_list net.Net.tables in
  let latches = Array.of_list net.Net.latches in
  let ntab = Array.length tables in
  let nparts = ntab + Array.length latches in
  let plan, masters, instances =
    match strategy with
    | Iso_shared when prov <> [] -> iso_plan sym prov
    | _ -> (Array.make nparts Plan_build, 0, 0)
  in
  let bman = Sym.man sym in
  let cells = Array.make nparts (Built (Bdd.dtrue bman)) in
  let origins = Array.make nparts Direct in
  let direct i =
    if i < ntab then Rel.table_rel sym tables.(i)
    else Rel.latch_rel sym latches.(i - ntab)
  in
  for i = 0 to nparts - 1 do
    match plan.(i) with
    (* masters precede their copies in flat order; the src >= i guard is
       pure defense against a provenance that violates that.  Copies are
       NOT permuted here: the cell stays pending until an evaluation
       first touches the part ([force_part]). *)
    | Plan_copy { src; perm; vm } when src < i ->
        cells.(i) <- Pending { src; vm };
        origins.(i) <- Permuted { src; perm }
    | Plan_build | Plan_copy _ -> cells.(i) <- Built (direct i)
  done;
  let supports =
    Array.init nparts (fun i ->
        if i < ntab then Rel.table_support net tables.(i)
        else Rel.latch_support net latches.(i - ntab))
  in
  {
    sym;
    heuristic;
    strategy;
    cells;
    origins;
    supports;
    iso_masters = masters;
    iso_instances = instances;
    iso_nodes_saved = 0;
    iso_permute_time = 0.0;
    mono = None;
    mono_peak = 0;
    img_sched = None;
    pre_sched = None;
    abs_scheds = Hashtbl.create 16;
  }

let initial t = Bdd.dand (Sym.initial t.sym) (Sym.domain_ok t.sym)

let nonstate_ids t =
  let net = Sym.net t.sym in
  List.filter
    (fun s -> not (Sym.is_state t.sym s))
    (List.init (Net.num_signals net) Fun.id)

let present_ids t = List.init (nsig t) Fun.id

let next_ids t =
  List.map (fun s -> nsig t + s) (Sym.state_signals t.sym)

let monolithic t =
  match t.mono with
  | Some b -> b
  | None ->
      let problem =
        { Schedule.supports = t.supports; quantify = nonstate_ids t }
      in
      let sched = schedule_of t.heuristic problem in
      let { Apply.value; peak_nodes } =
        Apply.execute ~rels:(parts t) ~cube_of:(cube_of t) sched
      in
      t.mono <- Some value;
      t.mono_peak <- peak_nodes;
      value

let monolithic_peak t = t.mono_peak

let image_schedule t =
  match t.img_sched with
  | Some s -> s
  | None ->
      let supports = Array.append t.supports [| Sym.state_signals t.sym |] in
      let problem = { Schedule.supports; quantify = present_ids t } in
      let s = schedule_of t.heuristic problem in
      t.img_sched <- Some s;
      s

let preimage_schedule t =
  match t.pre_sched with
  | Some s -> s
  | None ->
      let supports = Array.append t.supports [| next_ids t |] in
      let problem =
        { Schedule.supports; quantify = nonstate_ids t @ next_ids t }
      in
      let s = schedule_of t.heuristic problem in
      t.pre_sched <- Some s;
      s

let image t s =
  let next_result =
    match t.strategy with
    | Monolithic -> Bdd.and_exists ~cube:(Sym.state_cube t.sym) s (monolithic t)
    | Partitioned | Iso_shared ->
        let rels = Array.append (parts t) [| s |] in
        let sched = image_schedule t in
        (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value
  in
  Bdd.dand
    (Bdd.permute (Sym.next_to_pres t.sym) next_result)
    (Sym.domain_ok t.sym)

let preimage t s =
  let s_next = Bdd.permute (Sym.pres_to_next t.sym) s in
  let result =
    match t.strategy with
    | Monolithic ->
        Bdd.and_exists ~cube:(Sym.next_cube t.sym) s_next (monolithic t)
    | Partitioned | Iso_shared ->
        let rels = Array.append (parts t) [| s_next |] in
        let sched = preimage_schedule t in
        (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value
  in
  Bdd.dand result (Sym.domain_ok t.sym)

let preimage_within t ~restrict_to s = Bdd.dand restrict_to (preimage t s)

let abs_schedule t ~with_latches p_support =
  let key = (p_support, with_latches) in
  match Hashtbl.find_opt t.abs_scheds key with
  | Some s -> s
  | None ->
      let nparts =
        if with_latches then Array.length t.cells
        else List.length (Sym.net t.sym).Net.tables
      in
      let supports =
        Array.append (Array.sub t.supports 0 nparts) [| p_support |]
      in
      let problem = { Schedule.supports; quantify = nonstate_ids t } in
      let s = schedule_of t.heuristic problem in
      Hashtbl.replace t.abs_scheds key s;
      s

let abstract_to_states t p =
  let net = Sym.net t.sym in
  let ntables = List.length net.Net.tables in
  let table_parts = Array.init ntables (force_part t) in
  let rels = Array.append table_parts [| p |] in
  let sched = abs_schedule t ~with_latches:false (abstract_support t p) in
  (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value

let abstract_to_edges t p =
  let rels = Array.append (parts t) [| p |] in
  let sched = abs_schedule t ~with_latches:true (abstract_support t p) in
  (Apply.execute ~rels ~cube_of:(cube_of t) sched).Apply.value

let transition_constraint t extra =
  {
    t with
    cells = Array.append t.cells [| Built extra |];
    origins = Array.append t.origins [| Direct |];
    supports = Array.append t.supports [| abstract_support t extra |];
    mono = None;
    mono_peak = 0;
    img_sched = None;
    pre_sched = None;
    abs_scheds = Hashtbl.create 16;
  }

let map_parts t f =
  {
    t with
    (* mapping forces every pending copy: the mapped result depends on
       the materialized part *)
    cells = Array.map (fun b -> Built (f b)) (parts t);
    (* the mapped parts are no longer renamed copies of each other *)
    origins = Array.make (Array.length t.cells) Direct;
    mono = None;
    mono_peak = 0;
    (* supports unchanged: restrict-style maps only shrink supports *)
  }

let tr_profile t =
  {
    Hsis_obs.Obs.tr_strategy = strategy_name t.strategy;
    tr_masters = t.iso_masters;
    tr_instances = t.iso_instances;
    tr_shared_nodes_saved = t.iso_nodes_saved;
    tr_permute_time = t.iso_permute_time;
  }

(* The manager-independent shape of a built relation: heuristic, strategy,
   abstract supports, the image/preimage schedules and the per-part
   reconstruction sources (plain variant data).  No BDD handles — safe to
   share across domains.  The root parts travel separately as a
   [Bdd.snapshot]; permuted parts travel as their renaming only and are
   re-materialized on import. *)
type part_src = Sh_root of int | Sh_perm of { src : int; perm : (int * int) list }

type shared = {
  sh_heuristic : heuristic;
  sh_strategy : strategy;
  sh_supports : int list array;
  sh_srcs : part_src array;
  sh_masters : int;
  sh_instances : int;
  sh_img : Schedule.t;
  sh_pre : Schedule.t;
}

let share t =
  let nroots = ref 0 in
  let srcs =
    Array.map
      (function
        | Direct ->
            let k = !nroots in
            incr nroots;
            Sh_root k
        | Permuted { src; perm } -> Sh_perm { src; perm })
      t.origins
  in
  {
    sh_heuristic = t.heuristic;
    sh_strategy = t.strategy;
    sh_supports = t.supports;
    sh_srcs = srcs;
    sh_masters = t.iso_masters;
    sh_instances = t.iso_instances;
    sh_img = image_schedule t;
    sh_pre = preimage_schedule t;
  }

(* Only Direct parts ship as snapshot roots, and Direct cells are always
   [Built] — sharing never forces a pending copy (the importer
   re-materializes copies lazily too). *)
let shared_roots t =
  let acc = ref [] in
  Array.iteri
    (fun i o ->
      match (o, t.cells.(i)) with
      | Direct, Built b -> acc := b :: !acc
      | Direct, Pending _ -> assert false
      | Permuted _, _ -> ())
    t.origins;
  List.rev !acc

let shared_nroots sh =
  Array.fold_left
    (fun n s -> match s with Sh_root _ -> n + 1 | Sh_perm _ -> n)
    0 sh.sh_srcs

let shared_strategy sh = sh.sh_strategy

let of_shared sym sh ~roots =
  if Array.length roots <> shared_nroots sh then
    invalid_arg "Trans.of_shared: root count mismatch";
  let n = Array.length sh.sh_srcs in
  let bman = Sym.man sym in
  let cells = Array.make n (Built (Bdd.dtrue bman)) in
  let origins = Array.make n Direct in
  Array.iteri
    (fun i s ->
      match s with
      | Sh_root k -> cells.(i) <- Built roots.(k)
      | Sh_perm { src; perm } ->
          if src >= i then
            invalid_arg "Trans.of_shared: forward permutation source";
          (* lazy on import too: the permute runs on first touch *)
          cells.(i) <- Pending { src; vm = Bdd.make_varmap bman perm };
          origins.(i) <- Permuted { src; perm })
    sh.sh_srcs;
  {
    sym;
    heuristic = sh.sh_heuristic;
    strategy = sh.sh_strategy;
    cells;
    origins;
    supports = sh.sh_supports;
    iso_masters = sh.sh_masters;
    iso_instances = sh.sh_instances;
    iso_nodes_saved = 0;
    iso_permute_time = 0.0;
    mono = None;
    mono_peak = 0;
    img_sched = Some sh.sh_img;
    pre_sched = Some sh.sh_pre;
    abs_scheds = Hashtbl.create 16;
  }

(* Size of the part at [i] without forcing it: a renamed copy has the
   node count of (a permutation of) its source — the source's size is the
   exact answer for level-preserving renamings and the right estimate
   otherwise, and profiling must not trigger materialization. *)
let rec cell_size t i =
  match t.cells.(i) with
  | Built b -> Bdd.dag_size b
  | Pending { src; _ } -> cell_size t src

let parts_size t =
  let n = Array.length t.cells in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + cell_size t i
  done;
  !acc

let rel_profile t =
  let sizes = Array.init (Array.length t.cells) (cell_size t) in
  {
    Hsis_obs.Obs.rel_parts = Array.length t.cells;
    rel_nodes = Array.fold_left ( + ) 0 sizes;
    rel_largest = Array.fold_left max 0 sizes;
  }

let solve_step t ~pres ~next =
  let conj = Array.fold_left Bdd.dand (Bdd.dand pres next) (parts t) in
  conj
