(* Share-nothing parallel task execution on OCaml 5 domains.

   The shape is a classic fixed-size work-stealing pool specialized to a
   statically known task set: task indices are dealt round-robin onto one
   deque per worker up front, owners consume their own share FIFO from the
   front (so a one-worker pool runs tasks in ascending index order — what
   a sequential fail-fast caller expects), and an idle worker scans its
   siblings stealing from the back (the task its owner would reach last).
   Because no task ever enqueues further work, "every deque empty" is a
   sound termination condition: any remaining task is already executing in
   some worker.

   Deques are guarded by one mutex each rather than a lock-free Chase-Lev
   structure: tasks here are verification problems (milliseconds to
   minutes), so deque traffic is a few dozen operations per second and
   correctness-by-construction wins.  All cross-domain communication is
   the deques, one cancellation flag, one steal counter, and the results
   array — each slot of which is written by exactly one worker (the one
   that owns that task index) and read only after every domain is
   joined. *)

open Hsis_obs
open Hsis_limits

type stats = {
  jobs : int;
  tasks : int;
  completed : int;
  cancelled : int;
  steals : int;
  wall : float;
  worker_tasks : int array;
  worker_busy : float array;
}

let default_jobs () = Domain.recommended_domain_count ()

let utilization st =
  Array.map
    (fun busy -> if st.wall > 0.0 then busy /. st.wall else 0.0)
    st.worker_busy

let with_cancelled (l : Limits.t) extra =
  {
    l with
    Limits.cancelled =
      Some
        (match l.Limits.cancelled with
        | None -> extra
        | Some own -> fun () -> extra () || own ());
  }

(* ------------------------------------------------------------------ *)
(* Work-stealing deque (mutex-guarded; owner front, thieves back) *)

module Deque = struct
  type t = {
    lock : Mutex.t;
    buf : int array;  (** task indices; filled once at pool setup *)
    mutable top : int;  (** owner end (inclusive) *)
    mutable bot : int;  (** steal end (exclusive) *)
  }

  let of_list items =
    let buf = Array.of_list items in
    { lock = Mutex.create (); buf; top = 0; bot = Array.length buf }

  let locked d f =
    Mutex.lock d.lock;
    let r = f () in
    Mutex.unlock d.lock;
    r

  let pop d =
    locked d (fun () ->
        if d.bot <= d.top then None
        else begin
          let i = d.buf.(d.top) in
          d.top <- d.top + 1;
          Some i
        end)

  let steal d =
    locked d (fun () ->
        if d.bot <= d.top then None
        else begin
          d.bot <- d.bot - 1;
          Some d.buf.(d.bot)
        end)
end

(* ------------------------------------------------------------------ *)
(* The pool *)

type 'a slot = Empty | Done of 'a | Raised of exn * Printexc.raw_backtrace

let run ?jobs ?(limits = Limits.none) ?stop_when ~tasks f =
  let jobs =
    let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
    max 1 (min j (max 1 tasks))
  in
  let t0 = Obs.Clock.now () in
  let cancel = Atomic.make false in
  let steals = Atomic.make 0 in
  let cancelled_tasks = Atomic.make 0 in
  (* Pool-wide budget: consulting [breach] with live:0 checks the user
     callback and the deadline but never the node quota, which is a
     per-manager notion the pool has no view of. *)
  let pool_cancelled () =
    Atomic.get cancel
    || (not (Limits.is_none limits))
       && (match Limits.breach limits ~live:0 with
          | Some _ ->
              Atomic.set cancel true;
              true
          | None -> false)
  in
  let results = Array.make tasks Empty in
  let worker_tasks = Array.make jobs 0 in
  let worker_busy = Array.make jobs 0.0 in
  (* Deal task indices round-robin; each worker's own list is ascending,
     so owners run their share lowest-index first and thieves take the
     highest (the one its owner would reach last) — either way every index
     runs exactly once. *)
  let deques =
    Array.init jobs (fun w ->
        Deque.of_list
          (List.filter (fun i -> i mod jobs = w) (List.init tasks Fun.id)))
  in
  let next_task w =
    match Deque.pop deques.(w) with
    | Some i -> Some i
    | None ->
        let rec scan k =
          if k >= jobs then None
          else
            match Deque.steal deques.((w + k) mod jobs) with
            | Some i ->
                Atomic.incr steals;
                Some i
            | None -> scan (k + 1)
        in
        scan 1
  in
  let worker w () =
    let rec loop () =
      match next_task w with
      | None -> ()
      | Some i ->
          if pool_cancelled () then begin
            Atomic.incr cancelled_tasks;
            loop ()
          end
          else begin
            let t1 = Obs.Clock.now () in
            (match f ~cancelled:pool_cancelled i with
            | r ->
                results.(i) <- Done r;
                (match stop_when with
                | Some p when p i r -> Atomic.set cancel true
                | _ -> ())
            | exception e ->
                results.(i) <- Raised (e, Printexc.get_raw_backtrace ());
                (* an exception is never part of a deterministic result
                   set: drain the pool and re-raise on the caller *)
                Atomic.set cancel true);
            worker_tasks.(w) <- worker_tasks.(w) + 1;
            worker_busy.(w) <- worker_busy.(w) +. (Obs.Clock.now () -. t1);
            loop ()
          end
    in
    loop ()
  in
  if jobs = 1 then worker 0 ()
  else begin
    let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join domains
  end;
  (* Deterministic error protocol: the smallest-index exception wins,
     whatever order the workers actually hit them in. *)
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty | Done _ -> ())
    results;
  let completed =
    Array.fold_left
      (fun acc -> function Done _ -> acc + 1 | _ -> acc)
      0 results
  in
  let stats =
    {
      jobs;
      tasks;
      completed;
      cancelled = tasks - completed;
      steals = Atomic.get steals;
      wall = Obs.Clock.now () -. t0;
      worker_tasks;
      worker_busy;
    }
  in
  ( Array.map (function Done r -> Some r | _ -> None) results,
    stats )

let map_array ?jobs ?limits f xs =
  let results, stats =
    run ?jobs ?limits ~tasks:(Array.length xs) (fun ~cancelled:_ i ->
        f xs.(i))
  in
  ( Array.map
      (function
        | Some r -> r
        | None -> raise (Limits.Interrupted Limits.Cancelled))
      results,
    stats )

let map ?jobs ?limits f xs =
  let rs, stats = map_array ?jobs ?limits f (Array.of_list xs) in
  (Array.to_list rs, stats)

let worker_samples st =
  List.init st.jobs (fun w ->
      {
        Obs.w_tasks = st.worker_tasks.(w);
        Obs.w_time = st.worker_busy.(w);
      })
