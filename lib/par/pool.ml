(* Persistent fork-join pool.  One central queue of erased runner closures
   under a mutex: tasks here are coarse (cutoff-gated cofactor subtrees),
   so a shared queue does not contend measurably and keeps claim semantics
   trivial — each future owns an atomic claim flag, and whoever wins the
   CAS runs the task, so a task queued twice conceptually (once in the
   queue, once by its work-first joiner) still executes exactly once. *)

type 'a state =
  | Pending of (unit -> 'a)
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a future = {
  claimed : bool Atomic.t;
  state : 'a state Atomic.t;
  forker : int; (* Domain id, for the stolen counter *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  n_jobs : int;
  forked : int Atomic.t;
  stolen : int Atomic.t;
}

let jobs t = t.n_jobs
let counters t = (Atomic.get t.forked, Atomic.get t.stolen)

(* Run a claimed future's thunk and publish the outcome.  The Atomic.set
   is the release point: a joiner observing [Done]/[Raised] also observes
   every plain write the thunk made before it. *)
let execute fut =
  match Atomic.get fut.state with
  | Pending thunk ->
      let outcome =
        try Done (thunk ())
        with e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      Atomic.set fut.state outcome
  | Done _ | Raised _ -> ()

let try_pop t =
  Mutex.lock t.lock;
  let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.lock;
  job

let rec worker t =
  Mutex.lock t.lock;
  let rec next () =
    if not t.live then None
    else if Queue.is_empty t.queue then begin
      Condition.wait t.cond t.lock;
      next ()
    end
    else Some (Queue.pop t.queue)
  in
  let job = next () in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some run ->
      run ();
      worker t

let create ~jobs =
  let t =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      live = true;
      n_jobs = max 1 jobs;
      forked = Atomic.make 0;
      stolen = Atomic.make 0;
    }
  in
  for _ = 2 to t.n_jobs do
    ignore (Domain.spawn (fun () -> worker t))
  done;
  t

let fork t thunk =
  let fut =
    {
      claimed = Atomic.make false;
      state = Atomic.make (Pending thunk);
      forker = (Domain.self () :> int);
    }
  in
  let runner () =
    if Atomic.compare_and_set fut.claimed false true then begin
      if (Domain.self () :> int) <> fut.forker then Atomic.incr t.stolen;
      execute fut
    end
  in
  Atomic.incr t.forked;
  Mutex.lock t.lock;
  Queue.push runner t.queue;
  Condition.signal t.cond;
  Mutex.unlock t.lock;
  fut

let join t fut =
  (* Work-first: unclaimed means nobody started it — cheapest is to run it
     on this domain right now (this is the common case under low load). *)
  if Atomic.compare_and_set fut.claimed false true then execute fut;
  let rec wait () =
    match Atomic.get fut.state with
    | Done v -> v
    | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending _ -> (
        (* Claimed elsewhere and still running: help drain the queue
           rather than spin — nested forks mean the task we run here may
           be exactly what our future is waiting on. *)
        match try_pop t with
        | Some run ->
            run ();
            wait ()
        | None ->
            Domain.cpu_relax ();
            wait ())
  in
  wait ()

let shutdown t =
  Mutex.lock t.lock;
  t.live <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock
