open Hsis_obs
open Hsis_limits

(** Share-nothing task-level parallelism on OCaml 5 domains.

    A fixed-size pool of worker domains executes a statically known set of
    tasks.  Task indices are dealt round-robin onto one work-stealing deque
    per worker: owners consume their own share in ascending index order
    (so a one-worker pool degenerates to a plain sequential loop), idle
    workers steal from the back of a sibling's deque, so imbalanced
    workloads (one huge design among small ones) drain evenly without a
    central lock on the hot path.

    The pool shares {e nothing} between tasks: a task is expected to build
    its own world (its own [Net], [Trans] and BDD manager) inside the
    worker domain.  Results are collected keyed by task index, so the
    output of a run is independent of worker count and scheduling order —
    the foundation of the [-j]-invariance guarantees of [hsis fuzz] and
    [hsis check].

    Cancellation is cooperative and bridged through {!Limits}: the pool
    watches an optional pool-wide budget (deadline / user callback), and
    each task receives a [cancelled] thunk it can thread into its own
    engine-level [Limits.t] (see {!with_cancelled}).  [stop_when] turns on
    fail-fast mode: once a designated result (say, a definitive
    [Verdict.Fail]) lands, sibling tasks are cancelled — running ones see
    their [cancelled] thunk flip, queued ones are skipped and reported as
    [None]. *)

type stats = {
  jobs : int;  (** worker count actually used *)
  tasks : int;  (** tasks submitted *)
  completed : int;  (** tasks that ran to completion *)
  cancelled : int;  (** tasks skipped by cancellation / fail-fast *)
  steals : int;  (** successful steals from a sibling's deque *)
  wall : float;  (** wall-clock seconds for the whole run *)
  worker_tasks : int array;  (** per-worker tasks executed *)
  worker_busy : float array;  (** per-worker seconds spent inside tasks *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val utilization : stats -> float array
(** Per-worker busy / wall fraction (0 when wall is 0). *)

val with_cancelled : Limits.t -> (unit -> bool) -> Limits.t
(** [with_cancelled limits extra] composes [extra] into the budget's
    cancellation callback (keeping deadline / node / step quotas), so an
    engine polling the returned budget also observes pool-level
    cancellation. *)

val run :
  ?jobs:int ->
  ?limits:Limits.t ->
  ?stop_when:(int -> 'a -> bool) ->
  tasks:int ->
  (cancelled:(unit -> bool) -> int -> 'a) ->
  'a option array * stats
(** [run ~tasks f] executes [f ~cancelled i] for every [i] in
    [0 .. tasks-1] on [jobs] worker domains (default
    {!default_jobs}, clamped to [tasks]; [jobs = 1] runs inline on the
    calling domain, no spawn) and returns the results keyed by task
    index.

    [results.(i) = None] iff task [i] was skipped by cancellation.
    [limits] is a pool-wide budget: once its deadline passes (or its own
    [cancelled] callback fires) no further task starts, and running tasks
    observe it through their [cancelled] thunk.  [stop_when i r] is
    consulted on each completed result; returning [true] cancels the
    remaining siblings (fail-fast).

    If a task raises, the exception with the smallest task index is
    re-raised on the calling domain after all workers have drained. *)

val map_array :
  ?jobs:int -> ?limits:Limits.t -> ('a -> 'b) -> 'a array -> 'b array * stats
(** Parallel [Array.map] (no fail-fast); cancellation by pool [limits]
    raises [Limits.Interrupted] rather than returning partial results. *)

val map :
  ?jobs:int -> ?limits:Limits.t -> ('a -> 'b) -> 'a list -> 'b list * stats
(** Parallel [List.map]; see {!map_array}. *)

val worker_samples : stats -> Obs.worker_sample list
(** The pool's per-worker activity as observability samples, ready to
    attach to a merged {!Obs.snapshot} (its [workers] member). *)
