(** Persistent fork-join pool for intra-operation parallelism.

    Unlike {!Par.run} — which spawns fresh domains per call and distributes a
    flat array of independent tasks — a [Pool.t] keeps [jobs - 1] helper
    domains parked on a condition variable and supports fine-grained nested
    fork/join: a recursive BDD apply forks one cofactor as a task and
    computes the other inline, then joins.  Joins are work-first: if the
    forked task has not been claimed yet, the joiner claims and runs it
    itself (no context switch, no latency); if another domain claimed it,
    the joiner helps by running other queued tasks while it waits.

    The pool never blocks process exit: helper domains are parked in
    [Condition.wait] and are simply abandoned at exit (verified safe), so
    {!shutdown} is broadcast-only and optional. *)

type t
(** A pool of cooperating domains.  The creating domain participates in
    work, so a pool with [jobs = n] uses [n] domains total. *)

type 'a future
(** A forked computation; claimed exactly once, joined exactly once. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] helper domains, parked until
    work arrives. *)

val jobs : t -> int

val fork : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  It runs on whichever domain claims it first — a parked
    helper, a joiner helping while it waits, or the forker itself at
    {!join}. *)

val join : t -> 'a future -> 'a
(** Wait for a future, claiming and running it inline when still
    unclaimed.  Re-raises the task's exception (with its backtrace) if it
    raised.  Every forked future must be joined — including on exceptional
    unwind — so a parallel section quiesces before its caller returns. *)

val counters : t -> int * int
(** [(forked, stolen)] cumulative counts; a task is "stolen" when it was
    executed by a domain other than the one that forked it. *)

val shutdown : t -> unit
(** Wake all parked helpers and let them exit.  Tasks already running
    finish; nothing new is accepted.  Idempotent. *)
