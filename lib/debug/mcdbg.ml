open Hsis_bdd
open Hsis_fsm
open Hsis_auto
open Hsis_check

type explanation =
  | Prop_value of Expr.t * bool
  | Conjuncts of (Ctl.t * explanation) list
  | Disjuncts of (Ctl.t * explanation) list
  | Negation of explanation
  | Successor of Trace.step * explanation
  | Path of Trace.step list * explanation
  | Lasso of Trace.t
  | Choice of (Trace.step * explanation) list
  | Holds
  | Unreachable of Ctl.t

type ctx = {
  trans : Trans.t;
  env : El.env;
  reach : Reach.t;
  sat_cache : (Ctl.t, Bdd.t) Hashtbl.t;
  fairness : Fair.compiled list;
}

let make ?(fairness = []) trans ~reach =
  {
    trans;
    env = El.prepare trans fairness;
    reach;
    sat_cache = Hashtbl.create 32;
    fairness;
  }

let sat ctx f =
  match Hashtbl.find_opt ctx.sat_cache f with
  | Some s -> s
  | None ->
      let s =
        Mc.sat_states ~fairness:ctx.fairness ctx.trans
          ~within:ctx.reach.Reach.reachable f
      in
      Hashtbl.replace ctx.sat_cache f s;
      s

let in_set state set = not (Bdd.is_false (Bdd.dand state set))

(* successors of a concrete state within reach *)
let successors ctx state =
  Bdd.dand (Trans.image ctx.trans state) ctx.reach.Reach.reachable

(* path of steps from a list of state cubes *)
let steps_of_states ctx states =
  List.map
    (fun s -> { Trace.state = Trace.decode_state ctx.trans s; others = [] })
    states

let rec explain_false ctx f state =
  match f with
  | Ctl.Prop e -> Prop_value (e, false)
  | Ctl.Not f -> Negation (explain_true ctx f state)
  | Ctl.And (a, b) ->
      let failing =
        List.filter (fun g -> not (in_set state (sat ctx g))) [ a; b ]
      in
      Conjuncts (List.map (fun g -> (g, explain_false ctx g state)) failing)
  | Ctl.Or (a, b) ->
      Disjuncts
        (List.map (fun g -> (g, explain_false ctx g state)) [ a; b ])
  | Ctl.Imp (a, b) ->
      (* fails because a holds and b fails *)
      Conjuncts
        [ (a, explain_true ctx a state); (b, explain_false ctx b state) ]
  | Ctl.AX f ->
      (* some successor violates f *)
      let bad = Bdd.dand (successors ctx state) (Bdd.dnot (sat ctx f)) in
      let t = Trace.pick_state ctx.trans bad in
      Successor (List.hd (steps_of_states ctx [ t ]), explain_false ctx f t)
  | Ctl.AG f ->
      (* shortest path to a violating state *)
      let bad =
        Bdd.dand ctx.reach.Reach.reachable (Bdd.dnot (sat ctx f))
      in
      let path =
        Trace.bfs_path ctx.trans ~within:ctx.reach.Reach.reachable ~src:state
          ~dst:bad
      in
      let last = List.nth path (List.length path - 1) in
      Path (steps_of_states ctx path, explain_false ctx f last)
  | Ctl.AF f ->
      (* a fair lasso avoiding f forever *)
      let region =
        Bdd.dand ctx.reach.Reach.reachable (Bdd.dnot (sat ctx f))
      in
      (try Lasso (Trace.lasso_from ctx.env ~within:region state)
       with Not_found -> Unreachable f)
  | Ctl.AU (p, q) ->
      (* either a path where p fails before q, or a lasso avoiding q *)
      let nq = Bdd.dand ctx.reach.Reach.reachable (Bdd.dnot (sat ctx q)) in
      let np = Bdd.dand ctx.reach.Reach.reachable (Bdd.dnot (sat ctx p)) in
      let bad = Bdd.dand np nq in
      (try
         let path = Trace.bfs_path ctx.trans ~within:nq ~src:state ~dst:bad in
         let last = List.nth path (List.length path - 1) in
         Path
           ( steps_of_states ctx path,
             Conjuncts
               [ (p, explain_false ctx p last); (q, explain_false ctx q last) ]
           )
       with Not_found -> (
         try Lasso (Trace.lasso_from ctx.env ~within:nq state)
         with Not_found -> Unreachable q))
  | Ctl.EX f ->
      (* every successor violates f: present up to three for inspection *)
      let succ = ref (successors ctx state) in
      let choices = ref [] in
      (try
         for _ = 1 to 3 do
           let t = Trace.pick_state ctx.trans !succ in
           choices :=
             (List.hd (steps_of_states ctx [ t ]), explain_false ctx f t)
             :: !choices;
           succ := Bdd.dand !succ (Bdd.dnot t)
         done
       with Not_found -> ());
      Choice (List.rev !choices)
  | Ctl.EF f -> Unreachable f
  | Ctl.EG _ -> Unreachable f
  | Ctl.EU (_, q) -> Unreachable q

and explain_true ctx f state =
  match f with
  | Ctl.Prop e -> Prop_value (e, true)
  | Ctl.Not f -> Negation (explain_false ctx f state)
  | Ctl.EX f ->
      let good = Bdd.dand (successors ctx state) (sat ctx f) in
      let t = Trace.pick_state ctx.trans good in
      Successor (List.hd (steps_of_states ctx [ t ]), explain_true ctx f t)
  | Ctl.EF f ->
      let path =
        Trace.bfs_path ctx.trans ~within:ctx.reach.Reach.reachable ~src:state
          ~dst:(sat ctx f)
      in
      let last = List.nth path (List.length path - 1) in
      Path (steps_of_states ctx path, explain_true ctx f last)
  | Ctl.EU (p, q) ->
      let path =
        Trace.bfs_path ctx.trans ~within:(sat ctx p) ~src:state
          ~dst:(sat ctx q)
      in
      let last = List.nth path (List.length path - 1) in
      Path (steps_of_states ctx path, explain_true ctx q last)
  | Ctl.EG f -> (
      try Lasso (Trace.lasso_from ctx.env ~within:(sat ctx f) state)
      with Not_found -> Holds)
  | Ctl.And (a, b) ->
      Conjuncts
        [ (a, explain_true ctx a state); (b, explain_true ctx b state) ]
  | Ctl.Or (a, b) ->
      let winner = if in_set state (sat ctx a) then a else b in
      Disjuncts [ (winner, explain_true ctx winner state) ]
  | Ctl.Imp (_, _) | Ctl.AX _ | Ctl.AG _ | Ctl.AF _ | Ctl.AU _ -> Holds

let explain ctx f ~state = explain_false ctx f state

(* Only a definitive [Fail] has a violating state to explain; [Pass] and
   [Inconclusive] both yield no explanation. *)
let explain_failure ctx f (outcome : Mc.outcome) =
  match outcome.Mc.verdict with
  | Hsis_limits.Verdict.Fail fail_init ->
      let state = Trace.pick_state ctx.trans fail_init in
      Some (explain_false ctx f state)
  | Hsis_limits.Verdict.Pass | Hsis_limits.Verdict.Inconclusive _ -> None

let rec depth = function
  | Prop_value _ | Holds | Unreachable _ -> 1
  | Negation e -> 1 + depth e
  | Successor (_, e) -> 1 + depth e
  | Path (_, e) -> 1 + depth e
  | Lasso _ -> 1
  | Conjuncts es | Disjuncts es ->
      1 + List.fold_left (fun acc (_, e) -> max acc (depth e)) 0 es
  | Choice es ->
      1 + List.fold_left (fun acc (_, e) -> max acc (depth e)) 0 es

let pp trans fmt expl =
  let sym = Trans.sym trans in
  let net = Sym.net sym in
  let show_state st =
    String.concat " "
      (List.map
         (fun (s, v) ->
           Printf.sprintf "%s=%s"
             (Hsis_blifmv.Net.signal net s).Hsis_blifmv.Net.s_name
             (Hsis_mv.Domain.value (Hsis_blifmv.Net.dom net s) v))
         st)
  in
  let rec go indent = function
    | Prop_value (e, b) ->
        Format.fprintf fmt "%s%s is %b@." indent (Expr.to_string e) b
    | Conjuncts es ->
        Format.fprintf fmt "%sconjuncts:@." indent;
        List.iter
          (fun (f, e) ->
            Format.fprintf fmt "%s- %s:@." indent (Ctl.to_string f);
            go (indent ^ "  ") e)
          es
    | Disjuncts es ->
        Format.fprintf fmt "%sdisjuncts:@." indent;
        List.iter
          (fun (f, e) ->
            Format.fprintf fmt "%s- %s:@." indent (Ctl.to_string f);
            go (indent ^ "  ") e)
          es
    | Negation e ->
        Format.fprintf fmt "%sbecause the negated formula:@." indent;
        go (indent ^ "  ") e
    | Successor (s, e) ->
        Format.fprintf fmt "%sstep to %s@." indent (show_state s.Trace.state);
        go indent e
    | Path (steps, e) ->
        Format.fprintf fmt "%spath:@." indent;
        List.iter
          (fun s -> Format.fprintf fmt "%s  %s@." indent (show_state s.Trace.state))
          steps;
        go indent e
    | Lasso t ->
        Format.fprintf fmt "%sinfinite path (lasso):@." indent;
        Format.fprintf fmt "%s%a" indent (Trace.pp trans) t
    | Choice es ->
        Format.fprintf fmt "%ssuccessor choices:@." indent;
        List.iter
          (fun (s, e) ->
            Format.fprintf fmt "%s> %s:@." indent (show_state s.Trace.state);
            go (indent ^ "  ") e)
          es
    | Holds -> Format.fprintf fmt "%sholds@." indent
    | Unreachable f ->
        Format.fprintf fmt "%sno witness anywhere for %s@." indent
          (Ctl.to_string f)
  in
  go "" expl
