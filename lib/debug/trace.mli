open Hsis_bdd
open Hsis_fsm
open Hsis_check

(** Error-trace generation for language containment (paper Sec. 6.1): a
    debug trace is an initial path to a cycle plus a cycle satisfying all
    fairness constraints.  The prefix is minimum-length (recovered from the
    reachability onion rings); the cycle is heuristically minimized. *)

type step = {
  state : (int * int) list;  (** latch signal id, value *)
  others : (int * int) list;
      (** chosen values of inputs and internal signals on the {e outgoing}
          transition (empty for the final state of a prefix) *)
}

type t = {
  prefix : step list;  (** from an initial state to the cycle entry *)
  cycle : step list;  (** the fair cycle; last step returns to the first *)
  verified : bool;  (** replay confirmed the cycle meets every constraint *)
}

val pick_state : Trans.t -> Bdd.t -> Bdd.t
(** One concrete state of a non-empty set, as a full cube over the present
    state variables. *)

val decode_state : Trans.t -> Bdd.t -> (int * int) list
(** Latch values of a state cube. *)

val bfs_path : Trans.t -> within:Bdd.t -> src:Bdd.t -> dst:Bdd.t -> Bdd.t list
(** Shortest sequence of state cubes from [src] (a concrete state) to some
    state of [dst], staying in [within].  Includes both endpoints.
    Raises [Not_found] if unreachable. *)

val fair_lasso : El.env -> reach:Reach.t -> fair:Bdd.t -> t
(** Build a full counterexample: shortest prefix from an initial ring to a
    fair state, then a cycle through it visiting a witness of every
    fairness constraint.  Raises [Not_found] when [fair] is empty. *)

val lasso_from : El.env -> within:Bdd.t -> Bdd.t -> t
(** A fair lasso starting at the given concrete state (prefix only walks
    inside [within]; used by the CTL debugger for EG witnesses). *)

val total_length : t -> int

val replay : Trans.t -> t -> bool
(** Re-execute the lasso on the explicit-state {!Hsis_sim.Simulator}: true
    when every prefix and cycle step is realizable as an enabled option of
    the concrete network (matching the decoded transition labels where
    possible) and the cycle closes.  The differential fuzz harness asserts
    this on every generated counterexample. *)

val pp : Trans.t -> Format.formatter -> t -> unit
(** Human-readable trace using signal and value names. *)
